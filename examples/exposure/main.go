// Exposure: run the follow-up study the paper plans in §V — a malicious
// open resolver is only an *actual* threat when legitimate clients query
// it, so simulate a client population with a realistic web workload and
// measure how much of their traffic lands on manipulating resolvers.
//
//	go run ./examples/exposure
package main

import (
	"fmt"
	"log"

	"openresolver/internal/clientload"
)

func main() {
	// The 2018 campaign found 26,926 of 6,506,258 responders (~0.41%)
	// manipulating answers toward threat-listed addresses. Sweep the
	// malicious share around that point and measure client exposure.
	fmt.Println("Client exposure to malicious open resolvers (2,000 clients × 25 queries)")
	fmt.Printf("%-18s %12s %16s %14s %12s\n",
		"malicious share", "queries", "malicious answers", "exposure rate", "clients hit")
	for _, frac := range []float64{0.004, 0.02, 0.05, 0.10} {
		res, err := clientload.Run(clientload.Config{
			Clients:            2000,
			QueriesPerClient:   25,
			Resolvers:          500,
			MaliciousFraction:  frac,
			Domains:            2000,
			ZipfS:              1.3,
			ResolversPerClient: 2,
			Seed:               11,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %12d %16d %13.2f%% %7d/%d\n",
			fmt.Sprintf("%.1f%%", frac*100), res.Queries, res.MaliciousAnswers,
			res.ExposureRate()*100, res.ExposedClients, res.TotalClients)
	}

	// The §III-B connection: skewed web workloads cache extremely well, so
	// probing with popular names would mostly measure caches — which is why
	// the campaign generated a unique subdomain per probe.
	res, err := clientload.Run(clientload.Config{
		Clients: 2000, QueriesPerClient: 25, Resolvers: 500,
		MaliciousFraction: 0.004, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhonest-resolver answer-cache hit ratio under this workload: %.1f%%\n",
		res.CacheHitRatio*100)
	fmt.Println("(the measurement campaign avoids caches entirely by querying a unique")
	fmt.Println(" subdomain per probe — §III-B's 'subdomain' design)")
}
