// Temporal contrast: reproduce the paper's headline finding by running
// both measurement campaigns (2013 and 2018) and comparing them — the
// number of open resolvers collapsed, the number of incorrect answers
// stayed flat, and malicious answers more than doubled.
//
//	go run ./examples/temporal
package main

import (
	"fmt"
	"log"

	"openresolver/internal/analysis"
	"openresolver/internal/core"
	"openresolver/internal/paperdata"
)

func main() {
	reports := map[paperdata.Year]*analysis.Report{}
	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		ds, err := core.RunSynthetic(core.Config{
			Year:        y,
			SampleShift: 6, // 1/64 sample; use 0 for exact paper numbers
			Seed:        3,
		})
		if err != nil {
			log.Fatal(err)
		}
		reports[y] = ds.Report
	}
	r13, r18 := reports[paperdata.Y2013], reports[paperdata.Y2018]

	row := func(metric string, v13, v18 uint64) {
		change := "—"
		if v13 > 0 {
			change = fmt.Sprintf("%+.0f%%", (float64(v18)/float64(v13)-1)*100)
		}
		fmt.Printf("%-38s %14d %14d %10s\n", metric, v13, v18, change)
	}
	fmt.Printf("%-38s %14s %14s %10s\n", "metric (1/64 sample)", "2013", "2018", "change")
	row("responses collected (R2)", r13.Correctness.R2, r18.Correctness.R2)
	row("responses with answers (W)", r13.Correctness.With(), r18.Correctness.With())
	row("open resolvers (RA=1 & correct)", r13.Estimates.StrictRA1Correct, r18.Estimates.StrictRA1Correct)
	row("incorrect answers", r13.Correctness.Incorr, r18.Correctness.Incorr)
	row("malicious answers (threat-reported)", r13.MaliciousTotal.R2, r18.MaliciousTotal.R2)
	row("unique malicious addresses", r13.MaliciousTotal.IPs, r18.MaliciousTotal.IPs)
	row("countries with malicious resolvers", uint64(len(r13.MaliciousGeo)), uint64(len(r18.MaliciousGeo)))

	fmt.Printf("\nerror rate:  %.3f%% (2013)  →  %.3f%% (2018)\n",
		r13.Correctness.ErrPct(), r18.Correctness.ErrPct())

	fmt.Println("\nThe paper's conclusion, §VII: the open-resolver population shrank ~4×")
	fmt.Println("between 2013 and 2018, but the absolute volume of manipulated answers")
	fmt.Println("held steady and threat-reported (malicious) answers more than doubled —")
	fmt.Println("the threat did not decline with the population.")
}
