// Quickstart: run a sampled open-resolver measurement campaign end to end
// on the discrete-event network and print the paper's core tables.
//
//	go run ./examples/quickstart
//
// The campaign models the paper's 2018 scan at 1/4096 of the IPv4 space:
// the prober walks the sampled address space in ZMap-style pseudorandom
// order, every open resolver in the simulated population really performs
// (or deviantly fakes) recursive resolution through the root → .net →
// ucfsealresearch.net hierarchy, and the analysis pipeline classifies every
// captured response.
package main

import (
	"fmt"
	"log"

	"openresolver/internal/core"
	"openresolver/internal/paperdata"
)

func main() {
	ds, err := core.RunSimulation(core.Config{
		Year:        paperdata.Y2018,
		SampleShift: 12, // probe 1/4096 of the IPv4 space
		Seed:        42,
		// Scale the probe rate with the universe so the campaign's virtual
		// duration is directly comparable to the paper's 10h35m.
		PacketsPerSec: 100000 >> 12,
	})
	if err != nil {
		log.Fatal(err)
	}

	r := ds.Report
	fmt.Println(r.RenderTableII())
	fmt.Println(r.RenderTableIII())
	fmt.Println(r.RenderTableIV())
	fmt.Println(r.RenderEstimates())

	fmt.Printf("Probing mechanics (§III-B):\n")
	fmt.Printf("  subdomain clusters used: %d\n", ds.ClustersUsed)
	fmt.Printf("  subdomains reused:       %d\n", ds.SubdomainsReused)
	fmt.Printf("  network packets:         %d sent, %d delivered\n",
		ds.NetStats.Sent, ds.NetStats.Delivered)

	// Scale the headline numbers back to the full IPv4 space.
	scale := uint64(1) << ds.Config.SampleShift
	fmt.Printf("\nExtrapolated to the full IPv4 space (×%d):\n", scale)
	fmt.Printf("  responding hosts:   ~%d\n", r.Campaign.R2*scale)
	fmt.Printf("  open resolvers:     ~%d (strict: RA=1 and correct answer)\n",
		r.Estimates.StrictRA1Correct*scale)
	fmt.Printf("  incorrect answers:  ~%d\n", r.Correctness.Incorr*scale)
	fmt.Printf("  paper reported:     3,702,258,432 probed, ~3M open resolvers, 111,093 incorrect\n")
}
