// Defenses: demonstrate the countermeasure discussion of §VI — DNSSEC
// authenticates answers and defeats the §IV-C manipulation, but only for
// clients behind validating resolvers, and "DNSSEC did not yet completely
// replace DNS".
//
//	go run ./examples/defenses
package main

import (
	"fmt"
	"log"
	"time"

	"openresolver/internal/dnssec"
	"openresolver/internal/dnssrv"
	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
)

var (
	authAddr   = ipv4.MustParseAddr("45.76.3.3")
	victimAddr = ipv4.MustParseAddr("66.77.88.99")
	evilAddr   = ipv4.MustParseAddr("208.91.197.91")
)

// forgingResolver mimics a §IV-C manipulator attacking a *signed* zone: it
// fetches the genuine signed answer upstream, then swaps the A record for
// the malicious address, leaving the (now non-matching) signature attached.
type forgingResolver struct {
	pending map[uint16]netsim.Datagram
}

func (f *forgingResolver) HandleDatagram(n *netsim.Node, dg netsim.Datagram) {
	msg, err := dnswire.Unpack(dg.Payload)
	if err != nil {
		return
	}
	if !msg.Header.QR {
		// Relay the query upstream (keeping the client's EDNS/DO intact).
		f.pending[msg.Header.ID] = dg
		n.Send(authAddr, dg.DstPort, dnssrv.DNSPort, dg.Payload)
		return
	}
	client, ok := f.pending[msg.Header.ID]
	if !ok {
		return
	}
	delete(f.pending, msg.Header.ID)
	// The manipulation: rewrite every A record to the malicious address.
	for i := range msg.Answers {
		if msg.Answers[i].Type == dnswire.TypeA {
			msg.Answers[i].A = uint32(evilAddr)
			msg.Answers[i].Data = nil
		}
	}
	msg.Header.RA = true
	wire, err := msg.Pack()
	if err != nil {
		return
	}
	n.Send(client.Src, client.DstPort, client.SrcPort, wire)
}

func main() {
	sim := netsim.New(netsim.Config{Seed: 1, Latency: netsim.ConstantLatency(8 * time.Millisecond)})
	key, err := dnssec.GenerateKey("signed-zone.net", 1)
	if err != nil {
		log.Fatal(err)
	}
	dnssec.NewSignedAuthServer(sim, authAddr, key)
	resolver := ipv4.MustParseAddr("24.1.2.3")
	sim.Register(resolver, &forgingResolver{pending: make(map[uint16]netsim.Datagram)})

	validator := dnssec.NewValidator(key)
	qname := "bank.signed-zone.net"
	truth := dnssrv.TruthAddr(qname)

	ask := func(validate bool) (addr ipv4.Addr, ok bool, rejected bool) {
		done := false
		stub := sim.Register(victimAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
			msg, err := dnswire.Unpack(dg.Payload)
			if err != nil || done {
				return
			}
			done = true
			a, has := msg.FirstA()
			if !has {
				return
			}
			if validate && !validator.ValidateMessage(qname, msg) {
				rejected = true
				return
			}
			addr, ok = ipv4.Addr(a), true
		}))
		q := dnswire.NewQuery(99, qname, dnswire.TypeA)
		q.SetEDNS(dnswire.EDNS{UDPSize: 4096, DO: true})
		stub.Send(resolver, 50000, dnssrv.DNSPort, q.MustPack())
		if err := sim.Run(0); err != nil {
			log.Fatal(err)
		}
		sim.Unregister(victimAddr)
		return addr, ok, rejected
	}

	fmt.Printf("zone ground truth for %s: %v\n\n", qname, truth)

	addr, ok, _ := ask(false)
	fmt.Println("— client WITHOUT DNSSEC validation —")
	if ok {
		fmt.Printf("accepted answer: %v", addr)
		if addr == evilAddr {
			fmt.Printf("  ← the §IV-C manipulation succeeds (threat-listed address)")
		}
		fmt.Println()
	}

	_, ok, rejected := ask(true)
	fmt.Println("\n— client WITH DNSSEC validation —")
	switch {
	case rejected:
		fmt.Println("answer REJECTED: the forged A record no longer matches the RRSIG")
	case ok:
		fmt.Println("answer accepted (unexpected)")
	}

	fmt.Println("\n§VI's caveat: validation only protects signed zones and validating")
	fmt.Println("clients. Run `go run ./cmd/orvalidators` to measure how few resolvers")
	fmt.Println("validate — the manipulated majority path of the paper remains open.")
}
