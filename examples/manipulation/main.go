// Manipulation detection: reproduce the paper's §IV-C analysis — find open
// resolvers that answer with manipulated addresses, validate them against
// threat intelligence (the Cymon substitute), and geolocate the malicious
// resolvers (the ip2location substitute).
//
//	go run ./examples/manipulation
package main

import (
	"fmt"
	"log"

	"openresolver/internal/core"
	"openresolver/internal/ipv4"
	"openresolver/internal/paperdata"
	"openresolver/internal/threatintel"
)

func main() {
	// A full-scale 2018 campaign in synthetic-streaming mode: every R2 is
	// generated as wire bytes and classified by the analysis pipeline.
	// (Use SampleShift > 0 for a faster, scaled run.)
	ds, err := core.RunSynthetic(core.Config{
		Year:        paperdata.Y2018,
		SampleShift: 6, // 1/64 sample keeps this example fast
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}
	r := ds.Report

	fmt.Println(r.RenderTableVII())
	fmt.Println(r.RenderTableVIII())
	fmt.Println(r.RenderTableIX())
	fmt.Println(r.RenderTableX())
	fmt.Println(r.RenderGeo())

	// The Fig. 4 deep-dive: ask the threat feed about the most notorious
	// manipulated answer of the 2018 scan.
	feed := threatintel.NewFeed(paperdata.Y2018, 7)
	addr := ipv4.MustParseAddr("208.91.197.91")
	fmt.Println("Fig. 4 — threat intelligence record:")
	fmt.Println(feed.Summary(addr))

	fmt.Println("Interpretation (§IV-C2): every probe query used a freshly created")
	fmt.Println("subdomain, so a malicious answer cannot be a stale cache entry — the")
	fmt.Println("resolver itself returns a predetermined address for every query.")
}
