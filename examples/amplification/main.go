// Amplification: quantify the DNS amplification threat of §II-C by
// simulating an attacker who abuses open resolvers with spoofed-source
// queries, and measuring how many bytes land on the victim per byte the
// attacker spends.
//
//	go run ./examples/amplification
package main

import (
	"fmt"
	"log"

	"openresolver/internal/amplify"
	"openresolver/internal/dnswire"
)

func main() {
	// One spoofed 'ANY' query is ~70 bytes on the wire; the response from a
	// resolver fronting a record-rich zone is thousands. The resolver
	// faithfully sends that response to the spoofed source — the victim.
	fmt.Println("Bandwidth amplification factor by query type and zone size")
	fmt.Printf("%-7s %-13s %12s\n", "qtype", "zone records", "factor")
	for _, qt := range []dnswire.Type{dnswire.TypeA, dnswire.TypeANY} {
		for _, zone := range []int{10, 30, 60} {
			res, err := amplify.Run(amplify.Config{
				Resolvers:          200,
				QueriesPerResolver: 5,
				QueryType:          qt,
				ZoneRecords:        zone,
				Seed:               1,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-7s %-13d %11.1fx\n", qt, zone, res.Factor)
		}
	}

	// The paper's motivating incident: the 2013 Spamhaus attack reached
	// 75 Gbps through open resolvers. Show what a (scaled) fleet achieves.
	res, err := amplify.Run(amplify.Config{
		Resolvers:          3000, // a tiny slice of the ~3M open resolvers found in 2018
		QueriesPerResolver: 20,
		QueryType:          dnswire.TypeANY,
		ZoneRecords:        40,
		Seed:               2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFleet attack: %d queries (%d KiB from the attacker) delivered %d KiB\n",
		res.QueriesSent, res.AttackerBytes/1024, res.VictimBytes/1024)
	fmt.Printf("to the victim in %v of virtual time — %.0f× amplification.\n", res.Duration, res.Factor)
	fmt.Println("\nWith ~3 million open resolvers still answering anyone (§IV), the paper")
	fmt.Println("argues this attack surface persists regardless of resolver honesty.")
}
