// Command fabricsmoke is the CI smoke harness for the distributed fabric:
// the multi-process twin of "make smoke". It builds orfabric, then for
// every cell of the smoke grid (2018/2013 × pristine/20% loss at the
// golden scale) runs the campaign twice — once single-process (-local)
// and once as a real coordinator process with three worker processes on
// localhost — and byte-compares the two outputs. The loss-free 2018 cell
// must additionally reproduce the pinned smoke baseline digest, proving
// the fabric is byte-compatible with orsweep/orserved campaigns. Finally
// it SIGKILLs a worker mid-campaign and asserts the requeued shard still
// converges to the identical output.
//
// Every process's stderr lands in -logdir (coordinator-*.log,
// worker-*.log) so CI can upload the logs as artifacts on failure.
//
// Usage:
//
//	go run ./scripts/fabricsmoke [-baseline HEX] [-logdir DIR] [-timeout DUR]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

const defaultBaseline = "d19bd873ab802eecb15921fb73145c7ca0ae4b5eed4d5b6aa670791ad1557d47"

type cell struct {
	year  string
	loss  string
	shift string
}

func (c cell) slug() string {
	loss := strings.NewReplacer(":", "_", ";", "_", ",", "_", ".", "p").Replace(c.loss)
	return c.year + "-" + loss + "-s" + c.shift
}

// campaignArgs mirrors the sweep smoke cells: packets kept for the
// full-width digest and the event queue bounded at the sweep default.
func (c cell) campaignArgs() []string {
	args := []string{
		"-year", c.year, "-shift", c.shift, "-seed", "1",
		"-keep-packets", "-max-events", "2097152",
	}
	if c.loss != "none" {
		args = append(args, "-loss-model", c.loss)
	}
	return args
}

var (
	bin     string
	logdir  string
	timeout time.Duration
)

func main() {
	baseline := flag.String("baseline", defaultBaseline,
		"pinned FaultDigest of the loss-free 2018 smoke cell (empty = skip the pin)")
	flag.StringVar(&logdir, "logdir", "", "coordinator/worker log directory (empty = a fresh temporary directory)")
	flag.DurationVar(&timeout, "timeout", 10*time.Minute, "per-campaign deadline")
	flag.Parse()
	if err := run(*baseline); err != nil {
		fmt.Fprintln(os.Stderr, "fabricsmoke: FAIL:", err)
		fmt.Fprintln(os.Stderr, "fabricsmoke: process logs in", logdir)
		os.Exit(1)
	}
	fmt.Println("fabricsmoke: ok — 4-cell grid byte-identical across 3 workers, baseline pinned, worker-kill requeue converged")
}

func run(baseline string) error {
	if logdir == "" {
		dir, err := os.MkdirTemp("", "fabricsmoke-")
		if err != nil {
			return err
		}
		logdir = dir
	} else if err := os.MkdirAll(logdir, 0o755); err != nil {
		return err
	}
	builddir, err := os.MkdirTemp("", "fabricsmoke-bin-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(builddir)
	bin = filepath.Join(builddir, "orfabric")
	build := exec.Command("go", "build", "-o", bin, "./cmd/orfabric")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building orfabric: %w", err)
	}

	grid := []cell{
		{"2018", "none", "14"},
		{"2018", "loss:0.2", "14"},
		{"2013", "none", "14"},
		{"2013", "loss:0.2", "14"},
	}
	for _, c := range grid {
		local, err := runLocal(c)
		if err != nil {
			return err
		}
		digest, err := extractDigest(local)
		if err != nil {
			return fmt.Errorf("cell %s: %w", c.slug(), err)
		}
		if c.year == "2018" && c.loss == "none" && baseline != "" && digest != baseline {
			return fmt.Errorf("cell %s: local digest %s does not match the pinned smoke baseline %s", c.slug(), digest, baseline)
		}
		dist, err := runDistributed(c, 3, false)
		if err != nil {
			return err
		}
		if dist != local {
			return fmt.Errorf("cell %s: distributed output differs from -local (%d vs %d bytes)", c.slug(), len(dist), len(local))
		}
		fmt.Printf("fabricsmoke: cell %s ok (digest %.12s, 3 workers byte-identical)\n", c.slug(), digest)
	}

	// Worker-kill convergence: a deeper cell (shift 12, 4× the work) so
	// the SIGKILL reliably lands mid-campaign, then two fresh workers
	// finish the requeued shard. Retried because the kill can, rarely,
	// land in the sliver between two leases.
	kc := cell{"2018", "none", "12"}
	local, err := runLocal(kc)
	if err != nil {
		return err
	}
	for attempt := 1; ; attempt++ {
		dist, err := runDistributed(kc, 2, true)
		if err != nil {
			return err
		}
		if dist != local {
			return fmt.Errorf("kill cell %s: output diverged after worker SIGKILL + requeue", kc.slug())
		}
		log, err := os.ReadFile(coordLog(kc))
		if err != nil {
			return err
		}
		if strings.Contains(string(log), "requeued") {
			fmt.Printf("fabricsmoke: kill cell %s ok (worker SIGKILLed, shard requeued, digest converged; attempt %d)\n", kc.slug(), attempt)
			return nil
		}
		if attempt >= 3 {
			return fmt.Errorf("kill cell %s: no requeue observed in %d attempts (kill kept missing the lease window?)", kc.slug(), attempt)
		}
		fmt.Printf("fabricsmoke: kill cell attempt %d landed between leases; retrying\n", attempt)
	}
}

func runLocal(c cell) (string, error) {
	logf, err := os.Create(filepath.Join(logdir, "local-"+c.slug()+".log"))
	if err != nil {
		return "", err
	}
	defer logf.Close()
	cmd := exec.Command(bin, append([]string{"-local"}, c.campaignArgs()...)...)
	cmd.Stderr = logf
	out, err := output(cmd, "local "+c.slug())
	if err != nil {
		return "", err
	}
	return out, nil
}

func coordLog(c cell) string { return filepath.Join(logdir, "coordinator-"+c.slug()+".log") }

// runDistributed boots one coordinator process and n worker processes on
// loopback, optionally SIGKILLing the first worker mid-campaign (kill
// mode starts one worker, kills it, then starts n fresh ones to finish).
func runDistributed(c cell, n int, kill bool) (string, error) {
	coordLogF, err := os.Create(coordLog(c))
	if err != nil {
		return "", err
	}
	defer coordLogF.Close()
	addrFile := filepath.Join(logdir, "addr-"+c.slug())
	os.Remove(addrFile)

	args := append([]string{"-coordinator", "-listen", "127.0.0.1:0", "-addr-file", addrFile}, c.campaignArgs()...)
	coord := exec.Command(bin, args...)
	coord.Stderr = coordLogF
	outc := make(chan string, 1)
	errc := make(chan error, 1)
	stdout, err := coord.StdoutPipe()
	if err != nil {
		return "", err
	}
	if err := coord.Start(); err != nil {
		return "", err
	}
	defer coord.Process.Kill()
	go func() {
		data, cpErr := io.ReadAll(stdout)
		wErr := coord.Wait()
		if wErr != nil {
			errc <- fmt.Errorf("coordinator for %s exited: %w", c.slug(), wErr)
			return
		}
		if cpErr != nil {
			errc <- cpErr
			return
		}
		outc <- string(data)
	}()

	// Wait for the coordinator's bound address, watching for early death.
	deadline := time.Now().Add(timeout)
	var addr string
	for addr == "" {
		select {
		case err := <-errc:
			return "", fmt.Errorf("coordinator died before listening: %w", err)
		case <-time.After(20 * time.Millisecond):
		}
		if data, rerr := os.ReadFile(addrFile); rerr == nil && len(data) > 0 {
			addr = strings.TrimSpace(string(data))
		}
		if addr == "" && time.Now().After(deadline) {
			return "", fmt.Errorf("coordinator for %s never wrote %s", c.slug(), addrFile)
		}
	}

	var workers []*exec.Cmd
	startWorker := func(label string) error {
		logf, err := os.Create(filepath.Join(logdir, "worker-"+c.slug()+"-"+label+".log"))
		if err != nil {
			return err
		}
		w := exec.Command(bin, "-worker", "-connect", addr, "-name", label)
		w.Stderr = logf
		if err := w.Start(); err != nil {
			logf.Close()
			return err
		}
		go func() { w.Wait(); logf.Close() }()
		workers = append(workers, w)
		return nil
	}
	defer func() {
		for _, w := range workers {
			w.Process.Kill()
		}
	}()

	if kill {
		// One victim first: with the whole campaign pending it holds a
		// lease almost immediately — SIGKILL it mid-shard.
		if err := startWorker("victim"); err != nil {
			return "", err
		}
		time.Sleep(250 * time.Millisecond)
		if err := workers[0].Process.Signal(syscall.SIGKILL); err != nil {
			return "", fmt.Errorf("SIGKILL victim worker: %w", err)
		}
		fmt.Printf("fabricsmoke: kill cell %s: victim worker SIGKILLed\n", c.slug())
	}
	for i := 0; i < n; i++ {
		if err := startWorker(fmt.Sprintf("w%d", i)); err != nil {
			return "", err
		}
	}

	select {
	case out := <-outc:
		return out, nil
	case err := <-errc:
		return "", err
	case <-time.After(time.Until(deadline)):
		return "", fmt.Errorf("campaign %s did not finish before the deadline", c.slug())
	}
}

func output(cmd *exec.Cmd, label string) (string, error) {
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("%s: %w", label, err)
	}
	return string(out), nil
}

func extractDigest(out string) (string, error) {
	for _, line := range strings.Split(out, "\n") {
		if d, ok := strings.CutPrefix(line, "FaultDigest: "); ok {
			return d, nil
		}
	}
	return "", fmt.Errorf("no FaultDigest line in output")
}
