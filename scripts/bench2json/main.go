// Command bench2json converts `go test -bench` output on stdin into a
// stable JSON document on stdout, so benchmark runs can be committed and
// diffed across PRs (BENCH_PR1.json and successors).
//
// Usage:
//
//	go test -bench 'CampaignSynthetic' -benchmem | go run ./scripts/bench2json > BENCH_PR1.json
//
// The converter keeps the environment header lines (goos/goarch/pkg/cpu),
// records the Go version and GOMAXPROCS of the converting process, and
// parses each Benchmark line into name, parallelism suffix, iteration
// count and the metric/unit pairs (ns/op, B/op, allocs/op, custom
// ReportMetric units).
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

type benchmark struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type document struct {
	GoVersion  string            `json:"go_version"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	NumCPU     int               `json:"num_cpu"`
	Env        map[string]string `json:"env"`
	Benchmarks []benchmark       `json:"benchmarks"`
}

func main() {
	doc := document{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Env:        map[string]string{},
		Benchmarks: []benchmark{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBench(line)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench2json: skipping %q: %v\n", line, err)
				continue
			}
			doc.Benchmarks = append(doc.Benchmarks, b)
		case strings.HasPrefix(line, "goos:"),
			strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"),
			strings.HasPrefix(line, "cpu:"):
			key, val, _ := strings.Cut(line, ":")
			doc.Env[key] = strings.TrimSpace(val)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		fmt.Fprintln(os.Stderr, "bench2json:", err)
		os.Exit(1)
	}
}

// parseBench decodes one result line, e.g.
//
//	BenchmarkCampaignSyntheticParallel-8  50  21098 ns/op  512 B/op  3 allocs/op
func parseBench(line string) (benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return benchmark{}, fmt.Errorf("too few fields")
	}
	b := benchmark{Name: fields[0], Procs: 1, Metrics: map[string]float64{}}
	if i := strings.LastIndexByte(b.Name, '-'); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return benchmark{}, fmt.Errorf("iterations: %w", err)
	}
	b.Iterations = n
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return benchmark{}, fmt.Errorf("metric %q: %w", fields[i+1], err)
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}
