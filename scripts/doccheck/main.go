// Command doccheck is the documentation gate behind `make doccheck`. It
// performs three checks, all comment/AST-level (no type checking), so it
// runs in milliseconds:
//
//  1. Every Go package under the given root directories carries a package
//     doc comment — a package documents itself if any of its non-test
//     files has a doc comment attached to the package clause.
//  2. With -api and -routes, the HTTP API reference stays in sync with the
//     router: every Go 1.22 "METHOD /path" pattern registered as a string
//     literal in the routes file must appear in a backtick code span in
//     the API document, and every "METHOD /path" code span in the document
//     must be registered in the router. Routes can only drift from their
//     documentation by failing CI.
//  3. With -flagdoc and one or more -flagcli directories, each CLI's flag
//     table stays in sync with its flag definitions: the flags a command
//     registers (flag.String/Bool/…/Var calls in its non-test sources)
//     must each appear as a backtick `-flag` span in the first column of
//     a markdown table inside the document section whose heading names
//     the command, and every `-flag` documented there must be registered.
//     Flag tables, like routes, can only drift by failing CI.
//
// Usage:
//
//	doccheck [-api API.md -routes internal/serve/router.go]
//	         [-flagdoc README.md -flagcli cmd/orsweep ...] [root ...]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	apiDoc := flag.String("api", "", "API reference document to cross-check against -routes")
	routesFile := flag.String("routes", "", "Go source file whose string-literal route patterns must match -api")
	flagDoc := flag.String("flagdoc", "", "document whose per-CLI flag tables must match each -flagcli command")
	var flagCLIs multiFlag
	flag.Var(&flagCLIs, "flagcli", "command directory whose flag definitions must match its -flagdoc table (repeatable)")
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"./internal", "./cmd"}
	}

	failed := false
	var undocumented []string
	for _, root := range roots {
		dirs, err := packageDirs(root)
		if err != nil {
			fatal(err)
		}
		for _, dir := range dirs {
			ok, err := documented(dir)
			if err != nil {
				fatal(err)
			}
			if !ok {
				undocumented = append(undocumented, dir)
			}
		}
	}
	if len(undocumented) > 0 {
		sort.Strings(undocumented)
		for _, dir := range undocumented {
			fmt.Fprintf(os.Stderr, "doccheck: %s: no package doc comment\n", dir)
		}
		failed = true
	}

	if (*apiDoc == "") != (*routesFile == "") {
		fatal(fmt.Errorf("-api and -routes must be given together"))
	}
	if *apiDoc != "" {
		if err := checkRoutes(*apiDoc, *routesFile); err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			failed = true
		}
	}

	if (*flagDoc == "") != (len(flagCLIs) == 0) {
		fatal(fmt.Errorf("-flagdoc and -flagcli must be given together"))
	}
	for _, dir := range flagCLIs {
		if err := checkFlagTable(*flagDoc, dir); err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(s string) error { *m = append(*m, s); return nil }

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doccheck:", err)
	os.Exit(2)
}

// routePattern recognizes Go 1.22 ServeMux method+path patterns.
var routePattern = regexp.MustCompile(`^(GET|POST|PUT|PATCH|DELETE|HEAD|OPTIONS) /\S*$`)

// checkRoutes cross-checks the router's registered patterns against the
// API document's backtick code spans, in both directions.
func checkRoutes(apiDoc, routesFile string) error {
	registered, err := sourceRoutes(routesFile)
	if err != nil {
		return err
	}
	if len(registered) == 0 {
		return fmt.Errorf("%s registers no method+path route literals; is it the right file?", routesFile)
	}
	documentedRoutes, err := docRoutes(apiDoc)
	if err != nil {
		return err
	}
	var problems []string
	for _, r := range sortedKeys(registered) {
		if !documentedRoutes[r] {
			problems = append(problems, fmt.Sprintf("route %q is registered in %s but not documented in %s", r, routesFile, apiDoc))
		}
	}
	for _, r := range sortedKeys(documentedRoutes) {
		if !registered[r] {
			problems = append(problems, fmt.Sprintf("route %q is documented in %s but not registered in %s", r, apiDoc, routesFile))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("API reference out of sync:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

// sourceRoutes parses the router source and collects every string literal
// that looks like a mux method+path pattern.
func sourceRoutes(path string) (map[string]bool, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	routes := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if routePattern.MatchString(s) {
			routes[s] = true
		}
		return true
	})
	return routes, nil
}

// docRoutes collects every backtick code span in the document that looks
// like a method+path pattern (`GET /v1/jobs/{id}` and friends). Fenced
// code blocks are stripped first — their triple backticks would otherwise
// flip the pairing of every inline span after them, and example payloads
// inside fences are not route declarations.
func docRoutes(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	text := regexp.MustCompile("(?s)```.*?```").ReplaceAllString(string(data), "")
	routes := map[string]bool{}
	for _, span := range regexp.MustCompile("`([^`]+)`").FindAllStringSubmatch(text, -1) {
		if routePattern.MatchString(span[1]) {
			routes[span[1]] = true
		}
	}
	return routes, nil
}

// checkFlagTable cross-checks one command's registered flags against the
// flag table documented for it, in both directions. The command is the
// base name of its directory; its table rows are the markdown table rows
// in the document section whose heading mentions that name.
func checkFlagTable(doc, cliDir string) error {
	name := filepath.Base(filepath.Clean(cliDir))
	defined, err := cliFlags(cliDir)
	if err != nil {
		return err
	}
	if len(defined) == 0 {
		return fmt.Errorf("%s registers no flags; is it the right directory?", cliDir)
	}
	documentedFlags, found, err := docFlags(doc, name)
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("%s has no section heading naming %q", doc, name)
	}
	var problems []string
	for _, f := range sortedKeys(defined) {
		if !documentedFlags[f] {
			problems = append(problems, fmt.Sprintf("flag %q is defined by %s but missing from its table in %s", "-"+f, cliDir, doc))
		}
	}
	for _, f := range sortedKeys(documentedFlags) {
		if !defined[f] {
			problems = append(problems, fmt.Sprintf("flag %q is documented for %s in %s but not defined", "-"+f, name, doc))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("flag table for %s out of sync:\n  %s", name, strings.Join(problems, "\n  "))
	}
	return nil
}

// flagDefCalls maps flag-registration method names to the argument index
// holding the flag name: String(name, …) registers at 0, StringVar(ptr,
// name, …) and Var(value, name, …) at 1.
var flagDefCalls = map[string]int{
	"String": 0, "Bool": 0, "Int": 0, "Int64": 0, "Uint": 0,
	"Uint64": 0, "Float64": 0, "Duration": 0,
	"StringVar": 1, "BoolVar": 1, "IntVar": 1, "Int64Var": 1, "UintVar": 1,
	"Uint64Var": 1, "Float64Var": 1, "DurationVar": 1,
	"Var": 1, "TextVar": 1, "Func": 1, "BoolFunc": 1,
}

// cliFlags parses the command's non-test sources and collects every flag
// name registered through a flag/FlagSet method with a literal name.
func cliFlags(dir string) (map[string]bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	flags := map[string]bool{}
	fset := token.NewFileSet()
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, 0)
		if err != nil {
			return nil, err
		}
		ast.Inspect(f, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			argIdx, ok := flagDefCalls[sel.Sel.Name]
			if !ok || len(call.Args) < argIdx+2 {
				return true
			}
			lit, ok := call.Args[argIdx].(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			if s, err := strconv.Unquote(lit.Value); err == nil && flagName.MatchString(s) {
				flags[s] = true
			}
			return true
		})
	}
	return flags, nil
}

// flagName is the repo's flag-naming convention; it also keeps the AST
// scan from mistaking unrelated String(...) calls for registrations.
var flagName = regexp.MustCompile(`^[a-z][a-z0-9-]*$`)

// flagSpan matches a documented flag inside a backtick code span.
var flagSpan = regexp.MustCompile("`-([a-z][a-z0-9-]*)`")

// docFlags collects the flags documented for the named command: every
// backtick `-flag` span in the first column of a markdown table between
// the heading that mentions the command name and the next heading.
// Fenced code blocks are stripped so example transcripts cannot leak
// table-looking lines into the scan.
func docFlags(path, name string) (map[string]bool, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false, err
	}
	text := regexp.MustCompile("(?s)```.*?```").ReplaceAllString(string(data), "")
	word := regexp.MustCompile(`(?:^|[^a-z0-9])` + regexp.QuoteMeta(name) + `(?:[^a-z0-9]|$)`)
	flags := map[string]bool{}
	found := false
	inSection := false
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "#") {
			inSection = word.MatchString(line)
			found = found || inSection
			continue
		}
		if !inSection || !strings.HasPrefix(strings.TrimSpace(line), "|") {
			continue
		}
		cells := strings.Split(strings.TrimSpace(line), "|")
		if len(cells) < 2 {
			continue
		}
		for _, m := range flagSpan.FindAllStringSubmatch(cells[1], -1) {
			flags[m[1]] = true
		}
	}
	return flags, found, nil
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// packageDirs returns every directory under root containing at least one
// non-test .go file.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	return dirs, err
}

// documented reports whether any non-test file in dir attaches a doc
// comment to its package clause.
func documented(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return false, err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, nil
		}
	}
	return false, nil
}
