// Command doccheck verifies that every Go package under the given root
// directories carries a package doc comment — the documentation gate
// behind `make doccheck`. It parses comments only (no type checking), so
// it runs in milliseconds; a package documents itself if any of its
// non-test files has a doc comment attached to the package clause.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	roots := os.Args[1:]
	if len(roots) == 0 {
		roots = []string{"./internal", "./cmd"}
	}
	var undocumented []string
	for _, root := range roots {
		dirs, err := packageDirs(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		for _, dir := range dirs {
			ok, err := documented(dir)
			if err != nil {
				fmt.Fprintln(os.Stderr, "doccheck:", err)
				os.Exit(2)
			}
			if !ok {
				undocumented = append(undocumented, dir)
			}
		}
	}
	if len(undocumented) > 0 {
		sort.Strings(undocumented)
		for _, dir := range undocumented {
			fmt.Fprintf(os.Stderr, "doccheck: %s: no package doc comment\n", dir)
		}
		os.Exit(1)
	}
}

// packageDirs returns every directory under root containing at least one
// non-test .go file.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	return dirs, err
}

// documented reports whether any non-test file in dir attaches a doc
// comment to its package clause.
func documented(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return false, err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, nil
		}
	}
	return false, nil
}
