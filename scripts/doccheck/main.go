// Command doccheck is the documentation gate behind `make doccheck`. It
// performs two checks, both comment/AST-level (no type checking), so it
// runs in milliseconds:
//
//  1. Every Go package under the given root directories carries a package
//     doc comment — a package documents itself if any of its non-test
//     files has a doc comment attached to the package clause.
//  2. With -api and -routes, the HTTP API reference stays in sync with the
//     router: every Go 1.22 "METHOD /path" pattern registered as a string
//     literal in the routes file must appear in a backtick code span in
//     the API document, and every "METHOD /path" code span in the document
//     must be registered in the router. Routes can only drift from their
//     documentation by failing CI.
//
// Usage:
//
//	doccheck [-api API.md -routes internal/serve/router.go] [root ...]
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	apiDoc := flag.String("api", "", "API reference document to cross-check against -routes")
	routesFile := flag.String("routes", "", "Go source file whose string-literal route patterns must match -api")
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		roots = []string{"./internal", "./cmd"}
	}

	failed := false
	var undocumented []string
	for _, root := range roots {
		dirs, err := packageDirs(root)
		if err != nil {
			fatal(err)
		}
		for _, dir := range dirs {
			ok, err := documented(dir)
			if err != nil {
				fatal(err)
			}
			if !ok {
				undocumented = append(undocumented, dir)
			}
		}
	}
	if len(undocumented) > 0 {
		sort.Strings(undocumented)
		for _, dir := range undocumented {
			fmt.Fprintf(os.Stderr, "doccheck: %s: no package doc comment\n", dir)
		}
		failed = true
	}

	if (*apiDoc == "") != (*routesFile == "") {
		fatal(fmt.Errorf("-api and -routes must be given together"))
	}
	if *apiDoc != "" {
		if err := checkRoutes(*apiDoc, *routesFile); err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "doccheck:", err)
	os.Exit(2)
}

// routePattern recognizes Go 1.22 ServeMux method+path patterns.
var routePattern = regexp.MustCompile(`^(GET|POST|PUT|PATCH|DELETE|HEAD|OPTIONS) /\S*$`)

// checkRoutes cross-checks the router's registered patterns against the
// API document's backtick code spans, in both directions.
func checkRoutes(apiDoc, routesFile string) error {
	registered, err := sourceRoutes(routesFile)
	if err != nil {
		return err
	}
	if len(registered) == 0 {
		return fmt.Errorf("%s registers no method+path route literals; is it the right file?", routesFile)
	}
	documentedRoutes, err := docRoutes(apiDoc)
	if err != nil {
		return err
	}
	var problems []string
	for _, r := range sortedKeys(registered) {
		if !documentedRoutes[r] {
			problems = append(problems, fmt.Sprintf("route %q is registered in %s but not documented in %s", r, routesFile, apiDoc))
		}
	}
	for _, r := range sortedKeys(documentedRoutes) {
		if !registered[r] {
			problems = append(problems, fmt.Sprintf("route %q is documented in %s but not registered in %s", r, apiDoc, routesFile))
		}
	}
	if len(problems) > 0 {
		return fmt.Errorf("API reference out of sync:\n  %s", strings.Join(problems, "\n  "))
	}
	return nil
}

// sourceRoutes parses the router source and collects every string literal
// that looks like a mux method+path pattern.
func sourceRoutes(path string) (map[string]bool, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	routes := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		s, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		if routePattern.MatchString(s) {
			routes[s] = true
		}
		return true
	})
	return routes, nil
}

// docRoutes collects every backtick code span in the document that looks
// like a method+path pattern (`GET /v1/jobs/{id}` and friends). Fenced
// code blocks are stripped first — their triple backticks would otherwise
// flip the pairing of every inline span after them, and example payloads
// inside fences are not route declarations.
func docRoutes(path string) (map[string]bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	text := regexp.MustCompile("(?s)```.*?```").ReplaceAllString(string(data), "")
	routes := map[string]bool{}
	for _, span := range regexp.MustCompile("`([^`]+)`").FindAllStringSubmatch(text, -1) {
		if routePattern.MatchString(span[1]) {
			routes[span[1]] = true
		}
	}
	return routes, nil
}

func sortedKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// packageDirs returns every directory under root containing at least one
// non-test .go file.
func packageDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
		return nil
	})
	return dirs, err
}

// documented reports whether any non-test file in dir attaches a doc
// comment to its package clause.
func documented(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return false, err
		}
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			return true, nil
		}
	}
	return false, nil
}
