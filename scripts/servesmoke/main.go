// Command servesmoke is the CI smoke harness for the orserved daemon: the
// service-level twin of "make smoke". It builds orserved, boots it on an
// ephemeral port, submits the smoke grid (2018/2013 × pristine/20% loss at
// the golden scale) through the HTTP API, polls the job to completion, and
// asserts three things: the loss-free 2018 baseline cell reproduces the
// pinned smoke digest (proving API jobs are byte-compatible with orsweep
// campaigns), an identical resubmission is served from the digest cache
// without re-running, and a SIGTERM drains the daemon to a clean exit.
//
// Usage:
//
//	go run ./scripts/servesmoke [-baseline HEX] [-timeout DUR]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

const defaultBaseline = "d19bd873ab802eecb15921fb73145c7ca0ae4b5eed4d5b6aa670791ad1557d47"

// smokeSpec is the API spelling of the "make smoke" orsweep invocation.
const smokeSpec = `{"years":["2018","2013"],"loss":["none","loss:0.2"],"shift":14,"seed":1}`

func main() {
	baseline := flag.String("baseline", defaultBaseline,
		"pinned FaultDigest of the loss-free 2018 smoke cell")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall deadline")
	daemonAddr := flag.String("daemon-addr", "127.0.0.1:0",
		"listen address handed to the daemon (the regression test passes an occupied port)")
	flag.Parse()
	if err := run(*baseline, *timeout, *daemonAddr); err != nil {
		fmt.Fprintln(os.Stderr, "servesmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("servesmoke: ok — baseline digest pinned, cache hit served, drain clean")
}

func run(baseline string, timeout time.Duration, daemonAddr string) error {
	deadline := time.Now().Add(timeout)
	dir, err := os.MkdirTemp("", "servesmoke-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	bin := filepath.Join(dir, "orserved")
	build := exec.Command("go", "build", "-o", bin, "./cmd/orserved")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building orserved: %w", err)
	}

	addrFile := filepath.Join(dir, "addr")
	daemon := exec.Command(bin,
		"-addr", daemonAddr,
		"-addr-file", addrFile,
		"-state-dir", filepath.Join(dir, "state"),
	)
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return err
	}
	defer daemon.Process.Kill() // no-op after a clean Wait
	// One Wait for the whole run: the boot loop below selects against it
	// so a daemon that dies before serving (failed bind, bad state dir)
	// fails the harness immediately with the real exit status, instead of
	// polling the address file until the deadline and masking the cause.
	exited := make(chan error, 1)
	go func() { exited <- daemon.Wait() }()

	// The daemon writes its bound address once it is accepting requests.
	var base string
	for base == "" {
		select {
		case err := <-exited:
			return fmt.Errorf("daemon exited before serving (addr %s): %v", daemonAddr, err)
		case <-time.After(20 * time.Millisecond):
		}
		if data, err := os.ReadFile(addrFile); err == nil && len(data) > 0 {
			base = "http://" + string(data)
		}
		if base == "" && time.Now().After(deadline) {
			return fmt.Errorf("daemon never wrote %s", addrFile)
		}
	}
	fmt.Println("servesmoke: daemon on", base)

	code, body, err := request("POST", base+"/v1/jobs", smokeSpec)
	if err != nil {
		return err
	}
	if code != http.StatusAccepted {
		return fmt.Errorf("submit: status %d: %s", code, body)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &job); err != nil {
		return err
	}
	fmt.Println("servesmoke: job", job.ID, "accepted; polling")
	for job.State != "done" {
		switch job.State {
		case "failed", "cancelled":
			return fmt.Errorf("job %s ended %s: %s", job.ID, job.State, body)
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s stuck in %s", job.ID, job.State)
		}
		time.Sleep(100 * time.Millisecond)
		if code, body, err = request("GET", base+"/v1/jobs/"+job.ID, ""); err != nil || code != http.StatusOK {
			return fmt.Errorf("poll: status %d, err %v", code, err)
		}
		if err := json.Unmarshal(body, &job); err != nil {
			return err
		}
	}

	// The baseline cell's digest must be pinned in the result matrix.
	code, matrix, err := request("GET", base+"/v1/jobs/"+job.ID+"/result", "")
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("result: status %d, err %v", code, err)
	}
	if !strings.Contains(string(matrix), fmt.Sprintf("%q: %q", "digest", baseline)) {
		return fmt.Errorf("baseline digest %s missing from the result matrix:\n%s", baseline, matrix)
	}
	fmt.Println("servesmoke: baseline digest pinned")

	// Identical resubmission: served from the digest cache, born done.
	code, body, err = request("POST", base+"/v1/jobs", smokeSpec)
	if err != nil {
		return err
	}
	var hit struct {
		Cached bool   `json:"cached"`
		State  string `json:"state"`
	}
	if err := json.Unmarshal(body, &hit); err != nil {
		return err
	}
	if code != http.StatusOK || !hit.Cached || hit.State != "done" {
		return fmt.Errorf("resubmission not a cache hit (status %d): %s", code, body)
	}
	fmt.Println("servesmoke: resubmission served from the digest cache")

	// SIGTERM drains the daemon; a clean exit is part of the contract.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("daemon exited uncleanly after SIGTERM: %w", err)
		}
	case <-time.After(time.Until(deadline)):
		return fmt.Errorf("daemon did not exit after SIGTERM")
	}
	return nil
}

func request(method, url, body string) (int, []byte, error) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}
