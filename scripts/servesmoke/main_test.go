package main

import (
	"net"
	"os"
	"strings"
	"testing"
	"time"
)

// Regression test for the masked-boot-failure bug: when the daemon cannot
// bind its address, the harness used to poll the address file until the
// overall deadline (minutes) and report only "never wrote addr" — the
// daemon's real exit was swallowed by the cleanup path. It must now fail
// promptly and surface that the daemon exited.
func TestBootFailurePropagates(t *testing.T) {
	// run() builds ./cmd/orserved, so it must execute from the repo root.
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir("../.."); err != nil {
		t.Fatal(err)
	}
	defer os.Chdir(wd)

	// Occupy a port so the daemon's bind fails deterministically.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	start := time.Now()
	err = run(defaultBaseline, 5*time.Minute, ln.Addr().String())
	if err == nil {
		t.Fatal("harness reported success although the daemon could not bind")
	}
	if !strings.Contains(err.Error(), "exited before serving") {
		t.Errorf("failure does not surface the daemon exit: %v", err)
	}
	// "Promptly" = well under the overall deadline; the daemon dies at
	// bind time, so seconds (build time) not minutes.
	if elapsed := time.Since(start); elapsed > 2*time.Minute {
		t.Errorf("boot failure took %v to surface", elapsed)
	}
}
