package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeJSON(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const baseDoc = `{
  "go_version": "go1.24.0",
  "benchmarks": [
    {"name": "BenchmarkA", "procs": 1, "iterations": 10, "metrics": {"ns/op": 1000, "allocs/op": 5}},
    {"name": "BenchmarkA", "procs": 1, "iterations": 10, "metrics": {"ns/op": 1100, "allocs/op": 5}},
    {"name": "BenchmarkB", "procs": 1, "iterations": 10, "metrics": {"ns/op": 2000, "allocs/op": 0}},
    {"name": "BenchmarkOld", "procs": 1, "iterations": 10, "metrics": {"ns/op": 50}}
  ]
}`

// pairDoc exercises the BENCH_PR2.json before/after shape: the gate
// compares against the "after" side only.
const pairDocText = `{
  "before": {"benchmarks": [{"name": "BenchmarkC", "metrics": {"ns/op": 9000, "allocs/op": 90}}]},
  "after":  {"benchmarks": [{"name": "BenchmarkC", "metrics": {"ns/op": 3000, "allocs/op": 2}}]}
}`

// fresh renders a fresh document with tunable A/B/C results plus one
// benchmark the baselines have never seen.
func fresh(aNs, aAllocs, bNs, cNs float64) string {
	return fmt.Sprintf(`{"benchmarks": [
  {"name": "BenchmarkA", "metrics": {"ns/op": %g, "allocs/op": %g}},
  {"name": "BenchmarkB", "metrics": {"ns/op": %g, "allocs/op": 0}},
  {"name": "BenchmarkC", "metrics": {"ns/op": %g, "allocs/op": 2}},
  {"name": "BenchmarkNew", "metrics": {"ns/op": 7}}
]}`, aNs, aAllocs, bNs, cNs)
}

func runDiff(t *testing.T, freshText string, extra ...string) (string, error) {
	t.Helper()
	dir := t.TempDir()
	freshPath := writeJSON(t, dir, "fresh.json", freshText)
	base1 := writeJSON(t, dir, "base1.json", baseDoc)
	base2 := writeJSON(t, dir, "base2.json", pairDocText)
	var out, errb bytes.Buffer
	args := append([]string{"-fresh", freshPath}, extra...)
	args = append(args, base1, base2)
	err := run(args, &out, &errb)
	return out.String(), err
}

func TestBenchdiffPass(t *testing.T) {
	// Within 25% on ns/op (baseline A collapses to min 1000), equal allocs.
	out, err := runDiff(t, fresh(1200, 5, 2100, 3100))
	if err != nil {
		t.Fatalf("expected pass, got %v\n%s", err, out)
	}
	for _, want := range []string{
		"BenchmarkA", "BenchmarkB", "BenchmarkC",
		"not in fresh run (skipped)", // BenchmarkOld
		"no baseline (skipped)",      // BenchmarkNew
		"within limits",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBenchdiffNsRegression(t *testing.T) {
	// A at 1300 vs min-baseline 1000 = +30% > 25%.
	out, err := runDiff(t, fresh(1300, 5, 2000, 3000))
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("expected ns/op regression failure, got %v\n%s", err, out)
	}
	if !strings.Contains(out, "FAIL ns/op") {
		t.Errorf("output missing ns/op verdict:\n%s", out)
	}
}

func TestBenchdiffAllocRegression(t *testing.T) {
	// Any allocs/op increase fails, even with ns/op well within bounds.
	out, err := runDiff(t, fresh(900, 6, 2000, 3000))
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("expected allocs/op failure, got %v\n%s", err, out)
	}
	if !strings.Contains(out, "FAIL allocs/op 5 -> 6") {
		t.Errorf("output missing allocs verdict:\n%s", out)
	}
}

func TestBenchdiffAllocRatioFlag(t *testing.T) {
	// A's baseline collapses to 5 allocs; 6 is +20%, beyond the 10% slack,
	// so it still fails — but B (zero-alloc baseline) must fail on ANY
	// growth no matter how generous the ratio.
	if out, err := runDiff(t, fresh(1000, 6, 2000, 3000), "-alloc-ratio", "1.1"); err == nil {
		t.Fatalf("expected A's +20%% allocs to fail at -alloc-ratio 1.1\n%s", out)
	}
	if out, err := runDiff(t, fresh(1000, 5.5, 2000, 3000), "-alloc-ratio", "1.1"); err != nil {
		t.Fatalf("expected A's +10%% allocs to pass at -alloc-ratio 1.1, got %v\n%s", err, out)
	}
	zeroGrew := `{"benchmarks": [
  {"name": "BenchmarkA", "metrics": {"ns/op": 1000, "allocs/op": 5}},
  {"name": "BenchmarkB", "metrics": {"ns/op": 2000, "allocs/op": 1}},
  {"name": "BenchmarkC", "metrics": {"ns/op": 3000, "allocs/op": 2}}
]}`
	out, err := runDiff(t, zeroGrew, "-alloc-ratio", "100")
	if err == nil || !strings.Contains(err.Error(), "BenchmarkB") {
		t.Fatalf("zero-alloc baseline must stay strict under any ratio, got %v\n%s", err, out)
	}
}

func TestBenchdiffMaxRatioFlag(t *testing.T) {
	// +30% passes when the gate is loosened to 1.5.
	if out, err := runDiff(t, fresh(1300, 5, 2000, 3000), "-max-ratio", "1.5"); err != nil {
		t.Fatalf("expected pass at -max-ratio 1.5, got %v\n%s", err, out)
	}
}

func TestBenchdiffPairBaseline(t *testing.T) {
	// BenchmarkC's baseline is the pair's "after" (3000 ns, 2 allocs):
	// 4000 ns is +33% and must fail against it, not against "before".
	out, err := runDiff(t, fresh(1000, 5, 2000, 4000))
	if err == nil || !strings.Contains(err.Error(), "BenchmarkC") {
		t.Fatalf("expected BenchmarkC regression vs the after side, got %v\n%s", err, out)
	}
}

func TestSelectNewest(t *testing.T) {
	got, err := selectNewest([]string{
		"ci/BENCH_PR2.json", "extra.json", "BENCH_PR10.json", "BENCH_PR9.json",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "extra.json BENCH_PR10.json" // pass-through first, then the newest
	if strings.Join(got, " ") != want {
		t.Errorf("selectNewest = %v, want %q", got, want)
	}
	got, err = selectNewest([]string{"extra.json"})
	if err != nil || got != nil {
		t.Errorf("selectNewest with no BENCH_PR file: got %v, %v; want nil, nil", got, err)
	}
}

func TestBenchdiffNewestFlag(t *testing.T) {
	// PR1 baselines BenchmarkA at 10 ns; PR2 re-baselines it at 1000 ns.
	// With -newest only PR2 applies, so a 1000 ns fresh run passes; without
	// it the merge order (PR2 listed before PR1) leaves PR1 winning, a 100×
	// regression.
	dir := t.TempDir()
	freshPath := writeJSON(t, dir, "fresh.json",
		`{"benchmarks": [{"name": "BenchmarkA", "metrics": {"ns/op": 1000, "allocs/op": 5}}]}`)
	pr1 := writeJSON(t, dir, "BENCH_PR1.json",
		`{"benchmarks": [{"name": "BenchmarkA", "metrics": {"ns/op": 10, "allocs/op": 5}}]}`)
	pr2 := writeJSON(t, dir, "BENCH_PR2.json",
		`{"benchmarks": [{"name": "BenchmarkA", "metrics": {"ns/op": 1000, "allocs/op": 5}}]}`)

	var out, errb bytes.Buffer
	if err := run([]string{"-fresh", freshPath, "-newest", pr2, pr1}, &out, &errb); err != nil {
		t.Fatalf("-newest run failed: %v\n%s", err, out.String())
	}
	out.Reset()
	if err := run([]string{"-fresh", freshPath, pr2, pr1}, &out, &errb); err == nil {
		t.Fatalf("without -newest the stale PR1 baseline should fail the gate\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-fresh", freshPath, "-newest", freshPath}, &out, &errb); err != nil {
		t.Errorf("-newest with no matching baseline must be advisory, got error %v", err)
	}
	if !strings.Contains(out.String(), "no BENCH_PR") || !strings.Contains(out.String(), "skipping") {
		t.Errorf("-newest with no matching baseline: want a loud skip notice, got %q", out.String())
	}
}

// TestBenchdiffNewestNoBaselineAdvisory pins the first-PR contract: the glob
// BENCH_PR*.json expands to nothing (the shell passes the literal pattern
// through), and benchdiff must announce the skip and exit 0 rather than fail
// CI before any baseline exists.
func TestBenchdiffNewestNoBaselineAdvisory(t *testing.T) {
	dir := t.TempDir()
	freshPath := writeJSON(t, dir, "fresh.json",
		`{"benchmarks": [{"name": "BenchmarkA", "metrics": {"ns/op": 1000, "allocs/op": 5}}]}`)
	var out, errb bytes.Buffer
	if err := run([]string{"-fresh", freshPath, "-newest", "BENCH_PR*.json"}, &out, &errb); err != nil {
		t.Fatalf("unexpanded glob with -newest: want advisory nil error, got %v", err)
	}
	if !strings.Contains(out.String(), "no BENCH_PR<n>.json baseline found") {
		t.Errorf("skip notice missing: %q", out.String())
	}
}

func TestBenchdiffErrors(t *testing.T) {
	dir := t.TempDir()
	freshPath := writeJSON(t, dir, "fresh.json", fresh(1000, 5, 2000, 3000))
	basePath := writeJSON(t, dir, "base.json", baseDoc)
	disjoint := writeJSON(t, dir, "disjoint.json", `{"benchmarks": [{"name": "BenchmarkZ", "metrics": {"ns/op": 1}}]}`)
	bad := writeJSON(t, dir, "bad.json", "{not json")

	var out, errb bytes.Buffer
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"no fresh", []string{basePath}, "-fresh is required"},
		{"no baselines", []string{"-fresh", freshPath}, "no baseline files"},
		{"bad json", []string{"-fresh", freshPath, bad}, "bad.json"},
		{"no common names", []string{"-fresh", disjoint, basePath}, "in common"},
		{"missing file", []string{"-fresh", freshPath, filepath.Join(dir, "gone.json")}, "gone.json"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := run(tc.args, &out, &errb)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) err = %v, want containing %q", tc.args, err, tc.want)
			}
		})
	}
}
