// Command benchdiff gates benchmark regressions: it compares a fresh
// bench2json document against one or more checked-in baselines
// (BENCH_PR1.json, BENCH_PR2.json, ...) and exits nonzero when any common
// benchmark got more than -max-ratio slower in ns/op, or grew its
// allocs/op beyond -alloc-ratio (default 1.0: any growth at all) — the
// repo's hot paths are allocation-free by design, so for them any
// allocs/op increase is a regression, not noise, and no positive
// -alloc-ratio ever relaxes a zero-alloc baseline.
//
// Usage:
//
//	make bench BENCH_OUT=bench_fresh.json
//	go run ./scripts/benchdiff -fresh bench_fresh.json BENCH_PR1.json BENCH_PR2.json
//	go run ./scripts/benchdiff -fresh bench_fresh.json -newest BENCH_PR*.json
//
// With -newest, only the numerically highest BENCH_PR<n>.json among the
// arguments is used as the baseline (non-matching arguments pass through),
// so the makefile can glob the checked-in baselines instead of naming the
// latest one by hand.
//
// Baselines may be plain bench2json documents or the {"before","after"}
// pair BENCH_PR2.json records; the "after" side is the baseline. Repeated
// runs of one benchmark collapse to their per-metric minimum (the least
// noisy sample) before comparison. Benchmarks present on only one side are
// reported but never fail the gate, so baselines from different PRs can
// cover different suites.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

type benchmark struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

type document struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

// pairDoc is the BENCH_PR2.json shape: one optimization's before/after.
type pairDoc struct {
	Before *document `json:"before"`
	After  *document `json:"after"`
}

// loadDoc reads a bench2json document, accepting both the plain shape and
// the before/after pair (the "after" side is the committed baseline).
func loadDoc(path string) (*document, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var pair pairDoc
	if err := json.Unmarshal(data, &pair); err == nil && pair.After != nil {
		return pair.After, nil
	}
	var doc document
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Benchmarks == nil {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &doc, nil
}

// mins collapses repeated runs of each benchmark to the per-metric minimum.
func mins(doc *document) map[string]map[string]float64 {
	out := make(map[string]map[string]float64)
	for _, b := range doc.Benchmarks {
		m := out[b.Name]
		if m == nil {
			m = make(map[string]float64)
			out[b.Name] = m
		}
		for metric, v := range b.Metrics {
			if cur, ok := m[metric]; !ok || v < cur {
				m[metric] = v
			}
		}
	}
	return out
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	freshPath := fs.String("fresh", "", "fresh bench2json document to gate (required)")
	maxRatio := fs.Float64("max-ratio", 1.25, "fail when fresh ns/op exceeds baseline × this ratio")
	allocRatio := fs.Float64("alloc-ratio", 1.0, "fail when fresh allocs/op exceeds baseline × this ratio (1.0 = any growth fails; a zero-alloc baseline always fails on growth)")
	newest := fs.Bool("newest", false, "of the BENCH_PR<n>.json baselines given, keep only the highest n")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *freshPath == "" {
		return errors.New("-fresh is required")
	}
	baselines := fs.Args()
	if *newest {
		var err error
		if baselines, err = selectNewest(baselines); err != nil {
			return err
		}
		if baselines == nil {
			// A repo with no checked-in BENCH_PR<n>.json yet (first PR, or a
			// fresh clone before any baseline lands) has nothing to gate
			// against; that is advisory, not an error — CI must stay green.
			fmt.Fprintln(stdout, "benchdiff: -newest: no BENCH_PR<n>.json baseline found; skipping the bench gate (advisory until a baseline is checked in)")
			return nil
		}
	}
	return gate(*freshPath, *maxRatio, *allocRatio, baselines, stdout)
}

// benchPRPattern matches checked-in per-PR baselines (BENCH_PR3.json).
var benchPRPattern = regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)

// selectNewest filters the baseline list for -newest: of the arguments whose
// basename matches BENCH_PR<n>.json, only the numerically highest n survives
// (the glob BENCH_PR*.json can then be passed without hand-updating the
// makefile each PR). Arguments that don't match the pattern pass through
// untouched. When no argument matches it returns a nil slice — the caller
// announces the skip loudly and treats the gate as advisory, because an
// unexpanded glob (a repo with no baseline checked in yet) must not fail CI.
func selectNewest(paths []string) ([]string, error) {
	bestN := -1
	best := ""
	var rest []string
	for _, p := range paths {
		m := benchPRPattern.FindStringSubmatch(filepath.Base(p))
		if m == nil {
			rest = append(rest, p)
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p, err)
		}
		if n > bestN {
			bestN, best = n, p
		}
	}
	if bestN < 0 {
		return nil, nil
	}
	return append(rest, best), nil
}

// gate runs the comparison of fresh against the merged baselines.
func gate(freshPath string, maxRatio, allocRatio float64, baselinePaths []string, stdout io.Writer) error {
	if len(baselinePaths) == 0 {
		return errors.New("no baseline files given")
	}

	freshDoc, err := loadDoc(freshPath)
	if err != nil {
		return err
	}
	fresh := mins(freshDoc)

	// Merge every baseline; on a name collision the *newest* file (last on
	// the command line) wins, matching how successive PRs re-baseline.
	base := make(map[string]map[string]float64)
	for _, path := range baselinePaths {
		doc, err := loadDoc(path)
		if err != nil {
			return err
		}
		for name, m := range mins(doc) {
			base[name] = m
		}
	}

	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)

	var failures []string
	compared := 0
	fmt.Fprintf(stdout, "%-40s %14s %14s %7s %s\n", "benchmark", "base ns/op", "fresh ns/op", "ratio", "verdict")
	for _, name := range names {
		f, ok := fresh[name]
		if !ok {
			fmt.Fprintf(stdout, "%-40s %14.0f %14s %7s %s\n", name, base[name]["ns/op"], "-", "-", "not in fresh run (skipped)")
			continue
		}
		compared++
		bNs, fNs := base[name]["ns/op"], f["ns/op"]
		ratio := 0.0
		if bNs > 0 {
			ratio = fNs / bNs
		}
		verdict := "ok"
		if bNs > 0 && ratio > maxRatio {
			verdict = fmt.Sprintf("FAIL ns/op +%.0f%% (limit +%.0f%%)", 100*(ratio-1), 100*(maxRatio-1))
			failures = append(failures, name+": "+verdict)
		}
		if bA, ok := base[name]["allocs/op"]; ok {
			// The tolerance is relative, so a zero-alloc baseline stays
			// strict: the hot paths pinned at 0 allocs fail on any growth,
			// while campaign-scale counts absorb ±1–2 of per-iteration
			// rounding jitter against the min-collapsed baseline.
			if fA, ok := f["allocs/op"]; ok && fA > bA*allocRatio {
				av := fmt.Sprintf("FAIL allocs/op %.0f -> %.0f", bA, fA)
				if verdict == "ok" {
					verdict = av
				} else {
					verdict += "; " + av
				}
				failures = append(failures, name+": "+av)
			}
		}
		fmt.Fprintf(stdout, "%-40s %14.0f %14.0f %6.2fx %s\n", name, bNs, fNs, ratio, verdict)
	}
	var freshOnly []string
	for name := range fresh {
		if _, ok := base[name]; !ok {
			freshOnly = append(freshOnly, name)
		}
	}
	sort.Strings(freshOnly)
	for _, name := range freshOnly {
		fmt.Fprintf(stdout, "%-40s %14s %14.0f %7s %s\n", name, "-", fresh[name]["ns/op"], "-", "no baseline (skipped)")
	}
	if compared == 0 {
		return errors.New("no benchmark names in common between fresh run and baselines")
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark regression(s):\n  %s", len(failures), joinLines(failures))
	}
	fmt.Fprintf(stdout, "\nbenchdiff: %d benchmarks within limits (max ns/op ratio %.2f, no alloc growth)\n", compared, maxRatio)
	return nil
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}
