module openresolver

go 1.22
