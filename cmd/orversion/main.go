// Command orversion reproduces the resolver-software survey the paper
// cites as reference [8] (Takano et al.): it instantiates the measured
// open-resolver population at a sampled scale, probes every responder with
// a CHAOS-class version.bind TXT query, and tabulates the software banners.
//
// Usage:
//
//	orversion [-year 2018] [-shift 12] [-seed 1] [-top 12]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"openresolver/internal/behavior"
	"openresolver/internal/core"
	"openresolver/internal/fingerprint"
	"openresolver/internal/geo"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
	"openresolver/internal/paperdata"
	"openresolver/internal/population"
	"openresolver/internal/scan"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "orversion:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("orversion", flag.ContinueOnError)
	year := fs.Int("year", 2018, "campaign year (2013 or 2018)")
	shift := fs.Uint("shift", 12, "sample shift: scale to 1/2^shift")
	seed := fs.Int64("seed", 1, "deterministic seed")
	top := fs.Int("top", 12, "banners to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *shift < 6 {
		return fmt.Errorf("shift %d too small for host-level simulation", *shift)
	}

	pop, err := population.Build(population.Config{
		Year: paperdata.Year(*year), SampleShift: uint8(*shift), Seed: *seed,
	})
	if err != nil {
		return err
	}
	u, err := scan.NewUniverse(uint64(*seed), uint8(*shift), ipv4.NewReservedBlocklist())
	if err != nil {
		return err
	}
	assigner, err := population.NewAssigner(u, geo.DefaultRegistry(), pop,
		core.ProberAddr, core.RootAddr, core.TLDAddr, core.AuthAddr)
	if err != nil {
		return err
	}

	sim := netsim.New(netsim.Config{
		Seed:    *seed,
		Latency: netsim.UniformLatency(5*time.Millisecond, 60*time.Millisecond),
	})
	rng := rand.New(rand.NewSource(*seed ^ 0xF17))
	var targets []ipv4.Addr
	for _, cohort := range pop.Cohorts {
		for i := uint64(0); i < cohort.Count; i++ {
			src, err := assigner.Next(cohort.Country)
			if err != nil {
				return err
			}
			profile := cohort.Profile
			profile.Upstream = 0 // no hierarchy in this survey
			profile.Version = fingerprint.Assign(rng, fingerprint.DefaultDistribution)
			behavior.NewResolver(sim, src, core.RootAddr, profile)
			targets = append(targets, src)
		}
	}

	res, err := fingerprint.Scan(sim, core.ProberAddr, targets)
	if err != nil {
		return err
	}

	fmt.Printf("version.bind survey over %d responders (%d campaign, 1/%d sample)\n\n",
		res.Probed, *year, uint64(1)<<*shift)
	fmt.Printf("%-44s %8s %8s\n", "banner", "count", "share")
	for _, v := range res.Top(*top) {
		fmt.Printf("%-44s %8d %7.1f%%\n", v.Banner, v.Weight,
			float64(v.Weight)/float64(res.Probed)*100)
	}
	fmt.Printf("%-44s %8d %7.1f%%\n", "(banner withheld)", res.Refused,
		float64(res.Refused)/float64(res.Probed)*100)
	if res.Silent > 0 {
		fmt.Printf("%-44s %8d\n", "(silent)", res.Silent)
	}
	fmt.Println("\nEmbedded forwarder builds (dnsmasq) dominate, as Takano et al. [8]")
	fmt.Println("observed — the same CPE population behind the paper's deviant flags.")
	return nil
}
