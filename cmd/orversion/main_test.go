package main

import "testing"

func TestRun(t *testing.T) {
	if err := run([]string{"-shift", "13", "-top", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-shift", "2"}); err == nil {
		t.Error("tiny shift accepted")
	}
	if err := run([]string{"-year", "1999"}); err == nil {
		t.Error("unknown year accepted")
	}
}
