// Command orzone generates and verifies the subdomain-cluster zone files
// of §III-B ("Five million subdomains ... are generated as one cluster (a
// zone file)"), in BIND master format.
//
// Usage:
//
//	orzone -gen -cluster 3 -size 100000 -o cluster3.zone
//	orzone -check cluster3.zone
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"openresolver/internal/dnssrv"
	"openresolver/internal/paperdata"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "orzone:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("orzone", flag.ContinueOnError)
	gen := fs.Bool("gen", false, "generate a cluster zone file")
	cluster := fs.Int("cluster", 0, "cluster number (0-799)")
	size := fs.Int("size", paperdata.ClusterSize, "subdomains in the cluster")
	out := fs.String("o", "", "output path for -gen (default stdout)")
	check := fs.String("check", "", "verify a zone file against the ground truth")
	sld := fs.String("sld", paperdata.SLD, "zone origin")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *gen:
		if *cluster < 0 || *cluster >= paperdata.TheoreticalClusters {
			return fmt.Errorf("cluster %d out of range [0,%d)", *cluster, paperdata.TheoreticalClusters)
		}
		if *size <= 0 {
			return errors.New("size must be positive")
		}
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer f.Close()
			w = f
		}
		if err := dnssrv.WriteClusterZone(w, *sld, *cluster, *size); err != nil {
			return err
		}
		if *out != "" {
			fmt.Printf("wrote cluster %d (%d subdomains) to %s\n", *cluster, *size, *out)
		}
		return nil

	case *check != "":
		f, err := os.Open(*check)
		if err != nil {
			return err
		}
		defer f.Close()
		z, err := dnssrv.ParseZoneFile(f)
		if err != nil {
			return err
		}
		n, err := dnssrv.VerifyClusterZone(z)
		if err != nil {
			return err
		}
		fmt.Printf("%s: origin %s, serial %d, %d records, all match ground truth\n",
			*check, z.Origin, z.Serial, n)
		return nil
	}
	return errors.New("usage: orzone -gen [-cluster N] [-size N] [-o file] | orzone -check file")
}
