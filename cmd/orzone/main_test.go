package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenAndCheck(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c3.zone")
	if err := run([]string{"-gen", "-cluster", "3", "-size", "500", "-o", path}); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatal("empty zone file")
	}
	if err := run([]string{"-check", path}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no mode accepted")
	}
	if err := run([]string{"-gen", "-cluster", "900"}); err == nil {
		t.Error("out-of-range cluster accepted")
	}
	if err := run([]string{"-gen", "-size", "0"}); err == nil {
		t.Error("zero size accepted")
	}
	if err := run([]string{"-check", "/nonexistent.zone"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}
