// Command orserved is the resolver-observatory service daemon: an
// HTTP/JSON API over the campaign and sweep engines. Clients POST the same
// declarative grid specs orsweep runs (spec-file text or structured
// fields); the daemon executes them as concurrent bounded jobs over a
// shared worker budget with per-tenant token-bucket admission control,
// streams progress and partial result matrices mid-run, supports
// cooperative cancel and checkpointed resume, and content-address-caches
// completed results so an identical (spec, seed) submission returns
// instantly. Result tables are byte-identical to the same spec run through
// orsweep. The full API is documented in API.md.
//
// Usage:
//
//	orserved [-addr host:port] [-addr-file path] [-state-dir dir]
//	         [-max-jobs N] [-workers N] [-cache-entries N]
//	         [-tenant-rate R] [-tenant-burst B] [-tenant-max-active N]
//	         [-fabric-addr host:port]
//
// With -fabric-addr the daemon additionally runs a fabric coordinator:
// pure-year sim cells of every job are leased to `orfabric -worker`
// processes that dial in, instead of running in-process, with result
// bytes pinned identical either way (DESIGN.md §15).
//
// SIGINT/SIGTERM drain the daemon gracefully: new submissions are refused
// with 503, running jobs stop at their next shard boundary and checkpoint
// under -state-dir, and the HTTP server shuts down once in-flight requests
// finish. A second signal force-quits. Because job state is content-
// addressed by spec under -state-dir, a restarted daemon resumes any
// resubmitted spec from where the drain stopped it.
//
// Examples:
//
//	orserved -addr :8080 -state-dir /var/lib/orserved
//	curl -s localhost:8080/healthz
//	curl -s -XPOST localhost:8080/v1/jobs -d '{"years":["2018"],"loss":["none"],"retry":["2+adaptive"],"shift":16}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"openresolver/internal/core"
	"openresolver/internal/fabric"
	"openresolver/internal/obs"
	"openresolver/internal/serve"
	"openresolver/internal/sigctx"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "orserved:", err)
		os.Exit(1)
	}
}

// serving is called with the bound address once the API is accepting
// requests. Tests hook it to drive the live daemon.
var serving = func(addr string) {}

// fabricUp is called with the fabric coordinator's bound address once it
// accepts workers (-fabric-addr only). Tests hook it to dial workers in.
var fabricUp = func(addr string) {}

func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("orserved", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address for the HTTP API (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once serving (for scripts wrapping -addr :0)")
	stateDir := fs.String("state-dir", "", "job artifact and checkpoint directory (empty = a fresh temporary directory)")
	maxJobs := fs.Int("max-jobs", 2, "jobs executing concurrently; further submissions queue in order")
	workers := fs.Int("workers", 0, "total cell-pool budget shared by running jobs (0 = all cores)")
	cacheEntries := fs.Int("cache-entries", 0, "completed results kept in the digest cache (0 = 64)")
	tenantRate := fs.Float64("tenant-rate", 0, "sustained submissions per second admitted per tenant (0 = unlimited)")
	tenantBurst := fs.Float64("tenant-burst", 0, "token-bucket burst capacity per tenant (0 = max(1, -tenant-rate))")
	tenantMaxActive := fs.Int("tenant-max-active", 0, "queued+running jobs allowed per tenant (0 = unlimited)")
	fabricAddr := fs.String("fabric-addr", "", "run a fabric coordinator on this address and dispatch sim cells to its workers (empty = run cells in-process)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}

	reg := obs.NewRegistry()
	reg.Publish("openresolver")

	// With -fabric-addr the daemon doubles as a fabric coordinator: every
	// job's pure-year sim cells are leased to orfabric workers that dial
	// in, instead of running in this process. Result bytes are identical
	// either way — the fabric's merge discipline is pinned by the digest
	// cache keys themselves.
	var simRunner func(cfg core.Config, lossSpec string) (*core.Dataset, error)
	if *fabricAddr != "" {
		co := fabric.NewCoordinator(fabric.CoordinatorConfig{
			Obs: reg.NewShard("fabric"),
			Log: stderr,
		})
		if err := co.Listen(*fabricAddr); err != nil {
			return err
		}
		defer co.Close()
		fmt.Fprintf(stderr, "orserved: fabric coordinator on %s — connect workers with: orfabric -worker -connect %s\n", co.Addr(), co.Addr())
		fabricUp(co.Addr())
		simRunner = co.RunCampaign
	}

	mgr, err := serve.NewManager(serve.Config{
		StateDir:     *stateDir,
		MaxJobs:      *maxJobs,
		Workers:      *workers,
		CacheEntries: *cacheEntries,
		Tenant: serve.TenantPolicy{
			SubmitsPerSec: *tenantRate,
			Burst:         *tenantBurst,
			MaxActive:     *tenantMaxActive,
		},
		Obs:       reg,
		Log:       stderr,
		SimRunner: simRunner,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			ln.Close()
			return err
		}
	}
	srv := &http.Server{Handler: serve.NewHandler(mgr)}

	ctx, cancel := sigctx.New("orserved", stderr)
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	fmt.Fprintf(stderr, "orserved: serving on http://%s (state in %s)\n", ln.Addr(), mgr.StateDir())
	serving(ln.Addr().String())

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop admitting work, let running jobs checkpoint at
	// their next shard boundary, then close the HTTP server once in-flight
	// requests have been answered.
	fmt.Fprintln(stderr, "orserved: draining — cancelling jobs at their next shard boundary")
	mgr.Drain()
	shutdownCtx, stop := context.WithTimeout(context.Background(), 10*time.Second)
	defer stop()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	fmt.Fprintln(stderr, "orserved: drained; state preserved in", mgr.StateDir())
	return nil
}
