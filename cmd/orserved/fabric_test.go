package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"openresolver/internal/fabric"
)

// TestDaemonFabricBackend pins -fabric-addr: the daemon runs a fabric
// coordinator, sim cells are leased to workers that dial in, and the
// result matrix is byte-identical to the same spec run by an ordinary
// in-process daemon. The two daemons run sequentially because SIGTERM is
// process-wide.
func TestDaemonFabricBackend(t *testing.T) {
	const spec = `{"loss":["none","loss:0.3"],"retry":["0"],"shift":16,"seed":1}`
	plain := daemonMatrix(t, spec, nil)
	fabricMatrix := daemonMatrix(t, spec, func(t *testing.T, coordAddr string, done <-chan struct{}) {
		ctx, cancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				fabric.RunWorker(ctx, fabric.WorkerConfig{Addr: coordAddr, Name: fmt.Sprintf("test-w%d", i)})
			}(i)
		}
		go func() {
			<-done
			cancel()
			wg.Wait()
		}()
	})
	if plain != fabricMatrix {
		t.Errorf("fabric-backed matrix differs from the in-process matrix\n--- in-process ---\n%s\n--- fabric ---\n%s", plain, fabricMatrix)
	}
	if !strings.Contains(plain, "sweep matrix:") {
		t.Errorf("unexpected matrix output:\n%s", plain)
	}
}

// daemonMatrix boots one daemon (with -fabric-addr when workers is
// non-nil), runs spec to completion, returns the text matrix, and drains
// the daemon. The workers hook receives the coordinator address and a
// channel closed when the job is done.
func daemonMatrix(t *testing.T, spec string, workers func(t *testing.T, coordAddr string, done <-chan struct{})) string {
	t.Helper()
	dir := t.TempDir()
	ready := make(chan string, 1)
	serving = func(addr string) { ready <- addr }
	defer func() { serving = func(string) {} }()
	jobDone := make(chan struct{})

	args := []string{
		"-addr", "127.0.0.1:0",
		"-state-dir", filepath.Join(dir, "state"),
	}
	if workers != nil {
		coordReady := make(chan string, 1)
		fabricUp = func(addr string) { coordReady <- addr }
		defer func() { fabricUp = func(string) {} }()
		args = append(args, "-fabric-addr", "127.0.0.1:0")
		go func() {
			select {
			case addr := <-coordReady:
				workers(t, addr, jobDone)
			case <-time.After(30 * time.Second):
				t.Error("fabric coordinator never came up")
			}
		}()
	}

	var errb lockedBuffer
	runErr := make(chan error, 1)
	go func() { runErr <- run(args, &errb) }()
	var addr string
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("daemon exited before serving: %v\n%s", err, errb.String())
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never started serving")
	}
	base := "http://" + addr

	code, body := post(t, base+"/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, body)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
	}
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for job.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s\n%s", job.State, errb.String())
		}
		time.Sleep(5 * time.Millisecond)
		code, body = get(t, base+"/v1/jobs/"+job.ID)
		if code != http.StatusOK {
			t.Fatalf("poll: status %d", code)
		}
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
	}
	code, matrix := get(t, base+"/v1/jobs/"+job.ID+"/result?format=text")
	if code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	close(jobDone)

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drained daemon exited with %v\n%s", err, errb.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	if workers != nil && !strings.Contains(errb.String(), "fabric coordinator on") {
		t.Errorf("daemon stderr missing the coordinator banner:\n%s", errb.String())
	}
	return string(matrix)
}
