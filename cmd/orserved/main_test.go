package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestDaemonLifecycle boots the real daemon on an ephemeral port and walks
// the whole service contract: health, submission, completion, the digest
// cache on resubmission, and a SIGTERM drain that exits cleanly. The same
// self-signal pattern as internal/sigctx's own test drives the shutdown.
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	ready := make(chan string, 1)
	serving = func(addr string) { ready <- addr }
	defer func() { serving = func(string) {} }()

	var errb lockedBuffer
	runErr := make(chan error, 1)
	go func() {
		runErr <- run([]string{
			"-addr", "127.0.0.1:0",
			"-addr-file", addrFile,
			"-state-dir", filepath.Join(dir, "state"),
			"-max-jobs", "2",
		}, &errb)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-runErr:
		t.Fatalf("daemon exited before serving: %v\n%s", err, errb.String())
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never started serving")
	}
	base := "http://" + addr

	if data, err := os.ReadFile(addrFile); err != nil || string(data) != addr {
		t.Errorf("-addr-file holds %q (err %v), want %q", data, err, addr)
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}

	// Submit the fast 2×2 shift-16 grid and poll it to completion.
	spec := `{"loss":["none","loss:0.3"],"retry":["0","2+adaptive"],"shift":16,"seed":1}`
	code, body := post(t, base+"/v1/jobs", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", code, body)
	}
	var job struct {
		ID    string `json:"id"`
		State string `json:"state"`
		Cells int    `json:"cells"`
	}
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job.Cells != 4 {
		t.Fatalf("job has %d cells, want 4", job.Cells)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for job.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", job.State)
		}
		time.Sleep(5 * time.Millisecond)
		code, body = get(t, base+"/v1/jobs/"+job.ID)
		if code != http.StatusOK {
			t.Fatalf("poll: status %d", code)
		}
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatal(err)
		}
	}
	code, matrix := get(t, base+"/v1/jobs/"+job.ID+"/result?format=text")
	if code != http.StatusOK || !strings.Contains(string(matrix), "sweep matrix: mode=sim shift=16 seed=1 cells=4") {
		t.Fatalf("result (status %d) is not the sweep matrix:\n%s", code, matrix)
	}

	// The identical grid resubmitted is a cache hit: 200, born done.
	code, body = post(t, base+"/v1/jobs", spec)
	if code != http.StatusOK {
		t.Fatalf("resubmission: status %d, want 200 (cache hit): %s", code, body)
	}
	var hit struct {
		Cached bool   `json:"cached"`
		State  string `json:"state"`
	}
	if err := json.Unmarshal(body, &hit); err != nil {
		t.Fatal(err)
	}
	if !hit.Cached || hit.State != "done" {
		t.Fatalf("resubmission not served from cache: %s", body)
	}

	// SIGTERM drains: the daemon refuses new work, shuts the listener
	// down, and run() returns nil.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("drained daemon exited with %v\n%s", err, errb.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit after SIGTERM")
	}
	out := errb.String()
	for _, want := range []string{"serving on http://", "draining", "drained"} {
		if !strings.Contains(out, want) {
			t.Errorf("daemon stderr missing %q:\n%s", want, out)
		}
	}
}

// TestDaemonFlagErrors: bad invocations fail fast instead of serving.
func TestDaemonFlagErrors(t *testing.T) {
	var errb bytes.Buffer
	if err := run([]string{"stray"}, &errb); err == nil {
		t.Error("stray positional argument accepted")
	}
	if err := run([]string{"-addr", "300.300.300.300:0"}, &errb); err == nil {
		t.Error("unlistenable address accepted")
	}
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// lockedBuffer keeps the daemon goroutine's stderr writes race-free with
// the test's reads.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
