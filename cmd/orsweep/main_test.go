package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sweepArgs is a fast 2×2 grid (shift 16): pristine vs lossy network,
// single-shot vs retrying prober, pool of two.
func sweepArgs(extra ...string) []string {
	return append([]string{
		"-shift", "16", "-seed", "1", "-workers", "2",
		"-loss", "none", "-loss", "loss:0.3",
		"-retry", "0", "-retry", "2+adaptive",
	}, extra...)
}

func TestSweepCLIMatrix(t *testing.T) {
	var out, errb bytes.Buffer
	if err := run(sweepArgs(), &out, &errb); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errb.String())
	}
	text := out.String()
	if !strings.Contains(text, "sweep matrix: mode=sim shift=16 seed=1 cells=4") {
		t.Errorf("matrix header missing:\n%s", text)
	}
	for _, want := range []string{"loss:0.3", "2+adaptive", "idx", "digest", "Δbase"} {
		if !strings.Contains(text, want) {
			t.Errorf("matrix missing %q:\n%s", want, text)
		}
	}
	// The baseline star lands on the pristine single-shot cell (row 0).
	if !strings.Contains(text, "*") {
		t.Errorf("no baseline marker in matrix:\n%s", text)
	}
	// Wall-clock stays on stderr, never in the matrix.
	if strings.Contains(text, "finished in") {
		t.Errorf("wall-clock leaked into stdout:\n%s", text)
	}
	if !strings.Contains(errb.String(), "sweep finished in") {
		t.Errorf("stderr missing the wall-clock note:\n%s", errb.String())
	}
}

// TestSweepCLIJSONAndDeterminism runs the same grid twice — pool of one,
// then pool of four with -diff — and requires identical matrix bytes.
func TestSweepCLIJSONAndDeterminism(t *testing.T) {
	dir := t.TempDir()
	j1, j4 := filepath.Join(dir, "m1.json"), filepath.Join(dir, "m4.json")

	var out1, out4, errb bytes.Buffer
	if err := run(append(sweepArgs("-json", j1), "-workers", "1"), &out1, &errb); err != nil {
		t.Fatal(err)
	}
	if err := run(append(sweepArgs("-json", j4, "-diff"), "-workers", "4"), &out4, &errb); err != nil {
		t.Fatal(err)
	}
	d1, err := os.ReadFile(j1)
	if err != nil {
		t.Fatal(err)
	}
	d4, err := os.ReadFile(j4)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d4) {
		t.Error("matrix JSON differs across pool sizes")
	}
	var m struct {
		Cells []struct {
			Baseline   bool   `json:"baseline"`
			Digest     string `json:"digest"`
			DeltaCount int    `json:"delta_count"`
		} `json:"cells"`
	}
	if err := json.Unmarshal(d1, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Cells) != 4 || !m.Cells[0].Baseline || len(m.Cells[0].Digest) != 64 {
		t.Errorf("unexpected matrix JSON shape: %+v", m.Cells)
	}
	// -diff appends the per-cell tables after the (identical) matrix.
	if !strings.HasPrefix(out4.String(), out1.String()) {
		t.Error("-diff output does not extend the plain matrix")
	}
	if !strings.Contains(out4.String(), "vs baseline:") {
		t.Errorf("-diff output missing delta tables:\n%s", out4.String())
	}
}

// TestSweepCLISpecFileAndResume drives the spec-file path end to end, then
// resumes with one artifact deleted and requires byte-identical stdout.
func TestSweepCLISpecFileAndResume(t *testing.T) {
	dir := t.TempDir()
	specPath := filepath.Join(dir, "grid.sweep")
	artDir := filepath.Join(dir, "runs")
	specText := `# CLI test grid
mode sim
shift 16
seed 1
loss none loss:0.3
retry 0 2+adaptive
workers 1
`
	if err := os.WriteFile(specPath, []byte(specText), 0o644); err != nil {
		t.Fatal(err)
	}

	var cold, errb bytes.Buffer
	if err := run([]string{"-spec", specPath, "-out", artDir, "-workers", "2"}, &cold, &errb); err != nil {
		t.Fatalf("cold run: %v\nstderr:\n%s", err, errb.String())
	}
	ents, err := os.ReadDir(artDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 4 {
		t.Fatalf("cold run left %d artifacts, want 4", len(ents))
	}
	if err := os.Remove(filepath.Join(artDir, ents[0].Name())); err != nil {
		t.Fatal(err)
	}

	var resumed, errResume bytes.Buffer
	if err := run([]string{"-spec", specPath, "-out", artDir, "-workers", "2", "-resume"},
		&resumed, &errResume); err != nil {
		t.Fatalf("resume run: %v", err)
	}
	if !bytes.Equal(cold.Bytes(), resumed.Bytes()) {
		t.Errorf("resumed stdout differs from cold run:\n--- cold\n%s--- resumed\n%s", cold.String(), resumed.String())
	}
	if n := strings.Count(errResume.String(), "resumed from artifact"); n != 3 {
		t.Errorf("resume log reports %d resumed cells, want 3:\n%s", n, errResume.String())
	}

	// A scalar flag overrides the spec file: -shift 17 halves every cell.
	var shifted bytes.Buffer
	if err := run([]string{"-spec", specPath, "-shift", "17", "-workers", "2"}, &shifted, &errb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(shifted.String(), "shift=17") {
		t.Errorf("-shift did not override the spec file:\n%s", shifted.String())
	}
}

func TestSweepCLIErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
		want string
	}{
		{"resume without out", []string{"-resume"}, "-resume needs -out"},
		{"bad year", []string{"-year", "1999"}, "1999"},
		{"bad loss", []string{"-loss", "bogus:1"}, "bogus"},
		{"bad retry", []string{"-retry", "1+turbo"}, "turbo"},
		{"bad cell-workers", []string{"-cell-workers", "x"}, "non-negative"},
		{"duplicate cells", []string{"-loss", "none", "-loss", "none"}, "duplicate cell"},
		{"positional junk", []string{"extra"}, "unexpected argument"},
		{"missing spec file", []string{"-spec", "/nonexistent/grid.sweep"}, "no such file"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			err := run(tc.args, &out, &errb)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) err = %v, want containing %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestSweepCLIMetrics exercises -metrics-addr: the per-cell shards are
// visible in the JSON snapshot and the OpenMetrics exposition serves under
// a Prometheus Accept header.
func TestSweepCLIMetrics(t *testing.T) {
	scraped := make(chan error, 1)
	old := metricsUp
	metricsUp = func(addr string) {
		scraped <- func() error {
			resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
			if err != nil {
				return err
			}
			body, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return err
			}
			var snap struct {
				Shards []struct {
					Label string `json:"label"`
				} `json:"shards"`
			}
			if err := json.Unmarshal(body, &snap); err != nil {
				return fmt.Errorf("snapshot JSON: %w", err)
			}
			var cellShards int
			for _, sh := range snap.Shards {
				if strings.HasPrefix(sh.Label, "cell-") {
					cellShards++
				}
			}
			if cellShards != 4 {
				return fmt.Errorf("snapshot has %d cell shards, want 4", cellShards)
			}

			req, err := http.NewRequest("GET", fmt.Sprintf("http://%s/metrics", addr), nil)
			if err != nil {
				return err
			}
			req.Header.Set("Accept", "application/openmetrics-text")
			resp2, err := http.DefaultClient.Do(req)
			if err != nil {
				return err
			}
			expo, err := io.ReadAll(resp2.Body)
			resp2.Body.Close()
			if err != nil {
				return err
			}
			if !strings.Contains(string(expo), "openresolver_probe_sent_total") {
				return fmt.Errorf("exposition missing probe counter:\n%s", expo)
			}
			return nil
		}()
	}
	defer func() { metricsUp = old }()

	var out, errb bytes.Buffer
	if err := run(sweepArgs("-metrics-addr", "127.0.0.1:0"), &out, &errb); err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errb.String())
	}
	if err := <-scraped; err != nil {
		t.Fatal(err)
	}
}
