// Command orsweep expands a declarative campaign grid — calibration year ×
// network impairment × retry policy × worker count — into cells, runs every
// cell over a bounded worker pool, and prints a comparison matrix against
// the loss-free baseline cell of each year. Cells are bit-identical to the
// same campaign run standalone through orsurvey, the matrix is byte-stable
// across pool sizes, and completed cells persist as JSON artifacts so an
// interrupted sweep resumes with -resume instead of re-running.
//
// Usage:
//
//	orsweep [-spec file] [-year Y]... [-loss SPEC]... [-retry POLICY]...
//	        [-cell-workers N]... [-mode sim|synth] [-shift N] [-seed N]
//	        [-pps N] [-max-events N] [-workers N] [-out dir] [-resume]
//	        [-watchdog dur] [-json file] [-diff]
//	        [-metrics-addr host:port] [-progress interval]
//
// SIGINT/SIGTERM stop the sweep gracefully: in-flight cells drain at their
// next shard boundary (persisting sub-cell checkpoints under -out), the
// matrix of completed cells is printed, and -resume finishes the rest. A
// second signal force-quits. -watchdog flags cells that run suspiciously
// long without ever killing them.
//
// Axis flags repeat (every combination becomes one cell) and override the
// same axis in -spec; scalar flags override the spec file's scalars.
//
// Examples:
//
//	orsweep -shift 14 -year 2018 -year 2013 -loss none -loss "ge:0.05,0.2,0.125,1" -retry 0 -retry 5+adaptive
//	    # 2×2×2 robustness grid, matrix on stdout
//	orsweep -spec grid.sweep -out runs/ -json matrix.json
//	orsweep -spec grid.sweep -out runs/ -resume   # finish an interrupted sweep
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"time"

	"openresolver/internal/core"
	"openresolver/internal/obs"
	"openresolver/internal/sigctx"
	"openresolver/internal/sweep"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "orsweep:", err)
		os.Exit(1)
	}
}

// metricsUp is called with the bound metrics address after the sweep's
// output is complete but before the server shuts down. Tests hook it to
// scrape the endpoints with the full run's data in place.
var metricsUp = func(addr string) {}

// multiFlag collects a repeatable string flag in order of appearance.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("orsweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var years, losses, retries, cellWorkers multiFlag
	fs.Var(&years, "year", "year axis value (repeatable): 2013, 2018, or fractional like 2015.5")
	fs.Var(&losses, "loss", `impairment axis value (repeatable): "none" or a netsim spec like "ge:0.05,0.2,0.125,1"`)
	fs.Var(&retries, "retry", `retry axis value (repeatable): "<budget>[+adaptive][+backoff]", e.g. 0 or 5+adaptive`)
	fs.Var(&cellWorkers, "cell-workers", "per-campaign worker axis value (repeatable; both modes — capped so cells × workers stays at the -workers pool bound)")
	specPath := fs.String("spec", "", "read the grid from this spec file (axis flags override its axes)")
	mode := fs.String("mode", "", "campaign engine: sim (default) or synth")
	shift := fs.Uint("shift", 0, "sample shift: scale every cell to 1/2^shift (default 14)")
	seed := fs.Int64("seed", 0, "deterministic seed shared by every cell (default 1)")
	pps := fs.Uint64("pps", 0, "probe rate override (0 = paper value)")
	maxEvents := fs.Int("max-events", 0, "per-cell event queue bound (sim; default 2^21)")
	poolWorkers := fs.Int("workers", 0, "cells running concurrently (0 = all cores); also the budget per-cell workers are capped against")
	watchdog := fs.Duration("watchdog", 0, "flag any cell still running after this long with a stderr warning (0 = off; cells are never killed)")
	outDir := fs.String("out", "", "write one JSON artifact per completed cell into this directory")
	resume := fs.Bool("resume", false, "skip cells whose completed artifact already exists in -out")
	jsonPath := fs.String("json", "", `write the matrix as JSON to this file ("-" = stdout)`)
	diff := fs.Bool("diff", false, "print the full per-cell delta tables after the matrix")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics (JSON or OpenMetrics via Accept), /debug/vars, /debug/pprof on this address")
	progress := fs.Duration("progress", 0, "print a live progress line to stderr at this interval (0 = off)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	if *resume && *outDir == "" {
		return errors.New("-resume needs -out (artifacts live there)")
	}

	spec := &sweep.Spec{}
	if *specPath != "" {
		f, err := os.Open(*specPath)
		if err != nil {
			return err
		}
		parsed, perr := sweep.ParseSpecFile(f)
		f.Close()
		if perr != nil {
			return perr
		}
		spec = parsed
	}
	if len(years) > 0 {
		spec.Years = nil
		for _, v := range years {
			y, err := sweep.ParseYear(v)
			if err != nil {
				return err
			}
			spec.Years = append(spec.Years, y)
		}
	}
	if len(losses) > 0 {
		spec.Loss = nil
		for _, v := range losses {
			l, err := sweep.ParseLoss(v)
			if err != nil {
				return err
			}
			spec.Loss = append(spec.Loss, l)
		}
	}
	if len(retries) > 0 {
		spec.Retry = nil
		for _, v := range retries {
			p, err := sweep.ParseRetryPolicy(v)
			if err != nil {
				return err
			}
			spec.Retry = append(spec.Retry, p)
		}
	}
	if len(cellWorkers) > 0 {
		spec.Workers = nil
		for _, v := range cellWorkers {
			w, err := strconv.Atoi(v)
			if err != nil || w < 0 {
				return fmt.Errorf("-cell-workers %q: want a non-negative integer", v)
			}
			spec.Workers = append(spec.Workers, w)
		}
	}
	// Scalar flags override the spec file only when set on the command line,
	// so "orsweep -spec grid.sweep" honors the file's shift/seed while
	// "orsweep -spec grid.sweep -shift 16" pins a quick rescale.
	fs.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "mode":
			spec.Mode = *mode
		case "shift":
			spec.Shift = uint8(*shift)
		case "seed":
			spec.Seed = *seed
		case "pps":
			spec.PPS = *pps
		case "max-events":
			spec.MaxEvents = *maxEvents
		}
	})

	cells, err := spec.Cells()
	if err != nil {
		return err
	}

	var reg *obs.Registry
	if *metricsAddr != "" || *progress > 0 {
		reg = obs.NewRegistry()
	}
	var srv *obs.Server
	if *metricsAddr != "" {
		if srv, err = obs.Serve(*metricsAddr, reg); err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "orsweep: metrics on http://%s/metrics (JSON; OpenMetrics via Accept)\n", srv.Addr)
	}
	if *progress > 0 {
		stop := reg.StartProgress(stderr, *progress)
		defer stop()
	}

	ctx, cancel := sigctx.New("orsweep", stderr)
	defer cancel()
	fmt.Fprintf(stderr, "orsweep: %d cells (mode=%s shift=%d seed=%d), pool=%d\n",
		len(cells), spec.Mode, spec.Shift, spec.Seed, poolSize(*poolWorkers))
	wallStart := time.Now()
	results, err := sweep.Run(sweep.RunConfig{
		Spec:        spec,
		PoolWorkers: *poolWorkers,
		ArtifactDir: *outDir,
		Resume:      *resume,
		Obs:         reg,
		Log:         stderr,
		Ctx:         ctx,
		Watchdog:    *watchdog,
	})
	interrupted := errors.Is(err, core.ErrInterrupted)
	if err != nil && !interrupted {
		return err
	}
	if interrupted {
		// Render what completed: artifacts are already on disk (and partial
		// cells left shard checkpoints), so -resume finishes the grid later.
		completed := results[:0:0]
		for i := range results {
			if results[i].Report != nil {
				completed = append(completed, results[i])
			}
		}
		fmt.Fprintf(stderr, "orsweep: interrupted with %d of %d cells complete; rerun with -resume to finish\n",
			len(completed), len(results))
		if *outDir == "" {
			fmt.Fprintln(stderr, "orsweep: no -out directory was set, so completed cells were not persisted")
		}
		if len(completed) == 0 {
			return err
		}
		m := sweep.BuildMatrix(spec, completed)
		fmt.Fprintln(stdout, "PARTIAL sweep matrix (interrupted):")
		if rerr := m.RenderText(stdout); rerr != nil {
			return rerr
		}
		return err
	}
	// Wall-clock lives on stderr only: the stdout matrix and the JSON stay
	// byte-identical across pool sizes and cold-vs-resumed runs.
	fmt.Fprintf(stderr, "orsweep: sweep finished in %v\n", time.Since(wallStart).Round(time.Millisecond))

	m := sweep.BuildMatrix(spec, results)
	if err := m.RenderText(stdout); err != nil {
		return err
	}
	if *diff {
		if err := m.RenderDeltas(stdout); err != nil {
			return err
		}
	}
	if *jsonPath != "" {
		data, err := m.JSON()
		if err != nil {
			return err
		}
		if *jsonPath == "-" {
			if _, err := stdout.Write(data); err != nil {
				return err
			}
		} else {
			if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(stderr, "orsweep: matrix JSON written to %s\n", *jsonPath)
		}
	}
	if srv != nil {
		metricsUp(srv.Addr)
	}
	return nil
}

// poolSize mirrors RunConfig's 0-means-all-cores default for the banner.
func poolSize(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}
