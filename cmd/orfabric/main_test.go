package main

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
)

// The CLI contract: every mode prints the identical bytes for the same
// campaign, so `cmp` between a distributed run and the single-process
// reference is the whole acceptance test.

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	var out bytes.Buffer
	if err := run(args, &out, io.Discard); err != nil {
		t.Fatalf("orfabric %v: %v", args, err)
	}
	return out.String()
}

func TestWorkersRemoteMatchesLocal(t *testing.T) {
	campaign := []string{"-year", "2018", "-shift", "14", "-seed", "1", "-keep-packets"}
	local := runCLI(t, append([]string{"-local"}, campaign...)...)
	remote := runCLI(t, append([]string{"-workers-remote", "2"}, campaign...)...)
	if local != remote {
		t.Errorf("-workers-remote 2 output differs from -local (len %d vs %d)", len(remote), len(local))
	}
	if !strings.Contains(local, "FaultDigest: ") {
		t.Error("output is missing the FaultDigest line")
	}
}

// TestCoordinatorWithCLIWorker drives the external-worker path end to
// end: one run() acting as coordinator, one run() acting as worker,
// joined only by the TCP address.
func TestCoordinatorWithCLIWorker(t *testing.T) {
	campaign := []string{"-year", "2013", "-shift", "14", "-seed", "1", "-keep-packets"}
	local := runCLI(t, append([]string{"-local"}, campaign...)...)

	addrCh := make(chan string, 1)
	old := coordinatorUp
	coordinatorUp = func(addr string) { addrCh <- addr }
	defer func() { coordinatorUp = old }()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		addr := <-addrCh
		// The worker exits cleanly when the coordinator finishes (DONE or
		// connection close), so errors here are real failures.
		if err := run([]string{"-worker", "-connect", addr, "-name", "cli-w"}, io.Discard, io.Discard); err != nil {
			t.Errorf("worker: %v", err)
		}
	}()
	var out bytes.Buffer
	if err := run(append([]string{"-coordinator", "-listen", "127.0.0.1:0"}, campaign...), &out, io.Discard); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	wg.Wait()
	if out.String() != local {
		t.Error("coordinator+CLI-worker output differs from -local")
	}
}

func TestModeValidation(t *testing.T) {
	if err := run(nil, io.Discard, io.Discard); err == nil {
		t.Error("no mode selected should error")
	}
	if err := run([]string{"-local", "-worker"}, io.Discard, io.Discard); err == nil {
		t.Error("two modes selected should error")
	}
	if err := run([]string{"-worker"}, io.Discard, io.Discard); err == nil {
		t.Error("-worker without -connect should error")
	}
}
