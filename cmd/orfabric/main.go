// Command orfabric distributes a simulated measurement campaign across
// processes and machines (DESIGN.md §15). A coordinator expands the
// campaign into the engine's fixed shard plan and leases shards to
// workers over a length-prefixed JSON/TCP protocol; workers run each
// shard on a fully private network and stream back self-validating
// checkpoint envelopes; the coordinator merges them in shard order — so
// the distributed run is byte-identical to `orsurvey -mode sim` on one
// machine, whatever the fleet does (crashes, stalls and duplicate
// deliveries all degrade to "rerun shard").
//
// Usage:
//
//	orfabric -local [campaign flags]              # single-process reference
//	orfabric -workers-remote 4 [campaign flags]   # coordinator + 4 loopback workers
//	orfabric -coordinator -listen :9053 [campaign flags]
//	orfabric -worker -connect host:9053           # thin worker, campaign comes from leases
//
// Examples:
//
//	orfabric -workers-remote 4 -year 2018 -shift 14 -keep-packets
//	orfabric -coordinator -listen 127.0.0.1:0 -addr-file coord.addr -shift 12
//	orfabric -worker -connect "$(cat coord.addr)" -name w1
//	orfabric -workers-remote 2 -loss-model "ge:0.05,0.2,0.125,1" -retries 2
//
// All modes print the identical report plus a trailing FaultDigest line,
// so outputs can be compared byte-for-byte (the fabric-smoke CI job does
// exactly that). SIGINT/SIGTERM stop a campaign gracefully; with
// -checkpoint-dir the coordinator resumes from completed shards on rerun.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"openresolver/internal/core"
	"openresolver/internal/fabric"
	"openresolver/internal/netsim"
	"openresolver/internal/obs"
	"openresolver/internal/paperdata"
	"openresolver/internal/sigctx"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "orfabric:", err)
		os.Exit(1)
	}
}

// coordinatorUp is called with the coordinator's bound address once it is
// accepting workers. Tests hook it to dial in-process workers.
var coordinatorUp = func(addr string) {}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("orfabric", flag.ContinueOnError)
	fs.SetOutput(stderr)
	coordinator := fs.Bool("coordinator", false, "run a coordinator and wait for external workers")
	worker := fs.Bool("worker", false, "run a worker: dial -connect, execute leased shards until the coordinator is done")
	workersRemote := fs.Int("workers-remote", 0, "self-contained run: coordinator plus N in-process workers over loopback TCP")
	local := fs.Bool("local", false, "single-process reference run (no fabric, same output)")
	connect := fs.String("connect", "", "coordinator address to dial (worker mode)")
	name := fs.String("name", "", "worker label in coordinator logs (worker mode)")
	listen := fs.String("listen", "127.0.0.1:0", "coordinator listen address")
	addrFile := fs.String("addr-file", "", "write the coordinator's bound address to this file once listening")
	year := fs.Int("year", 2018, "campaign year (2013 or 2018)")
	shift := fs.Uint("shift", 14, "sample shift: scale to 1/2^shift (needs ≥6)")
	seed := fs.Int64("seed", 1, "deterministic seed")
	pps := fs.Uint64("pps", 0, "probe rate override (0 = paper value)")
	keep := fs.Bool("keep-packets", false, "retain raw R2 packets (the full-width digest contract)")
	lossModel := fs.String("loss-model", "", `network impairment spec, e.g. "ge:0.05,0.2,0.125,1;dup:0.1" (crosses the wire verbatim)`)
	retries := fs.Int("retries", 0, "per-probe retransmission budget")
	adaptive := fs.Bool("adaptive-timeout", false, "adaptive RTO probe timeout instead of the fixed 2s")
	backoff := fs.Bool("upstream-backoff", false, "resolvers retry upstream queries with exponential backoff")
	maxEvents := fs.Int("max-events", 0, "bound the simulator event queue (0 = unbounded)")
	ckptDir := fs.String("checkpoint-dir", "", "coordinator: persist accepted shard envelopes here and resume from them on rerun")
	workers := fs.Int("workers", 0, "local mode: worker goroutines (0 = all cores)")
	heartbeat := fs.Duration("heartbeat", 500*time.Millisecond, "worker PROGRESS interval announced in WELCOME")
	leaseTimeout := fs.Duration("lease-timeout", 15*time.Second, "requeue a shard whose lease goes silent this long")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	modes := 0
	for _, on := range []bool{*coordinator, *worker, *workersRemote > 0, *local} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return errors.New("choose exactly one of -coordinator, -worker, -workers-remote N or -local")
	}

	ctx, cancel := sigctx.New("orfabric", stderr)
	defer cancel()

	if *worker {
		if *connect == "" {
			return errors.New("-worker needs -connect host:port")
		}
		return fabric.RunWorker(ctx, fabric.WorkerConfig{Addr: *connect, Name: *name, Log: stderr})
	}

	var imps []netsim.Impairment
	if *lossModel != "" && *lossModel != "none" {
		var err error
		if imps, err = netsim.ParseImpairments(*lossModel); err != nil {
			return err
		}
	}
	cfg := core.Config{
		Year:          paperdata.Year(*year),
		SampleShift:   uint8(*shift),
		Seed:          *seed,
		PacketsPerSec: *pps,
		KeepPackets:   *keep,
		Workers:       *workers,
		Faults: core.FaultPlan{
			Impairments:     imps,
			Retries:         *retries,
			AdaptiveTimeout: *adaptive,
			UpstreamBackoff: *backoff,
			MaxQueuedEvents: *maxEvents,
		},
		Ctx: ctx,
		Checkpoints: core.CheckpointPlan{
			Dir: *ckptDir,
			Log: stderr,
		},
	}

	if *local {
		ds, err := core.RunSimulation(cfg)
		if err != nil {
			return err
		}
		return render(stdout, ds)
	}

	metrics := obs.NewShard("fabric")
	co := fabric.NewCoordinator(fabric.CoordinatorConfig{
		Heartbeat:    *heartbeat,
		LeaseTimeout: *leaseTimeout,
		Obs:          metrics,
		Log:          stderr,
	})
	if err := co.Listen(*listen); err != nil {
		return err
	}
	defer co.Close()
	fmt.Fprintf(stderr, "orfabric: coordinator on %s\n", co.Addr())
	if *addrFile != "" {
		// Written atomically so a watcher never reads a half-written address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(co.Addr()+"\n"), 0o644); err != nil {
			return err
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			return err
		}
	}
	coordinatorUp(co.Addr())

	var fleet sync.WaitGroup
	if *workersRemote > 0 {
		for i := 0; i < *workersRemote; i++ {
			fleet.Add(1)
			go func(i int) {
				defer fleet.Done()
				wname := fmt.Sprintf("loopback-%d", i)
				if err := fabric.RunWorker(ctx, fabric.WorkerConfig{Addr: co.Addr(), Name: wname, Log: stderr}); err != nil && ctx.Err() == nil {
					fmt.Fprintf(stderr, "orfabric: worker %s: %v\n", wname, err)
				}
			}(i)
		}
	}

	ds, err := co.RunCampaign(cfg, *lossModel)
	co.Close() // release idle workers (DONE) before reporting
	fleet.Wait()
	fmt.Fprintf(stderr, "orfabric: leases %d granted, %d expired, %d requeued; results %d merged, %d duplicate; %d NACKs; workers %d seen\n",
		metrics.Counter(obs.CFabricLeases), metrics.Counter(obs.CFabricLeaseExpired),
		metrics.Counter(obs.CFabricRequeued), metrics.Counter(obs.CFabricResults),
		metrics.Counter(obs.CFabricDupResults), metrics.Counter(obs.CFabricNacks),
		metrics.Counter(obs.CFabricWorkers))
	if errors.Is(err, core.ErrInterrupted) {
		if *ckptDir != "" {
			fmt.Fprintf(stderr, "orfabric: interrupted; accepted shard envelopes are checkpointed in %s — rerun the same command to resume\n", *ckptDir)
		} else {
			fmt.Fprintln(stderr, "orfabric: interrupted; no -checkpoint-dir was set, so a rerun starts from scratch")
		}
		return err
	}
	if err != nil {
		return err
	}
	return render(stdout, ds)
}

// render prints the full report and the trailing digest line — identical
// for every mode, so outputs compare byte-for-byte.
func render(w io.Writer, ds *core.Dataset) error {
	if _, err := fmt.Fprint(w, ds.Report.RenderAll()); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "\nFaultDigest: %s\n", core.FaultDigest(ds))
	return err
}
