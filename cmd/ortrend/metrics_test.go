package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"

	"openresolver/internal/obs"
)

// TestMetricsEndpoint scrapes the metrics server after a complete trend:
// the snapshot must carry one closed "epoch <label>" span per epoch with
// the campaign phases nested between them.
func TestMetricsEndpoint(t *testing.T) {
	defer func(old func(string)) { metricsUp = old }(metricsUp)

	var snap obs.Snapshot
	metricsUp = func(addr string) {
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatalf("decode /metrics: %v", err)
		}
	}

	err := run([]string{"-epochs", "2", "-shift", "13",
		"-metrics-addr", "127.0.0.1:0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters[obs.CounterName(obs.CSynthProbes)] == 0 {
		t.Error("snapshot has no synth.probes count after the trend")
	}
	epochs := 0
	for _, ph := range snap.Phases {
		if len(ph.Name) > 6 && ph.Name[:6] == "epoch " {
			epochs++
			if !ph.Done {
				t.Errorf("phase %q not closed", ph.Name)
			}
		}
	}
	if epochs != 2 {
		t.Errorf("want 2 epoch spans, got %d: %+v", epochs, snap.Phases)
	}
}
