package main

import "testing"

func TestRun(t *testing.T) {
	if err := run([]string{"-epochs", "2", "-shift", "13"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-epochs", "1"}); err == nil {
		t.Error("single epoch accepted")
	}
}
