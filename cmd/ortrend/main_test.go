package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

func TestRun(t *testing.T) {
	if err := run([]string{"-epochs", "2", "-shift", "13"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunWorkers(t *testing.T) {
	if err := run([]string{"-epochs", "2", "-shift", "13", "-workers", "2"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-epochs", "1"}, io.Discard); err == nil {
		t.Error("single epoch accepted")
	}
}

func TestUsageListsWorkers(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-h"}, &buf); err != nil {
		t.Fatalf("-h returned error: %v", err)
	}
	usage := buf.String()
	for _, flag := range []string{"-workers", "-epochs", "-shift"} {
		if !strings.Contains(usage, flag) {
			t.Errorf("usage output missing %s:\n%s", flag, usage)
		}
	}
}
