// Command ortrend runs the continuous-monitoring harness of §V: one
// behaviorally-analyzed campaign per epoch between the 2013 and 2018
// snapshots, reporting the trend of the paper's indicators (population,
// error rate, malicious answers).
//
// Usage:
//
//	ortrend [-epochs 6] [-shift 10] [-seed 1] [-workers N] [-mode synth|sim]
//	        [-loss-model spec] [-retries N] [-adaptive-timeout] [-upstream-backoff]
//	        [-metrics-addr host:port] [-progress interval]
//
// With -mode sim each epoch runs on the discrete-event network, where the
// fault-injection flags apply — e.g. monitoring drift under persistent 30%
// burst loss:
//
//	ortrend -mode sim -shift 12 -loss-model "ge:0.05,0.2,0.125,1" -retries 5
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"openresolver/internal/core"
	"openresolver/internal/drift"
	"openresolver/internal/netsim"
	"openresolver/internal/obs"
	"openresolver/internal/sigctx"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ortrend:", err)
		os.Exit(1)
	}
}

// metricsUp is the test hook mirror of orsurvey's: called with the bound
// metrics address after the trend is printed, before the server closes.
var metricsUp = func(addr string) {}

func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("ortrend", flag.ContinueOnError)
	fs.SetOutput(stderr)
	epochs := fs.Int("epochs", 6, "monitoring epochs between the 2013 and 2018 snapshots")
	shift := fs.Uint("shift", 10, "sample shift: scale each campaign to 1/2^shift")
	seed := fs.Int64("seed", 1, "deterministic seed")
	workers := fs.Int("workers", 0, "worker goroutines per campaign, both modes (0 = all cores, 1 = serial; output is identical for every value)")
	mode := fs.String("mode", "synth", "campaign engine per epoch: synth or sim")
	lossModel := fs.String("loss-model", "", `network impairment spec (sim mode), e.g. "ge:0.05,0.2,0.125,1;dup:0.1"`)
	retries := fs.Int("retries", 0, "per-probe retransmission budget (sim mode; 0 = single-shot)")
	adaptive := fs.Bool("adaptive-timeout", false, "adaptive Jacobson/Karn probe timeout (sim mode)")
	backoff := fs.Bool("upstream-backoff", false, "resolver upstream retries back off with jitter (sim mode)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics (JSON snapshot), /debug/vars (expvar), and /debug/pprof on this address")
	progress := fs.Duration("progress", 0, "print a live progress line to stderr at this interval (e.g. 2s; 0 = off)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	var reg *obs.Registry
	if *metricsAddr != "" || *progress > 0 {
		reg = obs.NewRegistry()
	}
	var srv *obs.Server
	if *metricsAddr != "" {
		var err error
		if srv, err = obs.Serve(*metricsAddr, reg); err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "ortrend: metrics on http://%s/metrics (expvar /debug/vars, pprof /debug/pprof)\n", srv.Addr)
	}
	if *progress > 0 {
		stop := reg.StartProgress(stderr, *progress)
		defer stop()
	}
	var imps []netsim.Impairment
	if *lossModel != "" {
		var err error
		if imps, err = netsim.ParseImpairments(*lossModel); err != nil {
			return err
		}
	}
	ctx, cancel := sigctx.New("ortrend", stderr)
	defer cancel()
	points, err := drift.Trend(drift.Config{
		Epochs:      *epochs,
		SampleShift: uint8(*shift),
		Seed:        *seed,
		Workers:     *workers,
		Mode:        *mode,
		Faults: core.FaultPlan{
			Impairments:     imps,
			Retries:         *retries,
			AdaptiveTimeout: *adaptive,
			UpstreamBackoff: *backoff,
		},
		Obs: reg,
		Ctx: ctx,
	})
	if err != nil && !(errors.Is(err, core.ErrInterrupted) && len(points) > 0) {
		return err
	}
	if errors.Is(err, core.ErrInterrupted) {
		fmt.Fprintf(stderr, "ortrend: interrupted; rendering the %d completed epoch(s) of %d\n", len(points), *epochs)
	}
	fmt.Printf("Open-resolver ecosystem trend (1/%d sample per epoch)\n\n", uint64(1)<<*shift)
	fmt.Print(drift.RenderTrend(points))
	if err != nil {
		return err
	}
	fmt.Println("\nThe monitored indicators reproduce the paper's §V argument: the")
	fmt.Println("responder population declines steadily while manipulated and malicious")
	fmt.Println("answers hold or grow — the threat does not decay with the population,")
	fmt.Println("which is why continuous behavioral monitoring is needed.")
	if srv != nil {
		metricsUp(srv.Addr)
	}
	return nil
}
