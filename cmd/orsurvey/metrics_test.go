package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"openresolver/internal/obs"
)

// TestMetricsEndpointSim runs a complete simulated campaign with the
// metrics server up and scrapes every endpoint through the metricsUp hook,
// which fires after the campaign's output is finished — so the snapshot
// must hold the full run: non-zero counters, populated histograms, and
// closed phase spans.
func TestMetricsEndpointSim(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full simulation")
	}
	defer func(old func(string)) { metricsUp = old }(metricsUp)

	var snap obs.Snapshot
	var vars, pprofIndex string
	metricsUp = func(addr string) {
		get := func(path string) []byte {
			t.Helper()
			resp, err := http.Get(fmt.Sprintf("http://%s%s", addr, path))
			if err != nil {
				t.Fatalf("GET %s: %v", path, err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("GET %s: status %d", path, resp.StatusCode)
			}
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatalf("GET %s: read: %v", path, err)
			}
			return body
		}
		if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
			t.Fatalf("/metrics is not snapshot JSON: %v", err)
		}
		vars = string(get("/debug/vars"))
		pprofIndex = string(get("/debug/pprof/"))
		if body := get("/debug/pprof/cmdline"); len(body) == 0 {
			t.Error("/debug/pprof/cmdline empty")
		}
	}

	err := run([]string{"-mode", "sim", "-shift", "13", "-seed", "1",
		"-metrics-addr", "127.0.0.1:0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}

	sent := snap.Counters[obs.CounterName(obs.CProbeSent)]
	if sent == 0 {
		t.Error("snapshot has no probe.sent count after a full campaign")
	}
	if snap.Counters[obs.CounterName(obs.CSimDelivered)] == 0 {
		t.Error("snapshot has no sim.delivered count")
	}
	if snap.Counters[obs.CounterName(obs.CSimWallNanos)] == 0 {
		t.Error("snapshot has no sim.wall_nanos (clock-ratio denominator)")
	}
	if snap.Histograms[obs.HistName(obs.HRTT)].Count == 0 {
		t.Error("RTT histogram empty after a full campaign")
	}
	if snap.Histograms[obs.HistName(obs.HQueueDepth)].Count == 0 {
		t.Error("event-queue-depth histogram empty")
	}
	want := map[string]bool{"scan-universe": false, "population-place": false,
		"simulate": false, "report": false}
	for _, ph := range snap.Phases {
		if _, ok := want[ph.Name]; ok {
			want[ph.Name] = true
			if !ph.Done {
				t.Errorf("phase %s not closed", ph.Name)
			}
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("phase %s missing from snapshot", name)
		}
	}
	if len(snap.Shards) == 0 {
		t.Error("snapshot lists no shards")
	}
	if !strings.Contains(vars, `"openresolver"`) {
		t.Error("/debug/vars missing the published registry")
	}
	if !strings.Contains(pprofIndex, "goroutine") {
		t.Error("/debug/pprof/ missing profile index")
	}
}

// TestMetricsEndpointSynth covers the synthetic engine's metrics: worker
// shards and the response-size histogram.
func TestMetricsEndpointSynth(t *testing.T) {
	defer func(old func(string)) { metricsUp = old }(metricsUp)

	var snap obs.Snapshot
	metricsUp = func(addr string) {
		resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatalf("decode /metrics: %v", err)
		}
	}

	err := run([]string{"-year", "2018", "-shift", "12", "-workers", "3",
		"-metrics-addr", "127.0.0.1:0"}, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Counters[obs.CounterName(obs.CSynthProbes)] == 0 {
		t.Error("snapshot has no synth.probes count")
	}
	if snap.Histograms[obs.HistName(obs.HRespBytes)].Count == 0 {
		t.Error("response-size histogram empty")
	}
	if len(snap.Shards) != 3 {
		t.Errorf("want 3 worker shards, got %d: %+v", len(snap.Shards), snap.Shards)
	}
	for i, sh := range snap.Shards {
		if want := fmt.Sprintf("synth-%d", i); sh.Label != want {
			t.Errorf("shard %d label = %q, want %q (deterministic shard order)", i, sh.Label, want)
		}
	}
}

// TestMetricsBadAddr checks the listen error path through the CLI.
func TestMetricsBadAddr(t *testing.T) {
	if err := run([]string{"-shift", "12", "-metrics-addr", "256.0.0.1:bogus"}, io.Discard); err == nil {
		t.Error("invalid metrics address accepted")
	}
}

// TestProgressFlag drives -progress and checks the stderr ticker output.
func TestProgressFlag(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-year", "2018", "-shift", "10", "-progress", "1ms"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "obs[") {
		t.Errorf("no progress lines on stderr:\n%q", buf.String())
	}
}
