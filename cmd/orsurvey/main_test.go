package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSynth(t *testing.T) {
	if err := run([]string{"-year", "2018", "-shift", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimWithCapture(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full simulation")
	}
	path := filepath.Join(t.TempDir(), "r2.orlog")
	if err := run([]string{"-mode", "sim", "-shift", "13", "-capture", path}); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Error("capture file empty")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-mode", "nope"}); err == nil {
		t.Error("bad mode accepted")
	}
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-year", "1999"}); err == nil {
		t.Error("unknown year accepted")
	}
}

func TestRunWithExports(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "report.json")
	csvDir := filepath.Join(dir, "csv")
	if err := run([]string{"-year", "2018", "-shift", "12", "-json", jsonPath, "-csvdir", csvDir}); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(jsonPath); err != nil || st.Size() == 0 {
		t.Errorf("json export: %v", err)
	}
	for _, table := range []string{"correctness", "top10", "geo"} {
		if st, err := os.Stat(filepath.Join(csvDir, table+".csv")); err != nil || st.Size() == 0 {
			t.Errorf("csv %s: %v", table, err)
		}
	}
}
