package main

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSynth(t *testing.T) {
	if err := run([]string{"-year", "2018", "-shift", "10"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunSynthWorkers(t *testing.T) {
	if err := run([]string{"-year", "2018", "-shift", "12", "-workers", "3"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunSimWithCapture(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a full simulation")
	}
	path := filepath.Join(t.TempDir(), "r2.orlog")
	if err := run([]string{"-mode", "sim", "-shift", "13", "-capture", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Error("capture file empty")
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-mode", "nope"}, io.Discard); err == nil {
		t.Error("bad mode accepted")
	}
	if err := run([]string{"-bogus"}, io.Discard); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-year", "1999"}, io.Discard); err == nil {
		t.Error("unknown year accepted")
	}
}

func TestUsageListsWorkers(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-h"}, &buf); err != nil {
		t.Fatalf("-h returned error: %v", err)
	}
	usage := buf.String()
	for _, flag := range []string{"-workers", "-year", "-mode", "-shift"} {
		if !strings.Contains(usage, flag) {
			t.Errorf("usage output missing %s:\n%s", flag, usage)
		}
	}
	if !strings.Contains(usage, "all cores") {
		t.Errorf("-workers usage does not explain the 0 default:\n%s", usage)
	}
}

func TestRunWithExports(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "report.json")
	csvDir := filepath.Join(dir, "csv")
	if err := run([]string{"-year", "2018", "-shift", "12", "-json", jsonPath, "-csvdir", csvDir}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if st, err := os.Stat(jsonPath); err != nil || st.Size() == 0 {
		t.Errorf("json export: %v", err)
	}
	for _, table := range []string{"correctness", "top10", "geo"} {
		if st, err := os.Stat(filepath.Join(csvDir, table+".csv")); err != nil || st.Size() == 0 {
			t.Errorf("csv %s: %v", table, err)
		}
	}
}
