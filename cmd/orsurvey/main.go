// Command orsurvey runs one open-resolver measurement campaign — either as
// a full discrete-event simulation (mode=sim) or as a full-scale synthetic
// stream (mode=synth) — and prints every regenerated table of the paper.
//
// Usage:
//
//	orsurvey [-year 2018] [-mode synth|sim] [-shift N] [-seed N]
//	         [-pps N] [-workers N] [-capture file] [-json file] [-csvdir dir]
//	         [-loss-model spec] [-retries N] [-adaptive-timeout] [-upstream-backoff]
//	         [-checkpoint-dir dir] [-metrics-addr host:port] [-progress interval]
//
// Examples:
//
//	orsurvey -year 2018                    # full-scale synthetic campaign
//	orsurvey -year 2013 -mode sim -shift 12  # end-to-end simulation, 1/4096 sample
//	orsurvey -mode sim -shift 12 -capture r2.orlog  # persist the R2 capture
//	orsurvey -mode sim -shift 12 -loss-model "ge:0.05,0.2,0.125,1" -retries 5
//	    # campaign under 30% Gilbert–Elliott burst loss with retransmission
//	orsurvey -mode sim -shift 10 -metrics-addr 127.0.0.1:8080 -progress 2s
//	    # watch the campaign live: expvar/pprof/JSON snapshot + stderr ticker
//	orsurvey -mode sim -shift 8 -checkpoint-dir ckpt/
//	    # crash-safe campaign: every completed shard persists; rerunning the
//	    # identical command after a crash or ^C resumes instead of restarting
//
// SIGINT/SIGTERM stop the campaign gracefully: in-flight shards drain and
// (with -checkpoint-dir) persist before exit; a second signal force-quits.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"openresolver/internal/analysis"
	"openresolver/internal/capture"
	"openresolver/internal/core"
	"openresolver/internal/netsim"
	"openresolver/internal/obs"
	"openresolver/internal/paperdata"
	"openresolver/internal/sigctx"
)

func main() {
	if err := run(os.Args[1:], os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "orsurvey:", err)
		os.Exit(1)
	}
}

// metricsUp is called with the bound metrics address after the campaign's
// output is complete but before the server shuts down. Tests hook it to
// scrape the endpoints with the full run's data in place.
var metricsUp = func(addr string) {}

func run(args []string, stderr io.Writer) error {
	fs := flag.NewFlagSet("orsurvey", flag.ContinueOnError)
	fs.SetOutput(stderr)
	year := fs.Int("year", 2018, "campaign year (2013 or 2018)")
	mode := fs.String("mode", "synth", "execution mode: synth or sim")
	shift := fs.Uint("shift", 0, "sample shift: scale to 1/2^shift (sim mode needs ≥6)")
	seed := fs.Int64("seed", 1, "deterministic seed")
	pps := fs.Uint64("pps", 0, "probe rate override (0 = paper value)")
	workers := fs.Int("workers", 0, "campaign worker goroutines, both modes (0 = all cores, 1 = serial; output is identical for every value)")
	capturePath := fs.String("capture", "", "write the R2 capture log to this file (sim mode)")
	lossModel := fs.String("loss-model", "", `network impairment spec (sim mode), e.g. "ge:0.05,0.2,0.125,1;dup:0.1;reorder:0.2,40ms"`)
	retries := fs.Int("retries", 0, "per-probe retransmission budget (sim mode; 0 = the paper's single-shot prober)")
	adaptive := fs.Bool("adaptive-timeout", false, "replace the fixed 2s probe timeout with a Jacobson/Karn RTO estimator (sim mode)")
	backoff := fs.Bool("upstream-backoff", false, "resolvers retry upstream queries with exponential backoff and jitter (sim mode)")
	ckptDir := fs.String("checkpoint-dir", "", "persist completed shards here and resume from them on rerun (sim mode)")
	jsonPath := fs.String("json", "", "write the full report as JSON to this file")
	csvDir := fs.String("csvdir", "", "write every table as CSV into this directory")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics (JSON snapshot), /debug/vars (expvar), and /debug/pprof on this address")
	progress := fs.Duration("progress", 0, "print a live progress line to stderr at this interval (e.g. 2s; 0 = off)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	// The observability registry exists only when asked for; a nil registry
	// turns every instrumentation call in the pipeline into a no-op.
	var reg *obs.Registry
	if *metricsAddr != "" || *progress > 0 {
		reg = obs.NewRegistry()
	}
	var srv *obs.Server
	if *metricsAddr != "" {
		var err error
		if srv, err = obs.Serve(*metricsAddr, reg); err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "orsurvey: metrics on http://%s/metrics (expvar /debug/vars, pprof /debug/pprof)\n", srv.Addr)
	}
	if *progress > 0 {
		stop := reg.StartProgress(stderr, *progress)
		defer stop()
	}

	var imps []netsim.Impairment
	if *lossModel != "" {
		var err error
		if imps, err = netsim.ParseImpairments(*lossModel); err != nil {
			return err
		}
	}
	if *ckptDir != "" && *mode != "sim" {
		return errors.New("-checkpoint-dir needs -mode sim (the synthetic engine streams too fast to checkpoint)")
	}

	ctx, cancel := sigctx.New("orsurvey", stderr)
	defer cancel()
	cfg := core.Config{
		Year:          paperdata.Year(*year),
		SampleShift:   uint8(*shift),
		Seed:          *seed,
		PacketsPerSec: *pps,
		Workers:       *workers,
		KeepPackets:   *capturePath != "",
		Faults: core.FaultPlan{
			Impairments:     imps,
			Retries:         *retries,
			AdaptiveTimeout: *adaptive,
			UpstreamBackoff: *backoff,
		},
		Obs: reg,
		Ctx: ctx,
		Checkpoints: core.CheckpointPlan{
			Dir: *ckptDir,
			Log: stderr,
		},
	}

	var (
		ds  *core.Dataset
		err error
	)
	switch *mode {
	case "synth":
		ds, err = core.RunSynthetic(cfg)
	case "sim":
		if cfg.SampleShift < 6 {
			cfg.SampleShift = 12
			fmt.Fprintln(stderr, "orsurvey: sim mode defaulted to -shift 12")
		}
		ds, err = core.RunSimulation(cfg)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	if errors.Is(err, core.ErrInterrupted) {
		if *ckptDir != "" {
			fmt.Fprintf(stderr, "orsurvey: interrupted; completed shards are checkpointed in %s — rerun the same command to resume\n", *ckptDir)
		} else {
			fmt.Fprintln(stderr, "orsurvey: interrupted; no -checkpoint-dir was set, so a rerun starts from scratch")
		}
		return err
	}
	if err != nil {
		return err
	}

	fmt.Print(ds.Report.RenderAll())
	clusterSize := uint64(paperdata.ClusterSize >> cfg.SampleShift)
	if clusterSize < 16 {
		clusterSize = 16
	}
	theoretical := (ds.Report.Campaign.Q1 + clusterSize - 1) / clusterSize
	fmt.Printf("\nSubdomain clusters used: %d (theoretical without reuse: %d; §III-B)\n",
		ds.ClustersUsed, theoretical)
	if *mode == "sim" {
		fmt.Printf("Subdomains reused: %d\n", ds.SubdomainsReused)
		st := ds.NetStats
		fmt.Printf("Network: sent %d, delivered %d, lost %d, unrouted %d\n",
			st.Sent, st.Delivered, st.Lost, st.NoRoute)
		ps := ds.ProbeStats
		fmt.Printf("Prober: answered %d, retransmits %d, late %d, duplicate %d, gave up %d\n",
			ps.Answered, ps.Retransmits, ps.Late, ps.DupResponses, ps.GaveUp)
		if fst := ds.FaultStats; fst != (netsim.FaultStats{}) {
			fmt.Printf("Faults: dropped %d (loss %d, burst %d, blackhole %d, brownout %d), duplicated %d, corrupted %d, reordered %d\n",
				fst.Dropped, fst.LossDrops, fst.BurstDrops, fst.Blackholed, fst.BrownedOut,
				fst.Duplicated, fst.Corrupted, fst.Reordered)
		}
		if ds.Roles != nil {
			fmt.Println()
			fmt.Print(ds.Roles.Render())
		}
	}

	if *capturePath != "" {
		if err := writeCapture(*capturePath, ds.R2Packets); err != nil {
			return err
		}
		fmt.Printf("R2 capture (%d packets) written to %s\n", len(ds.R2Packets), *capturePath)
	}
	if *jsonPath != "" {
		data, err := ds.Report.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, data, 0o644); err != nil {
			return err
		}
		fmt.Printf("report JSON written to %s\n", *jsonPath)
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		for _, table := range analysis.CSVTables {
			f, err := os.Create(filepath.Join(*csvDir, table+".csv"))
			if err != nil {
				return err
			}
			if err := ds.Report.WriteCSV(f, table); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		fmt.Printf("CSV tables written to %s\n", *csvDir)
	}
	if srv != nil {
		metricsUp(srv.Addr)
	}
	return nil
}

func writeCapture(path string, packets []capture.Packet) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w, err := capture.NewWriter(f)
	if err != nil {
		return err
	}
	for _, p := range packets {
		if err := w.Write(p); err != nil {
			return err
		}
	}
	return w.Close()
}
