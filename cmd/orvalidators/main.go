// Command orvalidators reproduces the DNSSEC validator-counting studies
// the paper cites in §VI (Fukuda et al.; Yu et al.'s Check-Repeat): each
// surveyed open resolver is asked for a validly-signed name and a name
// with a deliberately corrupted signature; resolvers that reject the bogus
// data (ServFail) validate.
//
// Usage:
//
//	orvalidators [-resolvers N] [-fraction F] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"openresolver/internal/dnssec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "orvalidators:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("orvalidators", flag.ContinueOnError)
	resolvers := fs.Int("resolvers", 500, "resolvers to survey")
	fraction := fs.Float64("fraction", 0.27, "share of the pool that validates (ground truth)")
	seed := fs.Int64("seed", 1, "deterministic seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := dnssec.RunSurvey(dnssec.SurveyConfig{
		Resolvers:         *resolvers,
		ValidatorFraction: *fraction,
		Seed:              *seed,
	})
	if err != nil {
		return err
	}
	fmt.Printf("DNSSEC validator survey (check-repeat methodology)\n\n")
	fmt.Printf("resolvers probed:   %d\n", res.Probed)
	fmt.Printf("validators:         %d (%.1f%%)\n", res.Validators, res.Rate()*100)
	fmt.Printf("non-validating:     %d\n", res.NonValidating)
	fmt.Printf("inconclusive:       %d\n", res.Inconclusive)
	fmt.Println("\nValidation defeats the §IV-C manipulation only for signed zones; the")
	fmt.Println("paper (§VI) notes DNSSEC 'did not yet completely replace DNS', leaving")
	fmt.Println("manipulated answers credible to the non-validating majority.")
	return nil
}
