package main

import "testing"

func TestRunScaled(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two scaled campaigns")
	}
	if err := run([]string{"-shift", "12"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-shift", "12", "-markdown"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
}
