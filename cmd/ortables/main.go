// Command ortables regenerates every table and figure of the paper and
// prints a paper-vs-measured comparison, optionally as Markdown (the
// format of EXPERIMENTS.md).
//
// Usage:
//
//	ortables [-shift N] [-seed N] [-markdown]
//
// At -shift 0 (default) the full-scale campaigns are synthesized and every
// value must match the paper exactly (up to the documented reconciliations
// of its internal arithmetic).
package main

import (
	"flag"
	"fmt"
	"os"

	"openresolver/internal/analysis"
	"openresolver/internal/core"
	"openresolver/internal/paperdata"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ortables:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ortables", flag.ContinueOnError)
	shift := fs.Uint("shift", 0, "sample shift: scale campaigns to 1/2^shift")
	seed := fs.Int64("seed", 1, "population seed")
	markdown := fs.Bool("markdown", false, "emit Markdown tables")
	if err := fs.Parse(args); err != nil {
		return err
	}

	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		ds, err := core.RunSynthetic(core.Config{
			Year: y, SampleShift: uint8(*shift), Seed: *seed,
		})
		if err != nil {
			return fmt.Errorf("campaign %d: %w", y, err)
		}
		deltas := ds.Report.CompareToPaper()
		matched, total := analysis.Matches(deltas)
		if *markdown {
			fmt.Printf("\n## Campaign %d — paper vs measured (%d/%d exact)\n\n", y, matched, total)
			fmt.Println("| Table | Metric | Paper | Measured | Match | Note |")
			fmt.Println("|---|---|---:|---:|:-:|---|")
			for _, dd := range deltas {
				mark := "✗"
				if dd.Match {
					mark = "✓"
				}
				fmt.Printf("| %s | %s | %s | %s | %s | %s |\n",
					dd.Table, dd.Metric, dd.Paper, dd.Measured, mark, dd.Note)
			}
			continue
		}
		fmt.Printf("\n===== Campaign %d: %d/%d metrics exact =====\n", y, matched, total)
		for _, dd := range deltas {
			mark := "MATCH"
			if !dd.Match {
				mark = "DIFF "
			}
			note := dd.Note
			if note != "" {
				note = "  [" + note + "]"
			}
			fmt.Printf("%s %-14s %-32s paper=%-28s measured=%s%s\n",
				mark, dd.Table, dd.Metric, dd.Paper, dd.Measured, note)
		}
	}

	if *markdown {
		fmt.Println("\n## Documented discrepancies in the paper's printed numbers")
		fmt.Println()
		fmt.Println("| ID | Where | Issue | Resolution |")
		fmt.Println("|---|---|---|---|")
		for _, disc := range paperdata.Discrepancies {
			fmt.Printf("| %s | %s | %s | %s |\n", disc.ID, disc.Where, disc.Issue, disc.Resolution)
		}
	} else {
		fmt.Println("\nDocumented discrepancies in the paper's printed numbers:")
		for _, disc := range paperdata.Discrepancies {
			fmt.Printf("  %s %s\n     issue: %s\n     resolution: %s\n", disc.ID, disc.Where, disc.Issue, disc.Resolution)
		}
	}
	return nil
}
