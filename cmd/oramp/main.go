// Command oramp demonstrates the DNS amplification threat of §II-C: it
// simulates an attacker abusing open resolvers with spoofed-source queries
// and reports the bandwidth amplification factor for A vs ANY queries over
// a range of zone sizes.
//
// Usage:
//
//	oramp [-resolvers N] [-queries N] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"openresolver/internal/amplify"
	"openresolver/internal/dnswire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "oramp:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("oramp", flag.ContinueOnError)
	resolvers := fs.Int("resolvers", 100, "open resolvers abused")
	queries := fs.Int("queries", 10, "spoofed queries per resolver")
	seed := fs.Int64("seed", 1, "simulation seed")
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Printf("DNS amplification (%d resolvers × %d spoofed queries)\n\n", *resolvers, *queries)
	fmt.Printf("%-6s %-12s %14s %14s %10s\n", "qtype", "zone records", "attacker bytes", "victim bytes", "factor")
	for _, qt := range []dnswire.Type{dnswire.TypeA, dnswire.TypeANY} {
		for _, records := range []int{5, 15, 30, 60} {
			res, err := amplify.Run(amplify.Config{
				Resolvers:          *resolvers,
				QueriesPerResolver: *queries,
				QueryType:          qt,
				ZoneRecords:        records,
				Seed:               *seed,
			})
			if err != nil {
				return err
			}
			fmt.Printf("%-6s %-12d %14d %14d %9.1fx\n",
				qt, records, res.AttackerBytes, res.VictimBytes, res.Factor)
		}
	}
	fmt.Println("\nANY queries against record-rich zones turn each open resolver into")
	fmt.Println("an attack amplifier; the victim receives every response (§II-C).")
	return nil
}
