package main

import "testing"

func TestRun(t *testing.T) {
	if err := run([]string{"-resolvers", "5", "-queries", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-resolvers", "0"}); err == nil {
		t.Error("zero resolvers accepted")
	}
}
