package main

import (
	"os"
	"path/filepath"
	"testing"

	"openresolver/internal/capture"
	"openresolver/internal/core"
	"openresolver/internal/paperdata"
)

func TestReplayRoundTrip(t *testing.T) {
	// Produce a capture from a small simulation, then replay it.
	ds, err := core.RunSimulation(core.Config{
		Year: paperdata.Y2018, SampleShift: 14, Seed: 5, KeepPackets: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "r2.orlog")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := capture.NewWriter(f)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ds.R2Packets {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-year", "2018", "-seed", "5", path}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"/nonexistent.orlog"}); err == nil {
		t.Error("nonexistent file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.orlog")
	if err := os.WriteFile(bad, []byte("not a capture"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{bad}); err == nil {
		t.Error("garbage file accepted")
	}
}
