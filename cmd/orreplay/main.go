// Command orreplay re-analyzes a persisted R2 capture log offline —
// the workflow the paper used with its tcpdump/pcap files: capture once,
// analyze many times.
//
// Usage:
//
//	orsurvey -mode sim -shift 12 -capture r2.orlog   # produce a capture
//	orreplay -year 2018 r2.orlog                     # re-run the analysis
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"openresolver/internal/analysis"
	"openresolver/internal/capture"
	"openresolver/internal/geo"
	"openresolver/internal/paperdata"
	"openresolver/internal/threatintel"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "orreplay:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("orreplay", flag.ContinueOnError)
	year := fs.Int("year", 2018, "campaign year the capture came from (2013 or 2018)")
	seed := fs.Int64("seed", 1, "seed of the campaign (selects the threat landscape)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return errors.New("usage: orreplay [-year Y] [-seed N] <capture.orlog>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	r, err := capture.NewReader(f)
	if err != nil {
		return err
	}

	feed := threatintel.NewFeed(paperdata.Year(*year), *seed)
	acc := analysis.NewAccumulator(analysis.Config{
		Year:   paperdata.Year(*year),
		Threat: feed.DB,
		Geo:    geo.DefaultRegistry(),
	})
	var counts analysis.CampaignCounts
	for {
		p, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("read capture: %w", err)
		}
		if p.Kind != capture.KindR2 {
			continue
		}
		counts.R2++
		if p.At > counts.Duration {
			counts.Duration = p.At
		}
		acc.AddR2(p.Src, p.Payload)
	}
	report := acc.Report(counts)
	fmt.Printf("replayed %d R2 packets from %s\n\n", counts.R2, fs.Arg(0))
	fmt.Print(report.RenderAll())
	return nil
}
