package paperdata

import (
	"math"
	"testing"
)

// These tests pin down the internal consistency of the transcribed paper
// numbers: every relation the population compiler depends on must hold
// after reconciliation.

func TestTableIIIInternal(t *testing.T) {
	for y, c := range CorrectnessByYear {
		if c.Without+c.With() != c.R2 {
			t.Errorf("%d: W/O %d + W %d != R2 %d", y, c.Without, c.With(), c.R2)
		}
	}
	// Printed error rates.
	if got := CorrectnessByYear[Y2013].ErrPct(); math.Abs(got-1.029) > 0.001 {
		t.Errorf("2013 Err = %.3f, want 1.029", got)
	}
	if got := CorrectnessByYear[Y2018].ErrPct(); math.Abs(got-3.879) > 0.001 {
		t.Errorf("2018 Err = %.3f, want 3.879", got)
	}
}

func TestTableIIConsistency(t *testing.T) {
	c18 := Campaigns[Y2018]
	if c18.R2WithQuestion() != 6505764 {
		t.Errorf("2018 with-question = %d", c18.R2WithQuestion())
	}
	if CorrectnessByYear[Y2018].R2 != c18.R2WithQuestion() {
		t.Error("Table III universe != Table II R2 minus empty-question")
	}
	if CorrectnessByYear[Y2013].R2 != Campaigns[Y2013].R2 {
		t.Error("2013 Table III universe != Table II R2")
	}
}

func TestRAMarginalsMatchTableIII(t *testing.T) {
	for y, ra := range RATable {
		c := CorrectnessByYear[y]
		if ra.Flag0.Correct+ra.Flag1.Correct != c.Correct {
			t.Errorf("%d RA correct marginal mismatch", y)
		}
		if ra.Flag0.Incorr+ra.Flag1.Incorr != c.Incorr {
			t.Errorf("%d RA incorrect marginal mismatch", y)
		}
		if ra.Flag0.Without+ra.Flag1.Without != c.Without {
			t.Errorf("%d RA without marginal mismatch", y)
		}
		if ra.Flag0.Total()+ra.Flag1.Total() != c.R2 {
			t.Errorf("%d RA total mismatch", y)
		}
	}
	// Printed totals and error rates of Table IV.
	if RATable[Y2013].Flag1.Total() != 12270335 {
		t.Errorf("2013 RA1 total = %d", RATable[Y2013].Flag1.Total())
	}
	if RATable[Y2018].Flag0.Total() != 3503581 || RATable[Y2018].Flag1.Total() != 3002183 {
		t.Error("2018 RA totals mismatch")
	}
	if got := RATable[Y2018].Flag0.ErrPct(); math.Abs(got-94.225) > 0.001 {
		t.Errorf("2018 RA0 Err = %.3f, want 94.225", got)
	}
	if got := RATable[Y2013].Flag0.ErrPct(); math.Abs(got-31.346) > 0.001 {
		t.Errorf("2013 RA0 Err = %.3f, want 31.346", got)
	}
	if got := RATable[Y2018].Flag1.ErrPct(); math.Abs(got-1.643) > 0.001 {
		t.Errorf("2018 RA1 Err = %.3f, want 1.643", got)
	}
}

func TestReconciledAAMatchesTableIII(t *testing.T) {
	for _, y := range []Year{Y2013, Y2018} {
		aa := ReconciledAA(y)
		c := CorrectnessByYear[y]
		if aa.Flag0.Correct+aa.Flag1.Correct != c.Correct {
			t.Errorf("%d AA correct marginal mismatch after reconciliation", y)
		}
		if aa.Flag0.Incorr+aa.Flag1.Incorr != c.Incorr {
			t.Errorf("%d AA incorrect marginal mismatch", y)
		}
		if aa.Flag0.Without+aa.Flag1.Without != c.Without {
			t.Errorf("%d AA without marginal mismatch", y)
		}
	}
	// Printed values that must survive reconciliation.
	if AATable[Y2018].Flag1.Total() != 249193 {
		t.Errorf("2018 AA1 total = %d", AATable[Y2018].Flag1.Total())
	}
	if AATable[Y2013].Flag1.Total() != 381124 {
		t.Errorf("2013 AA1 total = %d", AATable[Y2013].Flag1.Total())
	}
	if got := AATable[Y2018].Flag1.ErrPct(); math.Abs(got-78.938) > 0.001 {
		t.Errorf("2018 AA1 Err = %.3f, want 78.938", got)
	}
	// D11: the paper's printed 20.539% divides by the AA1 row total rather
	// than by W as every other Err cell does.
	printed := float64(AATable[Y2013].Flag1.Incorr) / float64(AATable[Y2013].Flag1.Total()) * 100
	if math.Abs(printed-20.539) > 0.005 {
		t.Errorf("2013 AA1 printed-style Err = %.3f, want 20.539", printed)
	}
}

func TestReconciledRcodeSums(t *testing.T) {
	for _, y := range []Year{Y2013, Y2018} {
		r := ReconciledRcode(y)
		c := CorrectnessByYear[y]
		var w, wo uint64
		for i := 0; i < 10; i++ {
			w += r.With[i]
			wo += r.Without[i]
		}
		if w != c.With() {
			t.Errorf("%d reconciled W rcode sum %d != %d", y, w, c.With())
		}
		if wo != c.Without {
			t.Errorf("%d reconciled W/O rcode sum %d != %d", y, wo, c.Without)
		}
	}
	// The reconciliations touch only the documented cells.
	r13 := ReconciledRcode(Y2013)
	if r13.With[0] != 11778877 {
		t.Errorf("2013 reconciled W NoError = %d, want 11778877", r13.With[0])
	}
	if r13.Without[5] != 3168065 {
		t.Errorf("2013 reconciled W/O Refused = %d, want 3168065", r13.Without[5])
	}
	r18 := ReconciledRcode(Y2018)
	if r18.With[0] != 2860940 {
		t.Errorf("2018 W NoError changed: %d", r18.With[0])
	}
	if r18.Without[5] != 2934283 {
		t.Errorf("2018 reconciled W/O Refused = %d, want 2934283", r18.Without[5])
	}
}

func TestIncorrNoErrorCoversMalicious(t *testing.T) {
	// Every malicious packet has rcode NoError (§IV-C3), so the incorrect
	// NoError budget must cover Table IX's totals.
	for _, y := range []Year{Y2013, Y2018} {
		if IncorrNoError(y) < MaliciousTotals[y].R2 {
			t.Errorf("%d: incorrect NoError %d < malicious %d",
				y, IncorrNoError(y), MaliciousTotals[y].R2)
		}
	}
	// 2018 exact split established in the design: 26,926 mal + 81,452
	// non-mal NoError + 2,715 non-mal nonzero = 111,093.
	if got := IncorrNoError(Y2018); got != 108378 {
		t.Errorf("2018 incorrect NoError = %d, want 108378", got)
	}
	if got := IncorrNoError(Y2013); got != 107288 {
		t.Errorf("2013 incorrect NoError = %d, want 107288", got)
	}
}

func TestTableVIIInternal(t *testing.T) {
	for y, f := range IncorrectFormsByYear {
		if f.Total() != CorrectnessByYear[y].Incorr {
			t.Errorf("%d: form total %d != incorrect %d", y, f.Total(), CorrectnessByYear[y].Incorr)
		}
	}
	if ReconciledStrUnique(Y2013) != 10 {
		t.Errorf("2013 string unique = %d, want capped 10", ReconciledStrUnique(Y2013))
	}
	if ReconciledStrUnique(Y2018) != 29 {
		t.Errorf("2018 string unique = %d", ReconciledStrUnique(Y2018))
	}
}

func TestTop10Consistency(t *testing.T) {
	for y, rows := range Top10 {
		if len(rows) != 10 {
			t.Fatalf("%d: %d top rows", y, len(rows))
		}
		var sum uint64
		prev := ^uint64(0)
		for i, r := range rows {
			sum += r.Count
			if r.Count > prev {
				t.Errorf("%d: rank %d count %d exceeds rank %d", y, i+1, r.Count, i)
			}
			prev = r.Count
		}
		if sum != Top10Total[y] {
			t.Errorf("%d: top-10 sum %d != %d", y, sum, Top10Total[y])
		}
	}
	// Stated 2013 constraints: 20.20.20.20 above 5k, stated ranks 7-9.
	rows := Top10[Y2013]
	if rows[0].Addr != "74.220.199.15" || rows[0].Count != 9651 {
		t.Error("2013 rank 1 wrong")
	}
	var twenty uint64
	for _, r := range rows {
		if r.Addr == "20.20.20.20" {
			twenty = r.Count
		}
	}
	if twenty <= 5000 {
		t.Errorf("20.20.20.20 count %d not >5k", twenty)
	}
	if rows[6].Count != 995 || rows[7].Count != 811 || rows[8].Count != 748 {
		t.Error("2013 stated ranks 7-9 wrong")
	}
}

func TestMaliciousTableInternal(t *testing.T) {
	for y, cats := range MaliciousTable {
		var ips, r2 uint64
		for _, c := range cats {
			ips += c.IPs
			r2 += c.R2
		}
		if ips != MaliciousTotals[y].IPs {
			t.Errorf("%d: category IPs sum %d != %d", y, ips, MaliciousTotals[y].IPs)
		}
		if r2 != MaliciousTotals[y].R2 {
			t.Errorf("%d: category R2 sum %d != %d", y, r2, MaliciousTotals[y].R2)
		}
		if MaliciousTotals[y].R2 > CorrectnessByYear[y].Incorr {
			t.Errorf("%d: malicious exceeds incorrect", y)
		}
	}
}

func TestMaliciousFlagsInternal(t *testing.T) {
	m := MaliciousFlags2018
	total := MaliciousTotals[Y2018].R2
	if m.RA0+m.RA1 != total {
		t.Errorf("RA split %d+%d != %d", m.RA0, m.RA1, total)
	}
	if m.AA0+m.AA1 != total {
		t.Errorf("AA split %d+%d != %d", m.AA0, m.AA1, total)
	}
	// Malicious flag marginals must fit inside the incorrect-answer cells.
	ra := RATable[Y2018]
	if m.RA0 > ra.Flag0.Incorr || m.RA1 > ra.Flag1.Incorr {
		t.Error("malicious RA marginals exceed incorrect RA cells")
	}
	aa := ReconciledAA(Y2018)
	if m.AA0 > aa.Flag0.Incorr || m.AA1 > aa.Flag1.Incorr {
		t.Error("malicious AA marginals exceed incorrect AA cells")
	}
}

func TestNamedMaliciousWithinMalware(t *testing.T) {
	for y, named := range NamedMalicious {
		var sum uint64
		for _, c := range named {
			sum += c
		}
		if sum > MaliciousTable[y][CatMalware].R2 {
			t.Errorf("%d: named malicious %d exceed malware row %d",
				y, sum, MaliciousTable[y][CatMalware].R2)
		}
	}
	if MalTop10Packets(Y2018) != 22805 { // §IV-C1's stated total
		t.Errorf("2018 named malicious = %d, want 22805", MalTop10Packets(Y2018))
	}
}

func TestGeoSums(t *testing.T) {
	wantCountries := map[Year]int{Y2013: 36, Y2018: 31}
	for y, rows := range MaliciousGeo {
		var sum uint64
		seen := map[string]bool{}
		for _, g := range rows {
			sum += g.R2
			if seen[g.Country] {
				t.Errorf("%d: duplicate country %s", y, g.Country)
			}
			seen[g.Country] = true
		}
		if sum != MaliciousTotals[y].R2 {
			t.Errorf("%d: geo sum %d != malicious total %d", y, sum, MaliciousTotals[y].R2)
		}
		if len(rows) != wantCountries[y] {
			t.Errorf("%d: %d countries, want %d", y, len(rows), wantCountries[y])
		}
	}
}

func TestTailIPStats(t *testing.T) {
	for _, y := range []Year{Y2013, Y2018} {
		packets, unique := TailIPStats(y)
		if unique == 0 || packets < unique {
			t.Errorf("%d: tail packets %d, unique %d infeasible", y, packets, unique)
		}
	}
	p18, u18 := TailIPStats(Y2018)
	if p18 != 56000 || u18 != 14680 {
		t.Errorf("2018 tail = %d/%d, want 56000/14680", p18, u18)
	}
}

func TestEmptyQuestionReconciliation(t *testing.T) {
	e := ReconciledEmptyQuestion()
	if e.RA0+e.RA1 != e.Total {
		t.Errorf("RA split %d+%d != %d", e.RA0, e.RA1, e.Total)
	}
	var rsum uint64
	for _, v := range e.Rcodes {
		rsum += v
	}
	if rsum != e.Total {
		t.Errorf("rcode sum %d != %d", rsum, e.Total)
	}
	if e.RA0 != 310 || e.Rcodes[2] != 302 {
		t.Errorf("reconciliation landed wrong: RA0=%d ServFail=%d", e.RA0, e.Rcodes[2])
	}
	if e.Private192+e.Private10 != e.PrivateNets {
		t.Error("private split inconsistent")
	}
	if e.PrivateNets+e.BadFormat+e.Unroutable != e.WithAnswer {
		t.Error("with-answer split inconsistent")
	}
}

func TestEstimatesDeriveFromTableIV(t *testing.T) {
	for _, y := range []Year{Y2013, Y2018} {
		ra := RATable[y]
		e := Estimates[y]
		if e.StrictRA1Correct != ra.Flag1.Correct {
			t.Errorf("%d strict estimate mismatch", y)
		}
		if e.RAOnly != ra.Flag1.Total() {
			t.Errorf("%d RA-only estimate mismatch", y)
		}
		if e.CorrectOnly != CorrectnessByYear[y].Correct {
			t.Errorf("%d correct-only estimate mismatch", y)
		}
	}
}

func TestDiscrepanciesDocumented(t *testing.T) {
	if len(Discrepancies) < 8 {
		t.Errorf("only %d discrepancies documented", len(Discrepancies))
	}
	ids := map[string]bool{}
	for _, d := range Discrepancies {
		if d.ID == "" || d.Where == "" || d.Issue == "" || d.Resolution == "" {
			t.Errorf("incomplete discrepancy %+v", d)
		}
		if ids[d.ID] {
			t.Errorf("duplicate discrepancy id %s", d.ID)
		}
		ids[d.ID] = true
	}
}

func TestQ2Ratios(t *testing.T) {
	// Table II's parenthetical percentages.
	c13, c18 := Campaigns[Y2013], Campaigns[Y2018]
	if got := float64(c13.Q2R1) / float64(c13.Q1) * 100; math.Abs(got-1.0357) > 0.0005 {
		t.Errorf("2013 Q2%% = %.4f", got)
	}
	if got := float64(c18.Q2R1) / float64(c18.Q1) * 100; math.Abs(got-0.3525) > 0.0005 {
		t.Errorf("2018 Q2%% = %.4f", got)
	}
	if got := float64(c13.R2) / float64(c13.Q1) * 100; math.Abs(got-0.453) > 0.0005 {
		t.Errorf("2013 R2%% = %.4f", got)
	}
	if got := float64(c18.R2) / float64(c18.Q1) * 100; math.Abs(got-0.1757) > 0.0005 {
		t.Errorf("2018 R2%% = %.4f", got)
	}
}
