package paperdata

// Discrepancy documents one internal inconsistency of the paper's reported
// numbers and the reconciliation this reproduction applies. They are
// printed by cmd/ortables and recorded in EXPERIMENTS.md.
type Discrepancy struct {
	ID         string
	Where      string
	Issue      string
	Resolution string
}

// Discrepancies lists every known inconsistency, in table order.
var Discrepancies = []Discrepancy{
	{
		ID:    "D1",
		Where: "Table I (total row)",
		Issue: "Printed total 575,931,649 ≠ row sum 592,708,865; the true union " +
			"of the listed blocks is 592,708,864 (255.255.255.255/32 lies inside " +
			"240.0.0.0/4). The complement of the true union, 3,702,258,432, equals " +
			"the paper's 2018 Q1 exactly.",
		Resolution: "Use the true union; treat the printed total as a typo of one /8.",
	},
	{
		ID:    "D2",
		Where: "Table II vs Table I (2013 Q1)",
		Issue: "2013 Q1 (3,676,724,690) is 25,533,742 probes short of the allowed " +
			"space the 2018 scan covered.",
		Resolution: "Modeled as send loss of the 2013 C-based prober (loss rate " +
			"0.0068967 over the allowed space).",
	},
	{
		ID:    "D3",
		Where: "Table V (2018, AA=0 row)",
		Issue: "Column sums disagree with Table III by ±10 packets " +
			"(correct: 2,752,572 vs 2,752,562; without: 3,642,099 vs 3,642,109).",
		Resolution: "AA0 correct −10, AA0 without +10 (ReconciledAA).",
	},
	{
		ID:         "D4",
		Where:      "Table VI (2013 W row)",
		Issue:      "Row sum 11,794,580 exceeds Table III's W (11,792,882) by 1,698.",
		Resolution: "NoError absorbs: 11,780,575 → 11,778,877 (ReconciledRcode).",
	},
	{
		ID:    "D5",
		Where: "Table VI (W/O rows)",
		Issue: "2013 W/O sums to 4,867,229 (12 short); 2018 W/O sums to " +
			"3,642,095 (14 short).",
		Resolution: "Refused absorbs: +12 (2013), +14 (2018) (ReconciledRcode).",
	},
	{
		ID:         "D6",
		Where:      "Table VII (2013 string row)",
		Issue:      "Reports 57 unique values over 10 packets.",
		Resolution: "Unique capped at the packet count (ReconciledStrUnique).",
	},
	{
		ID:    "D7",
		Where: "§IV-C1 (2013 top-10)",
		Issue: "Only 6 of 10 multiplicities are stated, and the stated ranks are " +
			"self-contradictory (two different addresses 'in third place').",
		Resolution: "The 4 unstated counts are chosen to satisfy every stated " +
			"value, threshold and the stated total 26,514; marked Synthetic in Top10.",
	},
	{
		ID:    "D8",
		Where: "§IV-B4 (empty-question breakdown)",
		Issue: "RA1 (184) + RA0 (303) = 487 ≠ 494; rcodes sum to 493 ≠ 494.",
		Resolution: "7 packets join RA0/no-answer; 1 packet joins ServFail " +
			"(ReconciledEmptyQuestion).",
	},
	{
		ID:         "D9",
		Where:      "§IV-C2 (2013 phishing count)",
		Issue:      "Text says 18 phishing addresses; Table IX says 19.",
		Resolution: "Table IX (19) is used — its rows sum to the stated totals.",
	},
	{
		ID:    "D11",
		Where: "Table V (2013, AA=1 row, Err column)",
		Issue: "Printed Err 20.539% is Incorr/Total (78,279/381,124), not " +
			"Incorr/W (78,279/231,368 = 33.83%) as defined under Table III and " +
			"used by every other Err cell.",
		Resolution: "Regenerated tables use the Table III definition; the " +
			"printed value is reproduced in EXPERIMENTS.md with this note.",
	},
	{
		ID:    "D10",
		Where: "Table III vs §IV-C (2018 incorrect count)",
		Issue: "§IV-C says 'wrong answer was provided in 110,093 packets' once; " +
			"Table III and Table VII both say 111,093.",
		Resolution: "111,093 is used (the tables are mutually consistent).",
	},
}
