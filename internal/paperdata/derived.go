package paperdata

// This file derives the *reconciled* values used for population
// construction: the paper's tables are kept verbatim in paperdata.go, and
// where their internal sums disagree by a few packets the adjustments below
// produce one consistent set of marginals. Each adjustment is listed in
// Discrepancies (discrepancies.go).

// ReconciledAA returns Table V adjusted so its column sums match Table III.
// Only the 2018 AA0 row needs adjustment (−10 correct, +10 without).
func ReconciledAA(y Year) FlagTable {
	t := AATable[y]
	if y == Y2018 {
		t.Flag0.Correct -= 10
		t.Flag0.Without += 10
	}
	return t
}

// ReconciledRcode returns Table VI adjusted so each row sums to Table III's
// W and W/O totals. Shortfalls/excesses are absorbed by the largest bucket
// of the affected row (NoError for 2013-W, Refused for the W/O rows).
func ReconciledRcode(y Year) RcodeRow {
	r := RcodeTable[y]
	c := CorrectnessByYear[y]
	adjust := func(row *[10]uint64, target uint64, bucket int) {
		var sum uint64
		for _, v := range row {
			sum += v
		}
		row[bucket] += target - sum // two's-complement arithmetic handles both signs
	}
	adjust(&r.With, c.With(), 0)     // NoError absorbs (only 2013 differs)
	adjust(&r.Without, c.Without, 5) // Refused absorbs
	return r
}

// ReconciledStrUnique returns Table VII's string-form unique count with the
// impossible 2013 value (57 uniques over 10 packets) capped at the packet
// count.
func ReconciledStrUnique(y Year) uint64 {
	f := IncorrectFormsByYear[y]
	if f.Str.Unique > f.Str.Packets {
		return f.Str.Packets
	}
	return f.Str.Unique
}

// ReconciledEmptyQuestion returns the §IV-B4 breakdown with its two gaps
// closed: the 7 packets unaccounted between RA1+RA0 and the total join the
// RA0/no-answer group, and the 1-packet rcode shortfall joins ServFail.
func ReconciledEmptyQuestion() EmptyQuestionStats {
	e := EmptyQuestion2018
	e.RA0 = e.Total - e.RA1 // 310
	var rsum uint64
	for _, v := range e.Rcodes {
		rsum += v
	}
	e.Rcodes[2] += e.Total - rsum // ServFail absorbs the missing packet
	return e
}

// IncorrNoError returns the number of incorrect answers carrying rcode
// NoError, derived from the reconciled Table VI: W[NoError] minus all
// correct answers (which are NoError by construction of the ground truth).
func IncorrNoError(y Year) uint64 {
	return ReconciledRcode(y).With[0] - CorrectnessByYear[y].Correct
}

// NonMalIncorrect returns the incorrect-answer count excluding the
// malicious packets of Table IX.
func NonMalIncorrect(y Year) uint64 {
	return CorrectnessByYear[y].Incorr - MaliciousTotals[y].R2
}

// MalTop10Packets returns the occurrences of the named malicious top-10
// IPs (a subset of Table IX's malware row).
func MalTop10Packets(y Year) uint64 {
	var n uint64
	for _, c := range NamedMalicious[y] {
		n += c
	}
	return n
}

// BenignTop10 splits the top-10 rows into the non-malicious ones.
func BenignTop10(y Year) []TopAnswer {
	var out []TopAnswer
	for _, t := range Top10[y] {
		if _, mal := NamedMalicious[y][t.Addr]; !mal {
			out = append(out, t)
		}
	}
	return out
}

// TailIPStats returns the packet and unique-value budget of the
// incorrect-IP long tail: IP-form packets that are neither malicious nor in
// the top-10, and the unique addresses carrying them.
func TailIPStats(y Year) (packets, unique uint64) {
	f := IncorrectFormsByYear[y]
	packets = f.IP.Packets - MaliciousTotals[y].R2
	unique = f.IP.Unique - MaliciousTotals[y].IPs
	for _, t := range BenignTop10(y) {
		packets -= t.Count
		unique--
	}
	return packets, unique
}
