// Package paperdata holds every quantitative result reported in the paper
// ("Where Are You Taking Me? Behavioral Analysis of Open DNS Resolvers",
// DSN 2019) as typed constants: Tables I–X plus the in-text numbers (geo
// distributions, the empty-question breakdown, probing rates).
//
// These values serve two roles:
//  1. they are the calibration targets the population compiler reconstructs
//     a resolver population from, and
//  2. they are the reference column of EXPERIMENTS.md — every regenerated
//     table is compared against them.
//
// The paper's tables contain a handful of internal arithmetic
// inconsistencies (row sums that disagree by a few packets). Those are kept
// verbatim here, and the reconciled values used for population construction
// are derived in derived.go with each adjustment documented in
// discrepancies.go.
package paperdata

import "time"

// Year identifies one of the two measurement campaigns.
type Year int

// The two campaigns contrasted throughout the paper.
const (
	Y2013 Year = 2013
	Y2018 Year = 2018
)

// Campaign is Table II: one row of the probing summary.
type Campaign struct {
	Year          Year
	Start, End    string        // as printed in Table II
	DurationLabel string        // as printed ("7d 5h", "11h")
	ProbeDuration time.Duration // the in-text precise duration
	PacketsPerSec uint64        // probing rate (in-text: 100k pps in 2018)
	Q1            uint64        // probes sent
	Q2R1          uint64        // queries seen at (and answers sent by) our auth NS
	R2            uint64        // responses received at the prober
	R2EmptyQ      uint64        // R2 with an empty question section (§IV-B4)
}

// R2WithQuestion returns the R2 packets carrying a question section — the
// universe of the behavioral analyses (Tables III–X).
func (c Campaign) R2WithQuestion() uint64 { return c.R2 - c.R2EmptyQ }

// Campaigns is Table II.
var Campaigns = map[Year]Campaign{
	Y2013: {
		Year:          Y2013,
		Start:         "10/28/2013 2PM",
		End:           "11/04/2013 6PM",
		DurationLabel: "7d 5h",
		ProbeDuration: 7*24*time.Hour + 4*time.Hour,
		PacketsPerSec: 5938, // derived: Q1 / elapsed; the 2013 system was C-based
		Q1:            3676724690,
		Q2R1:          38079578,
		R2:            16660123,
		// The paper only analyzes empty-question responses for 2018; the
		// 2013 dataset's undecodable answers are the N/A form instead.
		R2EmptyQ: 0,
	},
	Y2018: {
		Year:          Y2018,
		Start:         "04/26/2018 3PM",
		End:           "04/27/2018 2AM",
		DurationLabel: "11h",
		ProbeDuration: 10*time.Hour + 35*time.Minute,
		PacketsPerSec: 100000,
		Q1:            3702258432,
		Q2R1:          13049863,
		R2:            6506258,
		R2EmptyQ:      494,
	},
}

// TableITotalPrinted is the total row of Table I as printed. It is an
// arithmetic error in the paper: the row sum is 592,708,865 and the true
// union of the blocks is 592,708,864 (see ipv4.ReservedBlocks).
const TableITotalPrinted uint64 = 575931649

// Correctness is Table III: presence and correctness of dns_answer in R2.
type Correctness struct {
	R2      uint64 // all analyzed R2 (with question)
	Without uint64 // W/O: no dns_answer
	Correct uint64 // W_corr
	Incorr  uint64 // W_incorr
}

// With returns the W column (responses carrying dns_answer).
func (c Correctness) With() uint64 { return c.Correct + c.Incorr }

// ErrPct returns Err(%) = W_incorr / W × 100 as defined under Table III.
func (c Correctness) ErrPct() float64 {
	return float64(c.Incorr) / float64(c.With()) * 100
}

// CorrectnessByYear is Table III. (The paper analyzes the 2018 rows over
// the 6,505,764 with-question packets.)
var CorrectnessByYear = map[Year]Correctness{
	Y2013: {R2: 16660123, Without: 4867241, Correct: 11671589, Incorr: 121293},
	Y2018: {R2: 6505764, Without: 3642109, Correct: 2752562, Incorr: 111093},
}

// FlagRow is one row of Table IV or V: the answer-class split for one value
// of a header flag.
type FlagRow struct {
	Without uint64
	Correct uint64
	Incorr  uint64
}

// Total returns the row total.
func (r FlagRow) Total() uint64 { return r.Without + r.Correct + r.Incorr }

// With returns the W column of the row.
func (r FlagRow) With() uint64 { return r.Correct + r.Incorr }

// ErrPct returns the row's Err(%) = Incorr / W × 100.
func (r FlagRow) ErrPct() float64 {
	return float64(r.Incorr) / float64(r.With()) * 100
}

// FlagTable is Table IV (RA) or Table V (AA) for one year.
type FlagTable struct {
	Flag0, Flag1 FlagRow
}

// RATable is Table IV: dns_answer statistics by the RA bit.
var RATable = map[Year]FlagTable{
	Y2013: {
		Flag0: FlagRow{Without: 4147838, Correct: 166108, Incorr: 75842},
		Flag1: FlagRow{Without: 719403, Correct: 11505481, Incorr: 45451},
	},
	Y2018: {
		Flag0: FlagRow{Without: 3434415, Correct: 3994, Incorr: 65172},
		Flag1: FlagRow{Without: 207694, Correct: 2748568, Incorr: 45921},
	},
}

// AATable is Table V: dns_answer statistics by the AA bit. The 2013 AA0 W
// cell is garbled in the paper's table; Correct is taken as printed
// (11,518,500) and Incorr derived from the row total. The 2018 Flag0 values
// are as printed and disagree with Table III by ±10 packets — see
// Discrepancies and ReconciledAA.
var AATable = map[Year]FlagTable{
	Y2013: {
		Flag0: FlagRow{Without: 4717485, Correct: 11518500, Incorr: 43014},
		Flag1: FlagRow{Without: 149756, Correct: 153089, Incorr: 78279},
	},
	Y2018: {
		Flag0: FlagRow{Without: 3512053, Correct: 2727477, Incorr: 17041},
		Flag1: FlagRow{Without: 130046, Correct: 25095, Incorr: 94052},
	},
}

// RcodeRow is Table VI for one year: packet counts per rcode, split by
// answer presence. Index by rcode value 0..9.
type RcodeRow struct {
	With    [10]uint64
	Without [10]uint64
}

// RcodeNames matches the column headers of Table VI.
var RcodeNames = [10]string{
	"NoError", "FormErr", "ServFail", "NXDomain", "NotImp",
	"Refused", "YXDomain", "YXRRSet", "NXRRSet", "NotAuth",
}

// RcodeTable is Table VI as printed. (The paper omits the NXRRSet column,
// absent from both datasets; index 8 is zero.)
var RcodeTable = map[Year]RcodeRow{
	Y2013: {
		With:    [10]uint64{11780575, 0, 12723, 10, 0, 1272, 0, 0, 0, 0},
		Without: [10]uint64{1198772, 453, 354176, 145724, 38, 3168053, 0, 2, 0, 11},
	},
	Y2018: {
		With:    [10]uint64{2860940, 23, 2489, 10, 0, 193, 0, 0, 0, 0},
		Without: [10]uint64{377803, 233, 200320, 48830, 605, 2934269, 1, 2, 0, 80032},
	},
}

// FormCount is one row of Table VII: packets and unique values for one
// incorrect-answer form.
type FormCount struct {
	Packets uint64
	Unique  uint64
}

// IncorrectForms is Table VII for one year.
type IncorrectForms struct {
	IP  FormCount
	URL FormCount
	Str FormCount
	// NA is the 2013-only undecodable form (libpcap parse failures).
	NA FormCount
}

// Total returns the total incorrect packets across forms.
func (f IncorrectForms) Total() uint64 {
	return f.IP.Packets + f.URL.Packets + f.Str.Packets + f.NA.Packets
}

// IncorrectFormsByYear is Table VII. The 2013 string row prints 57 unique
// values over 10 packets, which is impossible; population construction caps
// unique at packets (see Discrepancies).
var IncorrectFormsByYear = map[Year]IncorrectForms{
	Y2013: {
		IP:  FormCount{Packets: 112270, Unique: 28443},
		URL: FormCount{Packets: 249, Unique: 175},
		Str: FormCount{Packets: 10, Unique: 57},
		NA:  FormCount{Packets: 8764, Unique: 0},
	},
	Y2018: {
		IP:  FormCount{Packets: 110790, Unique: 15022},
		URL: FormCount{Packets: 231, Unique: 80},
		Str: FormCount{Packets: 72, Unique: 29},
	},
}

// TopAnswer is one row of Table VIII (2018) or the in-text 2013 top-10: an
// IP address frequently appearing in incorrect answers.
type TopAnswer struct {
	Addr  string
	Count uint64
	Org   string
	// Reported is the "Reports" column: whether threat intelligence had
	// reports for the address ("N/A" for private addresses → false here,
	// with Private true).
	Reported bool
	Private  bool
	// Synthetic marks 2013 counts the paper does not state explicitly;
	// they are chosen to satisfy every stated rank, threshold and the
	// stated total of 26,514 (see Discrepancies).
	Synthetic bool
}

// Top10 lists the most frequent incorrect-answer IPs per year, in rank
// order. 2018 is Table VIII verbatim; 2013 is reconstructed from §IV-C1.
var Top10 = map[Year][]TopAnswer{
	Y2018: {
		{Addr: "216.194.64.193", Count: 23692, Org: "Tera-byte Dot Com"},
		{Addr: "74.220.199.15", Count: 13369, Org: "Unified Layer", Reported: true},
		{Addr: "208.91.197.91", Count: 8239, Org: "Confluence Network Inc", Reported: true},
		{Addr: "141.8.225.68", Count: 1197, Org: "Rook Media GmbH", Reported: true},
		{Addr: "192.168.1.1", Count: 1014, Org: "private network", Private: true},
		{Addr: "192.168.2.1", Count: 741, Org: "private network", Private: true},
		{Addr: "114.44.34.86", Count: 734, Org: "Chunghwa Telecom"},
		{Addr: "172.30.1.254", Count: 607, Org: "private network", Private: true},
		{Addr: "10.0.0.1", Count: 548, Org: "private network", Private: true},
		{Addr: "118.166.1.6", Count: 528, Org: "Chunghwa Telecom"},
	},
	Y2013: {
		{Addr: "74.220.199.15", Count: 9651, Org: "Unified Layer", Reported: true},
		{Addr: "192.168.1.254", Count: 5200, Org: "private network", Private: true, Synthetic: true},
		{Addr: "20.20.20.20", Count: 5010, Org: "Microsoft", Synthetic: true},
		{Addr: "192.168.2.1", Count: 1500, Org: "private network", Private: true, Synthetic: true},
		{Addr: "0.0.0.0", Count: 1032, Org: "unspecified"},
		{Addr: "198.105.244.11", Count: 1010, Org: "unnamed in paper", Synthetic: true},
		{Addr: "173.192.59.63", Count: 995, Org: "SoftLayer"},
		{Addr: "221.238.203.46", Count: 811, Org: "China Unicom Tianjin"},
		{Addr: "68.87.91.199", Count: 748, Org: "Comcast"},
		{Addr: "192.168.1.1", Count: 557, Org: "private network", Private: true, Synthetic: true},
	},
}

// Top10Total is the stated sum of top-10 occurrences per year.
var Top10Total = map[Year]uint64{Y2013: 26514, Y2018: 50669}

// MalCategory is a threat-intelligence report category of Table IX.
type MalCategory string

// The categories of Table IX, in table order.
const (
	CatMalware    MalCategory = "Malware"
	CatPhishing   MalCategory = "Phishing"
	CatSpam       MalCategory = "Spam"
	CatSSHBrute   MalCategory = "SSH Bruteforce"
	CatScan       MalCategory = "Scan"
	CatBotnet     MalCategory = "Botnet"
	CatEmailBrute MalCategory = "Email Bruteforce"
)

// MalCategories lists Table IX's categories in order.
var MalCategories = []MalCategory{
	CatMalware, CatPhishing, CatSpam, CatSSHBrute, CatScan, CatBotnet, CatEmailBrute,
}

// MalCount is one cell pair of Table IX.
type MalCount struct {
	IPs uint64 // unique malicious IPs in the category
	R2  uint64 // R2 packets carrying those IPs
}

// MaliciousTable is Table IX.
var MaliciousTable = map[Year]map[MalCategory]MalCount{
	Y2013: {
		CatMalware:    {IPs: 65, R2: 11149},
		CatPhishing:   {IPs: 19, R2: 1092},
		CatSpam:       {IPs: 4, R2: 67},
		CatSSHBrute:   {IPs: 2, R2: 2},
		CatScan:       {IPs: 8, R2: 493},
		CatBotnet:     {IPs: 1, R2: 70},
		CatEmailBrute: {IPs: 1, R2: 1},
	},
	Y2018: {
		CatMalware:    {IPs: 170, R2: 23189},
		CatPhishing:   {IPs: 125, R2: 2878},
		CatSpam:       {IPs: 15, R2: 44},
		CatSSHBrute:   {IPs: 10, R2: 323},
		CatScan:       {IPs: 9, R2: 388},
		CatBotnet:     {IPs: 4, R2: 102},
		CatEmailBrute: {IPs: 2, R2: 2},
	},
}

// MaliciousTotals is the Total row of Table IX.
var MaliciousTotals = map[Year]MalCount{
	Y2013: {IPs: 100, R2: 12874},
	Y2018: {IPs: 335, R2: 26926},
}

// MalFlags is Table X: RA and AA values on the 26,926 R2 packets carrying a
// malicious IP (2018 only).
type MalFlags struct {
	RA0, RA1 uint64
	AA0, AA1 uint64
}

// MaliciousFlags2018 is Table X.
var MaliciousFlags2018 = MalFlags{
	RA0: 19534, RA1: 7392,
	AA0: 7472, AA1: 19454,
}

// NamedMalicious lists the individually named malicious answer IPs with
// their paper-reported occurrence counts. 208.91.197.91 is the Fig. 4
// example (ransomware/malware/phishing/botnet reports on Cymon).
var NamedMalicious = map[Year]map[string]uint64{
	Y2013: {"74.220.199.15": 9651},
	Y2018: {
		"74.220.199.15": 13369,
		"208.91.197.91": 8239,
		"141.8.225.68":  1197,
	},
}

// GeoCount is one country entry of the in-text malicious-resolver
// geolocation analysis (counts are R2 packets from resolvers in that
// country, per the paper's phrasing "12,874 malicious resolvers ...
// distributed over 36 countries").
type GeoCount struct {
	Country string // ISO 3166-1 alpha-2
	R2      uint64
}

// MaliciousGeo is the in-text per-country distribution of malicious
// resolvers, in the paper's order.
var MaliciousGeo = map[Year][]GeoCount{
	Y2013: {
		{"US", 12616}, {"TR", 91}, {"VG", 28}, {"PL", 24}, {"IR", 18},
		{"BR", 9}, {"KR", 8}, {"TW", 8}, {"AR", 7}, {"BG", 6},
		{"ES", 5}, {"PT", 5}, {"AT", 4}, {"CA", 4}, {"DE", 4},
		{"NL", 4}, {"VN", 4}, {"CH", 3}, {"RU", 3}, {"SA", 3},
		{"AU", 2}, {"ID", 2}, {"KE", 2}, {"SE", 2}, {"CN", 1},
		{"FR", 1}, {"GB", 1}, {"HK", 1}, {"MA", 1}, {"NA", 1},
		{"NI", 1}, {"PR", 1}, {"SG", 1}, {"TH", 1}, {"VA", 1},
		{"ZA", 1},
	},
	Y2018: {
		{"US", 21819}, {"IN", 3596}, {"HK", 714}, {"VG", 291}, {"AE", 162},
		{"CN", 146}, {"DE", 31}, {"PL", 24}, {"RU", 18}, {"BG", 16},
		{"NL", 14}, {"IE", 12}, {"AU", 11}, {"KY", 11}, {"CA", 8},
		{"FR", 7}, {"GB", 7}, {"JP", 7}, {"CH", 6}, {"PT", 6},
		{"IT", 5}, {"SG", 3}, {"TR", 3}, {"VN", 2}, {"AR", 1},
		{"AT", 1}, {"ES", 1}, {"JO", 1}, {"LT", 1}, {"MY", 1},
		{"UA", 1},
	},
}

// EmptyQuestion2018 is the §IV-B4 breakdown of the 494 R2 packets whose
// question section was empty.
type EmptyQuestionStats struct {
	Total       uint64
	WithAnswer  uint64 // 19, none correct
	PrivateNets uint64 // 14: 13 in 192.168/16, 1 in 10/8
	Private192  uint64
	Private10   uint64
	BadFormat   uint64 // 1 ("0000")
	Unroutable  uint64 // 4 (not found in Whois)
	RA1         uint64 // 184 (19 with answer + 165 without)
	RA0         uint64 // 303 stated; 7 packets unaccounted (see Discrepancies)
	AA1         uint64 // 2 (1 with incorrect answer)
	Rcodes      [10]uint64
}

// EmptyQuestion2018 holds the stated values.
var EmptyQuestion2018 = EmptyQuestionStats{
	Total:       494,
	WithAnswer:  19,
	PrivateNets: 14,
	Private192:  13,
	Private10:   1,
	BadFormat:   1,
	Unroutable:  4,
	RA1:         184,
	RA0:         303,
	AA1:         2,
	Rcodes:      [10]uint64{26, 1, 301, 2, 0, 163, 0, 0, 0, 0},
}

// NotDecoded2013 is the count of 2013 R2 packets whose dns_answer could not
// be decoded by the libpcap-based parser (§IV-C "Caveats"); they are Table
// VII's N/A form.
const NotDecoded2013 uint64 = 8764

// OpenResolverEstimates quotes §IV-B1's three estimation criteria for the
// number of open resolvers.
type OpenResolverEstimates struct {
	StrictRA1Correct uint64 // RA=1 and correct answer
	RAOnly           uint64 // RA=1 regardless of answer
	CorrectOnly      uint64 // correct answer regardless of RA
}

// Estimates per year (in-text, §IV-B1: "about 11.5 million ... 2.74
// million" etc.; exact values derive from Table IV).
var Estimates = map[Year]OpenResolverEstimates{
	Y2013: {StrictRA1Correct: 11505481, RAOnly: 12270335, CorrectOnly: 11671589},
	Y2018: {StrictRA1Correct: 2748568, RAOnly: 3002183, CorrectOnly: 2752562},
}

// SLD is the second-level domain the measurement controls.
const SLD = "ucfsealresearch.net"

// ClusterSize is the number of subdomains the authoritative server loads at
// once (§III-B: "only about 5 million subdomains could be reliably loaded").
const ClusterSize = 5000000

// TheoreticalClusters and UsedClusters quantify §III-B's subdomain-reuse
// result: reuse reduced the clusters needed from ~800 to 4.
const (
	TheoreticalClusters = 800
	UsedClusters        = 4
)

// ClusterReloadTime is the stated time to load one 5M-subdomain cluster.
const ClusterReloadTime = time.Minute
