package scan

import (
	"testing"
	"testing/quick"

	"openresolver/internal/ipv4"
)

func TestPermutationIsBijective(t *testing.T) {
	for _, bits := range []uint8{1, 2, 3, 7, 8, 13, 16, 20} {
		p, err := NewPermutation(bits, 0xDEADBEEF)
		if err != nil {
			t.Fatalf("bits %d: %v", bits, err)
		}
		n := p.Size()
		if n > 1<<20 {
			continue
		}
		seen := make([]bool, n)
		for i := uint64(0); i < n; i++ {
			y := p.Apply(i)
			if y >= n {
				t.Fatalf("bits %d: Apply(%d) = %d out of domain", bits, i, y)
			}
			if seen[y] {
				t.Fatalf("bits %d: Apply(%d) = %d repeated", bits, i, y)
			}
			seen[y] = true
		}
	}
}

func TestPermutationDeterministicAndKeyed(t *testing.T) {
	p1, _ := NewPermutation(24, 1)
	p2, _ := NewPermutation(24, 1)
	p3, _ := NewPermutation(24, 2)
	same, diff := 0, 0
	for i := uint64(0); i < 1000; i++ {
		if p1.Apply(i) != p2.Apply(i) {
			t.Fatalf("same seed diverged at %d", i)
		}
		if p1.Apply(i) == p3.Apply(i) {
			same++
		} else {
			diff++
		}
	}
	if diff < 990 {
		t.Errorf("different seeds agree on %d/1000 inputs; permutation barely keyed", same)
	}
}

func TestPermutationScrambles(t *testing.T) {
	// A pseudorandom probe order must not visit long runs of adjacent
	// addresses: check consecutive outputs are rarely adjacent.
	p, _ := NewPermutation(32, 42)
	adjacent := 0
	var prev uint64
	for i := uint64(0); i < 10000; i++ {
		y := p.Apply(i)
		if i > 0 && (y == prev+1 || prev == y+1) {
			adjacent++
		}
		prev = y
	}
	if adjacent > 2 {
		t.Errorf("%d adjacent consecutive outputs; order not scrambled", adjacent)
	}
}

func TestPermutationBitsValidation(t *testing.T) {
	if _, err := NewPermutation(0, 1); err == nil {
		t.Error("bits=0 accepted")
	}
	if _, err := NewPermutation(33, 1); err == nil {
		t.Error("bits=33 accepted")
	}
}

func TestUniverseFullScanCoverage(t *testing.T) {
	// A tiny 12-bit-equivalent universe: shift 20 leaves 4096 indexes.
	u, err := NewUniverse(7, 20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if u.Indexes() != 4096 {
		t.Fatalf("Indexes = %d", u.Indexes())
	}
	seen := make(map[ipv4.Addr]bool, 4096)
	it := u.Iterate()
	for {
		a, ok := it.Next()
		if !ok {
			break
		}
		if seen[a] {
			t.Fatalf("address %v visited twice", a)
		}
		if !u.Contains(a) {
			t.Fatalf("visited %v outside universe", a)
		}
		seen[a] = true
	}
	if len(seen) != 4096 {
		t.Fatalf("visited %d addresses, want 4096", len(seen))
	}
}

func TestUniverseExclusions(t *testing.T) {
	excl := ipv4.NewReservedBlocklist()
	u, err := NewUniverse(99, 20, excl)
	if err != nil {
		t.Fatal(err)
	}
	var visited uint64
	it := u.Iterate()
	for {
		a, ok := it.Next()
		if !ok {
			break
		}
		if excl.Contains(a) {
			t.Fatalf("excluded address %v probed", a)
		}
		visited++
	}
	if want := u.AllowedCount(); visited != want {
		t.Fatalf("visited %d, AllowedCount says %d", visited, want)
	}
	// The sample must be a faithful 1/2^20 slice: allowed fraction within
	// 2% of the full-space fraction 3,702,258,432/2^32 ≈ 0.862.
	frac := float64(visited) / float64(u.Indexes())
	if frac < 0.84 || frac < 0 || frac > 0.89 {
		t.Errorf("allowed fraction %.4f implausible", frac)
	}
}

func TestAllowedCountFullSpace(t *testing.T) {
	// At shift 0 the analytic count must equal the exact complement of the
	// reserved union: the paper's 2018 Q1.
	u, err := NewUniverse(1, 0, ipv4.NewReservedBlocklist())
	if err != nil {
		t.Fatal(err)
	}
	if got := u.AllowedCount(); got != 3702258432 {
		t.Errorf("AllowedCount = %d, want 3702258432", got)
	}
}

func TestPropertyAllowedCountMatchesScan(t *testing.T) {
	// For random small blocklists, analytic AllowedCount must equal a
	// brute-force scan of the universe.
	f := func(seed uint64, baseA, baseB uint32) bool {
		excl := ipv4.NewBlocklist(
			ipv4.Block{Base: ipv4.Addr(baseA) & 0xFFFFF000, Bits: 20},
			ipv4.Block{Base: ipv4.Addr(baseB) & 0xFFFF0000, Bits: 14},
		)
		u, err := NewUniverse(seed, 22, excl) // 1024 indexes
		if err != nil {
			return false
		}
		var n uint64
		it := u.Iterate()
		for {
			_, ok := it.Next()
			if !ok {
				break
			}
			n++
		}
		return n == u.AllowedCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSharding(t *testing.T) {
	u, _ := NewUniverse(5, 22, nil) // 1024 indexes
	const shards = 3
	seen := make(map[ipv4.Addr]int)
	for s := uint64(0); s < shards; s++ {
		it := u.Shard(s, shards)
		for {
			a, ok := it.Next()
			if !ok {
				break
			}
			seen[a]++
		}
	}
	if len(seen) != 1024 {
		t.Fatalf("shards covered %d addresses, want 1024", len(seen))
	}
	for a, n := range seen {
		if n != 1 {
			t.Fatalf("address %v visited %d times", a, n)
		}
	}
}

func TestIteratorRemaining(t *testing.T) {
	u, _ := NewUniverse(5, 24, nil) // 256 indexes
	it := u.Iterate()
	if it.Remaining() != 256 {
		t.Errorf("Remaining = %d", it.Remaining())
	}
	it.Next()
	if it.Remaining() != 255 {
		t.Errorf("Remaining after one = %d", it.Remaining())
	}
	for {
		if _, ok := it.Next(); !ok {
			break
		}
	}
	if it.Remaining() != 0 {
		t.Errorf("Remaining at end = %d", it.Remaining())
	}
}

func TestUniverseResidueConsistency(t *testing.T) {
	u, _ := NewUniverse(123, 10, nil)
	it := u.Iterate()
	a1, _ := it.Next()
	a2, _ := it.Next()
	if uint32(a1)&1023 != uint32(a2)&1023 {
		t.Error("coset residue differs between probes")
	}
	if u.Contains(a1 + 1) {
		t.Error("address outside coset reported as contained")
	}
}

func TestNewUniverseValidation(t *testing.T) {
	if _, err := NewUniverse(1, 31, nil); err == nil {
		t.Error("shift 31 accepted")
	}
}

func BenchmarkPermutationApply(b *testing.B) {
	p, _ := NewPermutation(32, 1)
	b.ReportAllocs()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += p.Apply(uint64(i))
	}
	_ = sink
}

func BenchmarkUniverseIterate(b *testing.B) {
	u, _ := NewUniverse(1, 0, ipv4.NewReservedBlocklist())
	it := u.Iterate()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := it.Next(); !ok {
			it = u.Iterate()
		}
	}
}

func TestProbeOrderSpreadsAcrossSpace(t *testing.T) {
	// ZMap's motivation for the permutation: early probes must spread over
	// the whole space rather than hammer one network. Check that the first
	// 64k probes of a full-space universe touch many distinct /8s roughly
	// evenly.
	u, err := NewUniverse(77, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buckets [256]int
	it := u.Iterate()
	const n = 1 << 16
	for i := 0; i < n; i++ {
		a, ok := it.Next()
		if !ok {
			t.Fatal("universe exhausted")
		}
		buckets[a>>24]++
	}
	want := float64(n) / 256
	for b, got := range buckets {
		if float64(got) < want*0.5 || float64(got) > want*1.5 {
			t.Errorf("/8 %d received %d of first %d probes (expected ≈%.0f)", b, got, n, want)
		}
	}
}

func TestPermutationAvalanche(t *testing.T) {
	// Neighboring indices must map to wildly different outputs: measure
	// the average Hamming distance of Apply(i) vs Apply(i+1).
	p, _ := NewPermutation(32, 5)
	var totalBits int
	const n = 4096
	for i := uint64(0); i < n; i++ {
		x := p.Apply(i) ^ p.Apply(i+1)
		for x != 0 {
			totalBits += int(x & 1)
			x >>= 1
		}
	}
	avg := float64(totalBits) / n
	if avg < 10 || avg > 22 {
		t.Errorf("avalanche = %.1f bits flipped on average, want ≈16", avg)
	}
}
