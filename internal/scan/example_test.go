package scan_test

import (
	"fmt"

	"openresolver/internal/ipv4"
	"openresolver/internal/scan"
)

func ExampleUniverse() {
	// A 1/2^20 systematic sample of the IPv4 space, excluding the RFC
	// blocks of Table I, in ZMap-style pseudorandom order.
	u, _ := scan.NewUniverse(42, 20, ipv4.NewReservedBlocklist())
	it := u.Iterate()
	var probes int
	for {
		addr, ok := it.Next()
		if !ok {
			break
		}
		_ = addr
		probes++
	}
	fmt.Println(probes == int(u.AllowedCount()))
	// Output: true
}
