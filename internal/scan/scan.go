// Package scan implements the address-generation core of an Internet-wide
// scanner in the style of ZMap (Durumeric et al., USENIX Security 2013),
// which the paper modified for its probing system.
//
// ZMap iterates a cyclic permutation of the IPv4 space so that probes arrive
// at any given network in pseudorandom order (spreading load) while still
// covering every address exactly once, statelessly. We obtain the same
// properties with a keyed Feistel permutation over the index space: it is a
// bijection, needs no per-address state, and any position is addressable in
// O(1) — which additionally lets the population compiler place simulated
// resolvers at addresses the scanner is guaranteed to visit.
//
// For memory-bounded simulation runs the Universe supports systematic
// sampling: with SampleShift s it scans exactly the coset
// {ip : ip ≡ residue (mod 2^s)}, a uniform 1/2^s sample of the IPv4 space,
// still in pseudorandom order and still honoring the Table I exclusions.
package scan

import (
	"fmt"

	"openresolver/internal/ipv4"
)

// Permutation is a keyed bijection on [0, 2^Bits) built from a balanced
// Feistel network with cycle walking. It is deterministic in (bits, seed).
type Permutation struct {
	bits   uint8
	half   uint8  // bits per Feistel half (ceil(bits/2))
	mask   uint64 // 2^bits - 1
	hmask  uint64 // 2^half - 1
	keys   [feistelRounds]uint64
	domain uint64 // 2^bits
}

const feistelRounds = 6

// NewPermutation returns the permutation on [0, 2^bits) keyed by seed.
// bits must be in [1, 32].
func NewPermutation(bits uint8, seed uint64) (*Permutation, error) {
	if bits < 1 || bits > 32 {
		return nil, fmt.Errorf("scan: bits %d out of range [1,32]", bits)
	}
	p := &Permutation{
		bits:   bits,
		half:   (bits + 1) / 2,
		mask:   1<<bits - 1,
		domain: 1 << bits,
	}
	p.hmask = 1<<p.half - 1
	s := seed
	for i := range p.keys {
		s = splitmix64(s)
		p.keys[i] = s
	}
	return p, nil
}

// splitmix64 is the SplitMix64 finalizer; a fast, well-mixed 64-bit hash.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Size returns the domain size 2^bits.
func (p *Permutation) Size() uint64 { return p.domain }

// feistel applies the Feistel rounds on the doubled domain [0, 2^(2*half)).
// The rounds are unrolled with the struct fields hoisted into locals: this
// runs once per scanned candidate (hundreds of millions of calls at full
// scale), and the unrolled form keeps every operand in registers instead of
// re-loading through the receiver each iteration.
func (p *Permutation) feistel(x uint64) uint64 {
	half, hm := p.half, p.hmask
	k := &p.keys
	l := x >> half & hm
	r := x & hm
	l, r = r, l^(splitmix64(r^k[0])&hm)
	l, r = r, l^(splitmix64(r^k[1])&hm)
	l, r = r, l^(splitmix64(r^k[2])&hm)
	l, r = r, l^(splitmix64(r^k[3])&hm)
	l, r = r, l^(splitmix64(r^k[4])&hm)
	l, r = r, l^(splitmix64(r^k[5])&hm)
	return l<<half | r
}

// The unroll above covers exactly feistelRounds rounds.
var _ = [1]struct{}{}[feistelRounds-6]

// Apply maps x through the permutation. x must be < Size(); values outside
// the domain are reduced modulo Size() to keep the function total.
func (p *Permutation) Apply(x uint64) uint64 {
	x &= p.mask
	// Cycle-walk: the Feistel network permutes [0, 2^(2*half)), which may be
	// up to twice the domain; re-apply until the value lands inside.
	// Expected iterations < 2 since at least half the larger domain maps in.
	for {
		x = p.feistel(x)
		if x <= p.mask {
			return x
		}
	}
}

// Universe is the set of addresses one campaign scans: the sampling coset of
// the IPv4 space minus the exclusion blocklist, visited in the pseudorandom
// order of a keyed permutation.
type Universe struct {
	perm *Permutation
	// shift selects a 1/2^shift systematic sample; 0 scans everything.
	shift   uint8
	residue uint32
	excl    *ipv4.Blocklist
}

// NewUniverse builds a scan universe.
//   - seed keys the probe-order permutation;
//   - sampleShift picks the 1/2^sampleShift systematic sample (0 = full scan);
//   - excl is the exclusion blocklist (nil means no exclusions).
func NewUniverse(seed uint64, sampleShift uint8, excl *ipv4.Blocklist) (*Universe, error) {
	if sampleShift > 30 {
		return nil, fmt.Errorf("scan: sample shift %d too large", sampleShift)
	}
	perm, err := NewPermutation(32-sampleShift, seed)
	if err != nil {
		return nil, err
	}
	return &Universe{
		perm:  perm,
		shift: sampleShift,
		// The residue is derived from the seed so distinct campaigns sample
		// distinct cosets, but deterministically.
		residue: uint32(splitmix64(seed^0xC05E7) & (1<<sampleShift - 1)),
		excl:    excl,
	}, nil
}

// SampleShift returns the configured sampling shift.
func (u *Universe) SampleShift() uint8 { return u.shift }

// Indexes returns the number of candidate positions (coset size).
func (u *Universe) Indexes() uint64 { return u.perm.Size() }

// At returns the candidate address at permuted position idx, and whether it
// is eligible for probing (not excluded). idx must be < Indexes().
func (u *Universe) At(idx uint64) (ipv4.Addr, bool) {
	a := ipv4.Addr(uint32(u.perm.Apply(idx))<<u.shift | u.residue)
	if u.excl != nil && u.excl.Contains(a) {
		return a, false
	}
	return a, true
}

// Contains reports whether addr belongs to this universe (right coset
// residue and not excluded).
func (u *Universe) Contains(addr ipv4.Addr) bool {
	if uint32(addr)&(1<<u.shift-1) != u.residue {
		return false
	}
	return u.excl == nil || !u.excl.Contains(addr)
}

// AllowedCount returns the exact number of probe-eligible addresses in the
// universe, computed analytically from the exclusion intervals (no scan).
func (u *Universe) AllowedCount() uint64 {
	total := u.perm.Size()
	if u.excl == nil {
		return total
	}
	var excluded uint64
	step := uint64(1) << u.shift
	for i := 0; i < u.excl.Intervals(); i++ {
		los, his := u.excl.Interval(i)
		lo, hi := uint64(los), uint64(his)
		// First coset member >= lo.
		r := uint64(u.residue)
		first := lo + (r-lo)%step
		if first < lo { // wrapped (r < lo mod step)
			first += step
		}
		if first > hi {
			continue
		}
		excluded += (hi-first)/step + 1
	}
	return total - excluded
}

// Iterator walks the universe in probe order, optionally sharded: shard s of
// n visits positions s, s+n, s+2n, … permitting parallel senders exactly as
// ZMap shards do.
type Iterator struct {
	u        *Universe
	pos, end uint64
	step     uint64
}

// Iterate returns an iterator over the whole universe (one shard).
func (u *Universe) Iterate() *Iterator { return u.Shard(0, 1) }

// Shard returns an iterator over shard i of n.
func (u *Universe) Shard(i, n uint64) *Iterator {
	if n == 0 {
		n = 1
	}
	return &Iterator{u: u, pos: i % n, end: u.perm.Size(), step: n}
}

// Range returns an iterator over the contiguous position range [start, end)
// of the probe order — the partition shape of the sharded simulation, where
// each worker walks its own slice of the permutation serially and the
// slices concatenate to exactly one full Iterate() pass. Bounds are clamped
// to the universe size.
func (u *Universe) Range(start, end uint64) *Iterator {
	if end > u.perm.Size() {
		end = u.perm.Size()
	}
	if start > end {
		start = end
	}
	return &Iterator{u: u, pos: start, end: end, step: 1}
}

// Next returns the next probe-eligible address. ok is false when the shard
// is exhausted. Excluded candidates are skipped internally.
func (it *Iterator) Next() (addr ipv4.Addr, ok bool) {
	for it.pos < it.end {
		a, eligible := it.u.At(it.pos)
		it.pos += it.step
		if eligible {
			return a, true
		}
	}
	return 0, false
}

// Remaining returns an upper bound on candidates left (including excluded).
func (it *Iterator) Remaining() uint64 {
	if it.pos >= it.end {
		return 0
	}
	return (it.end - it.pos + it.step - 1) / it.step
}
