package prober

import (
	"testing"
	"time"

	"openresolver/internal/behavior"
	"openresolver/internal/capture"
	"openresolver/internal/ipv4"
	"openresolver/internal/obs"
)

// TestInstrumentedSendOneAllocBudget is the PR2 alloc budget with a
// metrics shard wired into the prober: the sweep+sendOne+Step loop must
// stay allocation-free with every counter increment live.
func TestInstrumentedSendOneAllocBudget(t *testing.T) {
	w := newWorld(t, 16, 1024) // 65536 candidates
	infra := map[ipv4.Addr]bool{proberAddr: true, rootAddr: true, tldAddr: true, authAddr: true}
	sh := obs.NewShard("probe")
	p := &Prober{
		cfg: Config{
			Addr: proberAddr, Universe: w.u, SLD: sld, ClusterSize: 1024,
			PacketsPerSec: 10000, Timeout: time.Millisecond,
			Log:  capture.NewProbeLog(),
			Obs:  sh,
			Skip: func(a ipv4.Addr) bool { return infra[a] },
		},
		it: w.u.Iterate(), srcPort: 40000, nextID: 1,
	}
	p.tickFn = p.tick
	p.node = w.sim.Register(proberAddr, p)
	p.refillCluster(0)

	iter := func() {
		now := p.node.Now()
		p.sweep(now)
		if !p.sendOne(now) {
			t.Fatal("send loop stalled")
		}
		if _, err := w.sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ { // warm nameBuf, payload pool, pending backing array
		iter()
	}
	if avg := testing.AllocsPerRun(300, iter); avg != 0 {
		t.Errorf("instrumented sweep+sendOne+Step allocates %v/op, want 0", avg)
	}
	if got := sh.Counter(obs.CProbeSent); got != p.sent {
		t.Errorf("probe.sent = %d, prober sent %d — instrumentation diverged", got, p.sent)
	}
}

// TestInstrumentedEndToEnd runs a full small campaign through Start with
// the shard attached and checks the counters mirror the Stats snapshot.
func TestInstrumentedEndToEnd(t *testing.T) {
	w := newWorld(t, 20, 64)
	w.placeResolvers(t, 10, behavior.Honest(1))
	sh := obs.NewShard("probe")
	infra := map[ipv4.Addr]bool{proberAddr: true, rootAddr: true, tldAddr: true, authAddr: true}
	p, err := Start(w.sim, Config{
		Addr: proberAddr, Universe: w.u, SLD: sld, ClusterSize: 64,
		PacketsPerSec: 10000, Timeout: 2 * time.Second,
		Auth: w.auth, Log: capture.NewProbeLog(),
		Obs:  sh,
		Skip: func(a ipv4.Addr) bool { return infra[a] },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatal("campaign did not finish")
	}
	st := p.Stats()
	if got := sh.Counter(obs.CProbeSent); got != st.Sent {
		t.Errorf("probe.sent = %d, Stats.Sent = %d", got, st.Sent)
	}
	if got := sh.Counter(obs.CProbeRecv); got != st.Received {
		t.Errorf("probe.recv = %d, Stats.Received = %d", got, st.Received)
	}
	if got := sh.Counter(obs.CProbeAnswered); got != st.Answered {
		t.Errorf("probe.answered = %d, Stats.Answered = %d", got, st.Answered)
	}
	if st.Received > 0 && sh.Histogram(obs.HRTT).Count() == 0 {
		t.Error("RTT histogram empty despite received responses")
	}
}
