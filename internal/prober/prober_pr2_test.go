package prober

import (
	"strings"
	"testing"
	"time"

	"openresolver/internal/capture"
	"openresolver/internal/ipv4"
)

// TestSendOnePackFailureRestoresSubdomain is the regression test for the
// subdomain-index leak: when the probe name cannot be encoded (here an SLD
// whose label exceeds 63 octets), the reserved index must return to the
// pool. The leak used to shrink every cluster by one subdomain per failed
// attempt, silently forcing extra cluster rotations.
func TestSendOnePackFailureRestoresSubdomain(t *testing.T) {
	w := newWorld(t, 24, 8) // 256 candidates
	badSLD := strings.Repeat("a", 64) + ".net"
	log := capture.NewProbeLog()
	p := startProber(t, w, Config{
		SLD: badSLD, ClusterSize: 8, Timeout: time.Second, Log: log,
	})
	if err := w.sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatal("campaign did not complete")
	}
	// Every encode failed before the wire: nothing sent, nothing pending,
	// and — the regression — the full pool is back in avail.
	if p.Sent() != 0 {
		t.Errorf("Sent = %d, want 0", p.Sent())
	}
	if got := log.Counters().Q1; got != 0 {
		t.Errorf("Q1 = %d, want 0", got)
	}
	if len(p.pending) != 0 {
		t.Errorf("pending = %d names, want 0", len(p.pending))
	}
	if len(p.avail) != 8 {
		t.Errorf("avail = %d subdomains, want 8 (index leaked on Pack failure)", len(p.avail))
	}
	if p.ClustersUsed() != 1 {
		t.Errorf("ClustersUsed = %d, want 1", p.ClustersUsed())
	}
	if p.Reused() != 0 {
		t.Errorf("Reused = %d, want 0", p.Reused())
	}
}

// TestLatencyPercentilesEdgeCases pins the nearest-rank semantics at the
// boundaries: no samples, a single sample, the 0th/100th percentiles, and
// cache refresh when new samples arrive between calls.
func TestLatencyPercentilesEdgeCases(t *testing.T) {
	ms := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	p := &Prober{}
	if got := p.LatencyPercentiles(50); got != nil {
		t.Errorf("no samples: got %v, want nil", got)
	}

	p.latencies = []time.Duration{ms(7)}
	for _, pct := range []float64{0, 50, 100} {
		if got := p.LatencyPercentiles(pct)[0]; got != ms(7) {
			t.Errorf("p%g of single sample = %v, want %v", pct, got, ms(7))
		}
	}

	p.latencies = []time.Duration{ms(40), ms(10), ms(30), ms(20)} // unsorted on purpose
	pcts := []float64{0, 1, 25, 50, 75, 99, 100}
	want := []time.Duration{ms(10), ms(10), ms(10), ms(20), ms(30), ms(40), ms(40)}
	got := p.LatencyPercentiles(pcts...)
	for i := range pcts {
		if got[i] != want[i] {
			t.Errorf("p%g = %v, want %v", pcts[i], got[i], want[i])
		}
	}

	// A new sample invalidates the cached sort (length changed).
	p.latencies = append(p.latencies, ms(5))
	if got := p.LatencyPercentiles(0)[0]; got != ms(5) {
		t.Errorf("p0 after new sample = %v, want %v (stale cache?)", got, ms(5))
	}
}

// TestSendOneAllocBudget drives the prober's steady-state send loop —
// sweep, sendOne, and the delivery step for each probe — and requires it
// to be allocation-free. Targets are unrouted (every probe dead-letters),
// which exercises the pooled-payload recycling that keeps sendOne at zero.
func TestSendOneAllocBudget(t *testing.T) {
	w := newWorld(t, 16, 1024) // 65536 candidates
	infra := map[ipv4.Addr]bool{proberAddr: true, rootAddr: true, tldAddr: true, authAddr: true}
	p := &Prober{
		cfg: Config{
			Addr: proberAddr, Universe: w.u, SLD: sld, ClusterSize: 1024,
			PacketsPerSec: 10000, Timeout: time.Millisecond,
			Log:  capture.NewProbeLog(),
			Skip: func(a ipv4.Addr) bool { return infra[a] },
		},
		it: w.u.Iterate(), srcPort: 40000, nextID: 1,
	}
	p.tickFn = p.tick
	p.node = w.sim.Register(proberAddr, p)
	p.refillCluster(0)

	iter := func() {
		now := p.node.Now()
		p.sweep(now)
		if !p.sendOne(now) {
			t.Fatal("send loop stalled")
		}
		if _, err := w.sim.Step(); err != nil { // delivery: NoRoute, payload recycled
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ { // warm nameBuf, payload pool, pending backing array
		iter()
	}
	if avg := testing.AllocsPerRun(300, iter); avg != 0 {
		t.Errorf("sweep+sendOne+Step allocates %v/op, want 0", avg)
	}
	if p.sent < 600 {
		t.Fatalf("sent %d probes, expected the loop to actually transmit", p.sent)
	}
}
