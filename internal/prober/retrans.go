package prober

// This file is the adaptive retransmission engine (DESIGN.md §8). The
// paper's measurement sent exactly one query per candidate IP, so every
// transient loss was a lost measurement — the 2013 campaign forfeited ~29%
// of its probes that way. This adds what production scanners (ZDNS et al.)
// ship: a bounded per-probe retransmission budget with exponential backoff
// and jitter, and a Jacobson/Karn RTT estimator that can replace the fixed
// sweep timeout. Everything is off by default; with Retries == 0 and
// AdaptiveTimeout == false the prober is bit-identical to the single-shot
// paper behaviour (the golden tests pin this).

import (
	"time"

	"openresolver/internal/dnssrv"
	"openresolver/internal/obs"
)

// rttEstimator is the Jacobson/Karn smoothed RTT tracker (RFC 6298
// weights): SRTT ← 7/8·SRTT + 1/8·sample, RTTVAR ← 3/4·RTTVAR +
// 1/4·|SRTT − sample|. Only clean first-transmission responses are
// sampled — a response to a retransmitted probe is ambiguous (which copy
// did it answer?), so Karn's rule excludes it.
type rttEstimator struct {
	srtt    time.Duration
	rttvar  time.Duration
	samples uint64
}

func (e *rttEstimator) observe(sample time.Duration) {
	if e.samples == 0 {
		e.srtt = sample
		e.rttvar = sample / 2
	} else {
		d := e.srtt - sample
		if d < 0 {
			d = -d
		}
		e.rttvar += (d - e.rttvar) / 4
		e.srtt += (sample - e.srtt) / 8
	}
	e.samples++
}

// rto returns SRTT + 4·RTTVAR clamped to [min, max], or fallback before
// the first sample.
func (e *rttEstimator) rto(fallback, min, max time.Duration) time.Duration {
	if e.samples == 0 {
		return fallback
	}
	d := e.srtt + 4*e.rttvar
	if d < min {
		d = min
	}
	if d > max {
		d = max
	}
	return d
}

// retryEntry queues a timed-out probe for retransmission; at is the enqueue
// instant, used by the shedding horizon.
type retryEntry struct {
	idx int32
	at  time.Duration
}

// retransmitting reports whether the engine is active; when false the
// prober runs the legacy single-shot path (monotone-deadline sweep, fixed
// timeout, no retry queue).
func (p *Prober) retransmitting() bool {
	return p.cfg.Retries > 0 || p.cfg.AdaptiveTimeout
}

// rto is the current first-transmission timeout: the fixed Timeout, or the
// estimator's clamped RTO under AdaptiveTimeout.
func (p *Prober) rto() time.Duration {
	if !p.cfg.AdaptiveTimeout {
		return p.cfg.Timeout
	}
	return p.rtt.rto(p.cfg.Timeout, p.cfg.MinRTO, p.cfg.MaxRTO)
}

// backoff returns the timeout for a probe on its n-th retransmission:
// RTO × 2ⁿ capped at MaxRTO, plus ±12.5% jitter so retry storms across
// thousands of probes decorrelate instead of hammering the same tick.
// The jitter draw comes from the simulation rng — runs stay deterministic.
func (p *Prober) backoff(attempts uint8) time.Duration {
	d := p.rto()
	for i := uint8(0); i < attempts; i++ {
		d *= 2
		if d >= p.cfg.MaxRTO {
			d = p.cfg.MaxRTO
			break
		}
	}
	j := d / 8
	if j > 0 {
		d += time.Duration(p.node.Rand().Int63n(int64(2*j+1))) - j
	}
	return d
}

// sweepScan is the sweep used when the retransmission engine is active.
// Backoff and adaptive RTOs break the legacy sweep's monotone-deadline
// invariant, so expired entries are found by a full scan with in-place
// compaction. Expired probes with budget left move to the retry queue
// (keeping their subdomain reserved); probes out of budget are given up.
func (p *Prober) sweepScan(now time.Duration) {
	out := p.pending[:0]
	for _, pn := range p.pending {
		if pn.deadline > now {
			out = append(out, pn)
			continue
		}
		if pn.cluster != p.cluster {
			continue
		}
		if p.sendAt[pn.idx] < 0 {
			continue // answered while queued; entry just expires
		}
		if int(p.attempts[pn.idx]) < p.cfg.Retries {
			p.retryq = append(p.retryq, retryEntry{idx: int32(pn.idx), at: now})
			continue
		}
		p.giveUp(pn.idx)
	}
	p.pending = out
}

// giveUp abandons an in-flight probe: its subdomain returns to the pool
// (unless burned or reuse is disabled) and, when a retry budget exists,
// the gave-up counter records the loss the budget could not recover.
func (p *Prober) giveUp(idx int) {
	if p.cfg.Retries > 0 {
		p.gaveUp++
		p.cfg.Obs.Inc(obs.CProbeGaveUp)
	}
	if !p.cfg.DisableReuse && !p.isBurned(idx) {
		p.avail = append(p.avail, idx)
		p.reused++
		p.cfg.Obs.Inc(obs.CProbeReused)
	}
	p.sendAt[idx] = -1
}

// serveRetries retransmits queued probes, spending at most budget send
// tokens, and returns how many it spent. Graceful degradation lives here:
// an entry that has waited longer than the shed horizon (4×RTO — the queue
// is backing up faster than it drains) is abandoned rather than sent, so a
// loss spike sheds retries instead of starving fresh probes.
func (p *Prober) serveRetries(now time.Duration, budget float64) float64 {
	shed := 4 * p.rto()
	spent := 0.0
	q := p.retryq
	kept := q[:0]
	for i := 0; i < len(q); i++ {
		idx := int(q[i].idx)
		if p.sendAt[idx] < 0 {
			continue // answered while queued
		}
		if now-q[i].at > shed {
			p.giveUp(idx)
			continue
		}
		if spent+1 > budget {
			kept = append(kept, q[i:]...) // out of tokens; keep the tail
			break
		}
		p.retransmit(idx, now)
		spent++
	}
	p.retryq = kept
	return spent
}

// retransmit re-sends the probe for subdomain idx to its original target,
// reusing the original query ID, and re-arms its (backed-off) deadline.
func (p *Prober) retransmit(idx int, now time.Duration) {
	p.attempts[idx]++
	off, end := p.tmplOff[idx], p.tmplOff[idx+1]
	if off == end {
		// The first transmission encoded, so this cannot happen; bail safely.
		p.giveUp(idx)
		return
	}
	id := p.qid[idx]
	wire := append(p.node.PayloadBuf(), p.tmplBuf[off:end]...)
	wire[0], wire[1] = byte(id>>8), byte(id)
	p.node.SendPooled(p.target[idx], p.srcPort, dnssrv.DNSPort, wire)
	p.retransmits++
	p.cfg.Obs.Inc(obs.CProbeRetransmits)
	p.sendAt[idx] = now
	p.pending = append(p.pending, pendingName{idx: idx, cluster: p.cluster, deadline: now + p.backoff(p.attempts[idx])})
}

// Stats is a snapshot of the prober's counters for the campaign report.
type Stats struct {
	Sent         uint64 // unique probes transmitted (Q1 targets)
	Skipped      uint64 // probes suppressed by the SendSkip model
	Received     uint64 // R2 packets collected
	Answered     uint64 // subdomains burned by a first response
	Reused       uint64 // subdomains returned to the pool unanswered
	Retransmits  uint64 // extra transmissions by the retry engine
	Late         uint64 // responses after their subdomain was swept/rotated
	DupResponses uint64 // responses for an already-answered subdomain
	GaveUp       uint64 // probes abandoned with the retry budget exhausted
	BadPackets   uint64 // R2 packets that failed to decode (e.g. corrupted)
	ClustersUsed int
	RTTSamples   uint64        // clean first-transmission latency samples
	SRTT, RTTVar time.Duration // adaptive-timeout estimator state
	RTO          time.Duration // current effective timeout
}

// Stats returns the counter snapshot.
func (p *Prober) Stats() Stats {
	return Stats{
		Sent:         p.sent,
		Skipped:      p.skipped,
		Received:     p.received,
		Answered:     p.answered,
		Reused:       p.reused,
		Retransmits:  p.retransmits,
		Late:         p.late,
		DupResponses: p.dupResponses,
		GaveUp:       p.gaveUp,
		BadPackets:   p.badPackets,
		ClustersUsed: p.ClustersUsed(),
		RTTSamples:   p.rtt.samples,
		SRTT:         p.rtt.srtt,
		RTTVar:       p.rtt.rttvar,
		RTO:          p.rto(),
	}
}

// Merge combines s with another shard's snapshot into the campaign total:
// counters sum (ClustersUsed too — every shard consumes its own disjoint
// cluster range), the estimator state merges as the sample-weighted mean of
// SRTT and RTTVAR, and RTO takes the maximum — the campaign-level
// "current effective timeout" is the most conservative shard's. The merge
// is associative over shard order and independent of worker scheduling.
func (s Stats) Merge(o Stats) Stats {
	out := s
	out.Sent += o.Sent
	out.Skipped += o.Skipped
	out.Received += o.Received
	out.Answered += o.Answered
	out.Reused += o.Reused
	out.Retransmits += o.Retransmits
	out.Late += o.Late
	out.DupResponses += o.DupResponses
	out.GaveUp += o.GaveUp
	out.BadPackets += o.BadPackets
	out.ClustersUsed += o.ClustersUsed
	n := s.RTTSamples + o.RTTSamples
	if n > 0 {
		out.SRTT = (s.SRTT*time.Duration(s.RTTSamples) + o.SRTT*time.Duration(o.RTTSamples)) / time.Duration(n)
		out.RTTVar = (s.RTTVar*time.Duration(s.RTTSamples) + o.RTTVar*time.Duration(o.RTTSamples)) / time.Duration(n)
	}
	out.RTTSamples = n
	if o.RTO > out.RTO {
		out.RTO = o.RTO
	}
	return out
}

// Late returns responses that arrived after their subdomain was swept or
// its cluster rotated away (previously indistinguishable from noise).
func (p *Prober) Late() uint64 { return p.late }

// Retransmits returns the number of retry transmissions sent.
func (p *Prober) Retransmits() uint64 { return p.retransmits }

// GaveUp returns probes abandoned after exhausting their retry budget.
func (p *Prober) GaveUp() uint64 { return p.gaveUp }

// Answered returns the number of subdomains answered by at least one
// response — the recovery metric the chaos tests compare across fault
// configurations.
func (p *Prober) Answered() uint64 { return p.answered }
