package prober

import (
	"testing"
	"time"

	"openresolver/internal/behavior"
	"openresolver/internal/capture"
	"openresolver/internal/dnssrv"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
	"openresolver/internal/scan"
)

var (
	proberAddr = ipv4.MustParseAddr("132.170.3.9")
	rootAddr   = ipv4.MustParseAddr("198.41.0.4")
	tldAddr    = ipv4.MustParseAddr("192.5.6.30")
	authAddr   = ipv4.MustParseAddr("45.76.1.10")
)

const sld = "ucfsealresearch.net"

type world struct {
	sim  *netsim.Sim
	auth *dnssrv.AuthServer
	u    *scan.Universe
}

// newWorld builds a hierarchy plus a tiny universe (2^(32-shift) candidates).
func newWorld(t *testing.T, shift uint8, clusterSize int) *world {
	t.Helper()
	return newImpairedWorld(t, shift, clusterSize, nil)
}

// newImpairedWorld is newWorld over an adverse network.
func newImpairedWorld(t *testing.T, shift uint8, clusterSize int, imps []netsim.Impairment) *world {
	t.Helper()
	sim := netsim.New(netsim.Config{Seed: 1, Latency: netsim.ConstantLatency(10 * time.Millisecond), Impairments: imps})
	dnssrv.NewReferralServer(sim, rootAddr, []dnssrv.Referral{
		{Zone: "net", NSName: "a.gtld-servers.net", Addr: tldAddr},
	})
	dnssrv.NewReferralServer(sim, tldAddr, []dnssrv.Referral{
		{Zone: sld, NSName: "ns1." + sld, Addr: authAddr},
	})
	auth := dnssrv.NewAuthServer(sim, dnssrv.AuthConfig{
		Addr: authAddr, SLD: sld, ClusterSize: clusterSize,
		ReloadTime: time.Minute,
	})
	u, err := scan.NewUniverse(42, shift, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &world{sim: sim, auth: auth, u: u}
}

// placeResolvers registers n resolvers at universe positions.
func (w *world) placeResolvers(t *testing.T, n int, profile behavior.Profile) []ipv4.Addr {
	t.Helper()
	infra := map[ipv4.Addr]bool{proberAddr: true, rootAddr: true, tldAddr: true, authAddr: true}
	var addrs []ipv4.Addr
	for idx := uint64(0); len(addrs) < n && idx < w.u.Indexes(); idx++ {
		a, ok := w.u.At(idx * 7 % w.u.Indexes())
		if !ok || infra[a] {
			continue
		}
		dup := false
		for _, prev := range addrs {
			if prev == a {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		behavior.NewResolver(w.sim, a, rootAddr, profile)
		addrs = append(addrs, a)
	}
	if len(addrs) != n {
		t.Fatalf("placed %d/%d resolvers", len(addrs), n)
	}
	return addrs
}

func startProber(t *testing.T, w *world, cfg Config) *Prober {
	t.Helper()
	if cfg.Addr == 0 {
		cfg.Addr = proberAddr
	}
	cfg.Universe = w.u
	if cfg.SLD == "" {
		cfg.SLD = sld
	}
	if cfg.PacketsPerSec == 0 {
		cfg.PacketsPerSec = 10000
	}
	if cfg.Auth == nil {
		cfg.Auth = w.auth
	}
	if cfg.Skip == nil {
		infra := map[ipv4.Addr]bool{proberAddr: true, rootAddr: true, tldAddr: true, authAddr: true}
		cfg.Skip = func(a ipv4.Addr) bool { return infra[a] }
	}
	p, err := Start(w.sim, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProbeCampaignCollectsAllResponders(t *testing.T) {
	w := newWorld(t, 24, 1000) // 256 candidates
	w.placeResolvers(t, 10, behavior.Honest(1))
	log := capture.NewProbeLog()
	p := startProber(t, w, Config{ClusterSize: 1000, Timeout: time.Second, Log: log})
	if err := w.sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatal("prober not done")
	}
	if got := log.Counters().R2; got != 10 {
		t.Errorf("R2 = %d, want 10", got)
	}
	// Q1 = all 256 candidates minus infra that fall in this universe.
	if p.Sent() < 250 || p.Sent() > 256 {
		t.Errorf("Q1 = %d", p.Sent())
	}
	if p.ClustersUsed() != 1 {
		t.Errorf("clusters = %d", p.ClustersUsed())
	}
	if p.Duration() <= 0 {
		t.Errorf("duration = %v", p.Duration())
	}
	// All non-responding probes' subdomains were reused or pending-drained.
	if p.Reused() == 0 {
		t.Error("no subdomain reuse observed")
	}
	if w.auth.QueriesSeen() != 10 {
		t.Errorf("auth saw %d Q2, want 10", w.auth.QueriesSeen())
	}
}

func TestSubdomainReuseKeepsClustersLow(t *testing.T) {
	// 256 candidates but only 24 subdomains per cluster: without reuse the
	// campaign would need ceil(256/24) = 11 clusters; with reuse only the
	// *responders* burn names, so ~2 clusters suffice for 30 responders.
	w := newWorld(t, 24, 24)
	w.placeResolvers(t, 30, behavior.Honest(1))
	p := startProber(t, w, Config{ClusterSize: 24, Timeout: 500 * time.Millisecond})
	if err := w.sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatal("prober not done")
	}
	if p.Received() != 30 {
		t.Errorf("received = %d", p.Received())
	}
	if p.ClustersUsed() > 3 {
		t.Errorf("clusters used = %d; reuse not effective", p.ClustersUsed())
	}
	if p.ClustersUsed() < 2 {
		t.Errorf("clusters used = %d; expected at least one rotation", p.ClustersUsed())
	}
}

func TestClusterRotationKeepsAuthInLockstep(t *testing.T) {
	w := newWorld(t, 24, 16)
	w.placeResolvers(t, 40, behavior.Honest(1))
	p := startProber(t, w, Config{ClusterSize: 16, Timeout: 300 * time.Millisecond})
	if err := w.sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatal("prober not done")
	}
	// Every honest resolver resolved successfully despite rotations: no
	// probe was in flight across a zone reload.
	if p.Received() != 40 {
		t.Errorf("received = %d, want 40", p.Received())
	}
	if got := w.auth.ActiveCluster() + 1; got != p.ClustersUsed() {
		t.Errorf("auth cluster %d vs prober clusters %d", got, p.ClustersUsed())
	}
}

func TestReuseAblation(t *testing.T) {
	// With reuse disabled, every candidate burns a subdomain: the campaign
	// needs the theoretical cluster count (§III-B's "800" at full scale).
	w := newWorld(t, 24, 24)
	w.placeResolvers(t, 30, behavior.Honest(1))
	p := startProber(t, w, Config{ClusterSize: 24, Timeout: 500 * time.Millisecond, DisableReuse: true})
	if err := w.sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatal("prober not done")
	}
	if p.Reused() != 0 {
		t.Errorf("reused = %d with reuse disabled", p.Reused())
	}
	// ~256 candidates / 24 names per cluster ≈ 11 clusters.
	if p.ClustersUsed() < 10 {
		t.Errorf("clusters used = %d, want the theoretical ~11", p.ClustersUsed())
	}
	if p.Received() != 30 {
		t.Errorf("received = %d", p.Received())
	}
}

func TestSendSkipModel(t *testing.T) {
	w := newWorld(t, 22, 5000) // 1024 candidates
	p := startProber(t, w, Config{ClusterSize: 5000, Timeout: 100 * time.Millisecond, SendSkip: 0.5})
	if err := w.sim.Run(0); err != nil {
		t.Fatal(err)
	}
	total := p.Sent() + p.Skipped()
	if total < 1000 || total > 1024 {
		t.Errorf("candidates = %d", total)
	}
	if p.Skipped() < 400 || p.Skipped() > 620 {
		t.Errorf("skipped = %d of %d at 50%%", p.Skipped(), total)
	}
}

func TestConfigValidation(t *testing.T) {
	w := newWorld(t, 24, 10)
	if _, err := Start(w.sim, Config{Addr: proberAddr, SLD: sld, ClusterSize: 10, PacketsPerSec: 1}); err == nil {
		t.Error("nil universe accepted")
	}
	if _, err := Start(w.sim, Config{Addr: proberAddr, Universe: w.u, SLD: sld, PacketsPerSec: 1}); err == nil {
		t.Error("zero cluster size accepted")
	}
	if _, err := Start(w.sim, Config{Addr: proberAddr, Universe: w.u, SLD: sld, ClusterSize: 10}); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestMixedPopulationFlows(t *testing.T) {
	w := newWorld(t, 24, 500)
	w.placeResolvers(t, 5, behavior.Honest(1))
	// A manipulator answers instantly with a fixed address; a refuser says
	// Refused; both must land in the capture log alongside honest answers.
	infra := map[ipv4.Addr]bool{proberAddr: true, rootAddr: true, tldAddr: true, authAddr: true}
	var extra []ipv4.Addr
	for idx := uint64(0); len(extra) < 2; idx++ {
		a, ok := w.u.At(w.u.Indexes() - 1 - idx)
		if !ok || infra[a] {
			continue
		}
		extra = append(extra, a)
	}
	behavior.NewResolver(w.sim, extra[0], rootAddr, behavior.Manipulator(ipv4.MustParseAddr("208.91.197.91")))
	behavior.NewResolver(w.sim, extra[1], rootAddr, behavior.Refuser())

	log := capture.NewProbeLog()
	p := startProber(t, w, Config{ClusterSize: 500, Timeout: time.Second, Log: log})
	if err := w.sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.Received() != 7 {
		t.Errorf("received = %d, want 7", p.Received())
	}
	flows := capture.GroupFlows(log.R2())
	if len(flows) != 7 {
		t.Errorf("flows = %d, want 7 (unique qnames)", len(flows))
	}
}

func TestLatencyMeasurement(t *testing.T) {
	w := newWorld(t, 24, 1000)
	w.placeResolvers(t, 8, behavior.Honest(1))
	p := startProber(t, w, Config{ClusterSize: 1000, Timeout: time.Second})
	if err := w.sim.Run(0); err != nil {
		t.Fatal(err)
	}
	lats := p.Latencies()
	if len(lats) != 8 {
		t.Fatalf("latencies = %d, want 8", len(lats))
	}
	// Honest resolution at 10ms constant latency: Q1 (10) + 3 legs × RTT
	// (60) + R2 (10) = 80ms.
	for _, l := range lats {
		if l != 80*time.Millisecond {
			t.Errorf("latency = %v, want 80ms", l)
		}
	}
	pct := p.LatencyPercentiles(50, 99)
	if len(pct) != 2 || pct[0] != 80*time.Millisecond || pct[1] != 80*time.Millisecond {
		t.Errorf("percentiles = %v", pct)
	}
	// The in-flight table must not leak timed-out entries.
	for idx, at := range p.sendAt {
		if at >= 0 {
			t.Errorf("sendAt leaked entry for subdomain %d (sent at %v)", idx, at)
		}
	}
	if p.LatencyPercentiles() != nil && len(p.LatencyPercentiles()) != 0 {
		t.Error("no-arg percentiles should be empty")
	}
}

func TestFractionalProbeRate(t *testing.T) {
	// Scaled campaigns divide the probe rate below one probe per tick; the
	// token bucket must honor the configured rate, not round it up.
	w := newWorld(t, 24, 1000) // 256 candidates
	p := startProber(t, w, Config{ClusterSize: 1000, Timeout: 50 * time.Millisecond, PacketsPerSec: 25})
	if err := w.sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatal("prober not done")
	}
	// ~250 probes at 25 pps ≈ 10s of virtual time.
	min, max := 9*time.Second, 12*time.Second
	if d := p.Duration(); d < min || d > max {
		t.Errorf("duration = %v, want ≈10s at 25 pps", d)
	}
}

func TestProactiveRotationAvoidsTailCrawl(t *testing.T) {
	// When most of a pool is burned, the prober must rotate rather than
	// crawl on the remnant: 100 responders against a 64-name pool.
	w := newWorld(t, 24, 64)
	w.placeResolvers(t, 100, behavior.Honest(1))
	p := startProber(t, w, Config{ClusterSize: 64, Timeout: 300 * time.Millisecond})
	if err := w.sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.Received() != 100 {
		t.Errorf("received = %d", p.Received())
	}
	// 100 burns over 64-name pools with rotation at 48 burned: 3±1 clusters.
	if p.ClustersUsed() < 2 || p.ClustersUsed() > 4 {
		t.Errorf("clusters used = %d", p.ClustersUsed())
	}
}

func TestOnDoneCallback(t *testing.T) {
	w := newWorld(t, 24, 1000)
	var fired int
	startProber(t, w, Config{ClusterSize: 1000, Timeout: 50 * time.Millisecond, OnDone: func(*Prober) { fired++ }})
	if err := w.sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != 1 {
		t.Errorf("OnDone fired %d times", fired)
	}
}
