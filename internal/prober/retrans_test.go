package prober

import (
	"testing"
	"time"

	"openresolver/internal/behavior"
	"openresolver/internal/capture"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
)

// TestRetransmissionRecoversLoss runs the same lossy campaign with and
// without a retry budget. Manipulator resolvers answer without upstream
// legs, so each attempt survives with (1-loss)²: at 40% i.i.d. loss one
// shot lands ~36% of responders while six retries recover nearly all —
// the machinery the paper's single-shot design lacked.
func TestRetransmissionRecoversLoss(t *testing.T) {
	run := func(retries int) *Prober {
		w := newImpairedWorld(t, 24, 1000, []netsim.Impairment{&netsim.IIDLoss{P: 0.4}})
		w.placeResolvers(t, 20, behavior.Manipulator(ipv4.MustParseAddr("208.91.197.91")))
		p := startProber(t, w, Config{
			ClusterSize: 1000, Timeout: 200 * time.Millisecond, Retries: retries,
		})
		if err := w.sim.Run(0); err != nil {
			t.Fatal(err)
		}
		if !p.Done() {
			t.Fatal("campaign did not complete")
		}
		return p
	}

	with := run(6)
	without := run(0)
	if with.Answered() < 18 {
		t.Errorf("with retries: answered %d of 20 responders", with.Answered())
	}
	if without.Answered() > 14 {
		t.Errorf("without retries: answered %d of 20, expected a paper-style shortfall", without.Answered())
	}
	if with.Retransmits() == 0 {
		t.Error("no retransmissions recorded under 40% loss")
	}
	if without.Retransmits() != 0 || without.GaveUp() != 0 {
		t.Errorf("single-shot run recorded retransmits=%d gaveUp=%d", without.Retransmits(), without.GaveUp())
	}
	// Probes that stayed unanswered through the whole budget are gave-up.
	if st := with.Stats(); st.GaveUp == 0 {
		t.Error("expected some probes to exhaust the retry budget at 40% loss")
	}
}

// TestLateCounter: a responder slower than the sweep timeout produces a
// response for an already-reused subdomain — previously silently merged
// with noise, now counted as Late.
func TestLateCounter(t *testing.T) {
	w := newWorld(t, 24, 1000)
	// An echo host that reflects every probe back after 500ms, well past
	// the 100ms sweep timeout.
	var echoAt ipv4.Addr
	for idx := uint64(0); ; idx++ {
		a, ok := w.u.At(idx)
		if ok && a != proberAddr && a != rootAddr && a != tldAddr && a != authAddr {
			echoAt = a
			break
		}
	}
	w.sim.Register(echoAt, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		reply := append([]byte(nil), dg.Payload...)
		src := dg.Src
		n.After(500*time.Millisecond, func() {
			n.Send(src, 53, dg.SrcPort, reply)
		})
	}))
	p := startProber(t, w, Config{ClusterSize: 1000, Timeout: 100 * time.Millisecond})
	if err := w.sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.Received() != 1 {
		t.Fatalf("received = %d, want 1", p.Received())
	}
	if p.Late() != 1 {
		t.Errorf("Late = %d, want 1 (response after sweep)", p.Late())
	}
	if p.Answered() != 0 {
		t.Errorf("Answered = %d, want 0", p.Answered())
	}
}

// TestDuplicateResponseCounter: network-duplicated R2s for an already
// answered subdomain are counted as duplicates, not new answers.
func TestDuplicateResponseCounter(t *testing.T) {
	w := newImpairedWorld(t, 24, 1000, []netsim.Impairment{&netsim.Duplicator{P: 1, Copies: 1}})
	w.placeResolvers(t, 5, behavior.Manipulator(ipv4.MustParseAddr("208.91.197.91")))
	p := startProber(t, w, Config{ClusterSize: 1000, Timeout: time.Second})
	if err := w.sim.Run(0); err != nil {
		t.Fatal(err)
	}
	// Every packet (Q1 and R2) is duplicated; each responder's R2 arrives
	// at least twice, and resolvers also see duplicate Q1s they answer
	// again. Unique answers must stay at 5.
	if p.Answered() != 5 {
		t.Errorf("Answered = %d, want 5", p.Answered())
	}
	if p.Received() <= 5 {
		t.Errorf("Received = %d, expected duplicates on top of 5 answers", p.Received())
	}
	if st := p.Stats(); st.DupResponses == 0 {
		t.Errorf("DupResponses = 0 with a 100%% duplicating network (stats %+v)", st)
	}
}

// TestAdaptiveTimeoutLearnsRTT: with a constant-latency network the
// Jacobson estimator converges on the observed RTT and the effective RTO
// collapses from the 2s default to the MinRTO clamp — so unanswered names
// recycle an order of magnitude faster without losing answers.
func TestAdaptiveTimeoutLearnsRTT(t *testing.T) {
	w := newWorld(t, 24, 1000)
	w.placeResolvers(t, 10, behavior.Honest(1))
	p := startProber(t, w, Config{
		ClusterSize: 1000, Timeout: 2 * time.Second,
		AdaptiveTimeout: true, MinRTO: 120 * time.Millisecond,
	})
	if err := w.sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.Answered() != 10 {
		t.Fatalf("answered = %d, want 10", p.Answered())
	}
	st := p.Stats()
	// Honest resolution at 10ms/leg takes 80ms; SRTT must land there and
	// the RTO must collapse to the clamp, far below the fixed timeout.
	if st.SRTT < 60*time.Millisecond || st.SRTT > 100*time.Millisecond {
		t.Errorf("SRTT = %v, want ≈80ms", st.SRTT)
	}
	if st.RTO != 120*time.Millisecond {
		t.Errorf("RTO = %v, want the 120ms MinRTO clamp", st.RTO)
	}
	if p.Duration() > 40*time.Second {
		t.Errorf("campaign took %v; adaptive timeout should recycle names fast", p.Duration())
	}
}

// TestRetransmitKarnRule: responses to retransmitted probes must not feed
// the RTT estimator. A responder that only answers the second copy of a
// probe (simulating first-copy loss) yields no latency samples at all.
func TestRetransmitKarnRule(t *testing.T) {
	w := newWorld(t, 24, 1000)
	var echoAt ipv4.Addr
	for idx := uint64(0); ; idx++ {
		a, ok := w.u.At(idx)
		if ok && a != proberAddr && a != rootAddr && a != tldAddr && a != authAddr {
			echoAt = a
			break
		}
	}
	seen := map[string]int{}
	w.sim.Register(echoAt, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		key := string(dg.Payload)
		seen[key]++
		if seen[key] == 2 { // answer only the retransmission
			n.Send(dg.Src, 53, dg.SrcPort, append([]byte(nil), dg.Payload...))
		}
	}))
	p := startProber(t, w, Config{ClusterSize: 1000, Timeout: 100 * time.Millisecond, Retries: 3})
	if err := w.sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if p.Answered() != 1 {
		t.Fatalf("answered = %d, want 1 (the retransmitted probe)", p.Answered())
	}
	if len(p.Latencies()) != 0 {
		t.Errorf("latencies = %v; Karn's rule forbids timing retransmitted probes", p.Latencies())
	}
	if p.Stats().SRTT != 0 {
		t.Errorf("SRTT = %v, want 0 (no clean samples)", p.Stats().SRTT)
	}
}

// TestRetransmitSheddingUnderSpike: when the retry queue cannot drain
// (every probe times out, tiny token budget), entries past the shed
// horizon are abandoned instead of starving fresh probes — the campaign
// still completes and records the shed probes as gave-up.
func TestRetransmitSheddingUnderSpike(t *testing.T) {
	// A blackholed /0 network: nothing is ever delivered. ~250 in-flight
	// probes cycling every ≤400ms demand far more retransmissions than the
	// 50 pps token budget supplies, so the retry queue must back up past
	// the shed horizon.
	w := newImpairedWorld(t, 24, 256, []netsim.Impairment{
		&netsim.Blackhole{Block: ipv4.MustParseBlock("0.0.0.0/0")},
	})
	p := startProber(t, w, Config{
		ClusterSize: 256, Timeout: 100 * time.Millisecond, Retries: 10,
		PacketsPerSec: 50,
	})
	if err := w.sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if !p.Done() {
		t.Fatal("campaign wedged under total blackout")
	}
	st := p.Stats()
	if st.Answered != 0 {
		t.Errorf("answered = %d under a /0 blackhole", st.Answered)
	}
	if st.GaveUp == 0 {
		t.Error("no probes recorded as gave-up under total blackout")
	}
	// Shedding must keep the retry tail bounded: a full budget (10 retries
	// × ~250 probes) would need 2500+ retransmits; the shed horizon cuts
	// far below that.
	if st.Retransmits >= 10*st.Sent {
		t.Errorf("retransmits = %d for %d probes: shedding ineffective", st.Retransmits, st.Sent)
	}
}

// TestRetransmitAllocBudget extends the PR2 alloc test: the steady-state
// loop with the RTT estimator, retry queue, backoff and give-up paths all
// active must still allocate nothing.
func TestRetransmitAllocBudget(t *testing.T) {
	w := newWorld(t, 16, 1024) // 65536 candidates
	infra := map[ipv4.Addr]bool{proberAddr: true, rootAddr: true, tldAddr: true, authAddr: true}
	p := &Prober{
		cfg: Config{
			Addr: proberAddr, Universe: w.u, SLD: sld, ClusterSize: 1024,
			PacketsPerSec: 10000, Timeout: time.Millisecond,
			Retries: 2, AdaptiveTimeout: true,
			MinRTO: time.Millisecond, MaxRTO: 8 * time.Millisecond,
			Log:  capture.NewProbeLog(),
			Skip: func(a ipv4.Addr) bool { return infra[a] },
		},
		it: w.u.Iterate(), srcPort: 40000, nextID: 1,
	}
	p.tickFn = p.tick
	p.node = w.sim.Register(proberAddr, p)
	p.refillCluster(0)

	// Probes to unoccupied addresses dead-letter at submission and never
	// enter the event queue, so a no-op timer must advance the virtual
	// clock past the retransmission deadlines (timer arm+fire is itself
	// allocation-free, pinned by netsim's budget test).
	tick := func() {}
	iter := func() {
		now := p.node.Now()
		p.sweep(now)
		p.serveRetries(now, 4)
		if !p.sendOne(now) {
			t.Fatal("send loop stalled")
		}
		p.node.After(500*time.Microsecond, tick)
		// Drain the queue (payloads recycle at submission on NoRoute) so
		// the event core and payload pool stay in steady state.
		for {
			ok, err := w.sim.Step()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
		}
	}
	for i := 0; i < 400; i++ { // warm nameBuf, payload pool, pending/retry queues
		iter()
	}
	if avg := testing.AllocsPerRun(300, iter); avg != 0 {
		t.Errorf("sweep+serveRetries+sendOne+Step allocates %v/op, want 0", avg)
	}
	if p.retransmits == 0 {
		t.Fatal("alloc loop never exercised the retransmit path")
	}
	if p.gaveUp == 0 {
		t.Fatal("alloc loop never exercised the give-up path")
	}
}
