package prober

import (
	"testing"
	"time"

	"openresolver/internal/capture"
	"openresolver/internal/ipv4"
	"openresolver/internal/obs"
)

// TestShardSendOneAllocBudget is the sharded-engine variant of the PR2
// alloc budget: a prober configured the way core's sub-simulations
// configure it — a mid-universe Range window, a strided FirstCluster well
// past the three-digit label width, and a metrics shard attached — must
// keep the steady-state sweep+sendOne+Step loop allocation-free. The
// four-digit FirstCluster also exercises the wide cluster labels the
// shard striding produces.
func TestShardSendOneAllocBudget(t *testing.T) {
	w := newWorld(t, 16, 1024) // 65536 candidates
	infra := map[ipv4.Addr]bool{proberAddr: true, rootAddr: true, tldAddr: true, authAddr: true}
	sh := obs.NewShard("sim-3")
	total := w.u.Indexes()
	p := &Prober{
		cfg: Config{
			Addr: proberAddr, Universe: w.u, SLD: sld, ClusterSize: 1024,
			PacketsPerSec: 10000, Timeout: time.Millisecond,
			RangeStart: total / 4, RangeEnd: total,
			FirstCluster: 1022,
			Log:          capture.NewProbeLog(),
			Obs:          sh,
			Skip:         func(a ipv4.Addr) bool { return infra[a] },
		},
		srcPort: 40000, nextID: 1,
	}
	p.it = w.u.Range(p.cfg.RangeStart, p.cfg.RangeEnd)
	p.tickFn = p.tick
	p.node = w.sim.Register(proberAddr, p)
	p.refillCluster(p.cfg.FirstCluster)

	iter := func() {
		now := p.node.Now()
		p.sweep(now)
		if !p.sendOne(now) {
			t.Fatal("send loop stalled")
		}
		if _, err := w.sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 300; i++ { // warm nameBuf, payload pool, pending backing array
		iter()
	}
	if avg := testing.AllocsPerRun(300, iter); avg != 0 {
		t.Errorf("sharded sweep+sendOne+Step allocates %v/op, want 0", avg)
	}
	if got := p.ClustersUsed(); got != 1 {
		t.Errorf("ClustersUsed = %d, want 1 (relative to FirstCluster)", got)
	}
	if got := sh.Counter(obs.CProbeSent); got != p.sent {
		t.Errorf("probe.sent = %d, prober sent %d — instrumentation diverged", got, p.sent)
	}
}
