package prober

import (
	"fmt"
	"math"
	"sort"
	"time"

	"openresolver/internal/capture"
	"openresolver/internal/dnssrv"
	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
	"openresolver/internal/obs"
	"openresolver/internal/scan"
)

// Config parameterizes a probing campaign.
type Config struct {
	// Addr is the prober's source address.
	Addr ipv4.Addr
	// Universe supplies the candidate addresses in probe order.
	Universe *scan.Universe
	// RangeStart and RangeEnd bound the universe walk to probe-order
	// positions [RangeStart, RangeEnd) — one contiguous shard of the index
	// space in the parallel simulation. RangeEnd 0 walks the whole universe.
	RangeStart, RangeEnd uint64
	// SLD is the controlled second-level domain.
	SLD string
	// ClusterSize is the number of subdomains per cluster.
	ClusterSize int
	// FirstCluster offsets the subdomain-cluster namespace: the prober's
	// first pool is cluster FirstCluster (0 for a whole campaign). The
	// parallel simulation gives each shard a disjoint cluster range so the
	// merged probe and authoritative captures never collide on a qname.
	// Like cluster 0 of a serial campaign, the first cluster is pre-loaded —
	// rotating *past* it triggers the usual reload pause.
	FirstCluster int
	// PacketsPerSec is the probe rate in virtual time.
	PacketsPerSec uint64
	// Timeout is how long a subdomain stays reserved before it is deemed
	// unanswered and returned to the pool for reuse.
	Timeout time.Duration
	// Retries is the per-probe retransmission budget: a probe whose
	// deadline expires is retransmitted to the same target (same subdomain,
	// same query ID, exponential backoff with jitter) up to Retries times
	// before the prober gives up on it. 0 keeps the paper's single-shot
	// behaviour.
	Retries int
	// AdaptiveTimeout replaces the fixed Timeout with a Jacobson/Karn RTO
	// (SRTT + 4×RTTVAR, clamped to [MinRTO, MaxRTO]) learned from observed
	// response latencies. Retransmitted probes are never timed (Karn).
	AdaptiveTimeout bool
	// MinRTO and MaxRTO clamp the adaptive timeout and cap the exponential
	// backoff. Zero values default to 100ms and 4×Timeout.
	MinRTO, MaxRTO time.Duration
	// SendSkip is the probability a probe is never transmitted (models the
	// 2013 C-based prober's send shortfall, paperdata discrepancy D2).
	SendSkip float64
	// DisableReuse turns off subdomain reuse (§III-B) for ablation: every
	// probe then consumes a fresh subdomain and the campaign needs the
	// theoretical number of clusters (~800 at full scale) instead of ~4.
	DisableReuse bool
	// Auth, when set, has its cluster rotated in lockstep with the
	// prober's subdomain clusters.
	Auth *dnssrv.AuthServer
	// Log captures Q1 counts and R2 packets.
	Log *capture.ProbeLog
	// Obs, when non-nil, mirrors the prober's counters and response
	// latencies into the observability layer. It never influences probing
	// decisions, so campaigns stay bit-identical with it attached.
	Obs *obs.Shard
	// Skip marks addresses never to probe (the measurement's own
	// infrastructure).
	Skip func(ipv4.Addr) bool
	// OnDone fires once when the campaign completes (queue drained).
	OnDone func(*Prober)
}

// Prober is the scanning host.
type Prober struct {
	cfg  Config
	node *netsim.Node
	it   *scan.Iterator

	srcPort uint16
	nextID  uint16

	// Subdomain pool for the active cluster.
	cluster int
	avail   []int // free subdomain indices (LIFO)
	// burnedBits is a bitset over the active cluster's subdomain indices
	// (the old map[int]bool); burnedCount is its population count.
	burnedBits  []uint64
	burnedCount int
	pending     []pendingName // FIFO; deadlines are monotone

	pauseUntil time.Duration
	exhausted  bool
	done       bool
	start      time.Duration
	finishedAt time.Duration
	// tokens implements the send-rate budget: PacketsPerSec×tick credited
	// per tick, one consumed per probe. Fractional rates accumulate.
	tokens float64

	// Counters.
	sent         uint64
	skipped      uint64
	received     uint64
	reused       uint64
	answered     uint64
	retransmits  uint64
	late         uint64
	dupResponses uint64
	gaveUp       uint64
	badPackets   uint64

	// sendAt[idx] is the send instant of the outstanding probe using
	// subdomain idx of the active cluster, or -1 when idx is not in flight.
	// A probe's qname is derivable from (cluster, idx), and every in-flight
	// probe belongs to the active cluster — the pool only rotates once
	// pending has drained — so this slice replaces the old qname-keyed
	// sendTimes map. Entries are reset on response or timeout sweep.
	sendAt    []time.Duration
	latencies []time.Duration
	// Retransmission-engine state, parallel to sendAt (see retrans.go):
	// per-subdomain transmission attempts beyond the first, the probe's
	// target and query ID (for re-sends), the retry queue, and the RTT
	// estimator. All idle when Retries == 0 and AdaptiveTimeout == false.
	attempts []uint8
	target   []ipv4.Addr
	qid      []uint16
	retryq   []retryEntry
	rtt      rttEstimator
	// latSorted caches the sorted view of latencies for LatencyPercentiles;
	// it is valid while its length matches latencies.
	latSorted []time.Duration

	// Steady-state scratch: probe qname bytes, outbound wire buffer source
	// (the sim payload pool), inbound decode message, and the tick closure
	// (pre-bound so re-arming the tick timer does not allocate).
	nameBuf []byte
	rmsg    dnswire.Message
	tickFn  func()

	// Wire-template cache for the active cluster (ZDNS-style encoder
	// reuse): tmplBuf concatenates one pre-encoded query per subdomain
	// index — ID zeroed — and tmplOff[i]:tmplOff[i+1] bounds index i's
	// template. sendOne copies the template into a pooled buffer and
	// patches the 2-byte ID, replacing the per-probe name build + encode.
	// An index whose name failed to encode (unencodable SLD) has an empty
	// template; senders then replay the legacy error path. Rebuilt by
	// refillCluster on every rotation.
	tmplBuf []byte
	tmplOff []int32

	// Batched receive scratch (netsim.BatchHost): decoded messages and
	// per-datagram decode verdicts for one delivery batch.
	rmsgBatch []dnswire.Message
	rmsgOK    []bool
}

type pendingName struct {
	idx      int
	cluster  int
	deadline time.Duration
}

// tickInterval is the batch cadence of the send loop.
const tickInterval = 10 * time.Millisecond

// Start registers the prober and begins the campaign immediately.
func Start(sim *netsim.Sim, cfg Config) (*Prober, error) {
	if cfg.Universe == nil {
		return nil, fmt.Errorf("prober: universe required")
	}
	if cfg.ClusterSize <= 0 {
		return nil, fmt.Errorf("prober: cluster size must be positive")
	}
	if cfg.PacketsPerSec == 0 {
		return nil, fmt.Errorf("prober: packet rate must be positive")
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.Retries < 0 || cfg.Retries > 255 {
		return nil, fmt.Errorf("prober: retry budget %d outside [0, 255]", cfg.Retries)
	}
	if cfg.FirstCluster < 0 {
		return nil, fmt.Errorf("prober: first cluster %d negative", cfg.FirstCluster)
	}
	if cfg.MinRTO <= 0 {
		cfg.MinRTO = 100 * time.Millisecond
	}
	if cfg.MaxRTO <= 0 {
		cfg.MaxRTO = 4 * cfg.Timeout
	}
	if cfg.Log == nil {
		cfg.Log = capture.NewProbeLog()
	}
	it := cfg.Universe.Iterate()
	if cfg.RangeEnd > 0 {
		it = cfg.Universe.Range(cfg.RangeStart, cfg.RangeEnd)
	}
	p := &Prober{
		cfg:     cfg,
		it:      it,
		srcPort: 40000,
		nextID:  1,
	}
	p.tickFn = p.tick
	p.node = sim.Register(cfg.Addr, p)
	p.start = p.node.Now()
	p.refillCluster(cfg.FirstCluster)
	p.node.After(0, p.tickFn)
	return p, nil
}

// refillCluster switches the subdomain pool (and the authoritative zone) to
// cluster c.
func (p *Prober) refillCluster(c int) {
	p.cluster = c
	p.avail = p.avail[:0]
	for i := p.cfg.ClusterSize - 1; i >= 0; i-- {
		p.avail = append(p.avail, i)
	}
	words := (p.cfg.ClusterSize + 63) / 64
	if cap(p.burnedBits) < words {
		p.burnedBits = make([]uint64, words)
	} else {
		p.burnedBits = p.burnedBits[:words]
		clear(p.burnedBits)
	}
	p.burnedCount = 0
	if cap(p.sendAt) < p.cfg.ClusterSize {
		p.sendAt = make([]time.Duration, p.cfg.ClusterSize)
	} else {
		p.sendAt = p.sendAt[:p.cfg.ClusterSize]
	}
	for i := range p.sendAt {
		p.sendAt[i] = -1
	}
	if p.retransmitting() {
		if cap(p.attempts) < p.cfg.ClusterSize {
			p.attempts = make([]uint8, p.cfg.ClusterSize)
			p.target = make([]ipv4.Addr, p.cfg.ClusterSize)
			p.qid = make([]uint16, p.cfg.ClusterSize)
		} else {
			p.attempts = p.attempts[:p.cfg.ClusterSize]
			clear(p.attempts)
			p.target = p.target[:p.cfg.ClusterSize]
			p.qid = p.qid[:p.cfg.ClusterSize]
		}
		p.retryq = p.retryq[:0]
	}
	p.buildTemplates(c)
	if p.cfg.Auth != nil && c > p.cfg.FirstCluster {
		p.cfg.Auth.SetCluster(c)
		// §III-B: loading 5M subdomains takes about a minute; the prober
		// waits out the zone load before resuming.
		p.pauseUntil = p.node.Now() + paperReloadPause
	}
}

// paperReloadPause mirrors dnssrv's reload window; kept as a constant here
// so the prober does not reach into the server's internals.
const paperReloadPause = time.Minute

// buildTemplates pre-encodes every subdomain's query wire for cluster c
// (ID left zero for patching at send time). Encoding happens eagerly, at
// rotation time, so the steady-state send loop stays allocation-free. A
// name that fails to encode gets an empty template (tmplOff[i] ==
// tmplOff[i+1]); nothing is appended on failure because AppendQuery leaves
// the destination length untouched when it errors.
func (p *Prober) buildTemplates(c int) {
	p.tmplBuf = p.tmplBuf[:0]
	p.tmplOff = append(p.tmplOff[:0], 0)
	for i := 0; i < p.cfg.ClusterSize; i++ {
		p.nameBuf = dnssrv.AppendProbeName(p.nameBuf[:0], c, i, p.cfg.SLD)
		if buf, err := dnswire.AppendQuery(p.tmplBuf, 0, p.nameBuf, dnswire.TypeA); err == nil {
			p.tmplBuf = buf
		}
		p.tmplOff = append(p.tmplOff, int32(len(p.tmplBuf)))
	}
}

// ClustersUsed returns how many clusters the campaign has consumed so far
// (the §III-B "800 theoretical → 4 actual" metric). The count is relative
// to FirstCluster, so shard counts sum to the campaign total.
func (p *Prober) ClustersUsed() int { return p.cluster - p.cfg.FirstCluster + 1 }

// burn marks subdomain idx of the active cluster as answered (never reused).
func (p *Prober) burn(idx int) {
	w, bit := idx>>6, uint64(1)<<(idx&63)
	if p.burnedBits[w]&bit == 0 {
		p.burnedBits[w] |= bit
		p.burnedCount++
	}
}

func (p *Prober) isBurned(idx int) bool {
	return p.burnedBits[idx>>6]&(uint64(1)<<(idx&63)) != 0
}

// Sent returns the number of probes transmitted (Q1).
func (p *Prober) Sent() uint64 { return p.sent }

// Skipped returns probes suppressed by the SendSkip model.
func (p *Prober) Skipped() uint64 { return p.skipped }

// Received returns the number of R2 packets collected.
func (p *Prober) Received() uint64 { return p.received }

// Reused returns how many subdomains were returned to the pool after
// drawing no response.
func (p *Prober) Reused() uint64 { return p.reused }

// Done reports campaign completion.
func (p *Prober) Done() bool { return p.done }

// Duration returns the campaign's virtual duration (valid once done).
func (p *Prober) Duration() time.Duration { return p.finishedAt - p.start }

// tick runs one batch of the send loop.
func (p *Prober) tick() {
	if p.done {
		return
	}
	now := p.node.Now()
	p.sweep(now)

	// Proactive cluster rotation: when the in-flight set has drained and
	// most of the pool is burned, loading a fresh cluster beats crawling on
	// the remnant — the discipline that puts the paper's campaign at 4
	// clusters rather than waiting out every last name.
	if !p.exhausted && len(p.pending) == 0 && len(p.retryq) == 0 && p.burnedCount > p.cfg.ClusterSize*3/4 {
		p.refillCluster(p.cluster + 1)
	}

	if now >= p.pauseUntil {
		p.tokens += float64(p.cfg.PacketsPerSec) * tickInterval.Seconds()
		if max := float64(p.cfg.PacketsPerSec); p.tokens > max+1 {
			p.tokens = max + 1 // cap the burst to one second of budget
		}
		// Retries may spend at most half the batch up front; fresh probes
		// then take what they need, and leftovers flow back to the retry
		// queue. Under a loss spike the queue sheds itself (serveRetries)
		// rather than squeezing fresh coverage below half rate.
		if len(p.retryq) > 0 {
			p.tokens -= p.serveRetries(now, p.tokens/2)
		}
		for p.tokens >= 1 {
			if !p.sendOne(now) {
				break
			}
			p.tokens--
		}
		if len(p.retryq) > 0 && p.tokens >= 1 {
			p.tokens -= p.serveRetries(now, p.tokens)
		}
	}

	if p.exhausted && len(p.pending) == 0 && len(p.retryq) == 0 {
		p.done = true
		p.finishedAt = p.node.Now()
		if p.cfg.OnDone != nil {
			p.cfg.OnDone(p)
		}
		return
	}
	p.node.After(tickInterval, p.tickFn)
}

// sweep returns timed-out subdomains to the pool (subdomain reuse, §III-B).
// With the retransmission engine active, deadlines are no longer monotone
// (backoff, adaptive RTO) and expired probes may still have retry budget,
// so sweeping switches to the full-scan variant in retrans.go.
func (p *Prober) sweep(now time.Duration) {
	if p.retransmitting() {
		p.sweepScan(now)
		return
	}
	i := 0
	for ; i < len(p.pending); i++ {
		pn := p.pending[i]
		if pn.deadline > now {
			break
		}
		if pn.cluster == p.cluster {
			if !p.cfg.DisableReuse && !p.isBurned(pn.idx) {
				p.avail = append(p.avail, pn.idx)
				p.reused++
				p.cfg.Obs.Inc(obs.CProbeReused)
			}
			p.sendAt[pn.idx] = -1
		}
	}
	// Compact in place so the backing array is reused steady-state.
	n := copy(p.pending, p.pending[i:])
	p.pending = p.pending[:n]
}

// sendOne transmits the next probe; it returns false when the batch should
// stop (universe exhausted or no subdomains available).
func (p *Prober) sendOne(now time.Duration) bool {
	if len(p.avail) == 0 {
		if len(p.pending) > 0 || len(p.retryq) > 0 {
			// Pool exhausted but names may return after timeouts: stall.
			return false
		}
		p.refillCluster(p.cluster + 1)
		return false // resume next tick (possibly after the reload pause)
	}
	var target ipv4.Addr
	for {
		a, ok := p.it.Next()
		if !ok {
			p.exhausted = true
			return false
		}
		if p.cfg.Skip != nil && p.cfg.Skip(a) {
			continue
		}
		target = a
		break
	}
	if p.cfg.SendSkip > 0 && p.node.Rand().Float64() < p.cfg.SendSkip {
		p.skipped++
		return true
	}

	idx := p.avail[len(p.avail)-1]
	p.avail = p.avail[:len(p.avail)-1]
	id := p.nextID
	p.nextID++
	if p.nextID == 0 {
		p.nextID = 1
	}
	off, end := p.tmplOff[idx], p.tmplOff[idx+1]
	if off == end {
		// The name never encoded (buildTemplates recorded the failure), so
		// it never hits the wire: return idx to the pool instead of leaking
		// it (an unencodable SLD used to silently shrink every cluster by
		// one subdomain per attempt). The transaction ID is still consumed,
		// matching the historical per-probe encode path.
		p.avail = append(p.avail, idx)
		return true
	}
	wire := append(p.node.PayloadBuf(), p.tmplBuf[off:end]...)
	wire[0], wire[1] = byte(id>>8), byte(id)
	p.node.SendPooled(target, p.srcPort, dnssrv.DNSPort, wire)
	p.sent++
	p.cfg.Obs.Inc(obs.CProbeSent)
	p.cfg.Log.CountQ1(1)
	p.sendAt[idx] = now
	if p.retransmitting() {
		p.attempts[idx] = 0
		p.target[idx] = target
		p.qid[idx] = id
	}
	p.pending = append(p.pending, pendingName{idx: idx, cluster: p.cluster, deadline: now + p.rto()})
	return true
}

// Latencies returns the response latencies observed so far (probe send to
// R2 arrival), in arrival order.
func (p *Prober) Latencies() []time.Duration {
	return append([]time.Duration(nil), p.latencies...)
}

// LatencyPercentiles returns the given percentiles (0-100) of the observed
// response latencies by the nearest-rank method (rank = ceil(pct/100 × n),
// clamped to [1, n]), or nil when nothing was measured. The sorted view is
// cached across calls and refreshed only when new latencies have arrived.
func (p *Prober) LatencyPercentiles(pcts ...float64) []time.Duration {
	n := len(p.latencies)
	if n == 0 {
		return nil
	}
	if len(p.latSorted) != n {
		p.latSorted = append(p.latSorted[:0], p.latencies...)
		sort.Slice(p.latSorted, func(i, j int) bool { return p.latSorted[i] < p.latSorted[j] })
	}
	out := make([]time.Duration, len(pcts))
	for i, pct := range pcts {
		rank := int(math.Ceil(pct / 100 * float64(n)))
		if rank < 1 {
			rank = 1
		}
		if rank > n {
			rank = n
		}
		out[i] = p.latSorted[rank-1]
	}
	return out
}

// HandleDatagram implements netsim.Host: every inbound packet on the probe
// port is a candidate R2.
func (p *Prober) HandleDatagram(n *netsim.Node, dg netsim.Datagram) {
	// Decoding reuses the scratch message; nothing downstream retains it.
	p.handleResponse(n, dg, &p.rmsg, dnswire.UnpackInto(&p.rmsg, dg.Payload) == nil)
}

// HandleBatch implements netsim.BatchHost: when the simulator delivers an
// adjacent run of same-instant responses, the wire decode is driven over a
// scratch-message batch first, then every response is processed in arrival
// order — identical outcomes to per-datagram delivery, with the decode
// loop's setup amortized across the run.
func (p *Prober) HandleBatch(n *netsim.Node, dgs []netsim.Datagram) {
	for len(p.rmsgBatch) < len(dgs) {
		p.rmsgBatch = append(p.rmsgBatch, dnswire.Message{})
		p.rmsgOK = append(p.rmsgOK, false)
	}
	for i := range dgs {
		p.rmsgOK[i] = dnswire.UnpackInto(&p.rmsgBatch[i], dgs[i].Payload) == nil
	}
	for i := range dgs {
		p.handleResponse(n, dgs[i], &p.rmsgBatch[i], p.rmsgOK[i])
	}
}

// handleResponse is the R2 processing path shared by the single and batched
// receive entry points; msg is the decoded payload when decoded is true.
func (p *Prober) handleResponse(n *netsim.Node, dg netsim.Datagram, msg *dnswire.Message, decoded bool) {
	p.received++
	p.cfg.Obs.Inc(obs.CProbeRecv)
	p.cfg.Log.AddR2(n.Now(), dg)
	// Burn the subdomain so it is never reused (it may now be cached at
	// the responding resolver) and record the response latency.
	if !decoded {
		p.badPackets++ // e.g. corrupted in flight
		p.cfg.Obs.Inc(obs.CProbeBad)
		return
	}
	q, ok := msg.Question1()
	if !ok {
		p.badPackets++
		p.cfg.Obs.Inc(obs.CProbeBad)
		return
	}
	pn, err := dnssrv.ParseProbeName(q.Name, p.cfg.SLD)
	if err != nil {
		return
	}
	if pn.Cluster != p.cluster {
		// A response for a rotated-away cluster: the answer came back after
		// its subdomain's whole cluster was retired.
		p.late++
		p.cfg.Obs.Inc(obs.CProbeLate)
		return
	}
	if pn.Index < 0 || pn.Index >= len(p.sendAt) {
		return
	}
	if sent := p.sendAt[pn.Index]; sent >= 0 {
		// Karn's rule: only time a probe answered on its first transmission;
		// a retransmitted probe's response is ambiguous.
		if !p.retransmitting() || p.attempts[pn.Index] == 0 {
			lat := n.Now() - sent
			p.latencies = append(p.latencies, lat)
			p.rtt.observe(lat)
			p.cfg.Obs.Observe(obs.HRTT, int64(lat))
		}
		p.sendAt[pn.Index] = -1
		p.answered++
		p.cfg.Obs.Inc(obs.CProbeAnswered)
	} else if p.isBurned(pn.Index) {
		p.dupResponses++ // second answer for an already-burned subdomain
		p.cfg.Obs.Inc(obs.CProbeDup)
	} else {
		p.late++ // answer arrived after the sweep returned the name
		p.cfg.Obs.Inc(obs.CProbeLate)
	}
	p.burn(pn.Index)
}
