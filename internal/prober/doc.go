// Package prober implements the measurement system of §III: a modified
// ZMap that walks the scan universe in pseudorandom order at a configured
// packet rate, assigns each probe a unique subdomain from the two-tier
// cluster structure (Fig. 3), collects R2 responses, and reuses the
// subdomains that drew no response — the optimization that reduced the
// clusters needed from a theoretical 800 to 4 (§III-B).
//
// Beyond the paper's single-shot prober, the package carries the adaptive
// retransmission engine of DESIGN.md §8 (retrans.go): a bounded per-probe
// retry budget with exponential backoff and jitter, a Jacobson/Karn RTT
// estimator that can replace the fixed sweep timeout (Karn's rule excludes
// retransmitted probes from sampling), and a shed horizon that abandons
// stale retries under loss spikes instead of starving fresh probes. With
// Retries == 0 and AdaptiveTimeout == false the prober is bit-identical to
// the paper behaviour — the golden tests pin this.
//
// A prober can also run as one shard of a sharded campaign (DESIGN.md
// §12): Config.RangeStart/RangeEnd restrict it to a contiguous window of
// the probe order, Config.FirstCluster rebases its subdomain-cluster
// namespace so shards never collide on qnames, and Stats.Merge folds the
// per-shard counter snapshots into the campaign total in shard order.
//
// Config.Obs optionally attaches an obs.Shard that mirrors the prober's
// counters (sent, received, answered, retransmits, late, duplicates,
// gave-up, bad packets, subdomain reuse) and feeds response latencies into
// the RTT histogram. Like the netsim observer it is write-only and
// allocation-free on the hot path; campaigns run bit-identically with or
// without it.
package prober
