// Package classify infers each responder's role from the correlation of
// the two capture points of Fig. 2: the prober's R2 log and the
// authoritative server's Q2 log, joined by qname (§III-B's flow grouping).
//
// It formalizes two of the paper's methodological arguments as a
// measurement:
//
//   - §IV-C ("DNS Manipulation"): every probe qname is freshly created, so
//     a responder that returns an answer *without its flow ever reaching
//     the authoritative server* cannot be serving a cache — it fabricates
//     answers. "It is more plausible to say that the open resolver itself
//     is under the adversary's control."
//
//   - §VI (Schomp et al.): responders split into true recursives (the Q2
//     source is the responder itself) and forwarders/proxies (the Q2 for
//     their flow arrives from a different address — the hidden egress
//     resolver).
package classify

import (
	"fmt"
	"sort"
	"strings"

	"openresolver/internal/capture"
	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
)

// Role is a responder's inferred role.
type Role uint8

// Responder roles.
const (
	// RoleRecursive resolved the probe itself: the auth server saw the
	// flow's Q2 from the responder's own address.
	RoleRecursive Role = iota + 1
	// RoleForwarder relayed the probe: the flow's Q2 arrived from a
	// different address (the egress resolver behind the proxy).
	RoleForwarder
	// RoleFabricator answered with records although its flow never reached
	// the authoritative server — the §IV-C manipulation signature.
	RoleFabricator
	// RoleNonResolving responded without an answer and without resolving
	// (refusers, ServFail-ers, and the §IV-B deviants without answers).
	RoleNonResolving
)

// String names the role.
func (r Role) String() string {
	switch r {
	case RoleRecursive:
		return "recursive"
	case RoleForwarder:
		return "forwarder"
	case RoleFabricator:
		return "fabricator"
	case RoleNonResolving:
		return "non-resolving"
	default:
		return fmt.Sprintf("role(%d)", uint8(r))
	}
}

// Verdict is one responder's classification.
type Verdict struct {
	Responder ipv4.Addr
	Role      Role
	// Egress lists the distinct upstream sources observed at the
	// authoritative server for this responder's flows (for forwarders,
	// the hidden resolvers).
	Egress []ipv4.Addr
	// HadAnswer reports whether the R2 carried answer records.
	HadAnswer bool
}

// Summary aggregates verdicts by role.
type Summary struct {
	Verdicts []Verdict
	ByRole   map[Role]int
}

// Classify joins the prober-side R2 packets with the authoritative-side Q2
// packets by qname and classifies every responder.
func Classify(r2 []capture.Packet, auth []capture.Packet) *Summary {
	// qname → set of Q2 source addresses.
	q2Sources := make(map[string][]ipv4.Addr)
	for _, p := range auth {
		if p.Kind != capture.KindQ2 {
			continue
		}
		msg, err := dnswire.Unpack(p.Payload)
		if err != nil {
			continue
		}
		q, ok := msg.Question1()
		if !ok {
			continue
		}
		q2Sources[q.Name] = appendUnique(q2Sources[q.Name], p.Src)
	}

	s := &Summary{ByRole: make(map[Role]int)}
	seen := make(map[ipv4.Addr]bool)
	for _, p := range r2 {
		if p.Kind != capture.KindR2 || seen[p.Src] {
			continue
		}
		msg, err := dnswire.Unpack(p.Payload)
		if err != nil {
			continue
		}
		q, hasQ := msg.Question1()
		var sources []ipv4.Addr
		if hasQ {
			sources = q2Sources[q.Name]
		}
		hadAnswer := len(msg.Answers) > 0

		var role Role
		switch {
		case len(sources) == 0 && hadAnswer:
			role = RoleFabricator
		case len(sources) == 0:
			role = RoleNonResolving
		case containsAddr(sources, p.Src) && len(sources) == 1:
			role = RoleRecursive
		default:
			role = RoleForwarder
		}
		seen[p.Src] = true
		s.Verdicts = append(s.Verdicts, Verdict{
			Responder: p.Src,
			Role:      role,
			Egress:    sources,
			HadAnswer: hadAnswer,
		})
		s.ByRole[role]++
	}
	sort.Slice(s.Verdicts, func(i, j int) bool {
		return s.Verdicts[i].Responder < s.Verdicts[j].Responder
	})
	return s
}

// Fabricators returns the responders with the §IV-C manipulation
// signature (answers with no authoritative contact).
func (s *Summary) Fabricators() []ipv4.Addr {
	var out []ipv4.Addr
	for _, v := range s.Verdicts {
		if v.Role == RoleFabricator {
			out = append(out, v.Responder)
		}
	}
	return out
}

// Render formats the role counts.
func (s *Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Responder roles (prober × auth capture correlation):\n")
	for _, role := range []Role{RoleRecursive, RoleForwarder, RoleFabricator, RoleNonResolving} {
		fmt.Fprintf(&b, "  %-14s %d\n", role, s.ByRole[role])
	}
	return b.String()
}

func appendUnique(list []ipv4.Addr, a ipv4.Addr) []ipv4.Addr {
	if containsAddr(list, a) {
		return list
	}
	return append(list, a)
}

func containsAddr(list []ipv4.Addr, a ipv4.Addr) bool {
	for _, x := range list {
		if x == a {
			return true
		}
	}
	return false
}
