package classify

import (
	"strings"
	"testing"
	"time"

	"openresolver/internal/behavior"
	"openresolver/internal/capture"
	"openresolver/internal/dnssrv"
	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
)

var (
	rootAddr   = ipv4.MustParseAddr("198.41.0.4")
	tldAddr    = ipv4.MustParseAddr("192.5.6.30")
	authAddr   = ipv4.MustParseAddr("45.76.1.10")
	proberAddr = ipv4.MustParseAddr("132.170.1.1")
)

const sld = "ucfsealresearch.net"

func TestClassifyRoles(t *testing.T) {
	sim := netsim.New(netsim.Config{Seed: 1, Latency: netsim.ConstantLatency(5 * time.Millisecond)})
	dnssrv.NewReferralServer(sim, rootAddr, []dnssrv.Referral{
		{Zone: "net", NSName: "a.gtld-servers.net", Addr: tldAddr},
	})
	dnssrv.NewReferralServer(sim, tldAddr, []dnssrv.Referral{
		{Zone: sld, NSName: "ns1." + sld, Addr: authAddr},
	})
	authLog := capture.NewAuthLog()
	dnssrv.NewAuthServer(sim, dnssrv.AuthConfig{
		Addr: authAddr, SLD: sld, ClusterSize: 1000, Tap: authLog,
	})

	recursive := ipv4.MustParseAddr("60.0.0.1")
	hidden := ipv4.MustParseAddr("60.0.0.2")
	frontend := ipv4.MustParseAddr("60.0.0.3")
	fabricator := ipv4.MustParseAddr("60.0.0.4")
	refuser := ipv4.MustParseAddr("60.0.0.5")

	behavior.NewResolver(sim, recursive, rootAddr, behavior.Honest(1))
	behavior.NewResolver(sim, hidden, rootAddr, behavior.Honest(1))
	behavior.NewResolver(sim, frontend, rootAddr, behavior.Forwarder(hidden))
	behavior.NewResolver(sim, fabricator, rootAddr, behavior.Manipulator(ipv4.MustParseAddr("208.91.197.91")))
	behavior.NewResolver(sim, refuser, rootAddr, behavior.Refuser())

	probeLog := capture.NewProbeLog()
	prober := sim.Register(proberAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		probeLog.AddR2(n.Now(), dg)
	}))
	targets := []ipv4.Addr{recursive, frontend, fabricator, refuser}
	for i, target := range targets {
		qname := dnssrv.FormatProbeName(0, i+1, sld)
		q := dnswire.NewQuery(uint16(i+1), qname, dnswire.TypeA)
		prober.Send(target, 40000, dnssrv.DNSPort, q.MustPack())
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}

	s := Classify(probeLog.R2(), authLog.Packets())
	want := map[ipv4.Addr]Role{
		recursive:  RoleRecursive,
		frontend:   RoleForwarder,
		fabricator: RoleFabricator,
		refuser:    RoleNonResolving,
	}
	if len(s.Verdicts) != len(want) {
		t.Fatalf("verdicts = %d, want %d", len(s.Verdicts), len(want))
	}
	for _, v := range s.Verdicts {
		if want[v.Responder] != v.Role {
			t.Errorf("%v: role %v, want %v", v.Responder, v.Role, want[v.Responder])
		}
	}
	// The forwarder's verdict exposes the hidden egress resolver.
	for _, v := range s.Verdicts {
		if v.Responder == frontend {
			if len(v.Egress) != 1 || v.Egress[0] != hidden {
				t.Errorf("forwarder egress = %v, want [%v]", v.Egress, hidden)
			}
		}
	}
	if fabs := s.Fabricators(); len(fabs) != 1 || fabs[0] != fabricator {
		t.Errorf("fabricators = %v", fabs)
	}
	if s.ByRole[RoleRecursive] != 1 || s.ByRole[RoleForwarder] != 1 ||
		s.ByRole[RoleFabricator] != 1 || s.ByRole[RoleNonResolving] != 1 {
		t.Errorf("role counts = %v", s.ByRole)
	}
	out := s.Render()
	for _, wantStr := range []string{"recursive", "forwarder", "fabricator", "non-resolving"} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("render missing %q:\n%s", wantStr, out)
		}
	}
}

func TestClassifyDeduplicatesResponders(t *testing.T) {
	// Two R2 packets from the same source yield one verdict.
	q := dnswire.NewQuery(1, dnssrv.FormatProbeName(0, 1, sld), dnswire.TypeA)
	resp := dnswire.NewResponse(q)
	resp.Header.Rcode = dnswire.RcodeRefused
	pkt := capture.Packet{Kind: capture.KindR2, Src: ipv4.MustParseAddr("9.9.9.9"), Payload: resp.MustPack()}
	s := Classify([]capture.Packet{pkt, pkt}, nil)
	if len(s.Verdicts) != 1 {
		t.Errorf("verdicts = %d", len(s.Verdicts))
	}
	if s.Verdicts[0].Role != RoleNonResolving {
		t.Errorf("role = %v", s.Verdicts[0].Role)
	}
}

func TestRoleString(t *testing.T) {
	if Role(9).String() != "role(9)" {
		t.Error("unknown role string")
	}
}
