package capture

import (
	"bytes"
	"io"
	"testing"
	"time"

	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
)

func mkDatagram(qname string, id uint16) netsim.Datagram {
	q := dnswire.NewQuery(id, qname, dnswire.TypeA)
	r := dnswire.NewResponse(q)
	r.Header.RA = true
	r.AnswerA(0x01020304, 60)
	return netsim.Datagram{
		Src: ipv4.MustParseAddr("5.6.7.8"), Dst: ipv4.MustParseAddr("9.9.9.9"),
		SrcPort: 53, DstPort: 40000,
		Payload: r.MustPack(),
	}
}

func TestProbeLogCountsAndSink(t *testing.T) {
	l := NewProbeLog()
	var sunk []Packet
	l.Sink = func(p Packet) { sunk = append(sunk, p) }
	l.CountQ1(10)
	l.CountQ1(5)
	l.AddR2(time.Second, mkDatagram("a.example.net", 1))
	l.AddR2(2*time.Second, mkDatagram("b.example.net", 2))
	c := l.Counters()
	if c.Q1 != 15 || c.R2 != 2 {
		t.Errorf("counters = %+v", c)
	}
	if len(l.R2()) != 2 || len(sunk) != 2 {
		t.Errorf("retained %d, sunk %d", len(l.R2()), len(sunk))
	}
	if l.R2()[0].At != time.Second || l.R2()[0].Kind != KindR2 {
		t.Errorf("packet meta = %+v", l.R2()[0])
	}

	// Keep=false retains nothing but still counts and sinks.
	l2 := &ProbeLog{Sink: func(Packet) {}}
	l2.AddR2(0, mkDatagram("c.example.net", 3))
	if len(l2.R2()) != 0 || l2.Counters().R2 != 1 {
		t.Error("non-retaining log misbehaves")
	}
}

func TestAuthLogTap(t *testing.T) {
	l := NewAuthLog()
	dg := mkDatagram("x.example.net", 4)
	l.Packet(true, time.Second, dg, nil)
	l.Packet(false, 2*time.Second, dg, nil)
	l.Packet(true, 3*time.Second, dg, nil)
	c := l.Counters()
	if c.Q2 != 2 || c.R1 != 1 {
		t.Errorf("counters = %+v", c)
	}
	pk := l.Packets()
	if len(pk) != 3 || pk[0].Kind != KindQ2 || pk[1].Kind != KindR1 {
		t.Errorf("packets = %+v", pk)
	}
}

func TestGroupFlows(t *testing.T) {
	packets := []Packet{
		{Kind: KindR2, Payload: mkDatagram("a.example.net", 1).Payload},
		{Kind: KindR2, Payload: mkDatagram("b.example.net", 2).Payload},
		{Kind: KindR2, Payload: mkDatagram("a.example.net", 3).Payload},
		{Kind: KindR2, Payload: (&dnswire.Message{Header: dnswire.Header{QR: true}}).MustPack()},
	}
	flows := GroupFlows(packets)
	if len(flows) != 3 {
		t.Fatalf("flows = %d, want 3", len(flows))
	}
	if len(flows["a.example.net"].Packets) != 2 {
		t.Errorf("flow a has %d packets", len(flows["a.example.net"].Packets))
	}
	if len(flows[""].Packets) != 1 {
		t.Errorf("empty-question flow has %d packets", len(flows[""].Packets))
	}
}

func TestLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := []Packet{
		{Kind: KindQ1, At: time.Millisecond, Src: 1, Dst: 2, Payload: []byte{1, 2, 3}},
		{Kind: KindR2, At: time.Hour, Src: 0xFFFFFFFF, Dst: 0, Payload: nil},
		{Kind: KindQ2, At: 0, Src: 7, Dst: 8, Payload: bytes.Repeat([]byte{9}, 512)},
	}
	for _, p := range want {
		if err := w.Write(p); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 3 {
		t.Errorf("count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(want[0]); err == nil {
		t.Error("write after close accepted")
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, wp := range want {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Kind != wp.Kind || got.At != wp.At || got.Src != wp.Src || got.Dst != wp.Dst {
			t.Errorf("record %d meta: %+v want %+v", i, got, wp)
		}
		if !bytes.Equal(got.Payload, wp.Payload) {
			t.Errorf("record %d payload mismatch", i)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReaderRejectsBadHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOTALOG!x"))); err != ErrBadMagic {
		t.Errorf("bad magic: %v", err)
	}
	if _, err := NewReader(bytes.NewReader([]byte("ORDNSCAP\x09"))); err == nil {
		t.Error("bad version accepted")
	}
	if _, err := NewReader(bytes.NewReader([]byte("OR"))); err == nil {
		t.Error("short header accepted")
	}
}

func TestReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Write(Packet{Kind: KindR2, Payload: []byte{1, 2, 3, 4}})
	_ = w.Close()
	full := buf.Bytes()
	r, err := NewReader(bytes.NewReader(full[:len(full)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated record: %v", err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindQ1: "Q1", KindQ2: "Q2", KindR1: "R1", KindR2: "R2", Kind(9): "Kind(9)"} {
		if k.String() != want {
			t.Errorf("Kind(%d) = %q", k, k.String())
		}
	}
}

func BenchmarkLogWrite(b *testing.B) {
	w, _ := NewWriter(io.Discard)
	p := Packet{Kind: KindR2, At: time.Second, Src: 1, Dst: 2, Payload: make([]byte, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := w.Write(p); err != nil {
			b.Fatal(err)
		}
	}
}
