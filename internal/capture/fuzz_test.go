package capture

import (
	"bytes"
	"io"
	"testing"
	"time"

	"openresolver/internal/ipv4"
)

func ipv4Addr(n int) ipv4.Addr { return ipv4.Addr(uint32(n) * 2654435761) }

// FuzzReader: arbitrary bytes must never panic the log reader, and any log
// the Writer produces must read back intact.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	_ = w.Write(Packet{Kind: KindR2, At: time.Second, Src: 1, Dst: 2, Payload: []byte{1, 2, 3}})
	_ = w.Close()
	f.Add(buf.Bytes())
	f.Add([]byte("ORDNSCAP\x01"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			_, err := r.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
		}
	})
}

func TestWriterReaderPropertyRoundTrip(t *testing.T) {
	// Deterministic pseudo-random packet streams round-trip exactly.
	for trial := 0; trial < 20; trial++ {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			t.Fatal(err)
		}
		var want []Packet
		for i := 0; i < 50; i++ {
			p := Packet{
				Kind: Kind(i%4 + 1),
				At:   time.Duration(i*trial) * time.Millisecond,
				Src:  ipv4Addr(i * 7),
				Dst:  ipv4Addr(i * 13),
			}
			if i%3 != 0 {
				p.Payload = bytes.Repeat([]byte{byte(i)}, i%97)
			}
			want = append(want, p)
			if err := w.Write(p); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := NewReader(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		for i, wp := range want {
			got, err := r.Next()
			if err != nil {
				t.Fatalf("trial %d record %d: %v", trial, i, err)
			}
			if got.Kind != wp.Kind || got.At != wp.At || got.Src != wp.Src || got.Dst != wp.Dst ||
				!bytes.Equal(got.Payload, wp.Payload) {
				t.Fatalf("trial %d record %d mismatch", trial, i)
			}
		}
		if _, err := r.Next(); err != io.EOF {
			t.Fatalf("trial %d: expected EOF, got %v", trial, err)
		}
	}
}
