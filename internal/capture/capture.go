// Package capture implements the measurement's packet-capture artifacts:
// the prober-side log of Q1/R2 (the paper's modified-ZMap output) and the
// authoritative-side log of Q2/R1 (the paper's tcpdump capture, Fig. 2),
// plus qname-based flow grouping and a pcap-like binary log format for
// persisting captures to disk.
package capture

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
)

// Kind identifies which leg of Fig. 2 a captured packet belongs to.
type Kind uint8

// The four flows of Fig. 2.
const (
	KindQ1 Kind = iota + 1
	KindQ2
	KindR1
	KindR2
)

// String names the flow.
func (k Kind) String() string {
	switch k {
	case KindQ1:
		return "Q1"
	case KindQ2:
		return "Q2"
	case KindR1:
		return "R1"
	case KindR2:
		return "R2"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Packet is one captured datagram with its virtual timestamp.
type Packet struct {
	Kind    Kind
	At      time.Duration
	Src     ipv4.Addr
	Dst     ipv4.Addr
	Payload []byte
}

// Counters tallies the four flows.
type Counters struct {
	Q1, Q2, R1, R2 uint64
}

// ProbeLog is the prober-side capture: it counts Q1 (storing billions of
// identical probes is pointless — ZMap does not either) and retains R2
// packets, optionally forwarding them to a streaming sink.
type ProbeLog struct {
	counters Counters
	// Keep controls R2 retention; when false packets go only to Sink.
	Keep bool
	// Sink, if set, receives every R2 as it arrives.
	Sink func(Packet)
	r2   []Packet
}

// NewProbeLog returns a retaining probe log.
func NewProbeLog() *ProbeLog { return &ProbeLog{Keep: true} }

// CountQ1 records n probes sent.
func (l *ProbeLog) CountQ1(n uint64) { l.counters.Q1 += n }

// AddR2 records one response received at the prober.
func (l *ProbeLog) AddR2(at time.Duration, dg netsim.Datagram) {
	l.counters.R2++
	p := Packet{
		Kind: KindR2, At: at, Src: dg.Src, Dst: dg.Dst,
		Payload: append([]byte(nil), dg.Payload...),
	}
	if l.Sink != nil {
		l.Sink(p)
	}
	if l.Keep {
		l.r2 = append(l.r2, p)
	}
}

// Counters returns the flow tallies.
func (l *ProbeLog) Counters() Counters { return l.counters }

// R2 returns the retained responses.
func (l *ProbeLog) R2() []Packet { return l.r2 }

// AuthLog is the authoritative-side capture; it implements dnssrv.Tap.
type AuthLog struct {
	counters Counters
	// Keep controls packet retention.
	Keep    bool
	packets []Packet
}

// NewAuthLog returns a retaining authoritative-side log.
func NewAuthLog() *AuthLog { return &AuthLog{Keep: true} }

// Packet implements dnssrv.Tap.
func (l *AuthLog) Packet(inbound bool, at time.Duration, dg netsim.Datagram, _ *dnswire.Message) {
	kind := KindR1
	if inbound {
		kind = KindQ2
		l.counters.Q2++
	} else {
		l.counters.R1++
	}
	if l.Keep {
		l.packets = append(l.packets, Packet{
			Kind: kind, At: at, Src: dg.Src, Dst: dg.Dst,
			Payload: append([]byte(nil), dg.Payload...),
		})
	}
}

// Counters returns the flow tallies.
func (l *AuthLog) Counters() Counters { return l.counters }

// Packets returns the retained packets.
func (l *AuthLog) Packets() []Packet { return l.packets }

// Flow is the grouped view of one probe: all packets sharing a qname
// (§III-B: "we were able to easily group Q1, Q2, R1, and R2 for each flow").
type Flow struct {
	QName   string
	Packets []Packet
}

// GroupFlows groups packets by the canonical qname of their first question.
// Packets without a question group under the empty key — exactly the
// §IV-B4 population. Groups preserve packet order.
func GroupFlows(packets []Packet) map[string]*Flow {
	flows := make(map[string]*Flow)
	for _, p := range packets {
		key := ""
		if msg, err := dnswire.Unpack(p.Payload); err == nil {
			if q, ok := msg.Question1(); ok {
				key = q.Name
			}
		}
		f, ok := flows[key]
		if !ok {
			f = &Flow{QName: key}
			flows[key] = f
		}
		f.Packets = append(f.Packets, p)
	}
	return flows
}

// Binary log format: a fixed magic header then length-prefixed records.
// Like pcap it is stream-appendable and self-describing enough to replay.
const logMagic = "ORDNSCAP"

const logVersion = 1

var (
	// ErrBadMagic reports a log with the wrong header.
	ErrBadMagic = errors.New("capture: bad log magic")
	// ErrBadVersion reports an unsupported log version.
	ErrBadVersion = errors.New("capture: unsupported log version")
)

// Writer persists packets to a binary capture log.
type Writer struct {
	w      *bufio.Writer
	wrote  uint64
	closed bool
}

// NewWriter writes the log header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(logMagic); err != nil {
		return nil, err
	}
	if err := bw.WriteByte(logVersion); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Write appends one packet record.
func (w *Writer) Write(p Packet) error {
	if w.closed {
		return errors.New("capture: write after close")
	}
	var hdr [22]byte
	hdr[0] = byte(p.Kind)
	binary.BigEndian.PutUint64(hdr[1:], uint64(p.At))
	binary.BigEndian.PutUint32(hdr[9:], uint32(p.Src))
	binary.BigEndian.PutUint32(hdr[13:], uint32(p.Dst))
	binary.BigEndian.PutUint32(hdr[17:], uint32(len(p.Payload)))
	// hdr[21] reserved.
	if _, err := w.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.w.Write(p.Payload); err != nil {
		return err
	}
	w.wrote++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() uint64 { return w.wrote }

// Close flushes the log.
func (w *Writer) Close() error {
	w.closed = true
	return w.w.Flush()
}

// Reader reads a binary capture log.
type Reader struct {
	r *bufio.Reader
}

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(logMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, err
	}
	if string(magic) != logMagic {
		return nil, ErrBadMagic
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != logVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	return &Reader{r: br}, nil
}

// Next returns the next packet, or io.EOF at the end of the log.
func (r *Reader) Next() (Packet, error) {
	var hdr [22]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Packet{}, io.ErrUnexpectedEOF
		}
		return Packet{}, err
	}
	p := Packet{
		Kind: Kind(hdr[0]),
		At:   time.Duration(binary.BigEndian.Uint64(hdr[1:])),
		Src:  ipv4.Addr(binary.BigEndian.Uint32(hdr[9:])),
		Dst:  ipv4.Addr(binary.BigEndian.Uint32(hdr[13:])),
	}
	n := binary.BigEndian.Uint32(hdr[17:])
	if n > 1<<16 {
		return Packet{}, fmt.Errorf("capture: record size %d exceeds datagram limit", n)
	}
	p.Payload = make([]byte, n)
	if _, err := io.ReadFull(r.r, p.Payload); err != nil {
		return Packet{}, io.ErrUnexpectedEOF
	}
	return p, nil
}
