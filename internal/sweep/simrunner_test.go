package sweep

import (
	"sync"
	"testing"

	"openresolver/internal/core"
)

// The SimRunner seam: pure-year sim cells dispatch through it, mixed and
// synthetic cells never do, and the loss spec reaches it in its parseable
// CLI form. Byte identity through a real fabric coordinator is pinned in
// internal/fabric and cmd/orfabric; here we pin the seam's contract.

func seamSpec(t *testing.T) *Spec {
	t.Helper()
	none, err := ParseLoss("none")
	if err != nil {
		t.Fatal(err)
	}
	burst, err := ParseLoss("ge:0.05,0.2,0.125,1")
	if err != nil {
		t.Fatal(err)
	}
	retry, err := ParseRetryPolicy("0")
	if err != nil {
		t.Fatal(err)
	}
	year, err := ParseYear("2018")
	if err != nil {
		t.Fatal(err)
	}
	return &Spec{
		Years: []YearVal{year},
		Loss:  []LossVal{none, burst},
		Retry: []RetryPolicy{retry},
		Shift: 16,
		Seed:  1,
	}
}

func TestSimRunnerSeam(t *testing.T) {
	spec := seamSpec(t)
	base, err := Run(RunConfig{Spec: spec, PoolWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var specs []string
	runner := func(cfg core.Config, lossSpec string) (*core.Dataset, error) {
		mu.Lock()
		specs = append(specs, lossSpec)
		mu.Unlock()
		return core.RunSimulation(cfg)
	}
	got, err := Run(RunConfig{Spec: spec, PoolWorkers: 1, SimRunner: runner})
	if err != nil {
		t.Fatal(err)
	}

	if len(specs) != len(base) {
		t.Fatalf("SimRunner saw %d cells, want %d", len(specs), len(base))
	}
	for i, r := range base {
		if got[i].Digest != r.Digest {
			t.Errorf("cell %s: digest diverged through SimRunner", r.Cell.Slug())
		}
		if specs[i] != r.Cell.Loss.Label {
			t.Errorf("cell %s: SimRunner got loss spec %q, want the cell label %q", r.Cell.Slug(), specs[i], r.Cell.Loss.Label)
		}
	}
	// Each received spec must be the parseable CLI form — "none" or a
	// string ParseLoss round-trips — or remote workers could not compile
	// the cell.
	for _, s := range specs {
		if _, err := ParseLoss(s); err != nil {
			t.Errorf("SimRunner received unparseable loss spec %q: %v", s, err)
		}
	}
}

// TestSimRunnerSkipsMixedCells: drift-interpolated populations have no
// wire description, so they must keep running in-process even when a
// SimRunner is installed.
func TestSimRunnerSkipsMixedCells(t *testing.T) {
	mixedYear, err := ParseYear("2015.5")
	if err != nil {
		t.Fatal(err)
	}
	none, err := ParseLoss("none")
	if err != nil {
		t.Fatal(err)
	}
	retry, err := ParseRetryPolicy("0")
	if err != nil {
		t.Fatal(err)
	}
	spec := &Spec{
		Years: []YearVal{mixedYear},
		Loss:  []LossVal{none},
		Retry: []RetryPolicy{retry},
		Shift: 16,
		Seed:  1,
	}
	called := false
	runner := func(cfg core.Config, lossSpec string) (*core.Dataset, error) {
		called = true
		return core.RunSimulation(cfg)
	}
	if _, err := Run(RunConfig{Spec: spec, PoolWorkers: 1, SimRunner: runner}); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("SimRunner was invoked for a mixed-year cell")
	}
}
