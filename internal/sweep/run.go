package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"openresolver/internal/analysis"
	"openresolver/internal/core"
	"openresolver/internal/drift"
	"openresolver/internal/netsim"
	"openresolver/internal/obs"
	"openresolver/internal/paperdata"
	"openresolver/internal/prober"
)

// Result is one executed (or resumed) cell: the campaign's report, the
// counters the matrix prints, and the cell's FaultDigest — the same digest
// the golden tests pin, so a sweep cell can be cross-checked bit-for-bit
// against the standalone campaign.
type Result struct {
	Cell             Cell
	Digest           string
	Report           *analysis.Report
	NetStats         netsim.Stats
	FaultStats       netsim.FaultStats
	ProbeStats       prober.Stats
	ClustersUsed     int
	SubdomainsReused uint64
	// VirtualNanos is the simulator's clock at quiesce (sim cells).
	VirtualNanos uint64
	// WallNanos is the cell's wall-clock cost. It is reported on the log
	// writer only — never in the matrix, which must stay byte-identical
	// across runs.
	WallNanos uint64
	// Resumed marks cells loaded from a completed artifact instead of run.
	Resumed bool
}

// RunConfig parameterizes one sweep execution.
type RunConfig struct {
	// Spec is the grid to expand and run.
	Spec *Spec
	// PoolWorkers bounds how many cells execute concurrently (0 = all
	// cores). The pool size never affects output: results are collected by
	// cell index and rendered in expansion order.
	PoolWorkers int
	// ArtifactDir, when non-empty, receives one JSON artifact per executed
	// cell (cell-<slug>.json) and is where Resume looks for completed work.
	ArtifactDir string
	// Resume skips cells whose completed artifact already exists in
	// ArtifactDir, loading their results instead of re-running them.
	Resume bool
	// Obs, when non-nil, receives one pre-registered shard per cell (in
	// cell order, so snapshots are deterministic) plus a span per executed
	// cell; each cell still runs against its own private registry.
	Obs *obs.Registry
	// Log receives progress notes (cell completions, resume skips, wall
	// clocks). Nil discards them. Nothing written here is part of the
	// deterministic matrix output.
	Log io.Writer
	// Ctx, when non-nil, allows cooperative cancellation: the sweep stops
	// dispatching cells, in-flight cells drain at their next shard boundary
	// (checkpointing sub-cell progress when ArtifactDir is set), and Run
	// returns the completed results alongside core.ErrInterrupted.
	Ctx context.Context
	// OnCell, when non-nil, observes every completed cell the moment its
	// result is final — executed, loaded from an artifact on resume, or
	// both. It is the streaming seam the observatory daemon uses to render
	// partial matrices mid-run. Calls may come from concurrent pool
	// workers, so the callback must be safe for concurrent use; it must
	// not mutate the Result. Like Log, nothing it observes is part of the
	// deterministic matrix — the final result slice is always rendered in
	// cell order regardless of completion order.
	OnCell func(Result)
	// Watchdog, when positive, flags any cell still running after the
	// duration with a "stuck?" note on Log. It only ever warns — a slow
	// cell is never killed, because killing it would make the sweep's
	// outcome depend on host speed.
	Watchdog time.Duration
	// SimRunner, when non-nil, replaces core.RunSimulation for pure-year
	// sim cells — the seam the distributed fabric plugs into (a
	// fabric.Coordinator's RunCampaign dispatches each cell's shards to
	// remote workers). It receives the cell's compiled Config plus the
	// cell's impairment spec in its parseable CLI form ("none" when
	// pristine) and must return a dataset byte-identical to
	// core.RunSimulation(cfg); the digest matrix pins that. Mixed-year
	// cells and synthetic cells always run locally: their populations are
	// interpolated in-process and have no wire description.
	SimRunner func(cfg core.Config, lossSpec string) (*core.Dataset, error)
}

func (rc RunConfig) ctx() context.Context {
	if rc.Ctx != nil {
		return rc.Ctx
	}
	return context.Background()
}

func (rc RunConfig) pool() int {
	if rc.PoolWorkers > 0 {
		return rc.PoolWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// simWorkerCap bounds each cell's intra-campaign parallelism so that
// concurrent cells × per-cell workers stays at the pool bound instead of
// multiplying against it: the cap is the pool budget divided by how many
// cells actually run at once, never below one. Campaign output is
// worker-invariant (DESIGN.md §12), so the cap shapes scheduling only —
// the matrix bytes cannot depend on it.
func (rc RunConfig) simWorkerCap(todo int) int {
	conc := rc.pool()
	if todo > 0 && todo < conc {
		conc = todo
	}
	c := rc.pool() / conc
	if c < 1 {
		c = 1
	}
	return c
}

// capWorkers clamps a cell's requested worker count (0 = all cores) to the
// sweep-level cap.
func capWorkers(w, cap int) int {
	if w == 0 || w > cap {
		return cap
	}
	return w
}

// Run expands the spec and executes every cell over the bounded pool,
// returning results in cell order. The result slice is identical for any
// pool size, and — given the same artifact set — identical between a cold
// run and a resumed one (the resume and wall-clock fields are excluded
// from the matrix renderings).
func Run(rc RunConfig) ([]Result, error) {
	cells, err := rc.Spec.Cells()
	if err != nil {
		return nil, err
	}
	logw := rc.Log
	if logw == nil {
		logw = io.Discard
	}

	// The interpolator is built once, up front, only when the grid asks
	// for fractional years — it costs two full population builds.
	var interp *drift.Interpolator
	for _, c := range cells {
		if !c.Year.Pure {
			if interp, err = drift.NewInterpolator(rc.Spec.Shift, rc.Spec.Seed); err != nil {
				return nil, err
			}
			break
		}
	}

	// Pre-register one observability shard per cell in expansion order, so
	// the top registry's shard list is deterministic no matter how the
	// pool schedules the cells.
	shards := make([]*obs.Shard, len(cells))
	for i, c := range cells {
		shards[i] = rc.Obs.NewShard("cell-" + c.Slug())
	}

	results := make([]Result, len(cells))
	todo := make([]Cell, 0, len(cells))
	if rc.Resume && rc.ArtifactDir != "" {
		for _, c := range cells {
			res, ok, lerr := loadArtifact(rc.Spec, c, rc.ArtifactDir)
			if ok {
				res.Resumed = true
				results[c.Index] = res
				fmt.Fprintf(logw, "orsweep: cell %d (%s) resumed from artifact\n", c.Index, c.Key())
				if rc.OnCell != nil {
					rc.OnCell(res)
				}
				continue
			}
			if lerr != nil {
				// A damaged artifact is recoverable — the cell just reruns —
				// but must never be silent: a user resuming a long sweep
				// should know which cells lost their cached work and why.
				fmt.Fprintf(logw, "orsweep: cell %d (%s): artifact unusable (%v); rerunning cell\n",
					c.Index, c.Key(), lerr)
			}
			todo = append(todo, c)
		}
	} else {
		todo = cells
	}

	ctx := rc.ctx()
	jobs := make(chan Cell)
	errs := make([]error, len(cells))
	simCap := rc.simWorkerCap(len(todo))
	var wg sync.WaitGroup
	for w := 0; w < rc.pool(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				var watchdog *time.Timer
				if rc.Watchdog > 0 {
					c := c
					started := time.Now()
					watchdog = time.AfterFunc(rc.Watchdog, func() {
						fmt.Fprintf(logw, "orsweep: cell %d (%s) still running after %v — stuck?\n",
							c.Index, c.Key(), time.Since(started).Round(time.Second))
					})
				}
				sp := rc.Obs.Tracer().Begin("cell " + c.Key())
				res, err := runCell(rc, c, interp, shards[c.Index], simCap, logw)
				rc.Obs.Tracer().End(sp)
				if watchdog != nil {
					watchdog.Stop()
				}
				if err != nil {
					if errors.Is(err, core.ErrInterrupted) {
						// The cell drained at a shard boundary; its sub-cell
						// checkpoints (sim mode, ArtifactDir set) survive for
						// the next -resume. Not a failure.
						fmt.Fprintf(logw, "orsweep: cell %d (%s) interrupted at a shard boundary\n",
							c.Index, c.Key())
						continue
					}
					errs[c.Index] = fmt.Errorf("sweep: cell %d (%s): %w", c.Index, c.Key(), err)
					continue
				}
				// Persist immediately: a sweep killed later loses at most the
				// cells still in flight, never completed ones. Cells write
				// distinct files, so concurrent workers never collide.
				if rc.ArtifactDir != "" {
					if err := writeArtifact(rc.Spec, &res, rc.ArtifactDir); err != nil {
						errs[c.Index] = fmt.Errorf("sweep: cell %d (%s): artifact: %w", c.Index, c.Key(), err)
						continue
					}
				}
				results[c.Index] = res
				fmt.Fprintf(logw, "orsweep: cell %d (%s) done in %v\n",
					c.Index, c.Key(), time.Duration(res.WallNanos).Round(time.Millisecond))
				if rc.OnCell != nil {
					rc.OnCell(res)
				}
			}
		}()
	}
	// Graceful shutdown: on cancellation stop handing out cells; workers
	// drain what they hold (each campaign stops at its own shard boundary).
dispatch:
	for _, c := range todo {
		select {
		case jobs <- c:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i := range results {
		if results[i].Report == nil {
			// At least one cell never completed — only possible via
			// cancellation. Hand back what finished; the caller renders a
			// partial matrix and a rerun with -resume picks up the rest.
			return results, fmt.Errorf("sweep: %w: %s", core.ErrInterrupted,
				"partial results returned; rerun with -resume to continue")
		}
	}
	return results, nil
}

// runCell executes one cell against its own private registry, folds the
// cell's metrics into its pre-registered shard, and returns the matrix row
// material. Sim cells keep their R2 packets so the digest covers the raw
// response stream, exactly like the golden tests. simCap bounds the
// campaign's own worker fan-out so cell-level and campaign-level
// parallelism compose against one pool budget instead of multiplying.
// When an artifact directory is configured, sim cells checkpoint at shard
// granularity into ckpt-<slug>/ beneath it — an interrupted cell resumes
// below cell granularity on the next run, and a completed cell's campaign
// removes its own checkpoint directory.
func runCell(rc RunConfig, c Cell, interp *drift.Interpolator, shard *obs.Shard, simCap int, logw io.Writer) (Result, error) {
	spec := rc.Spec
	reg := obs.NewRegistry()
	cfg := core.Config{
		SampleShift:   spec.Shift,
		Seed:          spec.Seed,
		PacketsPerSec: spec.PPS,
		Workers:       capWorkers(c.Workers, simCap),
		Obs:           reg,
		Ctx:           rc.Ctx,
	}
	sim := spec.Mode == "sim"
	if sim {
		cfg.KeepPackets = true
		cfg.Faults = core.FaultPlan{
			Impairments:     c.Loss.Imps,
			Retries:         c.Retry.Retries,
			AdaptiveTimeout: c.Retry.Adaptive,
			UpstreamBackoff: c.Retry.Backoff,
			MaxQueuedEvents: spec.MaxEvents,
		}
		if rc.ArtifactDir != "" {
			cfg.Checkpoints = core.CheckpointPlan{
				Dir: cellCheckpointDir(rc.ArtifactDir, c),
				Log: logw,
			}
		}
	}

	wallStart := time.Now()
	var (
		ds  *core.Dataset
		err error
	)
	switch {
	case c.Year.Pure:
		cfg.Year = c.Year.Year
		if sim {
			if rc.SimRunner != nil {
				ds, err = rc.SimRunner(cfg, c.Loss.Label)
			} else {
				ds, err = core.RunSimulation(cfg)
			}
		} else {
			ds, err = core.RunSynthetic(cfg)
		}
	default:
		cfg.Year = paperdata.Y2018
		mixed, merr := interp.At(c.Year.Weight)
		if merr != nil {
			return Result{}, merr
		}
		if sim {
			ds, err = core.SimulatePopulation(cfg, mixed, interp.Threat())
		} else {
			ds, err = core.SynthesizePopulation(cfg, mixed, interp.Threat())
		}
	}
	if err != nil {
		return Result{}, err
	}

	merged := reg.Merged()
	merged.MergeInto(shard)
	res := Result{
		Cell:             c,
		Digest:           core.FaultDigest(ds),
		Report:           ds.Report,
		NetStats:         ds.NetStats,
		FaultStats:       ds.FaultStats,
		ProbeStats:       ds.ProbeStats,
		ClustersUsed:     ds.ClustersUsed,
		SubdomainsReused: ds.SubdomainsReused,
		VirtualNanos:     merged.Counter(obs.CSimVirtualNanos),
		WallNanos:        uint64(time.Since(wallStart)),
	}
	return res, nil
}

// artifact is the on-disk form of a completed cell: the cell's identity
// (key plus the spec scalars that shape it), its digest, and every field
// the matrix needs — so a resumed sweep renders byte-identically to a cold
// one without re-running the campaign.
type artifact struct {
	Version   int    `json:"version"`
	Key       string `json:"key"`
	Mode      string `json:"mode"`
	Shift     uint8  `json:"shift"`
	Seed      int64  `json:"seed"`
	PPS       uint64 `json:"pps"`
	MaxEvents int    `json:"max_events"`

	Digest           string            `json:"digest"`
	Report           *analysis.Report  `json:"report"`
	NetStats         netsim.Stats      `json:"net_stats"`
	FaultStats       netsim.FaultStats `json:"fault_stats"`
	ProbeStats       prober.Stats      `json:"probe_stats"`
	ClustersUsed     int               `json:"clusters_used"`
	SubdomainsReused uint64            `json:"subdomains_reused"`
	VirtualNanos     uint64            `json:"virtual_nanos"`
	WallNanos        uint64            `json:"wall_nanos"`
}

const artifactVersion = 1

func artifactPath(dir string, c Cell) string {
	return filepath.Join(dir, "cell-"+c.Slug()+".json")
}

// cellCheckpointDir is where a sim cell's shard checkpoints live while the
// cell is in flight (sub-cell resume granularity). The completed campaign
// removes it; only interrupted cells leave one behind.
func cellCheckpointDir(dir string, c Cell) string {
	return filepath.Join(dir, "ckpt-"+c.Slug())
}

// writeArtifact persists one executed cell, atomically (write + rename),
// so a sweep killed mid-write never leaves a half artifact that a later
// -resume would trust.
func writeArtifact(spec *Spec, res *Result, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	a := artifact{
		Version: artifactVersion,
		Key:     res.Cell.Key(),
		Mode:    spec.Mode, Shift: spec.Shift, Seed: spec.Seed,
		PPS: spec.PPS, MaxEvents: spec.MaxEvents,
		Digest:           res.Digest,
		Report:           res.Report,
		NetStats:         res.NetStats,
		FaultStats:       res.FaultStats,
		ProbeStats:       res.ProbeStats,
		ClustersUsed:     res.ClustersUsed,
		SubdomainsReused: res.SubdomainsReused,
		VirtualNanos:     res.VirtualNanos,
		WallNanos:        res.WallNanos,
	}
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	path := artifactPath(dir, res.Cell)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadArtifact returns the completed result for a cell if a valid artifact
// for exactly this cell-under-this-spec exists. A missing file is the
// normal "not yet run" case (ok=false, err=nil); a file that exists but
// cannot be trusted — truncated, corrupt, or written under a different
// spec — additionally returns the reason so the caller can warn before
// rerunning the cell. Either way the cell re-runs and rewrites the
// artifact; damaged state is never loaded.
func loadArtifact(spec *Spec, c Cell, dir string) (Result, bool, error) {
	data, err := os.ReadFile(artifactPath(dir, c))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return Result{}, false, nil
		}
		return Result{}, false, err
	}
	var a artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return Result{}, false, fmt.Errorf("corrupt or truncated artifact: %v", err)
	}
	if a.Version != artifactVersion {
		return Result{}, false, fmt.Errorf("artifact version %d, want %d", a.Version, artifactVersion)
	}
	if a.Key != c.Key() ||
		a.Mode != spec.Mode || a.Shift != spec.Shift || a.Seed != spec.Seed ||
		a.PPS != spec.PPS || a.MaxEvents != spec.MaxEvents {
		return Result{}, false, errors.New("artifact was written under a different spec")
	}
	if a.Digest == "" || a.Report == nil {
		return Result{}, false, errors.New("artifact is missing its digest or report")
	}
	return Result{
		Cell:             c,
		Digest:           a.Digest,
		Report:           a.Report,
		NetStats:         a.NetStats,
		FaultStats:       a.FaultStats,
		ProbeStats:       a.ProbeStats,
		ClustersUsed:     a.ClustersUsed,
		SubdomainsReused: a.SubdomainsReused,
		VirtualNanos:     a.VirtualNanos,
		WallNanos:        a.WallNanos,
	}, true, nil
}
