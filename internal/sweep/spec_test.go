package sweep

import (
	"strings"
	"testing"

	"openresolver/internal/paperdata"
)

func TestParseYear(t *testing.T) {
	for _, tc := range []struct {
		in      string
		wantErr bool
		label   string
		pure    bool
	}{
		{in: "2013", label: "2013", pure: true},
		{in: "2018", label: "2018", pure: true},
		{in: "2015.5", label: "2015.5", pure: false},
		{in: "2014", label: "2014.0", pure: false},
		{in: "2012", wantErr: true},
		{in: "2019", wantErr: true},
		{in: "2013.0", wantErr: true}, // boundary: use the pure form
		{in: "nope", wantErr: true},
		{in: "", wantErr: true},
	} {
		y, err := ParseYear(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseYear(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if y.Label != tc.label || y.Pure != tc.pure {
			t.Errorf("ParseYear(%q) = %+v, want label %q pure %v", tc.in, y, tc.label, tc.pure)
		}
	}
}

func TestParseRetryPolicy(t *testing.T) {
	for _, tc := range []struct {
		in      string
		want    string // canonical label; "" means error expected
		wantErr bool
	}{
		{in: "0", want: "0"},
		{in: "none", want: "0"},
		{in: "3", want: "3"},
		{in: "2+adaptive+backoff", want: "2+adaptive+backoff"},
		{in: "2+backoff+adaptive", want: "2+adaptive+backoff"}, // canonicalized
		{in: "5+adaptive", want: "5+adaptive"},
		{in: "-1", wantErr: true},
		{in: "2+turbo", wantErr: true},
		{in: "x", wantErr: true},
	} {
		p, err := ParseRetryPolicy(tc.in)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseRetryPolicy(%q) err = %v, wantErr %v", tc.in, err, tc.wantErr)
			continue
		}
		if err == nil && p.Label() != tc.want {
			t.Errorf("ParseRetryPolicy(%q).Label() = %q, want %q", tc.in, p.Label(), tc.want)
		}
	}
}

func TestParseLoss(t *testing.T) {
	for _, in := range []string{"", "none"} {
		l, err := ParseLoss(in)
		if err != nil || !l.Pristine() || l.Label != "none" {
			t.Errorf("ParseLoss(%q) = %+v, %v; want pristine none", in, l, err)
		}
	}
	l, err := ParseLoss("loss:0.2")
	if err != nil || l.Pristine() {
		t.Fatalf("ParseLoss(loss:0.2) = %+v, %v", l, err)
	}
	if _, err := ParseLoss("bogus:1"); err == nil {
		t.Error("ParseLoss(bogus:1) should fail")
	}
}

func TestCellsValidation(t *testing.T) {
	mustLoss := func(s string) LossVal {
		l, err := ParseLoss(s)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	for _, tc := range []struct {
		name    string
		spec    Spec
		wantErr string
	}{
		{
			name:    "empty years axis",
			spec:    Spec{Years: []YearVal{}},
			wantErr: "no values",
		},
		{
			name:    "empty workers axis",
			spec:    Spec{Workers: []int{}},
			wantErr: "no values",
		},
		{
			name: "duplicate cell",
			spec: Spec{Loss: []LossVal{{Label: "none"}, {Label: "none"}}},
			// two pristine loss values expand to the same grid point
			wantErr: "duplicate cell",
		},
		{
			name:    "negative workers",
			spec:    Spec{Workers: []int{1, -2}},
			wantErr: "negative",
		},
		{
			name:    "sim shift too small",
			spec:    Spec{Shift: 4},
			wantErr: "shift",
		},
		{
			name:    "unknown mode",
			spec:    Spec{Mode: "quantum"},
			wantErr: "unknown mode",
		},
		{
			name:    "synth rejects impairments",
			spec:    Spec{Mode: "synth", Loss: []LossVal{mustLoss("loss:0.2")}},
			wantErr: "needs sim mode",
		},
		{
			name:    "synth rejects retries",
			spec:    Spec{Mode: "synth", Retry: []RetryPolicy{{Retries: 2}}},
			wantErr: "needs sim mode",
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.spec.Cells()
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("Cells() err = %v, want containing %q", err, tc.wantErr)
			}
		})
	}
}

func TestCellsExpansionOrder(t *testing.T) {
	spec := Spec{
		Years: []YearVal{
			{Label: "2018", Pure: true, Year: paperdata.Y2018},
			{Label: "2013", Pure: true, Year: paperdata.Y2013},
		},
		Loss:    []LossVal{{Label: "none"}},
		Retry:   []RetryPolicy{{}, {Retries: 2}},
		Workers: []int{1, 4},
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"year=2018 loss=none retry=0 workers=1",
		"year=2018 loss=none retry=0 workers=4",
		"year=2018 loss=none retry=2 workers=1",
		"year=2018 loss=none retry=2 workers=4",
		"year=2013 loss=none retry=0 workers=1",
		"year=2013 loss=none retry=0 workers=4",
		"year=2013 loss=none retry=2 workers=1",
		"year=2013 loss=none retry=2 workers=4",
	}
	if len(cells) != len(want) {
		t.Fatalf("got %d cells, want %d", len(cells), len(want))
	}
	for i, c := range cells {
		if c.Index != i {
			t.Errorf("cell %d has Index %d", i, c.Index)
		}
		if c.Key() != want[i] {
			t.Errorf("cell %d = %q, want %q", i, c.Key(), want[i])
		}
	}
	// Slugs must be distinct and filesystem-safe.
	seen := map[string]bool{}
	for _, c := range cells {
		s := c.Slug()
		if seen[s] {
			t.Errorf("duplicate slug %q", s)
		}
		seen[s] = true
		if strings.ContainsAny(s, "/:;, ") {
			t.Errorf("slug %q not filesystem-safe", s)
		}
	}
}

func TestSpecDefaults(t *testing.T) {
	spec := Spec{}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("default grid has %d cells, want 1", len(cells))
	}
	if got := cells[0].Key(); got != "year=2018 loss=none retry=0 workers=1" {
		t.Errorf("default cell = %q", got)
	}
	if spec.Mode != "sim" || spec.Shift != 14 || spec.Seed != 1 || spec.MaxEvents != 1<<21 {
		t.Errorf("defaults not normalized: %+v", spec)
	}
}

func TestParseSpecFile(t *testing.T) {
	const good = `
# robustness grid
mode sim
shift 15
seed 7
years 2018 2013
loss none loss:0.2
retry 0 2+adaptive
workers 1
workers 4   # axis lines append
`
	spec, err := ParseSpecFile(strings.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Mode != "sim" || spec.Shift != 15 || spec.Seed != 7 {
		t.Errorf("scalars = %+v", spec)
	}
	cells, err := spec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*2*2 {
		t.Errorf("grid has %d cells, want 16", len(cells))
	}

	for _, tc := range []struct {
		name, in, wantErr string
	}{
		{"unknown directive", "speed 9", "unknown directive"},
		{"axis without values", "years", "no values"},
		{"scalar with two values", "shift 14 15", "exactly one value"},
		{"bad year", "years 1999", "1999"},
		{"bad loss", "loss bogus:1", "bogus"},
		{"bad retry", "retry 1+turbo", "turbo"},
		{"bad workers", "workers -3", "non-negative"},
		{"bad shift", "shift many", "shift"},
		{"bad seed", "seed 1.5", "seed"},
		{"bad max-events", "max-events -1", "max-events"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpecFile(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("ParseSpecFile(%q) err = %v, want containing %q", tc.in, err, tc.wantErr)
			}
			if err != nil && !strings.Contains(err.Error(), "line 1") {
				t.Errorf("error %v does not carry the line number", err)
			}
		})
	}
}
