package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"openresolver/internal/analysis"
)

// Matrix is the sweep's comparison surface: one row per cell in expansion
// order, each diffed against the loss-free baseline cell of its year. It
// deliberately carries no wall-clock or resume state — the matrix (text and
// JSON alike) must be byte-identical across pool sizes and across cold vs
// resumed runs.
type Matrix struct {
	Mode  string       `json:"mode"`
	Shift uint8        `json:"shift"`
	Seed  int64        `json:"seed"`
	Cells []MatrixCell `json:"cells"`
}

// MatrixCell is one rendered row plus the full delta list backing it.
type MatrixCell struct {
	Index   int    `json:"index"`
	Year    string `json:"year"`
	Loss    string `json:"loss"`
	Retry   string `json:"retry"`
	Workers int    `json:"workers"`
	// Baseline marks the loss-free reference cell of this row's year; rows
	// are diffed against it and it is its own (empty) diff.
	Baseline bool `json:"baseline"`
	// Digest is the cell's FaultDigest — comparable bit-for-bit with a
	// standalone campaign of the same configuration.
	Digest string `json:"digest"`

	Q1 uint64 `json:"q1"`
	R2 uint64 `json:"r2"`
	// RecoveryPct is the response-recovery rate: answered probes over sent
	// probes (simulation), or R2 over Q1 (synthesis, which has no prober
	// loop to lose anything).
	RecoveryPct float64 `json:"recovery_pct"`

	Retransmits uint64 `json:"retransmits"`
	GaveUp      uint64 `json:"gave_up"`
	FaultDrops  uint64 `json:"fault_drops"`
	Duplicated  uint64 `json:"duplicated"`
	Corrupted   uint64 `json:"corrupted"`
	Reordered   uint64 `json:"reordered"`
	// VirtualNanos is the discrete-event clock at quiesce (0 for synth).
	VirtualNanos uint64 `json:"virtual_nanos"`

	// Deltas lists every report metric on which this cell differs from its
	// baseline; DeltasVsBase is its length, printed in the text matrix.
	Deltas       []analysis.ReportDelta `json:"deltas_vs_base,omitempty"`
	DeltasVsBase int                    `json:"delta_count"`
}

// BuildMatrix assembles the comparison matrix from a completed run. The
// baseline of each year is that year's first pristine-loss cell in
// expansion order; a year with no pristine cell has no baseline and its
// rows carry a single "no baseline" marker delta against nil.
func BuildMatrix(spec *Spec, results []Result) *Matrix {
	m := &Matrix{Mode: spec.Mode, Shift: spec.Shift, Seed: spec.Seed}
	base := make(map[string]*Result)
	for i := range results {
		r := &results[i]
		if r.Cell.Loss.Pristine() && base[r.Cell.Year.Label] == nil {
			base[r.Cell.Year.Label] = r
		}
	}
	for i := range results {
		r := &results[i]
		b := base[r.Cell.Year.Label]
		mc := MatrixCell{
			Index:   r.Cell.Index,
			Year:    r.Cell.Year.Label,
			Loss:    r.Cell.Loss.Label,
			Retry:   r.Cell.Retry.Label(),
			Workers: r.Cell.Workers,
			Digest:  r.Digest,

			Q1:          r.Report.Campaign.Q1,
			R2:          r.Report.Campaign.R2,
			RecoveryPct: recovery(spec, r),

			Retransmits:  r.ProbeStats.Retransmits,
			GaveUp:       r.ProbeStats.GaveUp,
			FaultDrops:   r.FaultStats.Dropped,
			Duplicated:   r.FaultStats.Duplicated,
			Corrupted:    r.FaultStats.Corrupted,
			Reordered:    r.FaultStats.Reordered,
			VirtualNanos: r.VirtualNanos,
		}
		if b == r {
			mc.Baseline = true
		} else {
			var baseRep *analysis.Report
			if b != nil {
				baseRep = b.Report
			}
			mc.Deltas = analysis.DiffReports(baseRep, r.Report)
		}
		mc.DeltasVsBase = len(mc.Deltas)
		m.Cells = append(m.Cells, mc)
	}
	return m
}

// recovery computes the response-recovery percentage for one cell.
func recovery(spec *Spec, r *Result) float64 {
	var num, den uint64
	if spec.Mode == "sim" {
		num, den = r.ProbeStats.Answered, r.ProbeStats.Sent
	} else {
		num, den = r.Report.Campaign.R2, r.Report.Campaign.Q1
	}
	if den == 0 {
		return 0
	}
	return 100 * float64(num) / float64(den)
}

// RenderText writes the matrix as an aligned table: the shared scalars, one
// row per cell with its digest prefix, and a star on each baseline row.
func (m *Matrix) RenderText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "sweep matrix: mode=%s shift=%d seed=%d cells=%d\n\n",
		m.Mode, m.Shift, m.Seed, len(m.Cells)); err != nil {
		return err
	}
	rows := make([][]string, 0, len(m.Cells)+1)
	rows = append(rows, []string{
		"idx", "year", "loss", "retry", "wrk", "base",
		"q1", "r2", "recov%", "retrans", "gaveup", "drops", "dup", "corrupt", "reord", "Δbase", "digest",
	})
	for _, c := range m.Cells {
		star := ""
		if c.Baseline {
			star = "*"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", c.Index), c.Year, c.Loss, c.Retry,
			fmt.Sprintf("%d", c.Workers), star,
			fmt.Sprintf("%d", c.Q1), fmt.Sprintf("%d", c.R2),
			fmt.Sprintf("%.2f", c.RecoveryPct),
			fmt.Sprintf("%d", c.Retransmits), fmt.Sprintf("%d", c.GaveUp),
			fmt.Sprintf("%d", c.FaultDrops), fmt.Sprintf("%d", c.Duplicated),
			fmt.Sprintf("%d", c.Corrupted), fmt.Sprintf("%d", c.Reordered),
			fmt.Sprintf("%d", c.DeltasVsBase), c.Digest[:12],
		})
	}
	widths := make([]int, len(rows[0]))
	for _, row := range rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range rows {
		var b strings.Builder
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		if _, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " ")); err != nil {
			return err
		}
	}
	return nil
}

// RenderDeltas writes the full per-cell delta tables (the expansion of the
// matrix's Δbase column) for every non-baseline cell.
func (m *Matrix) RenderDeltas(w io.Writer) error {
	for _, c := range m.Cells {
		if c.Baseline {
			continue
		}
		if _, err := fmt.Fprintf(w, "\ncell %d (year=%s loss=%s retry=%s workers=%d) vs baseline:\n%s",
			c.Index, c.Year, c.Loss, c.Retry, c.Workers,
			analysis.RenderReportDeltas(c.Deltas)); err != nil {
			return err
		}
	}
	return nil
}

// JSON renders the matrix as indented, trailing-newline JSON. Two runs of
// the same grid produce identical bytes.
func (m *Matrix) JSON() ([]byte, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}
