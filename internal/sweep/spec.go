// Package sweep expands a declarative campaign grid — calibration year ×
// network impairment × retry policy × worker count — into a deterministic
// list of cells, executes them over a bounded worker pool reusing the
// campaign engines of internal/core, and renders a comparison matrix
// against the loss-free baseline cell of each year. Cells are bit-identical
// to the same campaign run standalone (pinned against internal/core's
// golden digests), cell scheduling never affects output ordering, and
// completed cells persist as JSON artifacts so an interrupted sweep can
// resume without re-running them (DESIGN.md §10).
package sweep

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"

	"openresolver/internal/drift"
	"openresolver/internal/netsim"
	"openresolver/internal/paperdata"
)

// YearVal is one value of the calibration-year axis. Pure years select the
// paper's calibrated 2013 or 2018 population; fractional labels such as
// "2015.5" interpolate between them through drift.Interpolator.
type YearVal struct {
	Label  string
	Pure   bool
	Year   paperdata.Year // pure years only
	Weight float64        // 2018 share, interpolated years only
}

// ParseYear parses a year axis value: "2013", "2018", or a fractional
// calendar position in (2013, 2018) such as "2015.5".
func ParseYear(s string) (YearVal, error) {
	switch s {
	case "2013":
		return YearVal{Label: s, Pure: true, Year: paperdata.Y2013}, nil
	case "2018":
		return YearVal{Label: s, Pure: true, Year: paperdata.Y2018}, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return YearVal{}, fmt.Errorf("sweep: year %q is neither 2013, 2018 nor a fractional position", s)
	}
	if f <= 2013 || f >= 2018 {
		return YearVal{}, fmt.Errorf("sweep: interpolated year %q outside (2013, 2018)", s)
	}
	w := (f - 2013) / 5
	return YearVal{Label: drift.Label(w), Weight: w}, nil
}

// LossVal is one value of the impairment axis: "none" (the loss-free
// baseline candidate) or a netsim.ParseImpairments spec.
type LossVal struct {
	Label string
	Imps  []netsim.Impairment
}

// Pristine reports whether the value leaves the network untouched.
func (l LossVal) Pristine() bool { return len(l.Imps) == 0 }

// ParseLoss parses a loss axis value through the same impairment grammar
// the campaign CLIs expose; "none" and "" mean the pristine network.
func ParseLoss(s string) (LossVal, error) {
	if s == "" || s == "none" {
		return LossVal{Label: "none"}, nil
	}
	imps, err := netsim.ParseImpairments(s)
	if err != nil {
		return LossVal{}, fmt.Errorf("sweep: loss %q: %w", s, err)
	}
	if len(imps) == 0 {
		return LossVal{Label: "none"}, nil
	}
	return LossVal{Label: s, Imps: imps}, nil
}

// RetryPolicy is one value of the retry axis: the prober's retransmission
// budget plus the adaptive-RTO and upstream-backoff switches.
type RetryPolicy struct {
	Retries  int
	Adaptive bool
	Backoff  bool
}

// Label renders the policy in its canonical spec form.
func (p RetryPolicy) Label() string {
	s := strconv.Itoa(p.Retries)
	if p.Adaptive {
		s += "+adaptive"
	}
	if p.Backoff {
		s += "+backoff"
	}
	return s
}

// zero reports whether the policy is the paper's single-shot prober.
func (p RetryPolicy) zero() bool { return p == RetryPolicy{} }

// ParseRetryPolicy parses a retry axis value: a retransmission budget
// optionally extended with "+adaptive" (Jacobson/Karn RTO) and "+backoff"
// (resolver upstream backoff) in any order, e.g. "0", "5+adaptive",
// "2+adaptive+backoff". "none" is an alias for "0".
func ParseRetryPolicy(s string) (RetryPolicy, error) {
	parts := strings.Split(s, "+")
	head := strings.TrimSpace(parts[0])
	var p RetryPolicy
	if head == "none" {
		head = "0"
	}
	n, err := strconv.Atoi(head)
	if err != nil || n < 0 {
		return p, fmt.Errorf("sweep: retry %q: want <budget>[+adaptive][+backoff]", s)
	}
	p.Retries = n
	for _, opt := range parts[1:] {
		switch strings.TrimSpace(opt) {
		case "adaptive":
			p.Adaptive = true
		case "backoff":
			p.Backoff = true
		default:
			return RetryPolicy{}, fmt.Errorf("sweep: retry %q: unknown option %q", s, opt)
		}
	}
	return p, nil
}

// Spec is the declarative sweep grid: four axes plus the scalars every
// cell shares. Nil axes take defaults when the grid is expanded (2018 /
// none / single-shot / one worker); explicitly empty axes are an error.
type Spec struct {
	Years   []YearVal
	Loss    []LossVal
	Retry   []RetryPolicy
	Workers []int

	// Mode selects the campaign engine: "sim" (default; impairments and
	// retry policies apply) or "synth" (the streaming engine, where the
	// workers axis scales and the network axes must stay pristine).
	Mode string
	// Shift scales every cell to 1/2^Shift (default 14; sim needs ≥ 6).
	Shift uint8
	// Seed drives every cell's randomness (default 1).
	Seed int64
	// PPS overrides the probe rate (0 = paper value).
	PPS uint64
	// MaxEvents bounds each sim cell's event queue (default 2^21; forced
	// to 0 in synth mode, whose engine rejects any fault plan).
	MaxEvents int
}

// Cell is one expanded grid point. Index is the cell's position in the
// deterministic expansion order (years outermost, workers innermost) and
// fixes its place in the matrix regardless of execution scheduling.
type Cell struct {
	Index   int
	Year    YearVal
	Loss    LossVal
	Retry   RetryPolicy
	Workers int
}

// Key is the cell's canonical identity within its spec's shared scalars.
func (c Cell) Key() string {
	return fmt.Sprintf("year=%s loss=%s retry=%s workers=%d",
		c.Year.Label, c.Loss.Label, c.Retry.Label(), c.Workers)
}

// Slug is a filesystem-safe name for the cell's artifact, combining a
// readable prefix with a short hash of the full key (impairment specs
// collapse to underscores, so the hash keeps distinct cells distinct).
func (c Cell) Slug() string {
	clean := func(s string) string {
		return strings.Map(func(r rune) rune {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
				return r
			default:
				return '_'
			}
		}, s)
	}
	sum := sha256.Sum256([]byte(c.Key()))
	return fmt.Sprintf("%s-%s-%s-w%d-%s",
		clean(c.Year.Label), clean(c.Loss.Label), clean(c.Retry.Label()),
		c.Workers, hex.EncodeToString(sum[:4]))
}

// normalize fills defaulted fields in place.
func (s *Spec) normalize() {
	if s.Mode == "" {
		s.Mode = "sim"
	}
	if s.Shift == 0 {
		s.Shift = 14
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Years == nil {
		s.Years = []YearVal{{Label: "2018", Pure: true, Year: paperdata.Y2018}}
	}
	if s.Loss == nil {
		s.Loss = []LossVal{{Label: "none"}}
	}
	if s.Retry == nil {
		s.Retry = []RetryPolicy{{}}
	}
	if s.Workers == nil {
		s.Workers = []int{1}
	}
	if s.MaxEvents == 0 && s.Mode == "sim" {
		s.MaxEvents = 1 << 21
	}
	if s.Mode == "synth" {
		s.MaxEvents = 0
	}
}

// Cells validates the spec and expands the grid in deterministic order:
// years outermost, then loss, then retry, then workers. Duplicate grid
// points and empty axes are errors, as are network axes in synth mode.
func (s *Spec) Cells() ([]Cell, error) {
	s.normalize()
	switch s.Mode {
	case "sim":
		if s.Shift < 6 {
			return nil, fmt.Errorf("sweep: sim mode needs shift ≥ 6 (got %d)", s.Shift)
		}
	case "synth":
		for _, l := range s.Loss {
			if !l.Pristine() {
				return nil, fmt.Errorf("sweep: loss %q needs sim mode (the synthetic engine has no network to impair)", l.Label)
			}
		}
		for _, p := range s.Retry {
			if !p.zero() {
				return nil, fmt.Errorf("sweep: retry policy %q needs sim mode", p.Label())
			}
		}
	default:
		return nil, fmt.Errorf("sweep: unknown mode %q (want sim or synth)", s.Mode)
	}
	for name, n := range map[string]int{
		"years": len(s.Years), "loss": len(s.Loss),
		"retry": len(s.Retry), "workers": len(s.Workers),
	} {
		if n == 0 {
			return nil, fmt.Errorf("sweep: axis %q has no values (empty grid)", name)
		}
	}
	for _, w := range s.Workers {
		if w < 0 {
			return nil, fmt.Errorf("sweep: workers %d is negative", w)
		}
	}

	var cells []Cell
	seen := make(map[string]bool)
	for _, y := range s.Years {
		for _, l := range s.Loss {
			for _, p := range s.Retry {
				for _, w := range s.Workers {
					c := Cell{Index: len(cells), Year: y, Loss: l, Retry: p, Workers: w}
					if key := c.Key(); seen[key] {
						return nil, fmt.Errorf("sweep: duplicate cell %s", key)
					} else {
						seen[key] = true
					}
					cells = append(cells, c)
				}
			}
		}
	}
	return cells, nil
}

// ParseSpecFile reads the small text grid format: one directive per line,
// values space-separated, '#' comments. Axis directives (years, loss,
// retry, workers) append across repeated lines; scalar directives (mode,
// shift, seed, pps, max-events) take the last value. Example:
//
//	# 2×2 robustness grid
//	mode sim
//	shift 14
//	years 2018 2013
//	loss none ge:0.05,0.2,0.125,1.0
//	retry 0 5+adaptive+backoff
//	workers 1
func ParseSpecFile(r io.Reader) (*Spec, error) {
	s := &Spec{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		fields := strings.Fields(text)
		if len(fields) == 0 {
			continue
		}
		dir, vals := fields[0], fields[1:]
		fail := func(err error) (*Spec, error) {
			return nil, fmt.Errorf("sweep: spec line %d: %w", line, err)
		}
		isAxis := dir == "years" || dir == "loss" || dir == "retry" || dir == "workers"
		if isAxis && len(vals) == 0 {
			return fail(fmt.Errorf("axis %q has no values", dir))
		}
		if !isAxis && len(vals) != 1 {
			return fail(fmt.Errorf("directive %q wants exactly one value", dir))
		}
		switch dir {
		case "years":
			for _, v := range vals {
				y, err := ParseYear(v)
				if err != nil {
					return fail(err)
				}
				s.Years = append(s.Years, y)
			}
		case "loss":
			for _, v := range vals {
				l, err := ParseLoss(v)
				if err != nil {
					return fail(err)
				}
				s.Loss = append(s.Loss, l)
			}
		case "retry":
			for _, v := range vals {
				p, err := ParseRetryPolicy(v)
				if err != nil {
					return fail(err)
				}
				s.Retry = append(s.Retry, p)
			}
		case "workers":
			for _, v := range vals {
				w, err := strconv.Atoi(v)
				if err != nil || w < 0 {
					return fail(fmt.Errorf("workers %q: want a non-negative integer", v))
				}
				s.Workers = append(s.Workers, w)
			}
		case "mode":
			s.Mode = vals[0]
		case "shift":
			n, err := strconv.ParseUint(vals[0], 10, 8)
			if err != nil {
				return fail(fmt.Errorf("shift %q: %w", vals[0], err))
			}
			s.Shift = uint8(n)
		case "seed":
			n, err := strconv.ParseInt(vals[0], 10, 64)
			if err != nil {
				return fail(fmt.Errorf("seed %q: %w", vals[0], err))
			}
			s.Seed = n
		case "pps":
			n, err := strconv.ParseUint(vals[0], 10, 64)
			if err != nil {
				return fail(fmt.Errorf("pps %q: %w", vals[0], err))
			}
			s.PPS = n
		case "max-events":
			n, err := strconv.Atoi(vals[0])
			if err != nil || n < 0 {
				return fail(fmt.Errorf("max-events %q: want a non-negative integer", vals[0]))
			}
			s.MaxEvents = n
		default:
			return fail(fmt.Errorf("unknown directive %q", dir))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("sweep: read spec: %w", err)
	}
	return s, nil
}
