package sweep

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"openresolver/internal/core"
	"openresolver/internal/obs"
)

// faultGolden mirrors internal/core's pinned adverse-network digest
// (golden_test.go). TestSweepGoldenCell runs the identical campaign as a
// sweep cell and must reproduce it bit-for-bit — if a change legitimately
// re-derives the core constant, update this copy in the same commit.
const faultGolden = "e0ded77dface81a22b5a7685afab9b7014aadb9cd6c243c24295dc23fc13f9df"

// goldenSpec is the sweep-cell restatement of core's TestFaultGolden
// configuration: 2018 population, shift 14, seed 1, the stacked
// Gilbert–Elliott/dup/reorder/corrupt impairment line, and the full
// retransmission machinery.
func goldenSpec(t *testing.T) *Spec {
	t.Helper()
	loss, err := ParseLoss("ge:0.02,0.3,0.05,0.9;dup:0.05;reorder:0.1,30ms;corrupt:0.02")
	if err != nil {
		t.Fatal(err)
	}
	retry, err := ParseRetryPolicy("2+adaptive+backoff")
	if err != nil {
		t.Fatal(err)
	}
	year, err := ParseYear("2018")
	if err != nil {
		t.Fatal(err)
	}
	return &Spec{
		Years: []YearVal{year},
		Loss:  []LossVal{loss},
		Retry: []RetryPolicy{retry},
		Shift: 14,
		Seed:  1,
	}
}

// TestSweepGoldenCell is the bit-identity contract of the sweep runner: a
// cell must reproduce the standalone campaign exactly, so the digest a
// sweep reports is directly comparable with core's golden tests.
func TestSweepGoldenCell(t *testing.T) {
	results, err := Run(RunConfig{Spec: goldenSpec(t), PoolWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("got %d results, want 1", len(results))
	}
	if got := results[0].Digest; got != faultGolden {
		t.Errorf("sweep cell diverged from the standalone campaign\n got %s\nwant %s", got, faultGolden)
	}
	if results[0].ProbeStats.Retransmits == 0 {
		t.Error("golden cell reports no retransmissions; the fault plan was not applied")
	}
}

// smallSpec is a fast 2×2 grid (shift 16) used by the scheduling and
// resume tests: pristine vs lossy network, single-shot vs retrying prober.
func smallSpec(t *testing.T) *Spec {
	t.Helper()
	lossy, err := ParseLoss("loss:0.3")
	if err != nil {
		t.Fatal(err)
	}
	return &Spec{
		Loss:  []LossVal{{Label: "none"}, lossy},
		Retry: []RetryPolicy{{}, {Retries: 2, Adaptive: true}},
		Shift: 16,
		Seed:  1,
	}
}

func matrixBytes(t *testing.T, spec *Spec, results []Result) (text, js []byte) {
	t.Helper()
	m := BuildMatrix(spec, results)
	var buf bytes.Buffer
	if err := m.RenderText(&buf); err != nil {
		t.Fatal(err)
	}
	data, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), data
}

// TestSweepWorkersInvariance pins the scheduling contract: the matrix (text
// and JSON) is byte-identical whether cells run one at a time or all at
// once on the pool.
func TestSweepWorkersInvariance(t *testing.T) {
	spec1 := smallSpec(t)
	r1, err := Run(RunConfig{Spec: spec1, PoolWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	spec8 := smallSpec(t)
	r8, err := Run(RunConfig{Spec: spec8, PoolWorkers: 8, Obs: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	t1, j1 := matrixBytes(t, spec1, r1)
	t8, j8 := matrixBytes(t, spec8, r8)
	if !bytes.Equal(t1, t8) {
		t.Errorf("text matrix differs across pool sizes:\n--- workers=1\n%s--- workers=8\n%s", t1, t8)
	}
	if !bytes.Equal(j1, j8) {
		t.Error("JSON matrix differs across pool sizes")
	}
}

// TestSweepMatrixBaseline checks the comparison semantics: the pristine
// cell of each year is the baseline (zero deltas), and a lossy cell
// differs from it.
func TestSweepMatrixBaseline(t *testing.T) {
	spec := smallSpec(t)
	results, err := Run(RunConfig{Spec: spec, PoolWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := BuildMatrix(spec, results)
	if len(m.Cells) != 4 {
		t.Fatalf("matrix has %d cells, want 4", len(m.Cells))
	}
	if !m.Cells[0].Baseline || m.Cells[0].DeltasVsBase != 0 {
		t.Errorf("cell 0 should be the zero-delta baseline: %+v", m.Cells[0])
	}
	for _, c := range m.Cells[1:] {
		if c.Baseline {
			t.Errorf("cell %d should not be baseline", c.Index)
		}
	}
	lossy := m.Cells[2] // loss=loss:0.3 retry=0
	if lossy.Loss != "loss:0.3" {
		t.Fatalf("cell 2 is %q, want the lossy cell", lossy.Loss)
	}
	if lossy.DeltasVsBase == 0 {
		t.Error("lossy cell reports zero deltas vs the pristine baseline")
	}
	if lossy.FaultDrops == 0 {
		t.Error("lossy cell reports zero fault drops")
	}
	var buf bytes.Buffer
	if err := m.RenderDeltas(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "vs baseline:") {
		t.Errorf("RenderDeltas output missing per-cell sections:\n%s", buf.String())
	}
}

// TestSweepResume checks the -resume contract end to end: a cold run
// persists one artifact per cell; deleting some and resuming re-runs only
// the missing cells; and the resumed matrix is byte-identical to the cold
// one.
func TestSweepResume(t *testing.T) {
	dir := t.TempDir()
	coldSpec := smallSpec(t)
	cold, err := Run(RunConfig{Spec: coldSpec, PoolWorkers: 2, ArtifactDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	coldText, coldJSON := matrixBytes(t, coldSpec, cold)

	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 4 {
		t.Fatalf("cold run left %d artifacts, want 4", len(ents))
	}

	// Delete one artifact and corrupt another: both cells must re-run.
	cells, err := coldSpec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(artifactPath(dir, cells[1])); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(artifactPath(dir, cells[2]), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	resumeSpec := smallSpec(t)
	resumed, err := Run(RunConfig{
		Spec: resumeSpec, PoolWorkers: 2, ArtifactDir: dir, Resume: true, Log: &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []bool{true, false, false, true} {
		if resumed[i].Resumed != want {
			t.Errorf("cell %d Resumed = %v, want %v", i, resumed[i].Resumed, want)
		}
	}
	if n := strings.Count(log.String(), "resumed from artifact"); n != 2 {
		t.Errorf("log reports %d resumed cells, want 2:\n%s", n, log.String())
	}

	resText, resJSON := matrixBytes(t, resumeSpec, resumed)
	if !bytes.Equal(coldText, resText) {
		t.Errorf("resumed text matrix differs from cold run:\n--- cold\n%s--- resumed\n%s", coldText, resText)
	}
	if !bytes.Equal(coldJSON, resJSON) {
		t.Error("resumed JSON matrix differs from cold run")
	}

	// The re-run cells rewrote their artifacts; a second resume runs nothing.
	all, err := Run(RunConfig{Spec: smallSpec(t), PoolWorkers: 2, ArtifactDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range all {
		if !all[i].Resumed {
			t.Errorf("cell %d re-ran on a fully-populated artifact dir", i)
		}
	}

	// Artifacts encode the spec scalars: a different seed invalidates all.
	other := smallSpec(t)
	other.Seed = 9
	fresh, err := Run(RunConfig{Spec: other, PoolWorkers: 2, ArtifactDir: t.TempDir(), Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	reloaded, err := Run(RunConfig{Spec: func() *Spec { s := smallSpec(t); s.Seed = 9; return s }(),
		PoolWorkers: 2, ArtifactDir: dir, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range reloaded {
		if reloaded[i].Resumed {
			t.Errorf("cell %d resumed from an artifact written under a different seed", i)
		}
		if reloaded[i].Digest != fresh[i].Digest {
			t.Errorf("cell %d digest differs between artifact-dir and fresh seed-9 runs", i)
		}
	}
}

// TestSweepTruncatedArtifactWarns is the damaged-artifact regression test:
// a hand-truncated cell artifact (the classic crash-mid-write debris) must be
// treated as "rerun this cell" — with a logged warning naming the cell —
// and the resumed matrix must still be byte-identical to the cold run.
func TestSweepTruncatedArtifactWarns(t *testing.T) {
	dir := t.TempDir()
	coldSpec := smallSpec(t)
	cold, err := Run(RunConfig{Spec: coldSpec, PoolWorkers: 2, ArtifactDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	coldText, coldJSON := matrixBytes(t, coldSpec, cold)

	cells, err := coldSpec.Cells()
	if err != nil {
		t.Fatal(err)
	}
	path := artifactPath(dir, cells[1])
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	resumeSpec := smallSpec(t)
	resumed, err := Run(RunConfig{
		Spec: resumeSpec, PoolWorkers: 2, ArtifactDir: dir, Resume: true, Log: &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed[1].Resumed {
		t.Error("cell 1 resumed from a truncated artifact")
	}
	if !strings.Contains(log.String(), "artifact unusable") ||
		!strings.Contains(log.String(), "rerunning cell") {
		t.Errorf("truncated artifact produced no warning:\n%s", log.String())
	}
	resText, resJSON := matrixBytes(t, resumeSpec, resumed)
	if !bytes.Equal(coldText, resText) || !bytes.Equal(coldJSON, resJSON) {
		t.Error("matrix after truncated-artifact rerun differs from cold run")
	}
}

// TestSweepInterruptAndResume drives the graceful-shutdown path end to
// end: a context cancelled mid-sweep stops dispatching, the in-flight cell
// drains at a shard boundary leaving sub-cell checkpoints, Run hands back
// partial results with core.ErrInterrupted, completed cells already have
// artifacts on disk, and a -resume run restores the interrupted cell's
// checkpointed shards and reproduces the cold matrix byte-for-byte.
func TestSweepInterruptAndResume(t *testing.T) {
	coldSpec := smallSpec(t)
	cold, err := Run(RunConfig{Spec: coldSpec, PoolWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	coldText, coldJSON := matrixBytes(t, coldSpec, cold)

	// Cancel as soon as the first shard checkpoint of the first cell lands:
	// mid-cell, between shard boundaries.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stopPoll := make(chan struct{})
	go func() {
		defer cancel()
		for {
			select {
			case <-stopPoll:
				return
			case <-time.After(200 * time.Microsecond):
			}
			if m, _ := filepath.Glob(filepath.Join(dir, "ckpt-*", "shard-*.ckpt")); len(m) > 0 {
				return
			}
		}
	}()
	intSpec := smallSpec(t)
	var log bytes.Buffer
	partial, err := Run(RunConfig{
		Spec: intSpec, PoolWorkers: 1, ArtifactDir: dir, Ctx: ctx, Log: &log,
	})
	close(stopPoll)
	if err == nil {
		// The whole sweep outran the poller — possible on a very fast
		// host; the graceful path then had nothing to interrupt.
		t.Skip("sweep completed before cancellation landed")
	}
	if !errors.Is(err, core.ErrInterrupted) {
		t.Fatalf("interrupted sweep returned %v, want core.ErrInterrupted", err)
	}
	if len(partial) != len(cold) {
		t.Fatalf("partial results have %d slots, want %d", len(partial), len(cold))
	}
	for i := range partial {
		if partial[i].Report != nil {
			if _, statErr := os.Stat(artifactPath(dir, partial[i].Cell)); statErr != nil {
				t.Errorf("completed cell %d has no artifact on disk: %v", i, statErr)
			}
		}
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "ckpt-*", "shard-*.ckpt")); len(m) == 0 {
		t.Error("interrupted cell left no sub-cell checkpoints behind")
	}

	var resumeLog bytes.Buffer
	resumeSpec := smallSpec(t)
	resumed, err := Run(RunConfig{
		Spec: resumeSpec, PoolWorkers: 2, ArtifactDir: dir, Resume: true, Log: &resumeLog,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resumeLog.String(), "restored from checkpoint") {
		t.Errorf("resume did not restore the interrupted cell's shards:\n%s", resumeLog.String())
	}
	resText, resJSON := matrixBytes(t, resumeSpec, resumed)
	if !bytes.Equal(coldText, resText) || !bytes.Equal(coldJSON, resJSON) {
		t.Error("matrix after interrupt+resume differs from cold run")
	}
	if m, _ := filepath.Glob(filepath.Join(dir, "ckpt-*")); len(m) != 0 {
		t.Errorf("completed sweep left checkpoint directories behind: %v", m)
	}
}

// TestSweepWatchdogFlagsSlowCell pins the watchdog contract: a cell
// running longer than the threshold is flagged on the log — and only
// flagged, never killed (the sweep still completes with correct output).
func TestSweepWatchdogFlagsSlowCell(t *testing.T) {
	var log bytes.Buffer
	spec := smallSpec(t)
	results, err := Run(RunConfig{
		Spec: spec, PoolWorkers: 1, Watchdog: time.Nanosecond, Log: &log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "stuck?") {
		t.Errorf("1ns watchdog never fired:\n%s", log.String())
	}
	for i := range results {
		if results[i].Report == nil {
			t.Errorf("cell %d was killed by the watchdog; it must only warn", i)
		}
	}
}
