// Package dist provides the deterministic integer-distribution primitives
// used by the population compiler: largest-remainder apportionment (for
// scaling the paper's counts down to a sampled universe while preserving
// totals) and the northwest-corner transportation rule (for constructing an
// integer joint distribution from the marginal tables the paper reports).
//
// Everything here is exact integer arithmetic — no floats — so population
// construction is bit-for-bit reproducible and sums are preserved by
// construction, not by rounding luck.
package dist

import (
	"errors"
	"fmt"
	"slices"
)

// Errors returned by the distribution primitives.
var (
	ErrMarginalMismatch = errors.New("dist: row and column sums differ")
	ErrZeroWeights      = errors.New("dist: all weights are zero with nonzero target")
)

// Sum returns the sum of counts.
func Sum(counts []uint64) uint64 {
	var s uint64
	for _, c := range counts {
		s += c
	}
	return s
}

// LargestRemainder apportions target into len(weights) integer parts
// proportional to weights, using the largest-remainder (Hamilton) method.
// The result always sums to target exactly. Ties in remainders are broken
// by lower index, making the apportionment deterministic.
func LargestRemainder(weights []uint64, target uint64) ([]uint64, error) {
	total := Sum(weights)
	if total == 0 {
		if target == 0 {
			return make([]uint64, len(weights)), nil
		}
		return nil, ErrZeroWeights
	}
	out := make([]uint64, len(weights))
	type rem struct {
		idx int
		r   uint64
	}
	rems := make([]rem, 0, len(weights))
	var allocated uint64
	for i, w := range weights {
		// floor(w*target/total) without overflow for the magnitudes used
		// here (counts ≤ 2^32, so w*target fits in uint64 up to 2^32*2^32
		// only if both are large; use 128-bit-safe split).
		q, r := mulDiv(w, target, total)
		out[i] = q
		allocated += q
		rems = append(rems, rem{i, r})
	}
	// Distribute the shortfall to the largest remainders.
	// The comparator is a strict total order (idx breaks every remainder
	// tie), so an unstable sort is fully determined; SortFunc avoids
	// sort.Slice's reflect-based swapper on this population-builder hot path.
	slices.SortFunc(rems, func(a, b rem) int {
		if a.r != b.r {
			if a.r > b.r {
				return -1
			}
			return 1
		}
		return a.idx - b.idx
	})
	short := target - allocated
	for i := uint64(0); i < short; i++ {
		out[rems[i%uint64(len(rems))].idx]++
	}
	return out, nil
}

// mulDiv returns (a*b/c, a*b mod c) using 128-bit intermediate arithmetic.
func mulDiv(a, b, c uint64) (quo, rem uint64) {
	// Decompose a*b = hi*2^64 + lo via 32-bit halves.
	aLo, aHi := a&0xFFFFFFFF, a>>32
	bLo, bHi := b&0xFFFFFFFF, b>>32
	// Partial products.
	ll := aLo * bLo
	lh := aLo * bHi
	hl := aHi * bLo
	hh := aHi * bHi
	mid := lh + (ll >> 32)
	carry := uint64(0)
	mid2 := mid + hl
	if mid2 < mid {
		carry = 1
	}
	lo := (mid2 << 32) | (ll & 0xFFFFFFFF)
	hi := hh + (mid2 >> 32) + (carry << 32)
	// Long division of hi:lo by c.
	if hi == 0 {
		return lo / c, lo % c
	}
	// Bit-by-bit division; magnitudes here make this rare and cheap enough.
	var q, r uint64
	for i := 127; i >= 0; i-- {
		r <<= 1
		var bit uint64
		if i >= 64 {
			bit = hi >> (i - 64) & 1
		} else {
			bit = lo >> i & 1
		}
		r |= bit
		if r >= c {
			r -= c
			if i < 64 {
				q |= 1 << i
			}
		}
	}
	return q, r
}

// ScaleDown divides each count by 2^shift in aggregate: the result is the
// largest-remainder apportionment of round(total/2^shift) over the counts.
// This is how a paper-scale cohort list becomes a sampled-universe cohort
// list with proportions preserved.
func ScaleDown(counts []uint64, shift uint8) ([]uint64, error) {
	total := Sum(counts)
	half := uint64(1) << shift >> 1
	target := (total + half) >> shift
	return LargestRemainder(counts, target)
}

// Transport returns an integer matrix with the given row and column sums,
// computed by the northwest-corner rule. It errors if the sums differ.
// The NW rule is deterministic and yields the unique staircase solution,
// which we use to join the paper's marginal tables (e.g. Table IV's RA
// marginal with Table V's AA marginal) into one joint distribution.
func Transport(rows, cols []uint64) ([][]uint64, error) {
	if Sum(rows) != Sum(cols) {
		return nil, fmt.Errorf("%w: rows=%d cols=%d", ErrMarginalMismatch, Sum(rows), Sum(cols))
	}
	m := make([][]uint64, len(rows))
	for i := range m {
		m[i] = make([]uint64, len(cols))
	}
	rowLeft := append([]uint64(nil), rows...)
	colLeft := append([]uint64(nil), cols...)
	i, j := 0, 0
	for i < len(rows) && j < len(cols) {
		x := min(rowLeft[i], colLeft[j])
		m[i][j] = x
		rowLeft[i] -= x
		colLeft[j] -= x
		// Advance past exhausted row/column; when both hit zero advance the
		// row first (the classic NW convention).
		if rowLeft[i] == 0 {
			i++
		} else {
			j++
		}
		// Skip any zero columns so the loop terminates on degenerate input.
		for j < len(cols) && colLeft[j] == 0 && i < len(rows) && rowLeft[i] != 0 {
			j++
		}
	}
	return m, nil
}

// SpreadUnique produces multiplicities for unique values: it distributes
// total over n items such that every item gets at least 1 and the result
// sums to total exactly, with a mildly decreasing profile (the first items
// receive the remainder) matching the long-tail shape of incorrect-answer
// IPs in Table VII. It errors if total < n.
func SpreadUnique(total uint64, n int) ([]uint64, error) {
	if n == 0 {
		if total != 0 {
			return nil, fmt.Errorf("dist: %d packets over zero unique values", total)
		}
		return nil, nil
	}
	if total < uint64(n) {
		return nil, fmt.Errorf("dist: total %d < unique %d", total, n)
	}
	out := make([]uint64, n)
	base := total / uint64(n)
	rem := total - base*uint64(n)
	for i := range out {
		out[i] = base
		if uint64(i) < rem {
			out[i]++
		}
	}
	return out, nil
}

func min(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
