package dist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLargestRemainderExact(t *testing.T) {
	got, err := LargestRemainder([]uint64{1, 1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 1 {
			t.Errorf("got[%d] = %d", i, v)
		}
	}
}

func TestLargestRemainderProportions(t *testing.T) {
	weights := []uint64{600, 300, 100}
	got, err := LargestRemainder(weights, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{6, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got = %v, want %v", got, want)
			break
		}
	}
}

func TestLargestRemainderSumInvariant(t *testing.T) {
	f := func(ws []uint64, target uint16) bool {
		if len(ws) == 0 {
			return true
		}
		for i := range ws {
			ws[i] %= 1 << 40
		}
		if Sum(ws) == 0 {
			return true
		}
		got, err := LargestRemainder(ws, uint64(target))
		return err == nil && Sum(got) == uint64(target)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLargestRemainderPaperScaleNoOverflow(t *testing.T) {
	// Paper-magnitude weights (billions) scaled to small targets and back.
	ws := []uint64{3702258432, 16660123, 6506258, 26926}
	got, err := LargestRemainder(ws, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	if Sum(got) != 1<<22 {
		t.Fatalf("sum = %d", Sum(got))
	}
	// The dominant weight must keep its dominance.
	if got[0] < got[1] || got[1] < got[2] || got[2] < got[3] {
		t.Errorf("ordering lost: %v", got)
	}
}

func TestLargestRemainderUpscale(t *testing.T) {
	got, err := LargestRemainder([]uint64{1, 2}, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1000 || got[1] != 2000 {
		t.Errorf("got %v", got)
	}
}

func TestLargestRemainderZeroWeights(t *testing.T) {
	if _, err := LargestRemainder([]uint64{0, 0}, 5); err == nil {
		t.Error("zero weights with nonzero target accepted")
	}
	got, err := LargestRemainder([]uint64{0, 0}, 0)
	if err != nil || Sum(got) != 0 {
		t.Errorf("zero target: %v, %v", got, err)
	}
}

func TestLargestRemainderDeterministicTies(t *testing.T) {
	a, _ := LargestRemainder([]uint64{1, 1, 1, 1}, 2)
	b, _ := LargestRemainder([]uint64{1, 1, 1, 1}, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("tie-breaking nondeterministic")
		}
	}
	if a[0] != 1 || a[1] != 1 || a[2] != 0 || a[3] != 0 {
		t.Errorf("ties must favor low indexes: %v", a)
	}
}

func TestMulDiv(t *testing.T) {
	tests := []struct{ a, b, c, q, r uint64 }{
		{6, 7, 4, 10, 2},
		{1 << 40, 1 << 40, 1 << 40, 1 << 40, 0},
		{3702258432, 111093, 6505764, 63222, 3228024},
		{0, 5, 3, 0, 0},
	}
	for _, tt := range tests {
		q, r := mulDiv(tt.a, tt.b, tt.c)
		// Verify against the identity q*c + r == a*b (mod 2^64 safe here).
		if q*tt.c+r != tt.a*tt.b && tt.a < 1<<32 && tt.b < 1<<32 {
			t.Errorf("mulDiv(%d,%d,%d) = %d,%d fails identity", tt.a, tt.b, tt.c, q, r)
		}
		if r >= tt.c {
			t.Errorf("mulDiv(%d,%d,%d) remainder %d >= %d", tt.a, tt.b, tt.c, r, tt.c)
		}
	}
}

func TestPropertyMulDivIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		a := rng.Uint64() >> uint(rng.Intn(33))
		b := rng.Uint64() >> uint(rng.Intn(33))
		c := rng.Uint64()>>uint(rng.Intn(40)) | 1
		q, r := mulDiv(a, b, c)
		if r >= c {
			t.Fatalf("mulDiv(%d,%d,%d): rem %d >= div", a, b, c, r)
		}
		// Check the identity modulo 2^64 (both sides wrap identically).
		if q*c+r != a*b {
			t.Fatalf("mulDiv(%d,%d,%d) = %d,%d identity failed", a, b, c, q, r)
		}
	}
}

func TestScaleDown(t *testing.T) {
	counts := []uint64{1024, 2048, 1024}
	got, err := ScaleDown(counts, 10)
	if err != nil {
		t.Fatal(err)
	}
	if Sum(got) != 4 {
		t.Errorf("sum = %d, want 4", Sum(got))
	}
	if got[1] != 2 {
		t.Errorf("middle = %d, want 2", got[1])
	}
}

func TestScaleDownRounds(t *testing.T) {
	// 1536/1024 rounds to 2.
	got, err := ScaleDown([]uint64{1536}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 {
		t.Errorf("got %v, want [2]", got)
	}
}

func TestTransportBasic(t *testing.T) {
	// The 2018 correct-answer class: RA marginal (Table IV) joined with the
	// reconciled AA marginal (Table V, −10; see paperdata discrepancies).
	m, err := Transport([]uint64{3994, 2748568}, []uint64{2727467, 25095})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]uint64{{3994, 0}, {2723473, 25095}}
	for i := range want {
		for j := range want[i] {
			if m[i][j] != want[i][j] {
				t.Fatalf("m = %v, want %v", m, want)
			}
		}
	}
}

func TestTransportMismatch(t *testing.T) {
	if _, err := Transport([]uint64{1, 2}, []uint64{4}); err == nil {
		t.Error("mismatched marginals accepted")
	}
}

func TestTransportPropertyMarginals(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		nr, nc := 1+rng.Intn(5), 1+rng.Intn(5)
		rows := make([]uint64, nr)
		var total uint64
		for i := range rows {
			rows[i] = uint64(rng.Intn(1000))
			total += rows[i]
		}
		cols, err := LargestRemainder(randPositiveWeights(rng, nc), total)
		if err != nil {
			if total == 0 {
				continue
			}
			t.Fatal(err)
		}
		m, err := Transport(rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range rows {
			var s uint64
			for j := range cols {
				s += m[i][j]
			}
			if s != r {
				t.Fatalf("row %d sum %d != %d", i, s, r)
			}
		}
		for j, c := range cols {
			var s uint64
			for i := range rows {
				s += m[i][j]
			}
			if s != c {
				t.Fatalf("col %d sum %d != %d", j, s, c)
			}
		}
	}
}

func randPositiveWeights(rng *rand.Rand, n int) []uint64 {
	w := make([]uint64, n)
	for i := range w {
		w[i] = 1 + uint64(rng.Intn(100))
	}
	return w
}

func TestTransportZeroEdges(t *testing.T) {
	m, err := Transport([]uint64{0, 5, 0}, []uint64{0, 0, 5})
	if err != nil {
		t.Fatal(err)
	}
	if m[1][2] != 5 {
		t.Errorf("m = %v", m)
	}
}

func TestSpreadUnique(t *testing.T) {
	got, err := SpreadUnique(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if Sum(got) != 10 {
		t.Errorf("sum = %d", Sum(got))
	}
	for i, v := range got {
		if v == 0 {
			t.Errorf("item %d got zero", i)
		}
	}
	if got[0] < got[len(got)-1] {
		t.Error("profile must be non-increasing")
	}
	if _, err := SpreadUnique(2, 3); err == nil {
		t.Error("total < n accepted")
	}
	if out, err := SpreadUnique(0, 0); err != nil || out != nil {
		t.Errorf("empty spread: %v, %v", out, err)
	}
	if _, err := SpreadUnique(1, 0); err == nil {
		t.Error("packets over zero uniques accepted")
	}
}

func BenchmarkLargestRemainder(b *testing.B) {
	ws := make([]uint64, 200)
	for i := range ws {
		ws[i] = uint64(i*i + 1)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := LargestRemainder(ws, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}
