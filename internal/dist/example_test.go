package dist_test

import (
	"fmt"

	"openresolver/internal/dist"
)

func ExampleLargestRemainder() {
	// Scale the 2018 campaign's answer classes down to 100 resolvers.
	classes := []uint64{2752562, 111093, 3642109} // correct, incorrect, none
	scaled, _ := dist.LargestRemainder(classes, 100)
	fmt.Println(scaled)
	// Output: [42 2 56]
}

func ExampleTransport() {
	// Join the RA marginal with the AA marginal of one answer class.
	byRA := []uint64{3994, 2748568}
	byAA := []uint64{2727467, 25095}
	joint, _ := dist.Transport(byRA, byAA)
	fmt.Println(joint[0], joint[1])
	// Output: [3994 0] [2723473 25095]
}
