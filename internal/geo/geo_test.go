package geo

import (
	"testing"

	"openresolver/internal/ipv4"
	"openresolver/internal/paperdata"
)

func TestCoversAllPaperCountries(t *testing.T) {
	r := DefaultRegistry()
	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		for _, g := range paperdata.MaliciousGeo[y] {
			if len(r.CountryBlocks(g.Country)) == 0 {
				t.Errorf("%d: no allocation for country %s", y, g.Country)
			}
		}
	}
}

func TestTableVIIIOrgs(t *testing.T) {
	r := DefaultRegistry()
	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		for _, row := range paperdata.Top10[y] {
			addr, err := ipv4.ParseAddr(row.Addr)
			if err != nil {
				t.Fatalf("%s: %v", row.Addr, err)
			}
			got := r.Org(addr)
			switch {
			case row.Private:
				if got != "private network" {
					t.Errorf("%s: org = %q, want private network", row.Addr, got)
				}
			case row.Addr == "0.0.0.0":
				if got != "unknown" {
					t.Errorf("0.0.0.0: org = %q, want unknown", got)
				}
			case row.Org != "unspecified" && got != row.Org &&
				// The coarse /8 fallback is acceptable only for rows the
				// paper labels generically.
				row.Org != "Microsoft":
				if got != row.Org {
					t.Errorf("%s: org = %q, want %q", row.Addr, got, row.Org)
				}
			}
		}
	}
}

func TestNamedPrefixLookups(t *testing.T) {
	r := DefaultRegistry()
	tests := []struct {
		addr, country, org string
	}{
		{"216.194.64.193", "CA", "Tera-byte Dot Com"},
		{"74.220.199.15", "US", "Unified Layer"},
		{"208.91.197.91", "VG", "Confluence Network Inc"},
		{"141.8.225.68", "CH", "Rook Media GmbH"},
		{"114.44.34.86", "TW", "Chunghwa Telecom"},
		{"118.166.1.6", "TW", "Chunghwa Telecom"},
		{"20.20.20.20", "US", "Microsoft"},
		{"173.192.59.63", "US", "SoftLayer"},
		{"221.238.203.46", "CN", "China Unicom Tianjin"},
		{"68.87.91.199", "US", "Comcast"},
	}
	for _, tt := range tests {
		info, ok := r.Lookup(ipv4.MustParseAddr(tt.addr))
		if !ok {
			t.Errorf("%s: not found", tt.addr)
			continue
		}
		if info.Country != tt.country || info.Org != tt.org {
			t.Errorf("%s: got %s/%q, want %s/%q", tt.addr, info.Country, info.Org, tt.country, tt.org)
		}
	}
}

func TestMostSpecificWins(t *testing.T) {
	r := DefaultRegistry()
	// 74.220.199.15 lies in both 74.0.0.0/8 and 74.220.192.0/19; the /19
	// must win.
	info, _ := r.Lookup(ipv4.MustParseAddr("74.220.199.15"))
	if info.Org != "Unified Layer" {
		t.Errorf("org = %q", info.Org)
	}
	// An address in the /8 but outside the /19 gets the /8.
	info, _ = r.Lookup(ipv4.MustParseAddr("74.1.2.3"))
	if info.Org != "US mixed allocations" {
		t.Errorf("org = %q", info.Org)
	}
}

func TestUnallocated(t *testing.T) {
	r := DefaultRegistry()
	for _, s := range []string{"8.8.8.8", "1.1.1.1", "250.1.2.3"} {
		info, ok := r.Lookup(ipv4.MustParseAddr(s))
		if ok || info.Country != "ZZ" {
			t.Errorf("%s: got %v, %v; want ZZ, false", s, info, ok)
		}
	}
	if got := r.Country(ipv4.MustParseAddr("8.8.8.8")); got != "ZZ" {
		t.Errorf("Country = %q", got)
	}
}

func TestPrivateOrg(t *testing.T) {
	r := DefaultRegistry()
	for _, s := range []string{"192.168.1.1", "10.0.0.1", "172.30.1.254"} {
		if got := r.Org(ipv4.MustParseAddr(s)); got != "private network" {
			t.Errorf("%s: org = %q", s, got)
		}
	}
}

func TestSeatsOutsideReservedSpace(t *testing.T) {
	reserved := ipv4.NewReservedBlocklist()
	for _, s := range countrySeats {
		b := ipv4.MustParseBlock(s.cidr)
		if reserved.Contains(b.First()) || reserved.Contains(b.Last()) {
			t.Errorf("seat %s overlaps reserved space", s.cidr)
		}
	}
}

func TestCountryBlocksAndCountries(t *testing.T) {
	r := DefaultRegistry()
	us := r.CountryBlocks("US")
	if len(us) < 10 {
		t.Errorf("US allocations = %d, want many", len(us))
	}
	if len(r.Countries()) < 40 {
		t.Errorf("countries = %d", len(r.Countries()))
	}
	if s := (Info{Country: "US", ASN: 7018, Org: "AT&T Services"}).String(); s != "US AS7018 AT&T Services" {
		t.Errorf("Info.String = %q", s)
	}
}

func TestLookupConsistentWithLinearScan(t *testing.T) {
	r := DefaultRegistry()
	probes := []string{
		"28.0.0.1", "28.15.255.255", "28.16.0.0", "29.0.0.1", "30.208.4.4",
		"216.194.64.0", "216.194.95.255", "216.194.96.0", "20.0.0.0",
		"68.87.0.1", "68.88.0.1", "221.239.255.255", "198.105.244.99",
	}
	for _, s := range probes {
		addr := ipv4.MustParseAddr(s)
		// Linear reference: most specific containing allocation.
		var want *Allocation
		for i := range r.allocs {
			a := &r.allocs[i]
			if a.Block.Contains(addr) && (want == nil || a.Block.Bits > want.Block.Bits) {
				want = a
			}
		}
		got, ok := r.Lookup(addr)
		if want == nil {
			if ok {
				t.Errorf("%s: found %v, want none", s, got)
			}
			continue
		}
		if !ok || got != want.Info {
			t.Errorf("%s: got %v, want %v", s, got, want.Info)
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	r := DefaultRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Lookup(ipv4.Addr(uint32(i) * 2654435761))
	}
}
