// Package geo is the reproduction's substitute for the ip2location service
// the paper uses to geolocate malicious resolvers (§IV-C2) and for the
// whois lookups behind Table VIII's "Org Name" column.
//
// It implements an RIR-style registry: a static table of CIDR allocations
// mapping to ISO 3166-1 country codes, autonomous systems and organization
// names. The allocations are synthetic but shaped like the real registry —
// large blocks for large registries, one or more blocks per country — and
// they cover every country appearing in the paper's 2013 and 2018 malicious
// resolver distributions, plus the organizations named in Table VIII.
package geo

import (
	"fmt"
	"sort"

	"openresolver/internal/ipv4"
)

// Info is the result of a registry lookup.
type Info struct {
	Country string // ISO 3166-1 alpha-2, "ZZ" if unallocated
	ASN     uint32
	Org     string
}

// Allocation is one registry entry.
type Allocation struct {
	Block ipv4.Block
	Info  Info
}

// Registry resolves addresses to allocations. Lookups are O(log n) over the
// sorted allocation list; more-specific (longer-prefix) allocations win,
// as in the real routing registry.
type Registry struct {
	// sorted by block base; ties broken by longer prefix first.
	allocs []Allocation
	// byCountry indexes allocations for address assignment.
	byCountry map[string][]Allocation
}

// NewRegistry builds a registry from allocations.
func NewRegistry(allocs []Allocation) *Registry {
	r := &Registry{
		allocs:    append([]Allocation(nil), allocs...),
		byCountry: make(map[string][]Allocation),
	}
	sort.Slice(r.allocs, func(i, j int) bool {
		if r.allocs[i].Block.Base != r.allocs[j].Block.Base {
			return r.allocs[i].Block.Base < r.allocs[j].Block.Base
		}
		return r.allocs[i].Block.Bits > r.allocs[j].Block.Bits
	})
	for _, a := range r.allocs {
		r.byCountry[a.Info.Country] = append(r.byCountry[a.Info.Country], a)
	}
	return r
}

// Lookup returns the most specific allocation covering addr. ok is false
// for unallocated space, in which case Info has Country "ZZ".
func (r *Registry) Lookup(addr ipv4.Addr) (Info, bool) {
	// Binary search for the last allocation with Base <= addr, then walk
	// back over candidates that could still cover addr. Allocation lists
	// are small (hundreds), and nesting depth is tiny, so the walk is short.
	i := sort.Search(len(r.allocs), func(i int) bool { return r.allocs[i].Block.Base > addr })
	var best *Allocation
	for j := i - 1; j >= 0; j-- {
		a := &r.allocs[j]
		if a.Block.Contains(addr) {
			if best == nil || a.Block.Bits > best.Block.Bits {
				best = a
			}
			if a.Block.Bits == 32 {
				break
			}
			continue
		}
		// Once we pass a /8 whose whole range ends before addr there can be
		// no earlier cover; /8 is the coarsest allocation we issue.
		if a.Block.Last() < addr && a.Block.Bits <= 8 {
			break
		}
	}
	if best == nil {
		return Info{Country: "ZZ"}, false
	}
	return best.Info, true
}

// Country returns the country code for addr ("ZZ" when unallocated).
func (r *Registry) Country(addr ipv4.Addr) string {
	info, _ := r.Lookup(addr)
	return info.Country
}

// Org returns the organization name for addr, or "unknown".
func (r *Registry) Org(addr ipv4.Addr) string {
	if ipv4.IsPrivate(addr) {
		return "private network"
	}
	info, ok := r.Lookup(addr)
	if !ok || info.Org == "" {
		return "unknown"
	}
	return info.Org
}

// CountryBlocks returns the allocations of a country, for address
// assignment by the population compiler.
func (r *Registry) CountryBlocks(country string) []Allocation {
	return r.byCountry[country]
}

// Countries returns the sorted list of countries with allocations.
func (r *Registry) Countries() []string {
	out := make([]string, 0, len(r.byCountry))
	for c := range r.byCountry {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// countrySeats lays out one /12 (1,048,576 addresses) per country for every
// country in the paper's malicious-resolver distributions, carved out of
// unreserved unicast space. The US additionally receives the large legacy
// blocks hosting the organizations named in the paper.
var countrySeats = []struct {
	country string
	cidr    string
	asn     uint32
	org     string
}{
	// One /12 seat per country, laid consecutively from 28.0.0.0 and, after
	// 100.64/10 approaches, jumping over reserved space. All bases chosen
	// outside every Table I block.
	{"US", "28.0.0.0/12", 7018, "AT&T Services"},
	{"CA", "28.16.0.0/12", 812, "Rogers Communications"},
	{"BR", "28.32.0.0/12", 28573, "Claro Brasil"},
	{"AR", "28.48.0.0/12", 7303, "Telecom Argentina"},
	{"GB", "28.64.0.0/12", 2856, "British Telecom"},
	{"DE", "28.80.0.0/12", 3320, "Deutsche Telekom"},
	{"FR", "28.96.0.0/12", 3215, "Orange"},
	{"NL", "28.112.0.0/12", 1136, "KPN"},
	{"ES", "28.128.0.0/12", 3352, "Telefonica de Espana"},
	{"PT", "28.144.0.0/12", 3243, "MEO"},
	{"IT", "28.160.0.0/12", 3269, "Telecom Italia"},
	{"CH", "28.176.0.0/12", 3303, "Swisscom"},
	{"AT", "28.192.0.0/12", 8447, "A1 Telekom Austria"},
	{"PL", "28.208.0.0/12", 5617, "Orange Polska"},
	{"BG", "28.224.0.0/12", 8866, "Vivacom"},
	{"RU", "28.240.0.0/12", 12389, "Rostelecom"},
	{"TR", "29.0.0.0/12", 9121, "Turk Telekom"},
	{"SE", "29.16.0.0/12", 3301, "Telia"},
	{"IE", "29.32.0.0/12", 5466, "Eir"},
	{"LT", "29.48.0.0/12", 8764, "Telia Lietuva"},
	{"UA", "29.64.0.0/12", 6849, "Ukrtelecom"},
	{"VA", "29.80.0.0/12", 8978, "Vatican Telecom"},
	{"CN", "29.96.0.0/12", 4134, "China Telecom"},
	{"HK", "29.112.0.0/12", 4760, "PCCW"},
	{"TW", "29.128.0.0/12", 3462, "Chunghwa Telecom"},
	{"KR", "29.144.0.0/12", 4766, "Korea Telecom"},
	{"JP", "29.160.0.0/12", 2914, "NTT"},
	{"IN", "29.176.0.0/12", 9829, "BSNL"},
	{"VN", "29.192.0.0/12", 7552, "Viettel"},
	{"TH", "29.208.0.0/12", 7470, "True Internet"},
	{"SG", "29.224.0.0/12", 7473, "Singtel"},
	{"ID", "29.240.0.0/12", 7713, "Telkom Indonesia"},
	{"MY", "30.0.0.0/12", 4788, "Telekom Malaysia"},
	{"AU", "30.16.0.0/12", 1221, "Telstra"},
	{"AE", "30.32.0.0/12", 5384, "Etisalat"},
	{"SA", "30.48.0.0/12", 25019, "Saudi Telecom"},
	{"IR", "30.64.0.0/12", 58224, "TIC"},
	{"JO", "30.80.0.0/12", 8697, "Jordan Telecom"},
	{"ZA", "30.96.0.0/12", 3741, "Internet Solutions"},
	{"KE", "30.112.0.0/12", 33771, "Safaricom"},
	{"MA", "30.128.0.0/12", 36903, "Maroc Telecom"},
	{"NA", "30.144.0.0/12", 36996, "Telecom Namibia"},
	{"VG", "30.160.0.0/12", 11139, "CCT Global"},
	{"KY", "30.176.0.0/12", 6639, "Cable & Wireless Cayman"},
	{"PR", "30.192.0.0/12", 14638, "Liberty Puerto Rico"},
	{"NI", "30.208.0.0/12", 14754, "Telgua Nicaragua"},
	{"MX", "30.224.0.0/12", 8151, "Telmex"},

	// Large US legacy blocks: the bulk of both years' malicious resolvers
	// (98% in 2013, 81% in 2018) must fit in US space, and the Table VIII
	// organizations live at their real prefixes.
	{"US", "20.0.0.0/8", 8075, "Microsoft"},
	{"US", "63.0.0.0/8", 701, "Verizon Business"},
	{"US", "64.0.0.0/8", 6079, "US mixed allocations"},
	{"US", "66.0.0.0/8", 6128, "US mixed allocations"},
	{"US", "68.0.0.0/8", 7922, "Comcast"},
	{"US", "74.0.0.0/8", 46606, "US mixed allocations"},
	{"US", "76.0.0.0/8", 7922, "Comcast"},
	{"US", "173.0.0.0/8", 36351, "US mixed allocations"},
	{"US", "204.0.0.0/8", 3356, "Level 3"},
	{"US", "208.0.0.0/8", 209, "CenturyLink"},
	{"US", "209.0.0.0/8", 209, "CenturyLink"},
	{"US", "216.0.0.0/8", 6461, "US mixed allocations"},

	// Organization-specific prefixes named in Table VIII / §IV-C1.
	{"CA", "216.194.64.0/19", 10929, "Tera-byte Dot Com"},
	{"US", "74.220.192.0/19", 46606, "Unified Layer"},
	{"VG", "208.91.196.0/22", 40438, "Confluence Network Inc"},
	{"CH", "141.8.224.0/21", 47846, "Rook Media GmbH"},
	{"TW", "114.44.0.0/16", 3462, "Chunghwa Telecom"},
	{"TW", "118.166.0.0/16", 3462, "Chunghwa Telecom"},
	{"US", "173.192.0.0/15", 36351, "SoftLayer"},
	{"CN", "221.238.0.0/15", 17638, "China Unicom Tianjin"},
	{"US", "68.87.0.0/16", 7922, "Comcast"},
	{"US", "198.105.244.0/24", 30496, "unnamed in paper"},
}

// DefaultRegistry builds the registry described above. It is deterministic
// and stateless, so callers may share one instance.
func DefaultRegistry() *Registry {
	allocs := make([]Allocation, 0, len(countrySeats))
	for _, s := range countrySeats {
		allocs = append(allocs, Allocation{
			Block: ipv4.MustParseBlock(s.cidr),
			Info:  Info{Country: s.country, ASN: s.asn, Org: s.org},
		})
	}
	return NewRegistry(allocs)
}

// String renders an Info in a whois-like single line.
func (i Info) String() string {
	return fmt.Sprintf("%s AS%d %s", i.Country, i.ASN, i.Org)
}
