package serve

import "sync"

// cacheEntry is one completed sweep, content-addressed by its SpecKey.
// The rendered matrix bytes are stored verbatim — a cache hit serves the
// exact bytes the original run produced, so cached and fresh responses are
// byte-identical by construction. Digests carries every cell's
// core.FaultDigest in grid order: the same constants the golden tests pin,
// making a cached result cross-checkable against a standalone campaign.
type cacheEntry struct {
	SpecKey    string
	JobID      string // job whose run produced the entry
	Digests    []string
	MatrixJSON []byte
	MatrixText []byte
}

// digestCache maps spec keys to completed results with FIFO eviction.
// Entries are immutable once stored; the bound exists only to keep a
// long-running daemon's memory proportional to recent traffic, not to
// correctness — an evicted spec simply re-runs (and its per-cell artifacts
// under the state directory still short-circuit most of the work).
type digestCache struct {
	mu      sync.Mutex
	limit   int
	entries map[string]*cacheEntry
	order   []string
}

func newDigestCache(limit int) *digestCache {
	if limit <= 0 {
		limit = 64
	}
	return &digestCache{limit: limit, entries: make(map[string]*cacheEntry)}
}

// get returns the completed entry for key, or nil.
func (c *digestCache) get(key string) *cacheEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[key]
}

// put stores a completed entry, evicting the oldest once over the bound.
// A racing duplicate (two jobs of the same spec finishing together) keeps
// the first entry; both carry identical bytes, so either is correct.
func (c *digestCache) put(e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[e.SpecKey]; ok {
		return
	}
	c.entries[e.SpecKey] = e
	c.order = append(c.order, e.SpecKey)
	for len(c.order) > c.limit {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
	}
}

// len reports the number of cached sweeps.
func (c *digestCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
