package serve

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestCompileEquivalence pins the submission grammar: the same grid spelled
// as structured fields, as spec-file text, or as text with field overrides
// compiles to the same spec key, so the digest cache collapses all three.
func TestCompileEquivalence(t *testing.T) {
	fields := &JobSpec{
		Years: []string{"2018"},
		Loss:  []string{"none", "loss:0.3"},
		Retry: []string{"0", "2+adaptive"},
		Shift: 16,
		Seed:  1,
	}
	text := &JobSpec{
		SpecText: strings.Join([]string{
			"# equivalence fixture",
			"years 2018",
			"loss none loss:0.3",
			"retry 0 2+adaptive",
			"shift 16",
			"seed 1",
		}, "\n"),
	}
	override := &JobSpec{
		SpecText: "years 2013\nloss none loss:0.3\nretry 0 2+adaptive\nshift 16\nseed 1",
		Years:    []string{"2018"}, // field overrides the text's year axis
	}
	keys := make([]string, 0, 3)
	for i, js := range []*JobSpec{fields, text, override} {
		spec, err := js.Compile()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		key, err := SpecKey(spec)
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		keys = append(keys, key)
	}
	if keys[0] != keys[1] || keys[1] != keys[2] {
		t.Errorf("equivalent submissions hashed differently:\n fields   %s\n text     %s\n override %s",
			keys[0], keys[1], keys[2])
	}
}

// TestCompileDistinguishesSeeds guards the cache key against the classic
// false-hit: identical grids under different seeds (or shifts) must not
// collide, because their campaign bytes differ.
func TestCompileDistinguishesSeeds(t *testing.T) {
	base := func() *JobSpec {
		return &JobSpec{Years: []string{"2018"}, Loss: []string{"none"}, Retry: []string{"0"}, Shift: 16, Seed: 1}
	}
	key := func(js *JobSpec) string {
		t.Helper()
		spec, err := js.Compile()
		if err != nil {
			t.Fatal(err)
		}
		k, err := SpecKey(spec)
		if err != nil {
			t.Fatal(err)
		}
		return k
	}
	ref := key(base())
	seed := base()
	seed.Seed = 2
	if key(seed) == ref {
		t.Error("different seeds produced the same spec key")
	}
	shift := base()
	shift.Shift = 14
	if key(shift) == ref {
		t.Error("different shifts produced the same spec key")
	}
}

// TestCompileRejectsBadSpecs: validation errors surface at submission.
func TestCompileRejectsBadSpecs(t *testing.T) {
	bad := []*JobSpec{
		{Years: []string{"1999"}},                            // out-of-range year
		{Loss: []string{"bogus:1"}},                          // unknown impairment
		{Retry: []string{"-1"}},                              // negative budget
		{CellWorkers: []int{-2}},                             // negative workers
		{Mode: "quantum"},                                    // unknown mode
		{SpecText: "years 2018 2018"},                        // duplicate axis value
		{Mode: "synth", Loss: []string{"loss:0.5"}},          // synth has no network
		{SpecText: "retry 2+adaptive\nretry 2+adaptive\n#x"}, // duplicate retry
	}
	for i, js := range bad {
		if _, err := js.Compile(); err == nil {
			t.Errorf("bad spec %d compiled without error", i)
		}
	}
}

// TestTenantLimiter drives the token bucket on a fake clock: burst passes,
// the next submission is refused, elapsed time refills fractionally, and
// MaxActive holds independently of the rate.
func TestTenantLimiter(t *testing.T) {
	now := time.Unix(1000, 0)
	l := newTenantLimiter(TenantPolicy{SubmitsPerSec: 2, Burst: 2, MaxActive: 3},
		func() time.Time { return now })

	for i := 0; i < 2; i++ {
		if err := l.admit("a"); err != nil {
			t.Fatalf("burst submission %d refused: %v", i, err)
		}
	}
	if err := l.admit("a"); !errors.Is(err, ErrAdmission) {
		t.Fatalf("over-rate submission got %v, want ErrAdmission", err)
	}
	// An independent tenant has its own bucket.
	if err := l.admit("b"); err != nil {
		t.Fatalf("tenant b refused by tenant a's bucket: %v", err)
	}
	// Half a second accrues one token at 2/s.
	now = now.Add(500 * time.Millisecond)
	if err := l.admit("a"); err != nil {
		t.Fatalf("refill not credited: %v", err)
	}
	// MaxActive: tenant a now holds 3 active jobs; a fourth is refused
	// even after the bucket refills.
	now = now.Add(time.Hour)
	if err := l.admit("a"); !errors.Is(err, ErrAdmission) {
		t.Fatalf("fourth active job got %v, want ErrAdmission (MaxActive=3)", err)
	}
	l.release("a")
	if err := l.admit("a"); err != nil {
		t.Fatalf("slot released but admission still refused: %v", err)
	}
}

// TestTenantLimiterUnlimited: the zero policy admits everything.
func TestTenantLimiterUnlimited(t *testing.T) {
	l := newTenantLimiter(TenantPolicy{}, func() time.Time { return time.Unix(0, 0) })
	for i := 0; i < 100; i++ {
		if err := l.admit("x"); err != nil {
			t.Fatalf("zero policy refused submission %d: %v", i, err)
		}
	}
}
