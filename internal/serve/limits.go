package serve

import (
	"fmt"
	"sync"
	"time"
)

// TenantPolicy bounds what one tenant may ask of the daemon. Admission
// control is a per-tenant token bucket with the same credit discipline as
// the prober's packets-per-second budget (internal/prober): tokens accrue
// fractionally with elapsed time up to a burst capacity and each admitted
// submission consumes one, so sustained submission rate converges on
// SubmitsPerSec while short bursts up to Burst pass immediately. MaxActive
// additionally caps how many of a tenant's jobs may be queued or running
// at once — the backstop that keeps one tenant from occupying the whole
// job pool with slow campaigns even while submitting under the rate.
type TenantPolicy struct {
	// SubmitsPerSec is the sustained submission rate per tenant. 0
	// disables rate limiting (every submission is admitted).
	SubmitsPerSec float64
	// Burst is the bucket capacity. 0 defaults to max(1, SubmitsPerSec).
	Burst float64
	// MaxActive caps a tenant's queued+running jobs. 0 means unlimited.
	MaxActive int
}

// burst returns the effective bucket capacity.
func (p TenantPolicy) burst() float64 {
	if p.Burst > 0 {
		return p.Burst
	}
	if p.SubmitsPerSec > 1 {
		return p.SubmitsPerSec
	}
	return 1
}

// bucket is one tenant's admission state.
type bucket struct {
	tokens float64
	last   time.Time
	active int
}

// tenantLimiter applies one TenantPolicy across all tenants. Buckets are
// created on first sight of a tenant name; the zero tenant ("") is mapped
// to "default" by the manager before it gets here.
type tenantLimiter struct {
	policy TenantPolicy
	now    func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

func newTenantLimiter(p TenantPolicy, now func() time.Time) *tenantLimiter {
	return &tenantLimiter{policy: p, now: now, buckets: make(map[string]*bucket)}
}

// admit charges one submission to the tenant, or explains the refusal.
// An admitted job holds one active slot until release.
func (l *tenantLimiter) admit(tenant string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: l.policy.burst(), last: now}
		l.buckets[tenant] = b
	}
	if l.policy.MaxActive > 0 && b.active >= l.policy.MaxActive {
		return fmt.Errorf("%w: tenant %q already has %d active jobs (limit %d)",
			ErrAdmission, tenant, b.active, l.policy.MaxActive)
	}
	if l.policy.SubmitsPerSec > 0 {
		// Refill: fractional credits per elapsed second, capped at burst —
		// the prober's token discipline on a wall clock.
		b.tokens += now.Sub(b.last).Seconds() * l.policy.SubmitsPerSec
		if limit := l.policy.burst(); b.tokens > limit {
			b.tokens = limit
		}
		b.last = now
		if b.tokens < 1 {
			return fmt.Errorf("%w: tenant %q over its submission rate (%.3g/s)",
				ErrAdmission, tenant, l.policy.SubmitsPerSec)
		}
		b.tokens--
	}
	b.active++
	return nil
}

// release returns the tenant's active slot when its job reaches a
// terminal state.
func (l *tenantLimiter) release(tenant string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if b := l.buckets[tenant]; b != nil && b.active > 0 {
		b.active--
	}
}
