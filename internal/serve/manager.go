package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"openresolver/internal/core"
	"openresolver/internal/obs"
	"openresolver/internal/sweep"
)

// The manager's error taxonomy; the router maps each to an HTTP status
// (API.md documents the pairing).
var (
	// ErrAdmission rejects a submission under tenant admission control (429).
	ErrAdmission = errors.New("admission denied")
	// ErrDraining rejects submissions while the daemon shuts down (503).
	ErrDraining = errors.New("daemon is draining")
	// ErrNotFound reports an unknown job ID (404).
	ErrNotFound = errors.New("no such job")
	// ErrNotDone rejects a result fetch before the job completes (409).
	ErrNotDone = errors.New("job has not completed")
	// ErrNotResumable rejects resume on a job that is not in a resumable
	// state (409). Only cancelled jobs resume; done and failed are final.
	ErrNotResumable = errors.New("job is not resumable")
)

// JobState is a job's lifecycle position. Transitions: queued → running →
// {done, failed, cancelled}; cancelled → queued again via resume. Done and
// failed are terminal.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Config parameterizes the job manager.
type Config struct {
	// StateDir holds per-spec artifact and checkpoint directories. Job
	// work is keyed by spec (not by job ID), so partial work survives the
	// process: a resumed or resubmitted spec reuses completed cell
	// artifacts and sub-cell shard checkpoints exactly like orsweep
	// -out/-resume. Empty means a fresh temporary directory.
	StateDir string
	// MaxJobs bounds how many jobs execute concurrently (0 = 2).
	// Submissions beyond it queue in order.
	MaxJobs int
	// Workers is the total cell-pool budget shared by running jobs
	// (0 = all cores). Each running job gets Workers/MaxJobs pool workers
	// (minimum 1) — the same compose-against-one-budget rule orsweep
	// applies between cells and sub-simulations. The split never affects
	// result bytes, only scheduling.
	Workers int
	// Tenant is the per-tenant admission policy (zero value: no limits).
	Tenant TenantPolicy
	// CacheEntries bounds the completed-result digest cache (0 = 64).
	CacheEntries int
	// Obs, when non-nil, receives the daemon's own counters (jobs
	// submitted/completed/failed/cancelled, cache hits, admissions
	// denied, cells done). Each job additionally runs against a private
	// registry serving its progress endpoints.
	Obs *obs.Registry
	// Log receives job lifecycle notes and each job's sweep log. Nil
	// discards them.
	Log io.Writer
	// SimRunner, when non-nil, is passed through to every job's sweep:
	// pure-year sim cells dispatch over it instead of running in-process
	// (sweep.RunConfig.SimRunner). orserved wires a fabric coordinator's
	// RunCampaign here so API jobs fan out to remote workers; result
	// bytes are pinned identical either way.
	SimRunner func(cfg core.Config, lossSpec string) (*core.Dataset, error)
	// now is the admission clock; tests inject a fake. Nil = time.Now.
	now func() time.Time
}

// Job is the manager's record of one submission. All fields are guarded
// by the manager's mutex; handlers read them through JobView snapshots.
type job struct {
	id      string
	tenant  string
	specKey string
	spec    *sweep.Spec
	cells   int

	state     JobState
	cached    bool
	errMsg    string
	runs      int // times the sweep engine was dispatched for this job
	completed []sweep.Result
	digests   []string
	matrixJS  []byte
	matrixTxt []byte
	reg       *obs.Registry
	cancel    context.CancelFunc
}

// JobView is the JSON surface of a job: what GET /v1/jobs/{id} returns.
type JobView struct {
	ID      string   `json:"id"`
	Tenant  string   `json:"tenant"`
	SpecKey string   `json:"spec_key"`
	State   JobState `json:"state"`
	// Cached marks a job served from the digest cache without a run.
	Cached bool `json:"cached,omitempty"`
	// Error carries the failure reason of a failed job.
	Error string `json:"error,omitempty"`
	// Cells is the grid size; CellsDone counts completed cells so far.
	Cells     int `json:"cells"`
	CellsDone int `json:"cells_done"`
	// Digests lists every cell's core.FaultDigest in grid order once the
	// job is done — directly comparable with the golden constants and
	// with a standalone orsweep/orsurvey run of the same configuration.
	Digests []string `json:"digests,omitempty"`
}

// Manager owns the job table, the shared worker budget, tenant admission,
// and the digest cache. It is safe for concurrent use by HTTP handlers.
type Manager struct {
	cfg      Config
	stateDir string
	reg      *obs.Registry
	sh       *obs.Shard
	limiter  *tenantLimiter
	cache    *digestCache
	sem      chan struct{}
	baseCtx  context.Context
	stop     context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string          // submission order, for List
	active   map[string]string // specKey → job ID while queued/running
	seq      int
	draining bool
	wg       sync.WaitGroup
}

// NewManager builds a manager and its state directory.
func NewManager(cfg Config) (*Manager, error) {
	dir := cfg.StateDir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "orserved-"); err != nil {
			return nil, err
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	maxJobs := cfg.MaxJobs
	if maxJobs <= 0 {
		maxJobs = 2
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Manager{
		cfg:      cfg,
		stateDir: dir,
		reg:      reg,
		sh:       reg.NewShard("serve"),
		limiter:  newTenantLimiter(cfg.Tenant, cfg.now),
		cache:    newDigestCache(cfg.CacheEntries),
		sem:      make(chan struct{}, maxJobs),
		baseCtx:  ctx,
		stop:     cancel,
		jobs:     make(map[string]*job),
		active:   make(map[string]string),
	}, nil
}

// Registry is the daemon's own observability registry (never nil); the
// router serves it at /metrics.
func (m *Manager) Registry() *obs.Registry { return m.reg }

// StateDir is where job artifacts and checkpoints live.
func (m *Manager) StateDir() string { return m.stateDir }

// perJobWorkers splits the shared worker budget across the job pool.
func (m *Manager) perJobWorkers() int {
	budget := m.cfg.Workers
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	per := budget / cap(m.sem)
	if per < 1 {
		per = 1
	}
	return per
}

// specDir is the artifact/checkpoint directory for one spec. Content
// addressing by spec key (not job ID) is what makes partial work durable:
// any job of the same spec — a resume, a resubmission, or a run after a
// daemon restart — finds the completed cell artifacts and sub-cell shard
// checkpoints of every earlier attempt, and the sweep engine's
// self-validating artifact/checkpoint headers guarantee stale state from
// a colliding directory is detected and re-run rather than trusted.
func (m *Manager) specDir(specKey string) string {
	return filepath.Join(m.stateDir, "spec-"+specKey[:16])
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Log != nil {
		fmt.Fprintf(m.cfg.Log, format, args...)
	}
}

// Submit validates and admits one job. The fast paths return without
// touching the campaign engines: an identical spec already completed is
// served from the digest cache as an instantly-done job, and an identical
// spec currently queued or running is deduplicated onto the live job. A
// fresh spec is charged against the tenant's admission budget and queued.
func (m *Manager) Submit(tenant string, js *JobSpec) (JobView, error) {
	if tenant == "" {
		tenant = "default"
	}
	spec, err := js.Compile()
	if err != nil {
		return JobView{}, err
	}
	key, err := SpecKey(spec)
	if err != nil {
		return JobView{}, err
	}
	cells, err := spec.Cells()
	if err != nil {
		return JobView{}, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return JobView{}, ErrDraining
	}
	m.sh.Inc(obs.CServeSubmitted)

	if e := m.cache.get(key); e != nil {
		// Digest-cache hit: a completed run of this exact grid exists, so
		// the job is born done, carrying the original run's bytes. Cache
		// hits bypass the token bucket — they consume no simulation
		// capacity, which is what admission control protects.
		j := m.newJobLocked(tenant, key, spec, len(cells))
		j.state = JobDone
		j.cached = true
		j.digests = e.Digests
		j.matrixJS = e.MatrixJSON
		j.matrixTxt = e.MatrixText
		m.sh.Inc(obs.CServeCacheHits)
		m.logf("orserved: job %s (%s) served from digest cache (spec %.12s, from job %s)\n",
			j.id, tenant, key, e.JobID)
		return j.view(), nil
	}
	if id, ok := m.active[key]; ok {
		// The same grid is already in flight; hand back the live job
		// rather than running the identical simulation twice.
		m.logf("orserved: submission of spec %.12s deduplicated onto job %s\n", key, id)
		return m.jobs[id].view(), nil
	}
	if err := m.limiter.admit(tenant); err != nil {
		m.sh.Inc(obs.CServeDenied)
		return JobView{}, err
	}

	j := m.newJobLocked(tenant, key, spec, len(cells))
	j.state = JobQueued
	m.active[key] = j.id
	m.wg.Add(1)
	go m.run(j)
	m.logf("orserved: job %s (%s) queued: %d cells, spec %.12s\n", j.id, tenant, len(cells), key)
	return j.view(), nil
}

// newJobLocked allocates and registers a job. Caller holds m.mu.
func (m *Manager) newJobLocked(tenant, key string, spec *sweep.Spec, cells int) *job {
	m.seq++
	j := &job{
		id:      fmt.Sprintf("j%06d", m.seq),
		tenant:  tenant,
		specKey: key,
		spec:    spec,
		cells:   cells,
	}
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	return j
}

// run executes one dispatch of a job: waits for a pool slot, runs the
// sweep with cancellation and checkpointing wired, and folds the outcome
// back into the job table (and, on success, the digest cache).
func (m *Manager) run(j *job) {
	defer m.wg.Done()

	// A drain that lands while the job is still queued cancels it before
	// it ever occupies a slot; its (empty) spec directory still makes a
	// later resume behave like a cold run.
	select {
	case m.sem <- struct{}{}:
	case <-m.baseCtx.Done():
		m.finish(j, nil, core.ErrInterrupted)
		return
	}
	defer func() { <-m.sem }()

	m.mu.Lock()
	if j.state != JobQueued { // cancelled while queued
		m.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(m.baseCtx)
	j.state = JobRunning
	j.cancel = cancel
	j.runs++
	j.completed = nil
	j.reg = obs.NewRegistry()
	reg := j.reg
	spec := j.spec
	m.mu.Unlock()
	defer cancel()

	rc := sweep.RunConfig{
		Spec:        spec,
		PoolWorkers: m.perJobWorkers(),
		ArtifactDir: m.specDir(j.specKey),
		// Always resume: artifacts and checkpoints are self-validating,
		// so a cold spec directory just runs everything while any earlier
		// attempt's completed cells load instead of re-running.
		Resume: true,
		Obs:    reg,
		Log:    m.cfg.Log,
		Ctx:    ctx,
		OnCell: func(r sweep.Result) {
			m.sh.Inc(obs.CServeCellsDone)
			m.mu.Lock()
			j.completed = append(j.completed, r)
			m.mu.Unlock()
		},
		SimRunner: m.cfg.SimRunner,
	}
	results, err := sweep.Run(rc)
	m.finish(j, results, err)
}

// finish moves a job to its terminal state under the manager lock. A job
// already terminal (cancelled while queued, then reaped by a drain) is
// left alone — its admission slot was released when it went terminal.
func (m *Manager) finish(j *job, results []sweep.Result, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if j.state != JobQueued && j.state != JobRunning {
		return
	}
	delete(m.active, j.specKey)
	m.limiter.release(j.tenant)
	j.cancel = nil
	switch {
	case err == nil:
		matrix := sweep.BuildMatrix(j.spec, results)
		var txt bytes.Buffer
		if rerr := matrix.RenderText(&txt); rerr != nil {
			err = rerr
			break
		}
		js, jerr := matrix.JSON()
		if jerr != nil {
			err = jerr
			break
		}
		j.state = JobDone
		j.matrixTxt = txt.Bytes()
		j.matrixJS = js
		j.digests = make([]string, len(results))
		for i := range results {
			j.digests[i] = results[i].Digest
		}
		m.cache.put(&cacheEntry{
			SpecKey:    j.specKey,
			JobID:      j.id,
			Digests:    j.digests,
			MatrixJSON: j.matrixJS,
			MatrixText: j.matrixTxt,
		})
		m.sh.Inc(obs.CServeCompleted)
		m.logf("orserved: job %s done (%d cells)\n", j.id, len(results))
		return
	case errors.Is(err, core.ErrInterrupted):
		// Cancelled (by the client or a drain) at a shard boundary.
		// Completed cells hold artifacts and the interrupted cell holds
		// shard checkpoints under the spec directory, so resume picks up
		// exactly where this dispatch stopped.
		j.state = JobCancelled
		m.sh.Inc(obs.CServeCancelled)
		m.logf("orserved: job %s cancelled at a shard boundary (%d of %d cells complete)\n",
			j.id, len(j.completed), j.cells)
		return
	}
	j.state = JobFailed
	j.errMsg = err.Error()
	m.sh.Inc(obs.CServeFailed)
	m.logf("orserved: job %s failed: %v\n", j.id, err)
}

// view renders the job under the manager lock.
func (j *job) view() JobView {
	return JobView{
		ID:        j.id,
		Tenant:    j.tenant,
		SpecKey:   j.specKey,
		State:     j.state,
		Cached:    j.cached,
		Error:     j.errMsg,
		Cells:     j.cells,
		CellsDone: j.cellsDone(),
		Digests:   j.digests,
	}
}

// cellsDone counts completed cells for the view: streaming results while
// the job runs, the full grid once done.
func (j *job) cellsDone() int {
	if j.state == JobDone {
		return j.cells
	}
	return len(j.completed)
}

// Get returns one job.
func (m *Manager) Get(id string) (JobView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	return j.view(), nil
}

// List returns every job in submission order.
func (m *Manager) List() []JobView {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]JobView, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id].view())
	}
	return out
}

// Cancel stops a queued or running job cooperatively: the sweep stops
// dispatching cells and the in-flight cell drains to its next shard
// boundary, checkpointing under the spec directory. Cancelling a job in a
// terminal state is a no-op (the terminal state wins).
func (m *Manager) Cancel(id string) (JobView, error) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if !ok {
		m.mu.Unlock()
		return JobView{}, ErrNotFound
	}
	var cancel context.CancelFunc
	switch j.state {
	case JobQueued:
		// Not yet dispatched onto the pool: cancel directly.
		j.state = JobCancelled
		delete(m.active, j.specKey)
		m.limiter.release(j.tenant)
		m.sh.Inc(obs.CServeCancelled)
		m.logf("orserved: job %s cancelled while queued\n", j.id)
	case JobRunning:
		cancel = j.cancel
	}
	m.mu.Unlock()
	if cancel != nil {
		cancel() // finish() records the terminal state when the drain lands
	}
	v, err := m.Get(id)
	return v, err
}

// Resume re-dispatches a cancelled job. The new dispatch runs over the
// same spec directory, so completed cells load from their artifacts and
// the interrupted cell restores its checkpointed shards — the resumed
// result is byte-identical to an uninterrupted run (the sweep and core
// crash tests pin that equality; the lifecycle test here re-checks it at
// the API surface).
func (m *Manager) Resume(id string) (JobView, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobView{}, ErrNotFound
	}
	if m.draining {
		return JobView{}, ErrDraining
	}
	if j.state != JobCancelled {
		return JobView{}, fmt.Errorf("%w: job %s is %s", ErrNotResumable, id, j.state)
	}
	if _, busy := m.active[j.specKey]; busy {
		return JobView{}, fmt.Errorf("%w: spec already active again", ErrNotResumable)
	}
	if err := m.limiter.admit(j.tenant); err != nil {
		m.sh.Inc(obs.CServeDenied)
		return JobView{}, err
	}
	j.state = JobQueued
	m.active[j.specKey] = j.id
	m.wg.Add(1)
	go m.run(j)
	m.logf("orserved: job %s resumed\n", j.id)
	return j.view(), nil
}

// Result returns the completed matrix bytes — JSON and text renderings,
// exactly the bytes orsweep would print for the same spec.
func (m *Manager) Result(id string) (jsonBytes, textBytes []byte, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, nil, ErrNotFound
	}
	if j.state != JobDone {
		return nil, nil, fmt.Errorf("%w: job %s is %s", ErrNotDone, id, j.state)
	}
	return j.matrixJS, j.matrixTxt, nil
}

// Progress renders the partial matrix over the cells completed so far (in
// cell order — completion order never shows). Done jobs render the full
// matrix; jobs with no completed cells yet render an empty one.
func (m *Manager) Progress(id string) (*sweep.Matrix, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	completed := make([]sweep.Result, len(j.completed))
	copy(completed, j.completed)
	sort.Slice(completed, func(a, b int) bool {
		return completed[a].Cell.Index < completed[b].Cell.Index
	})
	return sweep.BuildMatrix(j.spec, completed), nil
}

// JobRegistry returns the job's private observability registry for the
// current (or last) dispatch — the mid-run snapshot path behind
// GET /v1/jobs/{id}/metrics. Nil when the job never ran (queued, or born
// from the digest cache).
func (m *Manager) JobRegistry(id string) (*obs.Registry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j.reg, nil
}

// Draining reports whether Drain has begun.
func (m *Manager) Draining() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.draining
}

// Drain shuts the manager down gracefully: new submissions and resumes
// are refused, every queued and running job is cancelled cooperatively —
// in-flight cells stop at their next shard boundary and checkpoint under
// the state directory — and Drain returns once every job goroutine has
// landed. Interrupted work is not lost: the state directory carries cell
// artifacts and shard checkpoints keyed by spec, so a restarted daemon
// resumes any resubmitted spec from where the drain stopped it.
func (m *Manager) Drain() {
	m.mu.Lock()
	m.draining = true
	m.mu.Unlock()
	m.stop()
	m.wg.Wait()
}
