package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"openresolver/internal/obs"
	"openresolver/internal/sweep"
)

// faultGolden mirrors internal/core's pinned adverse-network digest (and
// internal/sweep's copy). TestServeGoldenDigest submits the identical
// campaign through the HTTP API and must reproduce it bit-for-bit.
const faultGolden = "e0ded77dface81a22b5a7685afab9b7014aadb9cd6c243c24295dc23fc13f9df"

// smallJob is the API form of internal/sweep's fast 2×2 shift-16 fixture:
// pristine vs lossy network, single-shot vs retrying prober.
func smallJob() *JobSpec {
	return &JobSpec{
		Loss:  []string{"none", "loss:0.3"},
		Retry: []string{"0", "2+adaptive"},
		Shift: 16,
		Seed:  1,
	}
}

// newTestServer builds a manager plus its HTTP surface on a test listener.
func newTestServer(t *testing.T, cfg Config) (*Manager, *httptest.Server) {
	t.Helper()
	if cfg.StateDir == "" {
		cfg.StateDir = t.TempDir()
	}
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		ts.Close()
		m.Drain()
	})
	return m, ts
}

// do issues one API request and decodes the JSON body into out (when
// non-nil), returning the status code.
func do(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, url, data, err)
		}
	}
	return resp.StatusCode
}

// waitState polls a job until it reaches want (or any terminal state).
func waitState(t *testing.T, base, id string, want JobState) JobView {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var v JobView
		if code := do(t, "GET", base+"/v1/jobs/"+id, nil, &v); code != http.StatusOK {
			t.Fatalf("GET job %s: status %d", id, code)
		}
		if v.State == want {
			return v
		}
		switch v.State {
		case JobDone, JobFailed, JobCancelled:
			t.Fatalf("job %s reached terminal state %s (error %q), want %s", id, v.State, v.Error, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s, want %s", id, v.State, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// fetch grabs a raw body (result/progress endpoints).
func fetch(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// TestServeByteIdentityAndCache is the tentpole contract end to end: a job
// submitted over the API produces byte-identical result tables (text and
// JSON) to the same spec run directly through the sweep engine — the
// orsweep path — and an identical resubmission is served from the digest
// cache, returning the same bytes without re-running a single cell.
func TestServeByteIdentityAndCache(t *testing.T) {
	// Reference: the spec run the way orsweep runs it.
	refSpec, err := smallJob().Compile()
	if err != nil {
		t.Fatal(err)
	}
	refResults, err := sweep.Run(sweep.RunConfig{Spec: refSpec, PoolWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	refMatrix := sweep.BuildMatrix(refSpec, refResults)
	var refText bytes.Buffer
	if err := refMatrix.RenderText(&refText); err != nil {
		t.Fatal(err)
	}
	refJSON, err := refMatrix.JSON()
	if err != nil {
		t.Fatal(err)
	}

	mgr, ts := newTestServer(t, Config{MaxJobs: 2})
	var v JobView
	if code := do(t, "POST", ts.URL+"/v1/jobs", smallJob(), &v); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if v.Cells != 4 {
		t.Fatalf("job has %d cells, want 4", v.Cells)
	}
	done := waitState(t, ts.URL, v.ID, JobDone)
	if done.CellsDone != 4 || len(done.Digests) != 4 {
		t.Fatalf("done view: cells_done=%d digests=%d, want 4 and 4", done.CellsDone, len(done.Digests))
	}
	for i := range refResults {
		if done.Digests[i] != refResults[i].Digest {
			t.Errorf("cell %d digest diverged from the direct run:\n api   %s\n sweep %s",
				i, done.Digests[i], refResults[i].Digest)
		}
	}

	code, apiJSON := fetch(t, ts.URL+"/v1/jobs/"+v.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	code, apiText := fetch(t, ts.URL+"/v1/jobs/"+v.ID+"/result?format=text")
	if code != http.StatusOK {
		t.Fatalf("result?format=text: status %d", code)
	}
	if !bytes.Equal(apiJSON, refJSON) {
		t.Errorf("API JSON matrix diverged from the orsweep rendering:\n--- api\n%s--- direct\n%s", apiJSON, refJSON)
	}
	if !bytes.Equal(apiText, refText.Bytes()) {
		t.Errorf("API text matrix diverged from the orsweep rendering:\n--- api\n%s--- direct\n%s", apiText, refText.Bytes())
	}

	// A done job's progress endpoint renders the full matrix.
	code, progress := fetch(t, ts.URL+"/v1/jobs/"+v.ID+"/progress?format=text")
	if code != http.StatusOK || !bytes.Equal(progress, refText.Bytes()) {
		t.Errorf("done job's progress (status %d) is not the full matrix", code)
	}

	// Resubmit the identical grid — spelled as spec text this time, to
	// prove the cache keys on the expanded grid, not the wire encoding.
	textForm := &JobSpec{SpecText: strings.Join([]string{
		"loss none loss:0.3",
		"retry 0 2+adaptive",
		"shift 16",
		"seed 1",
	}, "\n")}
	var hit JobView
	if code := do(t, "POST", ts.URL+"/v1/jobs", textForm, &hit); code != http.StatusOK {
		t.Fatalf("cached resubmission: status %d, want 200", code)
	}
	if !hit.Cached || hit.State != JobDone || hit.ID == v.ID {
		t.Fatalf("resubmission not served from cache: %+v", hit)
	}
	code, cachedJSON := fetch(t, ts.URL+"/v1/jobs/"+hit.ID+"/result")
	if code != http.StatusOK || !bytes.Equal(cachedJSON, apiJSON) {
		t.Error("cached result bytes differ from the original run's")
	}
	merged := mgr.Registry().Merged()
	if n := merged.Counter(obs.CServeCacheHits); n != 1 {
		t.Errorf("serve.cache_hits = %d, want 1", n)
	}
	if n := merged.Counter(obs.CServeCompleted); n != 1 {
		t.Errorf("serve.completed = %d, want 1 (the cache hit must not re-run)", n)
	}
	// The cached job never dispatched, so it has no run registry and no
	// sim counters — the strongest evidence nothing was re-simulated.
	reg, err := mgr.JobRegistry(hit.ID)
	if err != nil {
		t.Fatal(err)
	}
	if reg != nil {
		t.Error("cache-hit job owns a run registry; was it dispatched?")
	}
}

// TestServeGoldenDigest submits core's pinned adverse-network campaign
// (2018, shift 14, stacked impairments, full retransmission machinery)
// through the HTTP API: the digest the service reports must equal the
// golden constant the core and sweep suites pin.
func TestServeGoldenDigest(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxJobs: 1})
	js := &JobSpec{
		Years: []string{"2018"},
		Loss:  []string{"ge:0.02,0.3,0.05,0.9;dup:0.05;reorder:0.1,30ms;corrupt:0.02"},
		Retry: []string{"2+adaptive+backoff"},
		Shift: 14,
		Seed:  1,
	}
	var v JobView
	if code := do(t, "POST", ts.URL+"/v1/jobs", js, &v); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	done := waitState(t, ts.URL, v.ID, JobDone)
	if len(done.Digests) != 1 || done.Digests[0] != faultGolden {
		t.Errorf("API campaign diverged from the golden digest\n got %v\nwant [%s]", done.Digests, faultGolden)
	}
}

// TestServeCancelResume drives the checkpointed-cancel path over HTTP: a
// running job cancelled mid-cell stops at a shard boundary (leaving shard
// checkpoints in the state directory), reports resumable state, and a
// resume completes it with results byte-identical to an uninterrupted run.
func TestServeCancelResume(t *testing.T) {
	refSpec, err := smallJob().Compile()
	if err != nil {
		t.Fatal(err)
	}
	refResults, err := sweep.Run(sweep.RunConfig{Spec: refSpec, PoolWorkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	refText, refJSON := renderRef(t, refSpec, refResults)

	stateDir := t.TempDir()
	_, ts := newTestServer(t, Config{MaxJobs: 1, StateDir: stateDir})
	var v JobView
	if code := do(t, "POST", ts.URL+"/v1/jobs", smallJob(), &v); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	// Cancel as soon as the first shard checkpoint lands: mid-cell,
	// between shard boundaries (the same trigger the sweep test uses).
	deadline := time.Now().Add(time.Minute)
	for {
		if m, _ := filepath.Glob(filepath.Join(stateDir, "spec-*", "ckpt-*", "shard-*.ckpt")); len(m) > 0 {
			break
		}
		var cur JobView
		do(t, "GET", ts.URL+"/v1/jobs/"+v.ID, nil, &cur)
		if cur.State == JobDone {
			t.Skip("job completed before cancellation landed")
		}
		if time.Now().After(deadline) {
			t.Fatal("no shard checkpoint appeared")
		}
		time.Sleep(200 * time.Microsecond)
	}
	var cancelled JobView
	if code := do(t, "POST", ts.URL+"/v1/jobs/"+v.ID+"/cancel", nil, &cancelled); code != http.StatusOK {
		t.Fatalf("cancel: status %d", code)
	}
	// The drain is cooperative; wait for the terminal state.
	deadline = time.Now().Add(2 * time.Minute)
	for cancelled.State == JobRunning || cancelled.State == JobQueued {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", cancelled.State)
		}
		time.Sleep(2 * time.Millisecond)
		do(t, "GET", ts.URL+"/v1/jobs/"+v.ID, nil, &cancelled)
	}
	if cancelled.State == JobDone {
		t.Skip("job outran the cancel; nothing to resume")
	}
	if cancelled.State != JobCancelled {
		t.Fatalf("cancelled job is %s, want %s", cancelled.State, JobCancelled)
	}

	// A result fetch on a cancelled job is a 409 ...
	if code, _ := fetch(t, ts.URL+"/v1/jobs/"+v.ID+"/result"); code != http.StatusConflict {
		t.Errorf("result of cancelled job: status %d, want 409", code)
	}
	// ... but progress renders the cells completed so far.
	if code, _ := fetch(t, ts.URL+"/v1/jobs/"+v.ID+"/progress"); code != http.StatusOK {
		t.Errorf("progress of cancelled job: status %d, want 200", code)
	}

	var resumed JobView
	if code := do(t, "POST", ts.URL+"/v1/jobs/"+v.ID+"/resume", nil, &resumed); code != http.StatusAccepted {
		t.Fatalf("resume: status %d", code)
	}
	done := waitState(t, ts.URL, v.ID, JobDone)
	for i := range refResults {
		if done.Digests[i] != refResults[i].Digest {
			t.Errorf("resumed cell %d digest diverged: got %s want %s", i, done.Digests[i], refResults[i].Digest)
		}
	}
	code, apiJSON := fetch(t, ts.URL+"/v1/jobs/"+v.ID+"/result")
	if code != http.StatusOK || !bytes.Equal(apiJSON, refJSON) {
		t.Error("resumed job's JSON matrix diverged from the uninterrupted run")
	}
	code, apiText := fetch(t, ts.URL+"/v1/jobs/"+v.ID+"/result?format=text")
	if code != http.StatusOK || !bytes.Equal(apiText, refText) {
		t.Error("resumed job's text matrix diverged from the uninterrupted run")
	}
	// Resuming a done job is refused.
	if code := do(t, "POST", ts.URL+"/v1/jobs/"+v.ID+"/resume", nil, nil); code != http.StatusConflict {
		t.Errorf("resume of done job: status %d, want 409", code)
	}
}

func renderRef(t *testing.T, spec *sweep.Spec, results []sweep.Result) (text, js []byte) {
	t.Helper()
	m := sweep.BuildMatrix(spec, results)
	var buf bytes.Buffer
	if err := m.RenderText(&buf); err != nil {
		t.Fatal(err)
	}
	data, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), data
}

// TestServeAdmissionAndErrors covers the HTTP error taxonomy: tenant
// admission (429), validation (400), unknown jobs (404), and per-tenant
// isolation via the X-Tenant header.
func TestServeAdmissionAndErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{
		MaxJobs: 1,
		Tenant:  TenantPolicy{MaxActive: 1},
	})

	// Distinct specs (different seeds) so dedup doesn't mask admission.
	jobN := func(seed int64) *JobSpec {
		js := smallJob()
		js.Seed = seed
		return js
	}
	submit := func(tenant string, js *JobSpec, out any) int {
		t.Helper()
		data, err := json.Marshal(js)
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if out != nil {
			json.NewDecoder(resp.Body).Decode(out)
		}
		return resp.StatusCode
	}

	var first JobView
	if code := submit("alice", jobN(11), &first); code != http.StatusAccepted {
		t.Fatalf("first submission: status %d", code)
	}
	var errBody struct {
		Error string `json:"error"`
	}
	if code := submit("alice", jobN(12), &errBody); code != http.StatusTooManyRequests {
		t.Fatalf("over-MaxActive submission: status %d, want 429", code)
	}
	if !strings.Contains(errBody.Error, "alice") {
		t.Errorf("admission error does not name the tenant: %q", errBody.Error)
	}
	// Another tenant is unaffected.
	if code := submit("bob", jobN(13), nil); code != http.StatusAccepted {
		t.Fatalf("bob's submission blocked by alice's bucket: status %d", code)
	}
	// Resubmitting alice's in-flight spec deduplicates onto the live job
	// instead of charging admission.
	var dup JobView
	if code := submit("alice", jobN(11), &dup); code != http.StatusAccepted || dup.ID != first.ID {
		t.Fatalf("in-flight dedup failed: status %d, id %s (want %s)", code, dup.ID, first.ID)
	}

	if code := submit("", &JobSpec{Years: []string{"1999"}}, &errBody); code != http.StatusBadRequest {
		t.Fatalf("invalid spec: status %d, want 400", code)
	}
	if code := do(t, "GET", ts.URL+"/v1/jobs/j999999", nil, nil); code != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", code)
	}
	if code := do(t, "POST", ts.URL+"/v1/jobs/j999999/cancel", nil, nil); code != http.StatusNotFound {
		t.Fatalf("cancel of unknown job: status %d, want 404", code)
	}

	// List shows every submission in order.
	var list struct {
		Jobs []JobView `json:"jobs"`
	}
	if code := do(t, "GET", ts.URL+"/v1/jobs", nil, &list); code != http.StatusOK || len(list.Jobs) != 2 {
		t.Fatalf("list: status %d, %d jobs (want 2)", code, len(list.Jobs))
	}
}

// TestServeDrain pins graceful shutdown: Drain cancels running jobs at a
// shard boundary, refuses new submissions and resumes with 503, and
// /healthz reports the draining flag.
func TestServeDrain(t *testing.T) {
	mgr, ts := newTestServer(t, Config{MaxJobs: 1})
	var v JobView
	if code := do(t, "POST", ts.URL+"/v1/jobs", smallJob(), &v); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	mgr.Drain() // blocks until the job lands (cancelled or already done)

	got, err := mgr.Get(v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != JobCancelled && got.State != JobDone {
		t.Errorf("after drain job is %s, want cancelled or done", got.State)
	}
	if code := do(t, "POST", ts.URL+"/v1/jobs", &JobSpec{Years: []string{"2013"}, Shift: 16}, nil); code != http.StatusServiceUnavailable {
		t.Errorf("submission while draining: status %d, want 503", code)
	}
	if got.State == JobCancelled {
		if code := do(t, "POST", ts.URL+"/v1/jobs/"+v.ID+"/resume", nil, nil); code != http.StatusServiceUnavailable {
			t.Errorf("resume while draining: status %d, want 503", code)
		}
	}
	var health struct {
		OK       bool `json:"ok"`
		Draining bool `json:"draining"`
	}
	if code := do(t, "GET", ts.URL+"/healthz", nil, &health); code != http.StatusOK || !health.Draining {
		t.Errorf("healthz while draining: status %d, draining=%v", code, health.Draining)
	}
}

// TestServeProgressAndMetrics watches a running job from the outside: the
// progress endpoint renders partial matrices (cells completed so far, in
// grid order) and the per-job metrics endpoint serves a consistent mid-run
// snapshot from the job's private registry.
func TestServeProgressAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxJobs: 1})
	var v JobView
	if code := do(t, "POST", ts.URL+"/v1/jobs", smallJob(), &v); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	// Progress must be well-formed at every moment of the job's life,
	// empty grid included.
	sawPartial := false
	for i := 0; i < 10000; i++ {
		var cur JobView
		do(t, "GET", ts.URL+"/v1/jobs/"+v.ID, nil, &cur)
		code, body := fetch(t, ts.URL+"/v1/jobs/"+v.ID+"/progress")
		if code != http.StatusOK {
			t.Fatalf("progress: status %d", code)
		}
		var matrix struct {
			Cells []json.RawMessage `json:"cells"`
		}
		if err := json.Unmarshal(body, &matrix); err != nil {
			t.Fatalf("progress is not matrix JSON: %v\n%s", err, body)
		}
		if n := len(matrix.Cells); n > 0 && n < 4 {
			sawPartial = true
		}
		if cur.State == JobDone {
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	_ = sawPartial // timing-dependent; the assertions above are the contract

	done := waitState(t, ts.URL, v.ID, JobDone)
	if done.CellsDone != 4 {
		t.Fatalf("cells_done = %d, want 4", done.CellsDone)
	}
	// The job's private registry carries the campaign counters.
	code, body := fetch(t, ts.URL+"/v1/jobs/"+v.ID+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("job metrics: status %d", code)
	}
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("job metrics is not a snapshot: %v", err)
	}
	if snap.Counters["probe.sent"] == 0 {
		t.Errorf("job registry reports no probes sent: %v", snap.Counters)
	}
	// The daemon registry carries the serve.* counters.
	code, body = fetch(t, ts.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("daemon metrics: status %d", code)
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["serve.completed"] != 1 || snap.Counters["serve.cells_done"] != 4 {
		t.Errorf("daemon counters off: completed=%d cells_done=%d, want 1 and 4",
			snap.Counters["serve.completed"], snap.Counters["serve.cells_done"])
	}
}

// TestSpecDirReuse pins the durability property: a second manager over the
// same state directory serves a previously-completed spec by loading its
// cell artifacts rather than re-simulating (every cell reports Resumed via
// the sweep log), and the resulting bytes match the first run's.
func TestSpecDirReuse(t *testing.T) {
	stateDir := t.TempDir()
	_, ts1 := newTestServer(t, Config{MaxJobs: 1, StateDir: stateDir})
	var v1 JobView
	if code := do(t, "POST", ts1.URL+"/v1/jobs", smallJob(), &v1); code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	waitState(t, ts1.URL, v1.ID, JobDone)
	_, firstJSON := fetch(t, ts1.URL+"/v1/jobs/"+v1.ID+"/result")

	// A new daemon process: empty cache, same state directory.
	var log bytes.Buffer
	_, ts2 := newTestServer(t, Config{MaxJobs: 1, StateDir: stateDir, Log: &log})
	var v2 JobView
	if code := do(t, "POST", ts2.URL+"/v1/jobs", smallJob(), &v2); code != http.StatusAccepted {
		t.Fatalf("resubmit on restart: status %d (cache must be cold, so 202)", code)
	}
	waitState(t, ts2.URL, v2.ID, JobDone)
	_, secondJSON := fetch(t, ts2.URL+"/v1/jobs/"+v2.ID+"/result")
	if !bytes.Equal(firstJSON, secondJSON) {
		t.Error("restarted daemon produced different bytes for the same spec")
	}
	if n := strings.Count(log.String(), "resumed from artifact"); n != 4 {
		t.Errorf("restarted daemon loaded %d cells from artifacts, want 4\n%s", n, log.String())
	}
}

// TestSpecKeyPrefixIsDirSafe guards the state-directory naming assumption.
func TestSpecKeyPrefixIsDirSafe(t *testing.T) {
	spec, err := smallJob().Compile()
	if err != nil {
		t.Fatal(err)
	}
	key, err := SpecKey(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(key) != 64 {
		t.Fatalf("spec key %q is not a sha256 hex string", key)
	}
	for _, r := range key {
		if !strings.ContainsRune("0123456789abcdef", r) {
			t.Fatalf("spec key %q contains non-hex rune %q", key, r)
		}
	}
	_ = fmt.Sprintf("spec-%s", key[:16])
}
