// Package serve is the resolver-observatory service daemon behind
// cmd/orserved: a multi-tenant HTTP/JSON API that turns the batch campaign
// and sweep engines (internal/core, internal/sweep) into a long-running
// spec-driven service. Clients submit the same declarative grid specs
// orsweep runs, the manager executes them as concurrent bounded jobs over
// a shared worker budget, progress and partial result matrices stream from
// the per-job observability registries mid-run, jobs cancel and resume
// through core.Config.Ctx and the shard checkpoint store, and completed
// results are content-address-cached by their spec key so an identical
// (spec, seed) submission returns instantly without re-simulation. A job
// run through the API produces byte-identical result tables to the same
// spec run through orsweep — the golden test in golden_test.go pins it
// (DESIGN.md §14, API.md).
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"openresolver/internal/sweep"
)

// JobSpec is the wire form of a sweep spec: the body of POST /v1/jobs.
// Axes and scalars mirror orsweep's flags and reuse internal/sweep's
// parsers and validation, so anything orsweep accepts on its command line
// is expressible here. Alternatively SpecText carries a complete spec file
// in the sweep.ParseSpecFile grammar; explicit axis and scalar fields then
// override it, exactly like orsweep's flags override -spec.
type JobSpec struct {
	// SpecText, when non-empty, is a whole spec file (one directive per
	// line, '#' comments — the orsweep -spec grammar).
	SpecText string `json:"spec_text,omitempty"`

	// Axis values, each parsed by the same grammar as the orsweep flag of
	// the same name. Non-empty fields override the SpecText axis.
	Years       []string `json:"years,omitempty"`        // "2013", "2018", fractional "2015.5"
	Loss        []string `json:"loss,omitempty"`         // "none" or a netsim impairment spec
	Retry       []string `json:"retry,omitempty"`        // "<budget>[+adaptive][+backoff]"
	CellWorkers []int    `json:"cell_workers,omitempty"` // per-campaign worker axis

	// Scalars shared by every cell; zero values take the sweep defaults
	// (mode sim, shift 14, seed 1, paper pps, 2^21 max events). Non-zero
	// fields override the SpecText scalar.
	Mode      string `json:"mode,omitempty"`
	Shift     uint8  `json:"shift,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	PPS       uint64 `json:"pps,omitempty"`
	MaxEvents int    `json:"max_events,omitempty"`
}

// Compile turns the wire spec into a validated sweep.Spec, expanding the
// grid once to surface every validation error (unknown axis values,
// duplicate cells, synth-mode network axes) at submission time rather than
// inside the job.
func (js *JobSpec) Compile() (*sweep.Spec, error) {
	s := &sweep.Spec{}
	if js.SpecText != "" {
		parsed, err := sweep.ParseSpecFile(strings.NewReader(js.SpecText))
		if err != nil {
			return nil, err
		}
		s = parsed
	}
	if len(js.Years) > 0 {
		s.Years = nil
		for _, v := range js.Years {
			y, err := sweep.ParseYear(v)
			if err != nil {
				return nil, err
			}
			s.Years = append(s.Years, y)
		}
	}
	if len(js.Loss) > 0 {
		s.Loss = nil
		for _, v := range js.Loss {
			l, err := sweep.ParseLoss(v)
			if err != nil {
				return nil, err
			}
			s.Loss = append(s.Loss, l)
		}
	}
	if len(js.Retry) > 0 {
		s.Retry = nil
		for _, v := range js.Retry {
			p, err := sweep.ParseRetryPolicy(v)
			if err != nil {
				return nil, err
			}
			s.Retry = append(s.Retry, p)
		}
	}
	if len(js.CellWorkers) > 0 {
		s.Workers = nil
		for _, w := range js.CellWorkers {
			if w < 0 {
				return nil, fmt.Errorf("serve: cell_workers %d is negative", w)
			}
			s.Workers = append(s.Workers, w)
		}
	}
	if js.Mode != "" {
		s.Mode = js.Mode
	}
	if js.Shift != 0 {
		s.Shift = js.Shift
	}
	if js.Seed != 0 {
		s.Seed = js.Seed
	}
	if js.PPS != 0 {
		s.PPS = js.PPS
	}
	if js.MaxEvents != 0 {
		s.MaxEvents = js.MaxEvents
	}
	if _, err := s.Cells(); err != nil {
		return nil, err
	}
	return s, nil
}

// SpecKey is the canonical content address of a compiled spec: a sha256
// over the normalized shared scalars and every expanded cell key in grid
// order. Two submissions that expand to the same grid — however they were
// spelled (spec text vs fields, defaulted vs explicit values) — collide on
// the key, which is what lets the digest cache serve a repeat of an
// identical (spec, seed) submission without re-simulation. Campaign output
// is a pure function of exactly the fields hashed here (worker counts are
// part of the grid key only because they are an axis of the matrix
// rendering; the campaign bytes themselves are worker-invariant).
func SpecKey(s *sweep.Spec) (string, error) {
	cells, err := s.Cells()
	if err != nil {
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "mode=%s shift=%d seed=%d pps=%d max-events=%d\n",
		s.Mode, s.Shift, s.Seed, s.PPS, s.MaxEvents)
	for _, c := range cells {
		fmt.Fprintln(h, c.Key())
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
