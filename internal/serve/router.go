package serve

import (
	"encoding/json"
	"errors"
	"net/http"

	"openresolver/internal/obs"
)

// NewHandler builds the daemon's HTTP API over a manager. Routes use Go
// 1.22 method+path patterns; scripts/doccheck cross-checks the string
// literals below against the route table in API.md, so the two cannot
// drift apart silently. Tenancy is declared per request with the X-Tenant
// header (absent means tenant "default"); errors are {"error": "..."}
// JSON with a status from the manager's error taxonomy.
func NewHandler(m *Manager) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"ok":       true,
			"draining": m.Draining(),
		})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		var js JobSpec
		if err := json.NewDecoder(r.Body).Decode(&js); err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		v, err := m.Submit(r.Header.Get("X-Tenant"), &js)
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		// A digest-cache hit is born done and returns 200 with the final
		// view; a fresh or deduplicated submission is accepted as 202.
		status := http.StatusAccepted
		if v.State == JobDone {
			status = http.StatusOK
		}
		writeJSON(w, status, v)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"jobs": m.List()})
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, err := m.Get(r.PathValue("id"))
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		js, txt, err := m.Result(r.PathValue("id"))
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		// ?format=text returns the orsweep terminal rendering; the default
		// is the matrix JSON. Both are the stored run's bytes verbatim.
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			w.Write(txt)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(js)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/progress", func(w http.ResponseWriter, r *http.Request) {
		matrix, err := m.Progress(r.PathValue("id"))
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			matrix.RenderText(w)
			return
		}
		js, err := matrix.JSON()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(js)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/metrics", func(w http.ResponseWriter, r *http.Request) {
		reg, err := m.JobRegistry(r.PathValue("id"))
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		// The per-job registry reuses the obs snapshot/merge path, so a
		// running job serves a consistent mid-run snapshot of its campaign
		// counters (JSON or OpenMetrics by Accept header). A nil registry
		// (job never dispatched) renders as an empty snapshot.
		obs.MetricsHandler(reg).ServeHTTP(w, r)
	})
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		v, err := m.Cancel(r.PathValue("id"))
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, v)
	})
	mux.HandleFunc("POST /v1/jobs/{id}/resume", func(w http.ResponseWriter, r *http.Request) {
		v, err := m.Resume(r.PathValue("id"))
		if err != nil {
			writeErr(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusAccepted, v)
	})
	mux.Handle("GET /metrics", obs.MetricsHandler(m.Registry()))
	mux.Handle("GET /debug/", obs.DebugHandler())
	return mux
}

// statusFor maps the manager's error taxonomy onto HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrAdmission):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrNotDone), errors.Is(err, ErrNotResumable):
		return http.StatusConflict
	default:
		return http.StatusBadRequest // spec validation errors
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
