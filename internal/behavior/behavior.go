// Package behavior implements the resolver behaviour profiles the
// measurement observes in the wild. Every simulated host that answers the
// prober is a Resolver with a Profile describing exactly how it deviates
// from (or conforms to) RFC 1035: which RA/AA bits it sets, what rcode it
// returns, whether it really performs recursion (generating the Q2/R1
// flows at the authoritative server), and what it puts in the answer
// section — the ground truth, a fixed wrong address, a URL-shaped CNAME, a
// garbage TXT string, malformed RDATA, or nothing at all.
//
// The paper's taxonomy maps onto profiles as:
//   - honest open resolver:      Upstream≥1, AnswerTruth, RA=1
//   - RA0-but-answers (§IV-B1):  AnswerTruth/Fixed with RA=0
//   - AA1-claimer (§IV-B2):      AA=1 on a non-authoritative answer
//   - wrong-rcode (§IV-B3):      answer present with nonzero rcode, or
//     NoError with no answer
//   - manipulator (§IV-C):       Upstream=0, AnswerFixed to a malicious or
//     arbitrary address ("predetermined answer ... for every query")
//   - empty-question (§IV-B4):   OmitQuestion
//   - refuser/servfail/silent:   the no-answer population
package behavior

import (
	"strings"

	"openresolver/internal/dnssrv"
	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
)

// AnswerKind selects what a profile places in the answer section.
type AnswerKind uint8

// Answer kinds.
const (
	// AnswerNone leaves the answer section empty.
	AnswerNone AnswerKind = iota + 1
	// AnswerTruth returns the genuinely resolved address (requires
	// Upstream ≥ 1) — the honest behaviour.
	AnswerTruth
	// AnswerFixed returns Addr regardless of the question — the
	// manipulation behaviour (Table VII's IP form).
	AnswerFixed
	// AnswerCNAME returns a CNAME to Name (Table VII's URL form).
	AnswerCNAME
	// AnswerTXT returns a TXT record containing Name (Table VII's string
	// form).
	AnswerTXT
	// AnswerMalformed returns an A record with undecodable RDATA (Table
	// VII's 2013 N/A form).
	AnswerMalformed
)

// Profile is a complete description of one resolver's response behaviour.
type Profile struct {
	// RA and AA are the header bits the resolver sets on its responses.
	RA, AA bool
	// Rcode is the response code it reports.
	Rcode dnswire.Rcode
	// Answer selects the answer-section content.
	Answer AnswerKind
	// Addr is the fixed answer address for AnswerFixed.
	Addr ipv4.Addr
	// Name is the CNAME target or TXT payload.
	Name string
	// OmitQuestion drops the question section from the response (§IV-B4).
	OmitQuestion bool
	// Upstream is the number of duplicate authoritative-leg queries the
	// resolver issues per probe; 0 means it never contacts the hierarchy.
	Upstream int
	// Version is the software banner returned for version.bind CH TXT
	// queries (the fingerprinting probe of Takano et al., the paper's
	// reference [8]); empty means the resolver refuses the query.
	Version string
	// ForwardTo, when nonzero, makes the host a forwarder (the CPE-proxy
	// population Schomp et al. distinguish from true recursives, paper
	// §VI): queries are relayed to the upstream resolver and its answers
	// relayed back verbatim. Answer and Upstream are ignored.
	ForwardTo ipv4.Addr
}

// Resolver is a netsim host executing a Profile. One Resolver serves one
// simulated IP address.
type Resolver struct {
	profile  Profile
	rootAddr ipv4.Addr
	rec      *dnssrv.Recursive

	// Forwarder state: upstream query ID → original client.
	fwdPending map[uint16]fwdClient
	fwdNextID  uint16

	// Steady-state scratch. rmsg is the inbound decode target; qmsg and
	// respMsg rebuild the query and response on the answer path. A deferred
	// recursion callback must not read rmsg (later packets decode over it),
	// which is why the query is captured by value as a qinfo instead.
	rmsg    dnswire.Message
	qmsg    dnswire.Message
	respMsg dnswire.Message

	// Queries and Responses count probe-side traffic (Q1 in, R2 out).
	Queries   uint64
	Responses uint64
	// ForwardDrops counts queries dropped because the forwarding table was
	// full (the safety valve against forwarding loops).
	ForwardDrops uint64
}

type fwdClient struct {
	id               uint16
	src              ipv4.Addr
	srcPort, dstPort uint16
}

// qinfo is the by-value capture of an inbound query: everything respond
// needs to build the R2 once recursion completes, safe to hold across
// events while the decode scratch is reused.
type qinfo struct {
	id     uint16
	rd     bool
	hasQ   bool
	name   string
	qtype  dnswire.Type
	qclass dnswire.Class
	src    ipv4.Addr
	// reply ports: R2 goes out (dstPort → srcPort) of the query datagram.
	srcPort, dstPort uint16
}

func captureQuery(msg *dnswire.Message, dg netsim.Datagram) qinfo {
	qi := qinfo{
		id: msg.Header.ID, rd: msg.Header.RD,
		src: dg.Src, srcPort: dg.SrcPort, dstPort: dg.DstPort,
	}
	if q, ok := msg.Question1(); ok {
		qi.hasQ, qi.name, qi.qtype, qi.qclass = true, q.Name, q.Type, q.Class
	}
	return qi
}

// maxForwardPending bounds the forwarding table; a forwarding loop fills
// it and further queries are dropped instead of circulating forever.
const maxForwardPending = 64

// NewResolver registers a resolver with profile at addr. rootAddr points the
// recursion engine at the hierarchy (only used when profile.Upstream > 0).
func NewResolver(sim *netsim.Sim, addr ipv4.Addr, rootAddr ipv4.Addr, profile Profile) *Resolver {
	return NewResolverTuned(sim, addr, rootAddr, profile, nil)
}

// NewResolverTuned is NewResolver with a hook to adjust the recursion
// engine's knobs (retry backoff, jitter, timeouts) before the resolver goes
// live — how a fault-injected campaign hardens its whole population. tune
// is only called for profiles that actually embed an engine; nil leaves
// the defaults.
func NewResolverTuned(sim *netsim.Sim, addr ipv4.Addr, rootAddr ipv4.Addr, profile Profile, tune func(*dnssrv.Recursive)) *Resolver {
	r := &Resolver{profile: profile, rootAddr: rootAddr}
	node := sim.Register(addr, r)
	if profile.Upstream > 0 {
		r.rec = dnssrv.NewRecursive(node, rootAddr)
		r.rec.DupQueries = profile.Upstream
		if tune != nil {
			tune(r.rec)
		}
	}
	return r
}

// Profile returns the resolver's behaviour profile.
func (r *Resolver) Profile() Profile { return r.profile }

// CacheStats returns the recursion engine's answer-cache hits and the
// resolutions that went upstream; both are zero for profiles that never
// resolve.
func (r *Resolver) CacheStats() (hits, upstream uint64) {
	if r.rec == nil {
		return 0, 0
	}
	return r.rec.CacheHits, r.rec.Resolutions - r.rec.CacheHits
}

// HandleDatagram implements netsim.Host. Decoding reuses the resolver's
// scratch message; every consumer below either finishes with it
// synchronously or captures what it needs by value.
func (r *Resolver) HandleDatagram(n *netsim.Node, dg netsim.Datagram) {
	msg := &r.rmsg
	if err := dnswire.UnpackInto(msg, dg.Payload); err != nil {
		return
	}
	if msg.Header.QR {
		// An upstream response: recursion engine first, then the
		// forwarding table. Both consume msg before returning.
		if r.rec != nil && r.rec.HandleResponse(msg) {
			return
		}
		r.relayBack(n, msg)
		return
	}
	r.Queries++
	if q, ok := msg.Question1(); ok && q.Class == dnswire.ClassCH {
		r.respondVersion(n, dg, msg, q)
		return
	}
	if r.profile.ForwardTo != 0 {
		r.forward(n, dg, msg)
		return
	}
	qi := captureQuery(msg, dg)
	if r.profile.Upstream > 0 {
		// The callback may fire now (cache hit) or events later, after the
		// scratch has been re-decoded — it reads only the qinfo capture.
		// The captured name aliases the decode arena (dnswire.UnpackInto),
		// so the deferred path must pin its own copy.
		qi.name = strings.Clone(qi.name)
		r.rec.Resolve(qi.name, func(res dnssrv.Result) {
			r.respond(n, qi, res)
		})
		return
	}
	r.respond(n, qi, dnssrv.Result{})
}

// forward relays the query to the configured upstream under a fresh ID.
func (r *Resolver) forward(n *netsim.Node, dg netsim.Datagram, msg *dnswire.Message) {
	if r.fwdPending == nil {
		r.fwdPending = make(map[uint16]fwdClient)
	}
	if len(r.fwdPending) >= maxForwardPending {
		r.ForwardDrops++
		return
	}
	r.fwdNextID++
	if r.fwdNextID == 0 {
		r.fwdNextID = 1
	}
	upstreamID := r.fwdNextID
	r.fwdPending[upstreamID] = fwdClient{
		id: msg.Header.ID, src: dg.Src, srcPort: dg.SrcPort, dstPort: dg.DstPort,
	}
	fwd := *msg
	fwd.Header.ID = upstreamID
	wire, err := fwd.Pack()
	if err != nil {
		return
	}
	n.Send(r.profile.ForwardTo, dg.DstPort, dnssrv.DNSPort, wire)
}

// relayBack returns an upstream answer to the original client verbatim
// (only the transaction ID is restored) — the behaviour of a dumb CPE
// proxy, which is exactly why upstream flag deviations propagate to
// clients unchanged.
func (r *Resolver) relayBack(n *netsim.Node, msg *dnswire.Message) {
	client, ok := r.fwdPending[msg.Header.ID]
	if !ok {
		return
	}
	delete(r.fwdPending, msg.Header.ID)
	relay := *msg
	relay.Header.ID = client.id
	wire, err := relay.Pack()
	if err != nil {
		return
	}
	r.Responses++
	n.Send(client.src, client.dstPort, client.srcPort, wire)
}

// respondVersion answers a CHAOS-class query: version.bind (and the
// version.server alias) returns the software banner when the profile
// exposes one; everything else in class CH is refused, matching common
// resolver configurations.
func (r *Resolver) respondVersion(n *netsim.Node, dg netsim.Datagram, msg *dnswire.Message, q dnswire.Question) {
	resp := dnswire.NewResponse(msg)
	name := q.Name
	exposes := r.profile.Version != "" &&
		(name == "version.bind" || name == "version.server") &&
		(q.Type == dnswire.TypeTXT || q.Type == dnswire.TypeANY)
	if exposes {
		resp.Header.AA = true
		resp.Answers = append(resp.Answers, dnswire.RR{
			Name: name, Type: dnswire.TypeTXT, Class: dnswire.ClassCH,
			TTL: 0, Target: r.profile.Version,
		})
	} else {
		resp.Header.Rcode = dnswire.RcodeRefused
	}
	wire, err := resp.Pack()
	if err != nil {
		return
	}
	r.Responses++
	n.Send(dg.Src, dg.DstPort, dg.SrcPort, wire)
}

// respond builds and sends the R2 according to the profile. The query is
// reassembled from its qinfo capture into scratch, the response encoded
// into a pooled payload buffer; the emitted bytes are identical to the
// allocating BuildResponse(q, …).Pack() path for single-question queries
// (which all probe traffic is).
func (r *Resolver) respond(n *netsim.Node, qi qinfo, res dnssrv.Result) {
	r.qmsg.Header = dnswire.Header{ID: qi.id, RD: qi.rd}
	r.qmsg.Questions = r.qmsg.Questions[:0]
	if qi.hasQ {
		r.qmsg.Questions = append(r.qmsg.Questions,
			dnswire.Question{Name: qi.name, Type: qi.qtype, Class: qi.qclass})
	}
	BuildResponseInto(&r.respMsg, &r.qmsg, r.profile, res)
	wire, err := r.respMsg.Append(n.PayloadBuf())
	if err != nil {
		return
	}
	r.Responses++
	n.SendPooled(qi.src, qi.dstPort, qi.srcPort, wire)
}

// BuildResponse constructs the R2 message a profile produces for query q,
// given the recursion result res (zero Result when Upstream is 0). It is
// shared by the discrete-event Resolver and the streaming synthetic mode,
// guaranteeing both modes emit byte-identical behaviour.
func BuildResponse(q *dnswire.Message, p Profile, res dnssrv.Result) *dnswire.Message {
	resp := new(dnswire.Message)
	BuildResponseInto(resp, q, p, res)
	return resp
}

// malformedRDATA is the undecodable A-record payload of AnswerMalformed.
// Shared and read-only: the encoder only ever reads RR.Data.
var malformedRDATA = []byte{0x00, 0x00}

// BuildResponseInto is BuildResponse writing into resp, whose section
// slices are reused across calls — the synthetic engine's per-probe path
// builds millions of responses through one scratch message per worker.
// resp must not alias q and must not be read after a subsequent call.
// The encoded bytes are identical to BuildResponse's (an omitted question
// section is length-0 rather than nil, which encodes the same).
func BuildResponseInto(resp *dnswire.Message, q *dnswire.Message, p Profile, res dnssrv.Result) {
	resp.Header = dnswire.Header{ID: q.Header.ID, QR: true, RD: q.Header.RD}
	resp.Questions = append(resp.Questions[:0], q.Questions...)
	resp.Answers = resp.Answers[:0]
	resp.Authority = resp.Authority[:0]
	resp.Additional = resp.Additional[:0]
	resp.Header.RA = p.RA
	resp.Header.AA = p.AA
	resp.Header.Rcode = p.Rcode
	if p.OmitQuestion {
		resp.Questions = resp.Questions[:0]
	}
	qname := ""
	if qst, ok := q.Question1(); ok {
		qname = qst.Name
	}
	switch p.Answer {
	case AnswerNone:
	case AnswerTruth:
		if res.OK {
			resp.AnswerA(uint32(res.Addr), 60)
		} else {
			// Recursion failed under an honest profile: report the failure
			// honestly (this happens around cluster-reload windows).
			resp.Header.Rcode = dnswire.RcodeServFail
		}
	case AnswerFixed:
		resp.AnswerA(uint32(p.Addr), 300)
	case AnswerCNAME:
		resp.Answers = append(resp.Answers, dnswire.RR{
			Name: qname, Type: dnswire.TypeCNAME, Class: dnswire.ClassIN,
			TTL: 300, Target: p.Name,
		})
	case AnswerTXT:
		resp.Answers = append(resp.Answers, dnswire.RR{
			Name: qname, Type: dnswire.TypeTXT, Class: dnswire.ClassIN,
			TTL: 300, Target: p.Name,
		})
	case AnswerMalformed:
		resp.Answers = append(resp.Answers, dnswire.RR{
			Name: qname, Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: 300, Data: malformedRDATA,
		})
	}
}

// Canned profile constructors for the taxonomy's common cases. The
// population compiler builds most profiles field-by-field; these are the
// named behaviours used in examples and tests.

// Honest returns a conforming open resolver: recursion on, RA set, truthful
// answers.
func Honest(upstream int) Profile {
	if upstream < 1 {
		upstream = 1
	}
	return Profile{RA: true, Answer: AnswerTruth, Upstream: upstream}
}

// Refuser returns a resolver that answers Refused with recursion
// unavailable — the single largest behaviour class in both campaigns.
func Refuser() Profile {
	return Profile{Rcode: dnswire.RcodeRefused, Answer: AnswerNone}
}

// Manipulator returns a resolver that redirects every query to addr without
// performing any resolution, with the flag pattern Table X found dominant
// (RA=0, AA=1, NoError).
func Manipulator(addr ipv4.Addr) Profile {
	return Profile{AA: true, Answer: AnswerFixed, Addr: addr}
}

// Forwarder returns a CPE-style proxy that relays queries to upstream and
// answers back verbatim.
func Forwarder(upstream ipv4.Addr) Profile {
	return Profile{ForwardTo: upstream}
}

// LyingRA returns the §IV-B1 deviant: it answers correctly but claims
// recursion unavailable.
func LyingRA(upstream int) Profile {
	if upstream < 1 {
		upstream = 1
	}
	return Profile{RA: false, Answer: AnswerTruth, Upstream: upstream}
}
