package behavior

import (
	"testing"
	"testing/quick"
	"time"

	"openresolver/internal/dnssrv"
	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
)

var (
	rootAddr   = ipv4.MustParseAddr("198.41.0.4")
	tldAddr    = ipv4.MustParseAddr("192.5.6.30")
	authAddr   = ipv4.MustParseAddr("45.76.1.10")
	resvAddr   = ipv4.MustParseAddr("66.10.20.30")
	proberAddr = ipv4.MustParseAddr("132.170.1.1")
)

const testSLD = "ucfsealresearch.net"

func buildWorld(t *testing.T) *netsim.Sim {
	t.Helper()
	sim := netsim.New(netsim.Config{Seed: 1, Latency: netsim.ConstantLatency(5 * time.Millisecond)})
	dnssrv.NewReferralServer(sim, rootAddr, []dnssrv.Referral{
		{Zone: "net", NSName: "a.gtld-servers.net", Addr: tldAddr},
	})
	dnssrv.NewReferralServer(sim, tldAddr, []dnssrv.Referral{
		{Zone: testSLD, NSName: "ns1." + testSLD, Addr: authAddr},
	})
	dnssrv.NewAuthServer(sim, dnssrv.AuthConfig{
		Addr: authAddr, SLD: testSLD, ClusterSize: 1000,
	})
	return sim
}

// probe sends one query to the resolver and returns the decoded response.
func probe(t *testing.T, sim *netsim.Sim, qname string) *dnswire.Message {
	t.Helper()
	var got *dnswire.Message
	prober := sim.Register(proberAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		got, _ = dnswire.Unpack(dg.Payload)
	}))
	q := dnswire.NewQuery(77, qname, dnswire.TypeA)
	prober.Send(resvAddr, 40000, dnssrv.DNSPort, q.MustPack())
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	return got
}

func TestHonestResolver(t *testing.T) {
	sim := buildWorld(t)
	r := NewResolver(sim, resvAddr, rootAddr, Honest(1))
	qname := dnssrv.FormatProbeName(0, 7, testSLD)
	got := probe(t, sim, qname)
	if got == nil {
		t.Fatal("no R2")
	}
	if !got.Header.QR || !got.Header.RA || got.Header.AA {
		t.Errorf("header = %+v", got.Header)
	}
	if got.Header.Rcode != dnswire.RcodeNoError {
		t.Errorf("rcode = %v", got.Header.Rcode)
	}
	a, ok := got.FirstA()
	if !ok || ipv4.Addr(a) != dnssrv.TruthAddr(qname) {
		t.Errorf("answer = %#x, want truth %v", a, dnssrv.TruthAddr(qname))
	}
	if q, ok := got.Question1(); !ok || q.Name != qname {
		t.Errorf("question echoed wrong: %v", got.Questions)
	}
	if r.Queries != 1 || r.Responses != 1 {
		t.Errorf("counters: %d/%d", r.Queries, r.Responses)
	}
}

func TestManipulatorNoUpstream(t *testing.T) {
	sim := buildWorld(t)
	evil := ipv4.MustParseAddr("208.91.197.91")
	NewResolver(sim, resvAddr, rootAddr, Manipulator(evil))
	before := sim.Stats().Sent
	qname := dnssrv.FormatProbeName(0, 8, testSLD)
	got := probe(t, sim, qname)
	if got == nil {
		t.Fatal("no R2")
	}
	a, ok := got.FirstA()
	if !ok || ipv4.Addr(a) != evil {
		t.Errorf("answer = %#x, want %v", a, evil)
	}
	if !got.Header.AA || got.Header.RA {
		t.Errorf("flags = %+v, want AA=1 RA=0 (Table X dominant pattern)", got.Header)
	}
	if got.Header.Rcode != dnswire.RcodeNoError {
		t.Errorf("rcode = %v, want NoError (§IV-C3)", got.Header.Rcode)
	}
	// Exactly two packets: Q1 in, R2 out — no hierarchy contact.
	if sent := sim.Stats().Sent - before; sent != 2 {
		t.Errorf("packets = %d, want 2 (no upstream)", sent)
	}
}

func TestLyingRAStillResolves(t *testing.T) {
	sim := buildWorld(t)
	NewResolver(sim, resvAddr, rootAddr, LyingRA(1))
	qname := dnssrv.FormatProbeName(0, 9, testSLD)
	got := probe(t, sim, qname)
	if got == nil {
		t.Fatal("no R2")
	}
	if got.Header.RA {
		t.Error("RA set; profile lies with RA=0")
	}
	a, ok := got.FirstA()
	if !ok || ipv4.Addr(a) != dnssrv.TruthAddr(qname) {
		t.Errorf("answer = %#x, want truth", a)
	}
}

func TestRefuser(t *testing.T) {
	sim := buildWorld(t)
	NewResolver(sim, resvAddr, rootAddr, Refuser())
	got := probe(t, sim, dnssrv.FormatProbeName(0, 10, testSLD))
	if got == nil {
		t.Fatal("no R2")
	}
	if got.Header.Rcode != dnswire.RcodeRefused || len(got.Answers) != 0 {
		t.Errorf("response = %v", got)
	}
}

func TestEmptyQuestionProfile(t *testing.T) {
	sim := buildWorld(t)
	NewResolver(sim, resvAddr, rootAddr, Profile{
		Rcode: dnswire.RcodeServFail, Answer: AnswerNone, OmitQuestion: true,
	})
	got := probe(t, sim, dnssrv.FormatProbeName(0, 11, testSLD))
	if got == nil {
		t.Fatal("no R2")
	}
	if len(got.Questions) != 0 {
		t.Errorf("question section present: %v", got.Questions)
	}
	if got.Header.Rcode != dnswire.RcodeServFail {
		t.Errorf("rcode = %v", got.Header.Rcode)
	}
}

func TestAnswerForms(t *testing.T) {
	qname := dnssrv.FormatProbeName(0, 12, testSLD)
	q := dnswire.NewQuery(5, qname, dnswire.TypeA)

	t.Run("cname-url-form", func(t *testing.T) {
		resp := BuildResponse(q, Profile{RA: true, Answer: AnswerCNAME, Name: "u.dcoin.co"}, dnssrv.Result{})
		if len(resp.Answers) != 1 || resp.Answers[0].Type != dnswire.TypeCNAME {
			t.Fatalf("answers = %v", resp.Answers)
		}
		if resp.Answers[0].Target != "u.dcoin.co" {
			t.Errorf("target = %q", resp.Answers[0].Target)
		}
	})
	t.Run("txt-string-form", func(t *testing.T) {
		resp := BuildResponse(q, Profile{Answer: AnswerTXT, Name: "wild"}, dnssrv.Result{})
		wire := resp.MustPack()
		back, err := dnswire.Unpack(wire)
		if err != nil {
			t.Fatal(err)
		}
		if back.Answers[0].Type != dnswire.TypeTXT || back.Answers[0].Target != "wild" {
			t.Errorf("answers = %+v", back.Answers)
		}
	})
	t.Run("malformed-na-form", func(t *testing.T) {
		resp := BuildResponse(q, Profile{Answer: AnswerMalformed}, dnssrv.Result{})
		wire := resp.MustPack()
		back, err := dnswire.Unpack(wire)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Answers[0].Malformed {
			t.Error("answer not malformed after round trip")
		}
	})
	t.Run("honest-failure-reports-servfail", func(t *testing.T) {
		resp := BuildResponse(q, Honest(1), dnssrv.Result{OK: false})
		if resp.Header.Rcode != dnswire.RcodeServFail || len(resp.Answers) != 0 {
			t.Errorf("resp = %v", resp)
		}
	})
}

func TestWrongRcodeWithAnswer(t *testing.T) {
	// §IV-B3: answers carrying a nonzero rcode.
	sim := buildWorld(t)
	NewResolver(sim, resvAddr, rootAddr, Profile{
		RA: true, Rcode: dnswire.RcodeServFail,
		Answer: AnswerFixed, Addr: ipv4.MustParseAddr("216.194.64.193"),
	})
	got := probe(t, sim, dnssrv.FormatProbeName(0, 13, testSLD))
	if got == nil {
		t.Fatal("no R2")
	}
	if got.Header.Rcode != dnswire.RcodeServFail {
		t.Errorf("rcode = %v", got.Header.Rcode)
	}
	if _, ok := got.FirstA(); !ok {
		t.Error("answer missing")
	}
}

func TestUpstreamDuplicatesGenerateQ2(t *testing.T) {
	sim := netsim.New(netsim.Config{Seed: 2, Latency: netsim.ConstantLatency(5 * time.Millisecond)})
	dnssrv.NewReferralServer(sim, rootAddr, []dnssrv.Referral{
		{Zone: "net", NSName: "a.gtld-servers.net", Addr: tldAddr},
	})
	dnssrv.NewReferralServer(sim, tldAddr, []dnssrv.Referral{
		{Zone: testSLD, NSName: "ns1." + testSLD, Addr: authAddr},
	})
	auth := dnssrv.NewAuthServer(sim, dnssrv.AuthConfig{
		Addr: authAddr, SLD: testSLD, ClusterSize: 1000,
	})
	NewResolver(sim, resvAddr, rootAddr, Honest(3))
	got := probe(t, sim, dnssrv.FormatProbeName(0, 14, testSLD))
	if got == nil {
		t.Fatal("no R2")
	}
	if auth.QueriesSeen() != 3 {
		t.Errorf("auth saw %d Q2, want 3", auth.QueriesSeen())
	}
}

func TestProfileAccessors(t *testing.T) {
	sim := buildWorld(t)
	p := Honest(2)
	r := NewResolver(sim, resvAddr, rootAddr, p)
	if r.Profile() != p {
		t.Error("Profile() mismatch")
	}
	if Honest(0).Upstream != 1 || LyingRA(0).Upstream != 1 {
		t.Error("constructors must clamp upstream to ≥1")
	}
}

func TestForwarderRelaysHonestAnswer(t *testing.T) {
	sim := buildWorld(t)
	upstream := ipv4.MustParseAddr("66.10.20.40")
	NewResolver(sim, upstream, rootAddr, Honest(1))
	fwd := NewResolver(sim, resvAddr, rootAddr, Forwarder(upstream))
	qname := dnssrv.FormatProbeName(0, 20, testSLD)
	got := probe(t, sim, qname)
	if got == nil {
		t.Fatal("no relayed response")
	}
	if got.Header.ID != 77 {
		t.Errorf("relayed ID = %d, want the client's 77", got.Header.ID)
	}
	a, ok := got.FirstA()
	if !ok || ipv4.Addr(a) != dnssrv.TruthAddr(qname) {
		t.Errorf("relayed answer = %#x", a)
	}
	if !got.Header.RA {
		t.Error("upstream RA flag not relayed")
	}
	if fwd.Queries != 1 || fwd.Responses != 1 {
		t.Errorf("forwarder counters: %d/%d", fwd.Queries, fwd.Responses)
	}
}

func TestForwarderChain(t *testing.T) {
	sim := buildWorld(t)
	terminal := ipv4.MustParseAddr("66.10.20.50")
	middle := ipv4.MustParseAddr("66.10.20.51")
	NewResolver(sim, terminal, rootAddr, Manipulator(ipv4.MustParseAddr("208.91.197.91")))
	NewResolver(sim, middle, rootAddr, Forwarder(terminal))
	NewResolver(sim, resvAddr, rootAddr, Forwarder(middle))
	got := probe(t, sim, dnssrv.FormatProbeName(0, 21, testSLD))
	if got == nil {
		t.Fatal("no response through the chain")
	}
	// The manipulated answer and its deviant AA flag propagate to the
	// client through two dumb proxies untouched.
	a, ok := got.FirstA()
	if !ok || a != uint32(ipv4.MustParseAddr("208.91.197.91")) {
		t.Errorf("chained answer = %#x", a)
	}
	if !got.Header.AA {
		t.Error("manipulator's AA flag lost in the chain")
	}
}

func TestForwarderLoopIsContained(t *testing.T) {
	sim := buildWorld(t)
	a := ipv4.MustParseAddr("66.10.20.60")
	b := ipv4.MustParseAddr("66.10.20.61")
	ra := NewResolver(sim, a, rootAddr, Forwarder(b))
	NewResolver(sim, b, rootAddr, Forwarder(a))
	prober := sim.Register(proberAddr, netsim.HostFunc(func(*netsim.Node, netsim.Datagram) {}))
	q := dnswire.NewQuery(9, dnssrv.FormatProbeName(0, 22, testSLD), dnswire.TypeA)
	prober.Send(a, 40000, dnssrv.DNSPort, q.MustPack())
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if ra.ForwardDrops == 0 {
		t.Error("loop never hit the forwarding-table cap")
	}
}

func TestVersionBanner(t *testing.T) {
	sim := buildWorld(t)
	p := Refuser()
	p.Version = "dnsmasq-2.40"
	NewResolver(sim, resvAddr, rootAddr, p)
	var got *dnswire.Message
	prober := sim.Register(proberAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		got, _ = dnswire.Unpack(dg.Payload)
	}))
	q := &dnswire.Message{
		Header: dnswire.Header{ID: 3},
		Questions: []dnswire.Question{{
			Name: "version.bind", Type: dnswire.TypeTXT, Class: dnswire.ClassCH,
		}},
	}
	prober.Send(resvAddr, 40000, dnssrv.DNSPort, q.MustPack())
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if got == nil || len(got.Answers) != 1 {
		t.Fatalf("version response = %v", got)
	}
	if got.Answers[0].Target != "dnsmasq-2.40" || got.Answers[0].Class != dnswire.ClassCH {
		t.Errorf("banner RR = %+v", got.Answers[0])
	}
	// Other CH names are refused.
	got = nil
	q2 := &dnswire.Message{
		Header: dnswire.Header{ID: 4},
		Questions: []dnswire.Question{{
			Name: "hostname.bind", Type: dnswire.TypeTXT, Class: dnswire.ClassCH,
		}},
	}
	prober.Send(resvAddr, 40000, dnssrv.DNSPort, q2.MustPack())
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Header.Rcode != dnswire.RcodeRefused {
		t.Errorf("hostname.bind response = %v", got)
	}
}

func TestPropertyBuildResponseInvariants(t *testing.T) {
	f := func(ra, aa, omit bool, rcode uint8, kind uint8, addr uint32, id uint16) bool {
		p := Profile{
			RA: ra, AA: aa, Rcode: dnswire.Rcode(rcode % 11),
			Answer: AnswerKind(kind%6) + 1, Addr: ipv4.Addr(addr),
			Name: "x.example", OmitQuestion: omit,
		}
		q := dnswire.NewQuery(id, dnssrv.FormatProbeName(0, int(id)%100, testSLD), dnswire.TypeA)
		res := dnssrv.Result{Addr: 7, Rcode: dnswire.RcodeNoError, OK: true}
		resp := BuildResponse(q, p, res)
		if !resp.Header.QR || resp.Header.ID != id || !resp.Header.RD {
			return false
		}
		if resp.Header.RA != ra || resp.Header.AA != aa {
			return false
		}
		if omit != (len(resp.Questions) == 0) {
			return false
		}
		// Every profile's output must survive the wire.
		wire, err := resp.Pack()
		if err != nil {
			return false
		}
		back, err := dnswire.Unpack(wire)
		if err != nil {
			return false
		}
		return back.Header == resp.Header
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}
