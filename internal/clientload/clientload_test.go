package clientload

import (
	"testing"
)

func TestExposureStudy(t *testing.T) {
	res, err := Run(Config{
		Clients:            200,
		QueriesPerClient:   20,
		Resolvers:          100,
		MaliciousFraction:  0.05,
		Domains:            500,
		ZipfS:              1.3,
		ResolversPerClient: 2,
		Seed:               1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 4000 {
		t.Errorf("queries = %d", res.Queries)
	}
	if res.Answered != res.Queries {
		t.Errorf("answered %d of %d", res.Answered, res.Queries)
	}
	if res.CorrectAnswers+res.MaliciousAnswers != res.Answered {
		t.Errorf("correct %d + malicious %d != answered %d",
			res.CorrectAnswers, res.MaliciousAnswers, res.Answered)
	}
	// With 5% malicious resolvers and 2 resolvers per client, malicious
	// answer share should be around 5% (clients round-robin).
	rate := res.ExposureRate()
	if rate < 0.01 || rate > 0.12 {
		t.Errorf("exposure rate = %.3f, want ≈0.05", rate)
	}
	if res.ExposedClients == 0 || res.ExposedClients > res.TotalClients {
		t.Errorf("exposed clients = %d of %d", res.ExposedClients, res.TotalClients)
	}
	// Skewed workloads produce substantial answer-cache hit ratios — the
	// reason the measurement needed unique subdomains (§III-B).
	if res.CacheHitRatio < 0.3 {
		t.Errorf("cache hit ratio = %.3f, want ≥ 0.3 for a Zipf workload", res.CacheHitRatio)
	}
	if len(res.MaliciousByDomain) == 0 {
		t.Error("no per-domain malicious attribution")
	}
}

func TestZeroMaliciousPoolHasNoExposure(t *testing.T) {
	res, err := Run(Config{
		Clients: 50, QueriesPerClient: 10, Resolvers: 20,
		MaliciousFraction: 0, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaliciousAnswers != 0 || res.ExposedClients != 0 {
		t.Errorf("exposure without malicious resolvers: %+v", res)
	}
	if res.CorrectAnswers != res.Answered {
		t.Errorf("correct %d != answered %d", res.CorrectAnswers, res.Answered)
	}
}

func TestExposureGrowsWithMaliciousShare(t *testing.T) {
	rate := func(frac float64) float64 {
		res, err := Run(Config{
			Clients: 150, QueriesPerClient: 10, Resolvers: 100,
			MaliciousFraction: frac, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.ExposureRate()
	}
	low, high := rate(0.02), rate(0.20)
	if high <= low {
		t.Errorf("exposure did not grow with malicious share: %.3f vs %.3f", low, high)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{Clients: 0, QueriesPerClient: 1, Resolvers: 1}); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := Run(Config{Clients: 1, QueriesPerClient: 1, Resolvers: 1, MaliciousFraction: 1.5}); err == nil {
		t.Error("fraction > 1 accepted")
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Clients: 60, QueriesPerClient: 5, Resolvers: 30, MaliciousFraction: 0.1, Seed: 4}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.MaliciousAnswers != b.MaliciousAnswers || a.ExposedClients != b.ExposedClients ||
		a.CacheHitRatio != b.CacheHitRatio {
		t.Error("runs with equal seeds diverged")
	}
}

func BenchmarkExposureStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{
			Clients: 100, QueriesPerClient: 10, Resolvers: 50,
			MaliciousFraction: 0.05, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}
