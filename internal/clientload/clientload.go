// Package clientload implements the follow-up study the paper plans in §V
// ("Open Resolver as an Existent Threat"): a malicious open resolver is
// only an *actual* threat when legitimate clients query it, so the paper
// proposes measuring the real exposure of client traffic — the analysis it
// intended to run against DNS-OARC's Day-In-The-Life collections.
//
// The package simulates that study end to end: a population of stub
// clients, each configured with a small set of recursive resolvers (as
// DHCP would hand out), issues a Zipf-distributed web workload. Resolvers
// are drawn from the measured open-resolver population — overwhelmingly
// honest, a small fraction manipulating answers toward threat-listed
// addresses. The result quantifies the paper's §V observation: exposure is
// governed by how client query share lands on the malicious minority, not
// by the minority's size alone.
package clientload

import (
	"fmt"
	"math/rand"
	"time"

	"openresolver/internal/behavior"
	"openresolver/internal/dnssrv"
	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
	"openresolver/internal/paperdata"
	"openresolver/internal/threatintel"
)

// Config parameterizes the exposure study.
type Config struct {
	// Clients is the stub-client population size.
	Clients int
	// QueriesPerClient is the workload volume per client.
	QueriesPerClient int
	// Resolvers is the open-resolver pool size the clients draw from.
	Resolvers int
	// MaliciousFraction is the share of the pool that manipulates answers
	// (the paper measured 26,926/6,506,258 ≈ 0.41% of responders in 2018).
	MaliciousFraction float64
	// Domains is the web-workload domain-popularity universe.
	Domains int
	// ZipfS is the popularity skew (>1; web workloads are ≈1.2–1.8).
	ZipfS float64
	// ResolversPerClient is how many resolvers each client is configured
	// with (round-robin use, as stub resolvers do).
	ResolversPerClient int
	// Seed drives the simulation.
	Seed int64
}

// Result summarizes client exposure.
type Result struct {
	Queries           uint64
	Answered          uint64
	MaliciousAnswers  uint64
	CorrectAnswers    uint64
	ExposedClients    int // clients that received ≥1 malicious answer
	TotalClients      int
	MaliciousByDomain map[string]uint64
	// CacheHitRatio is the honest resolvers' answer-cache hit ratio over
	// the workload — high for skewed workloads, which is exactly why the
	// measurement campaign needed unique subdomains (§III-B).
	CacheHitRatio float64
	Duration      time.Duration
}

// ExposureRate returns malicious answers per answered query.
func (r *Result) ExposureRate() float64 {
	if r.Answered == 0 {
		return 0
	}
	return float64(r.MaliciousAnswers) / float64(r.Answered)
}

// Simulation layout.
var (
	rootAddr     = ipv4.MustParseAddr("198.41.0.4")
	tldAddr      = ipv4.MustParseAddr("192.5.6.30")
	webAuthAddr  = ipv4.MustParseAddr("45.76.9.9")
	resolverBase = ipv4.MustParseAddr("31.0.0.0")
	clientBase   = ipv4.MustParseAddr("41.0.0.0")
)

// webZone is the simulated popular-web zone the clients browse.
const webZone = "popular-web.net"

// client is a stub resolver host issuing the workload.
type client struct {
	study     *study
	resolvers []ipv4.Addr
	nextRes   int
	pending   map[uint16]string // query id -> qname
	exposed   bool
}

func (c *client) HandleDatagram(n *netsim.Node, dg netsim.Datagram) {
	msg, err := dnswire.Unpack(dg.Payload)
	if err != nil || !msg.Header.QR {
		return
	}
	qname, ok := c.pending[msg.Header.ID]
	if !ok {
		return
	}
	delete(c.pending, msg.Header.ID)
	c.study.result.Answered++
	addr, hasA := msg.FirstA()
	if !hasA {
		return
	}
	switch {
	case ipv4.Addr(addr) == dnssrv.TruthAddr(qname):
		c.study.result.CorrectAnswers++
	default:
		if _, mal := c.study.threat.Lookup(ipv4.Addr(addr)); mal {
			c.study.result.MaliciousAnswers++
			c.study.result.MaliciousByDomain[qname]++
			if !c.exposed {
				c.exposed = true
				c.study.result.ExposedClients++
			}
		}
	}
}

// ask issues one query to the client's next resolver.
func (c *client) ask(n *netsim.Node, id uint16, qname string) {
	res := c.resolvers[c.nextRes%len(c.resolvers)]
	c.nextRes++
	q := dnswire.NewQuery(id, qname, dnswire.TypeA)
	wire, err := q.Pack()
	if err != nil {
		return
	}
	c.pending[id] = qname
	c.study.result.Queries++
	n.Send(res, 50000, dnssrv.DNSPort, wire)
}

type study struct {
	cfg    Config
	threat *threatintel.DB
	result *Result
}

// Run executes the exposure study.
func Run(cfg Config) (*Result, error) {
	if cfg.Clients <= 0 || cfg.QueriesPerClient <= 0 || cfg.Resolvers <= 0 {
		return nil, fmt.Errorf("clientload: clients, queries and resolvers must be positive")
	}
	if cfg.MaliciousFraction < 0 || cfg.MaliciousFraction >= 1 {
		return nil, fmt.Errorf("clientload: malicious fraction %v out of [0,1)", cfg.MaliciousFraction)
	}
	if cfg.Domains <= 0 {
		cfg.Domains = 1000
	}
	if cfg.ZipfS <= 1 {
		cfg.ZipfS = 1.3
	}
	if cfg.ResolversPerClient <= 0 {
		cfg.ResolversPerClient = 2
	}

	sim := netsim.New(netsim.Config{
		Seed:    cfg.Seed,
		Latency: netsim.UniformLatency(2*time.Millisecond, 30*time.Millisecond),
	})

	// Hierarchy for the popular-web zone.
	dnssrv.NewReferralServer(sim, rootAddr, []dnssrv.Referral{
		{Zone: "net", NSName: "a.gtld-servers.net", Addr: tldAddr},
	})
	dnssrv.NewReferralServer(sim, tldAddr, []dnssrv.Referral{
		{Zone: webZone, NSName: "ns1." + webZone, Addr: webAuthAddr},
	})
	dnssrv.NewAuthServer(sim, dnssrv.AuthConfig{
		Addr: webAuthAddr, SLD: webZone, AnyName: true,
	})

	// The threat landscape and the resolver pool.
	feed := threatintel.NewFeed(paperdata.Y2018, cfg.Seed)
	malAddrs := feed.DB.Addrs()
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0xC11E47))

	nMal := int(float64(cfg.Resolvers) * cfg.MaliciousFraction)
	resolvers := make([]ipv4.Addr, cfg.Resolvers)
	var honest []*behavior.Resolver
	for i := range resolvers {
		addr := resolverBase + ipv4.Addr(i+1)
		resolvers[i] = addr
		if i < nMal {
			evil := malAddrs[rng.Intn(len(malAddrs))]
			behavior.NewResolver(sim, addr, rootAddr, behavior.Manipulator(evil))
			continue
		}
		honest = append(honest, behavior.NewResolver(sim, addr, rootAddr, behavior.Honest(1)))
	}
	// Shuffle so malicious resolvers are spread over the popularity range.
	rng.Shuffle(len(resolvers), func(i, j int) {
		resolvers[i], resolvers[j] = resolvers[j], resolvers[i]
	})

	st := &study{
		cfg:    cfg,
		threat: feed.DB,
		result: &Result{TotalClients: cfg.Clients, MaliciousByDomain: make(map[string]uint64)},
	}

	// Domain popularity: Zipf over the domain universe.
	zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Domains-1))

	// Clients with their resolver configuration and staggered workloads.
	var id uint16
	for i := 0; i < cfg.Clients; i++ {
		c := &client{study: st, pending: make(map[uint16]string)}
		for j := 0; j < cfg.ResolversPerClient; j++ {
			c.resolvers = append(c.resolvers, resolvers[rng.Intn(len(resolvers))])
		}
		node := sim.Register(clientBase+ipv4.Addr(i+1), c)
		for q := 0; q < cfg.QueriesPerClient; q++ {
			qname := fmt.Sprintf("site%04d.%s", zipf.Uint64(), webZone)
			id++
			qid := id
			// Stagger sends across one virtual minute.
			delay := time.Duration(rng.Int63n(int64(time.Minute)))
			func(c *client, node *netsim.Node, qid uint16, qname string) {
				node.After(delay, func() { c.ask(node, qid, qname) })
			}(c, node, qid, qname)
		}
	}

	if err := sim.Run(0); err != nil {
		return nil, err
	}

	// Cache effectiveness across the honest pool.
	hits, upstream := engineTotals(honest)
	if hits+upstream > 0 {
		st.result.CacheHitRatio = float64(hits) / float64(hits+upstream)
	}
	st.result.Duration = sim.Now()
	return st.result, nil
}

// engineTotals sums cache hits and upstream resolutions over honest
// resolvers.
func engineTotals(honest []*behavior.Resolver) (hits, resolutions uint64) {
	for _, h := range honest {
		ch, up := h.CacheStats()
		hits += ch
		resolutions += up
	}
	return hits, resolutions
}
