package fingerprint

import (
	"math/rand"
	"testing"
	"time"

	"openresolver/internal/behavior"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
)

var (
	scanSrc  = ipv4.MustParseAddr("132.170.3.10")
	rootAddr = ipv4.MustParseAddr("198.41.0.4")
)

func TestScanTabulatesBanners(t *testing.T) {
	sim := netsim.New(netsim.Config{Seed: 1, Latency: netsim.ConstantLatency(5 * time.Millisecond)})
	var targets []ipv4.Addr
	addHost := func(i int, p behavior.Profile) {
		addr := ipv4.MustParseAddr("50.0.0.1") + ipv4.Addr(i)
		behavior.NewResolver(sim, addr, rootAddr, p)
		targets = append(targets, addr)
	}
	for i := 0; i < 5; i++ {
		p := behavior.Refuser()
		p.Version = "dnsmasq-2.40"
		addHost(i, p)
	}
	for i := 5; i < 8; i++ {
		p := behavior.Refuser()
		p.Version = "9.9.4-RedHat-9.9.4-73.el7_6"
		addHost(i, p)
	}
	for i := 8; i < 10; i++ {
		addHost(i, behavior.Refuser()) // no banner: refused
	}
	// Two silent targets: no host registered.
	targets = append(targets, ipv4.MustParseAddr("51.0.0.1"), ipv4.MustParseAddr("51.0.0.2"))

	res, err := Scan(sim, scanSrc, targets)
	if err != nil {
		t.Fatal(err)
	}
	if res.Probed != 12 {
		t.Errorf("probed = %d", res.Probed)
	}
	if res.Banners["dnsmasq-2.40"] != 5 || res.Banners["9.9.4-RedHat-9.9.4-73.el7_6"] != 3 {
		t.Errorf("banners = %v", res.Banners)
	}
	if res.Refused != 2 {
		t.Errorf("refused = %d", res.Refused)
	}
	if res.Silent != 2 {
		t.Errorf("silent = %d", res.Silent)
	}
	top := res.Top(1)
	if len(top) != 1 || top[0].Banner != "dnsmasq-2.40" || top[0].Weight != 5 {
		t.Errorf("top = %v", top)
	}
	if res.String() == "" {
		t.Error("empty summary")
	}
}

func TestVersionQueryDoesNotDisturbINPath(t *testing.T) {
	// A resolver with a banner still serves ordinary IN queries per its
	// profile: the CH handler must not swallow them.
	sim := netsim.New(netsim.Config{Seed: 2, Latency: netsim.ConstantLatency(time.Millisecond)})
	p := behavior.Manipulator(ipv4.MustParseAddr("208.91.197.91"))
	p.Version = "dnsmasq-2.52"
	addr := ipv4.MustParseAddr("50.0.0.9")
	behavior.NewResolver(sim, addr, rootAddr, p)

	res, err := Scan(sim, scanSrc, []ipv4.Addr{addr})
	if err != nil {
		t.Fatal(err)
	}
	if res.Banners["dnsmasq-2.52"] != 1 {
		t.Errorf("banner scan failed: %v", res.Banners)
	}
}

func TestAssignDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[Assign(rng, DefaultDistribution)]++
	}
	var total int
	for _, v := range DefaultDistribution {
		total += v.Weight
	}
	for _, v := range DefaultDistribution {
		want := float64(v.Weight) / float64(total)
		got := float64(counts[v.Banner]) / float64(n)
		if got < want*0.7-0.005 || got > want*1.3+0.005 {
			t.Errorf("banner %q share %.3f, want ≈%.3f", v.Banner, got, want)
		}
	}
	if Assign(rng, nil) != "" {
		t.Error("empty distribution must yield empty banner")
	}
}

func TestScanValidation(t *testing.T) {
	sim := netsim.New(netsim.Config{Seed: 4})
	if _, err := Scan(sim, scanSrc, nil); err == nil {
		t.Error("empty target list accepted")
	}
}
