// Package fingerprint implements the resolver-software survey of Takano et
// al. (the paper's reference [8], §I and §VI): probing open resolvers with
// CHAOS-class version.bind TXT queries to identify the software they run.
// The paper cites that study as evidence that the open-resolver population
// is dominated by embedded forwarders and outdated server builds — the
// exploitable long tail behind both threats it measures.
package fingerprint

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"openresolver/internal/dnssrv"
	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
)

// VersionShare is one entry of a software-banner distribution.
type VersionShare struct {
	Banner string
	// Weight is the relative share (need not sum to anything).
	Weight int
}

// DefaultDistribution models the software mix the [8] study and later
// Shadowserver scans report for open resolvers: embedded dnsmasq
// forwarders dominate, followed by BIND 9 builds of various vintages, with
// a substantial hidden share (banner withheld or rewritten).
var DefaultDistribution = []VersionShare{
	{Banner: "dnsmasq-2.40", Weight: 22},
	{Banner: "dnsmasq-2.52", Weight: 14},
	{Banner: "dnsmasq-2.76", Weight: 9},
	{Banner: "9.3.6-P1-RedHat-9.3.6-25.P1.el5_11.11", Weight: 7},
	{Banner: "9.8.2rc1-RedHat-9.8.2-0.62.rc1.el6", Weight: 6},
	{Banner: "9.9.4-RedHat-9.9.4-73.el7_6", Weight: 5},
	{Banner: "9.10.3-P4-Ubuntu", Weight: 4},
	{Banner: "PowerDNS Recursor 4.1.1", Weight: 2},
	{Banner: "unbound 1.6.8", Weight: 2},
	{Banner: "Microsoft DNS 6.1.7601", Weight: 5},
	{Banner: "Nominum Vantio 5.4.1.2", Weight: 1},
	{Banner: "", Weight: 23}, // banner withheld: query refused
}

// Assign draws a banner from the distribution.
func Assign(rng *rand.Rand, dist []VersionShare) string {
	total := 0
	for _, v := range dist {
		total += v.Weight
	}
	if total == 0 {
		return ""
	}
	n := rng.Intn(total)
	for _, v := range dist {
		if n < v.Weight {
			return v.Banner
		}
		n -= v.Weight
	}
	return ""
}

// Result is the tabulated outcome of a fingerprint scan.
type Result struct {
	// Banners maps each observed banner to its count.
	Banners map[string]int
	// Refused counts resolvers that answered but withheld the banner.
	Refused int
	// Silent counts targets that never answered the CH query.
	Silent int
	// Probed is the number of targets queried.
	Probed int
}

// Top returns the n most common banners in descending order.
func (r *Result) Top(n int) []VersionShare {
	out := make([]VersionShare, 0, len(r.Banners))
	for banner, count := range r.Banners {
		out = append(out, VersionShare{Banner: banner, Weight: count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Banner < out[j].Banner
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// String renders a summary line.
func (r *Result) String() string {
	return fmt.Sprintf("probed=%d banners=%d refused=%d silent=%d",
		r.Probed, len(r.Banners), r.Refused, r.Silent)
}

// scanner is the probing host.
type scanner struct {
	result  *Result
	pending map[uint16]ipv4.Addr
}

func (s *scanner) HandleDatagram(n *netsim.Node, dg netsim.Datagram) {
	msg, err := dnswire.Unpack(dg.Payload)
	if err != nil || !msg.Header.QR {
		return
	}
	if _, ok := s.pending[msg.Header.ID]; !ok {
		return
	}
	delete(s.pending, msg.Header.ID)
	if msg.Header.Rcode == dnswire.RcodeRefused {
		s.result.Refused++
		return
	}
	for _, rr := range msg.Answers {
		if rr.Type == dnswire.TypeTXT && rr.Class == dnswire.ClassCH {
			s.result.Banners[rr.Target]++
			return
		}
	}
	s.result.Refused++
}

// Scan probes targets with version.bind CH TXT from src and tabulates the
// banners. It drives the simulation to quiescence, so call it when no
// other workload is pending on sim.
func Scan(sim *netsim.Sim, src ipv4.Addr, targets []ipv4.Addr) (*Result, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("fingerprint: no targets")
	}
	res := &Result{Banners: make(map[string]int), Probed: len(targets)}
	sc := &scanner{result: res, pending: make(map[uint16]ipv4.Addr)}
	node := sim.Register(src, sc)

	var id uint16
	for i, target := range targets {
		id++
		q := &dnswire.Message{
			Header: dnswire.Header{ID: id},
			Questions: []dnswire.Question{{
				Name: "version.bind", Type: dnswire.TypeTXT, Class: dnswire.ClassCH,
			}},
		}
		wire, err := q.Pack()
		if err != nil {
			return nil, err
		}
		sc.pending[id] = target
		// Stagger lightly so huge target lists do not arrive in one burst.
		delay := time.Duration(i) * 50 * time.Microsecond
		t := target
		w := wire
		node.After(delay, func() { node.Send(t, 54321, dnssrv.DNSPort, w) })
	}
	if err := sim.Run(0); err != nil {
		return nil, err
	}
	res.Silent = len(sc.pending)
	return res, nil
}
