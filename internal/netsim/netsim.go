package netsim

import (
	"errors"
	"math/bits"
	"math/rand"
	"time"

	"openresolver/internal/ipv4"
	"openresolver/internal/obs"
)

// Datagram is one UDP-like packet in flight.
type Datagram struct {
	Src, Dst         ipv4.Addr
	SrcPort, DstPort uint16
	Payload          []byte
}

// Host is a network endpoint. HandleDatagram is invoked by the event loop
// when a datagram addressed to the host's address is delivered; the handler
// may send packets and arm timers through the supplied Node.
type Host interface {
	HandleDatagram(n *Node, dg Datagram)
}

// HostFunc adapts a function to the Host interface.
type HostFunc func(n *Node, dg Datagram)

// HandleDatagram implements Host.
func (f HostFunc) HandleDatagram(n *Node, dg Datagram) { f(n, dg) }

// BatchHost is an optional extension of Host for endpoints that can absorb
// several datagrams per dispatch. When the batched drain (StepBatch) pops
// an adjacent run of same-instant deliveries to one BatchHost, it hands the
// whole run to HandleBatch in pop order instead of calling HandleDatagram
// per datagram. Implementations must process the slice in order and must
// not retain it (or any payload) beyond the call — the simulator reuses
// both. Equivalence contract: HandleBatch(n, dgs) must leave the host in
// the same state as calling HandleDatagram(n, dg) for each dg in order.
type BatchHost interface {
	Host
	HandleBatch(n *Node, dgs []Datagram)
}

// LatencyModel returns the one-way delivery delay for a packet. The rng is
// the simulation's deterministic source; models may use it for jitter.
type LatencyModel func(src, dst ipv4.Addr, rng *rand.Rand) time.Duration

// ConstantLatency returns a model with a fixed one-way delay.
func ConstantLatency(d time.Duration) LatencyModel {
	return func(ipv4.Addr, ipv4.Addr, *rand.Rand) time.Duration { return d }
}

// UniformLatency returns a model drawing delays uniformly from [lo, hi).
func UniformLatency(lo, hi time.Duration) LatencyModel {
	if hi <= lo {
		return ConstantLatency(lo)
	}
	return func(_, _ ipv4.Addr, rng *rand.Rand) time.Duration {
		return lo + time.Duration(rng.Int63n(int64(hi-lo)))
	}
}

// Config parameterizes a simulation.
type Config struct {
	// Seed drives every random decision in the run.
	Seed int64
	// Latency is the one-way delay model; nil means a constant 20ms.
	Latency LatencyModel
	// Loss is the probability in [0,1) that any datagram is dropped in
	// flight. The 2013 campaign's send shortfall is modeled with this.
	Loss float64
	// Impairments is the adverse-network fault pipeline (see impair.go),
	// applied in order to every datagram after the Loss check. nil keeps
	// the pristine fast path.
	Impairments []Impairment
	// MaxQueuedEvents bounds the event queue as a safety net against
	// runaway feedback loops; 0 means no bound.
	MaxQueuedEvents int
}

// Stats are cumulative counters of a simulation run.
type Stats struct {
	Sent        uint64 // datagrams and stream segments submitted by hosts
	Delivered   uint64 // datagrams/segments handed to a registered endpoint
	Lost        uint64 // datagrams dropped by the loss model
	NoRoute     uint64 // datagrams to addresses with no registered host
	Timers      uint64 // timer events fired
	StreamBytes uint64 // bytes carried over stream (TCP-like) connections
}

// Add accumulates o into s — the shard-merge path of the parallel
// simulation (field-wise sums; QueueStats are per-Sim sizing telemetry and
// are not merged).
func (s *Stats) Add(o Stats) {
	s.Sent += o.Sent
	s.Delivered += o.Delivered
	s.Lost += o.Lost
	s.NoRoute += o.NoRoute
	s.Timers += o.Timers
	s.StreamBytes += o.StreamBytes
}

// Spawner is invoked when a datagram arrives for an unregistered address.
// It may Register a host for addr (returning true to request a re-lookup),
// letting a simulation with millions of notional hosts instantiate each one
// lazily on first contact instead of eagerly up front. Returning false (or
// not registering addr) lets the datagram count as NoRoute as usual.
type Spawner func(addr ipv4.Addr) bool

// Sim is a discrete-event network simulation.
type Sim struct {
	cfg Config
	now time.Duration
	rng *rand.Rand

	// The event queue is a struct-of-arrays 4-ary min-heap ordered by
	// (at, seq): heapAt/heapSeq hold the sort keys in parallel arrays so a
	// sift comparison touches only key memory (a 4-child node's at values
	// span 32 contiguous bytes), and heapRef points into the evSlab payload
	// arena, so sifting moves 20 bytes per level instead of a whole event.
	heapAt  []time.Duration
	heapSeq []uint64
	heapRef []int32
	evSlab  []evPayload
	freeEv  []int32
	seq     uint64

	// Near-future monotone timer fast path: a bounded ring that accepts a
	// timer only while its deadline is >= the last accepted one (seq rises
	// monotonically, so ring order is (at, seq)-sorted by construction).
	// Overflow or out-of-order arming falls back to the heap; popNext merges
	// the ring head against the heap root. See DESIGN.md §11.
	ring       []ringEntry
	ringHead   uint32
	ringLen    uint32
	ringMask   uint32
	ringTailAt time.Duration

	qstats QueueStats

	// epoch is bumped on Unregister so the batched delivery path can detect
	// a host-table change mid-run and fall back to per-datagram lookup.
	epoch uint64

	// Scratch for StepBatch's same-destination delivery grouping.
	batchDg     []Datagram
	batchPooled []bool

	// timers are pooled callback slots addressed by event.slot; a slot's
	// generation is bumped on Stop and on fire so stale handles and lazily
	// deleted queue entries are detected without touching the heap.
	timers     []timerSlot
	freeTimers []int32

	// Open-addressed host table: slots map addr → arena index, the arena is
	// chunked so *Node pointers stay stable as it grows. Slots are linear-
	// probed; idx < 0 marks empty/tombstone.
	slots     []hostSlot
	mask      uint32
	shift     uint32
	live      int // registered hosts
	used      int // live + tombstones (probe-chain occupancy)
	nodes     [][]Node
	nodeCount int

	spawner   Spawner
	listeners map[listenerKey]StreamAccept
	payloads  [][]byte // recycled datagram payload buffers
	stats     Stats
	faults    FaultStats
	// obs mirrors the counters into the observability layer; nil (the
	// default) keeps every sink call an inlined no-op. Counters never feed
	// back into simulation behaviour, so runs stay bit-identical with
	// observation on (pinned by TestSimulationGoldenWithMetrics).
	obs *obs.Shard

	// Scratch cells for sendImpaired: Apply takes pointers through an
	// interface, which would otherwise force a heap escape per packet.
	fate  Fate
	impDg Datagram
}

// ErrEventQueueFull is returned by Run when MaxQueuedEvents is exceeded.
var ErrEventQueueFull = errors.New("netsim: event queue limit exceeded")

// New creates a simulation.
func New(cfg Config) *Sim {
	if cfg.Latency == nil {
		cfg.Latency = ConstantLatency(20 * time.Millisecond)
	}
	return &Sim{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Now returns the current virtual time since the start of the run.
func (s *Sim) Now() time.Duration { return s.now }

// Stats returns a snapshot of the run counters.
func (s *Sim) Stats() Stats { return s.stats }

// FaultStats returns a snapshot of the impairment pipeline's counters.
func (s *Sim) FaultStats() FaultStats { return s.faults }

// QueueStats are event-queue placement counters: how many timer arms took
// the ring fast path versus falling back to the heap (overflow or
// out-of-order deadline). They live outside Stats deliberately — the golden
// digests cover Stats, and queue placement is an implementation detail that
// must be free to change without re-baselining campaigns.
type QueueStats struct {
	RingTimers uint64 // timers accepted by the monotone ring
	HeapTimers uint64 // timers that fell back to the heap
}

// QueueStats returns a snapshot of the queue-placement counters.
func (s *Sim) QueueStats() QueueStats { return s.qstats }

// Rand returns the simulation's deterministic random source. It must only
// be used from within event handlers (the simulator is single-threaded).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// SetSpawner installs the lazy host instantiation hook. Pass nil to remove.
func (s *Sim) SetSpawner(fn Spawner) { s.spawner = fn }

// SetObserver attaches a metrics shard; every packet and timer event is
// mirrored into it from then on. Pass nil to detach (the default state).
func (s *Sim) SetObserver(sh *obs.Shard) { s.obs = sh }

// --- host table ---------------------------------------------------------

const (
	slotEmpty = int32(-1)
	slotTomb  = int32(-2)

	nodeChunkBits = 14
	nodeChunkSize = 1 << nodeChunkBits
)

type hostSlot struct {
	addr ipv4.Addr
	idx  int32
}

func (s *Sim) hashIndex(addr ipv4.Addr) uint32 {
	// Fibonacci hashing; the high bits are well mixed, so index by them.
	return (uint32(addr) * 0x9E3779B9) >> s.shift
}

// findSlot returns the slot index holding addr, or -1.
func (s *Sim) findSlot(addr ipv4.Addr) int {
	if len(s.slots) == 0 {
		return -1
	}
	i := s.hashIndex(addr)
	for {
		sl := &s.slots[i]
		if sl.idx == slotEmpty {
			return -1
		}
		if sl.idx >= 0 && sl.addr == addr {
			return int(i)
		}
		i = (i + 1) & s.mask
	}
}

func (s *Sim) nodeAt(idx int32) *Node {
	return &s.nodes[idx>>nodeChunkBits][idx&(nodeChunkSize-1)]
}

// grow doubles the slot table (16 minimum) and rehashes live entries,
// discarding tombstones.
func (s *Sim) grow() {
	newCap := 16
	if len(s.slots) > 0 {
		newCap = len(s.slots) * 2
	}
	old := s.slots
	s.slots = make([]hostSlot, newCap)
	for i := range s.slots {
		s.slots[i].idx = slotEmpty
	}
	s.mask = uint32(newCap - 1)
	s.shift = uint32(32 - bits.TrailingZeros32(uint32(newCap)))
	s.used = s.live
	for _, sl := range old {
		if sl.idx < 0 {
			continue
		}
		i := s.hashIndex(sl.addr)
		for s.slots[i].idx != slotEmpty {
			i = (i + 1) & s.mask
		}
		s.slots[i] = sl
	}
}

// insertSlot places (addr, idx) into the table; addr must not be present.
func (s *Sim) insertSlot(addr ipv4.Addr, idx int32) {
	// Keep probe-chain occupancy (live + tombstones) under 3/4 so every
	// probe terminates at an empty slot.
	if len(s.slots) == 0 || (s.used+1)*4 > len(s.slots)*3 {
		s.grow()
	}
	i := s.hashIndex(addr)
	tomb := -1
	for {
		sl := &s.slots[i]
		if sl.idx == slotEmpty {
			if tomb >= 0 {
				s.slots[tomb] = hostSlot{addr: addr, idx: idx}
			} else {
				*sl = hostSlot{addr: addr, idx: idx}
				s.used++
			}
			s.live++
			return
		}
		if sl.idx == slotTomb && tomb < 0 {
			tomb = int(i)
		}
		i = (i + 1) & s.mask
	}
}

// Register attaches host at addr and returns its Node handle. Registering
// an address twice replaces the previous host but preserves the Node
// identity seen by pending timers.
func (s *Sim) Register(addr ipv4.Addr, h Host) *Node {
	if si := s.findSlot(addr); si >= 0 {
		n := s.nodeAt(s.slots[si].idx)
		n.host = h
		return n
	}
	idx := int32(s.nodeCount)
	if s.nodeCount>>nodeChunkBits == len(s.nodes) {
		s.nodes = append(s.nodes, make([]Node, nodeChunkSize))
	}
	s.nodeCount++
	n := s.nodeAt(idx)
	*n = Node{sim: s, addr: addr, host: h}
	s.insertSlot(addr, idx)
	return n
}

// Unregister detaches the host at addr; packets to it then count as NoRoute.
// The detached Node stays valid for stale handles (its arena slot is never
// recycled); re-registering the address yields a fresh Node.
func (s *Sim) Unregister(addr ipv4.Addr) {
	if si := s.findSlot(addr); si >= 0 {
		s.slots[si].idx = slotTomb
		s.live--
		s.epoch++
	}
}

// Lookup returns the node registered at addr, if any.
func (s *Sim) Lookup(addr ipv4.Addr) (*Node, bool) {
	si := s.findSlot(addr)
	if si < 0 {
		return nil, false
	}
	return s.nodeAt(s.slots[si].idx), true
}

// NumHosts returns the number of registered hosts.
func (s *Sim) NumHosts() int { return s.live }

// --- payload pool -------------------------------------------------------

// getPayload returns a zero-length recycled buffer (or a fresh one).
func (s *Sim) getPayload() []byte {
	if n := len(s.payloads); n > 0 {
		b := s.payloads[n-1]
		s.payloads = s.payloads[:n-1]
		return b
	}
	return make([]byte, 0, 512)
}

func (s *Sim) putPayload(b []byte) {
	if cap(b) == 0 {
		return
	}
	s.payloads = append(s.payloads, b[:0])
}

// --- sending ------------------------------------------------------------

// send enqueues delivery of dg subject to loss and latency. If pooled, the
// payload buffer is recycled once the datagram is consumed.
func (s *Sim) send(dg Datagram, pooled bool) {
	s.stats.Sent++
	s.obs.Inc(obs.CSimSent)
	if s.cfg.Loss > 0 && s.rng.Float64() < s.cfg.Loss {
		s.stats.Lost++
		s.obs.Inc(obs.CSimLost)
		if pooled {
			s.putPayload(dg.Payload)
		}
		return
	}
	if len(s.cfg.Impairments) > 0 {
		s.sendImpaired(dg, pooled)
		return
	}
	delay := s.cfg.Latency(dg.Src, dg.Dst, s.rng)
	if !s.routeExists(dg.Dst) {
		s.noRoute(dg, pooled)
		return
	}
	s.schedule(s.now+delay, evPayload{kind: evDeliver, dg: dg, pooled: pooled})
}

// routeExists reports whether dst resolves right now: registered, or
// registered on the spot by the spawner. Routing is resolved at submission
// so a dead-letter datagram — the overwhelming majority in a full-universe
// scan, where ~96% of probes hit silent addresses — never costs a queue
// round trip. Deliverable packets still re-resolve on arrival (deliverOne),
// so a host unregistered mid-flight dead-letters exactly as before; the only
// contract shift is that a host registered *after* Send no longer catches an
// in-flight packet, a situation nothing in the simulation produces (hosts
// appear at setup or through the spawner, and the spawner is consulted
// here). The latency draw above stays unconditional: the rng stream, and
// with it every downstream event, must not depend on routability.
func (s *Sim) routeExists(dst ipv4.Addr) bool {
	if s.findSlot(dst) >= 0 {
		return true
	}
	return s.spawner != nil && s.spawner(dst) && s.findSlot(dst) >= 0
}

// noRoute counts and discards an unroutable datagram at submission time.
func (s *Sim) noRoute(dg Datagram, pooled bool) {
	s.stats.NoRoute++
	s.obs.Inc(obs.CSimNoRoute)
	if pooled {
		s.putPayload(dg.Payload)
	}
}

// sendImpaired runs dg through the fault pipeline and executes the combined
// verdict. Duplicate copies are cloned from the original payload before the
// primary is corrupted, so a flipped bit never propagates into a twin; each
// copy draws its own latency, arriving shuffled relative to the primary.
func (s *Sim) sendImpaired(dg Datagram, pooled bool) {
	s.impDg = dg
	s.fate = Fate{CorruptBit: -1}
	for _, imp := range s.cfg.Impairments {
		imp.Apply(&s.impDg, s.now, s.rng, &s.fate)
	}
	dg, f := s.impDg, s.fate
	s.impDg.Payload = nil // no stale reference into the payload pool
	if f.Drop {
		s.stats.Lost++
		s.obs.Inc(obs.CSimLost)
		s.faults.Dropped++
		switch f.Cause {
		case CauseLoss:
			s.faults.LossDrops++
			s.obs.Inc(obs.CFaultLossDrop)
		case CauseBurst:
			s.faults.BurstDrops++
			s.obs.Inc(obs.CFaultBurstDrop)
		case CauseBlackhole:
			s.faults.Blackholed++
			s.obs.Inc(obs.CFaultBlackholed)
		case CauseBrownout:
			s.faults.BrownedOut++
			s.obs.Inc(obs.CFaultBrownedOut)
		}
		if pooled {
			s.putPayload(dg.Payload)
		}
		return
	}
	for i := 0; i < f.Duplicates; i++ {
		cp := dg
		cp.Payload = append(s.getPayload(), dg.Payload...)
		s.faults.Duplicated++
		s.obs.Inc(obs.CFaultDuplicated)
		delay := s.cfg.Latency(cp.Src, cp.Dst, s.rng)
		if !s.routeExists(cp.Dst) {
			s.noRoute(cp, true)
			continue
		}
		s.schedule(s.now+delay, evPayload{kind: evDeliver, dg: cp, pooled: true})
	}
	if f.CorruptBit >= 0 && len(dg.Payload) > 0 {
		if !pooled {
			// Never mutate a caller-owned buffer: corrupt a pooled copy.
			dg.Payload = append(s.getPayload(), dg.Payload...)
			pooled = true
		}
		bit := f.CorruptBit % (len(dg.Payload) * 8)
		dg.Payload[bit>>3] ^= 1 << (bit & 7)
		s.faults.Corrupted++
		s.obs.Inc(obs.CFaultCorrupted)
	}
	if f.ExtraDelay > 0 {
		s.faults.Reordered++
		s.obs.Inc(obs.CFaultReordered)
	}
	delay := s.cfg.Latency(dg.Src, dg.Dst, s.rng) + f.ExtraDelay
	if !s.routeExists(dg.Dst) {
		s.noRoute(dg, pooled)
		return
	}
	s.schedule(s.now+delay, evPayload{kind: evDeliver, dg: dg, pooled: pooled})
}

// Step executes the next event. It returns false when the queue is empty.
// It is the single-event reference implementation: StepBatch must be
// observationally equivalent to a sequence of Step calls (pinned by
// TestStepBatchEquivalence), differing only in HQueueDepth sampling
// granularity. Terminal calls (empty queue, limit exceeded) return before
// the queue-depth observation — an empty poll must not skew the histogram.
func (s *Sim) Step() (bool, error) {
	if s.cfg.MaxQueuedEvents > 0 && s.queueLen() > s.cfg.MaxQueuedEvents {
		return false, ErrEventQueueFull
	}
	if s.queueLen() == 0 {
		return false, nil
	}
	s.obs.Observe(obs.HQueueDepth, int64(s.queueLen()))
	at, p := s.popNext()
	s.now = at
	if p.kind == evDeliver {
		s.deliverOne(p)
	} else {
		s.fireTimer(p)
	}
	return true, nil
}

// StepBatch drains every event sharing the head virtual timestamp in one
// pass and returns how many it executed (0 on an empty queue). Events run
// in exactly the (at, seq) order the sequential Step loop would use —
// handlers that schedule new work at the same instant extend the batch, as
// they would extend a sequence of Steps. Adjacent same-instant deliveries
// to one destination are grouped so the host-table probe and, for
// BatchHost implementations, the interface dispatch amortize. The queue
// limit is still enforced per pop; HQueueDepth is sampled once per batch.
func (s *Sim) StepBatch() (int, error) {
	if s.cfg.MaxQueuedEvents > 0 && s.queueLen() > s.cfg.MaxQueuedEvents {
		return 0, ErrEventQueueFull
	}
	if s.queueLen() == 0 {
		return 0, nil
	}
	s.obs.Observe(obs.HQueueDepth, int64(s.queueLen()))
	at := s.headAt()
	s.now = at
	n := 0
	for {
		_, p := s.popNext()
		if p.kind == evDeliver {
			n += s.deliverGroup(at, p)
		} else {
			s.fireTimer(p)
			n++
		}
		if s.queueLen() == 0 || s.headAt() != at {
			return n, nil
		}
		if s.cfg.MaxQueuedEvents > 0 && s.queueLen() > s.cfg.MaxQueuedEvents {
			return n, ErrEventQueueFull
		}
	}
}

// deliverOne routes and delivers a single datagram — the reference delivery
// path, shared by Step and by deliverGroup's host-table-change fallback.
func (s *Sim) deliverOne(p evPayload) {
	n, ok := s.Lookup(p.dg.Dst)
	if !ok && s.spawner != nil && s.spawner(p.dg.Dst) {
		n, ok = s.Lookup(p.dg.Dst)
	}
	if !ok {
		s.stats.NoRoute++
		s.obs.Inc(obs.CSimNoRoute)
		if p.pooled {
			s.putPayload(p.dg.Payload)
		}
		return
	}
	s.stats.Delivered++
	s.obs.Inc(obs.CSimDelivered)
	n.host.HandleDatagram(n, p.dg)
	if p.pooled {
		s.putPayload(p.dg.Payload)
	}
}

// deliverGroup delivers p and any adjacent same-instant deliveries to the
// same destination, resolving the host table once for the run. Only the
// *adjacent* (in seq order) run is grouped — skipping over an interleaved
// event would reorder execution relative to the sequential reference. The
// epoch check detects a handler unregistering hosts mid-run, falling back
// to the exact per-datagram path for the remainder.
func (s *Sim) deliverGroup(at time.Duration, p evPayload) int {
	dst := p.dg.Dst
	n, ok := s.Lookup(dst)
	if !ok && s.spawner != nil && s.spawner(dst) {
		n, ok = s.Lookup(dst)
	}
	if !ok {
		// No grouping on the dead-letter path: the sequential reference
		// consults the spawner once per datagram.
		s.stats.NoRoute++
		s.obs.Inc(obs.CSimNoRoute)
		if p.pooled {
			s.putPayload(p.dg.Payload)
		}
		return 1
	}
	s.batchDg = append(s.batchDg[:0], p.dg)
	s.batchPooled = append(s.batchPooled[:0], p.pooled)
	for s.headDeliverTo(at, dst) {
		_, q := s.popNext()
		s.batchDg = append(s.batchDg, q.dg)
		s.batchPooled = append(s.batchPooled, q.pooled)
	}
	k := len(s.batchDg)
	if bh, isBatch := n.host.(BatchHost); isBatch && k > 1 {
		s.stats.Delivered += uint64(k)
		s.obs.Add(obs.CSimDelivered, uint64(k))
		bh.HandleBatch(n, s.batchDg)
		for i, pooled := range s.batchPooled {
			if pooled {
				s.putPayload(s.batchDg[i].Payload)
			}
		}
		return k
	}
	epoch := s.epoch
	for i := 0; i < k; i++ {
		if s.epoch != epoch {
			s.deliverOne(evPayload{dg: s.batchDg[i], pooled: s.batchPooled[i], kind: evDeliver})
			continue
		}
		s.stats.Delivered++
		s.obs.Inc(obs.CSimDelivered)
		n.host.HandleDatagram(n, s.batchDg[i])
		if s.batchPooled[i] {
			s.putPayload(s.batchDg[i].Payload)
		}
	}
	return k
}

// fireTimer runs a popped timer event through the generation discipline.
func (s *Sim) fireTimer(p evPayload) {
	s.stats.Timers++
	s.obs.Inc(obs.CSimTimers)
	sl := &s.timers[p.slot]
	if sl.gen != p.gen {
		// Lazily deleted: Stop invalidated the slot; the popped event
		// was its sole owner, so the slot is free for reuse now.
		s.freeTimers = append(s.freeTimers, p.slot)
		return
	}
	fn := sl.fn
	sl.fn = nil
	sl.gen++
	s.freeTimers = append(s.freeTimers, p.slot)
	// fn may arm new timers and grow s.timers; all slot bookkeeping is
	// done before the call so reentrancy is safe.
	fn()
}

// Run executes events until the queue drains or until the optional deadline
// (a virtual time) is passed. A zero deadline means run to quiescence. It
// advances on the batched drain path; the deadline is checked per batch,
// which is exact because a whole batch shares one timestamp.
func (s *Sim) Run(deadline time.Duration) error {
	for {
		if s.queueLen() == 0 {
			return nil
		}
		if deadline > 0 && s.headAt() > deadline {
			s.now = deadline
			return nil
		}
		if _, err := s.StepBatch(); err != nil {
			return err
		}
	}
}

// RunUntilIdle drains the event queue completely on the batched path.
func (s *Sim) RunUntilIdle() error { return s.Run(0) }

// --- timers -------------------------------------------------------------

// timerSlot is a pooled callback cell. gen detects stale Timer handles and
// lazily deleted queue entries: it is bumped on Stop and on fire, so a
// handle or event carrying an older generation is ignored.
type timerSlot struct {
	fn  func()
	gen uint32
}

// Timer is a cancellable scheduled callback. The zero value is inert.
type Timer struct {
	s    *Sim
	slot int32
	gen  uint32
}

// Stop cancels the timer if it has not fired. Stopping an already-fired or
// zero Timer is a no-op. The queue entry is deleted lazily: it stays in the
// heap and is discarded (still counted in Stats.Timers) when popped.
func (t Timer) Stop() {
	if t.s == nil {
		return
	}
	sl := &t.s.timers[t.slot]
	if sl.gen == t.gen {
		sl.gen++
		sl.fn = nil
	}
}

// afterFunc schedules fn on the simulation clock and returns its handle.
func (s *Sim) afterFunc(d time.Duration, fn func()) Timer {
	var slot int32
	if n := len(s.freeTimers); n > 0 {
		slot = s.freeTimers[n-1]
		s.freeTimers = s.freeTimers[:n-1]
		s.timers[slot].fn = fn
	} else {
		slot = int32(len(s.timers))
		s.timers = append(s.timers, timerSlot{fn: fn})
	}
	gen := s.timers[slot].gen
	s.schedule(s.now+d, evPayload{kind: evTimer, slot: slot, gen: gen})
	return Timer{s: s, slot: slot, gen: gen}
}

// --- node ---------------------------------------------------------------

// Node is a host's handle onto the network: its identity, its clock, and
// its transmit/timer facilities.
type Node struct {
	sim  *Sim
	addr ipv4.Addr
	host Host
}

// Addr returns the node's IPv4 address.
func (n *Node) Addr() ipv4.Addr { return n.addr }

// Now returns the current virtual time.
func (n *Node) Now() time.Duration { return n.sim.now }

// Rand returns the simulation's deterministic random source.
func (n *Node) Rand() *rand.Rand { return n.sim.rng }

// Send transmits a datagram from this node. Src is stamped automatically.
func (n *Node) Send(dst ipv4.Addr, srcPort, dstPort uint16, payload []byte) {
	n.sim.send(Datagram{
		Src: n.addr, Dst: dst,
		SrcPort: srcPort, DstPort: dstPort,
		Payload: payload,
	}, false)
}

// SendSpoofed transmits a datagram with a forged source address — the
// primitive behind the paper's DNS amplification threat model (§II-C).
func (n *Node) SendSpoofed(src, dst ipv4.Addr, srcPort, dstPort uint16, payload []byte) {
	n.sim.send(Datagram{
		Src: src, Dst: dst,
		SrcPort: srcPort, DstPort: dstPort,
		Payload: payload,
	}, false)
}

// PayloadBuf returns a zero-length scratch buffer from the simulation's
// payload pool, for building a packet to pass to SendPooled.
func (n *Node) PayloadBuf() []byte { return n.sim.getPayload() }

// SendPooled is Send for payloads built in a PayloadBuf buffer: the buffer
// is returned to the pool once the datagram is consumed (delivered and the
// receiving handler has returned, lost, or dead-lettered). The receiver
// must not retain the payload slice beyond its HandleDatagram call — every
// consumer in this codebase decodes or copies it synchronously.
func (n *Node) SendPooled(dst ipv4.Addr, srcPort, dstPort uint16, payload []byte) {
	n.sim.send(Datagram{
		Src: n.addr, Dst: dst,
		SrcPort: srcPort, DstPort: dstPort,
		Payload: payload,
	}, true)
}

// After schedules fn to run after d of virtual time and returns a handle
// that can cancel it.
func (n *Node) After(d time.Duration, fn func()) Timer {
	return n.sim.afterFunc(d, fn)
}

// --- event queue --------------------------------------------------------

// evPayload is the non-key part of a queued event. The (at, seq) sort keys
// live in the heap's parallel arrays (or inline in the timer ring); the
// payload sits in the evSlab arena and never moves during sifts.
type evPayload struct {
	dg   Datagram
	slot int32  // timer slot (evTimer)
	gen  uint32 // timer generation at scheduling time (evTimer)
	kind evKind
	// pooled marks dg.Payload as pool-owned (evDeliver).
	pooled bool
}

type evKind uint8

const (
	evDeliver evKind = iota + 1
	evTimer
)

// ringEntry is one timer in the monotone fast-path ring. Timers carry no
// datagram, so the whole event fits inline — no slab indirection.
type ringEntry struct {
	at   time.Duration
	seq  uint64
	slot int32
	gen  uint32
}

// ringCap bounds the timer ring (power of two; allocated lazily on the
// first timer arm). 2048 covers the retransmission engine's worst in-flight
// backlog at the calibration scales while staying cache-resident.
const ringCap = 2048

// queueLen returns the total number of queued events across heap and ring.
func (s *Sim) queueLen() int { return len(s.heapAt) + int(s.ringLen) }

// headAt returns the minimum queued timestamp. The queue must be non-empty.
func (s *Sim) headAt() time.Duration {
	if s.ringLen > 0 {
		ra := s.ring[s.ringHead].at
		if len(s.heapAt) == 0 || ra < s.heapAt[0] {
			return ra
		}
		return s.heapAt[0]
	}
	return s.heapAt[0]
}

// headDeliverTo reports whether the next event to pop is a delivery at
// instant `at` addressed to dst — the adjacency probe of the batched drain.
func (s *Sim) headDeliverTo(at time.Duration, dst ipv4.Addr) bool {
	if len(s.heapAt) == 0 || s.heapAt[0] != at {
		return false
	}
	if s.ringLen > 0 {
		// A ring timer at the same instant with a smaller seq pops first,
		// breaking the adjacent run. (Its at can never be below the global
		// minimum `at`.)
		if r := &s.ring[s.ringHead]; r.at == at && r.seq < s.heapSeq[0] {
			return false
		}
	}
	p := &s.evSlab[s.heapRef[0]]
	return p.kind == evDeliver && p.dg.Dst == dst
}

// schedule stamps ev with (at, seq) and enqueues it. The (at, seq) key is a
// total order, so the pop sequence — and with it the whole run — is
// independent of which structure (ring or heap) holds an event and of the
// heap's internal layout. Timers try the monotone ring first.
func (s *Sim) schedule(at time.Duration, ev evPayload) {
	seq := s.seq
	s.seq++
	if ev.kind == evTimer {
		if s.ringPush(at, seq, ev.slot, ev.gen) {
			s.qstats.RingTimers++
			s.obs.Inc(obs.CSimTimerRing)
			return
		}
		s.qstats.HeapTimers++
		s.obs.Inc(obs.CSimTimerHeap)
	}
	var ref int32
	if n := len(s.freeEv); n > 0 {
		ref = s.freeEv[n-1]
		s.freeEv = s.freeEv[:n-1]
		s.evSlab[ref] = ev
	} else {
		ref = int32(len(s.evSlab))
		s.evSlab = append(s.evSlab, ev)
	}
	s.heapPush(at, seq, ref)
}

// ringPush appends a timer to the ring when it fits and keeps the tail
// monotone; it reports false (heap fallback) on overflow or when the
// deadline regresses below the last accepted one. Ring order is strictly
// increasing (at, seq) by construction, so popping its head is always
// popping its minimum.
func (s *Sim) ringPush(at time.Duration, seq uint64, slot int32, gen uint32) bool {
	if s.ringLen > 0 {
		if at < s.ringTailAt || s.ringLen == uint32(len(s.ring)) {
			return false
		}
	} else if s.ring == nil {
		s.ring = make([]ringEntry, ringCap)
		s.ringMask = ringCap - 1
	}
	s.ring[(s.ringHead+s.ringLen)&s.ringMask] = ringEntry{at: at, seq: seq, slot: slot, gen: gen}
	s.ringLen++
	s.ringTailAt = at
	return true
}

// heapPush inserts (at, seq, ref) into the SoA 4-ary heap, sifting up with
// a hole: parents shift down and the new key is written once at its final
// position.
func (s *Sim) heapPush(at time.Duration, seq uint64, ref int32) {
	s.heapAt = append(s.heapAt, at)
	s.heapSeq = append(s.heapSeq, seq)
	s.heapRef = append(s.heapRef, ref)
	hAt, hSeq, hRef := s.heapAt, s.heapSeq, s.heapRef
	i := len(hAt) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if hAt[p] < at || (hAt[p] == at && hSeq[p] < seq) {
			break
		}
		hAt[i], hSeq[i], hRef[i] = hAt[p], hSeq[p], hRef[p]
		i = p
	}
	hAt[i], hSeq[i], hRef[i] = at, seq, ref
}

// heapPop removes and returns the heap minimum, freeing its slab slot. The
// heap must be non-empty. Sift-down also uses the hole technique, and the
// comparison loop touches only the key arrays — a node's four child keys
// are contiguous.
func (s *Sim) heapPop() (time.Duration, evPayload) {
	hAt, hSeq, hRef := s.heapAt, s.heapSeq, s.heapRef
	at := hAt[0]
	ref := hRef[0]
	n := len(hAt) - 1
	if n > 0 {
		lat, lseq, lref := hAt[n], hSeq[n], hRef[n]
		i := 0
		for {
			c := i*4 + 1
			if c >= n {
				break
			}
			m := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if hAt[j] < hAt[m] || (hAt[j] == hAt[m] && hSeq[j] < hSeq[m]) {
					m = j
				}
			}
			if lat < hAt[m] || (lat == hAt[m] && lseq < hSeq[m]) {
				break
			}
			hAt[i], hSeq[i], hRef[i] = hAt[m], hSeq[m], hRef[m]
			i = m
		}
		hAt[i], hSeq[i], hRef[i] = lat, lseq, lref
	}
	s.heapAt = hAt[:n]
	s.heapSeq = hSeq[:n]
	s.heapRef = hRef[:n]
	p := s.evSlab[ref]
	s.evSlab[ref].dg.Payload = nil // drop payload reference
	s.freeEv = append(s.freeEv, ref)
	return at, p
}

// popNext removes and returns the minimum event across ring and heap by
// (at, seq). The queue must be non-empty.
func (s *Sim) popNext() (time.Duration, evPayload) {
	if s.ringLen > 0 {
		r := &s.ring[s.ringHead]
		if len(s.heapAt) == 0 || r.at < s.heapAt[0] || (r.at == s.heapAt[0] && r.seq < s.heapSeq[0]) {
			at := r.at
			p := evPayload{slot: r.slot, gen: r.gen, kind: evTimer}
			s.ringHead = (s.ringHead + 1) & s.ringMask
			s.ringLen--
			return at, p
		}
	}
	return s.heapPop()
}
