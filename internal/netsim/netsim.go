// Package netsim is a deterministic discrete-event simulator of a UDP-like
// IPv4 network. It is the substrate on which the reproduction runs the
// paper's measurement: the prober, the root/TLD/authoritative name servers
// and millions of simulated open resolvers are all hosts exchanging
// datagrams over a virtual network with configurable latency, jitter and
// loss, under a virtual clock.
//
// The simulator is single-threaded and fully deterministic: a run is a pure
// function of (configuration, seed). Virtual time advances only when the
// event at the head of the queue is executed, so a campaign that takes "10
// hours and 35 minutes" of virtual time (the paper's Table II) completes in
// seconds of wall-clock time.
package netsim

import (
	"container/heap"
	"errors"
	"math/rand"
	"time"

	"openresolver/internal/ipv4"
)

// Datagram is one UDP-like packet in flight.
type Datagram struct {
	Src, Dst         ipv4.Addr
	SrcPort, DstPort uint16
	Payload          []byte
}

// Host is a network endpoint. HandleDatagram is invoked by the event loop
// when a datagram addressed to the host's address is delivered; the handler
// may send packets and arm timers through the supplied Node.
type Host interface {
	HandleDatagram(n *Node, dg Datagram)
}

// HostFunc adapts a function to the Host interface.
type HostFunc func(n *Node, dg Datagram)

// HandleDatagram implements Host.
func (f HostFunc) HandleDatagram(n *Node, dg Datagram) { f(n, dg) }

// LatencyModel returns the one-way delivery delay for a packet. The rng is
// the simulation's deterministic source; models may use it for jitter.
type LatencyModel func(src, dst ipv4.Addr, rng *rand.Rand) time.Duration

// ConstantLatency returns a model with a fixed one-way delay.
func ConstantLatency(d time.Duration) LatencyModel {
	return func(ipv4.Addr, ipv4.Addr, *rand.Rand) time.Duration { return d }
}

// UniformLatency returns a model drawing delays uniformly from [lo, hi).
func UniformLatency(lo, hi time.Duration) LatencyModel {
	if hi <= lo {
		return ConstantLatency(lo)
	}
	return func(_, _ ipv4.Addr, rng *rand.Rand) time.Duration {
		return lo + time.Duration(rng.Int63n(int64(hi-lo)))
	}
}

// Config parameterizes a simulation.
type Config struct {
	// Seed drives every random decision in the run.
	Seed int64
	// Latency is the one-way delay model; nil means a constant 20ms.
	Latency LatencyModel
	// Loss is the probability in [0,1) that any datagram is dropped in
	// flight. The 2013 campaign's send shortfall is modeled with this.
	Loss float64
	// MaxQueuedEvents bounds the event queue as a safety net against
	// runaway feedback loops; 0 means no bound.
	MaxQueuedEvents int
}

// Stats are cumulative counters of a simulation run.
type Stats struct {
	Sent        uint64 // datagrams and stream segments submitted by hosts
	Delivered   uint64 // datagrams/segments handed to a registered endpoint
	Lost        uint64 // datagrams dropped by the loss model
	NoRoute     uint64 // datagrams to addresses with no registered host
	Timers      uint64 // timer events fired
	StreamBytes uint64 // bytes carried over stream (TCP-like) connections
}

// Sim is a discrete-event network simulation.
type Sim struct {
	cfg       Config
	now       time.Duration
	rng       *rand.Rand
	events    eventHeap
	seq       uint64
	hosts     map[ipv4.Addr]*Node
	listeners map[listenerKey]StreamAccept
	stats     Stats
}

// ErrEventQueueFull is returned by Run when MaxQueuedEvents is exceeded.
var ErrEventQueueFull = errors.New("netsim: event queue limit exceeded")

// New creates a simulation.
func New(cfg Config) *Sim {
	if cfg.Latency == nil {
		cfg.Latency = ConstantLatency(20 * time.Millisecond)
	}
	return &Sim{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		hosts: make(map[ipv4.Addr]*Node),
	}
}

// Now returns the current virtual time since the start of the run.
func (s *Sim) Now() time.Duration { return s.now }

// Stats returns a snapshot of the run counters.
func (s *Sim) Stats() Stats { return s.stats }

// Rand returns the simulation's deterministic random source. It must only
// be used from within event handlers (the simulator is single-threaded).
func (s *Sim) Rand() *rand.Rand { return s.rng }

// Register attaches host at addr and returns its Node handle. Registering
// an address twice replaces the previous host but preserves the Node
// identity seen by pending timers.
func (s *Sim) Register(addr ipv4.Addr, h Host) *Node {
	if n, ok := s.hosts[addr]; ok {
		n.host = h
		return n
	}
	n := &Node{sim: s, addr: addr, host: h}
	s.hosts[addr] = n
	return n
}

// Unregister detaches the host at addr; packets to it then count as NoRoute.
func (s *Sim) Unregister(addr ipv4.Addr) {
	delete(s.hosts, addr)
}

// Lookup returns the node registered at addr, if any.
func (s *Sim) Lookup(addr ipv4.Addr) (*Node, bool) {
	n, ok := s.hosts[addr]
	return n, ok
}

// NumHosts returns the number of registered hosts.
func (s *Sim) NumHosts() int { return len(s.hosts) }

// send enqueues delivery of dg subject to loss and latency.
func (s *Sim) send(dg Datagram) {
	s.stats.Sent++
	if s.cfg.Loss > 0 && s.rng.Float64() < s.cfg.Loss {
		s.stats.Lost++
		return
	}
	delay := s.cfg.Latency(dg.Src, dg.Dst, s.rng)
	s.schedule(s.now+delay, event{kind: evDeliver, dg: dg})
}

func (s *Sim) schedule(at time.Duration, ev event) {
	ev.at = at
	ev.seq = s.seq
	s.seq++
	heap.Push(&s.events, ev)
}

// Step executes the next event. It returns false when the queue is empty.
func (s *Sim) Step() (bool, error) {
	if s.cfg.MaxQueuedEvents > 0 && s.events.Len() > s.cfg.MaxQueuedEvents {
		return false, ErrEventQueueFull
	}
	if s.events.Len() == 0 {
		return false, nil
	}
	ev := heap.Pop(&s.events).(event)
	s.now = ev.at
	switch ev.kind {
	case evDeliver:
		n, ok := s.hosts[ev.dg.Dst]
		if !ok {
			s.stats.NoRoute++
			return true, nil
		}
		s.stats.Delivered++
		n.host.HandleDatagram(n, ev.dg)
	case evTimer:
		s.stats.Timers++
		if !ev.timer.stopped {
			ev.timer.fn()
		}
	}
	return true, nil
}

// Run executes events until the queue drains or until the optional deadline
// (a virtual time) is passed. A zero deadline means run to quiescence.
func (s *Sim) Run(deadline time.Duration) error {
	for {
		if deadline > 0 && s.events.Len() > 0 && s.events[0].at > deadline {
			s.now = deadline
			return nil
		}
		ok, err := s.Step()
		if err != nil {
			return err
		}
		if !ok {
			return nil
		}
	}
}

// Timer is a cancellable scheduled callback.
type Timer struct {
	stopped bool
	fn      func()
}

// Stop cancels the timer if it has not fired.
func (t *Timer) Stop() { t.stopped = true }

// Node is a host's handle onto the network: its identity, its clock, and
// its transmit/timer facilities.
type Node struct {
	sim  *Sim
	addr ipv4.Addr
	host Host
}

// Addr returns the node's IPv4 address.
func (n *Node) Addr() ipv4.Addr { return n.addr }

// Now returns the current virtual time.
func (n *Node) Now() time.Duration { return n.sim.now }

// Rand returns the simulation's deterministic random source.
func (n *Node) Rand() *rand.Rand { return n.sim.rng }

// Send transmits a datagram from this node. Src is stamped automatically.
func (n *Node) Send(dst ipv4.Addr, srcPort, dstPort uint16, payload []byte) {
	n.sim.send(Datagram{
		Src: n.addr, Dst: dst,
		SrcPort: srcPort, DstPort: dstPort,
		Payload: payload,
	})
}

// SendSpoofed transmits a datagram with a forged source address — the
// primitive behind the paper's DNS amplification threat model (§II-C).
func (n *Node) SendSpoofed(src, dst ipv4.Addr, srcPort, dstPort uint16, payload []byte) {
	n.sim.send(Datagram{
		Src: src, Dst: dst,
		SrcPort: srcPort, DstPort: dstPort,
		Payload: payload,
	})
}

// After schedules fn to run after d of virtual time and returns a handle
// that can cancel it.
func (n *Node) After(d time.Duration, fn func()) *Timer {
	t := &Timer{fn: fn}
	n.sim.schedule(n.sim.now+d, event{kind: evTimer, timer: t})
	return t
}

// event is one entry of the simulation's priority queue.
type event struct {
	at    time.Duration
	seq   uint64 // FIFO tie-break for equal timestamps: determinism
	kind  evKind
	dg    Datagram
	timer *Timer
}

type evKind uint8

const (
	evDeliver evKind = iota + 1
	evTimer
)

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = event{}
	*h = old[:n-1]
	return ev
}
