package netsim

import (
	"math/rand"
	"testing"
	"time"

	"openresolver/internal/ipv4"
)

// TestHostTableCollisionsAndTombstones exercises the open-addressed table
// through growth, dense collision chains, tombstoned deletions and
// tombstone reuse — the paths the old Go map handled implicitly.
func TestHostTableCollisionsAndTombstones(t *testing.T) {
	s := New(Config{Seed: 4})
	h := HostFunc(func(*Node, Datagram) {})
	const N = 10000
	addrs := make([]ipv4.Addr, N)
	for i := range addrs {
		// Sequential addresses: adjacent Fibonacci hashes, long probe runs.
		addrs[i] = ipv4.Addr(0x0A000000 + uint32(i))
		s.Register(addrs[i], h)
	}
	if got := s.NumHosts(); got != N {
		t.Fatalf("NumHosts = %d, want %d", got, N)
	}
	for _, a := range addrs {
		n, ok := s.Lookup(a)
		if !ok || n.Addr() != a {
			t.Fatalf("Lookup(%v) = %v, %v", a, n, ok)
		}
	}
	if _, ok := s.Lookup(ipv4.Addr(0x0B000000)); ok {
		t.Error("lookup of unregistered address succeeded")
	}

	// Delete every third entry; the survivors must stay reachable through
	// the tombstones left in their probe chains.
	removed := 0
	for i := 0; i < N; i += 3 {
		s.Unregister(addrs[i])
		removed++
	}
	if got := s.NumHosts(); got != N-removed {
		t.Fatalf("NumHosts after unregister = %d, want %d", got, N-removed)
	}
	for i, a := range addrs {
		_, ok := s.Lookup(a)
		if want := i%3 != 0; ok != want {
			t.Fatalf("Lookup(%v) = %v, want %v", a, ok, want)
		}
	}

	// Re-register the deleted addresses (tombstone reuse) as fresh nodes.
	for i := 0; i < N; i += 3 {
		n := s.Register(addrs[i], h)
		if n.Addr() != addrs[i] {
			t.Fatalf("re-registered node has addr %v, want %v", n.Addr(), addrs[i])
		}
	}
	if got := s.NumHosts(); got != N {
		t.Fatalf("NumHosts after re-register = %d, want %d", got, N)
	}
	for _, a := range addrs {
		if _, ok := s.Lookup(a); !ok {
			t.Fatalf("Lookup(%v) failed after re-register", a)
		}
	}
}

// TestUnregisterKeepsStaleNodeUsable pins the stale-handle contract: a
// Node obtained before Unregister keeps working (timers fire, sends leave),
// exactly as when hosts were heap-allocated behind a map.
func TestUnregisterKeepsStaleNodeUsable(t *testing.T) {
	s := New(Config{Seed: 8, Latency: ConstantLatency(time.Millisecond)})
	var gotPayload string
	s.Register(addrB, HostFunc(func(_ *Node, dg Datagram) { gotPayload = string(dg.Payload) }))
	n := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	fired := false
	n.After(time.Millisecond, func() { fired = true })
	s.Unregister(addrA)
	n.Send(addrB, 1, 2, []byte("from the grave"))
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("timer armed before Unregister did not fire")
	}
	if gotPayload != "from the grave" {
		t.Errorf("stale-node send delivered %q", gotPayload)
	}
}

// TestSpawnerLazyRegistration covers the lazy host instantiation hook: the
// spawner runs once per unknown destination, a successful spawn receives
// the triggering datagram, a declined one counts as NoRoute, and already-
// registered hosts never consult the spawner.
func TestSpawnerLazyRegistration(t *testing.T) {
	s := New(Config{Seed: 5, Latency: ConstantLatency(time.Millisecond)})
	src := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	var spawnCalls []ipv4.Addr
	delivered := 0
	s.SetSpawner(func(addr ipv4.Addr) bool {
		spawnCalls = append(spawnCalls, addr)
		if addr != addrB {
			return false
		}
		s.Register(addrB, HostFunc(func(*Node, Datagram) { delivered++ }))
		return true
	})
	src.Send(addrB, 1, 2, []byte("x")) // spawns B, delivered
	src.Send(addrC, 1, 2, []byte("y")) // spawner declines: NoRoute
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	src.Send(addrB, 1, 2, []byte("z")) // B registered: no spawner call
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(spawnCalls) != 2 || spawnCalls[0] != addrB || spawnCalls[1] != addrC {
		t.Errorf("spawner calls = %v, want [%v %v]", spawnCalls, addrB, addrC)
	}
	if delivered != 2 {
		t.Errorf("delivered = %d, want 2", delivered)
	}
	st := s.Stats()
	if st.Delivered != 2 || st.NoRoute != 1 {
		t.Errorf("stats = %+v, want Delivered 2, NoRoute 1", st)
	}
}

// TestTimerSlotReuseSafety pins the generation discipline: a handle from a
// fired timer must not cancel the slot's next occupant, stopped timers are
// still counted by Stats.Timers (the lazily deleted queue entry pops), and
// zero/double Stop are inert.
func TestTimerSlotReuseSafety(t *testing.T) {
	s := New(Config{Seed: 6})
	n := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	fired1, fired2 := false, false
	t1 := n.After(time.Millisecond, func() { fired1 = true })
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if !fired1 {
		t.Fatal("t1 did not fire")
	}
	t2 := n.After(time.Millisecond, func() { fired2 = true })
	if t2.slot != t1.slot {
		t.Fatalf("t2 did not reuse t1's slot (%d vs %d)", t2.slot, t1.slot)
	}
	t1.Stop() // stale: must not cancel t2
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if !fired2 {
		t.Error("stale Stop cancelled the slot's new occupant")
	}
	t2.Stop() // after fire: no-op
	var zero Timer
	zero.Stop() // inert

	before := s.Stats().Timers
	t3 := n.After(time.Millisecond, func() { t.Error("stopped timer fired") })
	t3.Stop()
	t3.Stop() // double Stop: no-op
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	// The stopped timer's queue entry still pops (lazy deletion) and is
	// counted, preserving the original Stats semantics.
	if got := s.Stats().Timers; got != before+1 {
		t.Errorf("Timers = %d, want %d (stopped timers still count)", got, before+1)
	}
}

// TestPayloadPoolRecycles proves a pooled payload buffer returns to the
// pool on each consumption path: delivered, lost, and dead-lettered.
func TestPayloadPoolRecycles(t *testing.T) {
	sameBacking := func(a, b []byte) bool {
		return cap(a) > 0 && cap(b) > 0 && &a[:1][0] == &b[:1][0]
	}

	t.Run("delivered", func(t *testing.T) {
		s := New(Config{Seed: 7, Latency: ConstantLatency(time.Millisecond)})
		var got string
		s.Register(addrB, HostFunc(func(_ *Node, dg Datagram) { got = string(dg.Payload) }))
		src := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
		buf := append(src.PayloadBuf(), "hello pool"...)
		src.SendPooled(addrB, 1, 2, buf)
		if err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		if got != "hello pool" {
			t.Fatalf("delivered %q", got)
		}
		if !sameBacking(buf, src.PayloadBuf()) {
			t.Error("buffer not recycled after delivery")
		}
	})

	t.Run("lost", func(t *testing.T) {
		s := New(Config{Seed: 7, Loss: 1.0})
		src := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
		buf := append(src.PayloadBuf(), "dropped"...)
		src.SendPooled(addrB, 1, 2, buf)
		if !sameBacking(buf, src.PayloadBuf()) {
			t.Error("buffer not recycled after loss")
		}
	})

	t.Run("noroute", func(t *testing.T) {
		s := New(Config{Seed: 7})
		src := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
		buf := append(src.PayloadBuf(), "dead letter"...)
		src.SendPooled(addrC, 1, 2, buf)
		if err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		if s.Stats().NoRoute != 1 {
			t.Fatalf("stats = %+v", s.Stats())
		}
		if !sameBacking(buf, src.PayloadBuf()) {
			t.Error("buffer not recycled after NoRoute")
		}
	})
}

// TestHeapOrderingProperty drives the 4-ary heap with thousands of random
// deadlines and asserts the pop order is exactly the (at, seq) total order:
// nondecreasing times, insertion order within equal times. The dense variant
// compresses deadlines into a handful of instants (heavy same-timestamp ties,
// the StepBatch drain's bread and butter) and cancels a third of the timers
// mid-queue to exercise lazy deletion through both the SoA heap and the ring.
func TestHeapOrderingProperty(t *testing.T) {
	type firing struct {
		at  time.Duration
		idx int
	}
	check := func(t *testing.T, fired []firing, want int) {
		t.Helper()
		if len(fired) != want {
			t.Fatalf("fired %d/%d timers", len(fired), want)
		}
		for i := 1; i < len(fired); i++ {
			prev, cur := fired[i-1], fired[i]
			if cur.at < prev.at {
				t.Fatalf("pop %d at %v after %v: time order violated", i, cur.at, prev.at)
			}
			if cur.at == prev.at && cur.idx < prev.idx {
				t.Fatalf("pop %d: FIFO tie-break violated (%d before %d at %v)",
					i, prev.idx, cur.idx, cur.at)
			}
		}
	}
	t.Run("sparse", func(t *testing.T) {
		s := New(Config{Seed: 3})
		n := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
		rng := rand.New(rand.NewSource(99))
		var fired []firing
		const N = 5000
		for i := 0; i < N; i++ {
			i := i
			d := time.Duration(rng.Intn(200)) * time.Millisecond
			n.After(d, func() { fired = append(fired, firing{s.Now(), i}) })
		}
		if err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		check(t, fired, N)
	})
	t.Run("dense-ties-with-cancels", func(t *testing.T) {
		s := New(Config{Seed: 3})
		n := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
		rng := rand.New(rand.NewSource(101))
		var fired []firing
		const N = 5000
		stopped := make(map[int]bool)
		handles := make([]Timer, N)
		for i := 0; i < N; i++ {
			i := i
			// Only 8 distinct instants: every pop resolves a FIFO tie.
			d := time.Duration(rng.Intn(8)) * time.Millisecond
			handles[i] = n.After(d, func() { fired = append(fired, firing{s.Now(), i}) })
		}
		for i := 0; i < N; i += 3 {
			handles[i].Stop()
			stopped[i] = true
		}
		if err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		check(t, fired, N-len(stopped))
		for _, f := range fired {
			if stopped[f.idx] {
				t.Fatalf("cancelled timer %d fired at %v", f.idx, f.at)
			}
		}
		// Lazy deletion still pops (and counts) every scheduled entry.
		if got := s.Stats().Timers; got != N {
			t.Fatalf("Stats.Timers = %d, want %d (cancelled entries still popped)", got, N)
		}
	})
}

// TestSendStepAllocBudget is the event core's allocation budget: in steady
// state a datagram send plus its delivery step, a timer arm plus its fire,
// and a pooled-payload round trip must all be allocation-free.
func TestSendStepAllocBudget(t *testing.T) {
	s := New(Config{Seed: 9, Latency: ConstantLatency(time.Millisecond)})
	s.Register(addrB, HostFunc(func(*Node, Datagram) {}))
	src := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	payload := []byte("probe")
	fn := func() {}
	step := func() {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ { // warm the queue, pool and timer slabs
		src.Send(addrB, 1, 2, payload)
		step()
		src.After(time.Millisecond, fn)
		step()
		src.SendPooled(addrB, 1, 2, append(src.PayloadBuf(), payload...))
		step()
	}
	if avg := testing.AllocsPerRun(200, func() {
		src.Send(addrB, 1, 2, payload)
		step()
	}); avg != 0 {
		t.Errorf("Send+Step allocates %v/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		src.After(time.Millisecond, fn)
		step()
	}); avg != 0 {
		t.Errorf("After+Step allocates %v/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		src.SendPooled(addrB, 1, 2, append(src.PayloadBuf(), payload...))
		step()
	}); avg != 0 {
		t.Errorf("pooled round trip allocates %v/op, want 0", avg)
	}
}
