package netsim

import (
	"bytes"
	"testing"
	"time"
)

func TestStreamDialSendClose(t *testing.T) {
	s := New(Config{Seed: 1, Latency: ConstantLatency(10 * time.Millisecond)})
	var serverGot [][]byte
	var serverClosed bool
	s.Listen(addrB, 53, func(c *Conn) {
		c.OnData(func(b []byte) {
			serverGot = append(serverGot, b)
			c.Send(append([]byte("ack:"), b...))
		})
		c.OnClose(func() { serverClosed = true })
	})
	dialer := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))

	var clientGot []byte
	var establishedAt time.Duration
	dialer.Dial(addrB, 53, func(c *Conn) {
		if c == nil {
			t.Error("dial failed")
			return
		}
		establishedAt = s.Now()
		if c.Local() != addrA || c.Remote() != addrB {
			t.Errorf("conn endpoints: %v → %v", c.Local(), c.Remote())
		}
		c.OnData(func(b []byte) {
			clientGot = b
			c.Close()
		})
		c.Send([]byte("hello"))
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if establishedAt != 20*time.Millisecond {
		t.Errorf("established at %v, want one RTT (20ms)", establishedAt)
	}
	if len(serverGot) != 1 || string(serverGot[0]) != "hello" {
		t.Errorf("server got %q", serverGot)
	}
	if string(clientGot) != "ack:hello" {
		t.Errorf("client got %q", clientGot)
	}
	if !serverClosed {
		t.Error("server not notified of close")
	}
	if s.Stats().StreamBytes == 0 {
		t.Error("stream bytes not counted")
	}
}

func TestStreamDialRefused(t *testing.T) {
	s := New(Config{Seed: 2, Latency: ConstantLatency(5 * time.Millisecond)})
	dialer := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	var gotNil, called bool
	dialer.Dial(addrC, 53, func(c *Conn) {
		called = true
		gotNil = c == nil
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if !called || !gotNil {
		t.Errorf("refused dial: called=%v nil=%v", called, gotNil)
	}
}

func TestStreamOrderingPreserved(t *testing.T) {
	s := New(Config{Seed: 3, Latency: ConstantLatency(time.Millisecond)})
	var got []byte
	s.Listen(addrB, 53, func(c *Conn) {
		c.OnData(func(b []byte) { got = append(got, b...) })
	})
	dialer := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	dialer.Dial(addrB, 53, func(c *Conn) {
		for i := byte(0); i < 10; i++ {
			c.Send([]byte{i})
		}
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	if !bytes.Equal(got, want) {
		t.Errorf("stream order = %v", got)
	}
}

func TestSendOnClosedConnDropped(t *testing.T) {
	s := New(Config{Seed: 4, Latency: ConstantLatency(time.Millisecond)})
	var received int
	s.Listen(addrB, 53, func(c *Conn) {
		c.OnData(func([]byte) { received++ })
	})
	dialer := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	dialer.Dial(addrB, 53, func(c *Conn) {
		c.Send([]byte("one"))
		c.Close()
		c.Send([]byte("two")) // dropped
	})
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if received != 1 {
		t.Errorf("received = %d, want 1", received)
	}
}
