package netsim

import (
	"testing"
	"time"

	"openresolver/internal/obs"
)

// TestInstrumentedSendStepAllocBudget re-runs the event core's allocation
// budget with a metrics shard attached: every Inc/Observe on the hot path
// is an atomic add into preallocated arrays, so the instrumented simulator
// must stay at zero allocations per send+step.
func TestInstrumentedSendStepAllocBudget(t *testing.T) {
	s := New(Config{Seed: 9, Latency: ConstantLatency(time.Millisecond)})
	sh := obs.NewShard("sim")
	s.SetObserver(sh)
	s.Register(addrB, HostFunc(func(*Node, Datagram) {}))
	src := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	payload := []byte("probe")
	step := func() {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		src.Send(addrB, 1, 2, payload)
		step()
		src.SendPooled(addrB, 1, 2, append(src.PayloadBuf(), payload...))
		step()
	}
	if avg := testing.AllocsPerRun(200, func() {
		src.Send(addrB, 1, 2, payload)
		step()
	}); avg != 0 {
		t.Errorf("instrumented Send+Step allocates %v/op, want 0", avg)
	}
	if avg := testing.AllocsPerRun(200, func() {
		src.SendPooled(addrB, 1, 2, append(src.PayloadBuf(), payload...))
		step()
	}); avg != 0 {
		t.Errorf("instrumented pooled round trip allocates %v/op, want 0", avg)
	}
	if sh.Counter(obs.CSimSent) == 0 || sh.Counter(obs.CSimDelivered) == 0 {
		t.Error("observer counted nothing — instrumentation not reached")
	}
	if sh.Histogram(obs.HQueueDepth).Count() == 0 {
		t.Error("queue-depth histogram empty")
	}
}

// TestObserverCountsMatchStats cross-checks the shard's counters against
// the simulator's own Stats over a lossy run.
func TestObserverCountsMatchStats(t *testing.T) {
	s := New(Config{Seed: 3, Latency: ConstantLatency(time.Millisecond), Loss: 0.3})
	sh := obs.NewShard("sim")
	s.SetObserver(sh)
	s.Register(addrB, HostFunc(func(*Node, Datagram) {}))
	src := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	for i := 0; i < 1000; i++ {
		src.Send(addrB, 1, 2, []byte("x"))
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if got := sh.Counter(obs.CSimSent); got != st.Sent {
		t.Errorf("sim.sent = %d, Stats.Sent = %d", got, st.Sent)
	}
	if got := sh.Counter(obs.CSimDelivered); got != st.Delivered {
		t.Errorf("sim.delivered = %d, Stats.Delivered = %d", got, st.Delivered)
	}
	if got := sh.Counter(obs.CSimLost); got != st.Lost {
		t.Errorf("sim.lost = %d, Stats.Lost = %d", got, st.Lost)
	}
}
