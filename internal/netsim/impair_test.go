package netsim

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"time"

	"openresolver/internal/ipv4"
)

// TestGilbertElliottStationaryConvergence is the burst-loss property test:
// over a long packet stream, the empirical time in the Bad state and the
// empirical loss rate must converge to the chain's stationary distribution.
func TestGilbertElliottStationaryConvergence(t *testing.T) {
	for _, tc := range []struct {
		name             string
		pgb, pbg, lg, lb float64
	}{
		{"paper-30pct", 0.05, 0.20, 0.125, 1.0},
		{"rare-deep-bursts", 0.01, 0.50, 0.0, 1.0},
		{"symmetric", 0.10, 0.10, 0.05, 0.60},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ge := &GilbertElliott{PGoodBad: tc.pgb, PBadGood: tc.pbg, LossGood: tc.lg, LossBad: tc.lb}
			rng := rand.New(rand.NewSource(42))
			const n = 400000
			drops := 0
			for i := 0; i < n; i++ {
				var f Fate
				ge.Apply(nil, 0, rng, &f)
				if f.Drop {
					drops++
				}
			}
			gotBad := float64(ge.BadPackets) / float64(ge.Packets)
			if wantBad := ge.StationaryBad(); math.Abs(gotBad-wantBad) > 0.01 {
				t.Errorf("time in Bad state = %.4f, stationary = %.4f", gotBad, wantBad)
			}
			gotLoss := float64(drops) / n
			if wantLoss := ge.MeanLoss(); math.Abs(gotLoss-wantLoss) > 0.01 {
				t.Errorf("empirical loss = %.4f, stationary mean = %.4f", gotLoss, wantLoss)
			}
		})
	}
}

// TestGilbertElliottBursts checks the chain actually loses in bursts: with
// a lossless Good state, consecutive drops must appear far more often than
// an i.i.d. channel of the same mean rate would produce.
func TestGilbertElliottBursts(t *testing.T) {
	ge := &GilbertElliott{PGoodBad: 0.05, PBadGood: 0.20, LossGood: 0, LossBad: 1}
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	drops, pairs := 0, 0
	prev := false
	for i := 0; i < n; i++ {
		var f Fate
		ge.Apply(nil, 0, rng, &f)
		if f.Drop {
			drops++
			if prev {
				pairs++
			}
		}
		prev = f.Drop
	}
	rate := float64(drops) / n
	// P(drop_i | drop_{i-1}) for the chain is 1-PBadGood = 0.8; for an
	// i.i.d. channel it would equal the marginal rate (~0.2).
	cond := float64(pairs) / float64(drops)
	if cond < 2*rate {
		t.Errorf("P(drop|drop) = %.3f barely above marginal %.3f: loss is not bursty", cond, rate)
	}
}

// TestReordererWindowBound is the reordering property test: an impaired
// packet is delayed by at most the configured window, never more, and the
// extra delay is always strictly positive when applied.
func TestReordererWindowBound(t *testing.T) {
	const window = 250 * time.Millisecond
	r := &Reorderer{P: 0.5, Window: window}
	rng := rand.New(rand.NewSource(3))
	hit := 0
	for i := 0; i < 100000; i++ {
		f := Fate{CorruptBit: -1}
		r.Apply(nil, 0, rng, &f)
		if f.ExtraDelay == 0 {
			continue
		}
		hit++
		if f.ExtraDelay > window {
			t.Fatalf("extra delay %v exceeds window %v", f.ExtraDelay, window)
		}
	}
	if frac := float64(hit) / 100000; math.Abs(frac-0.5) > 0.01 {
		t.Errorf("reordered fraction = %.3f, want ~0.5", frac)
	}
}

// TestReordererEndToEnd pins the bound through the full delivery path: with
// constant base latency, no packet may arrive later than base + window.
func TestReordererEndToEnd(t *testing.T) {
	const base, window = 20 * time.Millisecond, 100 * time.Millisecond
	sim := New(Config{
		Seed:        9,
		Latency:     ConstantLatency(base),
		Impairments: []Impairment{&Reorderer{P: 0.7, Window: window}},
	})
	var worst time.Duration
	var sent []time.Duration
	recv := 0
	sim.Register(2, HostFunc(func(n *Node, dg Datagram) {
		if d := n.Now() - sent[recv]; d > worst {
			worst = d
		}
		recv++
	}))
	src := sim.Register(1, HostFunc(func(*Node, Datagram) {}))
	for i := 0; i < 500; i++ {
		at := time.Duration(i) * time.Millisecond
		sent = append(sent, at)
		src.After(at, func() { src.Send(2, 1000, 53, []byte{1}) })
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if recv != 500 {
		t.Fatalf("delivered %d of 500", recv)
	}
	if worst > base+window {
		t.Errorf("worst delivery delay %v exceeds base+window %v", worst, base+window)
	}
	if fs := sim.FaultStats(); fs.Reordered == 0 {
		t.Error("no packets were reordered")
	}
}

// TestDuplicateNeverClonesCorruption is the aliasing property test: when a
// packet is both duplicated and corrupted, the duplicates must carry the
// original bytes — corruption applies to the delivered primary only, never
// to its "corrected twin" copies, and never to the sender's buffer.
func TestDuplicateNeverClonesCorruption(t *testing.T) {
	orig := []byte("probe-payload-under-test")
	sim := New(Config{
		Seed:    11,
		Latency: ConstantLatency(10 * time.Millisecond),
		Impairments: []Impairment{
			&Duplicator{P: 1, Copies: 2},
			&Corruptor{P: 1},
		},
	})
	var got [][]byte
	sim.Register(2, HostFunc(func(_ *Node, dg Datagram) {
		got = append(got, append([]byte(nil), dg.Payload...))
	}))
	src := sim.Register(1, HostFunc(func(*Node, Datagram) {}))
	buf := append([]byte(nil), orig...)
	src.Send(2, 1000, 53, buf)
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("delivered %d copies, want 3 (primary + 2 dups)", len(got))
	}
	clean, corrupt := 0, 0
	for _, p := range got {
		if bytes.Equal(p, orig) {
			clean++
			continue
		}
		corrupt++
		diff := 0
		for i := range p {
			diff += popcount8(p[i] ^ orig[i])
		}
		if diff != 1 {
			t.Errorf("corrupted copy differs in %d bits, want exactly 1", diff)
		}
	}
	if clean != 2 || corrupt != 1 {
		t.Errorf("clean=%d corrupt=%d, want 2 clean twins and 1 corrupted primary", clean, corrupt)
	}
	if !bytes.Equal(buf, orig) {
		t.Error("sender's buffer was mutated by corruption")
	}
	fs := sim.FaultStats()
	if fs.Duplicated != 2 || fs.Corrupted != 1 {
		t.Errorf("FaultStats = %+v, want Duplicated=2 Corrupted=1", fs)
	}
}

func popcount8(b byte) int {
	n := 0
	for ; b != 0; b &= b - 1 {
		n++
	}
	return n
}

// TestBlackhole checks per-prefix blackholing: packets into the dead block
// vanish (counted, not delivered) while other traffic is untouched, and a
// /32 block models a single dead host.
func TestBlackhole(t *testing.T) {
	sim := New(Config{
		Seed:    5,
		Latency: ConstantLatency(time.Millisecond),
		Impairments: []Impairment{
			&Blackhole{Block: ipv4.MustParseBlock("10.0.0.0/8")},
			&Blackhole{Block: ipv4.MustParseBlock("192.0.2.7/32")},
		},
	})
	delivered := map[ipv4.Addr]int{}
	sink := HostFunc(func(n *Node, _ Datagram) { delivered[n.Addr()]++ })
	dead := ipv4.MustParseAddr("10.1.2.3")
	deadHost := ipv4.MustParseAddr("192.0.2.7")
	alive := ipv4.MustParseAddr("192.0.2.8")
	for _, a := range []ipv4.Addr{dead, deadHost, alive} {
		sim.Register(a, sink)
	}
	src := sim.Register(1, HostFunc(func(*Node, Datagram) {}))
	for _, a := range []ipv4.Addr{dead, deadHost, alive} {
		src.Send(a, 1000, 53, []byte{1})
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if delivered[dead] != 0 || delivered[deadHost] != 0 {
		t.Errorf("blackholed destinations received traffic: %v", delivered)
	}
	if delivered[alive] != 1 {
		t.Errorf("alive host got %d packets, want 1", delivered[alive])
	}
	if fs := sim.FaultStats(); fs.Blackholed != 2 {
		t.Errorf("Blackholed = %d, want 2", fs.Blackholed)
	}
}

// TestBrownoutWindow checks the time-windowed outage: traffic before and
// after the window flows, traffic inside it is lost, so a campaign can
// degrade and recover mid-run on the virtual clock.
func TestBrownoutWindow(t *testing.T) {
	sim := New(Config{
		Seed:    6,
		Latency: ConstantLatency(time.Millisecond),
		Impairments: []Impairment{
			&Brownout{From: 1 * time.Second, Until: 2 * time.Second, Loss: 1},
		},
	})
	var deliveredAt []time.Duration
	sim.Register(2, HostFunc(func(n *Node, _ Datagram) {
		deliveredAt = append(deliveredAt, n.Now())
	}))
	src := sim.Register(1, HostFunc(func(*Node, Datagram) {}))
	for _, at := range []time.Duration{0, 500 * time.Millisecond, 1500 * time.Millisecond, 2500 * time.Millisecond} {
		src.After(at, func() { src.Send(2, 1000, 53, []byte{1}) })
	}
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(deliveredAt) != 3 {
		t.Fatalf("delivered %d packets, want 3 (one eaten by the brownout)", len(deliveredAt))
	}
	for _, at := range deliveredAt {
		if at >= time.Second && at < 2*time.Second+time.Millisecond {
			t.Errorf("packet delivered at %v, inside the outage window", at)
		}
	}
	if fs := sim.FaultStats(); fs.BrownedOut != 1 {
		t.Errorf("BrownedOut = %d, want 1", fs.BrownedOut)
	}
}

// TestWindowedPhase checks the generic phase combinator: the inner
// impairment only acts inside [From, Until).
func TestWindowedPhase(t *testing.T) {
	w := &Windowed{From: time.Second, Until: 2 * time.Second, Inner: &IIDLoss{P: 1}}
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct {
		now  time.Duration
		drop bool
	}{
		{0, false}, {time.Second - 1, false}, {time.Second, true},
		{2*time.Second - 1, true}, {2 * time.Second, false},
	} {
		f := Fate{CorruptBit: -1}
		w.Apply(nil, tc.now, rng, &f)
		if f.Drop != tc.drop {
			t.Errorf("at %v: drop = %v, want %v", tc.now, f.Drop, tc.drop)
		}
	}
	// Zero Until means forever after From.
	open := &Windowed{From: time.Second, Inner: &IIDLoss{P: 1}}
	f := Fate{CorruptBit: -1}
	open.Apply(nil, time.Hour, rng, &f)
	if !f.Drop {
		t.Error("open-ended window inactive after From")
	}
}

// TestImpairmentDeterminism: identical (config, seed) produce identical
// fault trajectories, including the stateful Gilbert–Elliott chain.
func TestImpairmentDeterminism(t *testing.T) {
	run := func() (Stats, FaultStats) {
		imps, err := ParseImpairments("ge:0.05,0.2,0.125,1;dup:0.02;reorder:0.1,50ms;corrupt:0.05;blackhole:10.0.0.0/8")
		if err != nil {
			t.Fatal(err)
		}
		sim := New(Config{Seed: 99, Latency: UniformLatency(5*time.Millisecond, 50*time.Millisecond), Impairments: imps})
		sink := HostFunc(func(*Node, Datagram) {})
		targets := []ipv4.Addr{ipv4.MustParseAddr("10.0.0.1"), ipv4.MustParseAddr("192.0.2.1"), ipv4.MustParseAddr("198.51.100.1")}
		for _, a := range targets[1:] {
			sim.Register(a, sink)
		}
		src := sim.Register(1, sink)
		for i := 0; i < 5000; i++ {
			dst := targets[i%len(targets)]
			at := time.Duration(i) * 100 * time.Microsecond
			src.After(at, func() { src.Send(dst, 1000, 53, []byte("abcdefgh")) })
		}
		if err := sim.Run(0); err != nil {
			t.Fatal(err)
		}
		return sim.Stats(), sim.FaultStats()
	}
	s1, f1 := run()
	s2, f2 := run()
	if s1 != s2 || f1 != f2 {
		t.Errorf("non-deterministic run:\n  stats %+v vs %+v\n  faults %+v vs %+v", s1, s2, f1, f2)
	}
	if f1.BurstDrops == 0 || f1.Duplicated == 0 || f1.Corrupted == 0 || f1.Reordered == 0 || f1.Blackholed == 0 {
		t.Errorf("expected every impairment to fire: %+v", f1)
	}
}

// TestParseImpairments covers the spec grammar: kinds, argument counts,
// the @window suffix, and rejection of malformed specs.
func TestParseImpairments(t *testing.T) {
	imps, err := ParseImpairments("ge:0.05,0.2,0.125,1@2m..20m; dup:0.01,3 ;loss:0.1;reorder:0.2,100ms;corrupt:0.01;blackhole:10.0.0.0/8,src;brownout:1m,2m,0.9")
	if err != nil {
		t.Fatal(err)
	}
	if len(imps) != 7 {
		t.Fatalf("parsed %d impairments, want 7", len(imps))
	}
	w, ok := imps[0].(*Windowed)
	if !ok || w.From != 2*time.Minute || w.Until != 20*time.Minute {
		t.Errorf("imps[0] = %#v, want Windowed 2m..20m", imps[0])
	}
	ge, ok := w.Inner.(*GilbertElliott)
	if !ok || ge.PGoodBad != 0.05 || ge.LossBad != 1 {
		t.Errorf("windowed inner = %#v, want GilbertElliott", w.Inner)
	}
	if math.Abs(ge.MeanLoss()-0.3) > 0.001 {
		t.Errorf("MeanLoss = %.4f, want 0.30", ge.MeanLoss())
	}
	if d, ok := imps[1].(*Duplicator); !ok || d.Copies != 3 {
		t.Errorf("imps[1] = %#v, want Duplicator copies=3", imps[1])
	}
	if b, ok := imps[5].(*Blackhole); !ok || !b.MatchSrc {
		t.Errorf("imps[5] = %#v, want Blackhole matching src", imps[5])
	}
	if b, ok := imps[6].(*Brownout); !ok || b.Loss != 0.9 {
		t.Errorf("imps[6] = %#v, want Brownout", imps[6])
	}

	for _, bad := range []string{
		"", "bogus:1", "loss:1.5", "loss:x", "ge:0.1,0.2", "reorder:0.5",
		"reorder:0.5,-3s", "dup:0.1,0", "blackhole:", "blackhole:10.0.0.0/8,dst",
		"brownout:2m,1m,0.5", "loss:0.1@x..y", "loss:0.1@5m..2m",
	} {
		if _, err := ParseImpairments(bad); err == nil {
			t.Errorf("spec %q: expected error", bad)
		}
	}
}

// TestImpairedPooledPayloadRecycling: pooled payloads survive the fault
// path — drops, duplicates and corruption all return buffers to the pool
// rather than leaking them, so the steady-state send loop stays alloc-free
// under impairment too.
func TestImpairedPooledPayloadRecycling(t *testing.T) {
	sim := New(Config{
		Seed:    13,
		Latency: ConstantLatency(time.Millisecond),
		Impairments: []Impairment{
			&IIDLoss{P: 0.3}, &Duplicator{P: 0.3, Copies: 1}, &Corruptor{P: 0.3},
		},
	})
	sink := HostFunc(func(*Node, Datagram) {})
	sim.Register(2, sink)
	src := sim.Register(1, sink)
	send := func() {
		b := append(src.PayloadBuf(), "payload"...)
		src.SendPooled(2, 1000, 53, b)
		for {
			ok, err := sim.Step()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
		}
	}
	for i := 0; i < 200; i++ { // warm the pool past the dup high-water mark
		send()
	}
	if avg := testing.AllocsPerRun(200, send); avg > 0 {
		t.Errorf("impaired pooled send allocates %v/op, want 0", avg)
	}
}
