package netsim

import (
	"fmt"
	"testing"
	"time"

	"openresolver/internal/ipv4"
	"openresolver/internal/obs"
)

// traceEvent is one observed handler invocation, for comparing execution
// order between the Step and StepBatch drains.
type traceEvent struct {
	at    time.Duration
	kind  string // "dg" or "timer"
	addr  ipv4.Addr
	tag   byte
	stats Stats
}

// buildTraffic wires a small network whose hosts generate follow-on work
// from within handlers — echoes, timer chains, same-instant bursts — so the
// drain under test faces events that extend batches while they execute.
// Every random decision comes from the simulation's seeded rng, so two sims
// built with the same seed produce identical workloads.
func buildTraffic(seed int64, trace *[]traceEvent) *Sim {
	s := New(Config{
		Seed:    seed,
		Latency: UniformLatency(time.Millisecond, 5*time.Millisecond),
		Impairments: []Impairment{
			&IIDLoss{P: 0.05},
			&Duplicator{P: 0.1},
			&Reorderer{P: 0.1, Window: 3 * time.Millisecond},
		},
	})
	log := func(n *Node, kind string, tag byte) {
		*trace = append(*trace, traceEvent{n.Now(), kind, n.Addr(), tag, n.sim.Stats()})
	}
	// B echoes every datagram back with a decremented TTL byte until it
	// reaches zero; each bounce draws fresh latency, shuffling arrival order.
	s.Register(addrB, HostFunc(func(n *Node, dg Datagram) {
		log(n, "dg", dg.Payload[0])
		if ttl := dg.Payload[0]; ttl > 0 {
			buf := append(n.PayloadBuf(), ttl-1)
			n.SendPooled(dg.Src, dg.DstPort, dg.SrcPort, buf)
		}
	}))
	a := s.Register(addrA, HostFunc(func(n *Node, dg Datagram) {
		log(n, "dg", dg.Payload[0])
		if dg.Payload[0] > 1 {
			buf := append(n.PayloadBuf(), dg.Payload[0]-1)
			n.SendPooled(dg.Src, dg.DstPort, dg.SrcPort, buf)
		}
	}))
	// Timer chains: each firing re-arms at a deadline drawn from the rng,
	// sometimes at the current instant (a zero delay extends the running
	// batch), sometimes ahead of and sometimes behind the ring tail.
	var chain func(depth int) func()
	chain = func(depth int) func() {
		return func() {
			log(a, "timer", byte(depth))
			if depth > 0 {
				d := time.Duration(a.Rand().Intn(4)) * time.Millisecond
				a.After(d, chain(depth-1))
			}
		}
	}
	for i := 0; i < 8; i++ {
		a.After(time.Duration(i)*2*time.Millisecond, chain(10))
	}
	// Same-instant bursts: several sends from one handler turn share a
	// timestamp whenever the latency draws collide.
	for i := 0; i < 40; i++ {
		buf := append(a.PayloadBuf(), byte(4+i%3))
		a.SendPooled(addrB, 1, 2, buf)
	}
	return s
}

// TestStepBatchEquivalence pins the tentpole contract: draining with
// StepBatch must be observationally identical to the single-event Step
// reference — same handler order, same timestamps, same running stats —
// under latency jitter, loss, duplication and reordering.
func TestStepBatchEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		var refTrace, batchTrace []traceEvent
		ref := buildTraffic(seed, &refTrace)
		for {
			ok, err := ref.Step()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
		}
		batch := buildTraffic(seed, &batchTrace)
		if err := batch.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		if len(refTrace) != len(batchTrace) {
			t.Fatalf("seed %d: %d events via Step, %d via StepBatch", seed, len(refTrace), len(batchTrace))
		}
		for i := range refTrace {
			if refTrace[i] != batchTrace[i] {
				t.Fatalf("seed %d: event %d diverged:\n  step:  %+v\n  batch: %+v",
					seed, i, refTrace[i], batchTrace[i])
			}
		}
		if ref.Stats() != batch.Stats() || ref.FaultStats() != batch.FaultStats() || ref.Now() != batch.Now() {
			t.Fatalf("seed %d: final state diverged:\n  step:  %+v %+v %v\n  batch: %+v %+v %v",
				seed, ref.Stats(), ref.FaultStats(), ref.Now(),
				batch.Stats(), batch.FaultStats(), batch.Now())
		}
	}
}

// TestRingOverflowFallback arms more monotone timers than the ring holds:
// the overflow must spill to the heap (visible in QueueStats) and the whole
// set must still fire in exact deadline order.
func TestRingOverflowFallback(t *testing.T) {
	s := New(Config{Seed: 7})
	n := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	const N = ringCap + 500
	var fired []int
	for i := 0; i < N; i++ {
		i := i
		n.After(time.Duration(i)*time.Microsecond, func() { fired = append(fired, i) })
	}
	qs := s.QueueStats()
	if qs.RingTimers != ringCap {
		t.Errorf("ring accepted %d timers, want %d (capacity)", qs.RingTimers, ringCap)
	}
	if qs.HeapTimers != N-ringCap {
		t.Errorf("heap fallback took %d timers, want %d", qs.HeapTimers, N-ringCap)
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(fired) != N {
		t.Fatalf("fired %d/%d", len(fired), N)
	}
	for i, v := range fired {
		if v != i {
			t.Fatalf("pop %d fired timer %d: ring/heap merge broke deadline order", i, v)
		}
	}
}

// TestRingOutOfOrderFallback pins the monotonicity rule: a timer armed
// behind the ring tail must fall back to the heap, and the merged pop
// sequence must still honor (at, seq).
func TestRingOutOfOrderFallback(t *testing.T) {
	s := New(Config{Seed: 8})
	n := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	var fired []string
	n.After(100*time.Millisecond, func() { fired = append(fired, "late") })
	n.After(50*time.Millisecond, func() { fired = append(fired, "early") })
	n.After(100*time.Millisecond, func() { fired = append(fired, "late-tie") })
	qs := s.QueueStats()
	if qs.RingTimers != 2 {
		// The first arm and the back-at-the-tail third arm ride the ring.
		t.Errorf("ring accepted %d timers, want 2", qs.RingTimers)
	}
	if qs.HeapTimers != 1 {
		t.Errorf("heap fallback took %d timers, want 1 (the regressing deadline)", qs.HeapTimers)
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	want := []string{"early", "late", "late-tie"}
	if fmt.Sprint(fired) != fmt.Sprint(want) {
		t.Fatalf("fired %v, want %v", fired, want)
	}
}

// batchRecorder implements BatchHost, recording how deliveries are grouped.
type batchRecorder struct {
	batches [][]byte // one entry per dispatch; the bytes are payload tags
}

func (r *batchRecorder) HandleDatagram(_ *Node, dg Datagram) {
	r.batches = append(r.batches, []byte{dg.Payload[0]})
}

func (r *batchRecorder) HandleBatch(_ *Node, dgs []Datagram) {
	tags := make([]byte, len(dgs))
	for i, dg := range dgs {
		tags[i] = dg.Payload[0]
	}
	r.batches = append(r.batches, tags)
}

// TestBatchHostGrouping pins the adjacent-run grouping: same-instant
// deliveries to one BatchHost arrive as a single HandleBatch call in send
// order, while a lone delivery uses the single-datagram interface.
func TestBatchHostGrouping(t *testing.T) {
	s := New(Config{Seed: 9, Latency: ConstantLatency(time.Millisecond)})
	rec := &batchRecorder{}
	s.Register(addrB, rec)
	a := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	const k = 6
	for i := 0; i < k; i++ {
		a.Send(addrB, 1, 2, []byte{byte(i)})
	}
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(rec.batches) != 1 || len(rec.batches[0]) != k {
		t.Fatalf("batches = %v, want one batch of %d", rec.batches, k)
	}
	for i, tag := range rec.batches[0] {
		if tag != byte(i) {
			t.Fatalf("batch order %v: datagram %d out of place", rec.batches[0], i)
		}
	}
	// A single delivery dispatches through HandleDatagram, not HandleBatch.
	a.Send(addrB, 1, 2, []byte{42})
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(rec.batches) != 2 || len(rec.batches[1]) != 1 || rec.batches[1][0] != 42 {
		t.Fatalf("batches = %v, want a trailing singleton 42", rec.batches)
	}
}

// TestTerminalStepSkipsDepthSample pins the observability fix: terminal
// Step/StepBatch calls — empty queue or queue-limit trip — must not record
// an HQueueDepth sample, or idle polling would skew the depth histogram.
func TestTerminalStepSkipsDepthSample(t *testing.T) {
	sh := obs.NewShard("test")
	s := New(Config{Seed: 10, Latency: ConstantLatency(time.Millisecond)})
	s.SetObserver(sh)
	s.Register(addrB, HostFunc(func(*Node, Datagram) {}))
	a := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	for i := 0; i < 5; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
		if _, err := s.StepBatch(); err != nil {
			t.Fatal(err)
		}
	}
	if c := sh.Histogram(obs.HQueueDepth).Count(); c != 0 {
		t.Fatalf("empty-queue polls recorded %d depth samples, want 0", c)
	}
	a.Send(addrB, 1, 2, nil)
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if c := sh.Histogram(obs.HQueueDepth).Count(); c != 1 {
		t.Fatalf("one delivery recorded %d depth samples, want 1", c)
	}

	lim := New(Config{Seed: 11, Latency: ConstantLatency(time.Millisecond), MaxQueuedEvents: 1})
	lsh := obs.NewShard("lim")
	lim.SetObserver(lsh)
	lim.Register(addrB, HostFunc(func(*Node, Datagram) {}))
	la := lim.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	la.Send(addrB, 1, 2, nil)
	la.Send(addrB, 1, 2, nil)
	if _, err := lim.Step(); err != ErrEventQueueFull {
		t.Fatalf("Step over limit = %v, want ErrEventQueueFull", err)
	}
	if _, err := lim.StepBatch(); err != ErrEventQueueFull {
		t.Fatalf("StepBatch over limit = %v, want ErrEventQueueFull", err)
	}
	if c := lsh.Histogram(obs.HQueueDepth).Count(); c != 0 {
		t.Fatalf("limit-tripped steps recorded %d depth samples, want 0", c)
	}
}

// TestSendTimeRouteResolution pins the dead-letter fast path: a datagram to
// an address with no host (and no spawner claim) is accounted NoRoute at
// submission and never enters the event queue.
func TestSendTimeRouteResolution(t *testing.T) {
	s := New(Config{Seed: 12})
	a := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	a.Send(addrC, 1, 2, nil)
	if st := s.Stats(); st.NoRoute != 1 || st.Sent != 1 {
		t.Fatalf("stats after dead-letter send = %+v, want NoRoute 1", st)
	}
	if ok, err := s.Step(); err != nil || ok {
		t.Fatalf("Step = (%v, %v): dead-letter send still queued an event", ok, err)
	}
	// The impaired pipeline takes the same early exit.
	si := New(Config{Seed: 13, Impairments: []Impairment{&Duplicator{P: 1.0}}})
	ai := si.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	ai.Send(addrC, 1, 2, []byte("x"))
	if st := si.Stats(); st.NoRoute != 2 || st.Delivered != 0 {
		t.Fatalf("impaired dead-letter stats = %+v, want NoRoute 2 (primary + duplicate)", st)
	}
	if ok, err := si.Step(); err != nil || ok {
		t.Fatalf("Step = (%v, %v): impaired dead-letter still queued an event", ok, err)
	}
}

// TestStepBatchAllocBudget is the batched drain's allocation budget: with a
// metrics shard attached, steady-state send → batched delivery → echo and a
// timer arm → fire must all stay allocation-free.
func TestStepBatchAllocBudget(t *testing.T) {
	sh := obs.NewShard("alloc")
	s := New(Config{Seed: 14, Latency: ConstantLatency(time.Millisecond)})
	s.SetObserver(sh)
	s.Register(addrB, HostFunc(func(n *Node, dg Datagram) {
		buf := append(n.PayloadBuf(), dg.Payload...)
		n.SendPooled(dg.Src, dg.DstPort, dg.SrcPort, buf)
	}))
	a := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	fn := func() {}
	cycle := func() {
		buf := append(a.PayloadBuf(), "probe"...)
		a.SendPooled(addrB, 1, 2, buf)
		a.SendPooled(addrB, 1, 2, append(a.PayloadBuf(), "probe"...))
		a.After(time.Millisecond, fn)
		if err := s.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 64; i++ {
		cycle() // warm the slab, ring, pools and batch scratch
	}
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("batched drain allocates %.1f/op in steady state, want 0", allocs)
	}
}

// BenchmarkStepDrain and BenchmarkStepBatchDrain measure the same fan-out
// workload — one sender, one batchable echo host, bursts of same-instant
// deliveries — through the single-event and batched drains (the bench-batch
// make target; the delta is the same-timestamp grouping win).
func benchDrain(b *testing.B, batched bool) {
	s := New(Config{Seed: 1, Latency: ConstantLatency(time.Millisecond)})
	rec := &sinkBatchHost{}
	s.Register(addrB, rec)
	a := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 16; j++ {
			a.SendPooled(addrB, 1, 2, append(a.PayloadBuf(), byte(j)))
		}
		if batched {
			for {
				n, err := s.StepBatch()
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					break
				}
			}
		} else {
			for {
				ok, err := s.Step()
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					break
				}
			}
		}
	}
	if rec.n != uint64(b.N)*16 {
		b.Fatalf("delivered %d, want %d", rec.n, uint64(b.N)*16)
	}
}

// sinkBatchHost counts deliveries through both dispatch interfaces.
type sinkBatchHost struct{ n uint64 }

func (h *sinkBatchHost) HandleDatagram(*Node, Datagram)      { h.n++ }
func (h *sinkBatchHost) HandleBatch(_ *Node, dgs []Datagram) { h.n += uint64(len(dgs)) }

func BenchmarkStepDrain(b *testing.B)      { benchDrain(b, false) }
func BenchmarkStepBatchDrain(b *testing.B) { benchDrain(b, true) }
