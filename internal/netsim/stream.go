package netsim

import (
	"openresolver/internal/ipv4"
)

// This file adds a TCP-like reliable stream service to the simulator.
// DNS falls back to TCP when a UDP response is truncated (RFC 1035
// §4.2.2, RFC 7766); the recursion engine and the authoritative server use
// this service for that path.
//
// The model is deliberately at the same altitude as the datagram service:
// a connection is a reliable, ordered, loss-free bidirectional byte pipe
// with per-segment latency (TCP's retransmissions are why the loss model
// does not apply). Connection setup costs one round trip, as a SYN/ACK
// handshake would.

// StreamAccept is a server's callback for an incoming connection.
type StreamAccept func(c *Conn)

// listenerKey identifies a TCP listener.
type listenerKey struct {
	addr ipv4.Addr
	port uint16
}

// Conn is one end of an established stream connection.
type Conn struct {
	sim    *Sim
	local  ipv4.Addr
	remote ipv4.Addr
	// peer is the opposite endpoint (nil until established).
	peer    *Conn
	onData  func([]byte)
	onClose func()
	closed  bool
}

// Local returns the connection's local address.
func (c *Conn) Local() ipv4.Addr { return c.local }

// Remote returns the connection's remote address.
func (c *Conn) Remote() ipv4.Addr { return c.remote }

// OnData registers the receive callback. Data sent before registration is
// NOT buffered; register in the accept/dial callback before returning.
func (c *Conn) OnData(fn func([]byte)) { c.onData = fn }

// OnClose registers a callback fired when the peer closes.
func (c *Conn) OnClose(fn func()) { c.onClose = fn }

// Send transmits bytes to the peer, delivered in order after the latency
// of one segment. Sends on a closed connection are dropped.
func (c *Conn) Send(data []byte) {
	if c.closed || c.peer == nil {
		return
	}
	payload := append([]byte(nil), data...)
	peer := c.peer
	delay := c.sim.cfg.Latency(c.local, c.remote, c.sim.rng)
	c.sim.stats.Sent++
	c.sim.stats.StreamBytes += uint64(len(payload))
	c.sim.afterFunc(delay, func() {
		if peer.closed {
			return
		}
		c.sim.stats.Delivered++
		if peer.onData != nil {
			peer.onData(payload)
		}
	})
}

// Close tears the connection down in both directions (after the latency of
// a FIN segment for the peer's notification).
func (c *Conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	peer := c.peer
	if peer == nil || peer.closed {
		return
	}
	delay := c.sim.cfg.Latency(c.local, c.remote, c.sim.rng)
	c.sim.afterFunc(delay, func() {
		if peer.closed {
			return
		}
		peer.closed = true
		if peer.onClose != nil {
			peer.onClose()
		}
	})
}

// Listen registers a stream acceptor at (addr, port). Registering twice
// replaces the acceptor.
func (s *Sim) Listen(addr ipv4.Addr, port uint16, accept StreamAccept) {
	if s.listeners == nil {
		s.listeners = make(map[listenerKey]StreamAccept)
	}
	s.listeners[listenerKey{addr, port}] = accept
}

// Dial opens a connection from the node to (dst, port). The dialer's
// callback fires once the connection is established (one RTT later) or
// with nil if the destination is not listening (a RST, after one RTT).
func (n *Node) Dial(dst ipv4.Addr, port uint16, connected func(c *Conn)) {
	s := n.sim
	rtt := s.cfg.Latency(n.addr, dst, s.rng) + s.cfg.Latency(dst, n.addr, s.rng)
	accept, ok := s.listeners[listenerKey{dst, port}]
	if !ok {
		s.afterFunc(rtt, func() {
			connected(nil)
		})
		return
	}
	local := n.addr
	s.afterFunc(rtt, func() {
		client := &Conn{sim: s, local: local, remote: dst}
		server := &Conn{sim: s, local: dst, remote: local}
		client.peer, server.peer = server, client
		// The server's acceptor installs its callbacks first, then the
		// dialer's; both run at establishment time.
		accept(server)
		connected(client)
	})
}
