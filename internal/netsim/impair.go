package netsim

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"time"

	"openresolver/internal/ipv4"
)

// This file is the simulator's fault-injection layer. The paper's 2013
// campaign lost ~29% of its probes to network conditions it could neither
// control nor model (Table II discussion); the composable Impairment
// pipeline below reproduces exactly those adverse conditions — burst loss,
// duplication, reordering, corruption, dead prefixes and time-windowed
// brownouts — as deterministic functions of (configuration, seed), so the
// retransmission machinery in prober and dnssrv can be exercised against
// them and every run stays bit-reproducible.
//
// Impairments are applied in configuration order to every datagram
// submitted to the network (stream segments are not impaired: the stream
// service models TCP, whose retransmissions hide link loss). Each
// impairment reads and updates a shared Fate; the simulator then executes
// the combined verdict: drop, deliver with extra delay, inject duplicate
// copies, or flip a payload bit. Duplicate copies are cloned from the
// original payload before any corruption is applied, so a corrupted
// primary never leaks into its twins.

// DropCause attributes an impairment drop for the FaultStats counters.
type DropCause uint8

// Drop causes.
const (
	CauseNone DropCause = iota
	CauseLoss
	CauseBurst
	CauseBlackhole
	CauseBrownout
)

// Fate is the accumulated verdict of the impairment pipeline for one
// datagram. Impairments may set Drop (with a Cause), add delivery delay,
// request duplicate copies, or mark a payload bit for corruption.
type Fate struct {
	Drop       bool
	Cause      DropCause
	ExtraDelay time.Duration
	Duplicates int
	// CorruptBit is the payload bit to flip, or -1 for an intact payload.
	CorruptBit int
}

// Impairment is one composable element of the fault pipeline. Apply is
// called once per datagram in configuration order; rng is the simulation's
// deterministic source. Stateful impairments (e.g. the Gilbert–Elliott
// chain) must advance their state on every call — including calls where the
// packet is already doomed — so the chain's trajectory is a function of the
// packet sequence alone.
type Impairment interface {
	Apply(dg *Datagram, now time.Duration, rng *rand.Rand, f *Fate)
}

// FaultStats count the impairment pipeline's interventions. They live
// beside (not inside) Stats so the pristine counters — and everything
// golden-hashed from them — are untouched by the fault layer's existence.
type FaultStats struct {
	Dropped    uint64 // all impairment drops (also counted in Stats.Lost)
	LossDrops  uint64 // i.i.d. loss (IIDLoss)
	BurstDrops uint64 // Gilbert–Elliott bad-state loss
	Blackholed uint64 // per-prefix blackhole / dead host drops
	BrownedOut uint64 // time-windowed brownout drops
	Duplicated uint64 // extra copies injected
	Corrupted  uint64 // payloads with a flipped bit
	Reordered  uint64 // packets delivered with impairment-added delay
}

// Add accumulates o into s — the shard-merge path of the parallel
// simulation, where every sub-simulation carries its own fault pipeline and
// the campaign total is the field-wise sum.
func (s *FaultStats) Add(o FaultStats) {
	s.Dropped += o.Dropped
	s.LossDrops += o.LossDrops
	s.BurstDrops += o.BurstDrops
	s.Blackholed += o.Blackholed
	s.BrownedOut += o.BrownedOut
	s.Duplicated += o.Duplicated
	s.Corrupted += o.Corrupted
	s.Reordered += o.Reordered
}

// Cloner is the optional forking extension of Impairment: a pipeline
// element whose Apply mutates receiver state (the Gilbert–Elliott chain, a
// window wrapping one) implements Clone to hand an independent pristine
// copy to each private sub-simulation of a sharded campaign. Stateless
// impairments need not implement it — their Apply only reads configuration
// fields, so sharing one value across concurrent pipelines is safe.
type Cloner interface {
	Clone() Impairment
}

// Clone implements Cloner: a fresh chain in the Good state with zeroed
// step counters, so every sub-simulation walks its own trajectory from the
// same transition matrix.
func (g *GilbertElliott) Clone() Impairment {
	return &GilbertElliott{
		PGoodBad: g.PGoodBad, PBadGood: g.PBadGood,
		LossGood: g.LossGood, LossBad: g.LossBad,
	}
}

// Clone implements Cloner, forking the wrapped impairment as well.
func (w *Windowed) Clone() Impairment {
	return &Windowed{From: w.From, Until: w.Until, Inner: CloneImpairment(w.Inner)}
}

// CloneImpairment returns a copy of imp safe to run in a second pipeline:
// stateful impairments are forked through Cloner, stateless ones are shared
// as-is (their Apply never writes the receiver).
func CloneImpairment(imp Impairment) Impairment {
	if c, ok := imp.(Cloner); ok {
		return c.Clone()
	}
	return imp
}

// CloneImpairments forks a whole pipeline for a private sub-simulation,
// preserving configuration order.
func CloneImpairments(imps []Impairment) []Impairment {
	if len(imps) == 0 {
		return nil
	}
	out := make([]Impairment, len(imps))
	for i, imp := range imps {
		out[i] = CloneImpairment(imp)
	}
	return out
}

// --- loss models ---------------------------------------------------------

// IIDLoss drops each packet independently with probability P. It is the
// impairment form of Config.Loss, usable inside Windowed phases and stacks.
type IIDLoss struct {
	P float64
}

// Apply implements Impairment.
func (l *IIDLoss) Apply(_ *Datagram, _ time.Duration, rng *rand.Rand, f *Fate) {
	if rng.Float64() < l.P && !f.Drop {
		f.Drop, f.Cause = true, CauseLoss
	}
}

// GilbertElliott is the classic two-state Markov burst-loss channel: a Good
// state with light loss and a Bad state with heavy loss, with per-packet
// transition probabilities. Real networks lose packets in bursts (queue
// overflows, flapping links), which is what breaks naive single-retry
// schemes — retransmitting into the same burst loses again.
//
// The chain advances once per packet regardless of prior verdicts, so its
// trajectory depends only on the packet sequence and the rng stream.
type GilbertElliott struct {
	// PGoodBad and PBadGood are the per-packet transition probabilities.
	PGoodBad, PBadGood float64
	// LossGood and LossBad are the drop probabilities in each state.
	LossGood, LossBad float64

	bad bool // current state

	// Packets counts chain steps; BadPackets counts steps spent in Bad.
	Packets, BadPackets uint64
}

// StationaryBad returns the chain's stationary probability of the Bad
// state, PGB/(PGB+PBG).
func (g *GilbertElliott) StationaryBad() float64 {
	d := g.PGoodBad + g.PBadGood
	if d == 0 {
		return 0
	}
	return g.PGoodBad / d
}

// MeanLoss returns the stationary packet-loss rate of the channel.
func (g *GilbertElliott) MeanLoss() float64 {
	pb := g.StationaryBad()
	return pb*g.LossBad + (1-pb)*g.LossGood
}

// Apply implements Impairment. Exactly two rng draws per packet (state
// transition, then loss) keep the stream advance constant regardless of
// state, so stacked impairments see a stable draw sequence.
func (g *GilbertElliott) Apply(_ *Datagram, _ time.Duration, rng *rand.Rand, f *Fate) {
	p := rng.Float64()
	if g.bad {
		if p < g.PBadGood {
			g.bad = false
		}
	} else {
		if p < g.PGoodBad {
			g.bad = true
		}
	}
	g.Packets++
	loss := g.LossGood
	if g.bad {
		g.BadPackets++
		loss = g.LossBad
	}
	if rng.Float64() < loss && !f.Drop {
		f.Drop, f.Cause = true, CauseBurst
	}
}

// --- duplication, reordering, corruption ---------------------------------

// Duplicator injects duplicate deliveries: with probability P a packet is
// delivered Copies extra times (each copy drawing its own latency, so dups
// arrive reordered relative to the original). Observed in the wild on
// misconfigured links and middleboxes; exercises the prober's duplicate-R2
// accounting.
type Duplicator struct {
	P      float64
	Copies int // extra copies per duplication event; 0 means 1
}

// Apply implements Impairment. Dropped packets are not duplicated.
func (d *Duplicator) Apply(_ *Datagram, _ time.Duration, rng *rand.Rand, f *Fate) {
	if f.Drop || rng.Float64() >= d.P {
		return
	}
	n := d.Copies
	if n <= 0 {
		n = 1
	}
	f.Duplicates += n
}

// Reorderer models bounded reordering: with probability P a packet is held
// back by an extra delay drawn uniformly from (0, Window]. A reordered
// packet therefore arrives at most Window later than its unimpaired
// schedule — the bound the property tests pin.
type Reorderer struct {
	P      float64
	Window time.Duration
}

// Apply implements Impairment.
func (r *Reorderer) Apply(_ *Datagram, _ time.Duration, rng *rand.Rand, f *Fate) {
	if f.Drop || r.Window <= 0 || rng.Float64() >= r.P {
		return
	}
	f.ExtraDelay += 1 + time.Duration(rng.Int63n(int64(r.Window)))
}

// Corruptor flips one payload bit with probability P, exercising every
// decoder error path downstream (dnswire.UnpackInto failures, header ID
// mismatches, mangled qnames). Only the delivered primary copy is
// corrupted; duplicate copies keep the original bytes.
type Corruptor struct {
	P float64
}

// Apply implements Impairment.
func (c *Corruptor) Apply(dg *Datagram, _ time.Duration, rng *rand.Rand, f *Fate) {
	if f.Drop || len(dg.Payload) == 0 || rng.Float64() >= c.P {
		return
	}
	f.CorruptBit = rng.Intn(len(dg.Payload) * 8)
}

// --- topology and time-windowed faults -----------------------------------

// Blackhole silently drops every packet addressed into Block — a dead
// prefix (withdrawn route, filtered AS) or, at /32, a single dead host.
// With MatchSrc it also eats packets *from* the prefix, modeling a
// bidirectionally unreachable network.
type Blackhole struct {
	Block    ipv4.Block
	MatchSrc bool
}

// Apply implements Impairment.
func (b *Blackhole) Apply(dg *Datagram, _ time.Duration, _ *rand.Rand, f *Fate) {
	if f.Drop {
		return
	}
	if b.Block.Contains(dg.Dst) || (b.MatchSrc && b.Block.Contains(dg.Src)) {
		f.Drop, f.Cause = true, CauseBlackhole
	}
}

// Brownout degrades the whole network inside a virtual-time window: between
// From (inclusive) and Until (exclusive) every packet is dropped with
// probability Loss. With Loss 1 it is a full outage; the campaign degrades
// when the window opens and recovers when it closes.
type Brownout struct {
	From, Until time.Duration
	Loss        float64
}

// Apply implements Impairment.
func (b *Brownout) Apply(_ *Datagram, now time.Duration, rng *rand.Rand, f *Fate) {
	if now < b.From || now >= b.Until {
		return
	}
	if rng.Float64() < b.Loss && !f.Drop {
		f.Drop, f.Cause = true, CauseBrownout
	}
}

// Windowed activates Inner only between From (inclusive) and Until
// (exclusive) of virtual time; a zero Until means "forever after From".
// Stacking several Windowed impairments schedules fault phases on the
// virtual clock: a campaign can run clean, degrade mid-run, and recover.
type Windowed struct {
	From, Until time.Duration
	Inner       Impairment
}

// Apply implements Impairment.
func (w *Windowed) Apply(dg *Datagram, now time.Duration, rng *rand.Rand, f *Fate) {
	if now < w.From || (w.Until > 0 && now >= w.Until) {
		return
	}
	w.Inner.Apply(dg, now, rng, f)
}

// --- spec parser ---------------------------------------------------------

// ParseImpairments builds an impairment pipeline from a compact spec
// string, the format behind the CLIs' -loss-model flag. Specs are
// semicolon-separated elements, applied in order:
//
//	loss:P                    i.i.d. loss with probability P
//	ge:PGB,PBG,LG,LB          Gilbert–Elliott (transition and loss probs)
//	dup:P[,COPIES]            duplication
//	reorder:P,WINDOW          bounded reordering (WINDOW a duration)
//	corrupt:P                 single-bit payload corruption
//	blackhole:CIDR[,src]      dead prefix (",src" also eats its sources)
//	brownout:FROM,UNTIL,P     windowed degradation (durations + loss prob)
//
// Any element may carry an activation window suffix "@FROM..UNTIL"
// (UNTIL optional), wrapping it in a Windowed phase:
//
//	"ge:0.05,0.2,0.125,1@2m..20m;dup:0.01"
//
// runs a 30%-mean burst-loss channel only between minutes 2 and 20 while
// 1% duplication runs throughout.
func ParseImpairments(spec string) ([]Impairment, error) {
	var out []Impairment
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		imp, err := parseOne(part)
		if err != nil {
			return nil, err
		}
		out = append(out, imp)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("netsim: empty impairment spec %q", spec)
	}
	return out, nil
}

func parseOne(part string) (Impairment, error) {
	var window *Windowed
	if i := strings.LastIndex(part, "@"); i >= 0 {
		from, until, err := parseWindow(part[i+1:])
		if err != nil {
			return nil, fmt.Errorf("netsim: impairment %q: %w", part, err)
		}
		window = &Windowed{From: from, Until: until}
		part = part[:i]
	}
	kind, args, _ := strings.Cut(part, ":")
	imp, err := parseKind(strings.TrimSpace(kind), strings.TrimSpace(args))
	if err != nil {
		return nil, err
	}
	if window != nil {
		window.Inner = imp
		return window, nil
	}
	return imp, nil
}

func parseKind(kind, args string) (Impairment, error) {
	fields := strings.Split(args, ",")
	prob := func(i int) (float64, error) {
		if i >= len(fields) {
			return 0, fmt.Errorf("netsim: impairment %q needs %d arguments", kind, i+1)
		}
		p, err := strconv.ParseFloat(strings.TrimSpace(fields[i]), 64)
		if err != nil || p < 0 || p > 1 {
			return 0, fmt.Errorf("netsim: impairment %q: bad probability %q", kind, fields[i])
		}
		return p, nil
	}
	dur := func(i int) (time.Duration, error) {
		if i >= len(fields) {
			return 0, fmt.Errorf("netsim: impairment %q needs %d arguments", kind, i+1)
		}
		d, err := time.ParseDuration(strings.TrimSpace(fields[i]))
		if err != nil || d < 0 {
			return 0, fmt.Errorf("netsim: impairment %q: bad duration %q", kind, fields[i])
		}
		return d, nil
	}
	switch kind {
	case "loss":
		p, err := prob(0)
		if err != nil {
			return nil, err
		}
		return &IIDLoss{P: p}, nil
	case "ge":
		var ps [4]float64
		for i := range ps {
			p, err := prob(i)
			if err != nil {
				return nil, err
			}
			ps[i] = p
		}
		return &GilbertElliott{PGoodBad: ps[0], PBadGood: ps[1], LossGood: ps[2], LossBad: ps[3]}, nil
	case "dup":
		p, err := prob(0)
		if err != nil {
			return nil, err
		}
		copies := 1
		if len(fields) > 1 {
			n, err := strconv.Atoi(strings.TrimSpace(fields[1]))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("netsim: impairment dup: bad copy count %q", fields[1])
			}
			copies = n
		}
		return &Duplicator{P: p, Copies: copies}, nil
	case "reorder":
		p, err := prob(0)
		if err != nil {
			return nil, err
		}
		w, err := dur(1)
		if err != nil {
			return nil, err
		}
		return &Reorderer{P: p, Window: w}, nil
	case "corrupt":
		p, err := prob(0)
		if err != nil {
			return nil, err
		}
		return &Corruptor{P: p}, nil
	case "blackhole", "dead":
		if args == "" {
			return nil, fmt.Errorf("netsim: impairment %q needs a CIDR", kind)
		}
		matchSrc := false
		cidr := strings.TrimSpace(fields[0])
		if len(fields) > 1 {
			if strings.TrimSpace(fields[1]) != "src" {
				return nil, fmt.Errorf("netsim: impairment %q: unknown option %q", kind, fields[1])
			}
			matchSrc = true
		}
		block, err := ipv4.ParseBlock(cidr)
		if err != nil {
			return nil, fmt.Errorf("netsim: impairment %q: %w", kind, err)
		}
		return &Blackhole{Block: block, MatchSrc: matchSrc}, nil
	case "brownout":
		from, err := dur(0)
		if err != nil {
			return nil, err
		}
		until, err := dur(1)
		if err != nil {
			return nil, err
		}
		p, err := prob(2)
		if err != nil {
			return nil, err
		}
		if until <= from {
			return nil, fmt.Errorf("netsim: impairment brownout: window [%v, %v) is empty", from, until)
		}
		return &Brownout{From: from, Until: until, Loss: p}, nil
	default:
		return nil, fmt.Errorf("netsim: unknown impairment kind %q", kind)
	}
}

func parseWindow(s string) (from, until time.Duration, err error) {
	lo, hi, _ := strings.Cut(s, "..")
	from, err = time.ParseDuration(strings.TrimSpace(lo))
	if err != nil {
		return 0, 0, fmt.Errorf("bad window start %q", lo)
	}
	if strings.TrimSpace(hi) != "" {
		until, err = time.ParseDuration(strings.TrimSpace(hi))
		if err != nil || until <= from {
			return 0, 0, fmt.Errorf("bad window end %q", hi)
		}
	}
	return from, until, nil
}

// --- canonical descriptions ----------------------------------------------

// Impairment String methods render the *configuration* of each pipeline
// element — never its mutable state (the Gilbert–Elliott chain position,
// step counters) and never pointer addresses — so two pipelines built from
// the same spec always describe identically. DescribeImpairments is the
// stable identity the crash-safe campaign engine hashes into its
// checkpoint campaign key: a resumed run validates that its fault plan
// matches the one that wrote the checkpoints.

// String describes the loss configuration.
func (l *IIDLoss) String() string { return fmt.Sprintf("loss(p=%g)", l.P) }

// String describes the chain's transition and loss configuration.
func (g *GilbertElliott) String() string {
	return fmt.Sprintf("ge(pgb=%g,pbg=%g,lossg=%g,lossb=%g)",
		g.PGoodBad, g.PBadGood, g.LossGood, g.LossBad)
}

// String describes the duplication configuration.
func (d *Duplicator) String() string { return fmt.Sprintf("dup(p=%g,copies=%d)", d.P, d.Copies) }

// String describes the reordering configuration.
func (r *Reorderer) String() string { return fmt.Sprintf("reorder(p=%g,window=%s)", r.P, r.Window) }

// String describes the corruption configuration.
func (c *Corruptor) String() string { return fmt.Sprintf("corrupt(p=%g)", c.P) }

// String describes the blackholed prefix.
func (b *Blackhole) String() string { return fmt.Sprintf("blackhole(%s,src=%t)", b.Block, b.MatchSrc) }

// String describes the brownout window and severity.
func (b *Brownout) String() string {
	return fmt.Sprintf("brownout(%s..%s,loss=%g)", b.From, b.Until, b.Loss)
}

// String describes the window and the wrapped impairment.
func (w *Windowed) String() string {
	return fmt.Sprintf("windowed(%s..%s,%s)", w.From, w.Until, DescribeImpairment(w.Inner))
}

// DescribeImpairment returns imp's canonical configuration description:
// its String when it has one, its concrete type name otherwise (a custom
// impairment without a String still gets a stable — if coarse — identity).
func DescribeImpairment(imp Impairment) string {
	if s, ok := imp.(fmt.Stringer); ok {
		return s.String()
	}
	return fmt.Sprintf("%T", imp)
}

// DescribeImpairments renders a whole pipeline in configuration order,
// semicolon-joined — pointer-free and state-free, identical for every
// pipeline built from the same spec.
func DescribeImpairments(imps []Impairment) string {
	var b strings.Builder
	for i, imp := range imps {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(DescribeImpairment(imp))
	}
	return b.String()
}
