// Package netsim is a deterministic discrete-event simulator of a UDP-like
// IPv4 network. It is the substrate on which the reproduction runs the
// paper's measurement: the prober, the root/TLD/authoritative name servers
// and millions of simulated open resolvers are all hosts exchanging
// datagrams over a virtual network with configurable latency, jitter and
// loss, under a virtual clock.
//
// The simulator is single-threaded and fully deterministic: a run is a pure
// function of (configuration, seed). Virtual time advances only when the
// event at the head of the queue is executed, so a campaign that takes "10
// hours and 35 minutes" of virtual time (the paper's Table II) completes in
// seconds of wall-clock time.
//
// The event loop is allocation-free in steady state: the priority queue is
// a hand-rolled 4-ary min-heap over event values (no container/heap `any`
// boxing), timers live in pooled slots invalidated by generation counters,
// hosts sit in a flat open-addressed table backed by a chunked Node arena,
// and datagram payload buffers can be recycled through a pool via
// Node.PayloadBuf / Node.SendPooled.
//
// Two optional layers sit on top of the pristine core, both off by
// default and both preserving determinism:
//
//   - Impairments (impair.go) compose an adverse-network fault pipeline —
//     Gilbert–Elliott burst loss, duplication, reordering, corruption,
//     blackholes and brownouts — applied to every datagram in
//     configuration order. All randomness comes from the simulation rng.
//
//   - SetObserver attaches an obs.Shard that mirrors the event loop's
//     counters (sends, deliveries, losses, per-cause fault drops) and
//     samples the event-queue depth into a histogram. The observer is
//     strictly write-only: nothing in the simulator reads it back, so an
//     instrumented run is bit-identical to a bare one (pinned by the
//     metrics golden test in internal/core) and still allocation-free
//     (obs writes are atomic adds into preallocated arrays).
package netsim
