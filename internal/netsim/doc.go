// Package netsim is a deterministic discrete-event simulator of a UDP-like
// IPv4 network. It is the substrate on which the reproduction runs the
// paper's measurement: the prober, the root/TLD/authoritative name servers
// and millions of simulated open resolvers are all hosts exchanging
// datagrams over a virtual network with configurable latency, jitter and
// loss, under a virtual clock.
//
// Each Sim is single-threaded and fully deterministic: a run is a pure
// function of (configuration, seed). Virtual time advances only when the
// event at the head of the queue is executed, so a campaign that takes "10
// hours and 35 minutes" of virtual time (the paper's Table II) completes in
// seconds of wall-clock time. Parallelism lives one layer up: the sharded
// campaign engine (internal/core, DESIGN.md §12) runs several fully
// private Sims concurrently, each seeded independently, with stateful
// impairments forked per Sim via CloneImpairments.
//
// The event core is allocation-free in steady state and batched:
//
//   - The priority queue is a struct-of-arrays 4-ary min-heap — the (at,
//     seq) sort keys live in parallel arrays the sift loops walk, while
//     event payloads sit immobile in a slab. Timers live in pooled slots
//     invalidated by generation counters (lazy deletion).
//
//   - Near-future monotone timers — the common arm-at-the-tail pattern of
//     retransmission scheduling — bypass the heap through a bounded ring
//     buffer; arming out of order or past the ring's capacity falls back
//     to the heap, and the dispatcher merges both by (at, seq).
//
//   - Sim.StepBatch drains every event sharing the head timestamp in one
//     call and groups adjacent same-destination deliveries into a single
//     HandleBatch upcall for hosts implementing BatchHost. Run and
//     RunUntilIdle drive this batched drain; Step remains the single-event
//     reference (TestStepBatchEquivalence pins the two observationally
//     identical).
//
//   - Sends to addresses with no registered host (and no spawner claim)
//     are dead-lettered at submission — the NoRoute accounting happens
//     without a queue round trip. At campaign scale ~95% of probes hit
//     unoccupied addresses, so this is the event core's hottest shortcut.
//
//   - Hosts sit in a flat open-addressed table backed by a chunked Node
//     arena, and datagram payload buffers recycle through a pool via
//     Node.PayloadBuf / Node.SendPooled.
//
// Two optional layers sit on top of the pristine core, both off by
// default and both preserving determinism:
//
//   - Impairments (impair.go) compose an adverse-network fault pipeline —
//     Gilbert–Elliott burst loss, duplication, reordering, corruption,
//     blackholes and brownouts — applied to every datagram in
//     configuration order. All randomness comes from the simulation rng.
//
//   - SetObserver attaches an obs.Shard that mirrors the event loop's
//     counters (sends, deliveries, losses, per-cause fault drops, timer
//     ring-vs-heap placement) and samples the event-queue depth into a
//     histogram on productive steps only. The observer is strictly
//     write-only: nothing in the simulator reads it back, so an
//     instrumented run is bit-identical to a bare one (pinned by the
//     metrics golden test in internal/core) and still allocation-free
//     (obs writes are atomic adds into preallocated arrays).
package netsim
