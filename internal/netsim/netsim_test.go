package netsim

import (
	"testing"
	"time"

	"openresolver/internal/ipv4"
)

const (
	addrA = ipv4.Addr(0x01010101)
	addrB = ipv4.Addr(0x02020202)
	addrC = ipv4.Addr(0x03030303)
)

func TestDeliveryAndLatency(t *testing.T) {
	s := New(Config{Seed: 1, Latency: ConstantLatency(50 * time.Millisecond)})
	var gotAt time.Duration
	var got Datagram
	s.Register(addrB, HostFunc(func(n *Node, dg Datagram) {
		gotAt = n.Now()
		got = dg
	}))
	a := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	a.Send(addrB, 4000, 53, []byte("hello"))
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if gotAt != 50*time.Millisecond {
		t.Errorf("delivered at %v, want 50ms", gotAt)
	}
	if got.Src != addrA || got.Dst != addrB || got.SrcPort != 4000 || got.DstPort != 53 {
		t.Errorf("datagram fields: %+v", got)
	}
	if string(got.Payload) != "hello" {
		t.Errorf("payload = %q", got.Payload)
	}
	st := s.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Lost != 0 || st.NoRoute != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRequestResponseFlow(t *testing.T) {
	s := New(Config{Seed: 2, Latency: ConstantLatency(10 * time.Millisecond)})
	// B echoes payloads back to the sender.
	s.Register(addrB, HostFunc(func(n *Node, dg Datagram) {
		n.Send(dg.Src, dg.DstPort, dg.SrcPort, dg.Payload)
	}))
	var replies int
	var replyAt time.Duration
	a := s.Register(addrA, HostFunc(func(n *Node, dg Datagram) {
		replies++
		replyAt = n.Now()
	}))
	a.Send(addrB, 5353, 53, []byte("ping"))
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if replies != 1 {
		t.Fatalf("replies = %d", replies)
	}
	if replyAt != 20*time.Millisecond {
		t.Errorf("round trip completed at %v, want 20ms", replyAt)
	}
}

func TestNoRoute(t *testing.T) {
	s := New(Config{Seed: 3})
	a := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	a.Send(addrC, 1, 53, nil)
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.NoRoute != 1 || st.Delivered != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLossModel(t *testing.T) {
	s := New(Config{Seed: 4, Loss: 0.5, Latency: ConstantLatency(time.Millisecond)})
	var delivered int
	s.Register(addrB, HostFunc(func(*Node, Datagram) { delivered++ }))
	a := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	const n = 10000
	for i := 0; i < n; i++ {
		a.Send(addrB, 1, 2, nil)
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Lost+uint64(delivered) != n {
		t.Fatalf("lost %d + delivered %d != %d", st.Lost, delivered, n)
	}
	if delivered < 4700 || delivered > 5300 {
		t.Errorf("delivered %d of %d at loss 0.5", delivered, n)
	}
}

func TestTimersAndCancellation(t *testing.T) {
	s := New(Config{Seed: 5})
	a := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	var fired []time.Duration
	a.After(30*time.Millisecond, func() { fired = append(fired, s.Now()) })
	a.After(10*time.Millisecond, func() { fired = append(fired, s.Now()) })
	cancelled := a.After(20*time.Millisecond, func() { t.Error("cancelled timer fired") })
	cancelled.Stop()
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 2 || fired[0] != 10*time.Millisecond || fired[1] != 30*time.Millisecond {
		t.Errorf("fired = %v", fired)
	}
}

func TestEventOrderingDeterminism(t *testing.T) {
	// Two runs with the same seed must produce identical event sequences,
	// including ties broken by submission order.
	run := func() []string {
		s := New(Config{Seed: 6, Latency: ConstantLatency(5 * time.Millisecond)})
		var log []string
		s.Register(addrB, HostFunc(func(n *Node, dg Datagram) {
			log = append(log, string(dg.Payload))
		}))
		a := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
		// All three arrive at the same instant: order must be send order.
		a.Send(addrB, 1, 2, []byte("x"))
		a.Send(addrB, 1, 2, []byte("y"))
		a.Send(addrB, 1, 2, []byte("z"))
		a.After(5*time.Millisecond, func() { log = append(log, "t") })
		if err := s.Run(0); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	if len(first) != 4 {
		t.Fatalf("log = %v", first)
	}
	for i := 0; i < 3; i++ {
		again := run()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run %d diverged: %v vs %v", i, first, again)
			}
		}
	}
	want := []string{"x", "y", "z", "t"}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("order = %v, want %v", first, want)
		}
	}
}

func TestRunDeadline(t *testing.T) {
	s := New(Config{Seed: 7})
	a := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	var lateFired bool
	a.After(time.Hour, func() { lateFired = true })
	if err := s.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if lateFired {
		t.Error("event past deadline executed")
	}
	if s.Now() != time.Minute {
		t.Errorf("Now = %v, want 1m", s.Now())
	}
	// Resuming past the deadline executes it.
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if !lateFired {
		t.Error("event not executed after resume")
	}
	if s.Now() != time.Hour {
		t.Errorf("Now = %v, want 1h", s.Now())
	}
}

func TestQueueLimit(t *testing.T) {
	s := New(Config{Seed: 8, MaxQueuedEvents: 10})
	a := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	var rearm func()
	rearm = func() {
		// Feedback loop: every timer arms two more.
		a.After(time.Millisecond, rearm)
		a.After(time.Millisecond, rearm)
	}
	rearm()
	if err := s.Run(0); err != ErrEventQueueFull {
		t.Fatalf("err = %v, want ErrEventQueueFull", err)
	}
}

func TestSpoofedSource(t *testing.T) {
	s := New(Config{Seed: 9, Latency: ConstantLatency(time.Millisecond)})
	var srcSeen ipv4.Addr
	s.Register(addrB, HostFunc(func(n *Node, dg Datagram) { srcSeen = dg.Src }))
	attacker := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	attacker.SendSpoofed(addrC, addrB, 53, 53, []byte("q"))
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if srcSeen != addrC {
		t.Errorf("victim source = %v, want %v", srcSeen, addrC)
	}
}

func TestReRegisterKeepsNode(t *testing.T) {
	s := New(Config{Seed: 10})
	n1 := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	var hits int
	n2 := s.Register(addrA, HostFunc(func(*Node, Datagram) { hits++ }))
	if n1 != n2 {
		t.Error("re-register produced a new node")
	}
	b := s.Register(addrB, HostFunc(func(*Node, Datagram) {}))
	b.Send(addrA, 1, 2, nil)
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Errorf("replacement host hits = %d", hits)
	}
	s.Unregister(addrA)
	b.Send(addrA, 1, 2, nil)
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if s.Stats().NoRoute != 1 {
		t.Error("unregistered host still routed")
	}
}

func TestUniformLatency(t *testing.T) {
	s := New(Config{Seed: 11, Latency: UniformLatency(10*time.Millisecond, 20*time.Millisecond)})
	var times []time.Duration
	s.Register(addrB, HostFunc(func(n *Node, dg Datagram) { times = append(times, n.Now()) }))
	a := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	for i := 0; i < 100; i++ {
		a.Send(addrB, 1, 2, nil)
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	for _, at := range times {
		if at < 10*time.Millisecond || at >= 20*time.Millisecond {
			t.Fatalf("delivery at %v outside [10ms,20ms)", at)
		}
	}
	// Degenerate range collapses to the low bound.
	lm := UniformLatency(5*time.Millisecond, 5*time.Millisecond)
	if d := lm(0, 0, s.Rand()); d != 5*time.Millisecond {
		t.Errorf("degenerate uniform = %v", d)
	}
}

func BenchmarkEventThroughput(b *testing.B) {
	s := New(Config{Seed: 1, Latency: ConstantLatency(time.Millisecond)})
	s.Register(addrB, HostFunc(func(n *Node, dg Datagram) {
		n.Send(dg.Src, dg.DstPort, dg.SrcPort, dg.Payload)
	}))
	a := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Send(addrB, 1, 2, nil)
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
	_ = s.Run(0)
}

// BenchmarkTimerEnqueueDequeue measures one push+pop through the event
// queue with a realistic backlog (the prober keeps thousands of timeout
// timers pending at any instant).
func BenchmarkTimerEnqueueDequeue(b *testing.B) {
	s := New(Config{Seed: 1})
	n := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	fn := func() {}
	for i := 0; i < 1024; i++ {
		n.After(time.Hour+time.Duration(i)*time.Second, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.After(time.Duration(i%16)*time.Microsecond, fn)
		if _, err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHostLookup measures address routing over a population-scale
// host table.
func BenchmarkHostLookup(b *testing.B) {
	s := New(Config{Seed: 2})
	const n = 1 << 16
	base := ipv4.Addr(0x0B000000)
	h := HostFunc(func(*Node, Datagram) {})
	for i := 0; i < n; i++ {
		s.Register(base+ipv4.Addr(i*2654435761), h)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := s.Lookup(base + ipv4.Addr(i%n*2654435761)); !ok {
			b.Fatal("miss")
		}
	}
}

func TestManyHostsStress(t *testing.T) {
	// 20k hosts exchanging a burst each: the event queue and router must
	// stay correct at population scale.
	s := New(Config{Seed: 99, Latency: ConstantLatency(time.Millisecond)})
	const n = 20000
	received := make([]int, n)
	base := ipv4.Addr(0x0B000000)
	for i := 0; i < n; i++ {
		idx := i
		s.Register(base+ipv4.Addr(idx), HostFunc(func(*Node, Datagram) {
			received[idx]++
		}))
	}
	if s.NumHosts() != n {
		t.Fatalf("NumHosts = %d", s.NumHosts())
	}
	sender := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	for i := 0; i < n; i++ {
		sender.Send(base+ipv4.Addr(i), 1, 2, nil)
	}
	if err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, r := range received {
		if r != 1 {
			t.Fatalf("host %d received %d datagrams", i, r)
		}
	}
	if st := s.Stats(); st.Delivered != n {
		t.Errorf("delivered = %d", st.Delivered)
	}
}

func TestLookup(t *testing.T) {
	s := New(Config{Seed: 100})
	n := s.Register(addrA, HostFunc(func(*Node, Datagram) {}))
	got, ok := s.Lookup(addrA)
	if !ok || got != n {
		t.Error("Lookup failed for registered host")
	}
	if _, ok := s.Lookup(addrB); ok {
		t.Error("Lookup succeeded for unknown host")
	}
	if n.Addr() != addrA {
		t.Errorf("node addr = %v", n.Addr())
	}
	if n.Rand() == nil {
		t.Error("node rand nil")
	}
}
