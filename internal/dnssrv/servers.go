package dnssrv

import (
	"strings"
	"time"

	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
)

// DNSPort is the well-known DNS port.
const DNSPort = 53

// Tap observes packets at a server, standing in for the paper's tcpdump
// capture at the authoritative name server (Fig. 2: Q2 and R1).
type Tap interface {
	// Packet is called for each DNS message the server receives (inbound
	// true: a Q2) or sends (inbound false: an R1).
	Packet(inbound bool, at time.Duration, dg netsim.Datagram, msg *dnswire.Message)
}

// Referral describes a delegation: queries for names under Zone are to be
// sent to the name server at Addr (its glue address).
type Referral struct {
	Zone   string
	NSName string
	Addr   ipv4.Addr
}

// ReferralServer is a root or TLD name server: it answers every query with
// a downward referral (authority NS + glue A), or Refused when the name is
// outside all of its delegations. It stands in for the real root and .net
// infrastructure of Fig. 1, which the paper deliberately leaves out of its
// capture scope.
type ReferralServer struct {
	node      *netsim.Node
	referrals []Referral

	// Per-packet scratch; handlers finish with both before returning.
	qmsg, respMsg dnswire.Message
}

// NewReferralServer registers a referral server at addr on sim.
func NewReferralServer(sim *netsim.Sim, addr ipv4.Addr, referrals []Referral) *ReferralServer {
	s := &ReferralServer{referrals: append([]Referral(nil), referrals...)}
	s.node = sim.Register(addr, s)
	return s
}

// Addr returns the server's address.
func (s *ReferralServer) Addr() ipv4.Addr { return s.node.Addr() }

// HandleDatagram implements netsim.Host.
func (s *ReferralServer) HandleDatagram(n *netsim.Node, dg netsim.Datagram) {
	q := &s.qmsg
	if err := dnswire.UnpackInto(q, dg.Payload); err != nil || q.Header.QR {
		return
	}
	resp := &s.respMsg
	dnswire.NewResponseInto(resp, q)
	qst, ok := q.Question1()
	if !ok {
		resp.Header.Rcode = dnswire.RcodeFormErr
		reply(n, dg, resp)
		return
	}
	for _, r := range s.referrals {
		if qst.Name == r.Zone || strings.HasSuffix(qst.Name, "."+r.Zone) {
			resp.Authority = append(resp.Authority, dnswire.RR{
				Name: r.Zone, Type: dnswire.TypeNS, Class: dnswire.ClassIN,
				TTL: 172800, Target: r.NSName,
			})
			resp.Additional = append(resp.Additional, dnswire.RR{
				Name: r.NSName, Type: dnswire.TypeA, Class: dnswire.ClassIN,
				TTL: 172800, A: uint32(r.Addr),
			})
			reply(n, dg, resp)
			return
		}
	}
	resp.Header.Rcode = dnswire.RcodeRefused
	reply(n, dg, resp)
}

// reply encodes resp into a pooled payload buffer and returns it to the
// query's source; the buffer is recycled once the receiver is done with it.
func reply(n *netsim.Node, dg netsim.Datagram, resp *dnswire.Message) {
	wire, err := resp.Append(n.PayloadBuf())
	if err != nil {
		return
	}
	n.SendPooled(dg.Src, dg.DstPort, dg.SrcPort, wire)
}

// AuthServer is the measurement's authoritative name server: it serves the
// probe SLD with the two-tier subdomain cluster scheme of Fig. 3. Only the
// active cluster's subdomains resolve; queries for other clusters return
// NXDomain, and during a cluster reload (§III-B: about one minute per 5M
// subdomains) the server is silent, exactly like a BIND instance busy
// loading a zone.
type AuthServer struct {
	node *netsim.Node
	sld  string
	tap  Tap

	activeCluster int
	clusterSize   int
	anyName       bool
	reloadTime    time.Duration
	reloadUntil   time.Duration
	reloads       int

	// Per-packet scratch for the UDP path (the TCP path shares respMsg;
	// both encode before the next decode), plus the batched-delivery decode
	// scratch (netsim.BatchHost).
	qmsg, respMsg dnswire.Message
	qBatch        []dnswire.Message
	qBatchOK      []bool

	// Stats.
	queries   uint64
	responses uint64
	nxdomain  uint64
	refused   uint64
}

// AuthConfig parameterizes the authoritative server.
type AuthConfig struct {
	Addr ipv4.Addr
	// SLD is the zone origin (ucfsealresearch.net in the paper).
	SLD string
	// ClusterSize is the number of subdomains per cluster (5M in the paper).
	ClusterSize int
	// ReloadTime is how long a cluster load keeps the server silent.
	ReloadTime time.Duration
	// FirstCluster is the cluster pre-loaded at startup: 0 for a whole
	// campaign, a shard's namespace base in the parallel simulation (each
	// shard probes a disjoint cluster range so merged captures never collide
	// on a qname). Like cluster 0 of a serial run, the initial load is free —
	// the server starts ready, with no reload silence.
	FirstCluster int
	// Tap, if set, observes Q2/R1 packets.
	Tap Tap
	// AnyName disables the probe-name cluster discipline: every name under
	// the SLD resolves to its TruthAddr. Used for general-purpose zones
	// (e.g. the client-workload simulation), not for measurement campaigns.
	AnyName bool
}

// NewAuthServer registers the authoritative server on sim, with cluster
// cfg.FirstCluster loaded and ready.
func NewAuthServer(sim *netsim.Sim, cfg AuthConfig) *AuthServer {
	s := &AuthServer{
		sld:           dnswire.CanonicalName(cfg.SLD),
		tap:           cfg.Tap,
		clusterSize:   cfg.ClusterSize,
		activeCluster: cfg.FirstCluster,
	}
	if s.clusterSize <= 0 {
		s.clusterSize = 1 << 20
	}
	s.anyName = cfg.AnyName
	s.reloadTime = cfg.ReloadTime
	s.node = sim.Register(cfg.Addr, s)
	// DNS over TCP (RFC 7766): serve the zone on a stream listener too,
	// for clients retrying truncated UDP responses.
	sim.Listen(cfg.Addr, DNSPort, s.acceptTCP)
	return s
}

// acceptTCP serves framed queries on one connection.
func (s *AuthServer) acceptTCP(c *netsim.Conn) {
	parser := &dnswire.StreamParser{}
	c.OnData(func(b []byte) {
		msgs, err := parser.Feed(b)
		if err != nil {
			c.Close()
			return
		}
		for _, q := range msgs {
			if q.Header.QR {
				continue
			}
			s.queries++
			if !s.buildResponseInto(&s.respMsg, q) {
				continue
			}
			wire, err := s.respMsg.PackTCP()
			if err != nil {
				continue
			}
			s.responses++
			c.Send(wire)
		}
	})
}

// Addr returns the server's address.
func (s *AuthServer) Addr() ipv4.Addr { return s.node.Addr() }

// ActiveCluster returns the loaded cluster number.
func (s *AuthServer) ActiveCluster() int { return s.activeCluster }

// Reloads returns how many cluster loads have occurred.
func (s *AuthServer) Reloads() int { return s.reloads }

// QueriesSeen returns the number of Q2 packets received.
func (s *AuthServer) QueriesSeen() uint64 { return s.queries }

// ResponsesSent returns the number of R1 packets sent.
func (s *AuthServer) ResponsesSent() uint64 { return s.responses }

// SetCluster loads cluster c: the server goes silent for ReloadTime of
// virtual time (the paper's one-minute zone load), then serves c.
func (s *AuthServer) SetCluster(c int) {
	if c == s.activeCluster && s.reloads > 0 {
		return
	}
	s.activeCluster = c
	s.reloads++
	s.reloadUntil = s.node.Now() + s.reloadTime
}

// HandleDatagram implements netsim.Host (the UDP service). Scratch decode
// and encode: the tap observers copy what they keep before returning.
func (s *AuthServer) HandleDatagram(n *netsim.Node, dg netsim.Datagram) {
	q := &s.qmsg
	if err := dnswire.UnpackInto(q, dg.Payload); err != nil || q.Header.QR {
		return
	}
	s.serveQuery(n, dg, q)
}

// HandleBatch implements netsim.BatchHost: an adjacent run of same-instant
// queries is decoded over a scratch-message batch up front, then every
// query is answered in arrival order — the same outcomes as per-datagram
// delivery, with the decode loop amortized across the run.
func (s *AuthServer) HandleBatch(n *netsim.Node, dgs []netsim.Datagram) {
	for len(s.qBatch) < len(dgs) {
		s.qBatch = append(s.qBatch, dnswire.Message{})
		s.qBatchOK = append(s.qBatchOK, false)
	}
	for i := range dgs {
		err := dnswire.UnpackInto(&s.qBatch[i], dgs[i].Payload)
		s.qBatchOK[i] = err == nil && !s.qBatch[i].Header.QR
	}
	for i := range dgs {
		if s.qBatchOK[i] {
			s.serveQuery(n, dgs[i], &s.qBatch[i])
		}
	}
}

// serveQuery answers one decoded query — the shared tail of the single and
// batched UDP paths.
func (s *AuthServer) serveQuery(n *netsim.Node, dg netsim.Datagram, q *dnswire.Message) {
	s.queries++
	if s.tap != nil {
		s.tap.Packet(true, n.Now(), dg, q)
	}
	if !s.buildResponseInto(&s.respMsg, q) {
		return
	}
	// UDP responses honor the client's EDNS budget (RFC 1035 §4.2.1 /
	// RFC 6891); oversized answers truncate and set TC.
	wire, err := s.respMsg.AppendTruncated(n.PayloadBuf(), q.MaxResponseSize())
	if err != nil {
		return
	}
	s.responses++
	if s.tap != nil {
		s.tap.Packet(false, n.Now(), netsim.Datagram{
			Src: n.Addr(), Dst: dg.Src, SrcPort: dg.DstPort, DstPort: dg.SrcPort,
			Payload: wire,
		}, &s.respMsg)
	}
	n.SendPooled(dg.Src, dg.DstPort, dg.SrcPort, wire)
}

// buildResponseInto constructs the answer for one query into resp; it
// returns false while a zone reload keeps the server silent.
func (s *AuthServer) buildResponseInto(resp *dnswire.Message, q *dnswire.Message) bool {
	if s.node.Now() < s.reloadUntil {
		// Zone load in progress: BIND answers nothing.
		return false
	}
	dnswire.NewResponseInto(resp, q)
	qst, ok := q.Question1()
	switch {
	case !ok:
		resp.Header.Rcode = dnswire.RcodeFormErr
	case qst.Name != s.sld && !strings.HasSuffix(qst.Name, "."+s.sld):
		// Not our zone: a lame query; refuse.
		resp.Header.Rcode = dnswire.RcodeRefused
		s.refused++
	default:
		resp.Header.AA = true // we are authoritative for the SLD
		if s.anyName {
			if qst.Type == dnswire.TypeA || qst.Type == dnswire.TypeANY {
				resp.AnswerA(uint32(TruthAddr(qst.Name)), 300)
			}
			break
		}
		pn, err := ParseProbeName(qst.Name, s.sld)
		switch {
		case err != nil:
			// The SLD apex or a non-probe name: NXDomain.
			resp.Header.Rcode = dnswire.RcodeNXDomain
			s.nxdomain++
		case pn.Cluster != s.activeCluster || pn.Index < 0 || pn.Index >= s.clusterSize:
			// Fig. 3: only the active cluster's zone file is loaded.
			resp.Header.Rcode = dnswire.RcodeNXDomain
			s.nxdomain++
		default:
			if qst.Type == dnswire.TypeA || qst.Type == dnswire.TypeANY {
				resp.AnswerA(uint32(TruthAddr(qst.Name)), 60)
			}
		}
	}
	return true
}
