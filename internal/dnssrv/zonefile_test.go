package dnssrv

import (
	"bytes"
	"strings"
	"testing"
)

func TestZoneFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteClusterZone(&buf, testSLD, 3, 100); err != nil {
		t.Fatal(err)
	}
	z, err := ParseZoneFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if z.Origin != testSLD {
		t.Errorf("origin = %q", z.Origin)
	}
	if z.TTL != 60 {
		t.Errorf("TTL = %d", z.TTL)
	}
	if z.Serial != 2018042603 {
		t.Errorf("serial = %d (cluster must be encoded)", z.Serial)
	}
	if len(z.NS) != 1 || z.NS[0] != "ns1."+testSLD {
		t.Errorf("NS = %v", z.NS)
	}
	if len(z.A) != 100 {
		t.Fatalf("records = %d", len(z.A))
	}
	n, err := VerifyClusterZone(z)
	if err != nil {
		t.Fatal(err)
	}
	if n != 100 {
		t.Errorf("verified = %d", n)
	}
	// Spot-check one record against the server's answer path.
	name := FormatProbeName(3, 42, testSLD)
	if z.A[name] != TruthAddr(name) {
		t.Errorf("record %s = %v", name, z.A[name])
	}
}

func TestParseZoneFileVariations(t *testing.T) {
	const text = `
; a hand-written zone
$ORIGIN example.net.
$TTL 300
@ IN SOA ns1.example.net. host.example.net. ( 7 3600
   600 86400
   60 )
@ IN NS ns1.example.net.
www 60 IN A 192.0.2.10
api.example.net. IN A 192.0.2.11 ; trailing comment
`
	z, err := ParseZoneFile(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if z.Serial != 7 {
		t.Errorf("serial = %d", z.Serial)
	}
	if z.A["www.example.net"].String() != "192.0.2.10" {
		t.Errorf("www = %v", z.A["www.example.net"])
	}
	if z.A["api.example.net"].String() != "192.0.2.11" {
		t.Errorf("api = %v", z.A["api.example.net"])
	}
}

func TestParseZoneFileSingleLineSOA(t *testing.T) {
	const text = `$ORIGIN z.net.
@ IN SOA ns.z.net. h.z.net. 42 3600 600 86400 60
a IN A 198.51.100.1
`
	z, err := ParseZoneFile(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if z.Serial != 42 {
		t.Errorf("serial = %d", z.Serial)
	}
}

func TestParseZoneFileErrors(t *testing.T) {
	cases := map[string]string{
		"no soa":         "$ORIGIN x.net.\na IN A 1.2.3.4\n",
		"bad origin":     "$ORIGIN\n",
		"bad ttl":        "$TTL abc\n",
		"bad addr":       "$ORIGIN x.net.\n@ IN SOA a. b. 1 2 3 4 5\na IN A 999.1.1.1\n",
		"unknown type":   "$ORIGIN x.net.\n@ IN SOA a. b. 1 2 3 4 5\na IN MX 10 m.x.net.\n",
		"short record":   "$ORIGIN x.net.\n@ IN SOA a. b. 1 2 3 4 5\nshort IN\n",
		"unbalanced":     "$ORIGIN x.net.\n@ IN SOA a. b. ( 1 2 3\n",
		"bad soa serial": "$ORIGIN x.net.\n@ IN SOA a. b. xyz 2 3 4 5\n",
		"malformed ns":   "$ORIGIN x.net.\n@ IN SOA a. b. 1 2 3 4 5\n@ IN NS\n",
	}
	for name, text := range cases {
		if _, err := ParseZoneFile(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestVerifyClusterZoneDetectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteClusterZone(&buf, testSLD, 0, 10); err != nil {
		t.Fatal(err)
	}
	z, err := ParseZoneFile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for name := range z.A {
		z.A[name]++ // corrupt one record
		break
	}
	if _, err := VerifyClusterZone(z); err == nil {
		t.Error("corruption not detected")
	}
}

func BenchmarkWriteClusterZone(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteClusterZone(&buf, testSLD, 0, 5000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParseZoneFile(b *testing.B) {
	var buf bytes.Buffer
	if err := WriteClusterZone(&buf, testSLD, 0, 5000); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseZoneFile(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
