package dnssrv

import (
	"testing"
	"testing/quick"
	"time"

	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
)

var (
	rootAddr = ipv4.MustParseAddr("198.41.0.4")
	tldAddr  = ipv4.MustParseAddr("192.5.6.30")
	authAddr = ipv4.MustParseAddr("45.76.1.10")
	resAddr  = ipv4.MustParseAddr("66.10.20.30")
)

const testSLD = "ucfsealresearch.net"

// buildHierarchy wires root → .net TLD → auth on a fresh simulation.
func buildHierarchy(t *testing.T, tap Tap) (*netsim.Sim, *AuthServer) {
	t.Helper()
	sim := netsim.New(netsim.Config{Seed: 1, Latency: netsim.ConstantLatency(10 * time.Millisecond)})
	NewReferralServer(sim, rootAddr, []Referral{
		{Zone: "net", NSName: "a.gtld-servers.net", Addr: tldAddr},
	})
	NewReferralServer(sim, tldAddr, []Referral{
		{Zone: testSLD, NSName: "ns1." + testSLD, Addr: authAddr},
	})
	auth := NewAuthServer(sim, AuthConfig{
		Addr: authAddr, SLD: testSLD, ClusterSize: 100,
		ReloadTime: time.Minute, Tap: tap,
	})
	return sim, auth
}

func TestProbeNameRoundTrip(t *testing.T) {
	name := FormatProbeName(3, 4999999, testSLD)
	if name != "or003.4999999.ucfsealresearch.net" {
		t.Fatalf("format = %q", name)
	}
	pn, err := ParseProbeName(name, testSLD)
	if err != nil {
		t.Fatal(err)
	}
	if pn.Cluster != 3 || pn.Index != 4999999 {
		t.Errorf("parsed %+v", pn)
	}
}

func TestProbeNamePropertyRoundTrip(t *testing.T) {
	f := func(c uint8, idx uint32) bool {
		cluster := int(c) % 1000
		index := int(idx) % 10000000
		pn, err := ParseProbeName(FormatProbeName(cluster, index, testSLD), testSLD)
		return err == nil && pn.Cluster == cluster && pn.Index == index
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProbeNameRejects(t *testing.T) {
	bad := []string{
		"example.com",
		"or0.0000001." + testSLD,
		"orXYZ.0000001." + testSLD,
		"or001.123." + testSLD,
		"or001.abcdefg." + testSLD,
		"or001." + testSLD,
		testSLD,
	}
	for _, name := range bad {
		if _, err := ParseProbeName(name, testSLD); err == nil {
			t.Errorf("%q accepted", name)
		}
	}
}

// TestProbeNameClusterWidths pins the cluster-label width contract: the
// paper's fixed 3-digit rendering is the floor, and the sharded engine's
// wider strided labels (or1022, or10220…) must keep parsing, while anything
// narrower, non-numeric, or too large for int must be rejected rather than
// silently truncated or wrapped.
func TestProbeNameClusterWidths(t *testing.T) {
	accept := []struct {
		label   string
		cluster int
	}{
		{"or000", 0},
		{"or999", 999},
		{"or1022", 1022},     // 4 digits: sharded stride past the padded width
		{"or10220", 10220},   // 5 digits
		{"or102200", 102200}, // 6 digits: no upper width cap short of overflow
	}
	for _, tc := range accept {
		name := tc.label + ".0000001." + testSLD
		pn, err := ParseProbeName(name, testSLD)
		if err != nil {
			t.Errorf("%q rejected: %v", name, err)
			continue
		}
		if pn.Cluster != tc.cluster || pn.Index != 1 {
			t.Errorf("%q parsed as %+v, want cluster %d index 1", name, pn, tc.cluster)
		}
	}
	reject := []string{
		"or12.0000001." + testSLD,   // 2-digit label: below the padded floor
		"or1.0000001." + testSLD,    // 1-digit label
		"or.0000001." + testSLD,     // no digits at all
		"or0x1.0000001." + testSLD,  // non-numeric amid the digits
		"or001a.0000001." + testSLD, // non-numeric suffix after valid digits
		// 20 nines overflow int64: strconv.Atoi must bound the value with an
		// ErrRange rejection instead of wrapping into a bogus cluster.
		"or99999999999999999999.0000001." + testSLD,
	}
	for _, name := range reject {
		if pn, err := ParseProbeName(name, testSLD); err == nil {
			t.Errorf("%q accepted as %+v", name, pn)
		}
	}
}

func TestTruthAddrProperties(t *testing.T) {
	reserved := ipv4.NewReservedBlocklist()
	seen := map[ipv4.Addr]int{}
	for i := 0; i < 10000; i++ {
		a := TruthAddr(FormatProbeName(0, i, testSLD))
		if reserved.Contains(a) {
			t.Fatalf("truth address %v reserved", a)
		}
		seen[a]++
	}
	if len(seen) < 9900 {
		t.Errorf("only %d distinct truth addresses of 10000", len(seen))
	}
	// Deterministic.
	if TruthAddr("x.y") != TruthAddr("x.y") {
		t.Error("TruthAddr nondeterministic")
	}
}

func TestFullResolutionChain(t *testing.T) {
	// Fig. 1 end to end: a stub at resAddr resolves a probe name through
	// root, TLD and authoritative servers.
	sim, _ := buildHierarchy(t, nil)
	var rec *Recursive
	node := sim.Register(resAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		msg, err := dnswire.Unpack(dg.Payload)
		if err != nil {
			return
		}
		if msg.Header.QR {
			rec.HandleResponse(msg)
		}
	}))
	rec = NewRecursive(node, rootAddr)

	qname := FormatProbeName(0, 42, testSLD)
	var got Result
	var calls int
	rec.Resolve(qname, func(r Result) { got = r; calls++ })
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("done called %d times", calls)
	}
	if !got.OK || got.Rcode != dnswire.RcodeNoError {
		t.Fatalf("result = %+v", got)
	}
	if want := TruthAddr(qname); got.Addr != want {
		t.Errorf("addr = %v, want %v", got.Addr, want)
	}
	// Three legs: root, TLD, auth.
	if rec.UpstreamQueries != 3 {
		t.Errorf("upstream queries = %d, want 3", rec.UpstreamQueries)
	}
	if rec.Outstanding() != 0 {
		t.Errorf("outstanding = %d", rec.Outstanding())
	}
}

func TestResolutionUsesReferralCache(t *testing.T) {
	sim, _ := buildHierarchy(t, nil)
	var rec *Recursive
	node := sim.Register(resAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		if msg, err := dnswire.Unpack(dg.Payload); err == nil && msg.Header.QR {
			rec.HandleResponse(msg)
		}
	}))
	rec = NewRecursive(node, rootAddr)

	rec.Resolve(FormatProbeName(0, 1, testSLD), func(Result) {})
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	first := rec.UpstreamQueries
	// Second lookup of a *different* name under the cached SLD goes
	// straight to the authoritative server: one leg.
	rec.Resolve(FormatProbeName(0, 2, testSLD), func(Result) {})
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if got := rec.UpstreamQueries - first; got != 1 {
		t.Errorf("warm-cache resolution used %d legs, want 1", got)
	}
	// Repeating the same name hits the answer cache: zero legs.
	before := rec.UpstreamQueries
	var cached Result
	rec.Resolve(FormatProbeName(0, 2, testSLD), func(r Result) { cached = r })
	if rec.UpstreamQueries != before || rec.CacheHits != 1 {
		t.Errorf("answer cache missed (queries %d→%d, hits %d)", before, rec.UpstreamQueries, rec.CacheHits)
	}
	if !cached.OK {
		t.Error("cached result not OK")
	}
}

func TestInactiveClusterNXDomain(t *testing.T) {
	sim, auth := buildHierarchy(t, nil)
	if auth.ActiveCluster() != 0 {
		t.Fatalf("active cluster = %d", auth.ActiveCluster())
	}
	var rec *Recursive
	node := sim.Register(resAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		if msg, err := dnswire.Unpack(dg.Payload); err == nil && msg.Header.QR {
			rec.HandleResponse(msg)
		}
	}))
	rec = NewRecursive(node, rootAddr)
	var got Result
	rec.Resolve(FormatProbeName(7, 1, testSLD), func(r Result) { got = r })
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if got.OK || got.Rcode != dnswire.RcodeNXDomain {
		t.Errorf("result = %+v, want NXDomain", got)
	}
	// Out-of-range index within the active cluster is also NXDomain.
	rec.Resolve(FormatProbeName(0, 100, testSLD), func(r Result) { got = r })
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if got.OK || got.Rcode != dnswire.RcodeNXDomain {
		t.Errorf("out-of-range result = %+v, want NXDomain", got)
	}
}

func TestClusterReloadSilence(t *testing.T) {
	sim, auth := buildHierarchy(t, nil)
	var rec *Recursive
	node := sim.Register(resAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		if msg, err := dnswire.Unpack(dg.Payload); err == nil && msg.Header.QR {
			rec.HandleResponse(msg)
		}
	}))
	rec = NewRecursive(node, rootAddr)
	rec.Timeout = 500 * time.Millisecond
	rec.Retries = 1

	// Warm the referral cache first.
	rec.Resolve(FormatProbeName(0, 1, testSLD), func(Result) {})
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}

	// Switch clusters: server silent for one minute of virtual time.
	auth.SetCluster(1)
	var during Result
	rec.Resolve(FormatProbeName(1, 5, testSLD), func(r Result) { during = r })
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if during.OK {
		t.Error("resolution succeeded during reload silence")
	}
	if during.Rcode != dnswire.RcodeServFail {
		t.Errorf("rcode during reload = %v, want ServFail after retries", during.Rcode)
	}

	// Let the reload minute elapse in virtual time, then the new cluster
	// serves.
	node.After(2*time.Minute, func() {})
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	var after Result
	rec.Resolve(FormatProbeName(1, 5, testSLD), func(r Result) { after = r })
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if !after.OK {
		t.Errorf("post-reload result = %+v", after)
	}
	if auth.Reloads() != 1 {
		t.Errorf("reloads = %d, want 1", auth.Reloads())
	}
}

func TestAuthTapSeesQ2R1(t *testing.T) {
	tap := &countingTap{}
	sim, _ := buildHierarchy(t, tap)
	var rec *Recursive
	node := sim.Register(resAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		if msg, err := dnswire.Unpack(dg.Payload); err == nil && msg.Header.QR {
			rec.HandleResponse(msg)
		}
	}))
	rec = NewRecursive(node, rootAddr)
	rec.Resolve(FormatProbeName(0, 9, testSLD), func(Result) {})
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if tap.q2 != 1 || tap.r1 != 1 {
		t.Errorf("tap saw Q2=%d R1=%d, want 1/1", tap.q2, tap.r1)
	}
}

type countingTap struct{ q2, r1 int }

func (t *countingTap) Packet(inbound bool, _ time.Duration, _ netsim.Datagram, _ *dnswire.Message) {
	if inbound {
		t.q2++
	} else {
		t.r1++
	}
}

func TestDupQueriesHitAuthOnly(t *testing.T) {
	tap := &countingTap{}
	sim, _ := buildHierarchy(t, tap)
	var rec *Recursive
	node := sim.Register(resAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		if msg, err := dnswire.Unpack(dg.Payload); err == nil && msg.Header.QR {
			rec.HandleResponse(msg)
		}
	}))
	rec = NewRecursive(node, rootAddr)
	rec.DupQueries = 3
	var got Result
	rec.Resolve(FormatProbeName(0, 11, testSLD), func(r Result) { got = r })
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if !got.OK {
		t.Fatalf("result = %+v", got)
	}
	if tap.q2 != 3 {
		t.Errorf("auth saw %d queries, want 3 duplicates", tap.q2)
	}
	// Total legs: root + TLD + 3×auth.
	if rec.UpstreamQueries != 5 {
		t.Errorf("upstream queries = %d, want 5", rec.UpstreamQueries)
	}
}

func TestRefusedOutsideZone(t *testing.T) {
	sim, _ := buildHierarchy(t, nil)
	var got *dnswire.Message
	node := sim.Register(resAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		got, _ = dnswire.Unpack(dg.Payload)
	}))
	q := dnswire.NewQuery(5, "www.example.com", dnswire.TypeA)
	node.Send(authAddr, 4000, DNSPort, q.MustPack())
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Header.Rcode != dnswire.RcodeRefused {
		t.Errorf("response = %v, want Refused", got)
	}
	// Root refuses queries outside its delegations too.
	got = nil
	q2 := dnswire.NewQuery(6, "www.example.org", dnswire.TypeA)
	node.Send(rootAddr, 4000, DNSPort, q2.MustPack())
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if got == nil || got.Header.Rcode != dnswire.RcodeRefused {
		t.Errorf("root response = %v, want Refused", got)
	}
}

func TestAuthAnswersANYAndAA(t *testing.T) {
	sim, _ := buildHierarchy(t, nil)
	var got *dnswire.Message
	node := sim.Register(resAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		got, _ = dnswire.Unpack(dg.Payload)
	}))
	qname := FormatProbeName(0, 1, testSLD)
	q := dnswire.NewQuery(5, qname, dnswire.TypeANY)
	node.Send(authAddr, 4000, DNSPort, q.MustPack())
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("no response")
	}
	if !got.Header.AA {
		t.Error("authoritative answer lacks AA")
	}
	if a, ok := got.FirstA(); !ok || ipv4.Addr(a) != TruthAddr(qname) {
		t.Errorf("ANY answer = %#x, %v", a, ok)
	}
}

func TestResolutionTimeoutGivesServFail(t *testing.T) {
	// No hierarchy at all: the root address is unrouted.
	sim := netsim.New(netsim.Config{Seed: 2, Latency: netsim.ConstantLatency(time.Millisecond)})
	var rec *Recursive
	node := sim.Register(resAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		if msg, err := dnswire.Unpack(dg.Payload); err == nil && msg.Header.QR {
			rec.HandleResponse(msg)
		}
	}))
	rec = NewRecursive(node, rootAddr)
	rec.Timeout = 100 * time.Millisecond
	rec.Retries = 2
	var got Result
	rec.Resolve("a.b.net", func(r Result) { got = r })
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if got.OK || got.Rcode != dnswire.RcodeServFail {
		t.Errorf("result = %+v, want ServFail", got)
	}
	if rec.UpstreamQueries != 3 { // initial + 2 retries
		t.Errorf("upstream queries = %d, want 3", rec.UpstreamQueries)
	}
	if rec.Failures != 1 {
		t.Errorf("failures = %d", rec.Failures)
	}
}

// truncatingServer answers over UDP with TC set and serves the real answer
// over TCP — the classic RFC 7766 fallback scenario.
type truncatingServer struct {
	udpQueries, tcpQueries int
}

func newTruncatingServer(sim *netsim.Sim, addr ipv4.Addr) *truncatingServer {
	ts := &truncatingServer{}
	sim.Register(addr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		q, err := dnswire.Unpack(dg.Payload)
		if err != nil || q.Header.QR {
			return
		}
		ts.udpQueries++
		resp := dnswire.NewResponse(q)
		resp.Header.TC = true
		n.Send(dg.Src, dg.DstPort, dg.SrcPort, resp.MustPack())
	}))
	sim.Listen(addr, DNSPort, func(c *netsim.Conn) {
		parser := &dnswire.StreamParser{}
		c.OnData(func(b []byte) {
			msgs, err := parser.Feed(b)
			if err != nil {
				return
			}
			for _, q := range msgs {
				ts.tcpQueries++
				resp := dnswire.NewResponse(q)
				resp.AnswerA(0x0A141E28, 60)
				wire, err := resp.PackTCP()
				if err != nil {
					continue
				}
				c.Send(wire)
			}
		})
	})
	return ts
}

func TestTCPFallbackOnTruncation(t *testing.T) {
	sim := netsim.New(netsim.Config{Seed: 5, Latency: netsim.ConstantLatency(5 * time.Millisecond)})
	server := ipv4.MustParseAddr("45.76.2.2")
	ts := newTruncatingServer(sim, server)

	var rec *Recursive
	node := sim.Register(resAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		if msg, err := dnswire.Unpack(dg.Payload); err == nil && msg.Header.QR {
			rec.HandleResponse(msg)
		}
	}))
	rec = NewRecursive(node, server) // "root" is the truncating server itself
	var got Result
	rec.Resolve("big.example.net", func(r Result) { got = r })
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if !got.OK || got.Addr != 0x0A141E28 {
		t.Fatalf("result = %+v", got)
	}
	if ts.udpQueries != 1 || ts.tcpQueries != 1 {
		t.Errorf("server saw udp=%d tcp=%d, want 1/1", ts.udpQueries, ts.tcpQueries)
	}
	if rec.TCPFallbacks != 1 {
		t.Errorf("TCPFallbacks = %d", rec.TCPFallbacks)
	}
}

func TestTCPFallbackServerGone(t *testing.T) {
	// TC over UDP but nobody listening on TCP: the engine reports ServFail
	// after the refused dial.
	sim := netsim.New(netsim.Config{Seed: 6, Latency: netsim.ConstantLatency(5 * time.Millisecond)})
	server := ipv4.MustParseAddr("45.76.2.3")
	sim.Register(server, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		q, err := dnswire.Unpack(dg.Payload)
		if err != nil || q.Header.QR {
			return
		}
		resp := dnswire.NewResponse(q)
		resp.Header.TC = true
		n.Send(dg.Src, dg.DstPort, dg.SrcPort, resp.MustPack())
	}))
	var rec *Recursive
	node := sim.Register(resAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		if msg, err := dnswire.Unpack(dg.Payload); err == nil && msg.Header.QR {
			rec.HandleResponse(msg)
		}
	}))
	rec = NewRecursive(node, server)
	rec.Timeout = 200 * time.Millisecond
	var got Result
	var calls int
	rec.Resolve("x.example.net", func(r Result) { got = r; calls++ })
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("done called %d times", calls)
	}
	if got.OK || got.Rcode != dnswire.RcodeServFail {
		t.Errorf("result = %+v", got)
	}
}

func TestAuthServesTCP(t *testing.T) {
	sim, _ := buildHierarchy(t, nil)
	client := sim.Register(resAddr, netsim.HostFunc(func(*netsim.Node, netsim.Datagram) {}))
	qname := FormatProbeName(0, 33, testSLD)
	var got *dnswire.Message
	client.Dial(authAddr, DNSPort, func(c *netsim.Conn) {
		if c == nil {
			t.Error("auth refused TCP")
			return
		}
		parser := &dnswire.StreamParser{}
		c.OnData(func(b []byte) {
			msgs, err := parser.Feed(b)
			if err != nil {
				t.Errorf("parse: %v", err)
				return
			}
			if len(msgs) > 0 {
				got = msgs[0]
				c.Close()
			}
		})
		q := dnswire.NewQuery(3, qname, dnswire.TypeA)
		wire, err := q.PackTCP()
		if err != nil {
			t.Errorf("pack: %v", err)
			return
		}
		c.Send(wire)
	})
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if got == nil {
		t.Fatal("no TCP answer")
	}
	if a, ok := got.FirstA(); !ok || ipv4.Addr(a) != TruthAddr(qname) {
		t.Errorf("TCP answer = %#x", a)
	}
	if !got.Header.AA {
		t.Error("TCP answer lacks AA")
	}
}

func TestNegativeCaching(t *testing.T) {
	// RFC 2308: an authoritative NXDomain is cached; repeating the query
	// consumes no upstream legs.
	sim, _ := buildHierarchy(t, nil)
	var rec *Recursive
	node := sim.Register(resAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		if msg, err := dnswire.Unpack(dg.Payload); err == nil && msg.Header.QR {
			rec.HandleResponse(msg)
		}
	}))
	rec = NewRecursive(node, rootAddr)
	qname := FormatProbeName(9, 1, testSLD) // inactive cluster → NXDomain

	var first Result
	rec.Resolve(qname, func(r Result) { first = r })
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if first.Rcode != dnswire.RcodeNXDomain {
		t.Fatalf("first = %+v", first)
	}
	before := rec.UpstreamQueries
	var second Result
	rec.Resolve(qname, func(r Result) { second = r })
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if second.Rcode != dnswire.RcodeNXDomain {
		t.Errorf("second = %+v", second)
	}
	if rec.UpstreamQueries != before {
		t.Errorf("negative cache missed: %d extra legs", rec.UpstreamQueries-before)
	}
	if rec.CacheHits != 1 {
		t.Errorf("cache hits = %d", rec.CacheHits)
	}

	// After the negative TTL expires the engine re-queries.
	node.After(rec.NegativeTTL+time.Second, func() {})
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	rec.Resolve(qname, func(Result) {})
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if rec.UpstreamQueries == before {
		t.Error("expired negative entry still served")
	}
}

func TestServFailNotNegativelyCached(t *testing.T) {
	// Transient failures (ServFail from a reloading server) must not stick
	// in the negative cache.
	sim, auth := buildHierarchy(t, nil)
	var rec *Recursive
	node := sim.Register(resAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		if msg, err := dnswire.Unpack(dg.Payload); err == nil && msg.Header.QR {
			rec.HandleResponse(msg)
		}
	}))
	rec = NewRecursive(node, rootAddr)
	rec.Timeout = 300 * time.Millisecond
	rec.Retries = 1

	// Warm the referral cache, then silence the server via a reload.
	rec.Resolve(FormatProbeName(0, 1, testSLD), func(Result) {})
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	auth.SetCluster(1)
	qname := FormatProbeName(1, 2, testSLD)
	var during Result
	rec.Resolve(qname, func(r Result) { during = r })
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if during.Rcode != dnswire.RcodeServFail {
		t.Fatalf("during reload = %+v", during)
	}
	// After the reload the same name must succeed (not be stuck negative).
	node.After(2*time.Minute, func() {})
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	var after Result
	rec.Resolve(qname, func(r Result) { after = r })
	if err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	if !after.OK {
		t.Errorf("after reload = %+v (ServFail wrongly cached?)", after)
	}
}

func TestResolutionSurvivesPacketLoss(t *testing.T) {
	// 20% packet loss: the engine's retransmissions must still complete
	// most resolutions (each leg retries twice).
	sim := netsim.New(netsim.Config{
		Seed: 11, Loss: 0.2,
		Latency: netsim.ConstantLatency(10 * time.Millisecond),
	})
	NewReferralServer(sim, rootAddr, []Referral{
		{Zone: "net", NSName: "a.gtld-servers.net", Addr: tldAddr},
	})
	NewReferralServer(sim, tldAddr, []Referral{
		{Zone: testSLD, NSName: "ns1." + testSLD, Addr: authAddr},
	})
	NewAuthServer(sim, AuthConfig{Addr: authAddr, SLD: testSLD, ClusterSize: 1000})

	var rec *Recursive
	node := sim.Register(resAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		if msg, err := dnswire.Unpack(dg.Payload); err == nil && msg.Header.QR {
			rec.HandleResponse(msg)
		}
	}))
	rec = NewRecursive(node, rootAddr)
	rec.Timeout = 200 * time.Millisecond
	rec.Retries = 4

	const n = 200
	var ok, fail int
	for i := 0; i < n; i++ {
		rec.Resolve(FormatProbeName(0, i, testSLD), func(r Result) {
			if r.OK {
				ok++
			} else {
				fail++
			}
		})
		if err := sim.Run(0); err != nil {
			t.Fatal(err)
		}
	}
	if ok+fail != n {
		t.Fatalf("callbacks: %d+%d != %d", ok, fail, n)
	}
	// Per-leg success with 4 retries at 20% loss: (1-(0.2+0.8*0.2)^5)... in
	// practice well above 95%.
	if ok < n*90/100 {
		t.Errorf("only %d/%d resolutions succeeded under 20%% loss", ok, n)
	}
	if rec.Outstanding() != 0 {
		t.Errorf("outstanding = %d", rec.Outstanding())
	}
}
