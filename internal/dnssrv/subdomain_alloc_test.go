package dnssrv

import (
	"fmt"
	"testing"
	"testing/quick"
)

// TestAppendProbeNameMatchesSprintf pins the builder to the exact bytes
// the historical fmt.Sprintf produced, including out-of-width and negative
// inputs (which ParseProbeName rejects, but the renderings must not
// silently change).
func TestAppendProbeNameMatchesSprintf(t *testing.T) {
	cases := []struct{ cluster, index int }{
		{0, 0}, {0, 1}, {3, 4999999}, {799, 9999999},
		{1000, 10000000}, {12345, 123456789}, {-3, -42},
	}
	for _, c := range cases {
		want := fmt.Sprintf("or%03d.%07d.%s", c.cluster, c.index, testSLD)
		if got := FormatProbeName(c.cluster, c.index, testSLD); got != want {
			t.Errorf("FormatProbeName(%d, %d) = %q, want %q", c.cluster, c.index, got, want)
		}
		if got := string(AppendProbeName(nil, c.cluster, c.index, testSLD)); got != want {
			t.Errorf("AppendProbeName(%d, %d) = %q, want %q", c.cluster, c.index, got, want)
		}
	}
	f := func(cluster int32, index int32) bool {
		want := fmt.Sprintf("or%03d.%07d.%s", cluster, index, testSLD)
		return FormatProbeName(int(cluster), int(index), testSLD) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestProbeNameAllocs is the hot-path allocation budget: the append
// builder is allocation-free into a preallocated buffer, and the string
// form costs exactly the one unavoidable string conversion.
func TestProbeNameAllocs(t *testing.T) {
	buf := make([]byte, 0, 64)
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendProbeName(buf[:0], 123, 4567890, testSLD)
	}); n != 0 {
		t.Errorf("AppendProbeName allocates %.1f times per op, want 0", n)
	}
	var sink string
	if n := testing.AllocsPerRun(200, func() {
		sink = FormatProbeName(123, 4567890, testSLD)
	}); n > 1 {
		t.Errorf("FormatProbeName allocates %.1f times per op, want ≤ 1", n)
	}
	_ = sink
}
