package dnssrv

import (
	"strings"
	"time"

	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
)

// Result is the outcome of a recursive resolution.
type Result struct {
	Addr  ipv4.Addr
	Rcode dnswire.Rcode
	// OK is true when an address was obtained (Rcode NoError with answer).
	OK bool
}

// Recursive is an iterative-resolution engine: given a query name it walks
// root → TLD → authoritative exactly as Fig. 1 describes (steps 2-7),
// caching zone referrals and final answers, retrying on timeout. Honest
// open resolvers embed one of these; the measurement's Q2/R1 flows are the
// engine's authoritative-server legs.
type Recursive struct {
	node     *netsim.Node
	rootAddr ipv4.Addr

	// Timeout and Retries govern each upstream leg.
	Timeout time.Duration
	Retries int
	// Backoff doubles the retry timeout on every attempt (capped at
	// MaxTimeout) instead of retrying on a fixed interval — the adverse-
	// network discipline: a loss burst is outwaited, not hammered.
	Backoff bool
	// Jitter adds a ±12.5% deterministic perturbation (drawn from the
	// node's rng) to each retry timeout, decorrelating retry storms across
	// a population of resolvers hit by the same outage.
	Jitter bool
	// MaxTimeout caps the backed-off retry timeout; 0 means 8×Timeout.
	MaxTimeout time.Duration
	// MaxTCPRetries bounds how often a leg truncated *over TCP* is
	// re-dialed before the engine gives up with ServFail. A server that
	// sets TC=1 on every TCP answer must not loop fallbacks forever.
	MaxTCPRetries int
	// DupQueries duplicates the authoritative leg (retransmission
	// behaviour observed in the wild; the Q2 ≈ 2×R2 ratio of Table II is
	// calibrated with it). 1 means a single query.
	DupQueries int
	// DNSSEC sets the DO bit on upstream queries, requesting signatures.
	DNSSEC bool
	// Validate, when non-nil, vets every answered response (a DNSSEC
	// validator hook); returning false makes the engine report ServFail,
	// as validating resolvers do on bogus signatures (RFC 4035 §5.5).
	Validate func(qname string, msg *dnswire.Message) bool

	// referral cache: zone suffix -> server glue address.
	referrals map[string]cacheEntry
	// answer cache: qname -> address.
	answers map[string]answerEntry
	// negative cache (RFC 2308): qname -> cached error rcode.
	negative map[string]negativeEntry
	// NegativeTTL bounds negative-cache lifetimes (RFC 2308 §5 caps at
	// 3 hours; BIND defaults lower).
	NegativeTTL time.Duration

	nextID  uint16
	pending map[uint16]*inflight

	// qmsg is the upstream-query scratch; sendQuery encodes it into a
	// pooled payload buffer before returning.
	qmsg dnswire.Message

	// Stats.
	Resolutions     uint64 // Resolve calls
	UpstreamQueries uint64 // upstream query packets (all legs, incl. retries)
	CacheHits       uint64 // Resolve calls served from the answer cache
	Failures        uint64
	TCPFallbacks    uint64 // truncated UDP responses retried over TCP
	Retransmits     uint64 // UDP legs re-sent after a timeout
	TCPTruncated    uint64 // TCP answers still carrying TC=1
}

type cacheEntry struct {
	addr    ipv4.Addr
	expires time.Duration
}

type answerEntry struct {
	addr    ipv4.Addr
	expires time.Duration
}

type negativeEntry struct {
	rcode   dnswire.Rcode
	expires time.Duration
}

type inflight struct {
	qname       string
	server      ipv4.Addr
	attempts    int
	tcpAttempts int
	timer       netsim.Timer
	done        func(Result)
	depth       int
	finished    bool
}

// finish delivers the result exactly once.
func (r *Recursive) finish(fl *inflight, res Result) {
	if fl.finished {
		return
	}
	fl.finished = true
	fl.done(res)
}

// NewRecursive creates an engine bound to node, priming the hierarchy at
// rootAddr.
func NewRecursive(node *netsim.Node, rootAddr ipv4.Addr) *Recursive {
	return &Recursive{
		node:          node,
		rootAddr:      rootAddr,
		Timeout:       2 * time.Second,
		Retries:       2,
		MaxTCPRetries: 2,
		DupQueries:    1,
		referrals:     make(map[string]cacheEntry),
		answers:       make(map[string]answerEntry),
		negative:      make(map[string]negativeEntry),
		NegativeTTL:   15 * time.Minute,
		pending:       make(map[uint16]*inflight),
		nextID:        1,
	}
}

// Resolve starts a recursive resolution of qname (type A) and calls done
// exactly once with the outcome.
func (r *Recursive) Resolve(qname string, done func(Result)) {
	r.Resolutions++
	qname = dnswire.CanonicalName(qname)
	if ans, ok := r.answers[qname]; ok && r.node.Now() < ans.expires {
		r.CacheHits++
		done(Result{Addr: ans.addr, Rcode: dnswire.RcodeNoError, OK: true})
		return
	}
	if neg, ok := r.negative[qname]; ok && r.node.Now() < neg.expires {
		r.CacheHits++
		done(Result{Rcode: neg.rcode})
		return
	}
	server := r.bestServer(qname)
	r.query(qname, server, done, 0)
}

// bestServer returns the deepest cached referral covering qname, falling
// back to the root.
func (r *Recursive) bestServer(qname string) ipv4.Addr {
	best := r.rootAddr
	bestLen := -1
	for zone, e := range r.referrals {
		if r.node.Now() >= e.expires {
			continue
		}
		if (qname == zone || hasSuffixLabel(qname, zone)) && len(zone) > bestLen {
			best, bestLen = e.addr, len(zone)
		}
	}
	return best
}

func hasSuffixLabel(name, zone string) bool {
	return len(name) > len(zone)+1 &&
		name[len(name)-len(zone):] == zone &&
		name[len(name)-len(zone)-1] == '.'
}

func (r *Recursive) query(qname string, server ipv4.Addr, done func(Result), depth int) {
	if depth > 8 {
		r.Failures++
		done(Result{Rcode: dnswire.RcodeServFail})
		return
	}
	id := r.nextID
	r.nextID++
	if r.nextID == 0 {
		r.nextID = 1
	}
	fl := &inflight{qname: qname, server: server, done: done, depth: depth}
	r.pending[id] = fl

	r.sendQuery(id, qname, server)
	// Upstream duplicates count against the authoritative leg only (depth
	// 2 of the cold root→TLD→auth walk; every probe name is unique, so the
	// walk is always cold in a campaign).
	if r.DupQueries > 1 && depth >= 2 {
		for i := 1; i < r.DupQueries; i++ {
			r.sendQuery(id, qname, server)
		}
	}
	fl.timer = r.node.After(r.Timeout, func() { r.onTimeout(id) })
}

func (r *Recursive) sendQuery(id uint16, qname string, server ipv4.Addr) {
	q := &r.qmsg
	q.Header = dnswire.Header{ID: id} // RD clear: iterative legs
	q.Questions = append(q.Questions[:0], dnswire.Question{
		Name: dnswire.CanonicalName(qname), Type: dnswire.TypeA, Class: dnswire.ClassIN,
	})
	q.Answers = q.Answers[:0]
	q.Authority = q.Authority[:0]
	q.Additional = q.Additional[:0]
	if r.DNSSEC {
		q.SetEDNS(dnswire.EDNS{UDPSize: dnswire.DefaultEDNSSize, DO: true})
	}
	wire, err := q.Append(r.node.PayloadBuf())
	if err != nil {
		return
	}
	r.UpstreamQueries++
	r.node.SendPooled(server, DNSPort, DNSPort, wire)
}

func (r *Recursive) onTimeout(id uint16) {
	fl, ok := r.pending[id]
	if !ok {
		return
	}
	fl.attempts++
	if fl.attempts > r.Retries {
		delete(r.pending, id)
		r.Failures++
		r.finish(fl, Result{Rcode: dnswire.RcodeServFail})
		return
	}
	r.Retransmits++
	r.sendQuery(id, fl.qname, fl.server)
	fl.timer = r.node.After(r.retryTimeout(fl.attempts), func() { r.onTimeout(id) })
}

// retryTimeout is the wait before declaring the attempts-th retry lost:
// the fixed Timeout, doubled per attempt under Backoff (capped), with
// optional jitter. With both flags clear it is exactly r.Timeout, keeping
// the default engine bit-identical to the pre-fault-model behaviour.
func (r *Recursive) retryTimeout(attempts int) time.Duration {
	d := r.Timeout
	if r.Backoff {
		max := r.MaxTimeout
		if max <= 0 {
			max = 8 * r.Timeout
		}
		for i := 0; i < attempts; i++ {
			d *= 2
			if d >= max {
				d = max
				break
			}
		}
	}
	if r.Jitter {
		if j := d / 8; j > 0 {
			d += time.Duration(r.node.Rand().Int63n(int64(2*j+1))) - j
		}
	}
	return d
}

// HandleResponse feeds an upstream response into the engine. It returns
// true if the packet matched an in-flight query (callers route non-matching
// packets elsewhere).
func (r *Recursive) HandleResponse(msg *dnswire.Message) bool {
	fl, ok := r.pending[msg.Header.ID]
	if !ok {
		return false
	}
	// Match the question too (anti-spoofing hygiene; also rejects stale
	// duplicate answers racing a reused ID).
	if q, ok := msg.Question1(); !ok || q.Name != fl.qname {
		return false
	}
	delete(r.pending, msg.Header.ID)
	fl.timer.Stop()

	if msg.Header.TC {
		// Truncated over UDP: retry the same leg over TCP (RFC 7766).
		r.retryTCP(fl, msg.Header.ID)
		return true
	}
	r.process(fl, msg)
	return true
}

// process consumes a complete (non-truncated) upstream response.
func (r *Recursive) process(fl *inflight, msg *dnswire.Message) {
	if msg.Header.Rcode != dnswire.RcodeNoError {
		// RFC 2308: authoritative NXDomain is cacheable; other errors are
		// transient and are not cached.
		if msg.Header.Rcode == dnswire.RcodeNXDomain && msg.Header.AA {
			r.negative[fl.qname] = negativeEntry{
				rcode:   msg.Header.Rcode,
				expires: r.node.Now() + r.NegativeTTL,
			}
		}
		r.finish(fl, Result{Rcode: msg.Header.Rcode})
		return
	}
	if a, ok := msg.FirstA(); ok {
		if r.Validate != nil && !r.Validate(fl.qname, msg) {
			// Bogus data: a validating resolver answers ServFail and must
			// not cache the rejected records (RFC 4035 §5.5).
			r.Failures++
			r.finish(fl, Result{Rcode: dnswire.RcodeServFail})
			return
		}
		var ttl time.Duration
		for _, rr := range msg.Answers {
			if rr.Type == dnswire.TypeA && !rr.Malformed {
				ttl = time.Duration(rr.TTL) * time.Second
				break
			}
		}
		r.answers[fl.qname] = answerEntry{addr: ipv4.Addr(a), expires: r.node.Now() + ttl}
		r.finish(fl, Result{Addr: ipv4.Addr(a), Rcode: dnswire.RcodeNoError, OK: true})
		return
	}
	// A referral: cache it and descend.
	var zone string
	var next ipv4.Addr
	for _, ns := range msg.Authority {
		if ns.Type != dnswire.TypeNS {
			continue
		}
		for _, glue := range msg.Additional {
			if glue.Type == dnswire.TypeA && glue.Name == ns.Target && !glue.Malformed {
				zone, next = ns.Name, ipv4.Addr(glue.A)
				break
			}
		}
		if next != 0 {
			break
		}
	}
	if next == 0 {
		// NoError, no answer, no usable referral: dead end.
		r.Failures++
		r.finish(fl, Result{Rcode: dnswire.RcodeServFail})
		return
	}
	ttl := 172800 * time.Second
	// zone aliases msg's decode arena (dnswire.UnpackInto); the cache key
	// outlives the packet, so pin a copy.
	r.referrals[strings.Clone(zone)] = cacheEntry{addr: next, expires: r.node.Now() + ttl}
	r.query(fl.qname, next, fl.done, fl.depth+1)
}

// retryTCP re-issues the truncated leg over a stream connection.
func (r *Recursive) retryTCP(fl *inflight, id uint16) {
	r.TCPFallbacks++
	deadline := r.node.After(r.Timeout, func() {
		r.Failures++
		r.finish(fl, Result{Rcode: dnswire.RcodeServFail})
	})
	r.node.Dial(fl.server, DNSPort, func(c *netsim.Conn) {
		if fl.finished {
			if c != nil {
				c.Close()
			}
			return
		}
		if c == nil {
			deadline.Stop()
			r.Failures++
			r.finish(fl, Result{Rcode: dnswire.RcodeServFail})
			return
		}
		parser := &dnswire.StreamParser{}
		c.OnData(func(b []byte) {
			msgs, err := parser.Feed(b)
			if err != nil {
				deadline.Stop()
				c.Close()
				r.Failures++
				r.finish(fl, Result{Rcode: dnswire.RcodeServFail})
				return
			}
			for _, m := range msgs {
				q, ok := m.Question1()
				if !ok || q.Name != fl.qname || !m.Header.QR {
					continue
				}
				deadline.Stop()
				c.Close()
				if m.Header.TC {
					// Truncated even over TCP — a protocol violation some
					// broken servers commit on every answer. Retry a bounded
					// number of times, then fail instead of looping forever.
					r.TCPTruncated++
					if fl.tcpAttempts < r.MaxTCPRetries {
						fl.tcpAttempts++
						r.retryTCP(fl, id)
						return
					}
					r.Failures++
					r.finish(fl, Result{Rcode: dnswire.RcodeServFail})
					return
				}
				r.process(fl, m)
				return
			}
		})
		q := dnswire.NewQuery(id, fl.qname, dnswire.TypeA)
		q.Header.RD = false
		wire, err := q.PackTCP()
		if err != nil {
			deadline.Stop()
			c.Close()
			r.Failures++
			r.finish(fl, Result{Rcode: dnswire.RcodeServFail})
			return
		}
		r.UpstreamQueries++
		c.Send(wire)
	})
}

// Outstanding returns the number of in-flight upstream queries.
func (r *Recursive) Outstanding() int { return len(r.pending) }
