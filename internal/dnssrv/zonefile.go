package dnssrv

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
)

// Zone files: §III-B's clusters are literal BIND-style zone files ("Five
// million subdomains ... are generated as one cluster (a zone file)").
// This file implements the RFC 1035 §5 master-file subset those clusters
// need — $ORIGIN/$TTL directives, SOA (with multi-line parentheses), NS and
// A records, comments — so clusters can be generated, persisted, inspected
// and loaded exactly like the paper's BIND 9 deployment did.

// Zone is a parsed zone: the origin, the SOA serial, and the A records.
type Zone struct {
	Origin string
	TTL    uint32
	Serial uint32
	NS     []string
	// A maps fully qualified lowercase names to addresses.
	A map[string]ipv4.Addr
}

// ErrNoSOA reports a zone file without an SOA record.
var ErrNoSOA = errors.New("dnssrv: zone file has no SOA record")

// WriteClusterZone writes the cluster's zone file: the SLD apex (SOA + NS)
// and one A record per subdomain, with the ground-truth addresses. The
// writer is streamed, so full-size 5M-record clusters need constant memory.
func WriteClusterZone(w io.Writer, sld string, cluster, size int) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	origin := dnswire.CanonicalName(sld)
	serial := 2018042600 + cluster
	fmt.Fprintf(bw, "$ORIGIN %s.\n$TTL 60\n", origin)
	fmt.Fprintf(bw, "@ IN SOA ns1.%s. hostmaster.%s. (\n", origin, origin)
	fmt.Fprintf(bw, "\t%d ; serial = cluster %d\n", serial, cluster)
	fmt.Fprintf(bw, "\t3600 ; refresh\n\t600 ; retry\n\t86400 ; expire\n\t60 ) ; minimum\n")
	fmt.Fprintf(bw, "@ IN NS ns1.%s.\n", origin)
	for i := 0; i < size; i++ {
		rel := fmt.Sprintf("or%03d.%07d", cluster, i)
		addr := TruthAddr(rel + "." + origin)
		fmt.Fprintf(bw, "%s IN A %s\n", rel, addr)
	}
	return bw.Flush()
}

// ParseZoneFile reads a master-format zone file (the subset WriteClusterZone
// emits plus common variations: comments, blank lines, absolute names).
func ParseZoneFile(r io.Reader) (*Zone, error) {
	z := &Zone{TTL: 3600, A: make(map[string]ipv4.Addr)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	var soaSeen bool
	var parenDepth int
	var soaFields []string
	for sc.Scan() {
		lineNo++
		line := stripComment(sc.Text())
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if parenDepth > 0 {
			// Continuation of a parenthesized SOA.
			soaFields, parenDepth = consumeSOAFields(fields, soaFields, parenDepth)
			if parenDepth == 0 {
				if err := z.applySOA(soaFields); err != nil {
					return nil, fmt.Errorf("line %d: %w", lineNo, err)
				}
				soaSeen = true
			}
			continue
		}
		switch fields[0] {
		case "$ORIGIN":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed $ORIGIN", lineNo)
			}
			z.Origin = dnswire.CanonicalName(fields[1])
			continue
		case "$TTL":
			if len(fields) != 2 {
				return nil, fmt.Errorf("line %d: malformed $TTL", lineNo)
			}
			ttl, err := strconv.ParseUint(fields[1], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("line %d: bad TTL: %v", lineNo, err)
			}
			z.TTL = uint32(ttl)
			continue
		}

		name, rest, err := splitRecord(fields)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fqdn := z.qualify(name)
		switch rest[0] {
		case "SOA":
			soaFields, parenDepth = consumeSOAFields(rest[1:], soaFields, parenDepth)
			if parenDepth == 0 {
				if err := z.applySOA(soaFields); err != nil {
					return nil, fmt.Errorf("line %d: %w", lineNo, err)
				}
				soaSeen = true
			}
		case "NS":
			if len(rest) != 2 {
				return nil, fmt.Errorf("line %d: malformed NS", lineNo)
			}
			z.NS = append(z.NS, dnswire.CanonicalName(rest[1]))
		case "A":
			if len(rest) != 2 {
				return nil, fmt.Errorf("line %d: malformed A", lineNo)
			}
			addr, err := ipv4.ParseAddr(rest[1])
			if err != nil {
				return nil, fmt.Errorf("line %d: %v", lineNo, err)
			}
			z.A[fqdn] = addr
		default:
			return nil, fmt.Errorf("line %d: unsupported record type %q", lineNo, rest[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if parenDepth != 0 {
		return nil, errors.New("dnssrv: unbalanced parentheses in zone file")
	}
	if !soaSeen {
		return nil, ErrNoSOA
	}
	return z, nil
}

// consumeSOAFields accumulates SOA RDATA tokens, tracking parenthesis
// depth; parens may be standalone tokens or attached to values ("86400)").
func consumeSOAFields(tokens, acc []string, depth int) ([]string, int) {
	for _, tok := range tokens {
		for strings.HasPrefix(tok, "(") {
			depth++
			tok = tok[1:]
		}
		trailing := 0
		for strings.HasSuffix(tok, ")") {
			trailing++
			tok = tok[:len(tok)-1]
		}
		if tok != "" {
			acc = append(acc, tok)
		}
		depth -= trailing
	}
	return acc, depth
}

// applySOA consumes the SOA RDATA fields (mname rname serial refresh retry
// expire minimum).
func (z *Zone) applySOA(fields []string) error {
	if len(fields) < 3 {
		return errors.New("dnssrv: SOA record too short")
	}
	serial, err := strconv.ParseUint(fields[2], 10, 32)
	if err != nil {
		return fmt.Errorf("dnssrv: bad SOA serial %q", fields[2])
	}
	z.Serial = uint32(serial)
	return nil
}

// splitRecord separates the owner name from the type+RDATA, handling the
// optional class and TTL columns.
func splitRecord(fields []string) (name string, rest []string, err error) {
	if len(fields) < 3 {
		return "", nil, errors.New("dnssrv: record too short")
	}
	name = fields[0]
	rest = fields[1:]
	// Skip an optional TTL column.
	if _, numErr := strconv.Atoi(rest[0]); numErr == nil {
		rest = rest[1:]
	}
	// Skip the class column.
	if len(rest) > 0 && (rest[0] == "IN" || rest[0] == "CH") {
		rest = rest[1:]
	}
	if len(rest) == 0 {
		return "", nil, errors.New("dnssrv: record missing type")
	}
	return name, rest, nil
}

// qualify resolves a possibly relative owner name against the origin.
func (z *Zone) qualify(name string) string {
	if name == "@" {
		return z.Origin
	}
	if strings.HasSuffix(name, ".") {
		return dnswire.CanonicalName(name)
	}
	if z.Origin == "" {
		return dnswire.CanonicalName(name)
	}
	return dnswire.CanonicalName(name) + "." + z.Origin
}

func stripComment(line string) string {
	if i := strings.IndexByte(line, ';'); i >= 0 {
		return line[:i]
	}
	return line
}

// VerifyClusterZone checks that a parsed zone matches the ground truth of
// its cluster: every record must equal TruthAddr of its name. It returns
// the number of verified records.
func VerifyClusterZone(z *Zone) (int, error) {
	for name, addr := range z.A {
		if want := TruthAddr(name); addr != want {
			return 0, fmt.Errorf("dnssrv: record %s is %v, ground truth %v", name, addr, want)
		}
	}
	return len(z.A), nil
}
