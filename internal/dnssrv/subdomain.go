// Package dnssrv implements the DNS server substrate of the measurement:
// the controlled authoritative name server with its two-tier subdomain
// clusters (paper Fig. 3), the root and TLD referral servers that stand in
// for the real hierarchy (paper Fig. 1), and a recursive-resolution engine
// with caching, timeouts and retries — the machinery honest open resolvers
// run on top of the network simulator.
package dnssrv

import (
	"fmt"
	"strconv"
	"strings"

	"openresolver/internal/ipv4"
)

// ProbeName is a parsed measurement subdomain of the two-tier structure of
// Fig. 3: orCCC.NNNNNNN.<sld>, where CCC is the cluster number and NNNNNNN
// the subdomain's index within the cluster.
type ProbeName struct {
	Cluster int
	Index   int
}

// FormatProbeName renders the probe subdomain for (cluster, index) under
// sld, zero-padded exactly as in the paper: or000.0000001.ucfsealresearch.net.
func FormatProbeName(cluster, index int, sld string) string {
	var buf [64]byte
	return string(AppendProbeName(buf[:0], cluster, index, sld))
}

// AppendProbeName appends the probe subdomain for (cluster, index) under
// sld to dst, returning the extended slice. It produces exactly the bytes
// of FormatProbeName without allocating, which matters on the synthetic
// campaign's per-probe hot path (millions of names per run).
func AppendProbeName(dst []byte, cluster, index int, sld string) []byte {
	dst = append(dst, 'o', 'r')
	dst = appendZeroPad(dst, cluster, 3)
	dst = append(dst, '.')
	dst = appendZeroPad(dst, index, 7)
	dst = append(dst, '.')
	return append(dst, sld...)
}

// appendZeroPad appends v zero-padded to at least width digits, matching
// fmt's %0*d (the sign, if any, precedes the padding).
func appendZeroPad(dst []byte, v, width int) []byte {
	u := uint64(v)
	if v < 0 {
		dst = append(dst, '-')
		u = -u
		width--
	}
	var digits [20]byte
	s := strconv.AppendUint(digits[:0], u, 10)
	for i := len(s); i < width; i++ {
		dst = append(dst, '0')
	}
	return append(dst, s...)
}

// ParseProbeName inverts FormatProbeName. The name must be under sld.
func ParseProbeName(name, sld string) (ProbeName, error) {
	suffix := "." + sld
	if !strings.HasSuffix(name, suffix) {
		return ProbeName{}, fmt.Errorf("dnssrv: %q not under %q", name, sld)
	}
	rest := strings.TrimSuffix(name, suffix)
	dot := strings.IndexByte(rest, '.')
	if dot < 0 {
		return ProbeName{}, fmt.Errorf("dnssrv: %q lacks two-tier labels", name)
	}
	first, second := rest[:dot], rest[dot+1:]
	// The cluster label is zero-padded to at least three digits but grows
	// past them when the sharded engine strides cluster namespaces across
	// sub-simulations (or1022.…), so accept any width ≥ 3.
	if !strings.HasPrefix(first, "or") || len(first) < 5 {
		return ProbeName{}, fmt.Errorf("dnssrv: bad cluster label %q", first)
	}
	cluster, err := strconv.Atoi(first[2:])
	if err != nil {
		return ProbeName{}, fmt.Errorf("dnssrv: bad cluster label %q: %v", first, err)
	}
	if len(second) != 7 {
		return ProbeName{}, fmt.Errorf("dnssrv: bad index label %q", second)
	}
	index, err := strconv.Atoi(second)
	if err != nil {
		return ProbeName{}, fmt.Errorf("dnssrv: bad index label %q: %v", second, err)
	}
	return ProbeName{Cluster: cluster, Index: index}, nil
}

// TruthAddr is the ground-truth A record for a probe subdomain: the zone
// generator derives each subdomain's address deterministically from its
// name, so the authoritative server, the prober and the analysis pipeline
// agree on correctness without sharing 4-billion-entry state.
//
// Addresses are placed in 96.0.0.0/6 (public, far from every Table I block
// and from the geo registry's synthetic seats).
func TruthAddr(qname string) ipv4.Addr {
	h := fnv64(qname)
	return ipv4.Addr(0x60000000 | uint32(h)&0x03FFFFFF)
}

// fnv64 is the FNV-1a hash (inlined to keep the package dependency-free).
func fnv64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}
