package dnssrv

import (
	"testing"
	"time"

	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
)

// newAlwaysTruncatingServer answers every UDP query with TC=1 and — the
// protocol violation under test — every TCP query with TC=1 as well.
func newAlwaysTruncatingServer(sim *netsim.Sim, addr ipv4.Addr) *truncatingServer {
	ts := &truncatingServer{}
	sim.Register(addr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		q, err := dnswire.Unpack(dg.Payload)
		if err != nil || q.Header.QR {
			return
		}
		ts.udpQueries++
		resp := dnswire.NewResponse(q)
		resp.Header.TC = true
		n.Send(dg.Src, dg.DstPort, dg.SrcPort, resp.MustPack())
	}))
	sim.Listen(addr, DNSPort, func(c *netsim.Conn) {
		parser := &dnswire.StreamParser{}
		c.OnData(func(b []byte) {
			msgs, err := parser.Feed(b)
			if err != nil {
				return
			}
			for _, q := range msgs {
				ts.tcpQueries++
				resp := dnswire.NewResponse(q)
				resp.Header.TC = true
				wire, err := resp.PackTCP()
				if err != nil {
					continue
				}
				c.Send(wire)
			}
		})
	})
	return ts
}

// TestTCPTruncationLoopBounded is the regression test for the unbounded
// TC-over-TCP loop: a server that truncates every TCP answer used to make
// retryTCP re-dial forever. The engine must give up with ServFail after
// MaxTCPRetries re-dials, and the simulation must quiesce.
func TestTCPTruncationLoopBounded(t *testing.T) {
	sim := netsim.New(netsim.Config{Seed: 8, Latency: netsim.ConstantLatency(5 * time.Millisecond)})
	server := ipv4.MustParseAddr("45.76.2.4")
	ts := newAlwaysTruncatingServer(sim, server)

	var rec *Recursive
	node := sim.Register(resAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		if msg, err := dnswire.Unpack(dg.Payload); err == nil && msg.Header.QR {
			rec.HandleResponse(msg)
		}
	}))
	rec = NewRecursive(node, server)
	var got Result
	var calls int
	rec.Resolve("loop.example.net", func(r Result) { got = r; calls++ })
	if err := sim.Run(0); err != nil {
		t.Fatal(err) // an unbounded loop would also trip MaxQueuedEvents
	}
	if calls != 1 {
		t.Fatalf("done called %d times", calls)
	}
	if got.OK || got.Rcode != dnswire.RcodeServFail {
		t.Errorf("result = %+v, want ServFail", got)
	}
	// One UDP leg, then the initial fallback plus MaxTCPRetries re-dials.
	wantTCP := uint64(1 + rec.MaxTCPRetries)
	if ts.udpQueries != 1 {
		t.Errorf("server saw %d UDP queries, want 1", ts.udpQueries)
	}
	if uint64(ts.tcpQueries) != wantTCP {
		t.Errorf("server saw %d TCP queries, want %d (bounded)", ts.tcpQueries, wantTCP)
	}
	if rec.TCPFallbacks != wantTCP {
		t.Errorf("TCPFallbacks = %d, want %d", rec.TCPFallbacks, wantTCP)
	}
	if rec.TCPTruncated != wantTCP {
		t.Errorf("TCPTruncated = %d, want %d", rec.TCPTruncated, wantTCP)
	}
	if rec.Failures == 0 {
		t.Error("failure not recorded")
	}
}

// TestUpstreamBackoff pins the retry schedule: with Backoff the engine
// waits Timeout, 2×Timeout, 4×Timeout before failing a dead upstream
// (total 700ms at Timeout=100ms), versus 3×Timeout fixed-interval.
func TestUpstreamBackoff(t *testing.T) {
	run := func(backoff bool) (time.Duration, uint64) {
		sim := netsim.New(netsim.Config{Seed: 9, Latency: netsim.ConstantLatency(time.Millisecond)})
		dead := ipv4.MustParseAddr("45.76.2.5") // never registered: NoRoute
		var rec *Recursive
		node := sim.Register(resAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
			if msg, err := dnswire.Unpack(dg.Payload); err == nil && msg.Header.QR {
				rec.HandleResponse(msg)
			}
		}))
		rec = NewRecursive(node, dead)
		rec.Timeout = 100 * time.Millisecond
		rec.Retries = 2
		rec.Backoff = backoff
		var failedAt time.Duration
		rec.Resolve("dead.example.net", func(Result) { failedAt = node.Now() })
		if err := sim.Run(0); err != nil {
			t.Fatal(err)
		}
		return failedAt, rec.Retransmits
	}

	fixedAt, fixedRetrans := run(false)
	backedAt, backedRetrans := run(true)
	if fixedAt != 300*time.Millisecond {
		t.Errorf("fixed-interval failure at %v, want 300ms", fixedAt)
	}
	if backedAt != 700*time.Millisecond {
		t.Errorf("backoff failure at %v, want 700ms (100+200+400)", backedAt)
	}
	if fixedRetrans != 2 || backedRetrans != 2 {
		t.Errorf("retransmits = %d/%d, want 2/2", fixedRetrans, backedRetrans)
	}
}

// TestUpstreamJitter: jittered retry timeouts stay within ±12.5% of the
// schedule and remain deterministic per seed.
func TestUpstreamJitter(t *testing.T) {
	run := func() time.Duration {
		sim := netsim.New(netsim.Config{Seed: 10, Latency: netsim.ConstantLatency(time.Millisecond)})
		dead := ipv4.MustParseAddr("45.76.2.6")
		var rec *Recursive
		node := sim.Register(resAddr, netsim.HostFunc(func(*netsim.Node, netsim.Datagram) {}))
		rec = NewRecursive(node, dead)
		rec.Timeout = 100 * time.Millisecond
		rec.Retries = 2
		rec.Backoff = true
		rec.Jitter = true
		var failedAt time.Duration
		rec.Resolve("dead.example.net", func(Result) { failedAt = node.Now() })
		if err := sim.Run(0); err != nil {
			t.Fatal(err)
		}
		return failedAt
	}
	first := run()
	// Schedule 100+200+400 = 700ms; each leg jitters ±12.5%.
	lo := 700 * time.Millisecond * 875 / 1000
	hi := 700 * time.Millisecond * 1125 / 1000
	if first < lo || first > hi {
		t.Errorf("jittered failure at %v, want within [%v, %v]", first, lo, hi)
	}
	if second := run(); second != first {
		t.Errorf("jitter not deterministic per seed: %v vs %v", first, second)
	}
}
