// Package threatintel is the reproduction's substitute for the Cymon threat
// intelligence API the paper queries to classify incorrect answers
// (§IV-C2, Fig. 4). It provides a seeded database of malicious IPv4
// addresses, each carrying one or more categorized reports, and the same
// aggregation rule the paper applies: "when there are multiple reports for
// different categories, the most frequently reported category is selected."
//
// A Feed deterministically generates the threat landscape of one campaign
// year: the addresses the paper names explicitly (74.220.199.15,
// 208.91.197.91 with its Fig. 4 multi-category reports, 141.8.225.68) plus
// synthetic addresses filling each Table IX category to its reported
// unique-IP count. The population compiler arms its manipulating resolvers
// with exactly these addresses, and the analysis pipeline rediscovers them
// through Lookup — the same two-sided role Cymon plays in the paper.
package threatintel

import (
	"fmt"
	"math/rand"
	"sort"

	"openresolver/internal/ipv4"
	"openresolver/internal/paperdata"
)

// Report is one vendor report about an address.
type Report struct {
	Category paperdata.MalCategory
	Source   string
	// Count is the number of sightings behind the report; the dominant
	// category is the one with the highest total count.
	Count int
}

// Record is the database entry for one address.
type Record struct {
	Addr    ipv4.Addr
	Reports []Report
}

// Dominant returns the most frequently reported category, breaking ties by
// Table IX order (malware first), matching the paper's aggregation rule.
func (r Record) Dominant() paperdata.MalCategory {
	totals := make(map[paperdata.MalCategory]int)
	for _, rep := range r.Reports {
		totals[rep.Category] += rep.Count
	}
	best := paperdata.MalCategory("")
	bestN := -1
	for _, cat := range paperdata.MalCategories {
		if n := totals[cat]; n > bestN {
			best, bestN = cat, n
		}
	}
	return best
}

// DB is an in-memory threat intelligence database.
type DB struct {
	records map[ipv4.Addr]*Record
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{records: make(map[ipv4.Addr]*Record)}
}

// Add appends reports for addr.
func (db *DB) Add(addr ipv4.Addr, reports ...Report) {
	rec, ok := db.records[addr]
	if !ok {
		rec = &Record{Addr: addr}
		db.records[addr] = rec
	}
	rec.Reports = append(rec.Reports, reports...)
}

// Lookup returns the record for addr. ok is false when the address has no
// reports — the common case for the benign majority of incorrect answers.
func (db *DB) Lookup(addr ipv4.Addr) (Record, bool) {
	rec, ok := db.records[addr]
	if !ok {
		return Record{}, false
	}
	out := Record{Addr: rec.Addr, Reports: append([]Report(nil), rec.Reports...)}
	return out, true
}

// Len returns the number of distinct reported addresses.
func (db *DB) Len() int { return len(db.records) }

// Addrs returns all reported addresses in ascending order.
func (db *DB) Addrs() []ipv4.Addr {
	out := make([]ipv4.Addr, 0, len(db.records))
	for a := range db.records {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Feed is the deterministic threat landscape of one campaign year.
type Feed struct {
	Year paperdata.Year
	DB   *DB
	// ByCategory lists the addresses whose dominant category is each Table
	// IX category, in generation order (named addresses first).
	ByCategory map[paperdata.MalCategory][]ipv4.Addr
}

// namedCategory pins the paper's named addresses to the malware row (the
// 22,805 packets of §IV-C1 fit inside Table IX's malware R2 budget).
var namedCategory = paperdata.CatMalware

// fig4Reports reproduces Fig. 4's multi-category Cymon record for
// 208.91.197.91: malware dominant, with phishing and botnet reports, and
// the Ransomware Tracker listing mentioned in §IV-C1.
func fig4Reports() []Report {
	return []Report{
		{Category: paperdata.CatMalware, Source: "Cymon", Count: 14},
		{Category: paperdata.CatPhishing, Source: "Cymon", Count: 6},
		{Category: paperdata.CatBotnet, Source: "Cymon", Count: 3},
		{Category: paperdata.CatMalware, Source: "Ransomware Tracker", Count: 2},
	}
}

// NewFeed builds the year's threat landscape. Synthetic addresses are drawn
// deterministically from rng seedings inside the given address pool (they
// must be public, routable and outside the scan coset is NOT required —
// answer IPs are arbitrary).
func NewFeed(year paperdata.Year, seed int64) *Feed {
	f := &Feed{
		Year:       year,
		DB:         NewDB(),
		ByCategory: make(map[paperdata.MalCategory][]ipv4.Addr),
	}
	rng := rand.New(rand.NewSource(seed))
	reserved := ipv4.NewReservedBlocklist()

	used := make(map[ipv4.Addr]bool)
	add := func(addr ipv4.Addr, cat paperdata.MalCategory, reports ...Report) {
		f.DB.Add(addr, reports...)
		f.ByCategory[cat] = append(f.ByCategory[cat], addr)
		used[addr] = true
	}

	// Named addresses first: they are the top contributors of Table VIII.
	for _, name := range sortedNames(paperdata.NamedMalicious[year]) {
		addr := ipv4.MustParseAddr(name)
		if name == "208.91.197.91" {
			add(addr, namedCategory, fig4Reports()...)
			continue
		}
		add(addr, namedCategory,
			Report{Category: namedCategory, Source: "Cymon", Count: 5})
	}

	// Fill every category to its Table IX unique-IP count with synthetic
	// addresses. Multi-category records are generated for a fraction of
	// them (as Fig. 4 shows is common); the dominant category stays the
	// intended one because its count is strictly largest.
	for _, cat := range paperdata.MalCategories {
		want := int(paperdata.MaliciousTable[year][cat].IPs)
		have := len(f.ByCategory[cat])
		for i := have; i < want; i++ {
			addr := syntheticAddr(rng, reserved, used)
			reports := []Report{{Category: cat, Source: "Cymon", Count: 4 + rng.Intn(8)}}
			if rng.Intn(3) == 0 { // secondary, weaker report
				other := paperdata.MalCategories[rng.Intn(len(paperdata.MalCategories))]
				if other != cat {
					reports = append(reports, Report{Category: other, Source: "Cymon", Count: 1 + rng.Intn(3)})
				}
			}
			add(addr, cat, reports...)
		}
	}
	return f
}

// truthRange is the ground-truth answer range of dnssrv.TruthAddr
// (96.0.0.0/6). Synthetic malicious addresses must stay out of it so a
// manipulated answer can never coincide with a query's true address.
var truthRange = ipv4.MustParseBlock("96.0.0.0/6")

// syntheticAddr draws a fresh public unicast address outside the
// ground-truth range.
func syntheticAddr(rng *rand.Rand, reserved *ipv4.Blocklist, used map[ipv4.Addr]bool) ipv4.Addr {
	for {
		a := ipv4.Addr(rng.Uint32())
		if reserved.Contains(a) || truthRange.Contains(a) || used[a] {
			continue
		}
		return a
	}
}

func sortedNames(m map[string]uint64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Addresses returns the feed's addresses for a category in generation order.
func (f *Feed) Addresses(cat paperdata.MalCategory) []ipv4.Addr {
	return append([]ipv4.Addr(nil), f.ByCategory[cat]...)
}

// Summary renders a Fig. 4-style report block for an address.
func (f *Feed) Summary(addr ipv4.Addr) string {
	rec, ok := f.DB.Lookup(addr)
	if !ok {
		return fmt.Sprintf("%s: no reports", addr)
	}
	s := fmt.Sprintf("%s: dominant=%s reports=%d\n", addr, rec.Dominant(), len(rec.Reports))
	for _, r := range rec.Reports {
		s += fmt.Sprintf("  - %-16s x%d (%s)\n", r.Category, r.Count, r.Source)
	}
	return s
}
