package threatintel

import (
	"strings"
	"testing"

	"openresolver/internal/ipv4"
	"openresolver/internal/paperdata"
)

func TestFeedMatchesTableIXUniqueCounts(t *testing.T) {
	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		f := NewFeed(y, 42)
		var total int
		for _, cat := range paperdata.MalCategories {
			want := int(paperdata.MaliciousTable[y][cat].IPs)
			got := len(f.ByCategory[cat])
			if got != want {
				t.Errorf("%d %s: %d addresses, want %d", y, cat, got, want)
			}
			total += got
		}
		if uint64(total) != paperdata.MaliciousTotals[y].IPs {
			t.Errorf("%d: total %d, want %d", y, total, paperdata.MaliciousTotals[y].IPs)
		}
		if f.DB.Len() != total {
			t.Errorf("%d: DB has %d records, want %d (no cross-category dupes)", y, f.DB.Len(), total)
		}
	}
}

func TestDominantCategoryStable(t *testing.T) {
	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		f := NewFeed(y, 42)
		for cat, addrs := range f.ByCategory {
			for _, a := range addrs {
				rec, ok := f.DB.Lookup(a)
				if !ok {
					t.Fatalf("%d: %v missing", y, a)
				}
				if got := rec.Dominant(); got != cat {
					t.Errorf("%d: %v dominant = %s, want %s", y, a, got, cat)
				}
			}
		}
	}
}

func TestNamedAddressesPresent(t *testing.T) {
	f := NewFeed(paperdata.Y2018, 1)
	for name := range paperdata.NamedMalicious[paperdata.Y2018] {
		rec, ok := f.DB.Lookup(ipv4.MustParseAddr(name))
		if !ok {
			t.Errorf("named address %s missing from feed", name)
			continue
		}
		if rec.Dominant() != paperdata.CatMalware {
			t.Errorf("%s dominant = %s, want Malware", name, rec.Dominant())
		}
	}
}

func TestFig4Record(t *testing.T) {
	f := NewFeed(paperdata.Y2018, 1)
	addr := ipv4.MustParseAddr("208.91.197.91")
	rec, ok := f.DB.Lookup(addr)
	if !ok {
		t.Fatal("208.91.197.91 missing")
	}
	cats := map[paperdata.MalCategory]bool{}
	sources := map[string]bool{}
	for _, r := range rec.Reports {
		cats[r.Category] = true
		sources[r.Source] = true
	}
	for _, want := range []paperdata.MalCategory{paperdata.CatMalware, paperdata.CatPhishing, paperdata.CatBotnet} {
		if !cats[want] {
			t.Errorf("Fig. 4 record missing category %s", want)
		}
	}
	if !sources["Ransomware Tracker"] {
		t.Error("Fig. 4 record missing Ransomware Tracker report")
	}
	if rec.Dominant() != paperdata.CatMalware {
		t.Errorf("dominant = %s", rec.Dominant())
	}
	sum := f.Summary(addr)
	if !strings.Contains(sum, "Malware") || !strings.Contains(sum, "dominant=Malware") {
		t.Errorf("summary = %q", sum)
	}
}

func TestFeedDeterministic(t *testing.T) {
	a := NewFeed(paperdata.Y2018, 7)
	b := NewFeed(paperdata.Y2018, 7)
	aa, ba := a.DB.Addrs(), b.DB.Addrs()
	if len(aa) != len(ba) {
		t.Fatal("lengths differ")
	}
	for i := range aa {
		if aa[i] != ba[i] {
			t.Fatalf("address %d differs: %v vs %v", i, aa[i], ba[i])
		}
	}
	c := NewFeed(paperdata.Y2018, 8)
	ca := c.DB.Addrs()
	diff := 0
	cm := map[ipv4.Addr]bool{}
	for _, x := range ca {
		cm[x] = true
	}
	for _, x := range aa {
		if !cm[x] {
			diff++
		}
	}
	if diff == 0 {
		t.Error("different seeds produced identical synthetic addresses")
	}
}

func TestSyntheticAddressesArePublic(t *testing.T) {
	reserved := ipv4.NewReservedBlocklist()
	f := NewFeed(paperdata.Y2018, 3)
	for _, a := range f.DB.Addrs() {
		if reserved.Contains(a) {
			t.Errorf("synthetic malicious address %v is reserved", a)
		}
	}
}

func TestLookupMissAndCopy(t *testing.T) {
	db := NewDB()
	if _, ok := db.Lookup(ipv4.MustParseAddr("9.9.9.9")); ok {
		t.Error("empty DB returned a record")
	}
	addr := ipv4.MustParseAddr("1.2.3.4")
	db.Add(addr, Report{Category: paperdata.CatSpam, Source: "x", Count: 1})
	rec, _ := db.Lookup(addr)
	rec.Reports[0].Count = 99 // mutating the copy must not affect the DB
	rec2, _ := db.Lookup(addr)
	if rec2.Reports[0].Count != 1 {
		t.Error("Lookup leaked internal state")
	}
}

func TestDominantTieBreak(t *testing.T) {
	db := NewDB()
	addr := ipv4.MustParseAddr("5.6.7.8")
	// Equal counts: Table IX order prefers Malware over Phishing.
	db.Add(addr,
		Report{Category: paperdata.CatPhishing, Source: "a", Count: 3},
		Report{Category: paperdata.CatMalware, Source: "b", Count: 3},
	)
	rec, _ := db.Lookup(addr)
	if rec.Dominant() != paperdata.CatMalware {
		t.Errorf("tie broke to %s", rec.Dominant())
	}
}

func BenchmarkFeedConstruction2018(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewFeed(paperdata.Y2018, int64(i))
	}
}

func BenchmarkLookup(b *testing.B) {
	f := NewFeed(paperdata.Y2018, 1)
	addrs := f.DB.Addrs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.DB.Lookup(addrs[i%len(addrs)])
	}
}
