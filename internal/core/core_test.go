package core

import (
	"testing"

	"openresolver/internal/behavior"
	"openresolver/internal/capture"
	"openresolver/internal/classify"
	"openresolver/internal/paperdata"
	"openresolver/internal/population"
)

func TestSyntheticFullScale2018Exact(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale synthesis takes ~10s")
	}
	ds, err := RunSynthetic(Config{Year: paperdata.Y2018, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := ds.Report
	y := paperdata.Y2018

	// Table II.
	camp := paperdata.Campaigns[y]
	if r.Campaign.Q1 != camp.Q1 || r.Campaign.Q2 != camp.Q2R1 || r.Campaign.R2 != camp.R2 {
		t.Errorf("Table II: Q1=%d Q2=%d R2=%d, want %d/%d/%d",
			r.Campaign.Q1, r.Campaign.Q2, r.Campaign.R2, camp.Q1, camp.Q2R1, camp.R2)
	}

	// Table III.
	if r.Correctness != paperdata.CorrectnessByYear[y] {
		t.Errorf("Table III: %+v, want %+v", r.Correctness, paperdata.CorrectnessByYear[y])
	}
	// Table IV.
	if r.RA != paperdata.RATable[y] {
		t.Errorf("Table IV: %+v, want %+v", r.RA, paperdata.RATable[y])
	}
	// Table V (reconciled).
	if r.AA != paperdata.ReconciledAA(y) {
		t.Errorf("Table V: %+v, want %+v", r.AA, paperdata.ReconciledAA(y))
	}
	// Table VI (reconciled).
	if r.Rcode != paperdata.ReconciledRcode(y) {
		t.Errorf("Table VI: %+v, want %+v", r.Rcode, paperdata.ReconciledRcode(y))
	}
	// Table VII.
	forms := paperdata.IncorrectFormsByYear[y]
	if r.Forms.IP != forms.IP || r.Forms.URL != forms.URL {
		t.Errorf("Table VII IP/URL: %+v, want %+v", r.Forms, forms)
	}
	if r.Forms.Str.Packets != forms.Str.Packets ||
		r.Forms.Str.Unique != paperdata.ReconciledStrUnique(y) {
		t.Errorf("Table VII string: %+v", r.Forms.Str)
	}
	// Table VIII.
	if len(r.Top10) != 10 {
		t.Fatalf("top10 has %d rows", len(r.Top10))
	}
	for i, want := range paperdata.Top10[y] {
		got := r.Top10[i]
		if got.Addr != want.Addr || got.Count != want.Count {
			t.Errorf("Table VIII rank %d: %s×%d, want %s×%d",
				i+1, got.Addr, got.Count, want.Addr, want.Count)
		}
		if got.Org != want.Org {
			t.Errorf("Table VIII rank %d org: %q, want %q", i+1, got.Org, want.Org)
		}
		if got.Reported != want.Reported || got.Private != want.Private {
			t.Errorf("Table VIII rank %d flags: reported=%v private=%v", i+1, got.Reported, got.Private)
		}
	}
	// Table IX.
	for cat, want := range paperdata.MaliciousTable[y] {
		if got := r.Malicious[cat]; got != want {
			t.Errorf("Table IX %s: %+v, want %+v", cat, got, want)
		}
	}
	if r.MaliciousTotal != paperdata.MaliciousTotals[y] {
		t.Errorf("Table IX total: %+v", r.MaliciousTotal)
	}
	// Table X.
	if r.MalFlags != paperdata.MaliciousFlags2018 {
		t.Errorf("Table X: %+v, want %+v", r.MalFlags, paperdata.MaliciousFlags2018)
	}
	if r.MalNonZeroRcode != 0 {
		t.Errorf("malicious nonzero rcodes: %d", r.MalNonZeroRcode)
	}
	// Geolocation.
	gotGeo := map[string]uint64{}
	for _, g := range r.MaliciousGeo {
		gotGeo[g.Country] = g.R2
	}
	for _, want := range paperdata.MaliciousGeo[y] {
		if gotGeo[want.Country] != want.R2 {
			t.Errorf("geo %s: %d, want %d", want.Country, gotGeo[want.Country], want.R2)
		}
	}
	if len(r.MaliciousGeo) != len(paperdata.MaliciousGeo[y]) {
		t.Errorf("geo countries: %d, want %d", len(r.MaliciousGeo), len(paperdata.MaliciousGeo[y]))
	}
	// Empty-question breakdown (reconciled).
	e := paperdata.ReconciledEmptyQuestion()
	if r.EmptyQ != e {
		t.Errorf("empty-question: %+v, want %+v", r.EmptyQ, e)
	}
	// §IV-B1 estimates.
	if r.Estimates != paperdata.Estimates[y] {
		t.Errorf("estimates: %+v, want %+v", r.Estimates, paperdata.Estimates[y])
	}
	if r.Undecodable != 0 {
		t.Errorf("undecodable: %d", r.Undecodable)
	}
}

func TestSyntheticFullScale2013Exact(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale synthesis takes ~25s")
	}
	ds, err := RunSynthetic(Config{Year: paperdata.Y2013, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	r := ds.Report
	y := paperdata.Y2013
	if r.Correctness != paperdata.CorrectnessByYear[y] {
		t.Errorf("Table III: %+v, want %+v", r.Correctness, paperdata.CorrectnessByYear[y])
	}
	if r.RA != paperdata.RATable[y] {
		t.Errorf("Table IV: %+v", r.RA)
	}
	if r.AA != paperdata.ReconciledAA(y) {
		t.Errorf("Table V: %+v", r.AA)
	}
	if r.Rcode != paperdata.ReconciledRcode(y) {
		t.Errorf("Table VI: %+v", r.Rcode)
	}
	// The N/A form (undecodable RDATA) is 2013-specific.
	if r.Forms.NA.Packets != paperdata.NotDecoded2013 {
		t.Errorf("N/A form: %d, want %d", r.Forms.NA.Packets, paperdata.NotDecoded2013)
	}
	for cat, want := range paperdata.MaliciousTable[y] {
		if got := r.Malicious[cat]; got != want {
			t.Errorf("Table IX %s: %+v, want %+v", cat, got, want)
		}
	}
	for i, want := range paperdata.Top10[y] {
		if got := r.Top10[i]; got.Addr != want.Addr || got.Count != want.Count {
			t.Errorf("top10 rank %d: %s×%d, want %s×%d", i+1, got.Addr, got.Count, want.Addr, want.Count)
		}
	}
}

func TestSyntheticScaled(t *testing.T) {
	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		ds, err := RunSynthetic(Config{Year: y, SampleShift: 8, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if ds.Report.Correctness.R2+ds.Report.EmptyQ.Total != ds.Population.ExpectedR2 {
			t.Errorf("%d: analyzed %d+%d != population %d",
				y, ds.Report.Correctness.R2, ds.Report.EmptyQ.Total, ds.Population.ExpectedR2)
		}
		// Error rate survives scaling within rounding.
		full := paperdata.CorrectnessByYear[y].ErrPct()
		got := ds.Report.Correctness.ErrPct()
		if diff := got - full; diff < -0.5 || diff > 0.5 {
			t.Errorf("%d: scaled Err %.3f vs paper %.3f", y, got, full)
		}
	}
}

// popExpected recomputes the expected report aggregates directly from the
// cohorts, as an independent oracle for simulation mode.
func popExpected(pop *population.Population) (correct, incorrect, without uint64) {
	for _, c := range pop.Cohorts {
		switch c.Class {
		case population.ClassCorrect:
			correct += c.Count
		case population.ClassMalicious, population.ClassIncorrect:
			incorrect += c.Count
		case population.ClassNoAnswer:
			without += c.Count
		}
	}
	return
}

func TestSimulation2018EndToEnd(t *testing.T) {
	ds, err := RunSimulation(Config{Year: paperdata.Y2018, SampleShift: 13, Seed: 3, KeepPackets: true})
	if err != nil {
		t.Fatal(err)
	}
	r := ds.Report
	pop := ds.Population

	// Every resolver must have answered: R2 equals the population size.
	if r.Campaign.R2 != pop.ExpectedR2 {
		t.Errorf("R2 = %d, want %d", r.Campaign.R2, pop.ExpectedR2)
	}
	// Q2/R1 at the authoritative server match the calibrated plan exactly.
	if r.Campaign.Q2 != pop.ExpectedQ2 || r.Campaign.R1 != pop.ExpectedQ2 {
		t.Errorf("Q2/R1 = %d/%d, want %d", r.Campaign.Q2, r.Campaign.R1, pop.ExpectedQ2)
	}
	// Q1 equals the universe's allowed count minus the four infra addresses
	// that happen to fall inside the sampled coset (usually none).
	if r.Campaign.Q1 == 0 || r.Campaign.Q1 > 1<<19 {
		t.Errorf("Q1 = %d implausible", r.Campaign.Q1)
	}

	wantCorrect, wantIncorrect, wantWithout := popExpected(pop)
	if r.Correctness.Correct != wantCorrect {
		t.Errorf("correct = %d, want %d", r.Correctness.Correct, wantCorrect)
	}
	if r.Correctness.Incorr != wantIncorrect {
		t.Errorf("incorrect = %d, want %d", r.Correctness.Incorr, wantIncorrect)
	}
	if r.Correctness.Without != wantWithout {
		t.Errorf("without = %d, want %d", r.Correctness.Without, wantWithout)
	}

	// The §III-B result: a handful of clusters per sub-simulation instead
	// of hundreds. Each of the campaign's shards consumes at least one
	// cluster from its private namespace, so the campaign total is bounded
	// by shards × the serial engine's handful.
	if ds.ClustersUsed > 4*simMaxShards {
		t.Errorf("clusters used = %d, want ≤ %d at this scale", ds.ClustersUsed, 4*simMaxShards)
	}
	if ds.SubdomainsReused == 0 {
		t.Error("no subdomain reuse observed")
	}

	// Raw packets were retained and group into flows by qname.
	if len(ds.R2Packets) != int(r.Campaign.R2) {
		t.Fatalf("retained %d packets, want %d", len(ds.R2Packets), r.Campaign.R2)
	}
	flows := capture.GroupFlows(ds.R2Packets)
	if emptyQ := flows[""]; ds.Report.EmptyQ.Total > 0 && emptyQ == nil {
		t.Error("empty-question flow group missing")
	}
}

func TestSimulation2013SendLoss(t *testing.T) {
	ds, err := RunSimulation(Config{Year: paperdata.Y2013, SampleShift: 13, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The modeled 2013 send loss must suppress ~0.69% of probes.
	sent := ds.Report.Campaign.Q1
	if sent == 0 {
		t.Fatal("no probes sent")
	}
	// R2 within 3% of the population (some resolvers were never probed).
	r2 := float64(ds.Report.Campaign.R2)
	want := float64(ds.Population.ExpectedR2)
	if r2 < want*0.95 || r2 > want {
		t.Errorf("R2 = %.0f, want within [%.0f, %.0f]", r2, want*0.95, want)
	}
}

func TestSimulationRequiresScale(t *testing.T) {
	if _, err := RunSimulation(Config{Year: paperdata.Y2018, SampleShift: 2}); err == nil {
		t.Error("full-scale simulation accepted")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, err := RunSynthetic(Config{Year: paperdata.Y2018, SampleShift: 9, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSynthetic(Config{Year: paperdata.Y2018, SampleShift: 9, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Report.Correctness != b.Report.Correctness || a.Report.RA != b.Report.RA {
		t.Error("synthetic runs with equal seeds diverged")
	}
}

func TestRenderAllSmoke(t *testing.T) {
	ds, err := RunSynthetic(Config{Year: paperdata.Y2018, SampleShift: 10, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	out := ds.Report.RenderAll()
	if len(out) < 1000 {
		t.Errorf("render too short: %d bytes", len(out))
	}
	for _, want := range []string{"Table I", "Table II", "Table VI", "Table X", "Open-resolver estimates"} {
		if !contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestConfigDefaults(t *testing.T) {
	c := Config{Year: paperdata.Y2018}
	if c.pps() != 100000 {
		t.Errorf("default pps = %d", c.pps())
	}
	c.PacketsPerSec = 5
	if c.pps() != 5 {
		t.Errorf("override pps = %d", c.pps())
	}
	if (Config{Year: paperdata.Y2013}).sendSkip() == 0 {
		t.Error("2013 send skip is zero")
	}
	if (Config{Year: paperdata.Y2018}).sendSkip() != 0 {
		t.Error("2018 send skip nonzero")
	}
	if (Config{Year: paperdata.Y2018, SampleShift: 30}).scaledClusterSize() < 16 {
		t.Error("cluster size floor violated")
	}
}

func TestSimulationMatchesSyntheticExactly(t *testing.T) {
	// The two execution modes share the population, the assigner and the
	// analysis pipeline; for the loss-free 2018 campaign every regenerated
	// table must be identical between them.
	cfg := Config{Year: paperdata.Y2018, SampleShift: 13, Seed: 21}
	sim, err := RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	syn, err := RunSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Report.Correctness != syn.Report.Correctness {
		t.Errorf("Table III differs: sim %+v vs synth %+v", sim.Report.Correctness, syn.Report.Correctness)
	}
	if sim.Report.RA != syn.Report.RA || sim.Report.AA != syn.Report.AA {
		t.Error("flag tables differ between modes")
	}
	if sim.Report.Rcode != syn.Report.Rcode {
		t.Error("rcode tables differ between modes")
	}
	if sim.Report.Forms != syn.Report.Forms {
		t.Errorf("forms differ: sim %+v vs synth %+v", sim.Report.Forms, syn.Report.Forms)
	}
	if sim.Report.MaliciousTotal != syn.Report.MaliciousTotal || sim.Report.MalFlags != syn.Report.MalFlags {
		t.Error("malicious tables differ between modes")
	}
	if len(sim.Report.Top10) != len(syn.Report.Top10) {
		t.Fatal("top-10 lengths differ")
	}
	for i := range sim.Report.Top10 {
		if sim.Report.Top10[i] != syn.Report.Top10[i] {
			t.Errorf("top-10 rank %d differs: %+v vs %+v",
				i+1, sim.Report.Top10[i], syn.Report.Top10[i])
		}
	}
	if len(sim.Report.MaliciousGeo) != len(syn.Report.MaliciousGeo) {
		t.Fatal("geo lengths differ")
	}
	for i := range sim.Report.MaliciousGeo {
		if sim.Report.MaliciousGeo[i] != syn.Report.MaliciousGeo[i] {
			t.Errorf("geo row %d differs", i)
		}
	}
	if sim.Report.EmptyQ != syn.Report.EmptyQ {
		t.Error("empty-question stats differ between modes")
	}
	if sim.Report.Estimates != syn.Report.Estimates {
		t.Error("estimates differ between modes")
	}
}

func TestSimulationRoleClassification(t *testing.T) {
	ds, err := RunSimulation(Config{Year: paperdata.Y2018, SampleShift: 13, Seed: 6, KeepPackets: true})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Roles == nil {
		t.Fatal("no role classification")
	}
	// Expected roles from the cohorts: resolving cohorts are recursives;
	// with-answer non-resolving cohorts are fabricators (the §IV-C
	// signature); the rest are non-resolving. The population contains no
	// forwarders.
	var wantRecursive, wantFabricator, wantNonResolving int
	for _, c := range ds.Population.Cohorts {
		n := int(c.Count)
		switch {
		case c.Profile.Upstream > 0:
			wantRecursive += n
		case c.Profile.Answer != 0 && c.Profile.Answer != behavior.AnswerNone:
			wantFabricator += n
		default:
			wantNonResolving += n
		}
	}
	got := ds.Roles.ByRole
	if got[classify.RoleRecursive] != wantRecursive {
		t.Errorf("recursive = %d, want %d", got[classify.RoleRecursive], wantRecursive)
	}
	if got[classify.RoleFabricator] != wantFabricator {
		t.Errorf("fabricator = %d, want %d", got[classify.RoleFabricator], wantFabricator)
	}
	if got[classify.RoleNonResolving] != wantNonResolving {
		t.Errorf("non-resolving = %d, want %d", got[classify.RoleNonResolving], wantNonResolving)
	}
	if got[classify.RoleForwarder] != 0 {
		t.Errorf("forwarders = %d, want 0", got[classify.RoleForwarder])
	}
}
