package core

import (
	"fmt"
	"testing"

	"openresolver/internal/netsim"
	"openresolver/internal/obs"
	"openresolver/internal/paperdata"
	"openresolver/internal/population"
	"openresolver/internal/threatintel"
)

// TestSimulationGoldenWithMetrics is the determinism contract of the
// observability layer: a simulated campaign with a full metrics registry
// attached must produce exactly the bytes the uninstrumented run is pinned
// to. The counters are write-only from the campaign's point of view —
// nothing reads them back — so the digest must match the recorded golden,
// not merely be self-consistent.
func TestSimulationGoldenWithMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	ds, err := RunSimulation(Config{
		Year: paperdata.Y2018, SampleShift: 14, Seed: 1, KeepPackets: true,
		Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	got := SimulationDigest(ds)
	want := simulationGoldens["2018/seed1"]
	if got != want {
		t.Errorf("metrics-enabled simulation diverged from the golden\n got %s\nwant %s", got, want)
	}

	// And the metrics must actually have been collected, with the internal
	// counters agreeing with the campaign's own reporting.
	m := reg.Merged()
	if sent := m.Counter(obs.CProbeSent); sent != ds.ProbeStats.Sent {
		t.Errorf("probe.sent = %d, ProbeStats.Sent = %d", sent, ds.ProbeStats.Sent)
	}
	if recv := m.Counter(obs.CProbeRecv); recv == 0 {
		t.Error("probe.recv never incremented")
	}
	if lost := m.Counter(obs.CSimLost); lost != ds.NetStats.Lost {
		t.Errorf("sim.lost = %d, NetStats.Lost = %d", lost, ds.NetStats.Lost)
	}
	if dlv := m.Counter(obs.CSimDelivered); dlv != ds.NetStats.Delivered {
		t.Errorf("sim.delivered = %d, NetStats.Delivered = %d", dlv, ds.NetStats.Delivered)
	}
	if m.Histogram(obs.HRTT).Count() == 0 {
		t.Error("RTT histogram empty after a simulated campaign")
	}
	if m.Histogram(obs.HQueueDepth).Count() == 0 {
		t.Error("event-queue-depth histogram empty")
	}
	if m.Counter(obs.CSimVirtualNanos) == 0 || m.Counter(obs.CSimWallNanos) == 0 {
		t.Error("clock-ratio counters not recorded")
	}
	for _, name := range []string{"scan-universe", "population-place", "simulate", "report"} {
		found := false
		for _, sp := range reg.Tracer().Spans() {
			if sp.Name == name && sp.Done {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("phase span %q missing or unclosed", name)
		}
	}
}

// TestFaultGoldenWithMetrics pins the adverse-network campaign with
// metrics attached: the fault-cause counters must mirror FaultStats and
// the digest must stay on the recorded fault golden.
func TestFaultGoldenWithMetrics(t *testing.T) {
	// The same spec TestFaultGolden uses, so the two tests exercise the
	// identical adverse network.
	imps, err := netsim.ParseImpairments("ge:0.02,0.3,0.05,0.9;dup:0.05;reorder:0.1,30ms;corrupt:0.02")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	ds, err := RunSimulation(Config{
		Year: paperdata.Y2018, SampleShift: 14, Seed: 1, KeepPackets: true,
		Faults: FaultPlan{
			Impairments:     imps,
			Retries:         2,
			AdaptiveTimeout: true,
			UpstreamBackoff: true,
			MaxQueuedEvents: 1 << 21,
		},
		Obs: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := FaultDigest(ds); got != faultGolden {
		t.Errorf("metrics-enabled fault campaign diverged\n got %s\nwant %s", got, faultGolden)
	}
	m := reg.Merged()
	fst := ds.FaultStats
	checks := []struct {
		c    obs.Counter
		want uint64
		name string
	}{
		{obs.CFaultLossDrop, fst.LossDrops, "fault.drop.loss"},
		{obs.CFaultBurstDrop, fst.BurstDrops, "fault.drop.burst"},
		{obs.CFaultBlackholed, fst.Blackholed, "fault.drop.blackhole"},
		{obs.CFaultBrownedOut, fst.BrownedOut, "fault.drop.brownout"},
		{obs.CFaultDuplicated, fst.Duplicated, "fault.duplicated"},
		{obs.CFaultCorrupted, fst.Corrupted, "fault.corrupted"},
		{obs.CFaultReordered, fst.Reordered, "fault.reordered"},
		{obs.CProbeRetransmits, ds.ProbeStats.Retransmits, "probe.retransmits"},
		{obs.CProbeGaveUp, ds.ProbeStats.GaveUp, "probe.gave_up"},
	}
	for _, ck := range checks {
		if got := m.Counter(ck.c); got != ck.want {
			t.Errorf("%s = %d, campaign stats say %d", ck.name, got, ck.want)
		}
	}
}

// TestSyntheticDeterministicWithMetrics checks that the synthetic engine's
// report is identical with and without metrics, across worker counts, and
// that every worker shard registered in deterministic order.
func TestSyntheticDeterministicWithMetrics(t *testing.T) {
	base, err := RunSynthetic(Config{Year: paperdata.Y2018, SampleShift: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want := base.Report.RenderAll()
	for _, workers := range []int{1, 3, 8} {
		reg := obs.NewRegistry()
		ds, err := RunSynthetic(Config{
			Year: paperdata.Y2018, SampleShift: 12, Seed: 3,
			Workers: workers, Obs: reg,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := ds.Report.RenderAll(); got != want {
			t.Errorf("workers=%d with metrics: report diverged from uninstrumented run", workers)
		}
		shards := reg.Shards()
		if len(shards) != workers {
			t.Fatalf("workers=%d: %d shards registered", workers, len(shards))
		}
		var total uint64
		for i, sh := range shards {
			if want := fmt.Sprintf("synth-%d", i); sh.Label() != want {
				t.Errorf("shard %d label = %q, want %q", i, sh.Label(), want)
			}
			total += sh.Counter(obs.CSynthProbes)
		}
		if merged := reg.Merged().Counter(obs.CSynthProbes); merged != total {
			t.Errorf("merged synth.probes %d != shard sum %d", merged, total)
		}
		if total == 0 {
			t.Error("no synthetic probes counted")
		}
	}
}

// TestDriftWithMetrics runs a two-epoch trend against a registry and
// checks the epoch spans and that the trend itself is unaffected.
func TestDriftWithMetrics(t *testing.T) {
	// drift lives above core; exercise the Obs plumbing through
	// SynthesizePopulation with a mixed population directly, as drift does.
	feed := threatintel.NewFeed(paperdata.Y2018, 5)
	pop, err := population.Build(population.Config{
		Year: paperdata.Y2018, SampleShift: 13, Seed: 5, Feed: feed,
	})
	if err != nil {
		t.Fatal(err)
	}
	bare, err := SynthesizePopulation(Config{Year: paperdata.Y2018, SampleShift: 13, Seed: 5}, pop, feed.DB)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	inst, err := SynthesizePopulation(Config{Year: paperdata.Y2018, SampleShift: 13, Seed: 5, Obs: reg}, pop, feed.DB)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Report.RenderAll() != inst.Report.RenderAll() {
		t.Error("SynthesizePopulation report changed with metrics attached")
	}
	for _, name := range []string{"scan-universe", "synthesize", "report"} {
		found := false
		for _, sp := range reg.Tracer().Spans() {
			if sp.Name == name && sp.Done {
				found = true
			}
		}
		if !found {
			t.Errorf("span %q missing", name)
		}
	}
}
