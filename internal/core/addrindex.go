package core

import "openresolver/internal/ipv4"

// addrIndex is a minimal open-addressed ipv4.Addr → int32 table backing the
// simulation spawner's cohort lookup. The spawner is consulted once per
// probed candidate and the overwhelming majority of lookups miss (only ~4%
// of scanned addresses host a resolver), so the miss path matters: with
// Fibonacci hashing and linear probing a miss is one or two cache-line
// touches, where the generic map pays hashing, bucket-group dispatch and
// control-byte matching per probe. Insert-only; values are non-negative
// cohort indices (-1 marks an empty slot).
type addrIndex struct {
	keys  []ipv4.Addr
	vals  []int32
	mask  uint32
	shift uint32
}

// newAddrIndex returns a table pre-sized for n entries at ≤50% load.
func newAddrIndex(n int) *addrIndex {
	size := 16
	for size < 2*n {
		size <<= 1
	}
	ai := &addrIndex{
		keys:  make([]ipv4.Addr, size),
		vals:  make([]int32, size),
		mask:  uint32(size - 1),
		shift: uint32(32 - log2(size)),
	}
	for i := range ai.vals {
		ai.vals[i] = -1
	}
	return ai
}

func log2(pow2 int) int {
	n := 0
	for 1<<n < pow2 {
		n++
	}
	return n
}

func (ai *addrIndex) home(a ipv4.Addr) uint32 {
	// Multiply-shift: the product's high bits are well mixed, so index by
	// them (the low bits of sequentially assigned addresses are not).
	return (uint32(a) * 0x9E3779B9) >> ai.shift
}

// put inserts or overwrites the value for a.
func (ai *addrIndex) put(a ipv4.Addr, v int32) {
	i := ai.home(a)
	for {
		if ai.vals[i] < 0 || ai.keys[i] == a {
			ai.keys[i] = a
			ai.vals[i] = v
			return
		}
		i = (i + 1) & ai.mask
	}
}

// get returns the value for a, or ok=false.
func (ai *addrIndex) get(a ipv4.Addr) (int32, bool) {
	i := ai.home(a)
	for {
		if ai.vals[i] < 0 {
			return 0, false
		}
		if ai.keys[i] == a {
			return ai.vals[i], true
		}
		i = (i + 1) & ai.mask
	}
}
