package core

// This file is the process-boundary seam of the sharded simulation engine
// (DESIGN.md §15). SimulatePopulation decomposes a campaign into a fixed
// set of private sub-simulations and merges them in shard order
// (simshard.go); ShardCampaign exposes exactly that decomposition so the
// two halves can run in different processes — or on different machines —
// connected by nothing but checkpoint envelopes:
//
//   - a worker opens the campaign from the same Config, executes one shard,
//     and serializes the result as the self-validating checkpoint envelope
//     of DESIGN.md §13 (RunShardEnvelope);
//   - a coordinator opens the campaign from the same Config, validates and
//     records envelopes as they arrive (LoadEnvelope), and folds the
//     completed set through the identical ordered merge (Merge).
//
// Because the decomposition is a pure function of the Config and the
// envelope carries every field mergeSimShards folds, the merged dataset is
// byte-identical to a single-process run — the distributed fabric
// (internal/fabric) is "just" a transport for these envelopes, and every
// failure mode (worker death, duplicate delivery, corruption in flight)
// degrades to "rerun shard", exactly as local checkpoint corruption does.

import (
	"errors"
	"fmt"
	"sync"

	"openresolver/internal/analysis"
	"openresolver/internal/geo"
	"openresolver/internal/ipv4"
	"openresolver/internal/obs"
	"openresolver/internal/population"
	"openresolver/internal/scan"
	"openresolver/internal/threatintel"
)

// ErrShardRecorded reports an envelope for a shard that already has a
// recorded run — a duplicate RESULT, a late delivery after a lease expired
// and another worker finished first, or a shard restored from a local
// checkpoint. The duplicate is dropped, never merged twice.
var ErrShardRecorded = errors.New("core: shard already recorded")

// ShardCampaign is one simulated campaign opened at its shard seams: the
// compiled environment every shard shares, the fixed shard plan, and the
// per-shard run slots the ordered merge folds. It is the engine behind
// SimulatePopulation and the unit of work the distributed fabric moves
// between processes.
type ShardCampaign struct {
	cfg       Config
	env       *simEnv
	shards    []simShard
	obsShards []*obs.Shard
	accCfg    analysis.Config
	key       string
	store     *checkpointStore

	// mu guards runs against concurrent LoadEnvelope calls (duplicate or
	// racing RESULTs). The local execution path in SimulatePopulation
	// writes disjoint indexes from its own workers and does not take it.
	mu   sync.Mutex
	runs []*simShardRun
}

// OpenShardCampaign compiles cfg's campaign to its shard seams: builds the
// population, threat feed and scan universe, plans the fixed shard
// decomposition, and — when cfg.Checkpoints is configured — restores every
// shard with a valid checkpoint. Both fabric roles open the campaign this
// way; the campaign key proves they agree on every byte-shaping input.
func OpenShardCampaign(cfg Config) (*ShardCampaign, error) {
	pop, feed, _, _, err := buildDeps(cfg)
	if err != nil {
		return nil, err
	}
	return openSimCampaign(cfg, pop, feed.DB)
}

// openSimCampaign is the shared opening path of SimulatePopulation and
// OpenShardCampaign: the read-only simEnv (universe, assigner walk, cohort
// index), the shard plan, the obs shards registered in shard order, and
// the checkpoint restore pass.
func openSimCampaign(cfg Config, pop *population.Population, threat *threatintel.DB) (*ShardCampaign, error) {
	if cfg.SampleShift < 6 {
		return nil, fmt.Errorf("core: simulation mode needs SampleShift ≥ 6 (got %d); use RunSynthetic for full scale", cfg.SampleShift)
	}
	tr := cfg.Obs.Tracer()
	sp := tr.Begin("scan-universe")
	reg := geo.DefaultRegistry()
	u, err := scan.NewUniverse(uint64(cfg.Seed), cfg.SampleShift, ipv4.NewReservedBlocklist())
	if err != nil {
		return nil, err
	}
	assigner, err := population.NewAssigner(u, reg, pop, ProberAddr, RootAddr, TLDAddr, AuthAddr)
	if err != nil {
		return nil, err
	}
	tr.End(sp)

	// The resolver population's address plan. The assigner walk — and with
	// it every address draw — is identical to the old eager construction,
	// but only a cohort index is recorded per address; the Resolver host
	// itself (and its recursion engine) materializes inside the shard that
	// first reaches the address, via each sub-simulation's spawner hook.
	// Addresses the campaign never reaches (skipped sends, lost probes) are
	// never built. The index is written once here and only read during the
	// fan-out, so every shard shares it without synchronization.
	sp = tr.Begin("population-place")
	cohortOf := newAddrIndex(int(pop.ExpectedR2))
	for ci, cohort := range pop.Cohorts {
		for i := uint64(0); i < cohort.Count; i++ {
			src, err := assigner.Next(cohort.Country)
			if err != nil {
				return nil, err
			}
			cohortOf.put(src, int32(ci))
		}
	}
	tr.End(sp)

	shards := planSimShards(cfg, u)
	// Metrics shards are registered here, in shard order, so the snapshot's
	// shard list is deterministic regardless of goroutine scheduling.
	obsShards := make([]*obs.Shard, len(shards))
	for i := range shards {
		obsShards[i] = cfg.Obs.NewShard(fmt.Sprintf("sim-%d", i))
	}
	sc := &ShardCampaign{
		cfg:       cfg,
		env:       &simEnv{cfg: cfg, pop: pop, threat: threat, reg: reg, u: u, cohortOf: cohortOf},
		shards:    shards,
		obsShards: obsShards,
		accCfg:    analysis.Config{Year: cfg.Year, Threat: threat, Geo: reg},
		key:       checkpointCampaignKey(cfg, shards),
		runs:      make([]*simShardRun, len(shards)),
	}

	// Checkpoint/restore (DESIGN.md §13): restore every shard with a valid
	// checkpoint from a previous run of the same campaign; only the rest
	// execute. Restored runs carry exactly the fields mergeSimShards folds,
	// so the merged dataset is byte-identical to an uninterrupted run's.
	if cfg.Checkpoints.enabled() {
		store, err := openCheckpointStore(cfg.Checkpoints, cfg, shards)
		if err != nil {
			return nil, err
		}
		sc.store = store
		sp = tr.Begin("checkpoint-restore")
		for i := range shards {
			if run, ok := store.load(i, sc.accCfg, obsShards[i]); ok {
				sc.runs[i] = run
			}
		}
		tr.End(sp)
	}
	return sc, nil
}

// NumShards returns the campaign's fixed shard count — a pure function of
// the Config, never of Workers or the host.
func (sc *ShardCampaign) NumShards() int { return len(sc.shards) }

// CampaignKey returns the campaign's identity digest: the configuration
// scalars, the canonical fault-plan description, and the complete shard
// plan (checkpointCampaignKey). Two processes that derive the same key
// from their own flags provably agree on every input that shapes the
// campaign's bytes; the fabric protocol refuses to pair processes whose
// keys differ.
func (sc *ShardCampaign) CampaignKey() string { return sc.key }

// Pending returns the ascending indexes of shards without a recorded run —
// the work a coordinator hands out as leases. Shards restored from
// checkpoints are already recorded and never leave the process again.
func (sc *ShardCampaign) Pending() []int {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	var idx []int
	for i, run := range sc.runs {
		if run == nil {
			idx = append(idx, i)
		}
	}
	return idx
}

// Recorded reports whether shard i already has a recorded run.
func (sc *ShardCampaign) Recorded(i int) bool {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return i >= 0 && i < len(sc.runs) && sc.runs[i] != nil
}

// RunShardEnvelope executes shard i on a fully private discrete-event
// network and returns its checkpoint envelope — the worker half of the
// fabric. The run is not recorded locally: its observability state rides
// inside the envelope (on a free-standing shard, not the campaign's
// registry) and is folded in exactly once by whichever process records
// the envelope, so metrics are neither lost nor double-counted.
func (sc *ShardCampaign) RunShardEnvelope(i int) ([]byte, error) {
	if i < 0 || i >= len(sc.shards) {
		return nil, fmt.Errorf("core: campaign has no shard %d (plan has %d)", i, len(sc.shards))
	}
	run, err := runSimShard(sc.env, sc.shards[i], obs.NewShard(fmt.Sprintf("sim-%d", i)))
	if err != nil {
		return nil, err
	}
	return marshalShardEnvelope(sc.key, i, run)
}

// LoadEnvelope validates envelope bytes for shard i and records the
// restored run — the coordinator half of the fabric. Validation is the
// same layered check the checkpoint store applies to files it reads back
// (version, campaign key, shard index, payload digest), so a corrupted or
// mismatched envelope is rejected before any state is touched and the
// shard simply reruns. A second envelope for an already-recorded shard
// returns ErrShardRecorded and changes nothing — the at-most-once merge
// guarantee. When the campaign checkpoints, accepted envelopes are also
// persisted verbatim, making a distributed campaign resumable from the
// coordinator's disk alone.
func (sc *ShardCampaign) LoadEnvelope(i int, data []byte) error {
	if i < 0 || i >= len(sc.shards) {
		return fmt.Errorf("core: campaign has no shard %d (plan has %d)", i, len(sc.shards))
	}
	ck, err := validateShardEnvelope(sc.key, i, data)
	if err != nil {
		return err
	}
	sc.mu.Lock()
	if sc.runs[i] != nil {
		sc.mu.Unlock()
		return ErrShardRecorded
	}
	// Record under the lock: obs state loads exactly once per shard even
	// when duplicate RESULTs race.
	sc.runs[i] = restoreShardRun(sc.accCfg, ck, sc.obsShards[i])
	sc.mu.Unlock()
	if sc.store != nil {
		sc.store.writeRaw(i, data)
	}
	return nil
}

// Merge folds the recorded shards, in shard order, into the campaign's
// Dataset — the same mergeSimShards discipline SimulatePopulation applies,
// so a campaign assembled from remote envelopes is byte-identical to one
// run in-process. Every shard must be recorded; checkpoint files are
// cleared on success exactly as a local campaign clears them.
func (sc *ShardCampaign) Merge() (*Dataset, error) {
	for i, run := range sc.runs {
		if run == nil {
			return nil, fmt.Errorf("core: cannot merge: shard %d has no recorded run", i)
		}
	}
	ds := mergeSimShards(sc.cfg, sc.env.pop, sc.runs)
	if sc.store != nil {
		sc.store.clear(len(sc.shards))
	}
	return ds, nil
}

// Threat returns the campaign's threat database — the seam drift-style
// callers need to cross-check a merged dataset.
func (sc *ShardCampaign) Threat() *threatintel.DB { return sc.env.threat }
