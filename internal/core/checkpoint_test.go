package core

// Checkpoint/restore and crash-recovery tests (DESIGN.md §13). The
// recovery contract under test: a campaign interrupted at any shard
// boundary — gracefully (context cancel) or violently (process kill,
// via the subprocess crash matrix in crash_test.go) — and rerun with the
// same configuration produces campaign bytes identical to an
// uninterrupted run, and a damaged checkpoint (torn, short, corrupt,
// mismatched configuration) is never merged: it is detected, logged, and
// its shard re-executes.

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
	"openresolver/internal/paperdata"
	"openresolver/internal/scan"
)

// ckptTestConfig is the shared campaign the checkpoint tests interrupt and
// resume: small enough to run many times, large enough for a multi-shard
// plan (16 shards at the paper's 2013 rate).
func ckptTestConfig() Config {
	return Config{Year: paperdata.Y2013, SampleShift: 14, Seed: 11, KeepPackets: true}
}

func mustSimulate(t *testing.T, cfg Config) *Dataset {
	t.Helper()
	ds, err := RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

// notifyFS wraps a CheckpointFS and invokes a hook after every successful
// rename — i.e. at every persisted shard boundary.
type notifyFS struct {
	CheckpointFS
	onRename func(n int)
	renames  int
}

func (f *notifyFS) Rename(oldpath, newpath string) error {
	if err := f.CheckpointFS.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.renames++
	if f.onRename != nil {
		f.onRename(f.renames)
	}
	return nil
}

// interruptCampaign starts the campaign with checkpointing into dir and
// cancels its context after `after` shards have been persisted, returning
// the error (which must be ErrInterrupted) and the checkpoint log.
func interruptCampaign(t *testing.T, cfg Config, dir string, after int) string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var log bytes.Buffer
	fs := &notifyFS{CheckpointFS: osCheckpointFS{}}
	fs.onRename = func(n int) {
		if n >= after {
			cancel()
		}
	}
	cfg.Ctx = ctx
	cfg.Checkpoints = CheckpointPlan{Dir: dir, FS: fs, Log: &log}
	// Workers 1 so cancellation after `after` persisted shards leaves the
	// rest genuinely unrun (a wide pool could drain everything in flight).
	cfg.Workers = 1
	_, err := RunSimulation(cfg)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted campaign: got error %v, want ErrInterrupted", err)
	}
	if fs.renames < after {
		t.Fatalf("campaign persisted %d shards before interrupt, want ≥ %d", fs.renames, after)
	}
	return log.String()
}

// countCheckpoints returns how many shard checkpoint files exist in dir.
func countCheckpoints(t *testing.T, dir string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "shard-*.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

// TestCheckpointResumeIdentical is the core recovery property: interrupt a
// campaign partway, resume it with the same configuration, and the merged
// dataset — digest and rendered tables — is byte-identical to an
// uninterrupted run. Checkpoints are cleaned up after the successful merge.
func TestCheckpointResumeIdentical(t *testing.T) {
	cfg := ckptTestConfig()
	cold := mustSimulate(t, cfg)
	want := FaultDigest(cold)

	dir := t.TempDir()
	interruptCampaign(t, cfg, dir, 3)
	if n := countCheckpoints(t, dir); n < 3 {
		t.Fatalf("after interrupt: %d checkpoint files, want ≥ 3", n)
	}

	var log bytes.Buffer
	resumed := cfg
	resumed.Checkpoints = CheckpointPlan{Dir: dir, Log: &log}
	ds, err := RunSimulation(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got := FaultDigest(ds); got != want {
		t.Errorf("resumed campaign diverged from cold run\n got %s\nwant %s", got, want)
	}
	if cold.Report.RenderAll() != ds.Report.RenderAll() {
		t.Error("resumed campaign rendered tables differ from cold run")
	}
	if !strings.Contains(log.String(), "restored from checkpoint") {
		t.Errorf("resume log does not mention restored shards:\n%s", log.String())
	}
	if n := countCheckpoints(t, dir); n != 0 {
		t.Errorf("completed campaign left %d checkpoint files behind", n)
	}
}

// TestCheckpointKeep pins the Keep escape hatch: a completed campaign
// retains its shard files when asked, and a rerun over them restores every
// shard without executing any.
func TestCheckpointKeep(t *testing.T) {
	cfg := ckptTestConfig()
	cfg.SampleShift = 16 // cheap: this test runs the campaign twice
	dir := t.TempDir()
	cfg.Checkpoints = CheckpointPlan{Dir: dir, Keep: true}
	first, err := RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := countCheckpoints(t, dir)
	if n == 0 {
		t.Fatal("Keep: no checkpoint files retained")
	}
	var log bytes.Buffer
	cfg.Checkpoints.Log = &log
	second, err := RunSimulation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if FaultDigest(first) != FaultDigest(second) {
		t.Error("fully-restored campaign diverged from the run that wrote it")
	}
	if got := strings.Count(log.String(), "restored from checkpoint"); got != n {
		t.Errorf("restored %d shards, want all %d:\n%s", got, n, log.String())
	}
}

// faultWriter fails or mangles checkpoint writes in a configurable way.
type faultWriter struct {
	f         CheckpointFile
	tornAfter int  // > 0: silently drop bytes beyond this prefix
	failWrite bool // return ENOSPC from Write
}

func (w *faultWriter) Write(p []byte) (int, error) {
	if w.failWrite {
		return len(p) / 2, syscall.ENOSPC
	}
	if w.tornAfter > 0 && w.tornAfter < len(p) {
		// A torn write: only a prefix reaches the disk, but the writer
		// reports full success — the failure mode fsync-then-rename cannot
		// prevent, only detection at load can.
		if _, err := w.f.Write(p[:w.tornAfter]); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return w.f.Write(p)
}

func (w *faultWriter) Sync() error  { return w.f.Sync() }
func (w *faultWriter) Close() error { return w.f.Close() }

// faultFS injects write-side faults into every checkpoint file.
type faultFS struct {
	CheckpointFS
	tornAfter  int
	shortWrite bool // Write reports fewer bytes than given, no error
	failWrite  bool
	failRename bool
}

func (f *faultFS) Create(name string) (CheckpointFile, error) {
	file, err := f.CheckpointFS.Create(name)
	if err != nil {
		return nil, err
	}
	if f.shortWrite {
		return shortWriter{file}, nil
	}
	return &faultWriter{f: file, tornAfter: f.tornAfter, failWrite: f.failWrite}, nil
}

func (f *faultFS) Rename(oldpath, newpath string) error {
	if f.failRename {
		return syscall.EIO
	}
	return f.CheckpointFS.Rename(oldpath, newpath)
}

// shortWriter accepts only half of every write and says so.
type shortWriter struct{ f CheckpointFile }

func (w shortWriter) Write(p []byte) (int, error) {
	n, err := w.f.Write(p[:len(p)/2])
	return n, err
}
func (w shortWriter) Sync() error  { return w.f.Sync() }
func (w shortWriter) Close() error { return w.f.Close() }

// TestCheckpointWriteFaultsSurvive drives a full campaign through every
// write-side failure mode — ENOSPC, short writes, rename failure — and
// checks the contract: the campaign completes with byte-identical output
// (checkpoint loss never costs correctness, only resumability), every
// failure is logged, and no checkpoint or temp file debris survives.
func TestCheckpointWriteFaultsSurvive(t *testing.T) {
	cfg := ckptTestConfig()
	cfg.SampleShift = 16
	want := FaultDigest(mustSimulate(t, cfg))

	cases := []struct {
		name    string
		fs      faultFS
		logWant string
	}{
		{"enospc", faultFS{failWrite: true}, "no space left"},
		{"short-write", faultFS{shortWrite: true}, "short write"},
		{"rename-fails", faultFS{failRename: true}, "rename"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			var log bytes.Buffer
			run := cfg
			tc.fs.CheckpointFS = osCheckpointFS{}
			run.Checkpoints = CheckpointPlan{Dir: dir, FS: &tc.fs, Log: &log}
			ds, err := RunSimulation(run)
			if err != nil {
				t.Fatalf("campaign must survive checkpoint write failure: %v", err)
			}
			if got := FaultDigest(ds); got != want {
				t.Errorf("write faults changed campaign bytes\n got %s\nwant %s", got, want)
			}
			if !strings.Contains(log.String(), "continuing without") ||
				!strings.Contains(strings.ToLower(log.String()), tc.logWant) {
				t.Errorf("log missing %q / continuing-without notice:\n%s", tc.logWant, log.String())
			}
			entries, err := os.ReadDir(dir)
			if err != nil && !errors.Is(err, os.ErrNotExist) {
				t.Fatal(err)
			}
			for _, e := range entries {
				t.Errorf("debris left in checkpoint dir: %s", e.Name())
			}
		})
	}
}

// TestCheckpointTornWriteRerunsShard is the torn-write half of the
// contract: checkpoints whose payload silently lost its tail are detected
// at load (JSON truncation or payload digest mismatch), logged, discarded,
// and their shards re-executed — the resumed campaign still reproduces the
// cold run's bytes. Corrupt state is never silently merged.
func TestCheckpointTornWriteRerunsShard(t *testing.T) {
	cfg := ckptTestConfig()
	want := FaultDigest(mustSimulate(t, cfg))

	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	torn := &faultFS{CheckpointFS: osCheckpointFS{}, tornAfter: 512}
	fs := &notifyFS{CheckpointFS: torn}
	fs.onRename = func(n int) {
		if n >= 3 {
			cancel()
		}
	}
	run := cfg
	run.Ctx = ctx
	run.Workers = 1
	run.Checkpoints = CheckpointPlan{Dir: dir, FS: fs}
	if _, err := RunSimulation(run); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("got %v, want ErrInterrupted", err)
	}
	if n := countCheckpoints(t, dir); n < 3 {
		t.Fatalf("%d torn checkpoint files on disk, want ≥ 3", n)
	}

	var log bytes.Buffer
	resumed := cfg
	resumed.Checkpoints = CheckpointPlan{Dir: dir, Log: &log}
	ds, err := RunSimulation(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got := FaultDigest(ds); got != want {
		t.Errorf("campaign resumed over torn checkpoints diverged\n got %s\nwant %s", got, want)
	}
	if !strings.Contains(log.String(), "rerunning shard") {
		t.Errorf("torn checkpoints were not reported for rerun:\n%s", log.String())
	}
	if strings.Contains(log.String(), "restored from checkpoint") {
		t.Errorf("a torn checkpoint was restored:\n%s", log.String())
	}
}

// TestCheckpointFlippedByteRejected corrupts one byte in the middle of a
// valid checkpoint file (a bit-rot / partial-overwrite stand-in): either
// the envelope no longer parses or the payload digest no longer matches —
// both must reject the file and rerun the shard.
func TestCheckpointFlippedByteRejected(t *testing.T) {
	cfg := ckptTestConfig()
	want := FaultDigest(mustSimulate(t, cfg))

	dir := t.TempDir()
	interruptCampaign(t, cfg, dir, 2)
	files, err := filepath.Glob(filepath.Join(dir, "shard-*.ckpt"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoints to corrupt (err=%v)", err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	resumed := cfg
	resumed.Checkpoints = CheckpointPlan{Dir: dir, Log: &log}
	ds, err := RunSimulation(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if got := FaultDigest(ds); got != want {
		t.Errorf("campaign resumed over corrupt checkpoint diverged\n got %s\nwant %s", got, want)
	}
	if !strings.Contains(log.String(), "rerunning shard") {
		t.Errorf("corrupt checkpoint was not rejected:\n%s", log.String())
	}
}

// TestCheckpointCampaignMismatchReruns: checkpoints are bound to their
// campaign key, so resuming a *different* configuration over them must
// rerun everything — never merge another campaign's shards.
func TestCheckpointCampaignMismatchReruns(t *testing.T) {
	cfg := ckptTestConfig()
	dir := t.TempDir()
	interruptCampaign(t, cfg, dir, 2)

	other := cfg
	other.Seed = cfg.Seed + 1
	want := FaultDigest(mustSimulate(t, other))

	var log bytes.Buffer
	other.Checkpoints = CheckpointPlan{Dir: dir, Log: &log}
	ds, err := RunSimulation(other)
	if err != nil {
		t.Fatal(err)
	}
	if got := FaultDigest(ds); got != want {
		t.Errorf("foreign checkpoints leaked into a different campaign\n got %s\nwant %s", got, want)
	}
	if !strings.Contains(log.String(), "different campaign") {
		t.Errorf("campaign-key mismatch was not reported:\n%s", log.String())
	}
	if strings.Contains(log.String(), "restored from checkpoint") {
		t.Errorf("a foreign checkpoint was restored:\n%s", log.String())
	}
}

// TestCheckpointCampaignKeyCoversPlan pins what the campaign key must
// react to: any knob that changes campaign bytes or the shard plan
// (year, seed, shift, rate, capture, fault plan) changes the key; the
// pure scheduling knobs (Workers) must not.
func TestCheckpointCampaignKeyCoversPlan(t *testing.T) {
	base := ckptTestConfig()
	u := func(c Config) string {
		uni, err := scan.NewUniverse(uint64(c.Seed), c.SampleShift, ipv4.NewReservedBlocklist())
		if err != nil {
			t.Fatal(err)
		}
		return checkpointCampaignKey(c, planSimShards(c, uni))
	}
	key := u(base)

	same := base
	same.Workers = 7
	if u(same) != key {
		t.Error("Workers changed the campaign key; scheduling must not invalidate checkpoints")
	}

	imps, err := netsim.ParseImpairments("loss:0.1")
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]Config{}
	v := base
	v.Year = paperdata.Y2018
	variants["year"] = v
	v = base
	v.Seed++
	variants["seed"] = v
	v = base
	v.SampleShift++
	variants["shift"] = v
	v = base
	v.PacketsPerSec = 999
	variants["pps"] = v
	v = base
	v.KeepPackets = !v.KeepPackets
	variants["keep-packets"] = v
	v = base
	v.Faults = FaultPlan{Impairments: imps, Retries: 1}
	variants["faults"] = v
	for name, vc := range variants {
		if u(vc) == key {
			t.Errorf("%s change did not change the campaign key", name)
		}
	}
}
