package core

import (
	"math/rand"
	"runtime"
	"testing"

	"openresolver/internal/netsim"
	"openresolver/internal/paperdata"
)

// The worker-equivalence contract of the sharded engine (DESIGN.md §12):
// the campaign decomposition is a pure function of the Config, and Workers
// only schedules the fixed sub-simulations onto goroutines — so every
// worker count must produce bit-identical campaign bytes. These tests pin
// that contract directly; the golden tests pin the bytes themselves.

// workerCounts is the pinned matrix: serial, even and odd splits, a count
// above the shard count, and whatever the host happens to have.
func workerCounts() []int {
	return []int{1, 2, 3, 7, runtime.GOMAXPROCS(0)}
}

func TestSimulationWorkerEquivalence(t *testing.T) {
	for _, year := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		base := Config{Year: year, SampleShift: 14, Seed: 1, KeepPackets: true, Workers: 1}
		ds, err := RunSimulation(base)
		if err != nil {
			t.Fatal(err)
		}
		want := SimulationDigest(ds)
		for _, w := range workerCounts()[1:] {
			cfg := base
			cfg.Workers = w
			got, err := RunSimulation(cfg)
			if err != nil {
				t.Fatalf("year %v workers %d: %v", year, w, err)
			}
			if d := SimulationDigest(got); d != want {
				t.Errorf("year %v: Workers=%d diverged from Workers=1\n got %s\nwant %s", year, w, d, want)
			}
			if got.Report.RenderTableIII() != ds.Report.RenderTableIII() {
				t.Errorf("year %v: Workers=%d rendered report differs", year, w)
			}
		}
	}
}

// TestFaultWorkerEquivalence pins the same contract under the PR 3 chaos
// matrix: burst loss, duplication, reordering and corruption answered by
// the full retransmission machinery. FaultDigest extends over the fault
// pipeline's intervention counters and the prober's retransmission state,
// so a worker-dependent divergence anywhere in the impairment fork or the
// stats merge fails here.
func TestFaultWorkerEquivalence(t *testing.T) {
	imps, err := netsim.ParseImpairments("ge:0.02,0.3,0.05,0.9;dup:0.05;reorder:0.1,30ms;corrupt:0.02")
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Year: paperdata.Y2018, SampleShift: 14, Seed: 1, KeepPackets: true, Workers: 1,
		Faults: FaultPlan{
			Impairments:     imps,
			Retries:         2,
			AdaptiveTimeout: true,
			UpstreamBackoff: true,
			MaxQueuedEvents: 1 << 21,
		},
	}
	ds, err := RunSimulation(base)
	if err != nil {
		t.Fatal(err)
	}
	want := FaultDigest(ds)
	for _, w := range workerCounts()[1:] {
		cfg := base
		cfg.Workers = w
		got, err := RunSimulation(cfg)
		if err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		if d := FaultDigest(got); d != want {
			t.Errorf("Workers=%d diverged from Workers=1 under chaos\n got %s\nwant %s", w, d, want)
		}
	}
}

// TestSimulationWorkerInvarianceProperty draws random worker counts for
// random (year, seed, faults) configurations and checks each against the
// serial run of the same configuration. The pinned matrix above covers the
// interesting worker counts; this covers the configuration space.
func TestSimulationWorkerInvarianceProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(42))
	imps, err := netsim.ParseImpairments("loss:0.1;dup:0.03")
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 4; trial++ {
		year := paperdata.Y2013
		if rng.Intn(2) == 1 {
			year = paperdata.Y2018
		}
		cfg := Config{Year: year, SampleShift: 14, Seed: rng.Int63n(1000) + 1, Workers: 1}
		if rng.Intn(2) == 1 {
			cfg.Faults = FaultPlan{Impairments: imps, Retries: 1, MaxQueuedEvents: 1 << 21}
		}
		ds, err := RunSimulation(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := FaultDigest(ds)
		w := rng.Intn(2*runtime.GOMAXPROCS(0)+4) + 2
		cfg.Workers = w
		got, err := RunSimulation(cfg)
		if err != nil {
			t.Fatalf("trial %d workers %d: %v", trial, w, err)
		}
		if d := FaultDigest(got); d != want {
			t.Errorf("trial %d (year=%v seed=%d faults=%v): Workers=%d diverged\n got %s\nwant %s",
				trial, year, cfg.Seed, cfg.Faults.Impairments != nil, w, d, want)
		}
	}
}
