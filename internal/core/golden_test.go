package core

import (
	"fmt"
	"os"
	"testing"

	"openresolver/internal/netsim"
	"openresolver/internal/paperdata"
)

// The alloc-free event core (PR 2) replaced the simulator's priority queue,
// host table and prober bookkeeping wholesale. These digests were captured
// from the pre-swap implementation (container/heap + map hosts + map-keyed
// prober); RunSimulation must keep producing bit-identical campaigns — same
// Report, same netsim.Stats, same R2 packet stream — for every (year, seed)
// below. If a change legitimately alters campaign bytes, re-derive with
//
//	GOLDEN_PRINT=1 go test ./internal/core -run TestSimulationGolden -v
//
// and say so loudly in the PR: this is the determinism contract of the
// discrete-event mode.
var simulationGoldens = map[string]string{
	"2013/seed1": "b1600505aa22d76b1eb818557e9e5ed9c5a506da21478d35b3a387c93815f91f",
	"2013/seed7": "b1b6f3e3791ccbfbc8386dc0b9f814b8c94c309ed4ed8a6695f4bb654fec87f7",
	"2018/seed1": "ec56c874dccf3a38be94468f0f50ef587ac17f9f09ea4bbdb8d4eed63084a6c8",
	"2018/seed7": "fbe11384d146735785001433af916baeba3586f7445e006b7ebda78372063c50",
}

// faultGolden pins one adverse-network campaign bit-for-bit: Gilbert–
// Elliott burst loss stacked with duplication, reordering and corruption,
// answered by the full retransmission machinery (prober retries, adaptive
// RTO, upstream backoff). Everything SimulationDigest covers must stay
// stable, and so must the fault pipeline's intervention counters and the
// prober's retransmission counters — FaultDigest extends over both.
// Re-derive with GOLDEN_PRINT=1 (see above) if a change legitimately
// alters it. The sweep runner's golden test (internal/sweep) pins the same
// constant against a sweep cell configured identically — update both
// together.
const faultGolden = "14ed63b6c82d0436126bdc5ae3b549917ab5d9eb794bd455ac21ff311b510553"

func TestFaultGolden(t *testing.T) {
	imps, err := netsim.ParseImpairments("ge:0.02,0.3,0.05,0.9;dup:0.05;reorder:0.1,30ms;corrupt:0.02")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := RunSimulation(Config{
		Year: paperdata.Y2018, SampleShift: 14, Seed: 1, KeepPackets: true,
		Faults: FaultPlan{
			Impairments:     imps,
			Retries:         2,
			AdaptiveTimeout: true,
			UpstreamBackoff: true,
			MaxQueuedEvents: 1 << 21,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := FaultDigest(ds)
	if os.Getenv("GOLDEN_PRINT") != "" {
		t.Logf("fault golden: %s", got)
		return
	}
	if got != faultGolden {
		t.Errorf("fault-injection campaign diverged\n got %s\nwant %s", got, faultGolden)
	}
}

func TestSimulationGolden(t *testing.T) {
	for _, year := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		for _, seed := range []int64{1, 7} {
			key := fmt.Sprintf("%v/seed%d", year, seed)
			t.Run(key, func(t *testing.T) {
				ds, err := RunSimulation(Config{
					Year: year, SampleShift: 14, Seed: seed, KeepPackets: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				got := SimulationDigest(ds)
				if os.Getenv("GOLDEN_PRINT") != "" {
					t.Logf("golden %q: %s", key, got)
					return
				}
				want, ok := simulationGoldens[key]
				if !ok {
					t.Fatalf("no golden recorded for %q (got %s)", key, got)
				}
				if got != want {
					t.Errorf("simulation output diverged from the pre-swap implementation\n got %s\nwant %s", got, want)
				}
			})
		}
	}
}
