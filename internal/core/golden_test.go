package core

import (
	"fmt"
	"os"
	"testing"

	"openresolver/internal/netsim"
	"openresolver/internal/paperdata"
)

// The determinism contract of the discrete-event mode: RunSimulation must
// keep producing bit-identical campaigns — same Report, same netsim.Stats,
// same R2 packet stream — for every (year, seed) below. The digests were
// re-baselined once when the campaign moved to the sharded engine
// (simshard.go): the fixed sub-simulation decomposition legitimately
// changed the campaign bytes relative to the single-Sim serial engine, and
// the worker-equivalence tests (parallel_sim_test.go) now pin that the
// bytes cannot depend on Workers or the machine. If a change legitimately
// alters campaign bytes again, re-derive with
//
//	GOLDEN_PRINT=1 go test ./internal/core -run TestSimulationGolden -v
//
// and say so loudly in the PR: this is the determinism contract of the
// discrete-event mode.
var simulationGoldens = map[string]string{
	"2013/seed1": "0f53abc617db30e30ccb206cfef580431725f097ed5eeffaefdab276d73c1e06",
	"2013/seed7": "0246e1fa6b3b2754092a2fb101b82e00c9d9b8f109127807a8bbf0f4153cdf4a",
	"2018/seed1": "b1042caf93f88fcf737bab45cb5e3cda9402705884f4bf23c8a4cac7df729c33",
	"2018/seed7": "4c54edfef74eb0de84e5ba5d264030fa3a510df605e818c2b0fbb7c829047d3e",
}

// faultGolden pins one adverse-network campaign bit-for-bit: Gilbert–
// Elliott burst loss stacked with duplication, reordering and corruption,
// answered by the full retransmission machinery (prober retries, adaptive
// RTO, upstream backoff). Everything SimulationDigest covers must stay
// stable, and so must the fault pipeline's intervention counters and the
// prober's retransmission counters — FaultDigest extends over both.
// Re-derive with GOLDEN_PRINT=1 (see above) if a change legitimately
// alters it. The sweep runner's golden test (internal/sweep) pins the same
// constant against a sweep cell configured identically — update both
// together.
const faultGolden = "e0ded77dface81a22b5a7685afab9b7014aadb9cd6c243c24295dc23fc13f9df"

func TestFaultGolden(t *testing.T) {
	imps, err := netsim.ParseImpairments("ge:0.02,0.3,0.05,0.9;dup:0.05;reorder:0.1,30ms;corrupt:0.02")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := RunSimulation(Config{
		Year: paperdata.Y2018, SampleShift: 14, Seed: 1, KeepPackets: true,
		Faults: FaultPlan{
			Impairments:     imps,
			Retries:         2,
			AdaptiveTimeout: true,
			UpstreamBackoff: true,
			MaxQueuedEvents: 1 << 21,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := FaultDigest(ds)
	if os.Getenv("GOLDEN_PRINT") != "" {
		t.Logf("fault golden: %s", got)
		return
	}
	if got != faultGolden {
		t.Errorf("fault-injection campaign diverged\n got %s\nwant %s", got, faultGolden)
	}
}

func TestSimulationGolden(t *testing.T) {
	for _, year := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		for _, seed := range []int64{1, 7} {
			key := fmt.Sprintf("%v/seed%d", year, seed)
			t.Run(key, func(t *testing.T) {
				ds, err := RunSimulation(Config{
					Year: year, SampleShift: 14, Seed: seed, KeepPackets: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				got := SimulationDigest(ds)
				if os.Getenv("GOLDEN_PRINT") != "" {
					t.Logf("golden %q: %s", key, got)
					return
				}
				want, ok := simulationGoldens[key]
				if !ok {
					t.Fatalf("no golden recorded for %q (got %s)", key, got)
				}
				if got != want {
					t.Errorf("simulation output diverged from the pre-swap implementation\n got %s\nwant %s", got, want)
				}
			})
		}
	}
}
