package core

// The process-crash fault-injection harness (DESIGN.md §13). Graceful
// cancellation is tested in checkpoint_test.go; this file proves the
// stronger property: a campaign whose *process is killed* — no deferred
// cleanup, no final flush, a temp file possibly mid-write — resumes from
// its shard checkpoints and still reproduces the uninterrupted run's
// campaign digest, byte for byte, for both paper years and under the full
// chaos stack.
//
// Mechanism: the test re-executes its own binary (os.Args[0]) restricted
// to TestCrashChild, which runs the campaign with a checkpoint filesystem
// that calls os.Exit(137) at a chosen shard boundary — right after the
// k-th checkpoint rename lands, mimicking `kill -9` between shards. The
// parent restarts the child with fresh seeded-random kill points until a
// run completes, then compares the survivor's digest against an
// in-process cold run.

import (
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"testing"

	"openresolver/internal/paperdata"
)

// crashChaosSpec is the PR 3 chaos stack the matrix reuses: burst loss,
// duplication, reordering, and corruption against the full retransmission
// machinery (same stack TestFaultWorkerEquivalence pins).
const crashChaosSpec = "ge:0.02,0.3,0.05,0.9;dup:0.05;reorder:0.1,30ms;corrupt:0.02"

// crashScenarioConfig builds the campaign under test, shared verbatim by
// the parent's cold run and the child's crashing runs so the digests are
// comparable by construction.
func crashScenarioConfig(t *testing.T, year paperdata.Year, chaos bool) Config {
	cfg := Config{Year: year, SampleShift: 14, Seed: 23, KeepPackets: true}
	if chaos {
		cfg.Faults = chaosPlan(t, crashChaosSpec)
	}
	return cfg
}

// killFS crashes the process immediately after the kill-th checkpoint
// rename of this process completes — the moment a shard boundary has just
// been persisted. Exit code 137 mirrors SIGKILL; nothing downstream of
// the rename (merge, cleanup, remaining shards) runs.
type killFS struct {
	CheckpointFS
	kill    int
	renames int
}

func (f *killFS) Rename(oldpath, newpath string) error {
	if err := f.CheckpointFS.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.renames++
	if f.kill > 0 && f.renames >= f.kill {
		os.Exit(137)
	}
	return nil
}

// TestCrashChild is the subprocess body, inert unless the parent set the
// environment contract. It runs the scenario campaign with checkpointing
// into ORSIM_CRASH_DIR and a killFS armed at ORSIM_CRASH_KILL (0 = never),
// printing the final fault digest on completion.
func TestCrashChild(t *testing.T) {
	if os.Getenv("ORSIM_CRASH_CHILD") != "1" {
		t.Skip("crash-harness child; run via TestCrashMatrix")
	}
	year := paperdata.Y2013
	if os.Getenv("ORSIM_CRASH_YEAR") == "2018" {
		year = paperdata.Y2018
	}
	kill, err := strconv.Atoi(os.Getenv("ORSIM_CRASH_KILL"))
	if err != nil {
		t.Fatalf("ORSIM_CRASH_KILL: %v", err)
	}
	cfg := crashScenarioConfig(t, year, os.Getenv("ORSIM_CRASH_CHAOS") == "1")
	cfg.Checkpoints = CheckpointPlan{
		Dir: os.Getenv("ORSIM_CRASH_DIR"),
		FS:  &killFS{CheckpointFS: osCheckpointFS{}, kill: kill},
		Log: os.Stderr,
	}
	ds, err := RunSimulation(cfg)
	if err != nil {
		t.Fatalf("child campaign: %v", err)
	}
	fmt.Printf("CRASH_DIGEST %s\n", FaultDigest(ds))
}

var crashDigestRe = regexp.MustCompile(`CRASH_DIGEST ([0-9a-f]{64})`)

// TestCrashMatrix kills and resumes each scenario's campaign at
// seeded-random shard boundaries until it completes, requiring at least
// three kills along the way, and asserts the surviving digest equals an
// uninterrupted in-process run's. This is the end-to-end crash-recovery
// acceptance test: checkpoints written by a killed process — including
// whatever temp-file debris the kill left — must reconstruct the campaign
// exactly or not at all.
func TestCrashMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash matrix skipped in -short mode")
	}
	scenarios := []struct {
		name  string
		year  paperdata.Year
		chaos bool
	}{
		{"2013-pristine", paperdata.Y2013, false},
		{"2018-pristine", paperdata.Y2018, false},
		{"2018-chaos", paperdata.Y2018, true},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			cold, err := RunSimulation(crashScenarioConfig(t, sc.year, sc.chaos))
			if err != nil {
				t.Fatal(err)
			}
			want := FaultDigest(cold)

			dir := t.TempDir()
			rng := rand.New(rand.NewSource(int64(sc.year) * 1009))
			kills, digest := 0, ""
			for attempt := 0; attempt < 40 && digest == ""; attempt++ {
				// Small kill points force many distinct crash boundaries;
				// every attempt is guaranteed ≥1 shard of forward progress.
				kill := rng.Intn(3) + 1
				out, err := runCrashChild(t, sc.year, sc.chaos, dir, kill)
				if m := crashDigestRe.FindSubmatch(out); m != nil {
					digest = string(m[1])
					break
				}
				if err == nil {
					t.Fatalf("child exited cleanly without a digest:\n%s", out)
				}
				kills++
			}
			if digest == "" {
				t.Fatal("campaign never completed across 40 crash/resume attempts")
			}
			if kills < 3 {
				t.Fatalf("campaign completed after %d kills; the matrix requires ≥ 3", kills)
			}
			if digest != want {
				t.Errorf("crash-resumed campaign diverged after %d kills\n got %s\nwant %s",
					kills, digest, want)
			}
			t.Logf("recovered across %d process kills, digest %s", kills, digest[:16])
		})
	}
}

// runCrashChild re-executes the test binary restricted to TestCrashChild
// with the scenario in its environment, returning the combined output and
// the child's exit error (non-nil on a kill).
func runCrashChild(t *testing.T, year paperdata.Year, chaos bool, dir string, kill int) ([]byte, error) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$", "-test.count=1")
	cmd.Env = append(os.Environ(),
		"ORSIM_CRASH_CHILD=1",
		fmt.Sprintf("ORSIM_CRASH_YEAR=%d", year),
		fmt.Sprintf("ORSIM_CRASH_CHAOS=%s", map[bool]string{true: "1", false: "0"}[chaos]),
		"ORSIM_CRASH_DIR="+dir,
		fmt.Sprintf("ORSIM_CRASH_KILL=%d", kill),
	)
	return cmd.CombinedOutput()
}
