package core

// Shard-granular checkpoint/restore for the simulated campaign engine
// (DESIGN.md §13). A week-scale campaign (the paper's ran 7d5h) must
// survive a process crash and resume mid-campaign, not restart from zero:
// SimulatePopulation's fixed shard decomposition (simshard.go) gives
// natural checkpoint units, so every completed sub-simulation's merged
// state — accumulator, packet/fault/prober counters, captured packets, obs
// shard — is written as one self-validating file at the shard boundary,
// and a restarted campaign with the same configuration loads the completed
// shards and runs only the missing ones. The merge is identical either
// way, so a resumed campaign is byte-identical to an uninterrupted one.
//
// Every file is stamped with a campaign key (a digest of the configuration
// and the full shard plan) and a payload digest, and written atomically
// (temp + write + fsync + rename). A checkpoint that fails validation for
// any reason — torn write, short write, version or campaign mismatch — is
// discarded with a warning and its shard re-runs; corrupt state is never
// silently merged.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"openresolver/internal/analysis"
	"openresolver/internal/capture"
	"openresolver/internal/netsim"
	"openresolver/internal/obs"
	"openresolver/internal/prober"
)

// ErrInterrupted reports a campaign stopped cooperatively by its context:
// no new shards were started, in-flight shards drained and checkpointed,
// and rerunning the same configuration resumes from what completed.
var ErrInterrupted = errors.New("campaign interrupted")

// CheckpointPlan configures shard-granular checkpoint/restore for
// SimulatePopulation (simulation mode only; the synthetic engine streams
// too fast to be worth checkpointing).
type CheckpointPlan struct {
	// Dir receives one checkpoint file per completed shard
	// (shard-NNN.ckpt). Empty disables checkpointing.
	Dir string
	// FS overrides the filesystem the store writes through; nil uses the
	// real one. Tests inject torn/short/failing writers here.
	FS CheckpointFS
	// Log receives human-readable notes: shards restored, invalid
	// checkpoints discarded, write failures survived. Nil discards them.
	// Nothing written here affects campaign bytes.
	Log io.Writer
	// Keep retains the checkpoint files after a campaign completes.
	// Default is to remove them: a finished campaign's artifacts supersede
	// its checkpoints.
	Keep bool
}

// enabled reports whether the plan asks for checkpointing at all.
func (p CheckpointPlan) enabled() bool { return p.Dir != "" }

// CheckpointFS is the narrow filesystem surface the checkpoint store
// needs. The production implementation (osCheckpointFS) performs real
// atomic durable writes; fault-injection tests substitute writers that
// tear, truncate, or fail at chosen points to prove recovery.
type CheckpointFS interface {
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any previous content.
	Create(name string) (CheckpointFile, error)
	// Rename atomically replaces newpath with oldpath and makes the
	// rename durable (directory sync) where the platform supports it.
	Rename(oldpath, newpath string) error
	ReadFile(name string) ([]byte, error)
	Remove(name string) error
}

// CheckpointFile is one writable checkpoint temp file.
type CheckpointFile interface {
	io.Writer
	// Sync flushes the file's bytes to stable storage.
	Sync() error
	Close() error
}

// osCheckpointFS is the real filesystem.
type osCheckpointFS struct{}

func (osCheckpointFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osCheckpointFS) Create(name string) (CheckpointFile, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (osCheckpointFS) Rename(oldpath, newpath string) error {
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	// Make the rename itself durable: fsync the containing directory.
	// Failure here is not fatal — the data survives an orderly exit either
	// way, and the load side validates everything it reads.
	if d, err := os.Open(filepath.Dir(newpath)); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

func (osCheckpointFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osCheckpointFS) Remove(name string) error             { return os.Remove(name) }

// checkpointVersion is the on-disk format version; any change to the
// payload shape or the campaign-key recipe must bump it, invalidating
// every older checkpoint rather than misreading it.
const checkpointVersion = 1

// checkpointFile is the on-disk envelope: the format version, the campaign
// key binding the file to (configuration, shard plan), the shard index,
// and the payload guarded by its own digest. A file that fails any of
// these checks is treated as absent.
type checkpointFile struct {
	Version  int             `json:"version"`
	Campaign string          `json:"campaign"`
	Shard    int             `json:"shard"`
	SHA256   string          `json:"payload_sha256"`
	Payload  json.RawMessage `json:"payload"`
}

// shardCheckpoint is the serialized form of one completed sub-simulation —
// exactly the fields mergeSimShards folds, so a restored shard merges
// indistinguishably from a freshly run one.
type shardCheckpoint struct {
	Acc           *analysis.AccumulatorState `json:"acc"`
	NetStats      netsim.Stats               `json:"net_stats"`
	FaultStats    netsim.FaultStats          `json:"fault_stats"`
	ProbeStats    prober.Stats               `json:"probe_stats"`
	Sent          uint64                     `json:"sent"`
	Reused        uint64                     `json:"reused"`
	Clusters      int                        `json:"clusters"`
	DurationNanos int64                      `json:"duration_nanos"`
	ProbeCounters capture.Counters           `json:"probe_counters"`
	AuthCounters  capture.Counters           `json:"auth_counters"`
	R2Packets     []capture.Packet           `json:"r2_packets,omitempty"`
	AuthPackets   []capture.Packet           `json:"auth_packets,omitempty"`
	Obs           *obs.ShardState            `json:"obs,omitempty"`
}

// checkpointStore writes and validates the per-shard checkpoint files of
// one campaign. Writes happen concurrently from shard workers (distinct
// files); the log writer is the only shared mutable state and is guarded.
type checkpointStore struct {
	fs   CheckpointFS
	dir  string
	key  string
	keep bool

	mu   sync.Mutex
	logw io.Writer
}

// checkpointCampaignKey digests everything that shapes the campaign's
// bytes: the configuration scalars, the fault plan (impairments by their
// canonical configuration description — never pointer identity), and the
// complete shard plan. Checkpoints written under a different key are
// invalid by construction: resuming a 2013 campaign with 2018 checkpoints,
// or after a shard-plan change, reruns everything instead of merging
// mismatched state.
func checkpointCampaignKey(cfg Config, shards []simShard) string {
	h := sha256.New()
	fmt.Fprintf(h, "ckpt v%d year=%d shift=%d seed=%d pps=%d keep=%t\n",
		checkpointVersion, cfg.Year, cfg.SampleShift, cfg.Seed, cfg.pps(), cfg.KeepPackets)
	fmt.Fprintf(h, "retries=%d adaptive=%t backoff=%t maxev=%d imps=%s\n",
		cfg.Faults.Retries, cfg.Faults.AdaptiveTimeout, cfg.Faults.UpstreamBackoff,
		cfg.Faults.MaxQueuedEvents, netsim.DescribeImpairments(cfg.Faults.Impairments))
	for _, sh := range shards {
		fmt.Fprintf(h, "shard %d [%d,%d) clusters=%d+%d pps=%d\n",
			sh.index, sh.start, sh.end, sh.firstCluster, sh.clusterSpan, sh.pps)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// openCheckpointStore prepares the campaign's checkpoint directory.
func openCheckpointStore(plan CheckpointPlan, cfg Config, shards []simShard) (*checkpointStore, error) {
	fs := plan.FS
	if fs == nil {
		fs = osCheckpointFS{}
	}
	if err := fs.MkdirAll(plan.Dir); err != nil {
		return nil, fmt.Errorf("core: checkpoint dir: %w", err)
	}
	logw := plan.Log
	if logw == nil {
		logw = io.Discard
	}
	return &checkpointStore{
		fs:   fs,
		dir:  plan.Dir,
		key:  checkpointCampaignKey(cfg, shards),
		keep: plan.Keep,
		logw: logw,
	}, nil
}

func (s *checkpointStore) path(shard int) string {
	return filepath.Join(s.dir, fmt.Sprintf("shard-%03d.ckpt", shard))
}

// logf serializes warning output across concurrent shard workers.
func (s *checkpointStore) logf(format string, args ...any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.logw, format, args...)
}

// marshalShardEnvelope serializes one completed shard as the
// self-validating checkpoint envelope: the versioned checkpointFile
// wrapper binding (campaign key, shard index) around the digest-stamped
// payload. The same bytes serve two transports — the checkpoint store
// renames them into shard-NNN.ckpt, and the distributed fabric carries
// them verbatim inside a RESULT frame — so one validator guards both.
func marshalShardEnvelope(key string, shard int, run *simShardRun) ([]byte, error) {
	payload, err := json.Marshal(&shardCheckpoint{
		Acc:           run.acc.State(),
		NetStats:      run.netStats,
		FaultStats:    run.faultStats,
		ProbeStats:    run.probeStats,
		Sent:          run.sent,
		Reused:        run.reused,
		Clusters:      run.clusters,
		DurationNanos: int64(run.duration),
		ProbeCounters: run.probeCounters,
		AuthCounters:  run.authCounters,
		R2Packets:     run.r2,
		AuthPackets:   run.authPackets,
		Obs:           run.obs.State(),
	})
	if err != nil {
		return nil, err
	}
	sum := sha256.Sum256(payload)
	return json.Marshal(&checkpointFile{
		Version:  checkpointVersion,
		Campaign: key,
		Shard:    shard,
		SHA256:   hex.EncodeToString(sum[:]),
		Payload:  payload,
	})
}

// restoreShardRun rebuilds a mergeable shard run from a validated
// checkpoint payload, feeding the checkpointed observability state into
// msh. The restored run carries exactly the fields mergeSimShards folds,
// so it merges indistinguishably from a freshly executed one.
func restoreShardRun(accCfg analysis.Config, ck *shardCheckpoint, msh *obs.Shard) *simShardRun {
	run := &simShardRun{
		acc:           analysis.NewAccumulatorFromState(accCfg, ck.Acc),
		probeCounters: ck.ProbeCounters,
		authCounters:  ck.AuthCounters,
		r2:            ck.R2Packets,
		authPackets:   ck.AuthPackets,
		netStats:      ck.NetStats,
		faultStats:    ck.FaultStats,
		probeStats:    ck.ProbeStats,
		sent:          ck.Sent,
		reused:        ck.Reused,
		clusters:      ck.Clusters,
		duration:      time.Duration(ck.DurationNanos),
		obs:           msh,
	}
	msh.LoadState(ck.Obs)
	return run
}

// write persists one completed shard atomically: marshal, digest-stamp,
// write to a temp file, fsync, rename into place. A write failure is
// survivable by design — the campaign continues and only resumability of
// this one shard is lost — so errors are logged, the temp file is removed
// best-effort, and nothing propagates into the campaign result.
func (s *checkpointStore) write(shard int, run *simShardRun) {
	data, err := marshalShardEnvelope(s.key, shard, run)
	if err != nil {
		s.logf("core: checkpoint shard %d: marshal: %v (continuing without)\n", shard, err)
		return
	}
	s.writeRaw(shard, data)
}

// writeRaw persists pre-marshaled envelope bytes for one shard. The fabric
// coordinator feeds RESULT envelopes through here unchanged — they are the
// identical byte format — making distributed campaigns exactly as
// crash-resumable as local ones.
func (s *checkpointStore) writeRaw(shard int, data []byte) {
	path := s.path(shard)
	tmp := path + ".tmp"
	if err := s.writeTemp(tmp, data); err != nil {
		s.logf("core: checkpoint shard %d: %v (continuing without)\n", shard, err)
		_ = s.fs.Remove(tmp)
		return
	}
	if err := s.fs.Rename(tmp, path); err != nil {
		s.logf("core: checkpoint shard %d: rename: %v (continuing without)\n", shard, err)
		_ = s.fs.Remove(tmp)
	}
}

// writeTemp writes data durably to tmp, detecting short writes.
func (s *checkpointStore) writeTemp(tmp string, data []byte) error {
	f, err := s.fs.Create(tmp)
	if err != nil {
		return err
	}
	n, err := f.Write(data)
	if err == nil && n < len(data) {
		err = io.ErrShortWrite
	}
	if err != nil {
		_ = f.Close()
		return fmt.Errorf("write: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	return nil
}

// load validates and restores shard's checkpoint. A missing file is a
// silent "not checkpointed"; anything present-but-invalid (truncated,
// digest mismatch, wrong version/campaign/shard) is logged, removed
// best-effort, and reported as not restorable — the shard re-runs. msh,
// when non-nil, receives the checkpointed observability state.
func (s *checkpointStore) load(shard int, accCfg analysis.Config, msh *obs.Shard) (*simShardRun, bool) {
	path := s.path(shard)
	data, err := s.fs.ReadFile(path)
	if err != nil {
		if !errors.Is(err, os.ErrNotExist) {
			s.logf("core: checkpoint shard %d: read: %v; rerunning shard\n", shard, err)
		}
		return nil, false
	}
	ck, err := validateShardEnvelope(s.key, shard, data)
	if err != nil {
		s.logf("core: checkpoint shard %d: %v; rerunning shard\n", shard, err)
		_ = s.fs.Remove(path)
		return nil, false
	}
	run := restoreShardRun(accCfg, ck, msh)
	s.logf("core: shard %d restored from checkpoint\n", shard)
	return run, true
}

// validateShardEnvelope checks one envelope's integrity in layers —
// well-formed wrapper, format version, campaign key, shard index, payload
// digest, decodable payload — and returns the decoded payload. It guards
// both transports of the envelope format: checkpoint files read back from
// disk and RESULT frames received from fabric workers.
func validateShardEnvelope(key string, shard int, data []byte) (*shardCheckpoint, error) {
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return nil, fmt.Errorf("invalid checkpoint (torn or truncated write): %v", err)
	}
	if cf.Version != checkpointVersion {
		return nil, fmt.Errorf("checkpoint version %d, want %d", cf.Version, checkpointVersion)
	}
	if cf.Campaign != key {
		return nil, errors.New("checkpoint belongs to a different campaign configuration or shard plan")
	}
	if cf.Shard != shard {
		return nil, fmt.Errorf("checkpoint names shard %d", cf.Shard)
	}
	sum := sha256.Sum256(cf.Payload)
	if hex.EncodeToString(sum[:]) != cf.SHA256 {
		return nil, errors.New("checkpoint payload digest mismatch (torn write)")
	}
	var ck shardCheckpoint
	if err := json.Unmarshal(cf.Payload, &ck); err != nil {
		return nil, fmt.Errorf("checkpoint payload: %v", err)
	}
	if ck.Acc == nil {
		return nil, errors.New("checkpoint payload missing accumulator state")
	}
	return &ck, nil
}

// clear removes the campaign's checkpoint files after a successful merge
// (unless the plan keeps them). Best-effort: a file that cannot be removed
// is left behind and would be revalidated — and found stale or re-merged
// identically — by any later resume.
func (s *checkpointStore) clear(n int) {
	if s.keep {
		return
	}
	for i := 0; i < n; i++ {
		err := s.fs.Remove(s.path(i))
		if err != nil && !errors.Is(err, os.ErrNotExist) {
			s.logf("core: checkpoint shard %d: remove: %v\n", i, err)
		}
	}
	// Remove the directory when empty; harmless to fail (e.g. shared dir).
	_ = os.Remove(s.dir)
}

// ctx returns the campaign's cancellation context.
func (c Config) ctx() context.Context {
	if c.Ctx != nil {
		return c.Ctx
	}
	return context.Background()
}
