package core

import (
	"reflect"
	"runtime"
	"testing"

	"openresolver/internal/behavior"
	"openresolver/internal/paperdata"
	"openresolver/internal/population"
	"openresolver/internal/threatintel"
)

func TestProbeQIDWrapsExplicitly(t *testing.T) {
	// The serial engine historically incremented a bare uint16 starting at
	// zero: probe 0 carries ID 1 and the ID passes through 0 every 65,536
	// probes. ProbeQID must reproduce that sequence from the global index.
	cases := []struct {
		idx  uint64
		want uint16
	}{
		{0, 1}, {1, 2}, {65534, 65535}, {65535, 0}, {65536, 1},
		{2*65536 - 1, 0}, {2 * 65536, 1}, {10*65536 + 41, 42},
	}
	for _, c := range cases {
		if got := ProbeQID(c.idx); got != c.want {
			t.Errorf("ProbeQID(%d) = %d, want %d", c.idx, got, c.want)
		}
	}
	// Against the reference serial increment over a full wrap.
	var qid uint16
	for i := uint64(0); i < 3*65536+17; i++ {
		qid++
		if got := ProbeQID(i); got != qid {
			t.Fatalf("ProbeQID(%d) = %d, serial increment gives %d", i, got, qid)
		}
	}
}

func TestSyntheticWorkersDeterministic(t *testing.T) {
	// The acceptance invariant of the parallel engine: RunSynthetic with
	// Workers N is deep-equal to Workers 1 for the same (config, seed),
	// for both campaign years.
	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		base := Config{Year: y, SampleShift: 8, Seed: 5, Workers: 1}
		serial, err := RunSynthetic(base)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 7, 13, runtime.GOMAXPROCS(0)} {
			cfg := base
			cfg.Workers = workers
			par, err := RunSynthetic(cfg)
			if err != nil {
				t.Fatalf("year %d workers %d: %v", y, workers, err)
			}
			if !reflect.DeepEqual(serial.Report, par.Report) {
				t.Errorf("year %d: report with %d workers differs from serial", y, workers)
			}
			if serial.ClustersUsed != par.ClustersUsed {
				t.Errorf("year %d workers %d: clusters %d vs %d",
					y, workers, par.ClustersUsed, serial.ClustersUsed)
			}
		}
	}
}

func TestSyntheticWorkersDefaultsToAllCores(t *testing.T) {
	// Workers 0 (the default) must behave like GOMAXPROCS workers and still
	// match the serial report.
	cfg := Config{Year: paperdata.Y2018, SampleShift: 9, Seed: 11}
	def, err := RunSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 1
	serial, err := RunSynthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(def.Report, serial.Report) {
		t.Error("default-workers report differs from serial")
	}
}

func TestSyntheticMoreWorkersThanProbes(t *testing.T) {
	// A tiny population with a huge worker count: shards clamp to the
	// probe count and empty shards are never planned.
	feed := threatintel.NewFeed(paperdata.Y2018, 3)
	pop := &population.Population{
		Year:  paperdata.Y2018,
		Shift: 12,
		Cohorts: []population.Cohort{
			{Count: 3, Class: population.ClassCorrect,
				Profile: behavior.Honest(1)},
		},
		ExpectedR2: 3,
	}
	ds, err := SynthesizePopulation(
		Config{Year: paperdata.Y2018, SampleShift: 12, Seed: 3, Workers: 64},
		pop, feed.DB)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Report.Correctness.R2 != 3 {
		t.Errorf("analyzed %d probes, want 3", ds.Report.Correctness.R2)
	}
}

func TestPlanShardsCoversEveryProbeOnce(t *testing.T) {
	pop, _, _, _, err := buildDeps(Config{Year: paperdata.Y2018, SampleShift: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, c := range pop.Cohorts {
		total += c.Count
	}
	for _, n := range []int{1, 2, 3, 8, 31} {
		plans := planShards(pop, total, n)
		if len(plans) != n {
			t.Fatalf("n=%d: %d plans", n, len(plans))
		}
		var covered uint64
		var unpinned uint64
		byCountry := map[string]uint64{}
		for i, p := range plans {
			if p.start != covered {
				t.Fatalf("n=%d shard %d: start %d, want %d", n, i, p.start, covered)
			}
			if p.end < p.start {
				t.Fatalf("n=%d shard %d: inverted range", n, i)
			}
			// The prefix sums must equal the assignments made by all
			// preceding shards, tracked here by replaying cohort spans.
			if p.unpinned != unpinned {
				t.Fatalf("n=%d shard %d: unpinned prefix %d, want %d", n, i, p.unpinned, unpinned)
			}
			for k, v := range p.byCountry {
				if byCountry[k] != v {
					t.Fatalf("n=%d shard %d: country %s prefix %d, want %d", n, i, k, v, byCountry[k])
				}
			}
			for k, v := range byCountry {
				if p.byCountry[k] != v {
					t.Fatalf("n=%d shard %d: country %s prefix missing (want %d)", n, i, k, v)
				}
			}
			// Replay this shard's assignments.
			g := p.start
			ci, off := p.cohort, p.offset
			for g < p.end {
				c := &pop.Cohorts[ci]
				take := c.Count - off
				if take > p.end-g {
					take = p.end - g
				}
				if c.Country == "" {
					unpinned += take
				} else {
					byCountry[c.Country] += take
				}
				g += take
				off += take
				if off == c.Count {
					ci, off = ci+1, 0
				}
			}
			covered = p.end
		}
		if covered != total {
			t.Fatalf("n=%d: covered %d of %d probes", n, covered, total)
		}
	}
}
