// Package core is the public API of the reproduction: it assembles the
// substrates (network simulator, DNS hierarchy, resolver population,
// prober, threat intelligence, geolocation) into complete measurement
// campaigns and produces the paper's full analysis report.
//
// Two execution modes share one analysis pipeline:
//
//   - RunSimulation executes the campaign end to end on the discrete-event
//     network: the prober actually scans the (sampled) address space, open
//     resolvers actually recurse through root → TLD → authoritative
//     servers, and every R2 is a real packet captured at the prober. Run it
//     at SampleShift ≥ 6; a full-scale simulation would need millions of
//     live hosts. Config.Faults applies here: the network is built with
//     the plan's impairments and the prober and resolver population get
//     its retransmission knobs (DESIGN.md §8). The campaign decomposes
//     into a fixed set of private sub-simulations scheduled over
//     Config.Workers goroutines and merged in shard order — byte-identical
//     for every worker count (DESIGN.md §12).
//
//   - RunSynthetic streams the population's responses directly into the
//     analysis pipeline as encoded wire packets, in constant memory, which
//     makes the full-scale (SampleShift 0) campaign feasible and exact.
//     Config.Workers fans the stream out over shard workers whose merged
//     result is provably identical to the serial walk (DESIGN.md §2).
//
// Both modes accept an optional obs.Registry (Config.Obs) that receives
// the campaign's observability stream — phase spans for every stage, one
// metrics shard per worker, and the virtual-vs-wall clock ratio — without
// perturbing the campaign itself: metrics are write-only and the metrics
// golden tests pin instrumented runs to the uninstrumented digests
// (DESIGN.md §9).
package core
