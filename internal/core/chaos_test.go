package core

import (
	"testing"

	"openresolver/internal/netsim"
)

// chaosPlan builds the fault plan used by the matrix: the impairment spec
// goes through the same ParseImpairments grammar the CLIs expose, and the
// full retransmission machinery (prober retries, adaptive RTO, upstream
// backoff) runs on top so every scenario exercises both halves of the
// robustness layer. MaxQueuedEvents is the queue-blowup tripwire: if an
// impairment/retry combination fed back into unbounded event growth,
// sim.Run would fail the run instead of silently ballooning.
func chaosPlan(t *testing.T, spec string) FaultPlan {
	t.Helper()
	imps, err := netsim.ParseImpairments(spec)
	if err != nil {
		t.Fatalf("ParseImpairments(%q): %v", spec, err)
	}
	return FaultPlan{
		Impairments:     imps,
		Retries:         3,
		AdaptiveTimeout: true,
		UpstreamBackoff: true,
		MaxQueuedEvents: 1 << 21,
	}
}

// checkInvariants asserts the accounting identities every campaign must
// satisfy no matter how hostile the network: packet conservation through
// the impairment pipeline, Table III internal consistency, and agreement
// between the prober's counters and the report's campaign row.
func checkInvariants(t *testing.T, ds *Dataset) {
	t.Helper()
	st, fs, ps := ds.NetStats, ds.FaultStats, ds.ProbeStats
	// Every submitted packet is delivered, dropped, or unroutable; network
	// duplicates add deliveries without a matching send.
	if got, want := st.Delivered+st.Lost+st.NoRoute, st.Sent+fs.Duplicated; got != want {
		t.Errorf("packet conservation broken: delivered+lost+noroute = %d, sent+duplicated = %d", got, want)
	}
	c := ds.Report.Correctness
	if c.R2 != c.Without+c.Correct+c.Incorr {
		t.Errorf("Table III does not sum: R2=%d, W/O=%d + corr=%d + incorr=%d", c.R2, c.Without, c.Correct, c.Incorr)
	}
	var rcodes uint64
	for i := range ds.Report.Rcode.With {
		rcodes += ds.Report.Rcode.With[i] + ds.Report.Rcode.Without[i]
	}
	if rcodes > c.R2 {
		t.Errorf("Table VI counts %d packets, more than the %d analyzed R2s", rcodes, c.R2)
	}
	if got := uint64(len(ds.R2Packets)); ds.Config.KeepPackets && ds.Report.Campaign.R2 != got {
		t.Errorf("campaign R2=%d but %d packets captured", ds.Report.Campaign.R2, got)
	}
	if ds.Report.Campaign.Q1 != ps.Sent {
		t.Errorf("campaign Q1=%d but prober sent %d (retransmits must not inflate Q1)", ds.Report.Campaign.Q1, ps.Sent)
	}
	if ps.Answered > ps.Sent {
		t.Errorf("answered %d of %d sent probes", ps.Answered, ps.Sent)
	}
}

// TestChaosMatrix runs the full simulated campaign under every impairment
// class and a stacked combination, asserting that each scenario (a) is
// bit-identical across repeat runs with the same seed, (b) keeps the
// report's accounting identities intact, (c) actually fires its impairment
// (the counters prove the faults were exercised, not parsed and ignored),
// and (d) never trips the bounded event queue.
func TestChaosMatrix(t *testing.T) {
	scenarios := []struct {
		name  string
		spec  string
		fired func(netsim.FaultStats) bool
	}{
		{"iid-loss", "loss:0.2", func(f netsim.FaultStats) bool { return f.LossDrops > 0 }},
		{"ge-burst", "ge:0.05,0.2,0.125,1.0", func(f netsim.FaultStats) bool { return f.BurstDrops > 0 }},
		{"duplication", "dup:0.3", func(f netsim.FaultStats) bool { return f.Duplicated > 0 }},
		{"reordering", "reorder:0.5,40ms", func(f netsim.FaultStats) bool { return f.Reordered > 0 }},
		{"corruption", "corrupt:0.3", func(f netsim.FaultStats) bool { return f.Corrupted > 0 }},
		{"blackhole", "blackhole:11.0.0.0/8", func(f netsim.FaultStats) bool { return f.Blackholed > 0 }},
		{"brownout", "brownout:2s,30s,0.9", func(f netsim.FaultStats) bool { return f.BrownedOut > 0 }},
		{
			"stacked",
			"ge:0.05,0.2,0.125,1.0;dup:0.1;reorder:0.2,40ms;corrupt:0.05;brownout:5s,20s,0.8",
			func(f netsim.FaultStats) bool {
				return f.BurstDrops > 0 && f.Duplicated > 0 && f.Reordered > 0 &&
					f.Corrupted > 0 && f.BrownedOut > 0
			},
		},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			run := func() *Dataset {
				ds, err := RunSimulation(Config{
					Year: 2018, SampleShift: 16, Seed: 1, KeepPackets: true,
					Faults: chaosPlan(t, sc.spec),
				})
				if err != nil {
					t.Fatal(err)
				}
				return ds
			}
			ds := run()
			checkInvariants(t, ds)
			if !sc.fired(ds.FaultStats) {
				t.Errorf("impairment never fired: %+v", ds.FaultStats)
			}
			if again := run(); SimulationDigest(again) != SimulationDigest(ds) {
				t.Error("repeat run with identical (config, seed) diverged")
			}
		})
	}
}

// TestChaosRecoveryAcceptance is the headline robustness claim: under 30%
// mean Gilbert–Elliott burst loss the retransmitting prober recovers at
// least 95% of the responses a loss-free campaign collects, while the
// paper's single-shot design shows the expected large shortfall on the
// same impaired network. The retransmission counters must surface in the
// dataset so a report consumer can see how the recovery was bought.
func TestChaosRecoveryAcceptance(t *testing.T) {
	run := func(spec string, retries int) *Dataset {
		var plan FaultPlan
		if spec != "" {
			imps, err := netsim.ParseImpairments(spec)
			if err != nil {
				t.Fatal(err)
			}
			plan.Impairments = imps
		}
		plan.Retries = retries
		plan.UpstreamBackoff = retries > 0
		plan.MaxQueuedEvents = 1 << 21
		ds, err := RunSimulation(Config{
			Year: 2018, SampleShift: 16, Seed: 1, Faults: plan,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}

	// πbad = 0.05/(0.05+0.2) = 0.2; mean loss = 0.2·1.0 + 0.8·0.125 = 30%,
	// arriving in bursts of mean length 1/0.2 = 5 packets.
	const ge = "ge:0.05,0.2,0.125,1.0"

	baseline := run("", 0)
	recovered := run(ge, 5)
	singleShot := run(ge, 0)

	base := baseline.ProbeStats.Answered
	if base == 0 {
		t.Fatal("loss-free campaign answered nothing")
	}
	if got := recovered.ProbeStats.Answered; got*100 < base*95 {
		t.Errorf("retransmission recovered %d of %d loss-free responses (<95%%)", got, base)
	}
	if got := singleShot.ProbeStats.Answered; got*100 > base*75 {
		t.Errorf("single-shot under 30%% burst loss answered %d of %d — expected a paper-style shortfall", got, base)
	}

	if recovered.ProbeStats.Retransmits == 0 {
		t.Error("recovery run recorded no retransmissions")
	}
	if fs := recovered.FaultStats; fs.BurstDrops == 0 && fs.LossDrops == 0 {
		t.Errorf("GE model dropped nothing: %+v", fs)
	}
	if singleShot.ProbeStats.Retransmits != 0 || singleShot.ProbeStats.GaveUp != 0 {
		t.Errorf("single-shot run has retransmission counters: %+v", singleShot.ProbeStats)
	}
	for _, ds := range []*Dataset{baseline, recovered, singleShot} {
		checkInvariants(t, ds)
	}
}
