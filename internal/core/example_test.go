package core_test

import (
	"fmt"

	"openresolver/internal/core"
	"openresolver/internal/paperdata"
)

func ExampleRunSynthetic() {
	// A 1/1024-scale 2018 campaign: the compiled population streams
	// through the analysis pipeline as real DNS packets.
	ds, err := core.RunSynthetic(core.Config{
		Year:        paperdata.Y2018,
		SampleShift: 10,
		Seed:        1,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	r := ds.Report.Correctness
	fmt.Printf("responses %d, incorrect %d, error rate %.1f%%\n",
		r.R2, r.Incorr, r.ErrPct())
	// Output: responses 6353, incorrect 108, error rate 3.9%
}
