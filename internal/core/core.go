package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"openresolver/internal/analysis"
	"openresolver/internal/behavior"
	"openresolver/internal/capture"
	"openresolver/internal/classify"
	"openresolver/internal/dnssrv"
	"openresolver/internal/dnswire"
	"openresolver/internal/geo"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
	"openresolver/internal/obs"
	"openresolver/internal/paperdata"
	"openresolver/internal/population"
	"openresolver/internal/prober"
	"openresolver/internal/scan"
	"openresolver/internal/threatintel"
)

// Infrastructure addresses of the measurement (outside every reserved
// block; excluded from probing like the paper's own systems).
var (
	// ProberAddr hosts the modified-ZMap prober (a campus address, as in
	// the paper's UCF deployment).
	ProberAddr = ipv4.MustParseAddr("132.170.3.9")
	// RootAddr stands in for the root name-server infrastructure.
	RootAddr = ipv4.MustParseAddr("198.41.0.4")
	// TLDAddr stands in for the .net gTLD servers.
	TLDAddr = ipv4.MustParseAddr("192.5.6.30")
	// AuthAddr is the controlled authoritative server (a cloud instance in
	// the paper).
	AuthAddr = ipv4.MustParseAddr("45.76.1.10")
)

// Config parameterizes a campaign run.
type Config struct {
	// Year selects the 2013 or 2018 campaign model.
	Year paperdata.Year
	// SampleShift scales the universe and population to 1/2^SampleShift.
	SampleShift uint8
	// Seed drives all randomness.
	Seed int64
	// PacketsPerSec overrides the campaign's probe rate (0 = paper value).
	PacketsPerSec uint64
	// KeepPackets retains raw R2 packets in the dataset (simulation mode).
	KeepPackets bool
	// Workers sets the campaign's parallelism. Synthetic mode splits the
	// population into contiguous probe-index shards, each processed by one
	// worker against its own accumulator, with the shard accumulators
	// merged in shard order (prefix-sum-seeded assigner cursors; DESIGN.md
	// §2). Simulation mode schedules the campaign's fixed set of private
	// sub-simulations — contiguous probe-range shards with disjoint
	// subdomain-cluster namespaces and proportional rate slices (DESIGN.md
	// §12) — over a pool of Workers goroutines. In both modes the
	// decomposition is a function of the configuration alone, so the report
	// is byte-identical for every value. 0 uses runtime.GOMAXPROCS(0); 1
	// runs serially.
	Workers int
	// Faults configures adverse-network fault injection and the adaptive
	// retransmission machinery (simulation mode only; the zero value is a
	// pristine network with the paper's single-shot prober).
	Faults FaultPlan
	// Obs, when non-nil, receives the campaign's observability stream:
	// phase spans for every stage, one metrics shard per worker (in
	// simulation mode, one per sub-simulation, registered in shard order),
	// and the virtual-vs-wall clock ratio. Metrics never influence the
	// campaign — reports are bit-identical with Obs attached (pinned by
	// the metrics golden test).
	Obs *obs.Registry
	// Ctx, when non-nil, allows cooperative cancellation. A cancelled
	// campaign stops dispatching work at the next shard boundary
	// (simulation mode) or probe batch (synthetic mode), drains what is in
	// flight — checkpointing it when Checkpoints is configured — and
	// returns ErrInterrupted. Nil means run to completion.
	Ctx context.Context
	// Checkpoints configures shard-granular checkpoint/restore for
	// simulation-mode campaigns (DESIGN.md §13): every completed
	// sub-simulation is persisted atomically, and a rerun with the same
	// configuration and checkpoint directory resumes from the completed
	// shards, producing byte-identical output. The zero value disables
	// checkpointing.
	Checkpoints CheckpointPlan
}

// FaultPlan wires the fault-injection layer and the retransmission engines
// through a simulated campaign (DESIGN.md §8).
type FaultPlan struct {
	// Impairments degrade the network (netsim's composable fault pipeline:
	// burst loss, duplication, reordering, corruption, blackholes,
	// brownouts — see netsim.ParseImpairments for the CLI spec grammar).
	Impairments []netsim.Impairment
	// Retries is the prober's per-probe retransmission budget.
	Retries int
	// AdaptiveTimeout replaces the prober's fixed 2s timeout with the
	// Jacobson/Karn RTO estimator.
	AdaptiveTimeout bool
	// UpstreamBackoff hardens every resolver's recursion engine: upstream
	// retries back off exponentially with jitter instead of re-firing on a
	// fixed interval.
	UpstreamBackoff bool
	// MaxQueuedEvents bounds the simulator's event queue — the safety
	// valve the chaos tests use to prove impairments cannot feed back into
	// queue blowup. 0 means unbounded.
	MaxQueuedEvents int
}

// pristine reports whether the plan changes anything at all.
func (f FaultPlan) pristine() bool {
	return len(f.Impairments) == 0 && f.Retries == 0 && !f.AdaptiveTimeout &&
		!f.UpstreamBackoff && f.MaxQueuedEvents == 0
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) pps() uint64 {
	if c.PacketsPerSec > 0 {
		return c.PacketsPerSec
	}
	return paperdata.Campaigns[c.Year].PacketsPerSec
}

// scaledClusterSize returns the subdomain-cluster size at the run's scale.
func (c Config) scaledClusterSize() int {
	s := paperdata.ClusterSize >> c.SampleShift
	if s < 16 {
		s = 16
	}
	return s
}

// sendSkip returns the modeled 2013 send-loss probability (discrepancy D2).
func (c Config) sendSkip() float64 {
	if c.Year != paperdata.Y2013 {
		return 0
	}
	allowed := float64(paperdata.Campaigns[paperdata.Y2018].Q1)
	return 1 - float64(paperdata.Campaigns[paperdata.Y2013].Q1)/allowed
}

// Dataset is the outcome of one campaign.
type Dataset struct {
	Config Config
	// Report carries every regenerated table.
	Report *analysis.Report
	// Population is the compiled resolver population the campaign ran
	// against.
	Population *population.Population
	// ClustersUsed counts subdomain clusters consumed (§III-B).
	ClustersUsed int
	// SubdomainsReused counts pool returns (simulation mode).
	SubdomainsReused uint64
	// NetStats are the simulator's packet counters (simulation mode).
	NetStats netsim.Stats
	// FaultStats count the impairment pipeline's interventions (simulation
	// mode; all zero on a pristine network).
	FaultStats netsim.FaultStats
	// ProbeStats is the prober's counter snapshot, including the
	// retransmission engine's retransmit/late/duplicate/gave-up counters
	// (simulation mode).
	ProbeStats prober.Stats
	// R2Packets are the raw captured responses (KeepPackets only).
	R2Packets []capture.Packet
	// Roles classifies every responder by correlating the prober and
	// authoritative captures (simulation mode with KeepPackets only).
	Roles *classify.Summary
}

// buildDeps constructs the shared dependencies of both modes.
func buildDeps(cfg Config) (*population.Population, *threatintel.Feed, *geo.Registry, *scan.Universe, error) {
	feed := threatintel.NewFeed(cfg.Year, cfg.Seed)
	pop, err := population.Build(population.Config{
		Year: cfg.Year, SampleShift: cfg.SampleShift, Seed: cfg.Seed, Feed: feed,
	})
	if err != nil {
		return nil, nil, nil, nil, err
	}
	reg := geo.DefaultRegistry()
	u, err := scan.NewUniverse(uint64(cfg.Seed), cfg.SampleShift, ipv4.NewReservedBlocklist())
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return pop, feed, reg, u, nil
}

// RunSynthetic streams the full campaign through the analysis pipeline:
// every response is encoded to wire format and decoded back by the
// analyzer, exercising the identical classification path as the simulation.
func RunSynthetic(cfg Config) (*Dataset, error) {
	pop, feed, _, _, err := buildDeps(cfg)
	if err != nil {
		return nil, err
	}
	return SynthesizePopulation(cfg, pop, feed.DB)
}

// SynthesizePopulation streams an arbitrary compiled population through
// the analysis pipeline. threat must cover every malicious address the
// population answers with (for mixed populations, merge the years' feeds).
// It is the engine behind RunSynthetic and the drift-monitoring extension.
func SynthesizePopulation(cfg Config, pop *population.Population, threat *threatintel.DB) (*Dataset, error) {
	if !cfg.Faults.pristine() {
		return nil, fmt.Errorf("core: fault injection requires simulation mode (the synthetic engine has no network to impair)")
	}
	tr := cfg.Obs.Tracer()
	sp := tr.Begin("scan-universe")
	reg := geo.DefaultRegistry()
	u, err := scan.NewUniverse(uint64(cfg.Seed), cfg.SampleShift, ipv4.NewReservedBlocklist())
	if err != nil {
		return nil, err
	}
	assigner, err := population.NewAssigner(u, reg, pop, ProberAddr, RootAddr, TLDAddr, AuthAddr)
	if err != nil {
		return nil, err
	}
	tr.End(sp)
	clusterSize := cfg.scaledClusterSize()
	sp = tr.Begin("synthesize")
	acc, err := synthesize(cfg, pop, threat, reg, assigner, clusterSize)
	if err != nil {
		return nil, err
	}
	tr.End(sp)

	sp = tr.Begin("report")
	camp := syntheticCampaignCounts(cfg, pop, clusterSize)
	ds := &Dataset{
		Config:       cfg,
		Report:       acc.Report(camp),
		Population:   pop,
		ClustersUsed: int((pop.ExpectedR2 + uint64(clusterSize) - 1) / uint64(clusterSize)),
	}
	tr.End(sp)
	return ds, nil
}

// ProbeQID returns the DNS transaction ID of the probe at zero-based
// global index i. IDs start at 1 and wrap modulo 2^16 — i.e. every 65,536
// probes the ID passes through 0 — exactly reproducing the serial engine's
// historical bare uint16 increment. Making the wrap explicit gives shards
// a well-defined starting ID derived from their global offset alone; the
// helper is shared by the serial and parallel paths so they cannot drift.
func ProbeQID(i uint64) uint16 {
	return uint16((i + 1) & 0xFFFF)
}

// shardPlan describes one worker's contiguous slice of the campaign: the
// global probe-index range it synthesizes, where that range starts in the
// cohort list, and how many assignments of each kind precede it — the
// prefix sums that seed the worker's assigner cursors so it draws exactly
// the source addresses the serial walk would have drawn for the range.
type shardPlan struct {
	start, end uint64 // global probe indexes [start, end)
	cohort     int    // index of the cohort containing start
	offset     uint64 // probes into that cohort at start
	unpinned   uint64 // unconstrained assignments before start
	byCountry  map[string]uint64
}

// planShards splits total probes into n balanced contiguous shards,
// computing every shard's cohort position and assignment prefix sums in
// one walk over the cohort list.
func planShards(pop *population.Population, total uint64, n int) []shardPlan {
	plans := make([]shardPlan, 0, n)
	var (
		cum      uint64 // global index at the start of cohort ci
		unpinned uint64 // unconstrained assignments before cum
		country  = make(map[string]uint64)
		ci       int
	)
	for w := 0; w < n; w++ {
		start := total * uint64(w) / uint64(n)
		end := total * uint64(w+1) / uint64(n)
		// Advance the walk until cohort ci contains start.
		for ci < len(pop.Cohorts) && cum+pop.Cohorts[ci].Count <= start {
			c := &pop.Cohorts[ci]
			if c.Country == "" {
				unpinned += c.Count
			} else {
				country[c.Country] += c.Count
			}
			cum += c.Count
			ci++
		}
		p := shardPlan{
			start: start, end: end,
			cohort:    ci,
			offset:    start - cum,
			unpinned:  unpinned,
			byCountry: make(map[string]uint64, len(country)),
		}
		for k, v := range country {
			p.byCountry[k] = v
		}
		// The partial cohort's own prefix.
		if ci < len(pop.Cohorts) && p.offset > 0 {
			if c := &pop.Cohorts[ci]; c.Country == "" {
				p.unpinned += p.offset
			} else {
				p.byCountry[c.Country] += p.offset
			}
		}
		plans = append(plans, p)
	}
	return plans
}

// synthWorker holds one worker's streaming state: its accumulator, its
// assigner cursors, and the scratch buffers the per-probe path reuses —
// query and response messages, the encode buffer, the qname builder, and
// the decode message — so steady-state synthesis allocates only the qname
// string and the decoder's name strings per probe.
type synthWorker struct {
	clusterSize uint64
	assigner    *population.Assigner
	acc         *analysis.Accumulator
	obs         *obs.Shard

	query, resp, decoded dnswire.Message
	buf, name            []byte
}

// run synthesizes the worker's shard. The global probe index g determines
// the qname and transaction ID; the assigner cursors determine the source
// address; together they reproduce the serial loop's exact output for
// [start, end). Cancellation is polled every 64Ki probes — cheap against
// the per-probe work, fine-grained against a multi-minute shard.
func (w *synthWorker) run(ctx context.Context, pop *population.Population, plan shardPlan) error {
	g := plan.start
	for ci := plan.cohort; ci < len(pop.Cohorts) && g < plan.end; ci++ {
		cohort := &pop.Cohorts[ci]
		i := uint64(0)
		if ci == plan.cohort {
			i = plan.offset
		}
		for ; i < cohort.Count && g < plan.end; i++ {
			if g&0xFFFF == 0 && ctx.Err() != nil {
				return ErrInterrupted
			}
			if err := w.probe(cohort, g); err != nil {
				return err
			}
			g++
		}
	}
	if g != plan.end {
		return fmt.Errorf("core: shard [%d,%d) ran out of cohorts at %d", plan.start, plan.end, g)
	}
	return nil
}

func (w *synthWorker) probe(cohort *population.Cohort, g uint64) error {
	src, err := w.assigner.Next(cohort.Country)
	if err != nil {
		return err
	}
	w.name = dnssrv.AppendProbeName(w.name[:0],
		int(g/w.clusterSize), int(g%w.clusterSize), paperdata.SLD)
	qname := dnswire.CanonicalName(string(w.name))
	w.query.Header = dnswire.Header{ID: ProbeQID(g), RD: true}
	w.query.Questions = append(w.query.Questions[:0],
		dnswire.Question{Name: qname, Type: dnswire.TypeA, Class: dnswire.ClassIN})
	res := dnssrv.Result{}
	if cohort.Profile.Answer == behavior.AnswerTruth {
		res = dnssrv.Result{Addr: dnssrv.TruthAddr(qname), Rcode: dnswire.RcodeNoError, OK: true}
	}
	behavior.BuildResponseInto(&w.resp, &w.query, cohort.Profile, res)
	w.buf, err = w.resp.Append(w.buf[:0])
	if err != nil {
		return fmt.Errorf("core: encode response: %w", err)
	}
	w.obs.Inc(obs.CSynthProbes)
	w.obs.Add(obs.CSynthBytes, uint64(len(w.buf)))
	w.obs.Observe(obs.HRespBytes, int64(len(w.buf)))
	w.acc.AddR2Into(src, w.buf, &w.decoded)
	return nil
}

// synthesize streams the whole population through the analysis pipeline,
// fanning out over cfg.workers() shard workers and merging their
// accumulators in shard order. Workers(1) runs the single shard inline —
// the legacy serial path. Each worker forks the assigner and fast-forwards
// its cursors past the preceding shards' draws (O(1) per country, one
// cheap stride step per unpinned draw), so the merged accumulator is
// provably identical to the serial one for any worker count.
func synthesize(cfg Config, pop *population.Population, threat *threatintel.DB,
	reg *geo.Registry, assigner *population.Assigner, clusterSize int) (*analysis.Accumulator, error) {
	var total uint64
	for _, c := range pop.Cohorts {
		total += c.Count
	}
	accCfg := analysis.Config{Year: cfg.Year, Threat: threat, Geo: reg}
	workers := cfg.workers()
	if uint64(workers) > total {
		workers = int(total)
	}
	if workers < 1 {
		workers = 1
	}
	newWorker := func(a *population.Assigner, sh *obs.Shard) *synthWorker {
		return &synthWorker{
			clusterSize: uint64(clusterSize),
			assigner:    a,
			acc:         analysis.NewAccumulator(accCfg),
			obs:         sh,
			buf:         make([]byte, 0, 512),
			name:        make([]byte, 0, 64),
		}
	}
	ctx := cfg.ctx()
	if workers == 1 {
		w := newWorker(assigner, cfg.Obs.NewShard("synth-0"))
		if err := w.run(ctx, pop, shardPlan{start: 0, end: total}); err != nil {
			return nil, err
		}
		return w.acc, nil
	}

	plans := planShards(pop, total, workers)
	ws := make([]*synthWorker, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i, plan := range plans {
		// Shards are registered here, in shard order, so the snapshot's
		// shard list is deterministic regardless of goroutine scheduling.
		sh := cfg.Obs.NewShard(fmt.Sprintf("synth-%d", i))
		wg.Add(1)
		go func(i int, plan shardPlan, sh *obs.Shard) {
			defer wg.Done()
			fork := assigner.Fork()
			for country, n := range plan.byCountry {
				if err := fork.AdvanceCountry(country, n); err != nil {
					errs[i] = err
					return
				}
			}
			if err := fork.AdvanceUnpinned(plan.unpinned); err != nil {
				errs[i] = err
				return
			}
			w := newWorker(fork, sh)
			ws[i] = w
			errs[i] = w.run(ctx, pop, plan)
		}(i, plan, sh)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	acc := ws[0].acc
	for _, w := range ws[1:] {
		acc.Merge(w.acc)
	}
	return acc, nil
}

// syntheticCampaignCounts derives the Table II row for a synthetic run: Q1
// from the universe (minus modeled 2013 send loss), Q2/R1 from the
// population's calibrated upstream plan, and the duration from the probe
// rate plus cluster-reload pauses.
func syntheticCampaignCounts(cfg Config, pop *population.Population, clusterSize int) analysis.CampaignCounts {
	camp := paperdata.Campaigns[cfg.Year]
	q1 := camp.Q1
	if cfg.SampleShift > 0 {
		half := uint64(1) << cfg.SampleShift >> 1
		q1 = (q1 + half) >> cfg.SampleShift
	}
	pps := cfg.pps()
	clusters := (pop.ExpectedR2 + uint64(clusterSize) - 1) / uint64(clusterSize)
	dur := time.Duration(q1/pps)*time.Second +
		time.Duration(clusters)*paperdata.ClusterReloadTime
	return analysis.CampaignCounts{
		Q1: q1, Q2: pop.ExpectedQ2, R1: pop.ExpectedQ2, R2: pop.ExpectedR2,
		Duration: dur, PacketsPerSec: pps, SampleShift: cfg.SampleShift,
	}
}

// RunSimulation executes the campaign on the discrete-event network.
func RunSimulation(cfg Config) (*Dataset, error) {
	pop, feed, _, _, err := buildDeps(cfg)
	if err != nil {
		return nil, err
	}
	return SimulatePopulation(cfg, pop, feed.DB)
}

// SimulatePopulation executes an arbitrary compiled population on the
// discrete-event network — the simulation-mode mirror of
// SynthesizePopulation, and like it usable with mixed populations and
// merged threat feeds (drift monitoring). cfg.Faults applies here: each
// sub-simulation's network is built with the plan's impairments (stateful
// pipelines forked per shard) and the prober and resolver population get
// its retransmission knobs. The campaign runs as a fixed set of private
// sub-simulations scheduled over cfg.Workers goroutines and merged in
// shard order (simshard.go); the merged dataset is byte-identical for
// every worker count.
func SimulatePopulation(cfg Config, pop *population.Population, threat *threatintel.DB) (*Dataset, error) {
	sc, err := openSimCampaign(cfg, pop, threat)
	if err != nil {
		return nil, err
	}
	tr := cfg.Obs.Tracer()
	errs := make([]error, len(sc.shards))

	// runShard executes one pending shard and, on success, persists it at
	// the shard boundary — the atomic unit of crash-safe progress. Each
	// shard index is owned by exactly one goroutine, so runs/errs writes
	// need no lock.
	runShard := func(i int) {
		sc.runs[i], errs[i] = runSimShard(sc.env, sc.shards[i], sc.obsShards[i])
		if errs[i] == nil && sc.store != nil {
			sc.store.write(i, sc.runs[i])
		}
	}

	ctx := cfg.ctx()
	sp := tr.Begin("simulate")
	workers := cfg.workers()
	if workers > len(sc.shards) {
		workers = len(sc.shards)
	}
	if workers <= 1 {
		for i := range sc.shards {
			if sc.runs[i] != nil || ctx.Err() != nil {
				continue
			}
			runShard(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					runShard(i)
				}
			}()
		}
		// Graceful shutdown: on cancellation, stop dispatching but let
		// every in-flight shard drain (and checkpoint) before returning.
	dispatch:
		for i := range sc.shards {
			if sc.runs[i] != nil {
				continue
			}
			select {
			case jobs <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(jobs)
		wg.Wait()
	}
	tr.End(sp)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, run := range sc.runs {
		if run == nil {
			// Cancelled before every shard completed. Completed shards are
			// checkpointed; rerunning the same configuration resumes there.
			return nil, fmt.Errorf("core: %w: campaign stopped at a shard boundary", ErrInterrupted)
		}
	}

	sp = tr.Begin("report")
	ds, err := sc.Merge()
	tr.End(sp)
	return ds, err
}
