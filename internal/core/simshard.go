package core

// This file is the sharded simulation engine (DESIGN.md §12). One simulated
// campaign is decomposed into a fixed set of deterministic sub-campaigns:
// contiguous slices of the probe-order index space, each executed on a fully
// private discrete-event network — its own netsim.Sim (heap, timer ring,
// host table, payload pools), DNS hierarchy, prober with a proportional
// slice of the send rate, fault pipeline forked from the plan, and private
// analysis.Accumulator — then merged in shard order. The decomposition is a
// pure function of the Config (never of Workers or GOMAXPROCS), so the
// merged dataset is byte-identical for every worker count: Workers only
// chooses how many sub-simulations run concurrently.

import (
	"fmt"
	"time"

	"openresolver/internal/analysis"
	"openresolver/internal/behavior"
	"openresolver/internal/capture"
	"openresolver/internal/classify"
	"openresolver/internal/dnssrv"
	"openresolver/internal/geo"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
	"openresolver/internal/obs"
	"openresolver/internal/paperdata"
	"openresolver/internal/population"
	"openresolver/internal/prober"
	"openresolver/internal/scan"
	"openresolver/internal/threatintel"
)

// simMaxShards caps the campaign decomposition. Sixteen sub-simulations
// saturate the machines this targets while keeping the per-shard fixed cost
// (servers, templates, heap) negligible against the event stream.
const simMaxShards = 16

// simShard is one slice of the campaign: probe-order positions
// [start, end), probed at pps packets per second against the shard's own
// disjoint subdomain-cluster namespace [firstCluster, firstCluster+clusterSpan).
type simShard struct {
	index        int
	start, end   uint64
	firstCluster int
	clusterSpan  int
	pps          uint64
}

// simShardCount returns the campaign's shard count: simMaxShards, bounded
// by the send rate (every shard's token bucket needs at least 1 pps) and
// the universe size (every shard needs at least one probe position). It
// depends on the configuration alone — never on Workers — which is what
// makes the merged report machine-independent.
func simShardCount(cfg Config, u *scan.Universe) uint64 {
	s := uint64(simMaxShards)
	if pps := cfg.pps(); pps < s {
		s = pps
	}
	if n := u.Indexes(); n < s {
		s = n
	}
	if s < 1 {
		s = 1
	}
	return s
}

// planSimShards splits the universe into balanced contiguous shards, gives
// each a disjoint cluster namespace via a prefix sum of worst-case spans,
// and splits the send rate so the shard rates sum exactly to the campaign
// rate (the remainder goes to the lowest shards).
func planSimShards(cfg Config, u *scan.Universe) []simShard {
	n := simShardCount(cfg, u)
	total := u.Indexes()
	clusterSize := uint64(cfg.scaledClusterSize())
	pps := cfg.pps()
	shards := make([]simShard, n)
	base := 0
	for w := uint64(0); w < n; w++ {
		start := total * w / n
		end := total * (w + 1) / n
		probes := end - start
		// Worst-case cluster consumption: every rotation — proactive (more
		// than 3/4 of the pool burned, pending drained) or pool-exhausted
		// (every name burned) — retires at least 3·clusterSize/4 burned
		// names, and names burn only on a response to a sent probe, so a
		// shard of P probes rotates at most 4P/(3·clusterSize) times (+1 for
		// the initial cluster, +1 slack for the integer edge). runSimShard
		// re-checks the bound after the run; exceeding it would collide
		// qnames across shards.
		span := int(4*probes/(3*clusterSize)) + 2
		sh := simShard{
			index: int(w), start: start, end: end,
			firstCluster: base, clusterSpan: span,
			pps: pps / n,
		}
		if w < pps%n {
			sh.pps++
		}
		shards[w] = sh
		base += span
	}
	return shards
}

// shardSeed derives shard w's private rng seed. Sub-simulations must not
// share the campaign seed directly — identical latency and jitter streams
// across shards would correlate their networks — so the seed is mixed
// through a SplitMix64 finalizer. The map (Seed, shard) → stream is pure,
// keeping every report byte a function of the configuration alone.
func shardSeed(seed int64, w int) int64 {
	x := uint64(seed) + 0x9E3779B97F4A7C15*(uint64(w)+1)
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return int64(x ^ (x >> 31))
}

// simEnv is the read-only state every shard shares: the compiled population
// and its address→cohort index (built once by the global assigner walk),
// the threat and geo databases, and the scan universe. Nothing in it is
// written during the fan-out, so shards need no synchronization beyond the
// final merge.
type simEnv struct {
	cfg      Config
	pop      *population.Population
	threat   *threatintel.DB
	reg      *geo.Registry
	u        *scan.Universe
	cohortOf *addrIndex
}

// simShardRun is one completed sub-simulation: the shard's private
// accumulator, capture counters and packet streams, and counter snapshots,
// ready for the ordered merge. Every field is plain value data (no live
// logs or simulator handles): a run restored from a checkpoint is
// indistinguishable from a freshly executed one, which is what makes the
// resumed merge byte-identical.
type simShardRun struct {
	acc           *analysis.Accumulator
	probeCounters capture.Counters
	authCounters  capture.Counters
	r2            []capture.Packet
	authPackets   []capture.Packet
	netStats      netsim.Stats
	faultStats    netsim.FaultStats
	probeStats    prober.Stats
	sent          uint64
	reused        uint64
	clusters      int
	duration      time.Duration
	obs           *obs.Shard
}

// runSimShard executes one shard: a complete private replica of the
// campaign's network — the DNS hierarchy of Fig. 1 with the tcpdump tap of
// Fig. 2, the lazily-spawned resolver population, and the prober — bounded
// to the shard's probe range, cluster namespace, and rate slice.
func runSimShard(env *simEnv, sh simShard, msh *obs.Shard) (*simShardRun, error) {
	cfg := env.cfg
	sim := netsim.New(netsim.Config{
		Seed:    shardSeed(cfg.Seed, sh.index),
		Latency: netsim.UniformLatency(10*time.Millisecond, 80*time.Millisecond),
		// Stateful impairments fork per shard; a shared Gilbert–Elliott
		// chain would entangle the shards' trajectories (and race).
		Impairments:     netsim.CloneImpairments(cfg.Faults.Impairments),
		MaxQueuedEvents: cfg.Faults.MaxQueuedEvents,
	})

	authLog := capture.NewAuthLog()
	authLog.Keep = cfg.KeepPackets
	dnssrv.NewReferralServer(sim, RootAddr, []dnssrv.Referral{
		{Zone: "net", NSName: "a.gtld-servers.net", Addr: TLDAddr},
	})
	dnssrv.NewReferralServer(sim, TLDAddr, []dnssrv.Referral{
		{Zone: paperdata.SLD, NSName: "ns1." + paperdata.SLD, Addr: AuthAddr},
	})
	auth := dnssrv.NewAuthServer(sim, dnssrv.AuthConfig{
		Addr: AuthAddr, SLD: paperdata.SLD,
		ClusterSize:  cfg.scaledClusterSize(),
		ReloadTime:   paperdata.ClusterReloadTime,
		Tap:          authLog,
		FirstCluster: sh.firstCluster,
	})

	// The resolver population, instantiated lazily: only a cohort index is
	// recorded per address (in the shared read-only cohortOf), and the
	// Resolver host materializes in this shard's sim when its first packet
	// arrives. An address probed by another shard spawns over there, in that
	// shard's private network.
	var tune func(*dnssrv.Recursive)
	if cfg.Faults.UpstreamBackoff {
		tune = func(rec *dnssrv.Recursive) { rec.Backoff, rec.Jitter = true, true }
	}
	sim.SetSpawner(func(addr ipv4.Addr) bool {
		ci, ok := env.cohortOf.get(addr)
		if !ok {
			return false
		}
		behavior.NewResolverTuned(sim, addr, RootAddr, env.pop.Cohorts[ci].Profile, tune)
		return true
	})

	// The analysis pipeline, fed live from this shard's capture log.
	acc := analysis.NewAccumulator(analysis.Config{Year: cfg.Year, Threat: env.threat, Geo: env.reg})
	probeLog := capture.NewProbeLog()
	probeLog.Keep = cfg.KeepPackets
	probeLog.Sink = func(p capture.Packet) { acc.AddR2(p.Src, p.Payload) }

	sim.SetObserver(msh)

	// Skip runs once per scanned candidate; four address compares beat a
	// map probe on that path (and draw no hash state).
	skipInfra := func(a ipv4.Addr) bool {
		return a == ProberAddr || a == RootAddr || a == TLDAddr || a == AuthAddr
	}
	pr, err := prober.Start(sim, prober.Config{
		Addr:            ProberAddr,
		Universe:        env.u,
		RangeStart:      sh.start,
		RangeEnd:        sh.end,
		SLD:             paperdata.SLD,
		ClusterSize:     cfg.scaledClusterSize(),
		FirstCluster:    sh.firstCluster,
		PacketsPerSec:   sh.pps,
		Timeout:         2 * time.Second,
		Retries:         cfg.Faults.Retries,
		AdaptiveTimeout: cfg.Faults.AdaptiveTimeout,
		SendSkip:        cfg.sendSkip(),
		Auth:            auth,
		Log:             probeLog,
		Obs:             msh,
		Skip:            skipInfra,
	})
	if err != nil {
		return nil, err
	}

	wallStart := time.Now()
	if err := sim.Run(0); err != nil {
		return nil, err
	}
	if msh != nil {
		// Virtual-vs-wall clock ratio: how much simulated time each wall
		// second buys. Stored as two mergeable counters; consumers divide.
		// The virtual sum over shards is fixed by the decomposition, so the
		// merged counter stays workers-invariant.
		msh.Add(obs.CSimWallNanos, uint64(time.Since(wallStart)))
		msh.Add(obs.CSimVirtualNanos, uint64(sim.Now()))
	}
	if !pr.Done() {
		return nil, fmt.Errorf("core: shard %d quiesced before the prober finished", sh.index)
	}
	if used := pr.ClustersUsed(); used > sh.clusterSpan {
		return nil, fmt.Errorf("core: shard %d consumed %d clusters, over its %d-cluster namespace",
			sh.index, used, sh.clusterSpan)
	}
	return &simShardRun{
		acc:           acc,
		probeCounters: probeLog.Counters(),
		authCounters:  authLog.Counters(),
		r2:            probeLog.R2(),
		authPackets:   authLog.Packets(),
		netStats:      sim.Stats(),
		faultStats:    sim.FaultStats(),
		probeStats:    pr.Stats(),
		sent:          pr.Sent(),
		reused:        pr.Reused(),
		clusters:      pr.ClustersUsed(),
		duration:      pr.Duration(),
		obs:           msh,
	}, nil
}

// mergeSimShards folds the completed shards, in shard order, into one
// Dataset — exactly the synth path's discipline: accumulators merge with
// analysis.Accumulator.Merge (exact for arbitrary stream splits), counters
// sum field-wise, the campaign duration is the slowest shard's (the shards
// probe concurrently at split rates), and the captured packet streams
// concatenate in shard order, so every derived byte is deterministic.
func mergeSimShards(cfg Config, pop *population.Population, runs []*simShardRun) *Dataset {
	ds := &Dataset{Config: cfg, Population: pop}
	acc := runs[0].acc
	var camp analysis.CampaignCounts
	for i, r := range runs {
		if i > 0 {
			acc.Merge(r.acc)
			ds.ProbeStats = ds.ProbeStats.Merge(r.probeStats)
		} else {
			ds.ProbeStats = r.probeStats
		}
		camp.Q1 += r.sent
		camp.Q2 += r.authCounters.Q2
		camp.R1 += r.authCounters.R1
		camp.R2 += r.probeCounters.R2
		if r.duration > camp.Duration {
			camp.Duration = r.duration
		}
		ds.ClustersUsed += r.clusters
		ds.SubdomainsReused += r.reused
		ds.NetStats.Add(r.netStats)
		ds.FaultStats.Add(r.faultStats)
	}
	camp.PacketsPerSec = cfg.pps()
	camp.SampleShift = cfg.SampleShift
	ds.Report = acc.Report(camp)
	if cfg.KeepPackets {
		var r2, authPkts []capture.Packet
		for _, r := range runs {
			r2 = append(r2, r.r2...)
			authPkts = append(authPkts, r.authPackets...)
		}
		ds.R2Packets = r2
		// Qname correlation across the merged streams is collision-free by
		// construction: the cluster namespaces are disjoint.
		ds.Roles = classify.Classify(r2, authPkts)
	}
	return ds
}
