package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Campaign digests are the determinism contract of the discrete-event mode:
// the golden tests pin them against recorded constants, and the sweep
// runner (cmd/orsweep) stamps every cell artifact with one so a sweep cell
// can be cross-checked bit-for-bit against the same campaign run
// standalone. They live in the package proper (not the test files) because
// both consumers hash the identical byte stream — having two
// implementations would let them drift.

// SimulationDigest hashes everything RunSimulation promises to keep
// stable: the rendered report tables, the packet counters, the
// subdomain-pool accounting, and the raw R2 stream in arrival order
// (KeepPackets runs only; without packets the digest still covers the
// tables and counters).
func SimulationDigest(ds *Dataset) string {
	h := sha256.New()
	r := ds.Report
	for _, tbl := range []string{
		r.RenderTableII(), r.RenderTableIII(), r.RenderTableIV(),
		r.RenderTableV(), r.RenderTableVI(), r.RenderTableVII(),
		r.RenderTableVIII(), r.RenderTableIX(), r.RenderTableX(),
		r.RenderGeo(),
	} {
		h.Write([]byte(tbl))
	}
	fmt.Fprintf(h, "stats=%+v clusters=%d reused=%d\n",
		ds.NetStats, ds.ClustersUsed, ds.SubdomainsReused)
	var num [8]byte
	for _, p := range ds.R2Packets {
		binary.BigEndian.PutUint64(num[:], uint64(p.At))
		h.Write(num[:])
		binary.BigEndian.PutUint32(num[:4], uint32(p.Src))
		h.Write(num[:4])
		binary.BigEndian.PutUint32(num[:4], uint32(p.Dst))
		h.Write(num[:4])
		h.Write(p.Payload)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// FaultDigest extends SimulationDigest over the fault pipeline's
// intervention counters and the prober's retransmission counters — the
// full adverse-network determinism contract. On a pristine campaign the
// extra fields are all zero, so FaultDigest is equally well-defined there
// and is what the sweep runner records for every cell.
func FaultDigest(ds *Dataset) string {
	h := sha256.New()
	fmt.Fprintf(h, "base=%s faults=%+v probe=%+v\n",
		SimulationDigest(ds), ds.FaultStats, ds.ProbeStats)
	return hex.EncodeToString(h.Sum(nil))
}
