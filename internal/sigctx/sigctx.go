// Package sigctx provides the graceful-shutdown context shared by the
// campaign CLIs (orsurvey, ortrend, orsweep). The first SIGINT/SIGTERM
// cancels the returned context — the engines stop dispatching work at the
// next shard or cell boundary, drain what is in flight, and checkpoint it
// — while a second signal gets the default handling back and kills the
// process immediately, so a wedged run can always be terminated.
package sigctx

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
)

// New returns a context cancelled by the first interrupt/termination
// signal. The notice (prefixed with name) goes to stderr so the user
// knows the run is draining, not hung. The returned cancel releases the
// signal hook and must be deferred by the caller.
func New(name string, stderr io.Writer) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case s := <-sigc:
			fmt.Fprintf(stderr, "%s: %v received; draining in-flight work at the next shard boundary (send again to force quit)\n", name, s)
			// Restore default delivery first: a second signal now kills the
			// process outright instead of being swallowed here.
			signal.Stop(sigc)
			cancel()
		case <-ctx.Done():
			signal.Stop(sigc)
		}
	}()
	return ctx, cancel
}
