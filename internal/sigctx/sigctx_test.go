package sigctx

import (
	"bytes"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestSignalCancelsContext sends this process a real SIGINT and checks the
// contract: the context cancels, and the stderr notice tells the user the
// run is draining rather than hung. (The channel close gives the
// happens-before edge that makes reading the buffer safe afterwards.)
func TestSignalCancelsContext(t *testing.T) {
	var buf bytes.Buffer
	ctx, cancel := New("sigtest", &buf)
	defer cancel()
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGINT did not cancel the context")
	}
	out := buf.String()
	if !strings.Contains(out, "sigtest:") || !strings.Contains(out, "draining") {
		t.Errorf("signal notice missing or unlabeled: %q", out)
	}
}

// TestCancelWithoutSignal: plain cancellation must tear down cleanly with
// no notice written.
func TestCancelWithoutSignal(t *testing.T) {
	var buf bytes.Buffer
	ctx, cancel := New("sigtest", &buf)
	cancel()
	<-ctx.Done()
	if buf.Len() != 0 {
		t.Errorf("cancel without signal wrote a notice: %q", buf.String())
	}
}
