package analysis

import (
	"fmt"

	"openresolver/internal/paperdata"
)

// Delta is one row of the paper-vs-measured comparison.
type Delta struct {
	Table  string
	Metric string
	// Paper is the value as printed in the paper.
	Paper string
	// Measured is this run's regenerated value.
	Measured string
	// Match reports exact agreement with the *reconciled* paper value
	// (paperdata's documented discrepancies are the only divergences the
	// reproduction accepts).
	Match bool
	// Note explains reconciliations or scale effects.
	Note string
}

func d(table, metric string, paper, measured uint64, note string) Delta {
	return Delta{
		Table: table, Metric: metric,
		Paper:    commas(paper),
		Measured: commas(measured),
		Match:    paper == measured,
		Note:     note,
	}
}

func df(table, metric string, paper, measured float64, tol float64, note string) Delta {
	return Delta{
		Table: table, Metric: metric,
		Paper:    fmt.Sprintf("%.3f", paper),
		Measured: fmt.Sprintf("%.3f", measured),
		Match:    measured-paper <= tol && paper-measured <= tol,
		Note:     note,
	}
}

// CompareToPaper produces the full paper-vs-measured delta list for a
// report. It is meaningful for full-scale runs (SampleShift 0); scaled
// runs will show proportional values.
func (r *Report) CompareToPaper() []Delta {
	y := r.Year
	var out []Delta

	// Table II.
	camp := paperdata.Campaigns[y]
	out = append(out,
		d("Table II", "Q1 probes", camp.Q1, r.Campaign.Q1, ""),
		d("Table II", "Q2 (=R1) at auth NS", camp.Q2R1, r.Campaign.Q2, "Q2 plan calibrated to the paper's total"),
		d("Table II", "R2 at prober", camp.R2, r.Campaign.R2, ""),
		Delta{
			Table: "Table II", Metric: "duration",
			Paper:    camp.DurationLabel + " (" + camp.ProbeDuration.String() + " in text)",
			Measured: r.Campaign.Duration.String(),
			Match:    ratioClose(float64(r.Campaign.Duration), float64(camp.ProbeDuration), 0.15),
			Note:     "duration emerges from probe rate + cluster reloads",
		},
	)

	// Table III.
	c := paperdata.CorrectnessByYear[y]
	out = append(out,
		d("Table III", "R2 analyzed", c.R2, r.Correctness.R2, ""),
		d("Table III", "W/O (no answer)", c.Without, r.Correctness.Without, ""),
		d("Table III", "W_corr", c.Correct, r.Correctness.Correct, ""),
		d("Table III", "W_incorr", c.Incorr, r.Correctness.Incorr, ""),
		df("Table III", "Err %", c.ErrPct(), r.Correctness.ErrPct(), 0.001, ""),
	)

	// Table IV.
	ra := paperdata.RATable[y]
	for i, rows := range []struct {
		name          string
		paper, gotRow paperdata.FlagRow
	}{
		{"RA0", ra.Flag0, r.RA.Flag0},
		{"RA1", ra.Flag1, r.RA.Flag1},
	} {
		_ = i
		out = append(out,
			d("Table IV", rows.name+" W/O", rows.paper.Without, rows.gotRow.Without, ""),
			d("Table IV", rows.name+" W_corr", rows.paper.Correct, rows.gotRow.Correct, ""),
			d("Table IV", rows.name+" W_incorr", rows.paper.Incorr, rows.gotRow.Incorr, ""),
		)
	}

	// Table V (against printed values; note marks the D3 reconciliation).
	aaPrinted := paperdata.AATable[y]
	aaRecon := paperdata.ReconciledAA(y)
	note5 := ""
	if aaPrinted != aaRecon {
		note5 = "paper's printed AA0 row is internally inconsistent by ±10 (D3)"
	}
	for _, rows := range []struct {
		name            string
		printed, gotRow paperdata.FlagRow
		recon           paperdata.FlagRow
	}{
		{"AA0", aaPrinted.Flag0, r.AA.Flag0, aaRecon.Flag0},
		{"AA1", aaPrinted.Flag1, r.AA.Flag1, aaRecon.Flag1},
	} {
		out = append(out,
			Delta{Table: "Table V", Metric: rows.name + " W/O",
				Paper: commas(rows.printed.Without), Measured: commas(rows.gotRow.Without),
				Match: rows.gotRow.Without == rows.recon.Without, Note: note5},
			Delta{Table: "Table V", Metric: rows.name + " W_corr",
				Paper: commas(rows.printed.Correct), Measured: commas(rows.gotRow.Correct),
				Match: rows.gotRow.Correct == rows.recon.Correct, Note: note5},
			Delta{Table: "Table V", Metric: rows.name + " W_incorr",
				Paper: commas(rows.printed.Incorr), Measured: commas(rows.gotRow.Incorr),
				Match: rows.gotRow.Incorr == rows.recon.Incorr, Note: note5},
		)
	}

	// Table VI (against printed; reconciliations D4/D5 noted).
	printed := paperdata.RcodeTable[y]
	recon := paperdata.ReconciledRcode(y)
	for code := 0; code < 10; code++ {
		if printed.With[code] == 0 && r.Rcode.With[code] == 0 &&
			printed.Without[code] == 0 && r.Rcode.Without[code] == 0 {
			continue
		}
		noteW, noteWO := "", ""
		if printed.With[code] != recon.With[code] {
			noteW = "reconciled (D4)"
		}
		if printed.Without[code] != recon.Without[code] {
			noteWO = "reconciled (D5)"
		}
		out = append(out,
			Delta{Table: "Table VI", Metric: "W " + paperdata.RcodeNames[code],
				Paper: commas(printed.With[code]), Measured: commas(r.Rcode.With[code]),
				Match: r.Rcode.With[code] == recon.With[code], Note: noteW},
			Delta{Table: "Table VI", Metric: "W/O " + paperdata.RcodeNames[code],
				Paper: commas(printed.Without[code]), Measured: commas(r.Rcode.Without[code]),
				Match: r.Rcode.Without[code] == recon.Without[code], Note: noteWO},
		)
	}

	// Table VII.
	f := paperdata.IncorrectFormsByYear[y]
	out = append(out,
		d("Table VII", "IP packets", f.IP.Packets, r.Forms.IP.Packets, ""),
		d("Table VII", "IP unique", f.IP.Unique, r.Forms.IP.Unique, ""),
		d("Table VII", "URL packets", f.URL.Packets, r.Forms.URL.Packets, ""),
		d("Table VII", "URL unique", f.URL.Unique, r.Forms.URL.Unique, ""),
		d("Table VII", "string packets", f.Str.Packets, r.Forms.Str.Packets, ""),
		Delta{Table: "Table VII", Metric: "string unique",
			Paper: commas(f.Str.Unique), Measured: commas(r.Forms.Str.Unique),
			Match: r.Forms.Str.Unique == paperdata.ReconciledStrUnique(y),
			Note:  noteIf(f.Str.Unique != paperdata.ReconciledStrUnique(y), "57 uniques over 10 packets is impossible; capped (D6)")},
	)
	if f.NA.Packets > 0 {
		out = append(out, d("Table VII", "N/A packets", f.NA.Packets, r.Forms.NA.Packets, "2013 undecodable RDATA"))
	}

	// Table VIII / 2013 top-10.
	label := "Table VIII"
	if y == paperdata.Y2013 {
		label = "§IV-C1 top-10"
	}
	for i, want := range paperdata.Top10[y] {
		var got paperdata.TopAnswer
		if i < len(r.Top10) {
			got = r.Top10[i]
		}
		note := ""
		if want.Synthetic {
			note = "count not stated in the paper; reconstructed (D7)"
		}
		out = append(out, Delta{
			Table: label, Metric: fmt.Sprintf("rank %d", i+1),
			Paper:    fmt.Sprintf("%s ×%s", want.Addr, commas(want.Count)),
			Measured: fmt.Sprintf("%s ×%s", got.Addr, commas(got.Count)),
			Match:    got.Addr == want.Addr && got.Count == want.Count,
			Note:     note,
		})
	}

	// Table IX.
	for _, cat := range paperdata.MalCategories {
		want := paperdata.MaliciousTable[y][cat]
		got := r.Malicious[cat]
		out = append(out,
			d("Table IX", string(cat)+" unique IPs", want.IPs, got.IPs, ""),
			d("Table IX", string(cat)+" R2", want.R2, got.R2, ""),
		)
	}
	out = append(out,
		d("Table IX", "total unique IPs", paperdata.MaliciousTotals[y].IPs, r.MaliciousTotal.IPs, ""),
		d("Table IX", "total R2", paperdata.MaliciousTotals[y].R2, r.MaliciousTotal.R2, ""),
	)

	// Table X (2018 only in the paper).
	if y == paperdata.Y2018 {
		m := paperdata.MaliciousFlags2018
		out = append(out,
			d("Table X", "RA0", m.RA0, r.MalFlags.RA0, ""),
			d("Table X", "RA1", m.RA1, r.MalFlags.RA1, ""),
			d("Table X", "AA0", m.AA0, r.MalFlags.AA0, ""),
			d("Table X", "AA1", m.AA1, r.MalFlags.AA1, ""),
			d("Table X", "nonzero-rcode malicious", 0, r.MalNonZeroRcode, "§IV-C3: all malicious rcodes are NoError"),
		)
	}

	// Geolocation.
	gotGeo := map[string]uint64{}
	for _, g := range r.MaliciousGeo {
		gotGeo[g.Country] = g.R2
	}
	out = append(out, d("Geo", "countries", uint64(len(paperdata.MaliciousGeo[y])), uint64(len(r.MaliciousGeo)), ""))
	for _, g := range paperdata.MaliciousGeo[y] {
		out = append(out, d("Geo", g.Country, g.R2, gotGeo[g.Country], ""))
	}

	// §IV-B4 empty-question (2018 only).
	if y == paperdata.Y2018 {
		e := paperdata.EmptyQuestion2018
		er := paperdata.ReconciledEmptyQuestion()
		out = append(out,
			d("§IV-B4", "total", e.Total, r.EmptyQ.Total, ""),
			d("§IV-B4", "with answer", e.WithAnswer, r.EmptyQ.WithAnswer, ""),
			d("§IV-B4", "RA1", e.RA1, r.EmptyQ.RA1, ""),
			Delta{Table: "§IV-B4", Metric: "RA0",
				Paper: commas(e.RA0), Measured: commas(r.EmptyQ.RA0),
				Match: r.EmptyQ.RA0 == er.RA0,
				Note:  "paper's RA counts sum to 487 of 494 (D8)"},
			d("§IV-B4", "AA1", e.AA1, r.EmptyQ.AA1, ""),
		)
	}

	// §IV-B1 estimates.
	est := paperdata.Estimates[y]
	out = append(out,
		d("§IV-B1", "strict estimate (RA=1 & correct)", est.StrictRA1Correct, r.Estimates.StrictRA1Correct, ""),
		d("§IV-B1", "RA=1 estimate", est.RAOnly, r.Estimates.RAOnly, ""),
		d("§IV-B1", "correct-answer estimate", est.CorrectOnly, r.Estimates.CorrectOnly, ""),
	)
	return out
}

func ratioClose(a, b, tol float64) bool {
	if b == 0 {
		return a == 0
	}
	ratio := a / b
	return ratio >= 1-tol && ratio <= 1+tol
}

func noteIf(cond bool, note string) string {
	if cond {
		return note
	}
	return ""
}

// Matches summarizes a delta list.
func Matches(deltas []Delta) (matched, total int) {
	for _, dd := range deltas {
		if dd.Match {
			matched++
		}
	}
	return matched, len(deltas)
}
