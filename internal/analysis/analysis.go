// Package analysis implements the behavioral-analysis pipeline of §IV: it
// consumes captured R2 packets (as raw wire bytes, exactly like the
// paper's libpcap parsing), classifies each response, and produces every
// table of the evaluation — answer presence and correctness (Table III),
// RA/AA flag statistics (Tables IV, V), rcode distribution (Table VI),
// incorrect-answer forms (Table VII), top-10 incorrect addresses (Table
// VIII), threat-intelligence classification (Table IX), flags on malicious
// responses (Table X), the malicious-resolver geolocation, the §IV-B4
// empty-question breakdown, and the §IV-B1 open-resolver estimates.
//
// The Accumulator is streaming: it holds aggregates and per-unique-value
// maps only, so a full-scale 6.5-million-response campaign runs in constant
// memory per response.
package analysis

import (
	"sort"
	"strings"
	"time"

	"openresolver/internal/dnssrv"
	"openresolver/internal/dnswire"
	"openresolver/internal/geo"
	"openresolver/internal/ipv4"
	"openresolver/internal/paperdata"
	"openresolver/internal/threatintel"
)

// Config wires the accumulator's dependencies.
type Config struct {
	Year paperdata.Year
	// Threat is the intelligence database consulted for incorrect answer
	// addresses (the paper's Cymon API).
	Threat *threatintel.DB
	// Geo locates malicious resolvers (the paper's ip2location).
	Geo *geo.Registry
}

// answerForm classifies a with-answer response per Table VII.
type answerForm uint8

const (
	formNone answerForm = iota
	formIP
	formURL
	formStr
	formNA
)

// Accumulator ingests R2 packets and accumulates every table.
type Accumulator struct {
	cfg Config

	// Table III.
	correct, incorrect, without uint64
	undecodable                 uint64

	// Tables IV and V, indexed by flag value.
	ra [2]paperdata.FlagRow
	aa [2]paperdata.FlagRow

	// Table VI.
	rcodeW, rcodeWO [16]uint64

	// Table VII uniqueness and multiplicity.
	ipCounts  map[ipv4.Addr]uint64
	urlCounts map[string]uint64
	strCounts map[string]uint64
	naPackets uint64

	// Malicious analysis (Tables IX, X, geo).
	malPackets  map[paperdata.MalCategory]uint64
	malUnique   map[ipv4.Addr]paperdata.MalCategory
	malFlags    paperdata.MalFlags
	malGeo      map[string]uint64
	malNonZeroR uint64 // malicious packets with nonzero rcode (§IV-C3 expects 0)

	// §IV-B4 empty-question breakdown.
	eq paperdata.EmptyQuestionStats
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator(cfg Config) *Accumulator {
	return &Accumulator{
		cfg:        cfg,
		ipCounts:   make(map[ipv4.Addr]uint64),
		urlCounts:  make(map[string]uint64),
		strCounts:  make(map[string]uint64),
		malPackets: make(map[paperdata.MalCategory]uint64),
		malUnique:  make(map[ipv4.Addr]paperdata.MalCategory),
		malGeo:     make(map[string]uint64),
	}
}

// AddR2 ingests one response. src is the responding resolver's address
// (the prospective open resolver); wire is the raw DNS payload.
func (a *Accumulator) AddR2(src ipv4.Addr, wire []byte) {
	msg, err := dnswire.Unpack(wire)
	if err != nil {
		a.undecodable++
		return
	}
	a.AddMessage(src, msg)
}

// AddR2Into is AddR2 with caller-owned decode scratch: the payload is
// decoded into msg, whose section slices and RDATA buffers are reused
// across calls (see dnswire.UnpackInto). One scratch message per worker
// removes the per-packet decode allocations from the campaign hot path.
func (a *Accumulator) AddR2Into(src ipv4.Addr, wire []byte, msg *dnswire.Message) {
	if err := dnswire.UnpackInto(msg, wire); err != nil {
		a.undecodable++
		return
	}
	a.AddMessage(src, msg)
}

// Merge folds b's accumulated state into a, leaving b unchanged. Counters
// and multiplicity maps are summed; the unique-malicious map is unioned,
// which is exact because its values are derived from the key alone
// (Dominant() of the address's threat record). No accumulator state is
// order-sensitive beyond that, so splitting a packet stream at arbitrary
// boundaries, accumulating the pieces independently, and merging the
// shard accumulators in any order reproduces the single-accumulator
// result exactly — the invariant the parallel campaign engine relies on.
func (a *Accumulator) Merge(b *Accumulator) {
	a.correct += b.correct
	a.incorrect += b.incorrect
	a.without += b.without
	a.undecodable += b.undecodable
	for i := range a.ra {
		a.ra[i].Without += b.ra[i].Without
		a.ra[i].Correct += b.ra[i].Correct
		a.ra[i].Incorr += b.ra[i].Incorr
		a.aa[i].Without += b.aa[i].Without
		a.aa[i].Correct += b.aa[i].Correct
		a.aa[i].Incorr += b.aa[i].Incorr
	}
	for i := range a.rcodeW {
		a.rcodeW[i] += b.rcodeW[i]
		a.rcodeWO[i] += b.rcodeWO[i]
	}
	for k, n := range b.ipCounts {
		a.ipCounts[k] += n
	}
	for k, n := range b.urlCounts {
		a.urlCounts[k] += n
	}
	for k, n := range b.strCounts {
		a.strCounts[k] += n
	}
	a.naPackets += b.naPackets
	for k, n := range b.malPackets {
		a.malPackets[k] += n
	}
	for k, v := range b.malUnique {
		a.malUnique[k] = v
	}
	a.malFlags.RA0 += b.malFlags.RA0
	a.malFlags.RA1 += b.malFlags.RA1
	a.malFlags.AA0 += b.malFlags.AA0
	a.malFlags.AA1 += b.malFlags.AA1
	for k, n := range b.malGeo {
		a.malGeo[k] += n
	}
	a.malNonZeroR += b.malNonZeroR
	a.eq.Total += b.eq.Total
	a.eq.WithAnswer += b.eq.WithAnswer
	a.eq.PrivateNets += b.eq.PrivateNets
	a.eq.Private192 += b.eq.Private192
	a.eq.Private10 += b.eq.Private10
	a.eq.BadFormat += b.eq.BadFormat
	a.eq.Unroutable += b.eq.Unroutable
	a.eq.RA1 += b.eq.RA1
	a.eq.RA0 += b.eq.RA0
	a.eq.AA1 += b.eq.AA1
	for i := range a.eq.Rcodes {
		a.eq.Rcodes[i] += b.eq.Rcodes[i]
	}
}

// AddMessage ingests an already-decoded response.
func (a *Accumulator) AddMessage(src ipv4.Addr, msg *dnswire.Message) {
	q, hasQ := msg.Question1()
	if !hasQ {
		a.addEmptyQuestion(msg)
		return
	}

	form, addr, correct := classifyAnswer(msg, q.Name)

	flagIdx := func(b bool) int {
		if b {
			return 1
		}
		return 0
	}
	ri, ai := flagIdx(msg.Header.RA), flagIdx(msg.Header.AA)
	rc := msg.Header.Rcode & 0xF

	switch {
	case form == formNone:
		a.without++
		a.ra[ri].Without++
		a.aa[ai].Without++
		a.rcodeWO[rc]++
	case correct:
		a.correct++
		a.ra[ri].Correct++
		a.aa[ai].Correct++
		a.rcodeW[rc]++
	default:
		a.incorrect++
		a.ra[ri].Incorr++
		a.aa[ai].Incorr++
		a.rcodeW[rc]++
		a.addIncorrect(src, msg, form, addr)
	}
}

// classifyAnswer determines the Table VII form of the answer section and,
// for IP answers, whether the address matches the ground truth.
func classifyAnswer(msg *dnswire.Message, qname string) (answerForm, ipv4.Addr, bool) {
	if len(msg.Answers) == 0 {
		return formNone, 0, false
	}
	var sawMalformed, sawCNAME, sawTXT bool
	for i := range msg.Answers {
		rr := &msg.Answers[i]
		switch {
		case rr.Type == dnswire.TypeA && !rr.Malformed:
			addr := ipv4.Addr(rr.A)
			return formIP, addr, addr == dnssrv.TruthAddr(qname)
		case rr.Type == dnswire.TypeA && rr.Malformed:
			sawMalformed = true
		case rr.Type == dnswire.TypeCNAME:
			sawCNAME = true
		case rr.Type == dnswire.TypeTXT:
			sawTXT = true
		}
	}
	switch {
	case sawCNAME:
		return formURL, 0, false
	case sawTXT:
		return formStr, 0, false
	case sawMalformed:
		return formNA, 0, false
	}
	// An answer section with only exotic record types: treat as the string
	// form with an empty value, the closest Table VII bucket.
	return formStr, 0, false
}

// addIncorrect tracks form multiplicities and runs the threat-intel and
// geolocation analysis on incorrect answers.
func (a *Accumulator) addIncorrect(src ipv4.Addr, msg *dnswire.Message, form answerForm, addr ipv4.Addr) {
	switch form {
	case formIP:
		a.ipCounts[addr]++
		if a.cfg.Threat != nil {
			if rec, ok := a.cfg.Threat.Lookup(addr); ok {
				cat := rec.Dominant()
				a.malPackets[cat]++
				a.malUnique[addr] = cat
				if msg.Header.RA {
					a.malFlags.RA1++
				} else {
					a.malFlags.RA0++
				}
				if msg.Header.AA {
					a.malFlags.AA1++
				} else {
					a.malFlags.AA0++
				}
				if msg.Header.Rcode != dnswire.RcodeNoError {
					a.malNonZeroR++
				}
				country := "ZZ"
				if a.cfg.Geo != nil {
					country = a.cfg.Geo.Country(src)
				}
				a.malGeo[country]++
			}
		}
	case formURL:
		if t, ok := firstTarget(msg, dnswire.TypeCNAME); ok {
			bumpCount(a.urlCounts, t)
		}
	case formStr:
		t, _ := firstTarget(msg, dnswire.TypeTXT)
		bumpCount(a.strCounts, t)
	case formNA:
		a.naPackets++
	}
}

// bumpCount increments m[k] through an owned copy of k: decoded targets
// alias their message's arena (dnswire.UnpackInto), and a map assignment
// may install the live key operand even when the key is already present —
// a lookup-then-clone-on-miss guard is NOT enough to keep aliased bytes
// out of the map.
func bumpCount(m map[string]uint64, k string) {
	m[strings.Clone(k)]++
}

func firstTarget(msg *dnswire.Message, t dnswire.Type) (string, bool) {
	for _, rr := range msg.Answers {
		if rr.Type == t && !rr.Malformed {
			return rr.Target, true
		}
	}
	return "", false
}

// addEmptyQuestion ingests a §IV-B4 response with no question section.
func (a *Accumulator) addEmptyQuestion(msg *dnswire.Message) {
	a.eq.Total++
	if msg.Header.RA {
		a.eq.RA1++
	} else {
		a.eq.RA0++
	}
	if msg.Header.AA {
		a.eq.AA1++
	}
	a.eq.Rcodes[msg.Header.Rcode&0xF]++
	if len(msg.Answers) == 0 {
		return
	}
	a.eq.WithAnswer++
	rr := msg.Answers[0]
	switch {
	case rr.Type == dnswire.TypeA && !rr.Malformed:
		addr := ipv4.Addr(rr.A)
		switch {
		case ipv4.MustParseBlock("192.168.0.0/16").Contains(addr):
			a.eq.PrivateNets++
			a.eq.Private192++
		case ipv4.MustParseBlock("10.0.0.0/8").Contains(addr):
			a.eq.PrivateNets++
			a.eq.Private10++
		default:
			// "Addresses which could not be found in Whois."
			if a.cfg.Geo == nil || a.cfg.Geo.Country(addr) == "ZZ" {
				a.eq.Unroutable++
			}
		}
	default:
		a.eq.BadFormat++
	}
}

// Report finalizes the accumulation into a full report. camp carries the
// campaign-level counters (Table II) measured by the prober and the
// authoritative server.
func (a *Accumulator) Report(camp CampaignCounts) *Report {
	r := &Report{
		Year:        a.cfg.Year,
		Campaign:    camp,
		Undecodable: a.undecodable,
		Correctness: paperdata.Correctness{
			R2:      a.correct + a.incorrect + a.without,
			Without: a.without,
			Correct: a.correct,
			Incorr:  a.incorrect,
		},
		RA:     paperdata.FlagTable{Flag0: a.ra[0], Flag1: a.ra[1]},
		AA:     paperdata.FlagTable{Flag0: a.aa[0], Flag1: a.aa[1]},
		EmptyQ: a.eq,
	}
	copy(r.Rcode.With[:], a.rcodeW[:10])
	copy(r.Rcode.Without[:], a.rcodeWO[:10])

	// Table VII.
	var ipPkts uint64
	for _, n := range a.ipCounts {
		ipPkts += n
	}
	var urlPkts uint64
	for _, n := range a.urlCounts {
		urlPkts += n
	}
	var strPkts uint64
	for _, n := range a.strCounts {
		strPkts += n
	}
	r.Forms = paperdata.IncorrectForms{
		IP:  paperdata.FormCount{Packets: ipPkts, Unique: uint64(len(a.ipCounts))},
		URL: paperdata.FormCount{Packets: urlPkts, Unique: uint64(len(a.urlCounts))},
		Str: paperdata.FormCount{Packets: strPkts, Unique: uint64(len(a.strCounts))},
		NA:  paperdata.FormCount{Packets: a.naPackets},
	}

	// Table VIII: top-10 incorrect addresses.
	type pair struct {
		addr ipv4.Addr
		n    uint64
	}
	pairs := make([]pair, 0, len(a.ipCounts))
	for addr, n := range a.ipCounts {
		pairs = append(pairs, pair{addr, n})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].n != pairs[j].n {
			return pairs[i].n > pairs[j].n
		}
		return pairs[i].addr < pairs[j].addr
	})
	for i := 0; i < len(pairs) && i < 10; i++ {
		ta := paperdata.TopAnswer{
			Addr:    pairs[i].addr.String(),
			Count:   pairs[i].n,
			Private: ipv4.IsPrivate(pairs[i].addr),
		}
		if a.cfg.Geo != nil {
			ta.Org = a.cfg.Geo.Org(pairs[i].addr)
		}
		if a.cfg.Threat != nil {
			_, ta.Reported = a.cfg.Threat.Lookup(pairs[i].addr)
		}
		r.Top10 = append(r.Top10, ta)
	}

	// Tables IX and X.
	r.Malicious = make(map[paperdata.MalCategory]paperdata.MalCount)
	for addr, cat := range a.malUnique {
		mc := r.Malicious[cat]
		mc.IPs++
		r.Malicious[cat] = mc
		_ = addr
	}
	for cat, pkts := range a.malPackets {
		mc := r.Malicious[cat]
		mc.R2 = pkts
		r.Malicious[cat] = mc
		r.MaliciousTotal.R2 += pkts
	}
	r.MaliciousTotal.IPs = uint64(len(a.malUnique))
	r.MalFlags = a.malFlags
	r.MalNonZeroRcode = a.malNonZeroR

	// Geolocation, sorted by count descending then country.
	for c, n := range a.malGeo {
		r.MaliciousGeo = append(r.MaliciousGeo, paperdata.GeoCount{Country: c, R2: n})
	}
	sort.Slice(r.MaliciousGeo, func(i, j int) bool {
		if r.MaliciousGeo[i].R2 != r.MaliciousGeo[j].R2 {
			return r.MaliciousGeo[i].R2 > r.MaliciousGeo[j].R2
		}
		return r.MaliciousGeo[i].Country < r.MaliciousGeo[j].Country
	})

	// §IV-B1 estimates.
	r.Estimates = paperdata.OpenResolverEstimates{
		StrictRA1Correct: a.ra[1].Correct,
		RAOnly:           a.ra[1].Total(),
		CorrectOnly:      a.correct,
	}
	return r
}

// CampaignCounts is the Table II row measured by a run.
type CampaignCounts struct {
	Q1, Q2, R1, R2 uint64
	Duration       time.Duration
	PacketsPerSec  uint64
	// SampleShift records the scaling of the run (0 = full scale).
	SampleShift uint8
}

// Report holds every regenerated table of the evaluation.
type Report struct {
	Year     paperdata.Year
	Campaign CampaignCounts

	Correctness    paperdata.Correctness // Table III
	RA             paperdata.FlagTable   // Table IV
	AA             paperdata.FlagTable   // Table V
	Rcode          paperdata.RcodeRow    // Table VI
	Forms          paperdata.IncorrectForms
	Top10          []paperdata.TopAnswer // Table VIII
	Malicious      map[paperdata.MalCategory]paperdata.MalCount
	MaliciousTotal paperdata.MalCount // Table IX totals
	MalFlags       paperdata.MalFlags // Table X
	MaliciousGeo   []paperdata.GeoCount
	EmptyQ         paperdata.EmptyQuestionStats
	Estimates      paperdata.OpenResolverEstimates

	// MalNonZeroRcode counts malicious packets with a nonzero rcode; the
	// paper found zero (§IV-C3).
	MalNonZeroRcode uint64
	// Undecodable counts R2 packets the wire parser rejected outright.
	Undecodable uint64
}
