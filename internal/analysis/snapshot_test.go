package analysis

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestStateRoundTrip is the checkpoint/restore property: capturing an
// accumulator's state, serializing it through JSON (the checkpoint codec's
// encoding), and restoring it yields an accumulator whose report — and
// whose rendered table bytes — are identical to the original's.
func TestStateRoundTrip(t *testing.T) {
	cfg := mergeCfg()
	stream := genMergeStream(t, cfg, 3000, 99)
	camp := CampaignCounts{Q1: 90000, Q2: 4000, R1: 4000, R2: uint64(len(stream))}

	orig := NewAccumulator(cfg)
	for _, p := range stream {
		orig.AddR2(p.src, p.wire)
	}

	data, err := json.Marshal(orig.State())
	if err != nil {
		t.Fatalf("marshal state: %v", err)
	}
	var st AccumulatorState
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("unmarshal state: %v", err)
	}
	restored := NewAccumulatorFromState(cfg, &st)

	want, got := orig.Report(camp), restored.Report(camp)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored report differs from original")
	}
	if w, g := want.RenderAll(), got.RenderAll(); w != g {
		t.Fatalf("restored rendering differs from original:\nwant:\n%s\ngot:\n%s", w, g)
	}
}

// TestStateIsDeepCopy pins the isolation contract: mutating the
// accumulator after State() must not change a taken state.
func TestStateIsDeepCopy(t *testing.T) {
	cfg := mergeCfg()
	stream := genMergeStream(t, cfg, 1000, 5)
	acc := NewAccumulator(cfg)
	for _, p := range stream[:500] {
		acc.AddR2(p.src, p.wire)
	}
	st := acc.State()
	before, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range stream[500:] {
		acc.AddR2(p.src, p.wire)
	}
	after, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("state mutated by later accumulation")
	}
}

// TestStateRestoreKeepsAccumulating checks a restored accumulator is a
// full replacement: feeding the tail of a stream into a restored mid-point
// state equals feeding the whole stream into one accumulator.
func TestStateRestoreKeepsAccumulating(t *testing.T) {
	cfg := mergeCfg()
	stream := genMergeStream(t, cfg, 2000, 17)
	camp := CampaignCounts{R2: uint64(len(stream))}

	full := NewAccumulator(cfg)
	for _, p := range stream {
		full.AddR2(p.src, p.wire)
	}

	head := NewAccumulator(cfg)
	for _, p := range stream[:1100] {
		head.AddR2(p.src, p.wire)
	}
	resumed := NewAccumulatorFromState(cfg, head.State())
	for _, p := range stream[1100:] {
		resumed.AddR2(p.src, p.wire)
	}
	if !reflect.DeepEqual(resumed.Report(camp), full.Report(camp)) {
		t.Fatalf("resumed accumulator diverged from uninterrupted one")
	}
}
