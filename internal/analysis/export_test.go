package analysis

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"

	"openresolver/internal/paperdata"
)

func TestJSONRoundTrip(t *testing.T) {
	r := paperPerfectReport(paperdata.Y2018)
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReportFromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Correctness != r.Correctness || back.RA != r.RA || back.AA != r.AA {
		t.Error("core tables lost in JSON round trip")
	}
	if back.MaliciousTotal != r.MaliciousTotal || back.MalFlags != r.MalFlags {
		t.Error("malicious tables lost in JSON round trip")
	}
	if len(back.Top10) != len(r.Top10) || back.Top10[0] != r.Top10[0] {
		t.Error("top-10 lost in JSON round trip")
	}
	if len(back.MaliciousGeo) != len(r.MaliciousGeo) {
		t.Error("geo lost in JSON round trip")
	}
	for cat, mc := range r.Malicious {
		if back.Malicious[cat] != mc {
			t.Errorf("category %s lost", cat)
		}
	}
}

func TestJSONRejectsGarbage(t *testing.T) {
	if _, err := ReportFromJSON([]byte("{")); err == nil {
		t.Error("garbage JSON accepted")
	}
}

func TestWriteCSVAllTables(t *testing.T) {
	r := paperPerfectReport(paperdata.Y2018)
	for _, table := range CSVTables {
		var buf bytes.Buffer
		if err := r.WriteCSV(&buf, table); err != nil {
			t.Fatalf("%s: %v", table, err)
		}
		rows, err := csv.NewReader(&buf).ReadAll()
		if err != nil {
			t.Fatalf("%s: reparse: %v", table, err)
		}
		if len(rows) < 2 {
			t.Errorf("%s: only %d rows", table, len(rows))
		}
		// Every row must have the header's width.
		for i, row := range rows {
			if len(row) != len(rows[0]) {
				t.Errorf("%s row %d: %d columns, header has %d", table, i, len(row), len(rows[0]))
			}
		}
	}
}

func TestWriteCSVValues(t *testing.T) {
	r := paperPerfectReport(paperdata.Y2018)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf, "correctness"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "6505764") || !strings.Contains(out, "111093") {
		t.Errorf("correctness CSV = %q", out)
	}
	buf.Reset()
	if err := r.WriteCSV(&buf, "top10"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "216.194.64.193,23692") {
		t.Errorf("top10 CSV = %q", buf.String())
	}
	buf.Reset()
	if err := r.WriteCSV(&buf, "malicious"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Malware,170,23189") {
		t.Errorf("malicious CSV = %q", buf.String())
	}
}

func TestWriteCSVUnknownTable(t *testing.T) {
	r := paperPerfectReport(paperdata.Y2018)
	if err := r.WriteCSV(&bytes.Buffer{}, "nope"); err == nil {
		t.Error("unknown table accepted")
	}
}
