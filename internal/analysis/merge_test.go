package analysis

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"openresolver/internal/behavior"
	"openresolver/internal/dnssrv"
	"openresolver/internal/dnswire"
	"openresolver/internal/geo"
	"openresolver/internal/ipv4"
	"openresolver/internal/paperdata"
	"openresolver/internal/threatintel"
)

// mergeR2 is one synthetic response for the merge property tests.
type mergeR2 struct {
	src  ipv4.Addr
	wire []byte
}

// genMergeStream fabricates a packet stream exercising every accumulator
// path: correct and incorrect IP answers (some malicious), CNAME/TXT/
// malformed forms, no-answer responses across rcodes and flags, empty
// question sections, and undecodable payloads.
func genMergeStream(t *testing.T, cfg Config, n int, seed int64) []mergeR2 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	malicious := cfg.Threat.Addrs()
	out := make([]mergeR2, 0, n)
	for i := 0; i < n; i++ {
		src := ipv4.Addr(0x08000000 + uint32(i))
		qname := dnssrv.FormatProbeName(i%7, i%1000, paperdata.SLD)
		q := dnswire.NewQuery(uint16(i+1), qname, dnswire.TypeA)
		p := behavior.Profile{
			RA:    rng.Intn(2) == 0,
			AA:    rng.Intn(2) == 0,
			Rcode: dnswire.Rcode(rng.Intn(6)),
		}
		switch rng.Intn(10) {
		case 0, 1:
			p.Answer = behavior.AnswerTruth
		case 2:
			p.Answer = behavior.AnswerFixed
			p.Addr = malicious[rng.Intn(len(malicious))]
			p.Rcode = dnswire.RcodeNoError
		case 3:
			p.Answer = behavior.AnswerFixed
			p.Addr = ipv4.Addr(0xC0000200 + uint32(rng.Intn(4)))
		case 4:
			p.Answer = behavior.AnswerCNAME
			p.Name = "redirect" + string(rune('a'+rng.Intn(3))) + ".example.com"
		case 5:
			p.Answer = behavior.AnswerTXT
			p.Name = "garbage-" + string(rune('a'+rng.Intn(3)))
		case 6:
			p.Answer = behavior.AnswerMalformed
		case 7:
			p.Answer = behavior.AnswerNone
			p.OmitQuestion = true
		default:
			p.Answer = behavior.AnswerNone
		}
		res := dnssrv.Result{}
		if p.Answer == behavior.AnswerTruth {
			res = dnssrv.Result{Addr: dnssrv.TruthAddr(qname), OK: true}
		}
		wire, err := behavior.BuildResponse(q, p, res).Pack()
		if err != nil {
			t.Fatal(err)
		}
		if rng.Intn(50) == 0 {
			wire = wire[:4] // undecodable: shorter than a header
		}
		out = append(out, mergeR2{src: src, wire: wire})
	}
	return out
}

func mergeCfg() Config {
	return Config{
		Year:   paperdata.Y2018,
		Threat: threatintel.NewFeed(paperdata.Y2018, 1).DB,
		Geo:    geo.DefaultRegistry(),
	}
}

// TestMergeEqualsSingleAccumulator is the merge property: splitting a
// stream at arbitrary boundaries, accumulating each piece independently,
// and merging the shard accumulators in order equals the
// single-accumulator result, report for report.
func TestMergeEqualsSingleAccumulator(t *testing.T) {
	cfg := mergeCfg()
	stream := genMergeStream(t, cfg, 4000, 42)
	camp := CampaignCounts{Q1: 100000, Q2: 5000, R1: 5000, R2: uint64(len(stream))}

	single := NewAccumulator(cfg)
	for _, p := range stream {
		single.AddR2(p.src, p.wire)
	}
	want := single.Report(camp)

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		shards := 1 + rng.Intn(9)
		// Random ordered split points, including possibly empty shards.
		cuts := make([]int, 0, shards+1)
		cuts = append(cuts, 0)
		for i := 1; i < shards; i++ {
			cuts = append(cuts, rng.Intn(len(stream)+1))
		}
		cuts = append(cuts, len(stream))
		sort.Ints(cuts)
		merged := NewAccumulator(cfg)
		for i := 1; i < len(cuts); i++ {
			shard := NewAccumulator(cfg)
			var scratch dnswire.Message
			for _, p := range stream[cuts[i-1]:cuts[i]] {
				shard.AddR2Into(p.src, p.wire, &scratch)
			}
			merged.Merge(shard)
		}
		got := merged.Report(camp)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (%d shards, cuts %v): merged report differs from single-accumulator report",
				trial, shards, cuts)
		}
	}
}

// TestMergeEmpty checks the identity: merging empty accumulators changes
// nothing, in either direction.
func TestMergeEmpty(t *testing.T) {
	cfg := mergeCfg()
	stream := genMergeStream(t, cfg, 500, 3)
	camp := CampaignCounts{R2: uint64(len(stream))}

	full := NewAccumulator(cfg)
	for _, p := range stream {
		full.AddR2(p.src, p.wire)
	}
	want := full.Report(camp)

	full.Merge(NewAccumulator(cfg))
	if !reflect.DeepEqual(full.Report(camp), want) {
		t.Error("merging an empty accumulator changed the report")
	}

	other := NewAccumulator(cfg)
	for _, p := range stream {
		other.AddR2(p.src, p.wire)
	}
	empty := NewAccumulator(cfg)
	empty.Merge(other)
	if !reflect.DeepEqual(empty.Report(camp), want) {
		t.Error("merging into an empty accumulator lost state")
	}
}

// TestAddR2IntoMatchesAddR2 feeds the same stream through the allocating
// and scratch-reusing ingest paths and requires identical reports.
func TestAddR2IntoMatchesAddR2(t *testing.T) {
	cfg := mergeCfg()
	stream := genMergeStream(t, cfg, 2000, 99)
	camp := CampaignCounts{R2: uint64(len(stream))}

	alloc := NewAccumulator(cfg)
	reuse := NewAccumulator(cfg)
	var scratch dnswire.Message
	for _, p := range stream {
		alloc.AddR2(p.src, p.wire)
		reuse.AddR2Into(p.src, p.wire, &scratch)
	}
	if !reflect.DeepEqual(alloc.Report(camp), reuse.Report(camp)) {
		t.Error("AddR2Into report differs from AddR2 report")
	}
}
