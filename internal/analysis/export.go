package analysis

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"openresolver/internal/paperdata"
)

// Machine-readable report export: JSON for the whole report and CSV for
// the individual tables, so downstream tooling (dashboards, notebooks, the
// continuous-monitoring pipeline of §V) can consume campaign results
// without parsing the text rendering.

// JSON serializes the full report.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ReportFromJSON deserializes a report produced by JSON.
func ReportFromJSON(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("analysis: decode report: %w", err)
	}
	return &r, nil
}

// WriteCSV emits one named table as CSV. Supported tables: "correctness"
// (Table III), "ra" (IV), "aa" (V), "rcode" (VI), "forms" (VII), "top10"
// (VIII), "malicious" (IX), "geo".
func (r *Report) WriteCSV(w io.Writer, table string) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	u := func(n uint64) string { return strconv.FormatUint(n, 10) }
	switch table {
	case "correctness":
		if err := cw.Write([]string{"r2", "without", "correct", "incorrect", "err_pct"}); err != nil {
			return err
		}
		c := r.Correctness
		return cw.Write([]string{
			u(c.R2), u(c.Without), u(c.Correct), u(c.Incorr),
			strconv.FormatFloat(c.ErrPct(), 'f', 3, 64),
		})
	case "ra", "aa":
		t := r.RA
		if table == "aa" {
			t = r.AA
		}
		if err := cw.Write([]string{"flag", "without", "correct", "incorrect", "total"}); err != nil {
			return err
		}
		for i, row := range []paperdata.FlagRow{t.Flag0, t.Flag1} {
			rec := []string{strconv.Itoa(i), u(row.Without), u(row.Correct), u(row.Incorr), u(row.Total())}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		return nil
	case "rcode":
		if err := cw.Write([]string{"rcode", "name", "with_answer", "without_answer"}); err != nil {
			return err
		}
		for i := 0; i < 10; i++ {
			rec := []string{strconv.Itoa(i), paperdata.RcodeNames[i], u(r.Rcode.With[i]), u(r.Rcode.Without[i])}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		return nil
	case "forms":
		if err := cw.Write([]string{"form", "packets", "unique"}); err != nil {
			return err
		}
		rows := []struct {
			name string
			fc   paperdata.FormCount
		}{
			{"ip", r.Forms.IP}, {"url", r.Forms.URL},
			{"string", r.Forms.Str}, {"na", r.Forms.NA},
		}
		for _, row := range rows {
			if err := cw.Write([]string{row.name, u(row.fc.Packets), u(row.fc.Unique)}); err != nil {
				return err
			}
		}
		return nil
	case "top10":
		if err := cw.Write([]string{"rank", "addr", "count", "org", "reported", "private"}); err != nil {
			return err
		}
		for i, t := range r.Top10 {
			rec := []string{
				strconv.Itoa(i + 1), t.Addr, u(t.Count), t.Org,
				strconv.FormatBool(t.Reported), strconv.FormatBool(t.Private),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		return nil
	case "malicious":
		if err := cw.Write([]string{"category", "unique_ips", "r2"}); err != nil {
			return err
		}
		for _, cat := range paperdata.MalCategories {
			mc := r.Malicious[cat]
			if err := cw.Write([]string{string(cat), u(mc.IPs), u(mc.R2)}); err != nil {
				return err
			}
		}
		return cw.Write([]string{"Total", u(r.MaliciousTotal.IPs), u(r.MaliciousTotal.R2)})
	case "geo":
		if err := cw.Write([]string{"country", "r2"}); err != nil {
			return err
		}
		for _, g := range r.MaliciousGeo {
			if err := cw.Write([]string{g.Country, u(g.R2)}); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("analysis: unknown CSV table %q", table)
}

// CSVTables lists the table names WriteCSV accepts.
var CSVTables = []string{"correctness", "ra", "aa", "rcode", "forms", "top10", "malicious", "geo"}
