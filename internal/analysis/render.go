package analysis

import (
	"fmt"
	"strings"

	"openresolver/internal/ipv4"
	"openresolver/internal/paperdata"
)

// This file renders reports as text tables shaped like the paper's.

func commas(n uint64) string {
	s := fmt.Sprintf("%d", n)
	var b strings.Builder
	for i, r := range s {
		if i > 0 && (len(s)-i)%3 == 0 {
			b.WriteByte(',')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// RenderTableI renders the exclusion list (identical for every campaign).
func RenderTableI() string {
	var b strings.Builder
	b.WriteString("Table I — excluded address blocks\n")
	fmt.Fprintf(&b, "%-22s %-8s %15s\n", "Address Block", "RFC", "#")
	var rowSum uint64
	for _, r := range ipv4.ReservedBlocks {
		fmt.Fprintf(&b, "%-22s %-8s %15s\n", r.Block, r.RFC, commas(r.Block.Size()))
		rowSum += r.Block.Size()
	}
	union := ipv4.NewReservedBlocklist().Size()
	fmt.Fprintf(&b, "%-22s %-8s %15s (row sum; union %s)\n", "Total", "—", commas(rowSum), commas(union))
	return b.String()
}

// RenderTableII renders the campaign summary row.
func (r *Report) RenderTableII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — probing summary (%d", r.Year)
	if r.Campaign.SampleShift > 0 {
		fmt.Fprintf(&b, ", sampled 1/%d", uint64(1)<<r.Campaign.SampleShift)
	}
	b.WriteString(")\n")
	c := r.Campaign
	q2pct, r2pct := 0.0, 0.0
	if c.Q1 > 0 {
		q2pct = float64(c.Q2) / float64(c.Q1) * 100
		r2pct = float64(c.R2) / float64(c.Q1) * 100
	}
	fmt.Fprintf(&b, "Duration %v | Q1 %s | Q2,R1 %s (%.4f%%) | R2 %s (%.4f%%)\n",
		c.Duration.Round(1e9), commas(c.Q1), commas(c.Q2), q2pct, commas(c.R2), r2pct)
	return b.String()
}

// RenderTableIII renders answer presence and correctness.
func (r *Report) RenderTableIII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III — dns_answer presence and correctness (%d)\n", r.Year)
	c := r.Correctness
	fmt.Fprintf(&b, "R2 %s | W/O %s | W_corr %s | W_incorr %s | Err %.3f%%\n",
		commas(c.R2), commas(c.Without), commas(c.Correct), commas(c.Incorr), c.ErrPct())
	return b.String()
}

func renderFlagTable(b *strings.Builder, name string, t paperdata.FlagTable) {
	fmt.Fprintf(b, "%-4s %12s %12s %12s %12s %8s\n", "", "W/O", "W_corr", "W_incorr", "Total", "Err(%)")
	for i, row := range []paperdata.FlagRow{t.Flag0, t.Flag1} {
		errPct := 0.0
		if row.With() > 0 {
			errPct = row.ErrPct()
		}
		fmt.Fprintf(b, "%s%d   %12s %12s %12s %12s %8.3f\n",
			name, i, commas(row.Without), commas(row.Correct), commas(row.Incorr),
			commas(row.Total()), errPct)
	}
}

// RenderTableIV renders the RA-bit statistics.
func (r *Report) RenderTableIV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IV — dns_answer vs RA bit (%d)\n", r.Year)
	renderFlagTable(&b, "RA", r.RA)
	return b.String()
}

// RenderTableV renders the AA-bit statistics.
func (r *Report) RenderTableV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table V — dns_answer vs AA bit (%d)\n", r.Year)
	renderFlagTable(&b, "AA", r.AA)
	return b.String()
}

// RenderTableVI renders the rcode distribution.
func (r *Report) RenderTableVI() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table VI — rcode distribution (%d)\n", r.Year)
	fmt.Fprintf(&b, "%-8s", "")
	for _, n := range paperdata.RcodeNames {
		fmt.Fprintf(&b, "%11s", n)
	}
	b.WriteByte('\n')
	for _, row := range []struct {
		label string
		v     [10]uint64
	}{{"W", r.Rcode.With}, {"W/O", r.Rcode.Without}} {
		fmt.Fprintf(&b, "%-8s", row.label)
		for _, n := range row.v {
			fmt.Fprintf(&b, "%11s", commas(n))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderTableVII renders the incorrect-answer forms.
func (r *Report) RenderTableVII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table VII — incorrect answers by form (%d)\n", r.Year)
	fmt.Fprintf(&b, "%-8s %12s %10s\n", "Form", "#R2", "#unique")
	f := r.Forms
	fmt.Fprintf(&b, "%-8s %12s %10s\n", "IP", commas(f.IP.Packets), commas(f.IP.Unique))
	fmt.Fprintf(&b, "%-8s %12s %10s\n", "URL", commas(f.URL.Packets), commas(f.URL.Unique))
	fmt.Fprintf(&b, "%-8s %12s %10s\n", "string", commas(f.Str.Packets), commas(f.Str.Unique))
	if f.NA.Packets > 0 {
		fmt.Fprintf(&b, "%-8s %12s %10s\n", "N/A", commas(f.NA.Packets), "-")
	}
	fmt.Fprintf(&b, "%-8s %12s\n", "Total", commas(f.Total()))
	return b.String()
}

// RenderTableVIII renders the top-10 incorrect addresses.
func (r *Report) RenderTableVIII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table VIII — top 10 incorrect answer addresses (%d)\n", r.Year)
	fmt.Fprintf(&b, "%-17s %10s  %-24s %s\n", "IP address", "#", "Org Name", "Reports")
	var total uint64
	for _, t := range r.Top10 {
		rep := "N"
		if t.Reported {
			rep = "Y"
		}
		if t.Private {
			rep = "N/A"
		}
		fmt.Fprintf(&b, "%-17s %10s  %-24s %s\n", t.Addr, commas(t.Count), t.Org, rep)
		total += t.Count
	}
	fmt.Fprintf(&b, "%-17s %10s\n", "Total", commas(total))
	return b.String()
}

// RenderTableIX renders the malicious-category breakdown.
func (r *Report) RenderTableIX() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table IX — malicious addresses in R2 (%d)\n", r.Year)
	fmt.Fprintf(&b, "%-18s %8s %8s %10s %8s\n", "Category", "#IP", "%IP", "#R2", "%R2")
	tot := r.MaliciousTotal
	for _, cat := range paperdata.MalCategories {
		mc := r.Malicious[cat]
		ipPct, r2Pct := 0.0, 0.0
		if tot.IPs > 0 {
			ipPct = float64(mc.IPs) / float64(tot.IPs) * 100
		}
		if tot.R2 > 0 {
			r2Pct = float64(mc.R2) / float64(tot.R2) * 100
		}
		fmt.Fprintf(&b, "%-18s %8s %7.1f%% %10s %7.1f%%\n",
			cat, commas(mc.IPs), ipPct, commas(mc.R2), r2Pct)
	}
	fmt.Fprintf(&b, "%-18s %8s %8s %10s\n", "Total", commas(tot.IPs), "", commas(tot.R2))
	return b.String()
}

// RenderTableX renders the RA/AA flags on malicious responses.
func (r *Report) RenderTableX() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table X — RA/AA on malicious R2 (%d)\n", r.Year)
	m := r.MalFlags
	tot := r.MaliciousTotal.R2
	pct := func(n uint64) float64 {
		if tot == 0 {
			return 0
		}
		return float64(n) / float64(tot) * 100
	}
	fmt.Fprintf(&b, "RA0 %s (%.1f%%) | RA1 %s (%.1f%%) | AA0 %s (%.1f%%) | AA1 %s (%.1f%%)\n",
		commas(m.RA0), pct(m.RA0), commas(m.RA1), pct(m.RA1),
		commas(m.AA0), pct(m.AA0), commas(m.AA1), pct(m.AA1))
	fmt.Fprintf(&b, "malicious responses with nonzero rcode: %s\n", commas(r.MalNonZeroRcode))
	return b.String()
}

// RenderGeo renders the malicious-resolver country distribution.
func (r *Report) RenderGeo() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Malicious resolvers by country (%d): %d countries\n", r.Year, len(r.MaliciousGeo))
	for i, g := range r.MaliciousGeo {
		fmt.Fprintf(&b, "%s(%s)", g.Country, commas(g.R2))
		if i != len(r.MaliciousGeo)-1 {
			b.WriteString(", ")
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// RenderEmptyQuestion renders the §IV-B4 breakdown.
func (r *Report) RenderEmptyQuestion() string {
	e := r.EmptyQ
	var b strings.Builder
	fmt.Fprintf(&b, "Empty-question responses (%d): total %d\n", r.Year, e.Total)
	fmt.Fprintf(&b, "  with answer %d (private %d: %d in 192.168/16, %d in 10/8; bad format %d; unroutable %d)\n",
		e.WithAnswer, e.PrivateNets, e.Private192, e.Private10, e.BadFormat, e.Unroutable)
	fmt.Fprintf(&b, "  RA1 %d RA0 %d AA1 %d\n", e.RA1, e.RA0, e.AA1)
	fmt.Fprintf(&b, "  rcodes:")
	for i, n := range e.Rcodes {
		if n > 0 {
			fmt.Fprintf(&b, " %s=%d", paperdata.RcodeNames[i], n)
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// RenderEstimates renders the §IV-B1 open-resolver estimates.
func (r *Report) RenderEstimates() string {
	e := r.Estimates
	return fmt.Sprintf(
		"Open-resolver estimates (%d): strict(RA=1 & correct) %s | RA=1 only %s | correct only %s\n",
		r.Year, commas(e.StrictRA1Correct), commas(e.RAOnly), commas(e.CorrectOnly))
}

// RenderAll renders every table in paper order.
func (r *Report) RenderAll() string {
	parts := []string{
		RenderTableI(),
		r.RenderTableII(),
		r.RenderTableIII(),
		r.RenderTableIV(),
		r.RenderTableV(),
		r.RenderTableVI(),
		r.RenderTableVII(),
		r.RenderTableVIII(),
		r.RenderTableIX(),
		r.RenderTableX(),
		r.RenderGeo(),
		r.RenderEmptyQuestion(),
		r.RenderEstimates(),
	}
	return strings.Join(parts, "\n")
}
