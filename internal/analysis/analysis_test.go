package analysis

import (
	"strings"
	"testing"

	"openresolver/internal/dnssrv"
	"openresolver/internal/dnswire"
	"openresolver/internal/geo"
	"openresolver/internal/ipv4"
	"openresolver/internal/paperdata"
	"openresolver/internal/threatintel"
)

const sld = "ucfsealresearch.net"

func response(qname string, build func(*dnswire.Message)) []byte {
	q := dnswire.NewQuery(1, qname, dnswire.TypeA)
	r := dnswire.NewResponse(q)
	build(r)
	return r.MustPack()
}

func newAcc(t *testing.T) *Accumulator {
	t.Helper()
	db := threatintel.NewDB()
	db.Add(ipv4.MustParseAddr("208.91.197.91"),
		threatintel.Report{Category: paperdata.CatMalware, Source: "Cymon", Count: 5})
	db.Add(ipv4.MustParseAddr("66.66.66.66"),
		threatintel.Report{Category: paperdata.CatPhishing, Source: "Cymon", Count: 5})
	return NewAccumulator(Config{Year: paperdata.Y2018, Threat: db, Geo: geo.DefaultRegistry()})
}

func TestClassification(t *testing.T) {
	acc := newAcc(t)
	q1 := dnssrv.FormatProbeName(0, 1, sld)
	src := ipv4.MustParseAddr("28.0.0.1") // US seat

	// Correct answer.
	acc.AddR2(src, response(q1, func(r *dnswire.Message) {
		r.Header.RA = true
		r.AnswerA(uint32(dnssrv.TruthAddr(q1)), 60)
	}))
	// Incorrect benign IP.
	acc.AddR2(src, response(q1, func(r *dnswire.Message) {
		r.AnswerA(uint32(ipv4.MustParseAddr("216.194.64.193")), 60)
	}))
	// Malicious IP with AA set.
	acc.AddR2(src, response(q1, func(r *dnswire.Message) {
		r.Header.AA = true
		r.AnswerA(uint32(ipv4.MustParseAddr("208.91.197.91")), 60)
	}))
	// URL form.
	acc.AddR2(src, response(q1, func(r *dnswire.Message) {
		r.Answers = append(r.Answers, dnswire.RR{
			Name: q1, Type: dnswire.TypeCNAME, Class: dnswire.ClassIN, TTL: 60, Target: "u.dcoin.co",
		})
	}))
	// String form.
	acc.AddR2(src, response(q1, func(r *dnswire.Message) {
		r.Answers = append(r.Answers, dnswire.RR{
			Name: q1, Type: dnswire.TypeTXT, Class: dnswire.ClassIN, TTL: 60, Target: "wild",
		})
	}))
	// N/A form (malformed RDATA).
	acc.AddR2(src, response(q1, func(r *dnswire.Message) {
		r.Answers = append(r.Answers, dnswire.RR{
			Name: q1, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60, Data: []byte{0},
		})
	}))
	// No answer, Refused.
	acc.AddR2(src, response(q1, func(r *dnswire.Message) {
		r.Header.Rcode = dnswire.RcodeRefused
	}))
	// Undecodable garbage.
	acc.AddR2(src, []byte{1, 2, 3})

	r := acc.Report(CampaignCounts{})
	if r.Correctness.Correct != 1 {
		t.Errorf("correct = %d", r.Correctness.Correct)
	}
	if r.Correctness.Incorr != 5 {
		t.Errorf("incorrect = %d", r.Correctness.Incorr)
	}
	if r.Correctness.Without != 1 {
		t.Errorf("without = %d", r.Correctness.Without)
	}
	if r.Undecodable != 1 {
		t.Errorf("undecodable = %d", r.Undecodable)
	}
	if r.Forms.IP.Packets != 2 || r.Forms.IP.Unique != 2 {
		t.Errorf("IP form = %+v", r.Forms.IP)
	}
	if r.Forms.URL.Packets != 1 || r.Forms.Str.Packets != 1 || r.Forms.NA.Packets != 1 {
		t.Errorf("forms = %+v", r.Forms)
	}
	if r.MaliciousTotal.IPs != 1 || r.MaliciousTotal.R2 != 1 {
		t.Errorf("malicious = %+v", r.MaliciousTotal)
	}
	if r.Malicious[paperdata.CatMalware].R2 != 1 {
		t.Errorf("malware row = %+v", r.Malicious[paperdata.CatMalware])
	}
	if r.MalFlags.AA1 != 1 || r.MalFlags.RA0 != 1 {
		t.Errorf("mal flags = %+v", r.MalFlags)
	}
	if len(r.MaliciousGeo) != 1 || r.MaliciousGeo[0].Country != "US" {
		t.Errorf("mal geo = %+v", r.MaliciousGeo)
	}
	if r.Rcode.Without[5] != 1 {
		t.Errorf("refused W/O = %d", r.Rcode.Without[5])
	}
}

func TestFlagAttribution(t *testing.T) {
	acc := newAcc(t)
	q1 := dnssrv.FormatProbeName(0, 2, sld)
	src := ipv4.MustParseAddr("1.2.3.4")

	// RA=0 with a correct answer: the §IV-B1 deviant.
	acc.AddR2(src, response(q1, func(r *dnswire.Message) {
		r.AnswerA(uint32(dnssrv.TruthAddr(q1)), 60)
	}))
	// RA=1 without an answer.
	acc.AddR2(src, response(q1, func(r *dnswire.Message) {
		r.Header.RA = true
	}))
	r := acc.Report(CampaignCounts{})
	if r.RA.Flag0.Correct != 1 || r.RA.Flag1.Without != 1 {
		t.Errorf("RA table = %+v", r.RA)
	}
	if r.Estimates.RAOnly != 1 || r.Estimates.CorrectOnly != 1 || r.Estimates.StrictRA1Correct != 0 {
		t.Errorf("estimates = %+v", r.Estimates)
	}
}

func TestEmptyQuestionAnalysis(t *testing.T) {
	acc := newAcc(t)
	src := ipv4.MustParseAddr("1.2.3.4")
	noQ := func(build func(*dnswire.Message)) []byte {
		m := &dnswire.Message{Header: dnswire.Header{ID: 1, QR: true}}
		build(m)
		return m.MustPack()
	}
	acc.AddR2(src, noQ(func(m *dnswire.Message) { // private 192.168
		m.Header.RA = true
		m.Answers = []dnswire.RR{{Name: "x", Type: dnswire.TypeA, Class: dnswire.ClassIN, A: uint32(ipv4.MustParseAddr("192.168.1.1"))}}
	}))
	acc.AddR2(src, noQ(func(m *dnswire.Message) { // private 10/8
		m.Header.RA = true
		m.Answers = []dnswire.RR{{Name: "x", Type: dnswire.TypeA, Class: dnswire.ClassIN, A: uint32(ipv4.MustParseAddr("10.9.9.9"))}}
	}))
	acc.AddR2(src, noQ(func(m *dnswire.Message) { // bad format (TXT)
		m.Header.RA = true
		m.Answers = []dnswire.RR{{Name: "x", Type: dnswire.TypeTXT, Class: dnswire.ClassIN, Target: "0000"}}
	}))
	acc.AddR2(src, noQ(func(m *dnswire.Message) { // unroutable
		m.Header.RA = true
		m.Answers = []dnswire.RR{{Name: "x", Type: dnswire.TypeA, Class: dnswire.ClassIN, A: uint32(ipv4.MustParseAddr("250.1.2.3"))}}
	}))
	acc.AddR2(src, noQ(func(m *dnswire.Message) { // ServFail, no answer
		m.Header.Rcode = dnswire.RcodeServFail
	}))
	acc.AddR2(src, noQ(func(m *dnswire.Message) { // AA set, Refused
		m.Header.AA = true
		m.Header.Rcode = dnswire.RcodeRefused
	}))

	r := acc.Report(CampaignCounts{})
	e := r.EmptyQ
	if e.Total != 6 || e.WithAnswer != 4 {
		t.Errorf("totals: %+v", e)
	}
	if e.Private192 != 1 || e.Private10 != 1 || e.PrivateNets != 2 {
		t.Errorf("private: %+v", e)
	}
	if e.BadFormat != 1 || e.Unroutable != 1 {
		t.Errorf("badformat/unroutable: %+v", e)
	}
	if e.RA1 != 4 || e.RA0 != 2 || e.AA1 != 1 {
		t.Errorf("flags: %+v", e)
	}
	if e.Rcodes[2] != 1 || e.Rcodes[5] != 1 || e.Rcodes[0] != 4 {
		t.Errorf("rcodes: %v", e.Rcodes)
	}
	// Empty-question packets stay out of the main tables.
	if r.Correctness.R2 != 0 {
		t.Errorf("main universe polluted: %+v", r.Correctness)
	}
}

func TestTop10OrderingAndAnnotations(t *testing.T) {
	acc := newAcc(t)
	q1 := dnssrv.FormatProbeName(0, 3, sld)
	src := ipv4.MustParseAddr("1.2.3.4")
	add := func(addr string, times int) {
		for i := 0; i < times; i++ {
			acc.AddR2(src, response(q1, func(r *dnswire.Message) {
				r.AnswerA(uint32(ipv4.MustParseAddr(addr)), 60)
			}))
		}
	}
	add("216.194.64.193", 5)
	add("208.91.197.91", 3)
	add("192.168.1.1", 2)
	add("8.8.8.8", 1)

	r := acc.Report(CampaignCounts{})
	if len(r.Top10) != 4 {
		t.Fatalf("top10 = %d rows", len(r.Top10))
	}
	if r.Top10[0].Addr != "216.194.64.193" || r.Top10[0].Count != 5 {
		t.Errorf("rank 1 = %+v", r.Top10[0])
	}
	if r.Top10[0].Org != "Tera-byte Dot Com" || r.Top10[0].Reported {
		t.Errorf("rank 1 annotations = %+v", r.Top10[0])
	}
	if !r.Top10[1].Reported {
		t.Error("208.91.197.91 not marked reported")
	}
	if !r.Top10[2].Private || r.Top10[2].Org != "private network" {
		t.Errorf("private row = %+v", r.Top10[2])
	}
}

func TestCNAMEPlusARecordIsIPForm(t *testing.T) {
	// A CNAME chain ending in an A record counts as an IP answer.
	acc := newAcc(t)
	q1 := dnssrv.FormatProbeName(0, 4, sld)
	acc.AddR2(ipv4.MustParseAddr("1.2.3.4"), response(q1, func(r *dnswire.Message) {
		r.Answers = append(r.Answers, dnswire.RR{
			Name: q1, Type: dnswire.TypeCNAME, Class: dnswire.ClassIN, Target: "cdn.example.net",
		})
		r.Answers = append(r.Answers, dnswire.RR{
			Name: "cdn.example.net", Type: dnswire.TypeA, Class: dnswire.ClassIN,
			A: uint32(dnssrv.TruthAddr(q1)),
		})
	}))
	r := acc.Report(CampaignCounts{})
	if r.Correctness.Correct != 1 {
		t.Errorf("CNAME chain not recognized as correct: %+v", r.Correctness)
	}
}

func TestRenderers(t *testing.T) {
	acc := newAcc(t)
	q1 := dnssrv.FormatProbeName(0, 5, sld)
	acc.AddR2(ipv4.MustParseAddr("28.0.0.1"), response(q1, func(r *dnswire.Message) {
		r.Header.RA = true
		r.AnswerA(uint32(ipv4.MustParseAddr("208.91.197.91")), 60)
	}))
	r := acc.Report(CampaignCounts{Q1: 1000, Q2: 2, R1: 2, R2: 1})
	all := r.RenderAll()
	for _, want := range []string{
		"Table I", "592,708,865", "Table III", "Table IV", "Table V", "Table VI",
		"Table VII", "Table VIII", "208.91.197.91", "Table IX", "Malware",
		"Table X", "US(1)",
	} {
		if !strings.Contains(all, want) {
			t.Errorf("RenderAll missing %q", want)
		}
	}
	if !strings.Contains(RenderTableI(), "240.0.0.0/4") {
		t.Error("Table I missing a reserved block")
	}
}

func TestCommas(t *testing.T) {
	tests := map[uint64]string{
		0: "0", 1: "1", 999: "999", 1000: "1,000",
		3702258432: "3,702,258,432", 123456: "123,456",
	}
	for n, want := range tests {
		if got := commas(n); got != want {
			t.Errorf("commas(%d) = %q, want %q", n, got, want)
		}
	}
}

func BenchmarkAddR2(b *testing.B) {
	acc := NewAccumulator(Config{Year: paperdata.Y2018})
	q1 := dnssrv.FormatProbeName(0, 1, sld)
	wire := response(q1, func(r *dnswire.Message) {
		r.Header.RA = true
		r.AnswerA(uint32(dnssrv.TruthAddr(q1)), 60)
	})
	src := ipv4.MustParseAddr("1.2.3.4")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		acc.AddR2(src, wire)
	}
}

func TestRender2013Tables(t *testing.T) {
	acc := NewAccumulator(Config{Year: paperdata.Y2013, Threat: threatintel.NewDB(), Geo: geo.DefaultRegistry()})
	q1 := dnssrv.FormatProbeName(0, 6, sld)
	// An N/A-form answer (malformed RDATA), 2013's signature behaviour.
	acc.AddR2(ipv4.MustParseAddr("28.0.0.2"), response(q1, func(r *dnswire.Message) {
		r.Answers = append(r.Answers, dnswire.RR{
			Name: q1, Type: dnswire.TypeA, Class: dnswire.ClassIN, Data: []byte{1, 2},
		})
	}))
	rep := acc.Report(CampaignCounts{Q1: 100, R2: 1})
	out := rep.RenderTableVII()
	if !strings.Contains(out, "N/A") {
		t.Errorf("2013 Table VII missing the N/A row:\n%s", out)
	}
	all := rep.RenderAll()
	if !strings.Contains(all, "(2013)") {
		t.Error("render not labeled with the campaign year")
	}
}

func TestEstimatesWithEmptyInput(t *testing.T) {
	acc := NewAccumulator(Config{Year: paperdata.Y2018})
	rep := acc.Report(CampaignCounts{})
	if rep.Estimates.RAOnly != 0 || rep.Correctness.R2 != 0 {
		t.Errorf("empty report: %+v", rep.Estimates)
	}
	if len(rep.Top10) != 0 || len(rep.MaliciousGeo) != 0 {
		t.Error("empty report has rows")
	}
	// Rendering an empty report must not divide by zero.
	if out := rep.RenderAll(); len(out) == 0 {
		t.Error("empty render")
	}
}
