package analysis

import (
	"openresolver/internal/ipv4"
	"openresolver/internal/paperdata"
)

// AccumulatorState is the serializable form of an Accumulator: every
// aggregate and per-unique-value map, with exported fields so it survives a
// JSON round trip byte-exactly. It is the checkpoint/restore unit of the
// crash-safe campaign engine (core's shard checkpoints) and the payload the
// future distributed fabric streams from workers to the coordinator — both
// rely on State → Restore reproducing Report output bit-for-bit.
//
// Map-valued fields use integer or string keys only, which encoding/json
// round-trips exactly; the configuration (year, threat DB, geo registry) is
// deliberately not part of the state — the restoring side supplies its own,
// and the enclosing checkpoint's campaign digest guards against mixing
// states across configurations.
type AccumulatorState struct {
	Correct     uint64 `json:"correct"`
	Incorrect   uint64 `json:"incorrect"`
	Without     uint64 `json:"without"`
	Undecodable uint64 `json:"undecodable"`

	RA [2]paperdata.FlagRow `json:"ra"`
	AA [2]paperdata.FlagRow `json:"aa"`

	RcodeW  [16]uint64 `json:"rcode_w"`
	RcodeWO [16]uint64 `json:"rcode_wo"`

	IPCounts  map[ipv4.Addr]uint64 `json:"ip_counts,omitempty"`
	URLCounts map[string]uint64    `json:"url_counts,omitempty"`
	StrCounts map[string]uint64    `json:"str_counts,omitempty"`
	NAPackets uint64               `json:"na_packets"`

	MalPackets  map[paperdata.MalCategory]uint64    `json:"mal_packets,omitempty"`
	MalUnique   map[ipv4.Addr]paperdata.MalCategory `json:"mal_unique,omitempty"`
	MalFlags    paperdata.MalFlags                  `json:"mal_flags"`
	MalGeo      map[string]uint64                   `json:"mal_geo,omitempty"`
	MalNonZeroR uint64                              `json:"mal_nonzero_rcode"`

	EQ paperdata.EmptyQuestionStats `json:"empty_question"`
}

// State captures the accumulator's full analysis state. The maps are deep
// copies: mutating the accumulator afterwards never changes a taken state,
// so a checkpoint written while the campaign continues stays consistent.
func (a *Accumulator) State() *AccumulatorState {
	st := &AccumulatorState{
		Correct:     a.correct,
		Incorrect:   a.incorrect,
		Without:     a.without,
		Undecodable: a.undecodable,
		RA:          a.ra,
		AA:          a.aa,
		RcodeW:      a.rcodeW,
		RcodeWO:     a.rcodeWO,
		NAPackets:   a.naPackets,
		MalFlags:    a.malFlags,
		MalNonZeroR: a.malNonZeroR,
		EQ:          a.eq,
	}
	if len(a.ipCounts) > 0 {
		st.IPCounts = make(map[ipv4.Addr]uint64, len(a.ipCounts))
		for k, v := range a.ipCounts {
			st.IPCounts[k] = v
		}
	}
	if len(a.urlCounts) > 0 {
		st.URLCounts = make(map[string]uint64, len(a.urlCounts))
		for k, v := range a.urlCounts {
			st.URLCounts[k] = v
		}
	}
	if len(a.strCounts) > 0 {
		st.StrCounts = make(map[string]uint64, len(a.strCounts))
		for k, v := range a.strCounts {
			st.StrCounts[k] = v
		}
	}
	if len(a.malPackets) > 0 {
		st.MalPackets = make(map[paperdata.MalCategory]uint64, len(a.malPackets))
		for k, v := range a.malPackets {
			st.MalPackets[k] = v
		}
	}
	if len(a.malUnique) > 0 {
		st.MalUnique = make(map[ipv4.Addr]paperdata.MalCategory, len(a.malUnique))
		for k, v := range a.malUnique {
			st.MalUnique[k] = v
		}
	}
	if len(a.malGeo) > 0 {
		st.MalGeo = make(map[string]uint64, len(a.malGeo))
		for k, v := range a.malGeo {
			st.MalGeo[k] = v
		}
	}
	return st
}

// NewAccumulatorFromState reconstructs an accumulator from a taken (or
// deserialized) state under cfg. Restore then Report produces bytes
// identical to the original accumulator's, and the restored accumulator
// keeps accepting packets and merging — it is a full replacement, not a
// read-only view.
func NewAccumulatorFromState(cfg Config, st *AccumulatorState) *Accumulator {
	a := NewAccumulator(cfg)
	a.correct = st.Correct
	a.incorrect = st.Incorrect
	a.without = st.Without
	a.undecodable = st.Undecodable
	a.ra = st.RA
	a.aa = st.AA
	a.rcodeW = st.RcodeW
	a.rcodeWO = st.RcodeWO
	a.naPackets = st.NAPackets
	a.malFlags = st.MalFlags
	a.malNonZeroR = st.MalNonZeroR
	a.eq = st.EQ
	for k, v := range st.IPCounts {
		a.ipCounts[k] = v
	}
	for k, v := range st.URLCounts {
		a.urlCounts[k] = v
	}
	for k, v := range st.StrCounts {
		a.strCounts[k] = v
	}
	for k, v := range st.MalPackets {
		a.malPackets[k] = v
	}
	for k, v := range st.MalUnique {
		a.malUnique[k] = v
	}
	for k, v := range st.MalGeo {
		a.malGeo[k] = v
	}
	return a
}
