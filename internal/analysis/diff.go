package analysis

import (
	"fmt"
	"strings"

	"openresolver/internal/paperdata"
)

// Report-vs-report diffing: where compare.go measures one report against
// the paper's printed values, this file measures two regenerated reports
// against each other — the primitive behind the sweep runner's comparison
// matrix (every cell is diffed against the loss-free baseline cell of its
// year). The delta list is emitted in a fixed metric order, so rendering
// it is deterministic for any pair of reports.

// ReportDelta is one metric that differs between two reports.
type ReportDelta struct {
	Table  string `json:"table"`
	Metric string `json:"metric"`
	Base   string `json:"base"`
	Other  string `json:"other"`
}

// reportDiffer accumulates deltas, appending only on inequality.
type reportDiffer struct {
	out []ReportDelta
}

func (rd *reportDiffer) u(table, metric string, base, other uint64) {
	if base != other {
		rd.out = append(rd.out, ReportDelta{table, metric, commas(base), commas(other)})
	}
}

func (rd *reportDiffer) s(table, metric, base, other string) {
	if base != other {
		rd.out = append(rd.out, ReportDelta{table, metric, base, other})
	}
}

func (rd *reportDiffer) flagTable(table string, base, other paperdata.FlagTable) {
	for i, rows := range []struct {
		name string
		b, o paperdata.FlagRow
	}{
		{"0", base.Flag0, other.Flag0},
		{"1", base.Flag1, other.Flag1},
	} {
		_ = i
		rd.u(table, rows.name+" W/O", rows.b.Without, rows.o.Without)
		rd.u(table, rows.name+" W_corr", rows.b.Correct, rows.o.Correct)
		rd.u(table, rows.name+" W_incorr", rows.b.Incorr, rows.o.Incorr)
	}
}

// DiffReports returns every metric on which other differs from base, in a
// fixed table-by-table order (campaign counts, correctness, RA/AA flags,
// rcodes, incorrect-answer forms, top-10 answers, malicious categories and
// geolocation, empty-question stats, open-resolver estimates). Two
// identical reports yield an empty list. Either argument may be nil, in
// which case the single delta "report/present" marks the asymmetry.
func DiffReports(base, other *Report) []ReportDelta {
	if base == nil || other == nil {
		if base == other {
			return nil
		}
		present := func(r *Report) string {
			if r == nil {
				return "absent"
			}
			return "present"
		}
		return []ReportDelta{{"report", "present", present(base), present(other)}}
	}
	rd := &reportDiffer{}

	rd.s("campaign", "year", fmt.Sprintf("%d", base.Year), fmt.Sprintf("%d", other.Year))
	rd.u("campaign", "Q1", base.Campaign.Q1, other.Campaign.Q1)
	rd.u("campaign", "Q2", base.Campaign.Q2, other.Campaign.Q2)
	rd.u("campaign", "R1", base.Campaign.R1, other.Campaign.R1)
	rd.u("campaign", "R2", base.Campaign.R2, other.Campaign.R2)
	rd.s("campaign", "duration", base.Campaign.Duration.String(), other.Campaign.Duration.String())

	rd.u("correctness", "R2 analyzed", base.Correctness.R2, other.Correctness.R2)
	rd.u("correctness", "W/O", base.Correctness.Without, other.Correctness.Without)
	rd.u("correctness", "W_corr", base.Correctness.Correct, other.Correctness.Correct)
	rd.u("correctness", "W_incorr", base.Correctness.Incorr, other.Correctness.Incorr)

	rd.flagTable("RA", base.RA, other.RA)
	rd.flagTable("AA", base.AA, other.AA)

	for code := 0; code < len(base.Rcode.With) && code < len(paperdata.RcodeNames); code++ {
		name := paperdata.RcodeNames[code]
		rd.u("rcode", "W "+name, base.Rcode.With[code], other.Rcode.With[code])
		rd.u("rcode", "W/O "+name, base.Rcode.Without[code], other.Rcode.Without[code])
	}

	for _, rows := range []struct {
		name string
		b, o paperdata.FormCount
	}{
		{"IP", base.Forms.IP, other.Forms.IP},
		{"URL", base.Forms.URL, other.Forms.URL},
		{"string", base.Forms.Str, other.Forms.Str},
		{"N/A", base.Forms.NA, other.Forms.NA},
	} {
		rd.u("forms", rows.name+" packets", rows.b.Packets, rows.o.Packets)
		rd.u("forms", rows.name+" unique", rows.b.Unique, rows.o.Unique)
	}

	n := len(base.Top10)
	if len(other.Top10) > n {
		n = len(other.Top10)
	}
	for i := 0; i < n; i++ {
		var b, o paperdata.TopAnswer
		if i < len(base.Top10) {
			b = base.Top10[i]
		}
		if i < len(other.Top10) {
			o = other.Top10[i]
		}
		rd.s("top10", fmt.Sprintf("rank %d", i+1),
			fmt.Sprintf("%s ×%s", b.Addr, commas(b.Count)),
			fmt.Sprintf("%s ×%s", o.Addr, commas(o.Count)))
	}

	for _, cat := range paperdata.MalCategories {
		rd.u("malicious", string(cat)+" unique IPs", base.Malicious[cat].IPs, other.Malicious[cat].IPs)
		rd.u("malicious", string(cat)+" R2", base.Malicious[cat].R2, other.Malicious[cat].R2)
	}
	rd.u("malicious", "total unique IPs", base.MaliciousTotal.IPs, other.MaliciousTotal.IPs)
	rd.u("malicious", "total R2", base.MaliciousTotal.R2, other.MaliciousTotal.R2)
	rd.u("malicious", "RA0", base.MalFlags.RA0, other.MalFlags.RA0)
	rd.u("malicious", "RA1", base.MalFlags.RA1, other.MalFlags.RA1)
	rd.u("malicious", "AA0", base.MalFlags.AA0, other.MalFlags.AA0)
	rd.u("malicious", "AA1", base.MalFlags.AA1, other.MalFlags.AA1)
	rd.u("malicious", "nonzero rcode", base.MalNonZeroRcode, other.MalNonZeroRcode)

	geo := func(r *Report) map[string]uint64 {
		m := make(map[string]uint64, len(r.MaliciousGeo))
		for _, g := range r.MaliciousGeo {
			m[g.Country] = g.R2
		}
		return m
	}
	bg, og := geo(base), geo(other)
	rd.u("geo", "countries", uint64(len(base.MaliciousGeo)), uint64(len(other.MaliciousGeo)))
	// Walk base's country order first, then other's novelties in its order:
	// deterministic without sorting, since both lists are themselves
	// deterministically ordered report fields.
	for _, g := range base.MaliciousGeo {
		rd.u("geo", g.Country, g.R2, og[g.Country])
	}
	for _, g := range other.MaliciousGeo {
		if _, seen := bg[g.Country]; !seen {
			rd.u("geo", g.Country, 0, g.R2)
		}
	}

	rd.u("empty-question", "total", base.EmptyQ.Total, other.EmptyQ.Total)
	rd.u("empty-question", "with answer", base.EmptyQ.WithAnswer, other.EmptyQ.WithAnswer)
	rd.u("empty-question", "RA0", base.EmptyQ.RA0, other.EmptyQ.RA0)
	rd.u("empty-question", "RA1", base.EmptyQ.RA1, other.EmptyQ.RA1)
	rd.u("empty-question", "AA1", base.EmptyQ.AA1, other.EmptyQ.AA1)

	rd.u("estimates", "strict (RA=1 & correct)", base.Estimates.StrictRA1Correct, other.Estimates.StrictRA1Correct)
	rd.u("estimates", "RA=1", base.Estimates.RAOnly, other.Estimates.RAOnly)
	rd.u("estimates", "correct answer", base.Estimates.CorrectOnly, other.Estimates.CorrectOnly)

	rd.u("undecodable", "packets", base.Undecodable, other.Undecodable)
	return rd.out
}

// RenderReportDeltas formats a delta list as an aligned text table; an
// empty list renders as a single "identical" line.
func RenderReportDeltas(deltas []ReportDelta) string {
	if len(deltas) == 0 {
		return "reports identical\n"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %-26s %16s %16s\n", "table", "metric", "base", "cell")
	for _, d := range deltas {
		fmt.Fprintf(&b, "%-16s %-26s %16s %16s\n", d.Table, d.Metric, d.Base, d.Other)
	}
	return b.String()
}
