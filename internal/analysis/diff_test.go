package analysis

import (
	"reflect"
	"strings"
	"testing"

	"openresolver/internal/paperdata"
)

func TestDiffReportsIdentical(t *testing.T) {
	r := paperPerfectReport(paperdata.Y2018)
	if deltas := DiffReports(r, r); len(deltas) != 0 {
		t.Errorf("self-diff produced %d deltas: %+v", len(deltas), deltas)
	}
	if got := RenderReportDeltas(nil); !strings.Contains(got, "identical") {
		t.Errorf("empty render = %q", got)
	}
}

func TestDiffReportsFindsEveryPerturbation(t *testing.T) {
	base := paperPerfectReport(paperdata.Y2018)
	other := paperPerfectReport(paperdata.Y2018)
	other.Campaign.R2 += 7
	other.Correctness.Incorr += 1
	other.RA.Flag1.Correct -= 2
	other.Rcode.With[3] += 9
	other.MaliciousTotal.R2 += 4
	other.Estimates.RAOnly -= 1

	deltas := DiffReports(base, other)
	want := map[string]bool{
		"campaign/R2":                        false,
		"correctness/W_incorr":               false,
		"RA/1 W_corr":                        false,
		"rcode/W " + paperdata.RcodeNames[3]: false,
		"malicious/total R2":                 false,
		"estimates/RA=1":                     false,
	}
	for _, d := range deltas {
		key := d.Table + "/" + d.Metric
		if _, ok := want[key]; ok {
			want[key] = true
		}
	}
	for key, seen := range want {
		if !seen {
			t.Errorf("perturbation %s not reported in %+v", key, deltas)
		}
	}
	if len(deltas) != len(want) {
		t.Errorf("want exactly %d deltas, got %d: %+v", len(want), len(deltas), deltas)
	}

	// Deterministic: repeat diffs are byte-identical when rendered.
	again := DiffReports(base, other)
	if !reflect.DeepEqual(deltas, again) {
		t.Error("repeated diff produced a different delta list")
	}
	if RenderReportDeltas(deltas) != RenderReportDeltas(again) {
		t.Error("repeated render differed")
	}
}

func TestDiffReportsGeoAsymmetry(t *testing.T) {
	base := paperPerfectReport(paperdata.Y2018)
	other := paperPerfectReport(paperdata.Y2018)
	other.MaliciousGeo = append(other.MaliciousGeo, paperdata.GeoCount{Country: "ZZ", R2: 3})

	var sawCount, sawZZ bool
	for _, d := range DiffReports(base, other) {
		if d.Table == "geo" && d.Metric == "countries" {
			sawCount = true
		}
		if d.Table == "geo" && d.Metric == "ZZ" && d.Other == "3" {
			sawZZ = true
		}
	}
	if !sawCount || !sawZZ {
		t.Errorf("geo asymmetry not reported: count=%v zz=%v", sawCount, sawZZ)
	}
}

func TestDiffReportsNil(t *testing.T) {
	r := paperPerfectReport(paperdata.Y2013)
	if deltas := DiffReports(nil, nil); deltas != nil {
		t.Errorf("nil-nil diff = %+v", deltas)
	}
	deltas := DiffReports(r, nil)
	if len(deltas) != 1 || deltas[0].Metric != "present" {
		t.Errorf("report-nil diff = %+v", deltas)
	}
}
