package analysis

import (
	"strings"
	"testing"

	"openresolver/internal/paperdata"
)

// paperPerfectReport builds a report whose values equal the reconciled
// paper numbers for a year, as CompareToPaper's reference input.
func paperPerfectReport(y paperdata.Year) *Report {
	camp := paperdata.Campaigns[y]
	r := &Report{
		Year: y,
		Campaign: CampaignCounts{
			Q1: camp.Q1, Q2: camp.Q2R1, R1: camp.Q2R1, R2: camp.R2,
			Duration: camp.ProbeDuration, PacketsPerSec: camp.PacketsPerSec,
		},
		Correctness: paperdata.CorrectnessByYear[y],
		RA:          paperdata.RATable[y],
		AA:          paperdata.ReconciledAA(y),
		Rcode:       paperdata.ReconciledRcode(y),
		Forms:       paperdata.IncorrectFormsByYear[y],
		Malicious:   map[paperdata.MalCategory]paperdata.MalCount{},
		Estimates:   paperdata.Estimates[y],
	}
	r.Forms.Str.Unique = paperdata.ReconciledStrUnique(y)
	r.Top10 = append(r.Top10, paperdata.Top10[y]...)
	for cat, mc := range paperdata.MaliciousTable[y] {
		r.Malicious[cat] = mc
	}
	r.MaliciousTotal = paperdata.MaliciousTotals[y]
	if y == paperdata.Y2018 {
		r.MalFlags = paperdata.MaliciousFlags2018
		r.EmptyQ = paperdata.ReconciledEmptyQuestion()
	}
	r.MaliciousGeo = append(r.MaliciousGeo, paperdata.MaliciousGeo[y]...)
	return r
}

func TestCompareAllMatchOnPerfectReport(t *testing.T) {
	for _, y := range []paperdata.Year{paperdata.Y2013, paperdata.Y2018} {
		r := paperPerfectReport(y)
		deltas := r.CompareToPaper()
		matched, total := Matches(deltas)
		if matched != total {
			for _, dd := range deltas {
				if !dd.Match {
					t.Errorf("%d %s %s: paper=%s measured=%s", y, dd.Table, dd.Metric, dd.Paper, dd.Measured)
				}
			}
		}
		if total < 100 {
			t.Errorf("%d: only %d comparison rows", y, total)
		}
	}
}

func TestCompareFlagsDivergence(t *testing.T) {
	r := paperPerfectReport(paperdata.Y2018)
	r.Correctness.Correct += 5
	r.MalFlags.RA0 -= 3
	deltas := r.CompareToPaper()
	var sawCorr, sawRA0 bool
	for _, dd := range deltas {
		if dd.Table == "Table III" && dd.Metric == "W_corr" && !dd.Match {
			sawCorr = true
		}
		if dd.Table == "Table X" && dd.Metric == "RA0" && !dd.Match {
			sawRA0 = true
		}
	}
	if !sawCorr || !sawRA0 {
		t.Errorf("divergences not flagged: corr=%v ra0=%v", sawCorr, sawRA0)
	}
}

func TestCompareNotesReconciliations(t *testing.T) {
	r := paperPerfectReport(paperdata.Y2018)
	deltas := r.CompareToPaper()
	var notes int
	for _, dd := range deltas {
		if dd.Note != "" {
			notes++
		}
		// Reconciled cells must still print the PAPER value, not the
		// reconciled one, in the Paper column.
		if dd.Table == "Table V" && dd.Metric == "AA0 W_corr" {
			if dd.Paper != "2,727,477" {
				t.Errorf("paper column rewrote the printed value: %s", dd.Paper)
			}
			if dd.Measured != "2,727,467" || !dd.Match {
				t.Errorf("reconciled measurement mishandled: %s match=%v", dd.Measured, dd.Match)
			}
		}
	}
	if notes == 0 {
		t.Error("no notes emitted for documented reconciliations")
	}
}

func TestCompare2013SyntheticTopNotes(t *testing.T) {
	r := paperPerfectReport(paperdata.Y2013)
	var sawSynthetic bool
	for _, dd := range r.CompareToPaper() {
		if strings.Contains(dd.Note, "reconstructed (D7)") {
			sawSynthetic = true
		}
	}
	if !sawSynthetic {
		t.Error("2013 synthetic top-10 counts not annotated")
	}
}

func TestRatioClose(t *testing.T) {
	if !ratioClose(100, 100, 0.01) || !ratioClose(109, 100, 0.1) {
		t.Error("close ratios rejected")
	}
	if ratioClose(120, 100, 0.1) || ratioClose(80, 100, 0.1) {
		t.Error("far ratios accepted")
	}
	if !ratioClose(0, 0, 0.1) || ratioClose(1, 0, 0.1) {
		t.Error("zero handling wrong")
	}
}
