// Package amplify models the DNS amplification attack of §II-C: an
// attacker sends small queries with the victim's spoofed source address to
// open resolvers, which return much larger responses to the victim. The
// package measures the amplification factor — response bytes delivered to
// the victim per query byte spent by the attacker — for different query
// types, reproducing the paper's observation that 'ANY' queries against
// record-rich zones make open resolvers effective attack amplifiers.
package amplify

import (
	"fmt"
	"time"

	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
)

// Config parameterizes an attack simulation.
type Config struct {
	// Resolvers is the number of open resolvers abused.
	Resolvers int
	// QueriesPerResolver is how many spoofed queries each resolver gets.
	QueriesPerResolver int
	// QueryType is the abused query type; ANY maximizes amplification.
	QueryType dnswire.Type
	// ZoneRecords is the number of records the answered zone holds — the
	// knob the paper describes: "if the authoritative name server manages a
	// larger number of domains, the larger DNS response will be replied".
	ZoneRecords int
	// EDNSSize is the UDP payload size the attacker advertises via EDNS(0)
	// (the paper's reference [17]); 0 selects the 4096-byte default.
	EDNSSize uint16
	// NoEDNS disables EDNS entirely, capping every response at the classic
	// 512-byte limit — the ablation showing why reference [17] matters for
	// the attack.
	NoEDNS bool
	// Seed drives the simulation.
	Seed int64
}

// Result summarizes the attack.
type Result struct {
	QueriesSent   uint64
	AttackerBytes uint64
	VictimPackets uint64
	VictimBytes   uint64
	// Factor is VictimBytes / AttackerBytes, the bandwidth amplification
	// factor (BAF as defined by Rossow's amplification-attack taxonomy).
	Factor float64
	// Duration is the virtual time span of the attack.
	Duration time.Duration
}

// Simulation addresses.
var (
	attackerAddr = ipv4.MustParseAddr("203.113.0.66")
	victimAddr   = ipv4.MustParseAddr("64.106.82.10")
	resolverBase = ipv4.MustParseAddr("24.0.0.0")
)

// amplifier is an open resolver with a populated cache for the abused
// zone: it answers ANY queries with the full RRset and A queries with a
// single record, mirroring a resolver fronting a record-rich domain.
type amplifier struct {
	zoneRecords int
}

func (a *amplifier) HandleDatagram(n *netsim.Node, dg netsim.Datagram) {
	q, err := dnswire.Unpack(dg.Payload)
	if err != nil || q.Header.QR {
		return
	}
	resp := dnswire.NewResponse(q)
	resp.Header.RA = true
	qst, ok := q.Question1()
	if !ok {
		resp.Header.Rcode = dnswire.RcodeFormErr
	} else {
		switch qst.Type {
		case dnswire.TypeANY:
			// The full zone: A + NS + MX + TXT records.
			resp.AnswerA(uint32(resolverBase)+7, 300)
			for i := 0; i < a.zoneRecords; i++ {
				switch i % 3 {
				case 0:
					resp.Answers = append(resp.Answers, dnswire.RR{
						Name: qst.Name, Type: dnswire.TypeNS, Class: dnswire.ClassIN,
						TTL: 300, Target: fmt.Sprintf("ns%d.hosting-%d.example.net", i, i),
					})
				case 1:
					resp.Answers = append(resp.Answers, dnswire.RR{
						Name: qst.Name, Type: dnswire.TypeMX, Class: dnswire.ClassIN,
						TTL: 300, Pref: uint16(i), Target: fmt.Sprintf("mx%d.mail-%d.example.net", i, i),
					})
				default:
					resp.Answers = append(resp.Answers, dnswire.RR{
						Name: qst.Name, Type: dnswire.TypeTXT, Class: dnswire.ClassIN,
						TTL: 300, Target: fmt.Sprintf("v=spf1 include:_spf%02d.example.net ip4:192.0.2.%d -all", i, i%250),
					})
				}
			}
		case dnswire.TypeA:
			resp.AnswerA(uint32(resolverBase)+7, 300)
		default:
			resp.Header.Rcode = dnswire.RcodeNotImp
		}
	}
	// Honor the query's EDNS budget: without EDNS the classic 512-byte
	// limit truncates the response and defeats the amplification.
	wire, err := resp.TruncateTo(q.MaxResponseSize())
	if err != nil {
		return
	}
	n.Send(dg.Src, dg.DstPort, dg.SrcPort, wire)
}

// Run executes the attack simulation and measures amplification.
func Run(cfg Config) (*Result, error) {
	if cfg.Resolvers <= 0 || cfg.QueriesPerResolver <= 0 {
		return nil, fmt.Errorf("amplify: resolvers and queries must be positive")
	}
	if cfg.QueryType == 0 {
		cfg.QueryType = dnswire.TypeANY
	}
	if cfg.ZoneRecords <= 0 {
		cfg.ZoneRecords = 24
	}
	if cfg.EDNSSize == 0 {
		cfg.EDNSSize = dnswire.DefaultEDNSSize
	}
	if cfg.NoEDNS {
		cfg.EDNSSize = 0
	}
	sim := netsim.New(netsim.Config{
		Seed:    cfg.Seed,
		Latency: netsim.UniformLatency(5*time.Millisecond, 40*time.Millisecond),
	})

	res := &Result{}
	sim.Register(victimAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		res.VictimPackets++
		res.VictimBytes += uint64(len(dg.Payload)) + udpIPOverhead
	}))

	resolvers := make([]ipv4.Addr, cfg.Resolvers)
	for i := range resolvers {
		resolvers[i] = resolverBase + ipv4.Addr(i+1)
		sim.Register(resolvers[i], &amplifier{zoneRecords: cfg.ZoneRecords})
	}

	attacker := sim.Register(attackerAddr, netsim.HostFunc(func(*netsim.Node, netsim.Datagram) {}))
	var id uint16
	for q := 0; q < cfg.QueriesPerResolver; q++ {
		for _, r := range resolvers {
			id++
			query := dnswire.NewQuery(id, "victim-zone.example.net", cfg.QueryType)
			if cfg.EDNSSize > 0 {
				query.SetEDNS(dnswire.EDNS{UDPSize: cfg.EDNSSize})
			}
			wire, err := query.Pack()
			if err != nil {
				return nil, err
			}
			res.QueriesSent++
			res.AttackerBytes += uint64(len(wire)) + udpIPOverhead
			// The spoofed source is the victim: responses concentrate there.
			attacker.SendSpoofed(victimAddr, r, 53, 53, wire)
		}
	}
	if err := sim.Run(0); err != nil {
		return nil, err
	}
	if res.AttackerBytes > 0 {
		res.Factor = float64(res.VictimBytes) / float64(res.AttackerBytes)
	}
	res.Duration = sim.Now()
	return res, nil
}

// udpIPOverhead approximates the IPv4 + UDP header cost per datagram,
// included so factors are comparable to wire-level measurements.
const udpIPOverhead = 28

// String renders the result.
func (r *Result) String() string {
	return fmt.Sprintf("queries=%d attacker=%dB victim=%d packets %dB factor=%.1fx",
		r.QueriesSent, r.AttackerBytes, r.VictimPackets, r.VictimBytes, r.Factor)
}
