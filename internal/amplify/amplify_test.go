package amplify

import (
	"testing"

	"openresolver/internal/dnswire"
)

func TestANYAmplifies(t *testing.T) {
	res, err := Run(Config{Resolvers: 50, QueriesPerResolver: 4, QueryType: dnswire.TypeANY, ZoneRecords: 24, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.QueriesSent != 200 {
		t.Errorf("queries = %d", res.QueriesSent)
	}
	if res.VictimPackets != 200 {
		t.Errorf("victim packets = %d, want one response per query", res.VictimPackets)
	}
	// §II-C: ANY responses against record-rich zones amplify heavily.
	if res.Factor < 10 {
		t.Errorf("ANY amplification factor = %.1f, want ≥ 10", res.Factor)
	}
	if res.VictimBytes <= res.AttackerBytes {
		t.Error("no amplification at all")
	}
}

func TestAVsANYFactor(t *testing.T) {
	anyRes, err := Run(Config{Resolvers: 20, QueriesPerResolver: 2, QueryType: dnswire.TypeANY, ZoneRecords: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	aRes, err := Run(Config{Resolvers: 20, QueriesPerResolver: 2, QueryType: dnswire.TypeA, ZoneRecords: 30, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if anyRes.Factor < 5*aRes.Factor {
		t.Errorf("ANY factor %.1f not ≫ A factor %.1f", anyRes.Factor, aRes.Factor)
	}
	// A single A answer is still slightly larger than the query.
	if aRes.Factor <= 1 {
		t.Errorf("A factor = %.2f, want > 1", aRes.Factor)
	}
}

func TestZoneSizeScalesFactor(t *testing.T) {
	small, err := Run(Config{Resolvers: 10, QueriesPerResolver: 1, ZoneRecords: 5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	large, err := Run(Config{Resolvers: 10, QueriesPerResolver: 1, ZoneRecords: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if large.Factor <= small.Factor {
		t.Errorf("factor did not grow with zone size: %.1f vs %.1f", small.Factor, large.Factor)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(Config{Resolvers: 0, QueriesPerResolver: 1}); err == nil {
		t.Error("zero resolvers accepted")
	}
	if _, err := Run(Config{Resolvers: 1, QueriesPerResolver: 0}); err == nil {
		t.Error("zero queries accepted")
	}
}

func TestStringForm(t *testing.T) {
	res, err := Run(Config{Resolvers: 1, QueriesPerResolver: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.String(); len(s) == 0 {
		t.Error("empty string form")
	}
}

func BenchmarkAmplificationANY(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(Config{Resolvers: 100, QueriesPerResolver: 5, QueryType: dnswire.TypeANY, ZoneRecords: 24, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEDNSAblation(t *testing.T) {
	// Without EDNS the classic 512-byte limit truncates ANY responses and
	// caps the amplification — the reason the paper cites RFC 6891 [17].
	with, err := Run(Config{Resolvers: 20, QueriesPerResolver: 2, QueryType: dnswire.TypeANY, ZoneRecords: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(Config{Resolvers: 20, QueriesPerResolver: 2, QueryType: dnswire.TypeANY, ZoneRecords: 40, Seed: 5, NoEDNS: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Factor < 3*without.Factor {
		t.Errorf("EDNS factor %.1f not ≫ classic factor %.1f", with.Factor, without.Factor)
	}
	// Classic responses never exceed 512 bytes + overhead per packet.
	maxPerPacket := without.VictimBytes / without.VictimPackets
	if maxPerPacket > 512+28 {
		t.Errorf("classic response averaged %d bytes", maxPerPacket)
	}
}
