package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// TestWriteOpenMetrics checks the text exposition directly: every counter
// appears as a _total series, histograms carry exact cumulative buckets
// closed by +Inf/_sum/_count, and the byte stream is deterministic for a
// fixed snapshot.
func TestWriteOpenMetrics(t *testing.T) {
	r := NewRegistry()
	sh := r.NewShard("sim")
	sh.Add(CProbeSent, 41)
	sh.Inc(CProbeSent)
	sh.Observe(HRTT, 0) // bucket 0: le="0"
	sh.Observe(HRTT, 1) // bucket 1: le="1"
	sh.Observe(HRTT, 3) // bucket 2: le="3"
	sh.Observe(HRTT, 3)

	snap := r.Snapshot()
	var buf strings.Builder
	if err := snap.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	if !strings.Contains(text, "# TYPE openresolver_probe_sent_total counter\nopenresolver_probe_sent_total 42\n") {
		t.Errorf("probe.sent counter missing or wrong:\n%s", text)
	}
	// Every counter in the enum must be exposed, zero or not.
	for c := Counter(0); c < NumCounters; c++ {
		if !strings.Contains(text, promName(CounterName(c))+"_total ") {
			t.Errorf("counter %s missing from exposition", CounterName(c))
		}
	}
	for _, line := range []string{
		`openresolver_probe_rtt_nanos_bucket{le="0"} 1`,
		`openresolver_probe_rtt_nanos_bucket{le="1"} 2`,
		`openresolver_probe_rtt_nanos_bucket{le="3"} 4`,
		`openresolver_probe_rtt_nanos_bucket{le="+Inf"} 4`,
		`openresolver_probe_rtt_nanos_sum 7`,
		`openresolver_probe_rtt_nanos_count 4`,
	} {
		if !strings.Contains(text, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, text)
		}
	}

	// Cumulative bucket counts must be monotone non-decreasing per series.
	last := map[string]uint64{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		i := strings.Index(line, "_bucket{le=\"")
		if i < 0 || strings.Contains(line, "+Inf") {
			continue
		}
		series := line[:i]
		n, err := strconv.ParseUint(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if n < last[series] {
			t.Errorf("bucket counts not cumulative in %q", line)
		}
		last[series] = n
	}

	// Determinism: a second write of the same snapshot is byte-identical.
	var again strings.Builder
	if err := snap.WriteOpenMetrics(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != text {
		t.Error("two writes of one snapshot differ")
	}
}

// TestMetricsContentNegotiation drives /metrics through the server with
// both faces of the Accept header: Prometheus-style accepts get the
// version=0.0.4 text exposition, everything else keeps the JSON snapshot.
func TestMetricsContentNegotiation(t *testing.T) {
	r := NewRegistry()
	r.NewShard("sim").Add(CSimDelivered, 9)
	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(accept string) (string, string) {
		t.Helper()
		req, err := http.NewRequest("GET", fmt.Sprintf("http://%s/metrics", srv.Addr), nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	// No Accept header (and JSON accepts): the original JSON contract.
	for _, accept := range []string{"", "*/*", "application/json"} {
		body, ctype := get(accept)
		var snap Snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Errorf("Accept %q: not snapshot JSON: %v", accept, err)
		}
		if ctype != "application/json" {
			t.Errorf("Accept %q: Content-Type = %q", accept, ctype)
		}
	}

	// Prometheus-style accepts: the text exposition.
	promAccept := "application/openmetrics-text;version=1.0.0;q=0.75," +
		"text/plain;version=0.0.4;q=0.5,*/*;q=0.1"
	for _, accept := range []string{promAccept, "text/plain"} {
		body, ctype := get(accept)
		if ctype != OpenMetricsContentType {
			t.Errorf("Accept %q: Content-Type = %q, want %q", accept, ctype, OpenMetricsContentType)
		}
		if !strings.Contains(body, "openresolver_sim_delivered_total 9\n") {
			t.Errorf("Accept %q: exposition missing counter:\n%s", accept, body)
		}
		if strings.Contains(body, "{") && !strings.Contains(body, `le="`) {
			t.Errorf("Accept %q: looks like JSON, not exposition", accept)
		}
	}
}
