package obs

import (
	"encoding/json"
	"expvar"
	"runtime/metrics"
	"sync"
	"sync/atomic"
	"time"
)

func loadU64(p *uint64) uint64 { return atomic.LoadUint64(p) }

// Snapshot is a point-in-time export of a Registry: the merged counters
// and histograms, the per-shard counter breakdown, the phase spans, and a
// sample of the Go runtime's GC/heap statistics. It marshals to the JSON
// served at /metrics and published through expvar.
type Snapshot struct {
	TakenAt       time.Time                    `json:"taken_at"`
	UptimeSeconds float64                      `json:"uptime_seconds"`
	Counters      map[string]uint64            `json:"counters"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
	Shards        []ShardSnapshot              `json:"shards,omitempty"`
	Phases        []Span                       `json:"phases,omitempty"`
	Runtime       RuntimeStats                 `json:"runtime"`
}

// ShardSnapshot is one shard's nonzero counters, keyed by counter name.
type ShardSnapshot struct {
	Label    string            `json:"label"`
	Counters map[string]uint64 `json:"counters"`
}

// HistogramSnapshot is a read-out of one merged histogram. Buckets lists
// only occupied buckets, each with its half-open value range.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Bucket is one occupied histogram bucket covering values in [Lo, Hi).
type Bucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// RuntimeStats is a fixed sample of runtime/metrics: enough to correlate a
// campaign's observability counters with the allocator and collector
// without dumping the whole metric namespace.
type RuntimeStats struct {
	HeapBytes       uint64  `json:"heap_bytes"`        // live heap (objects class)
	TotalAllocBytes uint64  `json:"total_alloc_bytes"` // cumulative allocated bytes
	TotalAllocObjs  uint64  `json:"total_alloc_objects"`
	GCCycles        uint64  `json:"gc_cycles"`
	Goroutines      uint64  `json:"goroutines"`
	GCCPUSeconds    float64 `json:"gc_cpu_seconds"`
}

// runtimeSamples is the fixed runtime/metrics query, prepared once.
var runtimeSamples = []metrics.Sample{
	{Name: "/memory/classes/heap/objects:bytes"},
	{Name: "/gc/heap/allocs:bytes"},
	{Name: "/gc/heap/allocs:objects"},
	{Name: "/gc/cycles/total:gc-cycles"},
	{Name: "/sched/goroutines:goroutines"},
	{Name: "/cpu/classes/gc/total:cpu-seconds"},
}

var runtimeMu sync.Mutex

// SampleRuntime reads the fixed runtime/metrics sample set.
func SampleRuntime() RuntimeStats {
	runtimeMu.Lock()
	defer runtimeMu.Unlock()
	metrics.Read(runtimeSamples)
	get := func(i int) uint64 {
		if runtimeSamples[i].Value.Kind() == metrics.KindUint64 {
			return runtimeSamples[i].Value.Uint64()
		}
		return 0
	}
	rs := RuntimeStats{
		HeapBytes:       get(0),
		TotalAllocBytes: get(1),
		TotalAllocObjs:  get(2),
		GCCycles:        get(3),
		Goroutines:      get(4),
	}
	if runtimeSamples[5].Value.Kind() == metrics.KindFloat64 {
		rs.GCCPUSeconds = runtimeSamples[5].Value.Float64()
	}
	return rs
}

// Snapshot merges every shard and assembles the full export. Safe to call
// while the campaign is running: shard reads are atomic, so the snapshot
// is a consistent-enough view for monitoring (counters may be mid-batch,
// never torn). A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		TakenAt:    time.Now(),
		Counters:   make(map[string]uint64, int(NumCounters)),
		Histograms: make(map[string]HistogramSnapshot, int(NumHists)),
		Runtime:    SampleRuntime(),
	}
	if r == nil {
		return snap
	}
	snap.UptimeSeconds = time.Since(r.start).Seconds()
	merged := r.Merged()
	for c := Counter(0); c < NumCounters; c++ {
		snap.Counters[CounterName(c)] = merged.Counter(c)
	}
	for h := Hist(0); h < NumHists; h++ {
		snap.Histograms[HistName(h)] = merged.Histogram(h).Snapshot()
	}
	for _, s := range r.Shards() {
		ss := ShardSnapshot{Label: s.Label(), Counters: map[string]uint64{}}
		for c := Counter(0); c < NumCounters; c++ {
			if v := s.Counter(c); v > 0 {
				ss.Counters[CounterName(c)] = v
			}
		}
		snap.Shards = append(snap.Shards, ss)
	}
	snap.Phases = r.tracer.Spans()
	return snap
}

// Snapshot reads the histogram into its export form.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var hs HistogramSnapshot
	if h == nil {
		return hs
	}
	hs.Count = h.Count()
	hs.Sum = loadU64(&h.sum)
	if m := loadU64(&h.minOff1); m != 0 {
		hs.Min = m - 1
	}
	hs.Max = loadU64(&h.max)
	if hs.Count > 0 {
		hs.Mean = float64(hs.Sum) / float64(hs.Count)
	}
	for b := 0; b < NumBuckets; b++ {
		if n := loadU64(&h.buckets[b]); n > 0 {
			lo, hi := BucketBounds(b)
			hs.Buckets = append(hs.Buckets, Bucket{Lo: lo, Hi: hi, Count: n})
		}
	}
	return hs
}

// JSON renders the snapshot with stable key order (maps marshal sorted).
func (s Snapshot) JSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

var publishMu sync.Mutex

// Publish registers the registry's snapshot as the expvar variable name,
// so it appears in /debug/vars alongside the runtime's memstats. Expvar
// forbids duplicate names, so re-publishing under an existing name (e.g.
// a second campaign in one process) silently replaces nothing and the
// previous registry keeps the name.
func (r *Registry) Publish(name string) {
	if r == nil {
		return
	}
	publishMu.Lock()
	defer publishMu.Unlock()
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
