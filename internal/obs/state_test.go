package obs

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestShardStateRoundTrip: State → JSON → LoadState into an empty shard
// reproduces every counter and histogram aggregate exactly.
func TestShardStateRoundTrip(t *testing.T) {
	src := NewShard("src")
	for c := Counter(0); c < NumCounters; c++ {
		src.Add(c, uint64(c)*3+1)
	}
	for _, v := range []int64{0, 1, 2, 5, 1023, 1024, 1 << 40} {
		src.Observe(HRTT, v)
		src.Observe(HQueueDepth, v/2)
	}

	data, err := json.Marshal(src.State())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var st ShardState
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}

	dst := NewShard("dst")
	dst.LoadState(&st)
	for c := Counter(0); c < NumCounters; c++ {
		if got, want := dst.Counter(c), src.Counter(c); got != want {
			t.Fatalf("counter %s: got %d want %d", CounterName(c), got, want)
		}
	}
	for h := Hist(0); h < NumHists; h++ {
		got, want := dst.Histogram(h).Snapshot(), src.Histogram(h).Snapshot()
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("histogram %s: got %+v want %+v", HistName(h), got, want)
		}
	}
}

// TestShardStateLoadMerges: loading a state into a non-empty shard behaves
// exactly like merging the captured shard (the additive discipline of
// MergeInto), so restored and live metrics compose.
func TestShardStateLoadMerges(t *testing.T) {
	a, b := NewShard("a"), NewShard("b")
	a.Add(CProbeSent, 10)
	a.Observe(HRTT, 100)
	a.Observe(HRTT, 3)
	b.Add(CProbeSent, 5)
	b.Add(CSimLost, 2)
	b.Observe(HRTT, 7000)

	viaMerge := NewShard("m")
	a.MergeInto(viaMerge)
	b.MergeInto(viaMerge)

	viaState := NewShard("s")
	a.MergeInto(viaState)
	viaState.LoadState(b.State())

	for c := Counter(0); c < NumCounters; c++ {
		if viaMerge.Counter(c) != viaState.Counter(c) {
			t.Fatalf("counter %s: merge %d vs state-load %d",
				CounterName(c), viaMerge.Counter(c), viaState.Counter(c))
		}
	}
	if m, s := viaMerge.Histogram(HRTT).Snapshot(), viaState.Histogram(HRTT).Snapshot(); !reflect.DeepEqual(m, s) {
		t.Fatalf("HRTT: merge %+v vs state-load %+v", m, s)
	}
}

// TestShardStateNilSafety: nil shards and nil states are inert.
func TestShardStateNilSafety(t *testing.T) {
	var s *Shard
	if s.State() != nil {
		t.Fatal("nil shard State should be nil")
	}
	s.LoadState(&ShardState{})   // no panic
	NewShard("x").LoadState(nil) // no panic
}
