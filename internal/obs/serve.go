package obs

import (
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the observability HTTP endpoint: the JSON snapshot at
// /metrics, expvar at /debug/vars and net/http/pprof under /debug/pprof/.
type Server struct {
	// Addr is the bound listen address (useful with ":0").
	Addr string

	ln  net.Listener
	srv *http.Server
}

// MetricsHandler returns the /metrics endpoint for r: a JSON snapshot by
// default, switched to the OpenMetrics text exposition when the Accept
// header asks for it. It is the handler obs.Serve mounts, exported so a
// host process with its own router (cmd/orserved) can mount the identical
// endpoint without binding a second listener.
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		// Content negotiation: Prometheus (Accept: openmetrics-text or
		// text/plain) gets the text exposition; everything else keeps the
		// JSON snapshot, which was the endpoint's original contract.
		if wantsOpenMetrics(req.Header.Get("Accept")) {
			w.Header().Set("Content-Type", OpenMetricsContentType)
			if err := r.Snapshot().WriteOpenMetrics(w); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
			return
		}
		data, err := r.Snapshot().JSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(data)
	})
}

// DebugHandler returns the debug surface obs.Serve mounts under /debug/:
// expvar at /debug/vars and net/http/pprof under /debug/pprof/. Like
// MetricsHandler it exists so a host router can mount the surface without
// a second listener; the handler routes by full request path, so mount it
// at /debug/.
func DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve binds addr and serves r's observability surface until Close. The
// registry snapshot is also published to expvar as "openresolver" so it
// shows up in /debug/vars next to the runtime's memstats.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	r.Publish("openresolver")
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(r))
	mux.Handle("/debug/", DebugHandler())
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: mux}}
	go s.srv.Serve(ln)
	return s, nil
}

// Close stops the server and releases the listener.
func (s *Server) Close() error {
	if s == nil || s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// StartProgress launches a goroutine that writes a one-line campaign
// summary to w every interval — probe and event counters, fault drops,
// live heap, and the currently open phase. The returned stop function
// halts the printer, waits for it to finish, and writes one final line so
// a run shorter than the interval still reports its end state; it is safe
// to call once. A nil registry or non-positive interval yields an inert
// stop function.
func (r *Registry) StartProgress(w io.Writer, interval time.Duration) (stop func()) {
	if r == nil || interval <= 0 {
		return func() {}
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-quit:
				return
			case <-tick.C:
				r.writeProgressLine(w)
			}
		}
	}()
	return func() {
		close(quit)
		<-done
		r.writeProgressLine(w)
	}
}

// writeProgressLine formats one progress sample from atomic shard reads.
func (r *Registry) writeProgressLine(w io.Writer) {
	m := r.Merged()
	drops := m.Counter(CFaultLossDrop) + m.Counter(CFaultBurstDrop) +
		m.Counter(CFaultBlackholed) + m.Counter(CFaultBrownedOut)
	rs := SampleRuntime()
	phase := r.Tracer().Current()
	if phase == "" {
		phase = "-"
	}
	fmt.Fprintf(w,
		"obs[%7.1fs] phase=%s probes=%d recv=%d retrans=%d synth=%d events=%d lost=%d faultdrops=%d heap=%dMB\n",
		time.Since(r.Start()).Seconds(), phase,
		m.Counter(CProbeSent), m.Counter(CProbeRecv), m.Counter(CProbeRetransmits),
		m.Counter(CSynthProbes),
		m.Counter(CSimDelivered)+m.Counter(CSimTimers),
		m.Counter(CSimLost), drops, rs.HeapBytes>>20)
}
