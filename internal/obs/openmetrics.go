package obs

import (
	"fmt"
	"io"
	"strings"
)

// OpenMetrics / Prometheus text exposition (stdlib-only), so a Prometheus
// server can scrape -metrics-addr directly instead of going through the
// JSON snapshot. The format is the classic text exposition
// ("text/plain; version=0.0.4"): counters gain the conventional _total
// suffix, histograms emit cumulative le-labelled buckets, and a few
// runtime gauges ride along. Output order is fixed (counter and histogram
// enum order), so two snapshots with equal values expose equal bytes.

// OpenMetricsContentType is the Content-Type of the text exposition.
const OpenMetricsContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName converts a dotted metric name to the Prometheus namespace, e.g.
// "probe.rtt_nanos" → "openresolver_probe_rtt_nanos".
func promName(dotted string) string {
	return "openresolver_" + strings.ReplaceAll(dotted, ".", "_")
}

// WriteOpenMetrics renders the snapshot in the Prometheus text exposition
// format. Zero-valued counters are exposed (a scraper should see the full
// fixed metric set from the first sample), and every histogram closes with
// the mandatory +Inf bucket, _sum and _count series.
func (s Snapshot) WriteOpenMetrics(w io.Writer) error {
	for c := Counter(0); c < NumCounters; c++ {
		name := promName(CounterName(c)) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n",
			name, name, s.Counters[CounterName(c)]); err != nil {
			return err
		}
	}
	for hi := Hist(0); hi < NumHists; hi++ {
		name := promName(HistName(hi))
		hs := s.Histograms[HistName(hi)]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		// Buckets list only occupied ranges; the exposition needs cumulative
		// counts. All observations are integers in [lo, hi), so the largest
		// value a bucket can hold is hi-1 — emitting le="hi-1" makes every
		// cumulative count exact rather than off-by-one at bucket boundaries.
		var cum uint64
		for _, b := range hs.Buckets {
			cum += b.Count
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b.Hi-1, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			name, hs.Count, name, hs.Sum, name, hs.Count); err != nil {
			return err
		}
	}
	gauges := []struct {
		name string
		val  float64
	}{
		{"openresolver_uptime_seconds", s.UptimeSeconds},
		{"openresolver_runtime_heap_bytes", float64(s.Runtime.HeapBytes)},
		{"openresolver_runtime_goroutines", float64(s.Runtime.Goroutines)},
		{"openresolver_runtime_gc_cycles", float64(s.Runtime.GCCycles)},
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", g.name, g.name, g.val); err != nil {
			return err
		}
	}
	return nil
}

// wantsOpenMetrics reports whether an Accept header asks for the text
// exposition. Prometheus sends "application/openmetrics-text" and/or
// "text/plain;version=0.0.4" with q-values; plain curl and the JSON
// consumers send nothing, "*/*" or "application/json" and keep getting the
// JSON snapshot, so adding the negotiation breaks no existing scraper.
func wantsOpenMetrics(accept string) bool {
	return strings.Contains(accept, "application/openmetrics-text") ||
		strings.Contains(accept, "text/plain")
}
