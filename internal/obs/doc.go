// Package obs is the campaign observability layer: zero-allocation
// counters and histograms for the measurement hot paths, a phase tracer
// for campaign stages, and profiling endpoints for watching a live run.
//
// The design constraints come from the engine it instruments. The
// discrete-event simulator and the prober are allocation-free in steady
// state and bit-reproducible per (config, seed); instrumentation must not
// cost either property. Three rules follow:
//
//   - Everything is nil-safe. A nil *Registry hands out nil *Shard and
//     *Tracer handles, and every method on a nil receiver is a no-op, so
//     instrumented code calls sinks unconditionally — no flag checks, no
//     wrapper types — and a campaign without observability pays only an
//     inlined nil test per event.
//
//   - Hot-path writes never allocate. A Shard is a fixed array of counters
//     plus fixed-bucket histograms; Inc/Add/Observe are atomic adds into
//     preallocated memory (the alloc-budget tests in netsim and prober pin
//     the instrumented send/Step paths at 0 allocs/op). Atomics make the
//     shards safe to read concurrently — the metrics server and the
//     progress printer sample them while the campaign runs.
//
//   - Aggregation is deterministic. Each worker (the single-threaded
//     simulator, or one goroutine of the parallel synthetic engine) owns
//     its shard; merging sums counters and per-bucket histogram counts,
//     which is commutative and associative, so the merged snapshot is
//     identical for any worker count and any merge order — the same
//     argument that makes analysis.Accumulator.Merge safe (DESIGN.md §9).
//
// Histograms use fixed log2 buckets (bucket b counts values whose bit
// length is b, i.e. [2^(b-1), 2^b)): no configuration to drift between
// shards, O(1) allocation-free observation via bits.Len64, and exact
// merges — adding two histograms' buckets loses nothing, unlike mergers
// of adaptive or sampled summaries.
//
// The Tracer records begin/end spans for campaign stages (scan
// permutation, population placement, simulation sweep, synthesis,
// analysis/report) on the wall clock. Spans are observability output
// only; nothing in the deterministic path reads them back.
//
// Serve exposes everything over HTTP behind one flag (-metrics-addr on
// the CLIs): a JSON snapshot at /metrics (counters, histograms, phase
// spans, runtime/metrics GC and heap stats), expvar at /debug/vars, and
// net/http/pprof at /debug/pprof/. StartProgress prints a one-line
// summary periodically for terminal runs.
package obs
