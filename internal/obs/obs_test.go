package obs

import (
	"math/bits"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// TestHistogramBucketBoundaries pins the bucket function at every power of
// two and its neighbours: value v lands in bucket bits.Len64(v), whose
// bounds satisfy lo ≤ v < hi.
func TestHistogramBucketBoundaries(t *testing.T) {
	var h Histogram
	values := []uint64{0, 1, 2, 3, 4, 7, 8, 255, 256, 1<<32 - 1, 1 << 32, 1<<63 - 1, 1 << 63}
	for _, v := range values {
		h.Observe(int64(v)) // 1<<63 wraps negative and clamps to 0; checked below
	}
	// Rebuild expected bucket counts directly from the definition.
	want := map[int]uint64{}
	for _, v := range values {
		if int64(v) < 0 {
			v = 0 // Observe clamps negative int64 inputs
		}
		want[bits.Len64(v)]++
	}
	for b := 0; b < NumBuckets; b++ {
		if got := h.buckets[b]; got != want[b] {
			t.Errorf("bucket %d = %d, want %d", b, got, want[b])
		}
	}
	// Bounds invariants: contiguous coverage, v ∈ [lo, hi) for its bucket.
	for b := 1; b < NumBuckets; b++ {
		lo, _ := BucketBounds(b)
		_, prevHi := BucketBounds(b - 1)
		if lo != prevHi {
			t.Errorf("bucket %d lo = %d, want previous hi %d", b, lo, prevHi)
		}
	}
	for _, v := range []uint64{0, 1, 5, 1023, 1024, 1 << 40} {
		b := bits.Len64(v)
		lo, hi := BucketBounds(b)
		if v < lo || v >= hi {
			t.Errorf("value %d outside its bucket %d bounds [%d, %d)", v, b, lo, hi)
		}
	}
}

// TestHistogramMinMaxMean checks the summary stats over a known set.
func TestHistogramMinMaxMean(t *testing.T) {
	var h Histogram
	for _, v := range []int64{30, 10, 20} {
		h.Observe(v)
	}
	hs := h.Snapshot()
	if hs.Count != 3 || hs.Sum != 60 || hs.Min != 10 || hs.Max != 30 || hs.Mean != 20 {
		t.Errorf("snapshot = %+v, want count 3 sum 60 min 10 max 30 mean 20", hs)
	}
	// Negative observations clamp to zero and update min.
	h.Observe(-5)
	if hs := h.Snapshot(); hs.Min != 0 || hs.Count != 4 {
		t.Errorf("after clamped observe: %+v", hs)
	}
}

// TestHistogramMergeCommutative is the determinism argument as a property
// test: splitting any observation sequence across shards and merging the
// shards in any order must reproduce the single-histogram result exactly.
func TestHistogramMergeCommutative(t *testing.T) {
	f := func(vals []uint32, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const shards = 4
		var whole Histogram
		parts := make([]*Histogram, shards)
		for i := range parts {
			parts[i] = &Histogram{}
		}
		for _, v := range vals {
			whole.Observe(int64(v))
			parts[rng.Intn(shards)].Observe(int64(v))
		}
		// Merge the parts in a random permutation.
		var merged Histogram
		for _, i := range rng.Perm(shards) {
			merged.Merge(parts[i])
		}
		return reflect.DeepEqual(whole.Snapshot(), merged.Snapshot())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestShardMergeCommutative extends the property to whole shards: counters
// and histograms merged in any shard order give identical totals.
func TestShardMergeCommutative(t *testing.T) {
	f := func(incs []uint8, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const shards = 3
		parts := make([]*Shard, shards)
		for i := range parts {
			parts[i] = NewShard("s")
		}
		whole := NewShard("whole")
		for _, x := range incs {
			c := Counter(x) % NumCounters
			h := Hist(x) % NumHists
			s := parts[rng.Intn(shards)]
			s.Inc(c)
			s.Observe(h, int64(x))
			whole.Inc(c)
			whole.Observe(h, int64(x))
		}
		for _, order := range [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}} {
			merged := NewShard("m")
			for _, i := range order {
				parts[i].MergeInto(merged)
			}
			for c := Counter(0); c < NumCounters; c++ {
				if merged.Counter(c) != whole.Counter(c) {
					return false
				}
			}
			for h := Hist(0); h < NumHists; h++ {
				if !reflect.DeepEqual(merged.Histogram(h).Snapshot(), whole.Histogram(h).Snapshot()) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestNilSafety drives every sink through nil handles: a campaign without
// observability must be able to call everything unconditionally.
func TestNilSafety(t *testing.T) {
	var r *Registry
	sh := r.NewShard("x")
	if sh != nil {
		t.Fatal("nil registry returned a live shard")
	}
	sh.Inc(CSimSent)
	sh.Add(CSimSent, 5)
	sh.Observe(HRTT, 42)
	sh.MergeInto(nil)
	if sh.Counter(CSimSent) != 0 || sh.Label() != "" || sh.Histogram(HRTT).Count() != 0 {
		t.Error("nil shard leaked state")
	}
	tr := r.Tracer()
	if tr != nil {
		t.Fatal("nil registry returned a live tracer")
	}
	id := tr.Begin("phase")
	tr.End(id)
	if tr.Spans() != nil || tr.Current() != "" {
		t.Error("nil tracer recorded spans")
	}
	var h *Histogram
	h.Observe(1)
	h.Merge(&Histogram{})
	if h.Count() != 0 {
		t.Error("nil histogram counted")
	}
	if s := r.Snapshot(); len(s.Shards) != 0 || len(s.Phases) != 0 {
		t.Errorf("nil registry snapshot not empty: %+v", s)
	}
	r.Publish("nil-registry")
	if stop := r.StartProgress(nil, time.Second); stop == nil {
		t.Error("nil registry progress returned nil stop")
	} else {
		stop()
	}
}

// TestTracerSpans covers begin/end ordering, nesting, the open-span probe
// and double-End idempotence.
func TestTracerSpans(t *testing.T) {
	r := NewRegistry()
	tr := r.Tracer()
	outer := tr.Begin("outer")
	inner := tr.Begin("inner")
	if got := tr.Current(); got != "inner" {
		t.Errorf("Current = %q, want inner", got)
	}
	tr.End(inner)
	if got := tr.Current(); got != "outer" {
		t.Errorf("Current after inner end = %q, want outer", got)
	}
	tr.End(outer)
	tr.End(outer) // double End: no-op
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Name != "outer" || spans[1].Name != "inner" {
		t.Errorf("span order = %q, %q", spans[0].Name, spans[1].Name)
	}
	for _, sp := range spans {
		if !sp.Done {
			t.Errorf("span %q not closed", sp.Name)
		}
		if sp.End < sp.Start {
			t.Errorf("span %q ends before it starts: %v < %v", sp.Name, sp.End, sp.Start)
		}
	}
	if tr.Current() != "" {
		t.Errorf("Current with all spans closed = %q, want empty", tr.Current())
	}
}

// TestRegistrySnapshot checks the merged export: counters summed across
// shards, histograms merged, per-shard breakdown limited to nonzero
// counters, and runtime stats populated.
func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	a := r.NewShard("worker-0")
	b := r.NewShard("worker-1")
	a.Add(CProbeSent, 10)
	b.Add(CProbeSent, 5)
	b.Inc(CProbeRecv)
	a.Observe(HRTT, int64(20*time.Millisecond))
	b.Observe(HRTT, int64(40*time.Millisecond))
	sp := r.Tracer().Begin("simulate")
	r.Tracer().End(sp)

	s := r.Snapshot()
	if got := s.Counters[CounterName(CProbeSent)]; got != 15 {
		t.Errorf("merged probe.sent = %d, want 15", got)
	}
	if got := s.Counters[CounterName(CProbeRecv)]; got != 1 {
		t.Errorf("merged probe.recv = %d, want 1", got)
	}
	if got := s.Histograms[HistName(HRTT)]; got.Count != 2 || got.Min != uint64(20*time.Millisecond) {
		t.Errorf("merged rtt histogram = %+v", got)
	}
	if len(s.Shards) != 2 || s.Shards[0].Label != "worker-0" {
		t.Fatalf("shards = %+v", s.Shards)
	}
	if _, ok := s.Shards[0].Counters[CounterName(CProbeRecv)]; ok {
		t.Error("zero counter reported in per-shard breakdown")
	}
	if len(s.Phases) != 1 || s.Phases[0].Name != "simulate" || !s.Phases[0].Done {
		t.Errorf("phases = %+v", s.Phases)
	}
	if s.Runtime.HeapBytes == 0 || s.Runtime.Goroutines == 0 {
		t.Errorf("runtime sample empty: %+v", s.Runtime)
	}
	data, err := s.JSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"probe.sent"`, `"probe.rtt_nanos"`, `"phases"`, `"runtime"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("snapshot JSON missing %s", key)
		}
	}
}

// TestCounterAndHistNamesComplete guards the name tables against a new
// enum value landing without a snapshot identifier.
func TestCounterAndHistNamesComplete(t *testing.T) {
	for c := Counter(0); c < NumCounters; c++ {
		if CounterName(c) == "" {
			t.Errorf("counter %d has no name", c)
		}
	}
	for h := Hist(0); h < NumHists; h++ {
		if HistName(h) == "" {
			t.Errorf("histogram %d has no name", h)
		}
	}
}

// TestObserveAllocFree pins the hot-path sinks at zero allocations.
func TestObserveAllocFree(t *testing.T) {
	sh := NewShard("hot")
	if avg := testing.AllocsPerRun(1000, func() {
		sh.Inc(CSimSent)
		sh.Add(CSimSent, 2)
		sh.Observe(HQueueDepth, 17)
	}); avg != 0 {
		t.Errorf("shard sinks allocate %v/op, want 0", avg)
	}
}
