package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one cumulative metric. The set is a fixed enum so a
// Shard is a flat array — no map lookups, no registration on the hot path.
type Counter uint8

// The counter set, grouped by subsystem. Names (CounterName) are dotted
// lowercase, stable identifiers for the snapshot and expvar output.
const (
	// Discrete-event core (internal/netsim).
	CSimSent         Counter = iota // datagrams submitted by hosts
	CSimDelivered                   // datagrams handed to a registered host
	CSimLost                        // datagrams dropped (loss model or impairment)
	CSimNoRoute                     // datagrams dead-lettered (no host)
	CSimTimers                      // timer events fired
	CSimVirtualNanos                // virtual nanoseconds simulated
	CSimWallNanos                   // wall nanoseconds spent in the event loop

	// Fault-injection pipeline causes (internal/netsim/impair.go).
	CFaultLossDrop   // dropped by i.i.d. loss impairment
	CFaultBurstDrop  // dropped by Gilbert–Elliott burst loss
	CFaultBlackholed // dropped by a prefix blackhole
	CFaultBrownedOut // dropped by a brownout window
	CFaultDuplicated // duplicate copies injected
	CFaultCorrupted  // payloads with a flipped bit
	CFaultReordered  // datagrams given extra reordering delay

	// Prober (internal/prober).
	CProbeSent        // unique probes transmitted (Q1)
	CProbeRecv        // R2 packets collected
	CProbeAnswered    // subdomains burned by a first response
	CProbeRetransmits // retry transmissions sent
	CProbeLate        // responses after sweep/rotation
	CProbeDup         // duplicate responses for burned subdomains
	CProbeGaveUp      // probes abandoned with budget exhausted
	CProbeBad         // R2 packets that failed to decode
	CProbeReused      // subdomains returned to the pool

	// Synthetic engine (internal/core).
	CSynthProbes // probes synthesized through the analysis pipeline
	CSynthBytes  // response wire bytes encoded

	// Event-queue placement (internal/netsim, PR 6). Appended after the
	// original set so existing snapshot orderings are unchanged.
	CSimTimerRing // timer arms accepted by the monotone ring fast path
	CSimTimerHeap // timer arms that fell back to the heap

	// Observatory service daemon (internal/serve). These count API-level
	// job traffic on the daemon's own registry; each job additionally runs
	// against a private per-job registry carrying the campaign counters
	// above. Appended so existing snapshot orderings are unchanged.
	CServeSubmitted // job specs accepted by the manager
	CServeCacheHits // submissions served from the digest cache without a run
	CServeDenied    // submissions rejected by tenant admission control
	CServeCompleted // jobs that ran to completion
	CServeFailed    // jobs that ended in an error
	CServeCancelled // jobs stopped at a shard boundary by cancel/drain
	CServeCellsDone // sweep cells completed across all jobs

	// Distributed campaign fabric (internal/fabric). Counted on the
	// coordinator's shard; like the serve.* set they describe control-plane
	// traffic, never campaign bytes. Appended so existing snapshot
	// orderings are unchanged.
	CFabricWorkers       // workers that completed the HELLO handshake
	CFabricWorkersGone   // worker connections closed (liveness = hellos − gone)
	CFabricLeases        // shard leases granted
	CFabricLeaseExpired  // leases reaped after missed heartbeats or worker death
	CFabricRequeued      // shards returned to the pending queue (expiry or NACK)
	CFabricResults       // shard result envelopes accepted and recorded
	CFabricDupResults    // duplicate RESULTs for already-recorded shards (dropped)
	CFabricNacks         // shard failures reported by workers
	CFabricEnvelopeBytes // envelope payload bytes received from workers

	NumCounters // array size; not a real counter
)

var counterNames = [NumCounters]string{
	CSimSent:          "sim.sent",
	CSimDelivered:     "sim.delivered",
	CSimLost:          "sim.lost",
	CSimNoRoute:       "sim.noroute",
	CSimTimers:        "sim.timers",
	CSimVirtualNanos:  "sim.virtual_nanos",
	CSimWallNanos:     "sim.wall_nanos",
	CFaultLossDrop:    "fault.drop.loss",
	CFaultBurstDrop:   "fault.drop.burst",
	CFaultBlackholed:  "fault.drop.blackhole",
	CFaultBrownedOut:  "fault.drop.brownout",
	CFaultDuplicated:  "fault.duplicated",
	CFaultCorrupted:   "fault.corrupted",
	CFaultReordered:   "fault.reordered",
	CProbeSent:        "probe.sent",
	CProbeRecv:        "probe.recv",
	CProbeAnswered:    "probe.answered",
	CProbeRetransmits: "probe.retransmits",
	CProbeLate:        "probe.late",
	CProbeDup:         "probe.dup_responses",
	CProbeGaveUp:      "probe.gave_up",
	CProbeBad:         "probe.bad_packets",
	CProbeReused:      "probe.reused",
	CSynthProbes:      "synth.probes",
	CSynthBytes:       "synth.bytes",
	CSimTimerRing:     "sim.timer_ring",
	CSimTimerHeap:     "sim.timer_heap",
	CServeSubmitted:   "serve.submitted",
	CServeCacheHits:   "serve.cache_hits",
	CServeDenied:      "serve.denied",
	CServeCompleted:   "serve.completed",
	CServeFailed:      "serve.failed",
	CServeCancelled:   "serve.cancelled",
	CServeCellsDone:   "serve.cells_done",

	CFabricWorkers:       "fabric.workers_connected",
	CFabricWorkersGone:   "fabric.workers_disconnected",
	CFabricLeases:        "fabric.leases_granted",
	CFabricLeaseExpired:  "fabric.leases_expired",
	CFabricRequeued:      "fabric.shards_requeued",
	CFabricResults:       "fabric.results_merged",
	CFabricDupResults:    "fabric.results_duplicate",
	CFabricNacks:         "fabric.nacks",
	CFabricEnvelopeBytes: "fabric.envelope_bytes",
}

// CounterName returns the stable dotted name of c.
func CounterName(c Counter) string { return counterNames[c] }

// Hist identifies one histogram; like Counter it is a fixed enum.
type Hist uint8

// The histogram set. All values are non-negative integers in the unit
// named here.
const (
	HRTT        Hist = iota // probe response latency, nanoseconds
	HQueueDepth             // event-queue length at each pop
	HRespBytes              // synthesized response wire size, bytes

	NumHists // array size; not a real histogram
)

var histNames = [NumHists]string{
	HRTT:        "probe.rtt_nanos",
	HQueueDepth: "sim.queue_depth",
	HRespBytes:  "synth.resp_bytes",
}

// HistName returns the stable dotted name of h.
func HistName(h Hist) string { return histNames[h] }

// NumBuckets is the fixed bucket count of every Histogram: bucket 0 holds
// the value 0 and bucket b ≥ 1 holds values in [2^(b-1), 2^b) — one bucket
// per bit length, covering the whole uint64 range.
const NumBuckets = 65

// Histogram is a fixed-bucket log2-scale histogram. The zero value is
// ready to use. Writes are atomic adds, so one writer and any number of
// concurrent readers need no lock; Merge adds per-bucket counts, which is
// exact and commutative.
type Histogram struct {
	count   uint64
	sum     uint64
	minOff1 uint64 // min+1; 0 means no observation yet
	max     uint64
	buckets [NumBuckets]uint64
}

// Observe records v. Negative values clamp to 0. Nil-safe and
// allocation-free.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	u := uint64(v)
	if v < 0 {
		u = 0
	}
	atomic.AddUint64(&h.count, 1)
	atomic.AddUint64(&h.sum, u)
	atomic.AddUint64(&h.buckets[bits.Len64(u)], 1)
	for {
		cur := atomic.LoadUint64(&h.minOff1)
		if cur != 0 && cur-1 <= u {
			break
		}
		if atomic.CompareAndSwapUint64(&h.minOff1, cur, u+1) {
			break
		}
	}
	for {
		cur := atomic.LoadUint64(&h.max)
		if u <= cur || atomic.CompareAndSwapUint64(&h.max, cur, u) {
			break
		}
	}
}

// Merge adds o's observations into h. Nil o or nil h are no-ops.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	atomic.AddUint64(&h.count, atomic.LoadUint64(&o.count))
	atomic.AddUint64(&h.sum, atomic.LoadUint64(&o.sum))
	for b := range o.buckets {
		if n := atomic.LoadUint64(&o.buckets[b]); n > 0 {
			atomic.AddUint64(&h.buckets[b], n)
		}
	}
	if om := atomic.LoadUint64(&o.minOff1); om != 0 {
		for {
			cur := atomic.LoadUint64(&h.minOff1)
			if cur != 0 && cur <= om {
				break
			}
			if atomic.CompareAndSwapUint64(&h.minOff1, cur, om) {
				break
			}
		}
	}
	if ox := atomic.LoadUint64(&o.max); ox > 0 {
		for {
			cur := atomic.LoadUint64(&h.max)
			if ox <= cur || atomic.CompareAndSwapUint64(&h.max, cur, ox) {
				break
			}
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return atomic.LoadUint64(&h.count)
}

// BucketBounds returns the half-open value range [lo, hi) of bucket b.
// Bucket 0 is exactly {0} (returned as [0, 1)); the last bucket's hi
// saturates at MaxUint64.
func BucketBounds(b int) (lo, hi uint64) {
	if b == 0 {
		return 0, 1
	}
	lo = uint64(1) << (b - 1)
	if b >= 64 {
		return lo, ^uint64(0)
	}
	return lo, uint64(1) << b
}

// Shard is one worker's private metric set: a fixed array of counters and
// histograms. Writers use atomic adds, so a shard is written by its owner
// and read concurrently by the snapshot/progress side without locks.
// All methods are nil-safe no-ops, letting instrumented code run with
// observability disabled at the cost of an inlined nil test.
type Shard struct {
	label    string
	counters [NumCounters]uint64
	hists    [NumHists]Histogram
}

// NewShard creates a free-standing shard (outside any Registry); campaign
// code normally obtains shards from Registry.NewShard instead.
func NewShard(label string) *Shard { return &Shard{label: label} }

// Label returns the shard's registration label.
func (s *Shard) Label() string {
	if s == nil {
		return ""
	}
	return s.label
}

// Inc adds 1 to counter c.
func (s *Shard) Inc(c Counter) {
	if s == nil {
		return
	}
	atomic.AddUint64(&s.counters[c], 1)
}

// Add adds n to counter c.
func (s *Shard) Add(c Counter, n uint64) {
	if s == nil {
		return
	}
	atomic.AddUint64(&s.counters[c], n)
}

// Counter returns the current value of c.
func (s *Shard) Counter(c Counter) uint64 {
	if s == nil {
		return 0
	}
	return atomic.LoadUint64(&s.counters[c])
}

// Observe records v into histogram h.
func (s *Shard) Observe(h Hist, v int64) {
	if s == nil {
		return
	}
	s.hists[h].Observe(v)
}

// Histogram returns the shard's histogram h for direct reads (merging,
// snapshots). Returns nil on a nil shard.
func (s *Shard) Histogram(h Hist) *Histogram {
	if s == nil {
		return nil
	}
	return &s.hists[h]
}

// MergeInto adds the shard's counters and histograms into dst. Counter
// addition and per-bucket histogram addition are commutative and
// associative, so merging any permutation of shards yields the same
// totals — the determinism contract of the sharded design.
func (s *Shard) MergeInto(dst *Shard) {
	if s == nil || dst == nil {
		return
	}
	for c := Counter(0); c < NumCounters; c++ {
		if n := atomic.LoadUint64(&s.counters[c]); n > 0 {
			atomic.AddUint64(&dst.counters[c], n)
		}
	}
	for h := Hist(0); h < NumHists; h++ {
		dst.hists[h].Merge(&s.hists[h])
	}
}

// Registry is the root of one campaign's observability state: the shards
// handed to workers, the phase tracer, and the wall-clock epoch that
// anchors spans and uptime. A nil *Registry is fully inert — every
// accessor returns a nil (and therefore inert) handle.
type Registry struct {
	start  time.Time
	tracer Tracer

	mu     sync.Mutex
	shards []*Shard
}

// NewRegistry creates an empty registry anchored at the current wall time.
func NewRegistry() *Registry {
	r := &Registry{start: time.Now()}
	r.tracer.clock = func() time.Duration { return time.Since(r.start) }
	return r
}

// NewShard creates, registers and returns a labelled shard. Shards are
// reported in registration order. Returns nil on a nil registry.
func (r *Registry) NewShard(label string) *Shard {
	if r == nil {
		return nil
	}
	s := NewShard(label)
	r.mu.Lock()
	r.shards = append(r.shards, s)
	r.mu.Unlock()
	return s
}

// Shards returns the registered shards in registration order.
func (r *Registry) Shards() []*Shard {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Shard(nil), r.shards...)
}

// Merged returns a fresh shard holding the sum of every registered shard.
func (r *Registry) Merged() *Shard {
	dst := NewShard("merged")
	for _, s := range r.Shards() {
		s.MergeInto(dst)
	}
	return dst
}

// Tracer returns the registry's phase tracer (nil on a nil registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return &r.tracer
}

// Start returns the wall-clock instant the registry was created.
func (r *Registry) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// SpanID is a handle onto an open span; values < 0 (from a nil tracer)
// are inert.
type SpanID int

// Tracer records begin/end spans for campaign phases on the wall clock.
// It is safe for concurrent use; spans may nest and interleave freely.
// Nothing in the deterministic campaign path reads spans back — they are
// observability output only.
type Tracer struct {
	clock func() time.Duration

	mu    sync.Mutex
	spans []Span
}

// Span is one recorded phase. End is zero while the span is open.
type Span struct {
	Name  string        `json:"name"`
	Start time.Duration `json:"start_nanos"`
	End   time.Duration `json:"end_nanos,omitempty"`
	Done  bool          `json:"done"`
}

// Begin opens a span and returns its handle. Nil-safe (returns -1).
func (t *Tracer) Begin(name string) SpanID {
	if t == nil {
		return -1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	id := SpanID(len(t.spans))
	t.spans = append(t.spans, Span{Name: name, Start: t.now()})
	return id
}

// End closes the span; ending an inert or already-closed span is a no-op.
func (t *Tracer) End(id SpanID) {
	if t == nil || id < 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) >= len(t.spans) || t.spans[id].Done {
		return
	}
	t.spans[id].End = t.now()
	t.spans[id].Done = true
}

// Spans returns a copy of the recorded spans in begin order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Current returns the name of the most recently begun span that is still
// open, or "" — the "what is it doing right now" hint for progress lines.
func (t *Tracer) Current() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := len(t.spans) - 1; i >= 0; i-- {
		if !t.spans[i].Done {
			return t.spans[i].Name
		}
	}
	return ""
}

func (t *Tracer) now() time.Duration {
	if t.clock == nil {
		return 0
	}
	return t.clock()
}
