package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServeEndpoints is the metrics-endpoint smoke test: the server bound
// on an ephemeral port must answer /metrics with the JSON snapshot,
// /debug/vars with expvar (including the published registry), and
// /debug/pprof/ with the profile index.
func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	sh := r.NewShard("sim")
	sh.Add(CProbeSent, 123)
	sh.Observe(HRTT, int64(35*time.Millisecond))
	sp := r.Tracer().Begin("simulate")
	r.Tracer().End(sp)

	srv, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics is not valid snapshot JSON: %v", err)
	}
	if snap.Counters[CounterName(CProbeSent)] != 123 {
		t.Errorf("/metrics probe.sent = %d, want 123", snap.Counters[CounterName(CProbeSent)])
	}
	if snap.Histograms[HistName(HRTT)].Count != 1 {
		t.Errorf("/metrics rtt histogram missing: %+v", snap.Histograms)
	}
	if len(snap.Phases) != 1 || snap.Phases[0].Name != "simulate" {
		t.Errorf("/metrics phases = %+v", snap.Phases)
	}

	vars := string(get("/debug/vars"))
	if !strings.Contains(vars, `"openresolver"`) {
		t.Error("/debug/vars does not include the published registry")
	}
	if !strings.Contains(vars, `"memstats"`) {
		t.Error("/debug/vars does not include runtime memstats")
	}

	if body := get("/debug/pprof/"); !bytes.Contains(body, []byte("goroutine")) {
		t.Error("/debug/pprof/ index does not list profiles")
	}
	if body := get("/debug/pprof/cmdline"); len(body) == 0 {
		t.Error("/debug/pprof/cmdline empty")
	}
}

// TestServeBadAddr checks the listen error path.
func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.0.0.1:bogus", NewRegistry()); err == nil {
		t.Error("invalid address accepted")
	}
}

// TestStartProgress drives the periodic printer: lines appear while
// running, none after stop, and the content reflects the counters.
func TestStartProgress(t *testing.T) {
	r := NewRegistry()
	sh := r.NewShard("sim")
	sh.Add(CProbeSent, 7)
	sp := r.Tracer().Begin("simulate")
	defer r.Tracer().End(sp)

	var mu syncBuffer
	stop := r.StartProgress(&mu, 2*time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for mu.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	stop()
	out := mu.String()
	if out == "" {
		t.Fatal("no progress line printed")
	}
	if !strings.Contains(out, "probes=7") || !strings.Contains(out, "phase=simulate") {
		t.Errorf("progress line missing counters/phase: %q", out)
	}
	n := mu.Len()
	time.Sleep(10 * time.Millisecond)
	if mu.Len() != n {
		t.Error("progress printer kept writing after stop")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the progress goroutine
// writes while the test polls.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
