package obs

import "sync/atomic"

// ShardState is the serializable capture of one Shard: every counter and
// the full fixed-bucket histogram contents, with exported fields so it
// survives a JSON round trip exactly. It is the checkpoint/restore form of
// a shard — core's crash-safe campaign engine stores one per completed
// sub-simulation so a resumed campaign's metrics still cross-check against
// its merged Stats.
type ShardState struct {
	Counters [NumCounters]uint64      `json:"counters"`
	Hists    [NumHists]HistogramState `json:"hists"`
}

// HistogramState is a Histogram's raw storage: counts per bucket plus the
// running aggregates, in the same encoding the live histogram uses
// (MinOff1 is min+1 with 0 meaning "no observation"), so Load reproduces
// the observation stream's aggregates exactly.
type HistogramState struct {
	Count   uint64             `json:"count"`
	Sum     uint64             `json:"sum"`
	MinOff1 uint64             `json:"min_off1"`
	Max     uint64             `json:"max"`
	Buckets [NumBuckets]uint64 `json:"buckets"`
}

// State captures the shard's counters and histograms. Reads are atomic, so
// taking a state concurrently with the owning worker is safe (the usual
// monitoring consistency: counters may be mid-batch, never torn). Returns
// nil for a nil shard.
func (s *Shard) State() *ShardState {
	if s == nil {
		return nil
	}
	st := &ShardState{}
	for c := Counter(0); c < NumCounters; c++ {
		st.Counters[c] = atomic.LoadUint64(&s.counters[c])
	}
	for h := Hist(0); h < NumHists; h++ {
		hist := &s.hists[h]
		hs := &st.Hists[h]
		hs.Count = atomic.LoadUint64(&hist.count)
		hs.Sum = atomic.LoadUint64(&hist.sum)
		hs.MinOff1 = atomic.LoadUint64(&hist.minOff1)
		hs.Max = atomic.LoadUint64(&hist.max)
		for b := 0; b < NumBuckets; b++ {
			hs.Buckets[b] = atomic.LoadUint64(&hist.buckets[b])
		}
	}
	return st
}

// LoadState folds a captured state into the shard: counters and bucket
// counts add, min/max combine — the same commutative merge discipline as
// MergeInto, so loading a state into an empty shard reproduces the
// captured shard and loading into a live one behaves like merging it.
// Nil shard or nil state is a no-op.
func (s *Shard) LoadState(st *ShardState) {
	if s == nil || st == nil {
		return
	}
	for c := Counter(0); c < NumCounters; c++ {
		if n := st.Counters[c]; n > 0 {
			atomic.AddUint64(&s.counters[c], n)
		}
	}
	for h := Hist(0); h < NumHists; h++ {
		hist := &s.hists[h]
		hs := &st.Hists[h]
		atomic.AddUint64(&hist.count, hs.Count)
		atomic.AddUint64(&hist.sum, hs.Sum)
		for b := 0; b < NumBuckets; b++ {
			if n := hs.Buckets[b]; n > 0 {
				atomic.AddUint64(&hist.buckets[b], n)
			}
		}
		if hs.MinOff1 != 0 {
			for {
				cur := atomic.LoadUint64(&hist.minOff1)
				if cur != 0 && cur <= hs.MinOff1 {
					break
				}
				if atomic.CompareAndSwapUint64(&hist.minOff1, cur, hs.MinOff1) {
					break
				}
			}
		}
		if hs.Max > 0 {
			for {
				cur := atomic.LoadUint64(&hist.max)
				if hs.Max <= cur || atomic.CompareAndSwapUint64(&hist.max, cur, hs.Max) {
					break
				}
			}
		}
	}
}
