// Package dnssec implements the DNSSEC subset relevant to the paper's
// threat discussion (§VI): "DNSSEC provides the authentication and data
// integrity, which allows it to counter the DNS manipulation. However,
// DNSSEC did not yet completely replace DNS" — and the cited
// validator-counting studies (Fukuda et al., Yu et al.).
//
// The package provides zone signing (DNSKEY/RRSIG records over Ed25519,
// DNSSEC algorithm 15 per RFC 8080), record validation, and the survey
// harness that counts validating resolvers the way the cited studies do:
// serve one name with a valid signature and one with a deliberately broken
// signature, and observe which resolvers reject the bogus data.
package dnssec

import (
	"crypto/ed25519"
	"encoding/binary"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"openresolver/internal/dnswire"
)

// AlgEd25519 is the DNSSEC algorithm number for Ed25519 (RFC 8080).
const AlgEd25519 = 15

// KeyPair is a zone-signing key.
type KeyPair struct {
	Zone    string
	Public  ed25519.PublicKey
	private ed25519.PrivateKey
}

// GenerateKey creates a deterministic zone-signing key from a seed.
func GenerateKey(zone string, seed int64) (*KeyPair, error) {
	rng := rand.New(rand.NewSource(seed))
	seedBytes := make([]byte, ed25519.SeedSize)
	for i := range seedBytes {
		seedBytes[i] = byte(rng.Intn(256))
	}
	priv := ed25519.NewKeyFromSeed(seedBytes)
	return &KeyPair{
		Zone:    dnswire.CanonicalName(zone),
		Public:  priv.Public().(ed25519.PublicKey),
		private: priv,
	}, nil
}

// DNSKEY returns the zone's DNSKEY record (RFC 4034 §2: flags, protocol,
// algorithm, public key).
func (k *KeyPair) DNSKEY() dnswire.RR {
	rdata := make([]byte, 0, 4+len(k.Public))
	rdata = binary.BigEndian.AppendUint16(rdata, 257) // KSK flags (SEP set)
	rdata = append(rdata, 3, AlgEd25519)              // protocol, algorithm
	rdata = append(rdata, k.Public...)
	return dnswire.RR{
		Name: k.Zone, Type: dnswire.TypeDNSKEY, Class: dnswire.ClassIN,
		TTL: 3600, Data: rdata,
	}
}

// KeyTag computes the RFC 4034 Appendix B key tag of the DNSKEY.
func (k *KeyPair) KeyTag() uint16 {
	rdata := k.DNSKEY().Data
	var acc uint32
	for i, b := range rdata {
		if i&1 == 0 {
			acc += uint32(b) << 8
		} else {
			acc += uint32(b)
		}
	}
	acc += acc >> 16 & 0xFFFF
	return uint16(acc & 0xFFFF)
}

// sigRDATA is the decoded RRSIG RDATA (RFC 4034 §3.1).
type sigRDATA struct {
	TypeCovered dnswire.Type
	Algorithm   uint8
	Labels      uint8
	OrigTTL     uint32
	Expiration  uint32
	Inception   uint32
	KeyTag      uint16
	SignerName  string
	Signature   []byte
}

func (s *sigRDATA) marshal() ([]byte, error) {
	out := make([]byte, 0, 64+len(s.Signature))
	out = binary.BigEndian.AppendUint16(out, uint16(s.TypeCovered))
	out = append(out, s.Algorithm, s.Labels)
	out = binary.BigEndian.AppendUint32(out, s.OrigTTL)
	out = binary.BigEndian.AppendUint32(out, s.Expiration)
	out = binary.BigEndian.AppendUint32(out, s.Inception)
	out = binary.BigEndian.AppendUint16(out, s.KeyTag)
	var err error
	out, err = appendWireName(out, s.SignerName)
	if err != nil {
		return nil, err
	}
	return append(out, s.Signature...), nil
}

func parseSigRDATA(data []byte) (*sigRDATA, error) {
	if len(data) < 18 {
		return nil, fmt.Errorf("dnssec: RRSIG RDATA too short (%d)", len(data))
	}
	s := &sigRDATA{
		TypeCovered: dnswire.Type(binary.BigEndian.Uint16(data)),
		Algorithm:   data[2],
		Labels:      data[3],
		OrigTTL:     binary.BigEndian.Uint32(data[4:]),
		Expiration:  binary.BigEndian.Uint32(data[8:]),
		Inception:   binary.BigEndian.Uint32(data[12:]),
		KeyTag:      binary.BigEndian.Uint16(data[16:]),
	}
	name, off, err := readWireName(data, 18)
	if err != nil {
		return nil, err
	}
	s.SignerName = name
	s.Signature = append([]byte(nil), data[off:]...)
	return s, nil
}

// signedData builds the RFC 4034 §3.1.8.1 input: RRSIG RDATA (minus the
// signature) followed by the canonical RRset.
func signedData(sig *sigRDATA, name string, rrs []dnswire.RR) ([]byte, error) {
	hdr := *sig
	hdr.Signature = nil
	buf, err := hdr.marshal()
	if err != nil {
		return nil, err
	}
	for _, rr := range rrs {
		buf, err = appendWireName(buf, name)
		if err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Class))
		buf = binary.BigEndian.AppendUint32(buf, sig.OrigTTL)
		rdata := rr.Data
		if rdata == nil && rr.Type == dnswire.TypeA {
			rdata = binary.BigEndian.AppendUint32(nil, rr.A)
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(rdata)))
		buf = append(buf, rdata...)
	}
	return buf, nil
}

// Sign produces the RRSIG record covering the given RRset of name.
func (k *KeyPair) Sign(name string, rrs []dnswire.RR, now time.Duration) (dnswire.RR, error) {
	if len(rrs) == 0 {
		return dnswire.RR{}, fmt.Errorf("dnssec: empty RRset")
	}
	name = dnswire.CanonicalName(name)
	inception := uint32(now / time.Second)
	sig := &sigRDATA{
		TypeCovered: rrs[0].Type,
		Algorithm:   AlgEd25519,
		Labels:      uint8(strings.Count(name, ".") + 1),
		OrigTTL:     rrs[0].TTL,
		Expiration:  inception + 30*24*3600,
		Inception:   inception,
		KeyTag:      k.KeyTag(),
		SignerName:  k.Zone,
	}
	data, err := signedData(sig, name, rrs)
	if err != nil {
		return dnswire.RR{}, err
	}
	sig.Signature = ed25519.Sign(k.private, data)
	rdata, err := sig.marshal()
	if err != nil {
		return dnswire.RR{}, err
	}
	return dnswire.RR{
		Name: name, Type: dnswire.TypeRRSIG, Class: dnswire.ClassIN,
		TTL: rrs[0].TTL, Data: rdata,
	}, nil
}

// Validator verifies RRSIGs against configured trust anchors.
type Validator struct {
	anchors map[string]ed25519.PublicKey
}

// NewValidator returns a validator trusting the given keys.
func NewValidator(keys ...*KeyPair) *Validator {
	v := &Validator{anchors: make(map[string]ed25519.PublicKey)}
	for _, k := range keys {
		v.anchors[k.Zone] = k.Public
	}
	return v
}

// AddAnchor trusts an additional zone key.
func (v *Validator) AddAnchor(zone string, pub ed25519.PublicKey) {
	v.anchors[dnswire.CanonicalName(zone)] = pub
}

// ValidateMessage checks the A RRset of an answered message: it must carry
// an RRSIG from a trusted signer that verifies. It returns false for
// missing, unverifiable or forged signatures. Hook-compatible with
// dnssrv.Recursive.Validate.
func (v *Validator) ValidateMessage(qname string, msg *dnswire.Message) bool {
	qname = dnswire.CanonicalName(qname)
	var aset []dnswire.RR
	var sig *sigRDATA
	for _, rr := range msg.Answers {
		switch rr.Type {
		case dnswire.TypeA:
			if rr.Malformed {
				return false
			}
			aset = append(aset, rr)
		case dnswire.TypeRRSIG:
			parsed, err := parseSigRDATA(rr.Data)
			if err == nil && parsed.TypeCovered == dnswire.TypeA {
				sig = parsed
			}
		}
	}
	if len(aset) == 0 || sig == nil {
		return false
	}
	anchor, ok := v.anchors[sig.SignerName]
	if !ok {
		return false
	}
	data, err := signedData(sig, qname, aset)
	if err != nil {
		return false
	}
	return ed25519.Verify(anchor, data, sig.Signature)
}

// appendWireName / readWireName encode names for signature input without
// compression (RFC 4034 requires canonical, uncompressed names).
func appendWireName(dst []byte, name string) ([]byte, error) {
	name = dnswire.CanonicalName(name)
	if name == "" {
		return append(dst, 0), nil
	}
	for _, label := range strings.Split(name, ".") {
		if label == "" || len(label) > 63 {
			return nil, fmt.Errorf("dnssec: bad label %q", label)
		}
		dst = append(dst, byte(len(label)))
		dst = append(dst, label...)
	}
	return append(dst, 0), nil
}

func readWireName(data []byte, off int) (string, int, error) {
	var parts []string
	for {
		if off >= len(data) {
			return "", 0, fmt.Errorf("dnssec: truncated name")
		}
		n := int(data[off])
		off++
		if n == 0 {
			return strings.Join(parts, "."), off, nil
		}
		if n > 63 || off+n > len(data) {
			return "", 0, fmt.Errorf("dnssec: bad name encoding")
		}
		parts = append(parts, string(data[off:off+n]))
		off += n
	}
}
