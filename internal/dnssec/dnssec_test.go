package dnssec

import (
	"testing"
	"time"

	"openresolver/internal/dnssrv"
	"openresolver/internal/dnswire"
)

func TestSignAndValidate(t *testing.T) {
	key, err := GenerateKey("signed-zone.net", 1)
	if err != nil {
		t.Fatal(err)
	}
	name := "www.signed-zone.net"
	a := dnswire.RR{
		Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN,
		TTL: 60, A: uint32(dnssrv.TruthAddr(name)),
	}
	sig, err := key.Sign(name, []dnswire.RR{a}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if sig.Type != dnswire.TypeRRSIG {
		t.Fatalf("sig type = %v", sig.Type)
	}

	msg := &dnswire.Message{
		Header:    dnswire.Header{QR: true},
		Questions: []dnswire.Question{{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN}},
		Answers:   []dnswire.RR{a, sig},
	}
	// Through the wire and back: validation operates on decoded packets.
	back, err := dnswire.Unpack(msg.MustPack())
	if err != nil {
		t.Fatal(err)
	}
	v := NewValidator(key)
	if !v.ValidateMessage(name, back) {
		t.Error("valid signature rejected")
	}

	// Tamper with the answer: validation must fail.
	tampered, _ := dnswire.Unpack(msg.MustPack())
	tampered.Answers[0].A++
	tampered.Answers[0].Data = nil
	if v.ValidateMessage(name, tampered) {
		t.Error("tampered A record accepted")
	}

	// Corrupt the signature: validation must fail.
	corrupted, _ := dnswire.Unpack(msg.MustPack())
	corrupted.Answers[1].Data[len(corrupted.Answers[1].Data)-1] ^= 0xFF
	if v.ValidateMessage(name, corrupted) {
		t.Error("corrupted signature accepted")
	}

	// Unsigned answers fail closed under a validator.
	unsigned := &dnswire.Message{
		Header:  dnswire.Header{QR: true},
		Answers: []dnswire.RR{a},
	}
	if v.ValidateMessage(name, unsigned) {
		t.Error("unsigned answer accepted")
	}

	// A signer outside the trust anchors fails.
	otherKey, _ := GenerateKey("other-zone.net", 2)
	otherSig, err := otherKey.Sign(name, []dnswire.RR{a}, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	foreign := &dnswire.Message{
		Header:  dnswire.Header{QR: true},
		Answers: []dnswire.RR{a, otherSig},
	}
	if v.ValidateMessage(name, foreign) {
		t.Error("foreign signer accepted")
	}
}

func TestKeyDeterminismAndTag(t *testing.T) {
	k1, _ := GenerateKey("z.net", 7)
	k2, _ := GenerateKey("z.net", 7)
	k3, _ := GenerateKey("z.net", 8)
	if string(k1.Public) != string(k2.Public) {
		t.Error("same seed produced different keys")
	}
	if string(k1.Public) == string(k3.Public) {
		t.Error("different seeds produced identical keys")
	}
	if k1.KeyTag() != k2.KeyTag() {
		t.Error("key tags differ for identical keys")
	}
	dk := k1.DNSKEY()
	if dk.Type != dnswire.TypeDNSKEY || len(dk.Data) != 4+32 {
		t.Errorf("DNSKEY = %+v", dk)
	}
}

func TestSigRDATARoundTrip(t *testing.T) {
	s := &sigRDATA{
		TypeCovered: dnswire.TypeA, Algorithm: AlgEd25519, Labels: 3,
		OrigTTL: 60, Expiration: 1000000, Inception: 999000, KeyTag: 4242,
		SignerName: "signed-zone.net", Signature: []byte{1, 2, 3, 4},
	}
	data, err := s.marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := parseSigRDATA(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.TypeCovered != s.TypeCovered || back.KeyTag != s.KeyTag ||
		back.SignerName != s.SignerName || string(back.Signature) != string(s.Signature) {
		t.Errorf("round trip: %+v vs %+v", back, s)
	}
	if _, err := parseSigRDATA([]byte{1, 2}); err == nil {
		t.Error("short RDATA accepted")
	}
}

func TestValidatorSurvey(t *testing.T) {
	res, err := RunSurvey(SurveyConfig{Resolvers: 100, ValidatorFraction: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Probed != 100 {
		t.Errorf("probed = %d", res.Probed)
	}
	if res.Validators != 30 {
		t.Errorf("validators = %d, want 30", res.Validators)
	}
	if res.NonValidating != 70 {
		t.Errorf("non-validating = %d, want 70", res.NonValidating)
	}
	if res.Inconclusive != 0 {
		t.Errorf("inconclusive = %d", res.Inconclusive)
	}
	if r := res.Rate(); r != 0.3 {
		t.Errorf("rate = %.3f", r)
	}
}

func TestValidatorSurveyEdges(t *testing.T) {
	if _, err := RunSurvey(SurveyConfig{Resolvers: 0}); err == nil {
		t.Error("zero resolvers accepted")
	}
	if _, err := RunSurvey(SurveyConfig{Resolvers: 1, ValidatorFraction: 2}); err == nil {
		t.Error("fraction > 1 accepted")
	}
	all, err := RunSurvey(SurveyConfig{Resolvers: 20, ValidatorFraction: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if all.Validators != 20 || all.Rate() != 1 {
		t.Errorf("all-validators survey = %+v", all)
	}
	none := &SurveyResult{}
	if none.Rate() != 0 {
		t.Error("empty rate not zero")
	}
}

func BenchmarkSignAndValidate(b *testing.B) {
	key, _ := GenerateKey("z.net", 1)
	name := "www.z.net"
	a := dnswire.RR{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60, A: 0x01020304}
	v := NewValidator(key)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sig, err := key.Sign(name, []dnswire.RR{a}, time.Duration(i))
		if err != nil {
			b.Fatal(err)
		}
		msg := &dnswire.Message{Header: dnswire.Header{QR: true}, Answers: []dnswire.RR{a, sig}}
		if !v.ValidateMessage(name, msg) {
			b.Fatal("validation failed")
		}
	}
}
