package dnssec

import (
	"fmt"
	"time"

	"openresolver/internal/dnssrv"
	"openresolver/internal/dnswire"
	"openresolver/internal/ipv4"
	"openresolver/internal/netsim"
)

// Validator survey, after the studies the paper cites in §VI (Fukuda et
// al., "A technique for counting DNSSEC validators"; Yu et al.,
// "Check-Repeat"): a controlled zone serves one name with a valid
// signature and one with a deliberately corrupted signature; a resolver
// that answers the first but rejects the second (ServFail) validates.

// SignedAuthServer is an authoritative server for one signed zone: every
// name resolves to its TruthAddr with an RRSIG; names under the "bogus"
// label are served with a corrupted signature.
type SignedAuthServer struct {
	key     *KeyPair
	queries uint64
}

// BogusLabel marks names served with corrupted signatures.
const BogusLabel = "bogus"

// NewSignedAuthServer registers the signed zone at addr.
func NewSignedAuthServer(sim *netsim.Sim, addr ipv4.Addr, key *KeyPair) *SignedAuthServer {
	s := &SignedAuthServer{key: key}
	sim.Register(addr, s)
	return s
}

// QueriesSeen returns the number of queries served.
func (s *SignedAuthServer) QueriesSeen() uint64 { return s.queries }

// HandleDatagram implements netsim.Host.
func (s *SignedAuthServer) HandleDatagram(n *netsim.Node, dg netsim.Datagram) {
	q, err := dnswire.Unpack(dg.Payload)
	if err != nil || q.Header.QR {
		return
	}
	s.queries++
	resp := dnswire.NewResponse(q)
	resp.Header.AA = true
	qst, ok := q.Question1()
	if !ok {
		resp.Header.Rcode = dnswire.RcodeFormErr
	} else if qst.Type == dnswire.TypeDNSKEY {
		resp.Answers = append(resp.Answers, s.key.DNSKEY())
	} else if qst.Type == dnswire.TypeA || qst.Type == dnswire.TypeANY {
		a := dnswire.RR{
			Name: qst.Name, Type: dnswire.TypeA, Class: dnswire.ClassIN,
			TTL: 60, A: uint32(dnssrv.TruthAddr(qst.Name)),
		}
		resp.Answers = append(resp.Answers, a)
		// Sign regardless of the DO bit (signed zones serve RRSIGs to
		// DO-setting queries; our survey always sets DO).
		if e, hasEDNS := q.GetEDNS(); hasEDNS && e.DO {
			sig, err := s.key.Sign(qst.Name, []dnswire.RR{a}, n.Now())
			if err == nil {
				if isBogusName(qst.Name) {
					// Corrupt the signature: flip bits in the tail.
					sig.Data[len(sig.Data)-1] ^= 0xFF
					sig.Data[len(sig.Data)-2] ^= 0xFF
				}
				resp.Answers = append(resp.Answers, sig)
			}
		}
	}
	wire, err := resp.Pack()
	if err != nil {
		return
	}
	n.Send(dg.Src, dg.DstPort, dg.SrcPort, wire)
}

func isBogusName(name string) bool {
	return len(name) >= len(BogusLabel) && name[:len(BogusLabel)] == BogusLabel
}

// SurveyConfig parameterizes the validator count.
type SurveyConfig struct {
	// Resolvers is the surveyed pool size.
	Resolvers int
	// ValidatorFraction is the share of resolvers that validate.
	ValidatorFraction float64
	// Seed drives the simulation.
	Seed int64
}

// SurveyResult is the outcome of the count.
type SurveyResult struct {
	Probed int
	// Validators answered the valid name and rejected the bogus one.
	Validators int
	// NonValidating answered both names.
	NonValidating int
	// Inconclusive covers every other response pattern.
	Inconclusive int
}

// Rate returns the measured validator share.
func (r *SurveyResult) Rate() float64 {
	if r.Probed == 0 {
		return 0
	}
	return float64(r.Validators) / float64(r.Probed)
}

// Survey addresses.
var (
	surveyAuthAddr   = ipv4.MustParseAddr("45.76.3.3")
	surveyProberAddr = ipv4.MustParseAddr("132.170.3.11")
	resolverBase     = ipv4.MustParseAddr("33.0.0.0")
)

// surveyResolver is an open resolver pointed directly at the signed zone's
// server, optionally validating.
type surveyResolver struct {
	rec *dnssrv.Recursive
}

func (r *surveyResolver) HandleDatagram(n *netsim.Node, dg netsim.Datagram) {
	msg, err := dnswire.Unpack(dg.Payload)
	if err != nil {
		return
	}
	if msg.Header.QR {
		r.rec.HandleResponse(msg)
		return
	}
	q, ok := msg.Question1()
	if !ok {
		return
	}
	r.rec.Resolve(q.Name, func(res dnssrv.Result) {
		resp := dnswire.NewResponse(msg)
		resp.Header.RA = true
		resp.Header.Rcode = res.Rcode
		if res.OK {
			resp.AnswerA(uint32(res.Addr), 60)
		}
		wire, err := resp.Pack()
		if err != nil {
			return
		}
		n.Send(dg.Src, dg.DstPort, dg.SrcPort, wire)
	})
}

// RunSurvey builds the pool, probes each resolver with a valid and a bogus
// name (the check-repeat methodology), and tabulates validators.
func RunSurvey(cfg SurveyConfig) (*SurveyResult, error) {
	if cfg.Resolvers <= 0 {
		return nil, fmt.Errorf("dnssec: resolvers must be positive")
	}
	if cfg.ValidatorFraction < 0 || cfg.ValidatorFraction > 1 {
		return nil, fmt.Errorf("dnssec: validator fraction out of range")
	}
	sim := netsim.New(netsim.Config{
		Seed:    cfg.Seed,
		Latency: netsim.UniformLatency(2*time.Millisecond, 20*time.Millisecond),
	})
	key, err := GenerateKey("signed-zone.net", cfg.Seed)
	if err != nil {
		return nil, err
	}
	NewSignedAuthServer(sim, surveyAuthAddr, key)
	validator := NewValidator(key)

	nValidators := int(float64(cfg.Resolvers) * cfg.ValidatorFraction)
	targets := make([]ipv4.Addr, cfg.Resolvers)
	for i := range targets {
		addr := resolverBase + ipv4.Addr(i+1)
		targets[i] = addr
		sr := &surveyResolver{}
		node := sim.Register(addr, sr)
		sr.rec = dnssrv.NewRecursive(node, surveyAuthAddr)
		sr.rec.DNSSEC = true
		if i < nValidators {
			sr.rec.Validate = validator.ValidateMessage
		}
	}

	// Probe: two queries per resolver, unique names to defeat caches.
	type probeState struct {
		validOK, bogusOK, bogusServFail, answered int
	}
	states := make(map[ipv4.Addr]*probeState, len(targets))
	prober := sim.Register(surveyProberAddr, netsim.HostFunc(func(n *netsim.Node, dg netsim.Datagram) {
		msg, err := dnswire.Unpack(dg.Payload)
		if err != nil || !msg.Header.QR {
			return
		}
		st := states[dg.Src]
		if st == nil {
			return
		}
		st.answered++
		q, ok := msg.Question1()
		if !ok {
			return
		}
		_, hasA := msg.FirstA()
		switch {
		case isBogusName(q.Name) && hasA:
			st.bogusOK++
		case isBogusName(q.Name) && msg.Header.Rcode == dnswire.RcodeServFail:
			st.bogusServFail++
		case hasA:
			st.validOK++
		}
	}))
	var id uint16
	for i, target := range targets {
		states[target] = &probeState{}
		for _, name := range []string{
			fmt.Sprintf("valid%06d.signed-zone.net", i),
			fmt.Sprintf("%s%06d.signed-zone.net", BogusLabel, i),
		} {
			id++
			q := dnswire.NewQuery(id, name, dnswire.TypeA)
			prober.Send(target, 40000, dnssrv.DNSPort, q.MustPack())
		}
	}
	if err := sim.Run(0); err != nil {
		return nil, err
	}

	res := &SurveyResult{Probed: len(targets)}
	for _, st := range states {
		switch {
		case st.validOK == 1 && st.bogusServFail == 1:
			res.Validators++
		case st.validOK == 1 && st.bogusOK == 1:
			res.NonValidating++
		default:
			res.Inconclusive++
		}
	}
	return res, nil
}
