package dnssec_test

import (
	"fmt"
	"time"

	"openresolver/internal/dnssec"
	"openresolver/internal/dnswire"
)

func ExampleValidator_ValidateMessage() {
	key, _ := dnssec.GenerateKey("signed-zone.net", 1)
	name := "www.signed-zone.net"
	a := dnswire.RR{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassIN, TTL: 60, A: 0x01020304}
	sig, _ := key.Sign(name, []dnswire.RR{a}, time.Hour)

	genuine := &dnswire.Message{Header: dnswire.Header{QR: true}, Answers: []dnswire.RR{a, sig}}
	forged := &dnswire.Message{Header: dnswire.Header{QR: true}, Answers: []dnswire.RR{a, sig}}
	forged.Answers[0].A = 0x0D05BC55 // the §IV-C manipulation
	forged.Answers[0].Data = nil

	v := dnssec.NewValidator(key)
	fmt.Println(v.ValidateMessage(name, genuine), v.ValidateMessage(name, forged))
	// Output: true false
}
