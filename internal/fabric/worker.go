package fabric

import (
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"openresolver/internal/core"
)

// WorkerConfig tunes RunWorker.
type WorkerConfig struct {
	// Addr is the coordinator's host:port.
	Addr string
	// Name labels this worker in coordinator logs (default: local addr).
	Name string
	// Log receives worker events (nil = silent).
	Log io.Writer
}

// RunWorker dials the coordinator and executes leased shards until the
// coordinator says DONE, the connection closes, or ctx is cancelled.
// Workers are deliberately thin: each LEASE's spec is compiled into a
// campaign with core.OpenShardCampaign (cached across leases — every
// shard of a campaign shares one compiled environment), the shard runs on
// a fully private network, and the resulting checkpoint envelope streams
// back verbatim. The worker holds no state the coordinator depends on:
// kill it mid-shard and the shard simply reruns elsewhere.
func RunWorker(ctx context.Context, wc WorkerConfig) error {
	conn, err := net.Dial("tcp", wc.Addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	if ctx != nil {
		stop := context.AfterFunc(ctx, func() { conn.Close() })
		defer stop()
	}
	logf := func(format string, args ...any) {
		if wc.Log != nil {
			fmt.Fprintf(wc.Log, "worker: "+format+"\n", args...)
		}
	}

	if err := writeFrame(conn, &message{Type: msgHello, Proto: ProtoVersion, Name: wc.Name}); err != nil {
		return err
	}
	welcome, err := readFrame(conn)
	if err != nil {
		return err
	}
	switch {
	case welcome.Type == msgError:
		return fmt.Errorf("fabric: coordinator refused worker: %s", welcome.Error)
	case welcome.Type != msgWelcome:
		return fmt.Errorf("fabric: expected WELCOME, got %q", welcome.Type)
	case welcome.Proto != ProtoVersion:
		return fmt.Errorf("fabric: protocol version mismatch: worker speaks v%d, coordinator v%d", ProtoVersion, welcome.Proto)
	}
	heartbeat := time.Duration(welcome.HeartbeatMillis) * time.Millisecond
	if heartbeat <= 0 {
		heartbeat = defaultHeartbeat
	}
	logf("connected to %s (heartbeat %v)", wc.Addr, heartbeat)

	// The compiled campaign is cached across leases: shard leases for one
	// campaign arrive in bursts, and compiling the environment (population,
	// universe, cohort index) once per campaign instead of once per shard
	// is what keeps workers thin rather than slow.
	var (
		cacheKey string
		cached   *core.ShardCampaign
	)
	// writeMu serializes RESULT/NACK frames with the heartbeat goroutine's
	// PROGRESS frames.
	var writeMu sync.Mutex
	send := func(m *message) error {
		writeMu.Lock()
		defer writeMu.Unlock()
		return writeFrame(conn, m)
	}

	for {
		if err := send(&message{Type: msgReady}); err != nil {
			return workerExit(ctx, err)
		}
		msg, err := readFrame(conn)
		if err != nil {
			if err == io.EOF {
				logf("coordinator closed the connection")
				return workerExit(ctx, nil)
			}
			return workerExit(ctx, err)
		}
		switch msg.Type {
		case msgDone:
			logf("coordinator done; exiting")
			return nil
		case msgLease:
			// fall through below
		default:
			return fmt.Errorf("fabric: expected LEASE or DONE, got %q", msg.Type)
		}

		if cached == nil || cacheKey != msg.Key {
			cached, cacheKey = nil, ""
			if msg.Spec == nil {
				if err := send(&message{Type: msgNack, Key: msg.Key, Shard: msg.Shard, Error: "lease carries no campaign spec"}); err != nil {
					return workerExit(ctx, err)
				}
				continue
			}
			cfg, err := msg.Spec.Config()
			if err == nil {
				var sc *core.ShardCampaign
				if sc, err = core.OpenShardCampaign(cfg); err == nil {
					if sc.CampaignKey() != msg.Key {
						err = fmt.Errorf("campaign key mismatch: coordinator %.12s, worker %.12s (version skew?)", msg.Key, sc.CampaignKey())
					} else {
						cached, cacheKey = sc, msg.Key
					}
				}
			}
			if err != nil {
				logf("cannot open campaign %.12s: %v", msg.Key, err)
				if serr := send(&message{Type: msgNack, Key: msg.Key, Shard: msg.Shard, Error: err.Error()}); serr != nil {
					return workerExit(ctx, serr)
				}
				continue
			}
			logf("compiled campaign %.12s (%d shards)", cacheKey, cached.NumShards())
		}

		// Heartbeat while the shard runs, so a long shard doesn't read as
		// a hung worker.
		logf("running shard %d", msg.Shard)
		stopBeat := make(chan struct{})
		var beatWG sync.WaitGroup
		beatWG.Add(1)
		go func(shard int) {
			defer beatWG.Done()
			t := time.NewTicker(heartbeat)
			defer t.Stop()
			for {
				select {
				case <-stopBeat:
					return
				case <-t.C:
					if send(&message{Type: msgProgress, Shard: shard}) != nil {
						return
					}
				}
			}
		}(msg.Shard)
		env, err := cached.RunShardEnvelope(msg.Shard)
		close(stopBeat)
		beatWG.Wait()
		if err != nil {
			logf("shard %d failed: %v", msg.Shard, err)
			if serr := send(&message{Type: msgNack, Key: msg.Key, Shard: msg.Shard, Error: err.Error()}); serr != nil {
				return workerExit(ctx, serr)
			}
			continue
		}
		if err := send(&message{Type: msgResult, Key: msg.Key, Shard: msg.Shard, Envelope: env}); err != nil {
			return workerExit(ctx, err)
		}
		logf("shard %d done (%d-byte envelope)", msg.Shard, len(env))
	}
}

// workerExit maps an I/O error to the worker's exit status: a cancelled
// context wins (the closed connection is our own doing), everything else
// passes through.
func workerExit(ctx context.Context, err error) error {
	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}
