package fabric

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"openresolver/internal/core"
	"openresolver/internal/obs"
)

// Default pacing. Heartbeat is what WELCOME tells workers; LeaseTimeout
// is how long a lease may go without a PROGRESS before the coordinator
// assumes the worker hung and requeues the shard. Outright worker death
// is detected much sooner — the closed connection errors the next read.
const (
	defaultHeartbeat    = 500 * time.Millisecond
	defaultLeaseTimeout = 15 * time.Second
)

// maxShardNacks fails the campaign when one shard NACKs this many times:
// a shard that cannot run anywhere (version-skewed workers, a spec the
// fleet cannot compile) must not requeue forever.
const maxShardNacks = 3

// CoordinatorConfig tunes a Coordinator. The zero value works: default
// pacing, no metrics, no log.
type CoordinatorConfig struct {
	// Heartbeat is the PROGRESS interval announced to workers in WELCOME.
	Heartbeat time.Duration
	// LeaseTimeout reaps a lease that has gone silent — no PROGRESS,
	// RESULT or NACK — and requeues its shard. Must comfortably exceed
	// Heartbeat.
	LeaseTimeout time.Duration
	// Obs receives fabric.* counters (nil = no metrics).
	Obs *obs.Shard
	// Log receives coordinator events (nil = silent).
	Log io.Writer
}

// Coordinator owns the distribution side of the fabric: it listens for
// workers, leases pending shards to them, validates and records returned
// envelopes, and merges each campaign when its last shard lands. One
// coordinator multiplexes any number of concurrent campaigns over one
// worker fleet — each RunCampaign call adds a campaign to the lease pool
// and returns when its merge completes.
type Coordinator struct {
	cfg CoordinatorConfig
	ln  net.Listener

	mu        sync.Mutex
	cond      *sync.Cond // signals: campaign added, shard requeued, closing
	campaigns []*campaignState
	conns     map[net.Conn]struct{}
	closed    bool
	wg        sync.WaitGroup
}

// campaignState is one campaign in flight: its compiled ShardCampaign,
// the wire spec workers receive, and the lease-pool bookkeeping. All
// fields below the key are guarded by the Coordinator's mu.
type campaignState struct {
	key  string
	spec CampaignSpec
	sc   *core.ShardCampaign

	pending   []int // shards awaiting a lease, ascending on entry
	leased    map[int]bool
	nacks     map[int]int // per-shard failure count
	remaining int         // shards not yet recorded
	err       error       // sticky failure; set before done closes
	done      chan struct{}
	finish    sync.Once
}

// lease is one outstanding grant, tracked by the connection that holds it.
type grant struct {
	cam   *campaignState
	shard int
}

// NewCoordinator returns a Coordinator that is not yet listening; call
// Listen to bind it.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = defaultHeartbeat
	}
	if cfg.LeaseTimeout <= 0 {
		cfg.LeaseTimeout = defaultLeaseTimeout
	}
	c := &Coordinator{cfg: cfg, conns: make(map[net.Conn]struct{})}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Listen binds addr (e.g. "127.0.0.1:0") and starts accepting workers.
func (c *Coordinator) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	c.ln = ln
	c.wg.Add(1)
	go c.acceptLoop()
	return nil
}

// Addr returns the bound listen address.
func (c *Coordinator) Addr() string { return c.ln.Addr().String() }

// Close stops accepting, disconnects every worker, and wakes every
// blocked lease wait. In-flight RunCampaign calls fail; call it only
// when the coordinator is done for good.
func (c *Coordinator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	for _, cam := range c.campaigns {
		cam.fail(errors.New("fabric: coordinator closed"))
	}
	c.campaigns = nil
	for conn := range c.conns {
		conn.Close()
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	var err error
	if c.ln != nil {
		err = c.ln.Close()
	}
	c.wg.Wait()
	return err
}

// RunCampaign runs cfg's campaign over the connected worker fleet and
// returns the merged dataset — byte-identical to core.RunSimulation(cfg)
// on one machine. lossSpec is the CLI impairment string cfg's fault plan
// was parsed from ("" or "none" when pristine); it rides inside each
// LEASE so workers compile the identical plan. cfg.Checkpoints works as
// locally: restored shards are never leased, and accepted envelopes are
// persisted, so a crashed coordinator resumes from disk. Cancelling
// cfg.Ctx abandons the campaign's unleased shards and returns
// core.ErrInterrupted.
func (c *Coordinator) RunCampaign(cfg core.Config, lossSpec string) (*core.Dataset, error) {
	sc, err := core.OpenShardCampaign(cfg)
	if err != nil {
		return nil, err
	}
	cam := &campaignState{
		key:    sc.CampaignKey(),
		spec:   SpecFor(cfg, lossSpec),
		sc:     sc,
		leased: make(map[int]bool),
		nacks:  make(map[int]int),
		done:   make(chan struct{}),
	}
	cam.pending = sc.Pending()
	cam.remaining = len(cam.pending)
	c.logf("campaign %.12s: %d shards (%d restored from checkpoints)",
		cam.key, sc.NumShards(), sc.NumShards()-cam.remaining)

	if cam.remaining > 0 {
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return nil, errors.New("fabric: coordinator closed")
		}
		for _, other := range c.campaigns {
			if other.key == cam.key {
				c.mu.Unlock()
				return nil, fmt.Errorf("fabric: campaign %.12s is already running", cam.key)
			}
		}
		c.campaigns = append(c.campaigns, cam)
		c.cond.Broadcast()
		c.mu.Unlock()

		ctx := cfg.Ctx
		var cancelled <-chan struct{}
		if ctx != nil {
			cancelled = ctx.Done()
		}
		select {
		case <-cam.done:
		case <-cancelled:
			c.removeCampaign(cam)
			cam.fail(fmt.Errorf("fabric: %w: campaign abandoned; completed shards are checkpointed", core.ErrInterrupted))
		}
		c.removeCampaign(cam)
		if cam.err != nil {
			return nil, cam.err
		}
	}
	return sc.Merge()
}

// fail records the campaign's sticky outcome (nil = completed) and
// releases its waiter. Callers hold no particular lock; the first
// outcome wins.
func (cam *campaignState) fail(err error) {
	cam.finish.Do(func() {
		cam.err = err
		close(cam.done)
	})
}

func (c *Coordinator) removeCampaign(cam *campaignState) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, other := range c.campaigns {
		if other == cam {
			c.campaigns = append(c.campaigns[:i], c.campaigns[i+1:]...)
			return
		}
	}
}

func (c *Coordinator) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.conns[conn] = struct{}{}
		c.wg.Add(1)
		c.mu.Unlock()
		go c.handle(conn)
	}
}

// handle speaks the worker protocol on one connection. The handler is the
// connection's only reader and writer, so no per-connection locking is
// needed; shared lease state goes through the coordinator's mu.
func (c *Coordinator) handle(conn net.Conn) {
	defer c.wg.Done()
	defer func() {
		conn.Close()
		c.mu.Lock()
		delete(c.conns, conn)
		c.mu.Unlock()
	}()

	hello, err := readFrame(conn)
	if err != nil || hello.Type != msgHello {
		c.logf("worker %s: bad handshake: %v", conn.RemoteAddr(), err)
		return
	}
	if hello.Proto != ProtoVersion {
		writeFrame(conn, &message{Type: msgError, Proto: ProtoVersion,
			Error: fmt.Sprintf("fabric: protocol version mismatch: coordinator speaks v%d, worker v%d", ProtoVersion, hello.Proto)})
		c.logf("worker %s: refused: protocol v%d (want v%d)", conn.RemoteAddr(), hello.Proto, ProtoVersion)
		return
	}
	name := hello.Name
	if name == "" {
		name = conn.RemoteAddr().String()
	}
	c.cfg.Obs.Inc(obs.CFabricWorkers)
	defer c.cfg.Obs.Inc(obs.CFabricWorkersGone)
	c.logf("worker %s: connected", name)
	if err := writeFrame(conn, &message{Type: msgWelcome, Proto: ProtoVersion,
		HeartbeatMillis: c.cfg.Heartbeat.Milliseconds()}); err != nil {
		return
	}

	// cur is this connection's outstanding lease. expired marks a lease
	// the coordinator already reaped: the shard is requeued, but the
	// connection stays open for one grace period so a slow worker's late
	// RESULT can still land (it wins if the requeued shard hasn't been
	// recorded yet, and dedups away if it has).
	var cur *grant
	expired := false
	for {
		msg, err := readFrame(conn)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				if cur != nil && !expired {
					// Lease went silent: requeue now, then give the worker
					// one more LeaseTimeout to deliver a late RESULT.
					c.logf("worker %s: lease for shard %d expired; requeued", name, cur.shard)
					c.cfg.Obs.Inc(obs.CFabricLeaseExpired)
					c.requeue(cur.cam, cur.shard)
					expired = true
					conn.SetReadDeadline(time.Now().Add(c.cfg.LeaseTimeout))
					continue
				}
				c.logf("worker %s: timed out; disconnecting", name)
				return
			}
			if cur != nil && !expired {
				c.logf("worker %s: connection lost mid-shard %d: %v; requeued", name, cur.shard, err)
				c.requeue(cur.cam, cur.shard)
			} else if err != io.EOF {
				c.logf("worker %s: disconnected: %v", name, err)
			}
			return
		}

		switch msg.Type {
		case msgReady:
			cur, expired = nil, false
			conn.SetReadDeadline(time.Time{})
			g, ok := c.nextLease()
			if !ok {
				writeFrame(conn, &message{Type: msgDone})
				continue // worker closes; next read returns EOF
			}
			cur = g
			spec := g.cam.spec
			if err := writeFrame(conn, &message{Type: msgLease, Key: g.cam.key, Spec: &spec, Shard: g.shard}); err != nil {
				c.logf("worker %s: lease write failed: %v; requeued shard %d", name, err, g.shard)
				c.requeue(g.cam, g.shard)
				return
			}
			c.cfg.Obs.Inc(obs.CFabricLeases)
			conn.SetReadDeadline(time.Now().Add(c.cfg.LeaseTimeout))

		case msgProgress:
			if cur != nil && !expired && msg.Shard == cur.shard {
				conn.SetReadDeadline(time.Now().Add(c.cfg.LeaseTimeout))
			}

		case msgResult:
			c.cfg.Obs.Add(obs.CFabricEnvelopeBytes, uint64(len(msg.Envelope)))
			c.record(name, msg)
			if cur != nil && msg.Shard == cur.shard {
				c.release(cur.cam, cur.shard)
				cur, expired = nil, false
			}
			conn.SetReadDeadline(time.Time{})

		case msgNack:
			c.cfg.Obs.Inc(obs.CFabricNacks)
			c.logf("worker %s: NACK shard %d: %s", name, msg.Shard, msg.Error)
			if cur != nil && msg.Shard == cur.shard {
				c.nack(cur.cam, cur.shard, msg.Error)
				cur, expired = nil, false
			}
			conn.SetReadDeadline(time.Time{})

		default:
			c.logf("worker %s: unexpected %q frame; disconnecting", name, msg.Type)
			if cur != nil && !expired {
				c.requeue(cur.cam, cur.shard)
			}
			return
		}
	}
}

// nextLease blocks until a pending shard exists (returning a grant), or
// the coordinator closes (returning ok=false). Campaigns are scanned in
// registration order, shards in queue order, so an idle fleet drains
// campaigns roughly first-come-first-served.
func (c *Coordinator) nextLease() (*grant, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.closed {
			return nil, false
		}
		for _, cam := range c.campaigns {
			if len(cam.pending) > 0 {
				shard := cam.pending[0]
				cam.pending = cam.pending[1:]
				cam.leased[shard] = true
				return &grant{cam: cam, shard: shard}, true
			}
		}
		c.cond.Wait()
	}
}

// record validates and merges one RESULT envelope. Late results for a
// shard someone else already recorded — or for a campaign that already
// finished — are counted and dropped; they can never merge twice.
func (c *Coordinator) record(worker string, msg *message) {
	c.mu.Lock()
	var cam *campaignState
	for _, cand := range c.campaigns {
		if cand.key == msg.Key {
			cam = cand
			break
		}
	}
	c.mu.Unlock()
	if cam == nil {
		c.cfg.Obs.Inc(obs.CFabricDupResults)
		c.logf("worker %s: result for finished campaign %.12s shard %d; dropped", worker, msg.Key, msg.Shard)
		return
	}
	switch err := cam.sc.LoadEnvelope(msg.Shard, msg.Envelope); {
	case err == nil:
		c.cfg.Obs.Inc(obs.CFabricResults)
		c.mu.Lock()
		cam.remaining--
		last := cam.remaining == 0
		c.mu.Unlock()
		c.logf("worker %s: recorded shard %d of campaign %.12s", worker, msg.Shard, cam.key)
		if last {
			cam.fail(nil) // close done with no error: campaign complete
		}
	case errors.Is(err, core.ErrShardRecorded):
		c.cfg.Obs.Inc(obs.CFabricDupResults)
		c.logf("worker %s: duplicate result for shard %d; dropped", worker, msg.Shard)
	default:
		// Corrupt or mismatched envelope: treat like a NACK so the shard
		// reruns elsewhere but cannot loop forever.
		c.logf("worker %s: rejected envelope for shard %d: %v", worker, msg.Shard, err)
		c.nack(cam, msg.Shard, err.Error())
	}
}

// requeue returns a leased shard to the pending queue unless it was
// recorded in the meantime (a late RESULT won the race).
func (c *Coordinator) requeue(cam *campaignState, shard int) {
	if cam.sc.Recorded(shard) {
		c.release(cam, shard)
		return
	}
	c.mu.Lock()
	if cam.leased[shard] {
		delete(cam.leased, shard)
		cam.pending = append(cam.pending, shard)
		c.cfg.Obs.Inc(obs.CFabricRequeued)
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// release drops the lease bookkeeping for a shard without requeueing it.
func (c *Coordinator) release(cam *campaignState, shard int) {
	c.mu.Lock()
	delete(cam.leased, shard)
	c.mu.Unlock()
}

// nack counts a shard failure and either requeues the shard or — after
// maxShardNacks strikes — fails the whole campaign.
func (c *Coordinator) nack(cam *campaignState, shard int, reason string) {
	c.mu.Lock()
	cam.nacks[shard]++
	strikes := cam.nacks[shard]
	c.mu.Unlock()
	if strikes >= maxShardNacks {
		cam.fail(fmt.Errorf("fabric: shard %d failed %d times (last: %s)", shard, strikes, reason))
		return
	}
	c.requeue(cam, shard)
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		fmt.Fprintf(c.cfg.Log, "fabric: "+format+"\n", args...)
	}
}
